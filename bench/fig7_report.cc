// Reproduces paper Figure 7: a section of the activity report generated
// by the monitoring setup, for a "Botfarm" subfarm with inmates
// contained under the Rustock and Grum policies — including the
// FORWARDed C&C lifelines, the REFLECTed SMTP containment (with the
// session/flow gap caused by the sink's probabilistic connection
// drops), the auto-infection REWRITEs with sample MD5 hashes, and the
// SMTP session / DATA transfer counters.
#include <cstdio>

#include "core/farm.h"
#include "extnet/extnet.h"
#include "malware/spambot.h"
#include "util/strings.h"

int main() {
  using namespace gq;
  using util::Ipv4Addr;

  core::Farm farm;

  auto& rustock_cc_host =
      farm.add_external_host("rustock-cc", Ipv4Addr(91, 207, 6, 10));
  ext::CcServer rustock_cc(rustock_cc_host, 443);
  auto& grum_cc_host = farm.add_external_host(
      "grum-cc", Ipv4Addr(50, 8, 207, 91));  // 50.8.207.91 as in Figure 7.
  ext::CcServer grum_cc(grum_cc_host, 80);
  farm.add_external_host("victim-mx", Ipv4Addr(64, 12, 88, 7));

  mal::SpamTask task;
  task.targets = {{Ipv4Addr(64, 12, 88, 7), 25}};
  task.subject = "pharma express";
  rustock_cc.set_document("/c2/tasks", task.serialize());
  grum_cc.set_document("/c2/tasks", task.serialize());

  auto& sub = farm.add_subfarm("Botfarm");
  sub.add_catchall_sink();
  sinks::SmtpSinkConfig simple_sink;
  simple_sink.port = 2525;
  simple_sink.drop_probability = 0.35;
  auto& rustock_sink = sub.add_smtp_sink(simple_sink, "smtpsink");
  sinks::SmtpSinkConfig banner_sink;
  banner_sink.port = 2526;
  auto& grum_sink = sub.add_smtp_sink(banner_sink, "bannersmtpsink");
  sub.set_autoinfect({Ipv4Addr(10, 9, 8, 7), 6543});

  for (int i = 0; i < 2; ++i) {
    sub.containment().samples().add(
        util::format("rustock.100921.%03d.exe", i));
    sub.containment().samples().add(
        util::format("grum.100818.%03d.exe", i));
  }
  sub.catalog().register_prototype(
      "rustock.*", [](const std::string&, util::Rng& rng) {
        mal::SpambotConfig config;
        config.family = "rustock";
        config.c2 = {Ipv4Addr(91, 207, 6, 10), 443};
        config.send_interval = util::seconds(2);
        return std::make_unique<mal::SpambotBehavior>(config, rng.fork());
      });
  sub.catalog().register_prototype(
      "grum.*", [](const std::string&, util::Rng& rng) {
        mal::SpambotConfig config;
        config.family = "grum";
        config.c2 = {Ipv4Addr(50, 8, 207, 91), 80};
        config.send_interval = util::seconds(2);
        return std::make_unique<mal::SpambotBehavior>(config, rng.fork());
      });

  sub.configure_containment(R"(
[VLAN 16-17]
Decider = Rustock
Infection = rustock.100921.*.exe

[VLAN 18-19]
Decider = Grum
Infection = grum.100818.*.exe

[VLAN 16-19]
Trigger = *:25/tcp / 30min < 1 -> revert
)");

  sub.create_inmate(inm::HostingKind::kVm, 16);
  sub.create_inmate(inm::HostingKind::kVm, 18);

  // Hourly report rotation (§6.5).
  farm.reporter().enable_rotation(farm.loop(), util::hours(1));
  farm.run_for(util::hours(2));

  std::printf("Figure 7 reproduction: activity report\n");
  std::printf("%s\n", std::string(60, '=').c_str());
  std::printf("%s\n", farm.report().c_str());

  // The Figure 7 tell-tale: REFLECTed SMTP flows exceed SMTP sessions
  // because the sink drops connections probabilistically.
  const std::uint64_t rustock_flows =
      farm.reporter().flows("Botfarm", 16, shim::Verdict::kReflect);
  std::printf("Verification (Rustock inmate, VLAN 16):\n");
  std::printf("  SMTP flows REFLECTed:   %llu\n",
              static_cast<unsigned long long>(rustock_flows));
  std::printf("  SMTP sessions at sink:  %llu (+ %llu dropped = %llu)\n",
              static_cast<unsigned long long>(rustock_sink.sessions()),
              static_cast<unsigned long long>(
                  rustock_sink.dropped_connections()),
              static_cast<unsigned long long>(
                  rustock_sink.sessions() +
                  rustock_sink.dropped_connections()));
  std::printf("  Grum sink (no drops):   %llu sessions, %llu DATA\n",
              static_cast<unsigned long long>(grum_sink.sessions()),
              static_cast<unsigned long long>(grum_sink.data_transfers()));
  std::printf("  Hourly reports rotated: %zu\n",
              farm.reporter().rotated_reports().size());
  return 0;
}
