// Detonation-throughput sweep (EXPERIMENTS.md S6): drives the
// multi-tenant DetonationService with thousands of queued job specs
// across 1-4 gateway shards, measuring detonations/hour as the
// recycled-slot pools churn through the backlog. Every row audits the
// per-shard upstream choke points against the verdict event stream
// (zero escapes, exactly like the s2 soak), and the sweep ends with the
// lifecycle-determinism gate: the same seeded batch rerun on a
// different worker-thread count must produce a bit-identical merged
// event stream. Exits nonzero on any violation, so CI can gate on both
// containment and reproducibility at service scale.
//
//   build/bench/s3_detonation           # full sweep, >= 1,000 jobs
//   build/bench/s3_detonation --smoke   # abbreviated CI pass
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/sharded_farm.h"
#include "flowdb/flowdb.h"
#include "flowdb/store.h"
#include "inmate/inmate.h"
#include "orchestrator/service.h"
#include "packet/frame.h"
#include "util/json.h"
#include "util/strings.h"

namespace {

using namespace gq;
using util::Ipv4Addr;

constexpr std::uint64_t kSeed = 0x53D7'0B5E;
const Ipv4Addr kWebAddr(93, 184, 216, 34);
constexpr std::uint16_t kWebPort = 80;

// Minimal periodic C&C beacon (the orchestrator test workload): connect
// out, ping, close on the echo. Jitter from the forked per-infection
// Rng keeps distinct jobs' traffic distinct.
class BeaconBehavior : public inm::Behavior {
 public:
  BeaconBehavior(util::Duration interval, util::Rng rng)
      : interval_(interval), rng_(rng) {}

  [[nodiscard]] std::string name() const override { return "beacon"; }

  void start(net::HostStack& host) override {
    host_ = &host;
    running_ = true;
    schedule();
  }

  void stop() override {
    running_ = false;
    conns_.clear();
  }

 private:
  void schedule() {
    const auto jitter = util::microseconds(
        static_cast<std::int64_t>(rng_.below(500'000)));
    host_->loop().schedule_in(interval_ + jitter, guarded([this] {
      if (!running_) return;
      beacon();
      schedule();
    }));
  }

  void beacon() {
    if (!host_->configured()) return;
    auto conn = host_->connect({kWebAddr, kWebPort});
    std::weak_ptr<net::TcpConnection> weak = conn;
    conn->on_connected = [weak] {
      if (auto c = weak.lock()) c->send(std::string_view("beacon ping\r\n"));
    };
    conn->on_data = [weak](std::span<const std::uint8_t>) {
      if (auto c = weak.lock()) c->close();
    };
    conns_.push_back(std::move(conn));
  }

  net::HostStack* host_ = nullptr;
  bool running_ = false;
  util::Duration interval_;
  util::Rng rng_;
  std::vector<std::shared_ptr<net::TcpConnection>> conns_;
};

void build_slot(core::Subfarm& sub, std::size_t /*slot*/) {
  sub.add_catchall_sink();
  sub.catalog().register_prototype(
      "beacon.*", [](const std::string&, util::Rng& rng) {
        return std::make_unique<BeaconBehavior>(util::seconds(5),
                                                rng.fork());
      });
  const auto& config = sub.router().config();
  sub.configure_containment(util::format(
      "[VLAN %u-%u]\nDecider = ForwardAll\n", config.vlan_first,
      config.vlan_last));
}

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

struct RowStats {
  std::size_t shards = 0;
  unsigned threads = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t recycles = 0;
  std::uint64_t verdicts = 0;
  std::uint64_t forwards = 0;
  std::uint64_t upstream_frames = 0;
  std::uint64_t escapes = 0;
  double sim_hours = 0.0;
  double detonations_per_hour = 0.0;
  std::uint64_t event_hash = 0;
  // Every job archive compacted into one FlowDB store at row end; the
  // hash is over the store's file bytes, so the replay gate can also
  // prove same-seed runs compact byte-identically.
  std::uint64_t flowdb_rows = 0;
  std::uint64_t flowdb_hash = 0;
  bool flowdb_ok = false;
  // Incremental segmented store: sealed jobs flushed at epoch
  // boundaries while the farm runs, final drain flush, deterministic
  // compaction. The hash covers the manifest plus every segment's
  // bytes, so the replay gate also proves incremental append +
  // compaction are thread-count invariant.
  std::uint64_t segstore_rows = 0;
  std::uint64_t segstore_segments = 0;
  std::uint64_t segstore_hash = 0;
  bool segstore_ok = false;
};

// One sweep row: `shards` gateway shards with 4 recycled slots each,
// `jobs_per_shard * shards` specs queued up front, run until the whole
// backlog drains (or the cap trips, which fails the gate).
RowStats run_row(std::size_t shards, unsigned threads,
                 std::size_t jobs_per_shard, util::Duration cap) {
  core::ShardedFarmOptions options;
  options.shards = shards;
  options.threads = threads;
  options.seed = kSeed;
  options.trace_archive.segment_bytes = 64 * 1024;
  options.trace_archive.max_segments = 4;
  core::ShardedFarm farm(options, [](core::Farm&, std::size_t) {});

  // One web host homed on shard 0; the other shards reach it across
  // the bridged external segment.
  auto& web = farm.shard(0).add_external_host("web", kWebAddr);
  web.listen(kWebPort, [](std::shared_ptr<net::TcpConnection> conn) {
    std::weak_ptr<net::TcpConnection> weak = conn;
    conn->on_data = [weak](std::span<const std::uint8_t> data) {
      if (auto c = weak.lock()) c->send(data);
    };
  });

  orch::OrchestratorOptions oo;
  oo.pool.slots = 4;
  oo.job_archive.segment_bytes = 16 * 1024;
  oo.job_archive.max_segments = 2;
  orch::DetonationService service(farm, oo, build_slot);
  const char* tenants[] = {"acme", "umbrella", "tyrell", "initech"};
  for (const char* tenant : tenants) service.register_tenant(tenant);

  // Per-shard escape oracle over each gateway's upstream choke point.
  // Callbacks run on the owning shard's worker thread only, so the
  // per-shard vectors need no locking.
  struct Emission {
    pkt::FlowProto proto;
    Ipv4Addr src, dst;
    std::uint16_t dport;
  };
  std::vector<std::vector<Emission>> upstream(shards);
  std::vector<std::vector<obs::FarmEvent>> events(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    farm.shard(s).gateway().set_upstream_tap(
        [&upstream, s](util::TimePoint,
                       const std::vector<std::uint8_t>& bytes) {
          const auto decoded = pkt::decode_frame(bytes);
          if (!decoded || !decoded->ip) return;
          if (!decoded->is_tcp() && !decoded->is_udp()) return;
          upstream[s].push_back({decoded->is_tcp() ? pkt::FlowProto::kTcp
                                                   : pkt::FlowProto::kUdp,
                                 decoded->ip->src, decoded->ip->dst,
                                 decoded->dst_port()});
        });
    farm.shard(s).telemetry().bus().subscribe(
        [&events, s](const obs::FarmEvent& e) {
          if (e.kind == obs::FarmEvent::Kind::kDhcpBind ||
              e.kind == obs::FarmEvent::Kind::kFlowVerdict)
            events[s].push_back(e);
        });
  }

  // The whole backlog queued before the first slot finishes warming:
  // placement is round-robin over submission order, so the schedule is
  // a pure function of the spec sequence.
  const std::size_t total_jobs = jobs_per_shard * shards;
  for (std::size_t i = 0; i < total_jobs; ++i) {
    orch::JobSpec spec;
    spec.tenant = tenants[i % 4];
    spec.sample = util::format("beacon.%04zu", i);
    spec.budget = util::milliseconds(
        15'000 + 5'000 * static_cast<std::int64_t>(i % 4));
    service.submit(spec);
  }

  // Drain in one-minute epochs until every job recycles (measured sim
  // time stops with the last completion, not at the cap). Every second
  // epoch, sealed jobs flush incrementally into the segmented store —
  // mid-run, the way a live farm writes its flow history.
  const std::string seg_dir =
      util::format("BENCH_s3_segstore_%zushard_%uthr", shards, threads);
  std::error_code seg_ec;
  std::filesystem::remove_all(seg_dir, seg_ec);
  bool seg_ok = true;
  util::Duration elapsed = util::seconds(0);
  std::uint64_t epoch = 0;
  while (service.jobs_completed() < total_jobs && elapsed.usec < cap.usec) {
    farm.run_for(util::minutes(1));
    elapsed = elapsed + util::minutes(1);
    if (++epoch % 2 == 0 && !service.append_flowdb_store(seg_dir))
      seg_ok = false;
  }

  RowStats stats;
  stats.shards = shards;
  stats.threads = farm.threads();
  stats.submitted = service.jobs_submitted();
  stats.completed = service.jobs_completed();
  stats.sim_hours = static_cast<double>(elapsed.usec) / 3600e6;
  stats.detonations_per_hour =
      stats.sim_hours > 0 ? static_cast<double>(stats.completed) /
                                stats.sim_hours
                          : 0.0;

  // Audit each shard independently: a NATed source seen upstream must
  // map to an authorizing verdict for that exact (proto, src, dst,
  // dport) tuple, with the DHCP-bind stream supplying the vlan->global
  // mapping — same oracle as the s2 soak, per shard.
  for (std::size_t s = 0; s < shards; ++s) {
    stats.recycles += service.shard(s).pool().total_recycles();
    std::set<Ipv4Addr> shard_globals;
    std::map<std::uint16_t, std::set<Ipv4Addr>> globals_by_vlan;
    std::set<std::tuple<pkt::FlowProto, Ipv4Addr, Ipv4Addr, std::uint16_t>>
        authorized;
    for (const auto& e : events[s]) {
      if (e.kind == obs::FarmEvent::Kind::kDhcpBind) {
        globals_by_vlan[e.vlan].insert(e.inmate_global);
        shard_globals.insert(e.inmate_global);
        continue;
      }
      ++stats.verdicts;
      if (e.verdict == shim::Verdict::kForward) ++stats.forwards;
      if (e.verdict != shim::Verdict::kForward &&
          e.verdict != shim::Verdict::kLimit &&
          e.verdict != shim::Verdict::kRewrite)
        continue;
      for (const auto& global : globals_by_vlan[e.vlan])
        authorized.insert(
            {e.proto, global, e.orig_dst.addr, e.orig_dst.port});
    }
    for (const auto& em : upstream[s]) {
      ++stats.upstream_frames;
      if (!shard_globals.count(em.src)) continue;  // Not inmate-sourced.
      if (!authorized.count({em.proto, em.src, em.dst, em.dport})) {
        ++stats.escapes;
        std::fprintf(stderr, "ESCAPE: shard %zu %s -> %s:%u (%s)\n", s,
                     em.src.str().c_str(), em.dst.str().c_str(), em.dport,
                     em.proto == pkt::FlowProto::kTcp ? "tcp" : "udp");
      }
    }
  }

  std::string joined;
  for (const auto& line : farm.merged_event_lines()) {
    joined += line;
    joined += '\n';
  }
  stats.event_hash = fnv1a(joined);

  // Compact every job archive (shards in index order, jobs in id order)
  // into one queryable column store and prove it reopens with the
  // expected row count.
  const std::string store_path =
      util::format("BENCH_s3_flows_%zushard_%uthr.fdb", shards,
                   stats.threads);
  if (const auto rows = service.compact_flowdb(store_path)) {
    stats.flowdb_rows = *rows;
    const auto store = flowdb::Reader::open(store_path);
    stats.flowdb_ok = store && store->rows() == *rows;
    std::ifstream in(store_path, std::ios::binary);
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    stats.flowdb_hash = fnv1a(bytes);
  }

  // Final drain flush (snapshots anything a cap trip left running),
  // deterministic compaction, then hash manifest + segment bytes. The
  // segmented store must agree row-for-row with the monolithic
  // compaction above.
  if (!service.append_flowdb_store(seg_dir, /*sealed_only=*/false))
    seg_ok = false;
  if (auto seg_store = flowdb::SegmentedStore::open(seg_dir);
      !seg_store || !seg_store->compact_segments()) {
    seg_ok = false;
  }
  if (auto seg_reader = flowdb::SegmentedReader::open(seg_dir)) {
    stats.segstore_rows = seg_reader->rows();
    stats.segstore_segments = seg_reader->segment_count();
    std::string seg_bytes;
    const auto slurp = [&seg_bytes](const std::string& path) {
      std::ifstream in(path, std::ios::binary);
      seg_bytes.append(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
      return static_cast<bool>(in);
    };
    if (!slurp(seg_dir + "/" + flowdb::kManifestName)) seg_ok = false;
    for (const auto& info : seg_reader->manifest().segments)
      if (!slurp(seg_dir + "/" + info.file)) seg_ok = false;
    stats.segstore_hash = fnv1a(seg_bytes);
  } else {
    seg_ok = false;
  }
  stats.segstore_ok = seg_ok && stats.segstore_rows == stats.flowdb_rows;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  const std::size_t shard_counts_full[] = {1, 2, 4};
  const std::size_t shard_counts_smoke[] = {1, 2};
  const auto* shard_counts = smoke ? shard_counts_smoke : shard_counts_full;
  const std::size_t rows = smoke ? 2 : 3;
  const std::size_t jobs_per_shard = smoke ? 12 : 264;
  const auto cap = smoke ? util::hours(2) : util::hours(8);

  std::printf(
      "S3. Detonation throughput across shards (%s sweep, %zu jobs/shard)\n",
      smoke ? "smoke" : "full", jobs_per_shard);
  std::printf("%7s %8s %10s %10s %9s %9s %10s %8s %10s %10s\n", "shards",
              "jobs", "completed", "recycles", "verdicts", "forwards",
              "upstream", "escapes", "sim_min", "det/hour");

  util::JsonWriter json;
  json.begin_object();
  json.key("bench");
  json.value("s3_detonation");
  json.key("smoke");
  json.value(smoke);
  json.key("jobs_per_shard");
  json.value(static_cast<std::uint64_t>(jobs_per_shard));
  json.key("seed");
  json.value(kSeed);
  json.key("rows");
  json.begin_array();

  bool drained = true;
  bool flowdb_ok = true;
  std::uint64_t total_completed = 0;
  std::uint64_t total_escapes = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t shards = shard_counts[r];
    const auto stats = run_row(shards, static_cast<unsigned>(shards),
                               jobs_per_shard, cap);
    drained = drained && stats.completed == stats.submitted;
    total_completed += stats.completed;
    total_escapes += stats.escapes;
    std::printf(
        "%7zu %8llu %10llu %10llu %9llu %9llu %10llu %8llu %10.1f %10.1f\n",
        stats.shards, static_cast<unsigned long long>(stats.submitted),
        static_cast<unsigned long long>(stats.completed),
        static_cast<unsigned long long>(stats.recycles),
        static_cast<unsigned long long>(stats.verdicts),
        static_cast<unsigned long long>(stats.forwards),
        static_cast<unsigned long long>(stats.upstream_frames),
        static_cast<unsigned long long>(stats.escapes),
        stats.sim_hours * 60.0, stats.detonations_per_hour);
    json.begin_object();
    json.key("shards");
    json.value(static_cast<std::uint64_t>(stats.shards));
    json.key("threads");
    json.value(static_cast<std::uint64_t>(stats.threads));
    json.key("jobs_submitted");
    json.value(stats.submitted);
    json.key("jobs_completed");
    json.value(stats.completed);
    json.key("recycles");
    json.value(stats.recycles);
    json.key("verdicts");
    json.value(stats.verdicts);
    json.key("forwards");
    json.value(stats.forwards);
    json.key("upstream_frames");
    json.value(stats.upstream_frames);
    json.key("escapes");
    json.value(stats.escapes);
    json.key("sim_hours");
    json.value(stats.sim_hours);
    json.key("detonations_per_hour");
    json.value(stats.detonations_per_hour);
    json.key("event_hash");
    json.value(util::format("%016llx", static_cast<unsigned long long>(
                                           stats.event_hash)));
    json.key("flowdb_rows");
    json.value(stats.flowdb_rows);
    json.key("flowdb_hash");
    json.value(util::format("%016llx", static_cast<unsigned long long>(
                                           stats.flowdb_hash)));
    json.key("segstore_rows");
    json.value(stats.segstore_rows);
    json.key("segstore_segments");
    json.value(stats.segstore_segments);
    json.key("segstore_hash");
    json.value(util::format("%016llx", static_cast<unsigned long long>(
                                           stats.segstore_hash)));
    json.end_object();
    flowdb_ok = flowdb_ok && stats.flowdb_ok && stats.segstore_ok;
  }
  json.end_array();

  // Lifecycle-determinism gate: the 2-shard batch rerun serially must
  // produce the identical merged event stream (state machine, flows,
  // recycle schedule — everything observable) as the threaded run.
  const auto threaded = run_row(2, 2, jobs_per_shard, cap);
  const auto serial = run_row(2, 1, jobs_per_shard, cap);
  flowdb_ok = flowdb_ok && threaded.flowdb_ok && serial.flowdb_ok &&
              threaded.segstore_ok && serial.segstore_ok;
  // Same-seed runs must also compact to byte-identical FlowDB stores —
  // the cross-run contract the gq_trace diff gate depends on — and the
  // incrementally-appended, compacted segmented stores must be byte-
  // identical too (manifest + every segment).
  const bool identical = threaded.event_hash == serial.event_hash &&
                         threaded.completed == serial.completed &&
                         threaded.flowdb_hash == serial.flowdb_hash &&
                         threaded.segstore_hash == serial.segstore_hash;
  json.key("replay_check");
  json.begin_object();
  json.key("shards");
  json.value(static_cast<std::uint64_t>(2));
  json.key("hash_threaded");
  json.value(util::format("%016llx", static_cast<unsigned long long>(
                                         threaded.event_hash)));
  json.key("hash_serial");
  json.value(util::format("%016llx", static_cast<unsigned long long>(
                                         serial.event_hash)));
  json.key("flowdb_hash_threaded");
  json.value(util::format("%016llx", static_cast<unsigned long long>(
                                         threaded.flowdb_hash)));
  json.key("flowdb_hash_serial");
  json.value(util::format("%016llx", static_cast<unsigned long long>(
                                         serial.flowdb_hash)));
  json.key("segstore_hash_threaded");
  json.value(util::format("%016llx", static_cast<unsigned long long>(
                                         threaded.segstore_hash)));
  json.key("segstore_hash_serial");
  json.value(util::format("%016llx", static_cast<unsigned long long>(
                                         serial.segstore_hash)));
  json.key("bit_identical");
  json.value(identical);
  json.end_object();
  json.end_object();

  if (!util::json_valid(json.str())) {
    std::fprintf(stderr, "s3: generated BENCH_S3.json is not valid JSON\n");
    return 1;
  }
  {
    std::ofstream out("BENCH_S3.json", std::ios::binary | std::ios::trunc);
    out << json.str() << '\n';
    if (!out) {
      std::fprintf(stderr, "s3: cannot write BENCH_S3.json\n");
      return 1;
    }
  }
  std::ifstream back("BENCH_S3.json", std::ios::binary);
  const std::string reread((std::istreambuf_iterator<char>(back)),
                           std::istreambuf_iterator<char>());
  if (!util::json_valid(reread)) {
    std::fprintf(stderr, "s3: BENCH_S3.json failed round-trip validation\n");
    return 1;
  }
  std::printf("\nwrote BENCH_S3.json (validated)\n");

  if (!drained) {
    std::fprintf(stderr, "\nTHROUGHPUT FAILURE: a row's job backlog did "
                         "not drain within the simulated-time cap\n");
    return 1;
  }
  if (!smoke && total_completed < 1000) {
    std::fprintf(stderr,
                 "\nTHROUGHPUT FAILURE: only %llu jobs completed (>= 1000 "
                 "required for the full sweep)\n",
                 static_cast<unsigned long long>(total_completed));
    return 1;
  }
  if (total_escapes > 0) {
    std::fprintf(stderr,
                 "\nCONTAINMENT FAILURE: %llu frame(s) escaped upstream "
                 "without an authorizing verdict\n",
                 static_cast<unsigned long long>(total_escapes));
    return 1;
  }
  if (!flowdb_ok) {
    std::fprintf(stderr, "\nFLOWDB FAILURE: a row's compacted store did "
                         "not save or reopen with the expected rows\n");
    return 1;
  }
  if (!identical) {
    std::fprintf(stderr, "\nDETERMINISM FAILURE: same-seed rerun of the "
                         "2-shard batch diverged across thread counts\n");
    return 1;
  }
  std::printf("%llu detonations completed, zero escapes, same-seed rerun "
              "bit-identical across thread counts\n",
              static_cast<unsigned long long>(total_completed));
  return 0;
}
