// Reproduces paper Figure 2: the six flow-manipulation modes, each
// demonstrated end-to-end on a live flow. For every verdict we run one
// inmate-initiated HTTP flow and report what each party observed — the
// inmate, the true destination, and the sink — which is exactly the
// semantics the figure illustrates.
#include <cstdio>
#include <memory>

#include "containment/handlers.h"
#include "containment/policies.h"
#include "core/farm.h"
#include "services/http.h"
#include "util/strings.h"

namespace {

using namespace gq;
using util::Ipv4Addr;

struct Outcome {
  bool inmate_got_answer = false;
  std::string inmate_answer;
  bool inmate_reset = false;
  int server_requests = 0;
  int sink_flows = 0;
  double elapsed_s = 0;
};

class OneVerdictPolicy : public cs::Policy {
 public:
  OneVerdictPolicy(shim::Verdict verdict, util::Endpoint sink,
                   util::Endpoint redirect)
      : Policy("Fig2"), verdict_(verdict), sink_(sink), redirect_(redirect) {}
  cs::Decision decide(const cs::FlowInfo&) override {
    switch (verdict_) {
      case shim::Verdict::kForward: return cs::Decision::forward();
      case shim::Verdict::kLimit: return cs::Decision::limit(512);
      case shim::Verdict::kDrop: return cs::Decision::drop();
      case shim::Verdict::kRedirect: return cs::Decision::redirect(redirect_);
      case shim::Verdict::kReflect: return cs::Decision::reflect(sink_);
      case shim::Verdict::kRewrite: return cs::Decision::rewrite();
    }
    return cs::Decision::drop();
  }
  std::unique_ptr<cs::RewriteHandler> make_rewrite_handler(
      const cs::FlowInfo&) override {
    // The Figure 5 flavour: rewrite the path out, the status back.
    return std::make_unique<cs::HttpFilterHandler>(
        [](svc::HttpRequest request) -> std::optional<svc::HttpRequest> {
          request.path = "/cleanup.exe";
          return request;
        },
        [](svc::HttpResponse response) {
          if (response.status == 200)
            return svc::HttpResponse::make(404, "NOT FOUND", "");
          return response;
        });
  }

 private:
  shim::Verdict verdict_;
  util::Endpoint sink_, redirect_;
};

Outcome run_verdict(shim::Verdict verdict) {
  core::Farm farm;
  Outcome outcome;

  auto& web = farm.add_external_host("web", Ipv4Addr(192, 150, 187, 12));
  svc::HttpServer httpd(web, 80,
                        [&](const svc::HttpRequest&, util::Endpoint) {
                          ++outcome.server_requests;
                          return svc::HttpResponse::make(
                              200, "OK", std::string(4096, 'B'));
                        });
  auto& alt = farm.add_external_host("alt", Ipv4Addr(198, 51, 100, 5));
  svc::HttpServer alt_httpd(alt, 80,
                            [&](const svc::HttpRequest&, util::Endpoint) {
                              return svc::HttpResponse::make(
                                  200, "OK", "redirected-target-content");
                            });

  auto& sub = farm.add_subfarm("Fig2");
  auto& sink = sub.add_catchall_sink();
  sub.containment().bind_policy(
      16, 31, std::make_shared<OneVerdictPolicy>(
                  verdict, sub.policy_env().service("sink"),
                  util::Endpoint{Ipv4Addr(198, 51, 100, 5), 80}));

  auto& inmate = sub.create_inmate(inm::HostingKind::kVm);
  farm.run_for(util::minutes(1));  // Boot.

  const auto start = farm.loop().now();
  svc::HttpRequest request;
  request.path = "/bot.exe";
  svc::HttpClient::fetch(inmate.host(), {Ipv4Addr(192, 150, 187, 12), 80},
                         request,
                         [&](std::optional<svc::HttpResponse> response) {
                           if (response) {
                             outcome.inmate_got_answer = true;
                             outcome.inmate_answer = util::format(
                                 "%d (%zu B)", response->status,
                                 response->body.size());
                             outcome.elapsed_s =
                                 (farm.loop().now() - start).seconds_f();
                           } else {
                             outcome.inmate_reset = true;
                           }
                         });
  farm.run_for(util::minutes(2));
  outcome.sink_flows = static_cast<int>(sink.tcp_flows());
  return outcome;
}

}  // namespace

int main() {
  std::printf("Figure 2 reproduction: flow manipulation modes\n");
  std::printf("(inmate fetches http://192.150.187.12/bot.exe; 4 KB answer)\n\n");
  std::printf("%-9s %-22s %-10s %-6s %-10s\n", "VERDICT", "INMATE SAW",
              "TARGET HIT", "SINK", "ELAPSED");
  std::printf("%s\n", std::string(64, '-').c_str());
  for (auto verdict :
       {shim::Verdict::kForward, shim::Verdict::kLimit, shim::Verdict::kDrop,
        shim::Verdict::kRedirect, shim::Verdict::kReflect,
        shim::Verdict::kRewrite}) {
    const Outcome outcome = run_verdict(verdict);
    std::string saw = outcome.inmate_reset ? "connection refused"
                      : outcome.inmate_got_answer ? outcome.inmate_answer
                                                  : "nothing (hang)";
    std::printf("%-9s %-22s %-10s %-6d %8.2fs\n",
                shim::verdict_name(verdict), saw.c_str(),
                outcome.server_requests > 0 ? "yes" : "no",
                outcome.sink_flows, outcome.elapsed_s);
  }
  std::printf("%s\n", std::string(64, '-').c_str());
  std::printf(
      "Expected shape: FORWARD/LIMIT reach the target (LIMIT slower);\n"
      "DROP is refused; REDIRECT answers from the alternate target;\n"
      "REFLECT lands in the sink (no answer, no target contact);\n"
      "REWRITE reaches the target but the inmate sees the rewritten "
      "404.\n");
  return 0;
}
