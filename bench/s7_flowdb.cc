// FlowDB scan-throughput bench (EXPERIMENTS.md S7): compacts a
// >= 100k-flow index into a `.fdb` column store and races the query
// engine against the pre-FlowDB answer path — a linear reload of the
// archive's flows.txt sidecar with a per-flow predicate pass. Self-
// gating, per the PR 5/6 convention: exits nonzero unless
//
//   * the store opens, row counts match, and every query returns the
//     same match count as the linear baseline,
//   * the end-to-end speedup (sum over the query set, open/reload
//     included) is >= 5x,
//   * parallel scans are bit-identical to serial at 1/2/4 threads,
//   * encoding is deterministic (same rows -> same bytes), and
//   * BENCH_s7.json survives round-trip JSON validation.
//
// Plus the segmented skip-scan sweep (zone maps + tenant/endpoint
// blooms): selective queries over a multi-segment store must run >= 5x
// faster with pruning on than off, prune a nonzero segment count, and
// return byte-identical matches either way and at 1/2/4 threads.
//
//   build/bench/s7_flowdb           # full query set
//   build/bench/s7_flowdb --smoke   # abbreviated CI pass (same gates)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "flowdb/flowdb.h"
#include "flowdb/query.h"
#include "flowdb/store.h"
#include "obs/metrics.h"
#include "trace/tap.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/strings.h"

namespace {

using namespace gq;

constexpr std::uint64_t kSeed = 0xF10DB;
constexpr std::size_t kFlows = 120'000;  // Gate demands >= 100k.
constexpr double kMinSpeedup = 5.0;
constexpr double kMinSkipSpeedup = 5.0;
constexpr std::size_t kSkipReps = 3;  // Timing reps per measurement.
constexpr std::int64_t kSlabUsec = 20'000'000;  // Per-segment time slab.

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<trace::FlowRecord> synth_flows() {
  util::Rng rng(kSeed);
  const char* tenants[] = {"acme", "umbrella", "tyrell", "initech"};
  std::vector<trace::FlowRecord> flows;
  flows.reserve(kFlows);
  for (std::size_t i = 0; i < kFlows; ++i) {
    trace::FlowRecord record;
    record.key.proto =
        rng.chance(0.7) ? pkt::FlowProto::kTcp : pkt::FlowProto::kUdp;
    record.key.src = {
        util::Ipv4Addr(10, 9, static_cast<std::uint8_t>(rng.below(64)),
                       static_cast<std::uint8_t>(rng.below(250) + 1)),
        static_cast<std::uint16_t>(1024 + rng.below(60000))};
    record.key.dst = {util::Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                      static_cast<std::uint16_t>(rng.chance(0.5) ? 80 : 25)};
    record.vlan = static_cast<std::uint16_t>(100 + rng.below(32));
    record.tenant = tenants[rng.below(std::size(tenants))];
    record.job = rng.below(512) + 1;
    if (rng.chance(0.85)) {
      record.has_verdict = true;
      record.verdict = static_cast<shim::Verdict>(1 + rng.below(6));
      record.verdict_source = static_cast<shim::VerdictSource>(rng.below(3));
      record.verdict_cached =
          record.verdict_source == shim::VerdictSource::kCached;
      record.policy_name =
          record.verdict == shim::Verdict::kDrop ? "quarantine" : "default";
    }
    record.packets = 1 + rng.below(200);
    record.bytes = record.packets * (60 + rng.below(1400));
    record.first_time.usec = static_cast<std::int64_t>(i) * 100;
    record.last_time.usec =
        record.first_time.usec + static_cast<std::int64_t>(rng.below(50000));
    record.locations.push_back({rng.below(16), rng.below(1u << 20)});
    flows.push_back(std::move(record));
  }
  return flows;
}

/// The pre-FlowDB answer path: a saved archive whose index is the
/// flows.txt text sidecar. (No pcap segments — giving the baseline the
/// cheapest possible reload makes the gate conservative.)
bool write_baseline_archive(const std::string& dir,
                            const std::vector<trace::FlowRecord>& flows) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  {
    std::ofstream manifest(dir + "/manifest.txt",
                           std::ios::binary | std::ios::trunc);
    manifest << "gq-trace 1\nname s7-baseline\n";
    if (!manifest) return false;
  }
  std::ofstream out(dir + "/flows.txt", std::ios::binary | std::ios::trunc);
  for (const auto& flow : flows) out << trace::flow_record_line(flow) << '\n';
  return static_cast<bool>(out);
}

struct Query {
  const char* name;
  flowdb::Filter filter;
  std::function<bool(const trace::FlowRecord&)> baseline;
};

std::vector<Query> query_set(bool smoke) {
  std::vector<Query> queries;
  {
    Query q;
    q.name = "verdict=drop";
    q.filter.verdict = static_cast<std::uint8_t>(shim::Verdict::kDrop);
    q.baseline = [](const trace::FlowRecord& f) {
      return f.has_verdict && f.verdict == shim::Verdict::kDrop;
    };
    queries.push_back(std::move(q));
  }
  {
    Query q;
    q.name = "tenant=acme";
    q.filter.tenant = "acme";
    q.baseline = [](const trace::FlowRecord& f) { return f.tenant == "acme"; };
    queries.push_back(std::move(q));
  }
  {
    Query q;
    q.name = "port=80";
    q.filter.port = 80;
    q.baseline = [](const trace::FlowRecord& f) {
      return f.key.src.port == 80 || f.key.dst.port == 80;
    };
    queries.push_back(std::move(q));
  }
  if (smoke) return queries;
  {
    Query q;
    q.name = "prefix=10.9.7.0/24";
    const auto net = util::Ipv4Net(util::Ipv4Addr(10, 9, 7, 0), 24);
    q.filter.prefix = net;
    q.baseline = [net](const trace::FlowRecord& f) {
      return net.contains(f.key.src.addr) || net.contains(f.key.dst.addr);
    };
    queries.push_back(std::move(q));
  }
  {
    Query q;
    q.name = "window=2s..6s";
    q.filter.since_usec = 2'000'000;
    q.filter.until_usec = 6'000'000;
    q.baseline = [](const trace::FlowRecord& f) {
      return f.last_time.usec >= 2'000'000 && f.first_time.usec <= 6'000'000;
    };
    queries.push_back(std::move(q));
  }
  {
    Query q;
    q.name = "tenant=tyrell&verdict=rewrite";
    q.filter.tenant = "tyrell";
    q.filter.verdict = static_cast<std::uint8_t>(shim::Verdict::kRewrite);
    q.baseline = [](const trace::FlowRecord& f) {
      return f.tenant == "tyrell" && f.has_verdict &&
             f.verdict == shim::Verdict::kRewrite;
    };
    queries.push_back(std::move(q));
  }
  return queries;
}

// --- Segmented skip-scan sweep --------------------------------------------

/// One synthetic segment with every prunable dimension keyed off the
/// segment index (disjoint time slabs, one vlan per segment, tenants
/// striped index%6, per-segment endpoint /24s). The per-segment
/// endpoint pool is small (~264 addresses) so the 1 KiB bloom stays far
/// from saturation — the regime segment blooms are designed for: many
/// rows over a bounded dictionary, not unique addresses per row.
flowdb::Writer synth_segment(std::size_t index, std::size_t rows) {
  util::Rng rng(kSeed + 0x5E6 + index * 7919);
  flowdb::Writer writer;
  for (std::size_t i = 0; i < rows; ++i) {
    flowdb::Row row;
    row.proto = rng.chance(0.7) ? pkt::FlowProto::kTcp : pkt::FlowProto::kUdp;
    row.src = {util::Ipv4Addr(10, 20, static_cast<std::uint8_t>(index),
                              static_cast<std::uint8_t>(rng.below(200) + 1)),
               static_cast<std::uint16_t>(rng.range(1024, 65000))};
    row.dst = {util::Ipv4Addr(10, static_cast<std::uint8_t>(120 + index), 0,
                              static_cast<std::uint8_t>(rng.below(64) + 1)),
               static_cast<std::uint16_t>(rng.chance(0.5) ? 80 : 25)};
    row.vlan = static_cast<std::uint16_t>(200 + index);
    row.tenant = util::format("seg-t%zu", index % 6);
    row.job = index * 1000 + rng.below(16) + 1;
    row.verdict = static_cast<std::uint8_t>(1 + rng.below(6));
    row.source = static_cast<std::uint8_t>(rng.below(3));
    row.policy = "default";
    row.tap = "bench";
    row.packets = 1 + rng.below(200);
    row.bytes = row.packets * (60 + rng.below(1400));
    row.first_usec = static_cast<std::int64_t>(index) * kSlabUsec +
                     static_cast<std::int64_t>(i) * 1000;
    row.last_usec = row.first_usec + static_cast<std::int64_t>(rng.below(900));
    writer.add(std::move(row));
  }
  return writer;
}

/// Run the skip-scan sweep; returns false (gate failure) on any result
/// divergence, missing pruning, or insufficient speedup. Appends its
/// JSON object under the key "skip_scan".
bool skip_scan_sweep(util::JsonWriter& json) {
  // Deliberately NOT down-sized in smoke mode: the 5x timing gate needs
  // enough scan work that the fixed per-segment open cost on the
  // prune-on side can't dominate — a half-size sweep flakes the gate
  // under sanitizer instrumentation.
  const std::size_t segments = 16;
  const std::size_t seg_rows = 16384;

  const std::string seg_dir = "s7_segstore";
  std::error_code ec;
  std::filesystem::remove_all(seg_dir, ec);
  auto store = flowdb::SegmentedStore::open(seg_dir);
  if (!store) {
    std::fprintf(stderr, "s7: cannot open segmented store dir\n");
    return false;
  }
  for (std::size_t s = 0; s < segments; ++s) {
    if (!store->append_segment(synth_segment(s, seg_rows))) {
      std::fprintf(stderr, "s7: segment append failed\n");
      return false;
    }
  }
  auto reader = flowdb::SegmentedReader::open(seg_dir);
  if (!reader) {
    std::fprintf(stderr, "s7: cannot open segmented store\n");
    return false;
  }

  struct SkipQuery {
    const char* name;
    flowdb::Filter filter;
    // Whether the query participates in the speedup-gate totals. The
    // tenant probe doesn't: the dictionary short-circuit skips
    // non-matching segments even with pruning off, so both sides scan
    // the same rows and timing parity is the *expected* outcome — it
    // stays in the sweep for its correctness and pruned-count gates.
    bool timed = true;
  };
  std::vector<SkipQuery> queries;
  {
    SkipQuery q;
    q.name = "window(seg3)";
    q.filter.since_usec = 3 * kSlabUsec + 1'000'000;
    q.filter.until_usec = 3 * kSlabUsec + 4'000'000;
    queries.push_back(q);
  }
  {
    SkipQuery q;
    q.name = "tenant=seg-t2";
    q.filter.tenant = "seg-t2";
    q.timed = false;
    queries.push_back(q);
  }
  {
    SkipQuery q;
    q.name = "vlan=205";
    q.filter.vlan = 205;
    queries.push_back(q);
  }
  {
    SkipQuery q;
    q.name = "addr=10.124.0.9";  // dst /24 of segment 4.
    q.filter.endpoint = util::Ipv4Addr(10, 124, 0, 9);
    queries.push_back(q);
  }

  std::printf("\nskip-scan sweep: %zu segments x %zu rows\n", segments,
              seg_rows);
  std::printf("%-20s %9s %12s %12s %9s %8s\n", "query", "matches",
              "prune-off ms", "prune-on ms", "speedup", "pruned");

  obs::MetricsRegistry metrics;
  json.key("skip_scan");
  json.begin_object();
  json.key("segments");
  json.value(static_cast<std::uint64_t>(segments));
  json.key("rows");
  json.value(static_cast<std::uint64_t>(segments * seg_rows));
  json.key("queries");
  json.begin_array();

  bool ok = true;
  double off_total_ms = 0.0, on_total_ms = 0.0;
  for (const auto& query : queries) {
    std::optional<std::vector<std::uint64_t>> off_matches, on_matches;
    flowdb::ScanStats stats;

    // Best-of-reps, not mean: the prune-on side is sub-millisecond, so
    // one scheduler preemption (sanitizer lanes, parallel ctest) would
    // dominate an average and flake the speedup gate.
    double off_ms = 0.0, on_ms = 0.0;
    flowdb::ScanOptions off_options;
    off_options.prune = false;
    for (std::size_t rep = 0; rep < kSkipReps; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      off_matches = reader->scan(query.filter, off_options);
      const double ms = ms_since(start);
      if (rep == 0 || ms < off_ms) off_ms = ms;
    }

    flowdb::ScanOptions on_options;
    on_options.stats = &stats;
    on_options.metrics = &metrics;
    for (std::size_t rep = 0; rep < kSkipReps; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      on_matches = reader->scan(query.filter, on_options);
      const double ms = ms_since(start);
      if (rep == 0 || ms < on_ms) on_ms = ms;
    }

    if (!off_matches || !on_matches) {
      std::fprintf(stderr, "s7: %s segmented scan failed\n", query.name);
      return false;
    }
    if (*off_matches != *on_matches) {
      std::fprintf(stderr, "s7: %s pruned scan diverged from full scan\n",
                   query.name);
      ok = false;
    }
    if (on_matches->empty()) {
      std::fprintf(stderr, "s7: %s matched nothing (bad query keying)\n",
                   query.name);
      ok = false;
    }
    if (stats.segments_pruned == 0) {
      std::fprintf(stderr, "s7: %s pruned no segments\n", query.name);
      ok = false;
    }
    for (const unsigned threads : {2u, 4u}) {
      flowdb::ScanOptions options;
      options.threads = threads;
      if (reader->scan(query.filter, options) != on_matches) {
        std::fprintf(stderr,
                     "s7: %s segmented parallel scan (%u threads) diverged\n",
                     query.name, threads);
        ok = false;
      }
    }

    if (query.timed) {
      off_total_ms += off_ms;
      on_total_ms += on_ms;
    }
    const double speedup = on_ms > 0.0 ? off_ms / on_ms : 0.0;
    std::printf("%-20s %9zu %12.3f %12.3f %8.1fx %5llu/%zu\n", query.name,
                on_matches->size(), off_ms, on_ms, speedup,
                static_cast<unsigned long long>(stats.segments_pruned),
                segments);
    json.begin_object();
    json.key("name");
    json.value(query.name);
    json.key("timed");
    json.value(query.timed);
    json.key("matches");
    json.value(static_cast<std::uint64_t>(on_matches->size()));
    json.key("prune_off_ms");
    json.value(off_ms);
    json.key("prune_on_ms");
    json.value(on_ms);
    json.key("segments_pruned");
    json.value(stats.segments_pruned);
    json.key("chunks_pruned");
    json.value(stats.chunks_pruned);
    json.end_object();
  }
  json.end_array();

  // The pruning counters must have moved: nonzero skips reached the
  // metrics registry (the same counters live farms publish).
  const auto* pruned_ctr = metrics.find_counter("flowdb.scan.segments_pruned");
  if (!pruned_ctr || pruned_ctr->value() == 0) {
    std::fprintf(stderr, "s7: flowdb.scan.segments_pruned never moved\n");
    ok = false;
  }

  const double skip_speedup =
      on_total_ms > 0.0 ? off_total_ms / on_total_ms : 0.0;
  json.key("prune_off_total_ms");
  json.value(off_total_ms);
  json.key("prune_on_total_ms");
  json.value(on_total_ms);
  json.key("speedup");
  json.value(skip_speedup);
  json.key("min_speedup");
  json.value(kMinSkipSpeedup);
  const bool gate = ok && skip_speedup >= kMinSkipSpeedup;
  json.key("gate");
  json.value(gate ? "pass" : "fail");
  json.end_object();

  std::printf("skip-scan total: prune-off %.2f ms, prune-on %.2f ms -> "
              "%.1fx (gate >= %.1fx)\n",
              off_total_ms, on_total_ms, skip_speedup, kMinSkipSpeedup);
  if (ok && skip_speedup < kMinSkipSpeedup)
    std::fprintf(stderr, "s7: skip-scan speedup %.2fx below %.1fx floor\n",
                 skip_speedup, kMinSkipSpeedup);
  return gate;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  std::printf("s7 flowdb scan throughput (%s): %zu flows\n",
              smoke ? "smoke" : "full", kFlows);

  const auto flows = synth_flows();
  const std::string dir = "s7_baseline_archive";
  const std::string store_path = "s7_store.fdb";
  if (!write_baseline_archive(dir, flows)) {
    std::fprintf(stderr, "s7: cannot write baseline archive\n");
    return 1;
  }

  // Compact. Determinism gate: same rows -> same bytes.
  flowdb::Writer writer;
  for (const auto& flow : flows) writer.add(flowdb::row_from(flow, "bench"));
  const auto compact_start = std::chrono::steady_clock::now();
  const auto encoded = writer.encode();
  const double compact_ms = ms_since(compact_start);
  if (writer.encode() != encoded) {
    std::fprintf(stderr, "s7: encoding is not deterministic\n");
    return 1;
  }
  {
    std::ofstream out(store_path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(encoded.data()),
              static_cast<std::streamsize>(encoded.size()));
    if (!out) {
      std::fprintf(stderr, "s7: cannot write %s\n", store_path.c_str());
      return 1;
    }
  }

  const auto queries = query_set(smoke);
  std::printf("\n%-28s %10s %12s %12s %9s\n", "query", "matches",
              "baseline ms", "flowdb ms", "speedup");

  util::JsonWriter json;
  json.begin_object();
  json.key("bench");
  json.value("s7_flowdb");
  json.key("smoke");
  json.value(smoke);
  json.key("flows");
  json.value(static_cast<std::uint64_t>(kFlows));
  json.key("store_bytes");
  json.value(static_cast<std::uint64_t>(encoded.size()));
  json.key("compact_ms");
  json.value(compact_ms);
  json.key("queries");
  json.begin_array();

  double baseline_total_ms = 0.0, flowdb_total_ms = 0.0;
  bool ok = true;
  for (const auto& query : queries) {
    // Baseline: reload the text sidecar, then a per-flow predicate pass
    // — what answering this question cost before the store existed.
    const auto baseline_start = std::chrono::steady_clock::now();
    auto tap = trace::load_trace(dir);
    std::size_t baseline_matches = 0;
    if (tap) {
      for (const auto& flow : tap->index().flows())
        if (query.baseline(flow)) ++baseline_matches;
    }
    const double baseline_ms = ms_since(baseline_start);
    if (!tap || tap->index().flow_count() != flows.size()) {
      std::fprintf(stderr, "s7: baseline archive reload failed\n");
      return 1;
    }

    // FlowDB: mmap open + serial scan, cold each round for symmetry.
    const auto flowdb_start = std::chrono::steady_clock::now();
    auto reader = flowdb::Reader::open(store_path);
    if (!reader) {
      std::fprintf(stderr, "s7: cannot open %s\n", store_path.c_str());
      return 1;
    }
    const auto matches = flowdb::scan(*reader, query.filter);
    const double flowdb_ms = ms_since(flowdb_start);

    if (matches.size() != baseline_matches) {
      std::fprintf(stderr, "s7: %s disagreed (flowdb %zu vs baseline %zu)\n",
                   query.name, matches.size(), baseline_matches);
      ok = false;
    }
    // Parallelism contract: bit-identical results at 1/2/4 threads.
    for (const unsigned threads : {2u, 4u}) {
      flowdb::ScanOptions options;
      options.threads = threads;
      if (flowdb::scan(*reader, query.filter, options) != matches) {
        std::fprintf(stderr, "s7: %s parallel scan (%u threads) diverged\n",
                     query.name, threads);
        ok = false;
      }
    }

    baseline_total_ms += baseline_ms;
    flowdb_total_ms += flowdb_ms;
    const double speedup = flowdb_ms > 0.0 ? baseline_ms / flowdb_ms : 0.0;
    std::printf("%-28s %10zu %12.2f %12.3f %8.1fx\n", query.name,
                matches.size(), baseline_ms, flowdb_ms, speedup);
    json.begin_object();
    json.key("name");
    json.value(query.name);
    json.key("matches");
    json.value(static_cast<std::uint64_t>(matches.size()));
    json.key("baseline_ms");
    json.value(baseline_ms);
    json.key("flowdb_ms");
    json.value(flowdb_ms);
    json.end_object();
  }
  json.end_array();

  const bool skip_ok = skip_scan_sweep(json);

  const double speedup =
      flowdb_total_ms > 0.0 ? baseline_total_ms / flowdb_total_ms : 0.0;
  json.key("baseline_total_ms");
  json.value(baseline_total_ms);
  json.key("flowdb_total_ms");
  json.value(flowdb_total_ms);
  json.key("speedup");
  json.value(speedup);
  json.key("min_speedup");
  json.value(kMinSpeedup);
  const bool gate = ok && skip_ok && speedup >= kMinSpeedup;
  json.key("gate");
  json.value(gate ? "pass" : "fail");
  json.end_object();

  std::printf("\ntotal: baseline %.2f ms, flowdb %.2f ms -> %.1fx "
              "(gate >= %.1fx)\n",
              baseline_total_ms, flowdb_total_ms, speedup, kMinSpeedup);

  if (!util::json_valid(json.str())) {
    std::fprintf(stderr, "s7: generated BENCH_s7.json is not valid JSON\n");
    return 1;
  }
  {
    std::ofstream out("BENCH_s7.json", std::ios::binary | std::ios::trunc);
    out << json.str() << '\n';
    if (!out) {
      std::fprintf(stderr, "s7: cannot write BENCH_s7.json\n");
      return 1;
    }
  }
  std::ifstream back("BENCH_s7.json", std::ios::binary);
  std::string reread((std::istreambuf_iterator<char>(back)),
                     std::istreambuf_iterator<char>());
  if (!util::json_valid(reread)) {
    std::fprintf(stderr, "s7: BENCH_s7.json failed round-trip validation\n");
    return 1;
  }
  std::printf("wrote BENCH_s7.json (validated)\n");

  if (!gate) {
    std::fprintf(stderr,
                 "s7: GATE FAILED (%s%s%s)\n",
                 !ok ? "result mismatch; " : "",
                 !skip_ok ? "skip-scan sweep failed; " : "",
                 speedup < kMinSpeedup ? "rescan speedup below floor" : "");
    return 1;
  }
  std::printf("s7 OK\n");
  return 0;
}
