// Reproduces paper Figure 6: the containment-server configuration file.
// Parses the paper's exact snippet and prints the resolved bindings —
// policy deciders per VLAN range, infection batches, the life-cycle
// trigger, and service locations — then applies it to a containment
// server to prove every referenced policy resolves.
#include <cstdio>

#include "containment/config.h"
#include "containment/policy.h"
#include "containment/samples.h"
#include "util/strings.h"

// The Figure 6 text, verbatim (module comment syntax normalized).
constexpr const char* kFigure6 = R"([VLAN 16-17]
Decider = Rustock
Infection = rustock.100921.*.exe

[VLAN 18-19]
Decider = Grum
Infection = grum.100818.*.exe

[VLAN 16-19]
Trigger = *:25/tcp / 30min < 1 -> revert

[Autoinfect]
Address = 10.9.8.7
Port = 6543

[BannerSmtpSink]
Address = 10.3.1.4
Port = 2526
)";

int main() {
  using namespace gq;

  std::printf("Figure 6 reproduction: containment configuration file\n\n");
  std::printf("%s\n", kFigure6);
  std::printf("%s\n", std::string(60, '=').c_str());

  auto config = cs::ContainmentConfig::parse(kFigure6);

  // A sample library standing in for the binaries on disk.
  cs::SampleLibrary samples;
  for (int i = 0; i < 4; ++i) {
    samples.add(util::format("rustock.100921.%03d.exe", i));
    samples.add(util::format("grum.100818.%03d.exe", i));
  }

  std::printf("\nResolved policy bindings:\n");
  for (const auto& binding : config.bindings) {
    auto batch = samples.match(binding.infection_glob);
    std::printf("  VLAN %u-%u -> policy '%s', infection batch '%s' "
                "(%zu samples)\n",
                binding.range.first, binding.range.last,
                binding.decider.c_str(), binding.infection_glob.c_str(),
                batch.size());
    for (const auto& name : batch)
      std::printf("      %s  md5=%s\n", name.c_str(),
                  samples.md5(name)->c_str());
  }

  std::printf("\nTriggers:\n");
  for (const auto& trigger : config.triggers) {
    std::printf("  VLAN %u-%u: %s\n", trigger.range.first,
                trigger.range.last, trigger.trigger.str().c_str());
  }

  std::printf("\nService locations:\n");
  for (const auto& [name, endpoint] : config.services)
    std::printf("  %-16s %s\n", name.c_str(), endpoint.str().c_str());

  // Every Decider must resolve in the policy registry.
  cs::register_builtin_policies();
  cs::PolicyEnv env;
  env.samples = &samples;
  for (const auto& [name, endpoint] : config.services)
    env.services[name] = endpoint;
  bool all_resolve = true;
  std::printf("\nPolicy registry resolution:\n");
  for (const auto& binding : config.bindings) {
    auto policy = cs::PolicyRegistry::instance().create(binding.decider, env);
    std::printf("  %-10s -> %s\n", binding.decider.c_str(),
                policy ? "resolved (class hierarchy instantiated)"
                       : "UNRESOLVED");
    all_resolve = all_resolve && policy != nullptr;
  }
  std::printf("\nConfiguration fully applied: %s\n",
              all_resolve ? "YES" : "NO");
  return all_resolve ? 0 : 1;
}
