// Reproduces §7.1 "Mysterious blacklisting": Waledac inmates' global
// addresses appeared on the Composite Blocking List although the only
// permitted outside interaction was a single test SMTP message to a
// GMail server. The mechanism: the bots' recognizable HELO string
// ("wergvan") — Google detected it and informed blacklist providers.
// The bench runs the Waledac deployment twice: with the test-message
// exemption (the 2009 mistake) and under full SMTP reflection, and
// checks the inmates' addresses against the simulated CBL.
#include <cstdio>
#include <memory>

#include "core/farm.h"
#include "extnet/extnet.h"
#include "malware/spambot.h"
#include "util/strings.h"

namespace {

using namespace gq;
using util::Ipv4Addr;

struct Outcome {
  std::uint64_t test_messages_forwarded = 0;
  std::uint64_t gmail_detections = 0;
  std::size_t inmates_blacklisted = 0;
  std::uint64_t spam_harvested = 0;
};

Outcome run(bool allow_test_smtp) {
  core::Farm farm;

  auto& cc_host = farm.add_external_host("cc", Ipv4Addr(79, 4, 4, 20));
  ext::CcServer cc(cc_host, 80);
  mal::SpamTask task;
  task.targets = {{Ipv4Addr(64, 233, 10, 1), 25}};  // "GMail".
  cc.set_document("/c2/tasks", task.serialize());

  // The GMail-like server polices HELO identities.
  auto& gmail_host = farm.add_external_host("gmail-mx",
                                            Ipv4Addr(64, 233, 10, 1));
  ext::PolicedSmtpServer gmail(gmail_host, 25, &farm.cbl(),
                               "220 mx.google.example ESMTP gsmtp");
  gmail.add_bot_helo("wergvan");

  auto& sub = farm.add_subfarm("WaledacFarm");
  sub.add_catchall_sink();
  sinks::SmtpSinkConfig sink_config;
  sink_config.port = 2526;
  sink_config.static_banner = "220 mx.sink.gq ESMTP gsmtp";  // Good enough.
  auto& sink = sub.add_smtp_sink(sink_config, "bannersmtpsink");
  sub.set_autoinfect({Ipv4Addr(10, 9, 8, 7), 6543});
  sub.containment().samples().add("waledac.090612.000.exe");
  sub.catalog().register_prototype(
      "waledac.*", [](const std::string&, util::Rng& rng) {
        mal::SpambotConfig config;
        config.family = "waledac";
        config.c2 = {Ipv4Addr(79, 4, 4, 20), 80};
        config.helo = "wergvan";  // The recognizable greeting.
        config.banner_requires = "gsmtp";
        config.send_interval = util::seconds(3);
        return std::make_unique<mal::SpambotBehavior>(config, rng.fork());
      });
  sub.configure_containment(
      allow_test_smtp
          ? "[VLAN 16-31]\nDecider = WaledacTest\nInfection = waledac.*\n"
          : "[VLAN 16-31]\nDecider = Waledac\nInfection = waledac.*\n");

  sub.create_inmate(inm::HostingKind::kVm);
  sub.create_inmate(inm::HostingKind::kVm);
  farm.run_for(util::minutes(30));

  Outcome outcome;
  outcome.test_messages_forwarded = gmail.sessions();
  outcome.gmail_detections = gmail.bot_helos_detected();
  outcome.inmates_blacklisted = farm.reporter().blacklisted_inmates().size();
  outcome.spam_harvested = sink.data_transfers();
  return outcome;
}

}  // namespace

int main() {
  std::printf(
      "E2 reproduction (§7.1 'Mysterious blacklisting'): Waledac's\n"
      "'wergvan' HELO vs the test-SMTP exemption.\n\n");
  const Outcome with_test = run(/*allow_test_smtp=*/true);
  const Outcome strict = run(/*allow_test_smtp=*/false);
  std::printf("%-34s %14s %14s\n", "", "test-SMTP", "full reflect");
  std::printf("%s\n", std::string(64, '-').c_str());
  auto row = [](const char* label, std::uint64_t a, std::uint64_t b) {
    std::printf("%-34s %14llu %14llu\n", label,
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  };
  row("SMTP sessions reaching GMail", with_test.test_messages_forwarded,
      strict.test_messages_forwarded);
  row("'wergvan' detections at GMail", with_test.gmail_detections,
      strict.gmail_detections);
  row("Inmates on the CBL", with_test.inmates_blacklisted,
      strict.inmates_blacklisted);
  row("Spam harvested in the sink", with_test.spam_harvested,
      strict.spam_harvested);
  std::printf("%s\n", std::string(64, '-').c_str());
  std::printf(
      "\nShape check: even ONE seemingly innocuous test exchange per "
      "inmate\ngets the farm blacklisted (the report's containment-failure "
      "alarm);\nfull reflection keeps the harvest flowing with zero "
      "listings — which\nis why the authors 'stopped the policy of "
      "allowing even seemingly\ninnocuous non-spam test SMTP "
      "exchanges.'\n");
  const bool ok = with_test.inmates_blacklisted > 0 &&
                  strict.inmates_blacklisted == 0 &&
                  strict.spam_harvested > 0;
  return ok ? 0 : 1;
}
