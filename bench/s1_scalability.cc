// Reproduces §7.2 "System scalability": the constraints the paper walks
// through —
//   (1) VLAN IDs are a finite resource (4,096 under 802.1Q);
//   (2) a single containment server must interpose on every flow in its
//       subfarm and becomes the bottleneck as the population grows;
//   (3) the central gateway carries everything but scales comfortably to
//       the paper's operating point (5-6 subfarms, a handful to a dozen
//       inmates each);
//   (4) global address space bounds the inmate population.
//
// The bench sweeps inmate population per subfarm and subfarm count,
// reporting contained-flow throughput and per-component load.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>

#include "core/farm.h"
#include "extnet/extnet.h"
#include "malware/spambot.h"
#include "util/json.h"
#include "util/strings.h"

namespace {

using namespace gq;
using util::Ipv4Addr;

struct RunStats {
  std::uint64_t flows_contained = 0;
  std::uint64_t spam_harvested = 0;
  std::uint64_t cs_decisions_max = 0;  // Busiest containment server.
  double wall_ms = 0;
  std::uint64_t sim_events = 0;
};

RunStats run(int subfarms, int inmates_per_subfarm, util::Duration duration,
             bool fast_path = true) {
  core::Farm farm;
  farm.gateway().set_fast_path(fast_path);
  auto& cc_host = farm.add_external_host("cc", Ipv4Addr(50, 8, 207, 91));
  ext::CcServer cc(cc_host, 80);
  mal::SpamTask task;
  task.targets = {{Ipv4Addr(64, 12, 88, 7), 25}};
  cc.set_document("/c2/tasks", task.serialize());

  std::vector<core::Subfarm*> subs;
  for (int s = 0; s < subfarms; ++s) {
    auto& sub = farm.add_subfarm(util::format("Farm%d", s));
    sub.add_catchall_sink();
    sinks::SmtpSinkConfig sink_config;
    sink_config.port = 2526;
    sub.add_smtp_sink(sink_config, "bannersmtpsink");
    sub.set_autoinfect({Ipv4Addr(10, 9, 8, 7), 6543});
    sub.containment().samples().add("grum.000.exe");
    sub.catalog().register_prototype(
        "grum.*", [](const std::string&, util::Rng& rng) {
          mal::SpambotConfig config;
          config.family = "grum";
          config.c2 = {Ipv4Addr(50, 8, 207, 91), 80};
          config.send_interval = util::seconds(2);
          return std::make_unique<mal::SpambotBehavior>(config, rng.fork());
        });
    sub.configure_containment(util::format(
        "[VLAN %d-%d]\nDecider = Grum\nInfection = grum.*\n",
        sub.router().config().vlan_first,
        sub.router().config().vlan_last));
    for (int i = 0; i < inmates_per_subfarm; ++i)
      sub.create_inmate(inm::HostingKind::kVm);
    subs.push_back(&sub);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const auto events_before = farm.loop().events_executed();
  farm.run_for(duration);
  const auto wall_end = std::chrono::steady_clock::now();

  RunStats stats;
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start)
          .count();
  stats.sim_events = farm.loop().events_executed() - events_before;
  for (auto* sub : subs) {
    stats.flows_contained += sub->router().flows_created();
    stats.cs_decisions_max =
        std::max(stats.cs_decisions_max, sub->containment().flows_decided());
    if (auto* sink = sub->smtp_sink("bannersmtpsink"))
      stats.spam_harvested += sink->data_transfers();
  }
  return stats;
}

// One JSON row shared by all three sweeps.
void json_row(util::JsonWriter& json, const char* sweep, int subfarms,
              int inmates, const char* datapath, const RunStats& stats) {
  json.begin_object();
  json.key("sweep");
  json.value(sweep);
  json.key("subfarms");
  json.value(subfarms);
  json.key("inmates_per_subfarm");
  json.value(inmates);
  json.key("datapath");
  json.value(datapath);
  json.key("flows_contained");
  json.value(stats.flows_contained);
  json.key("spam_harvested");
  json.value(stats.spam_harvested);
  json.key("cs_decisions_max");
  json.value(stats.cs_decisions_max);
  json.key("sim_events");
  json.value(stats.sim_events);
  json.key("wall_ms");
  json.value(stats.wall_ms);
  json.end_object();
}

// Write + validate the machine-readable summary; nonzero on failure so
// the smoke target gates on it.
int write_summary(const util::JsonWriter& json, const char* path) {
  if (!util::json_valid(json.str())) {
    std::fprintf(stderr, "s1: generated %s is not valid JSON\n", path);
    return 1;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << json.str() << '\n';
  out.close();
  if (!out) {
    std::fprintf(stderr, "s1: cannot write %s\n", path);
    return 1;
  }
  std::ifstream back(path, std::ios::binary);
  std::string reread((std::istreambuf_iterator<char>(back)),
                     std::istreambuf_iterator<char>());
  if (!util::json_valid(reread)) {
    std::fprintf(stderr, "s1: %s failed round-trip validation\n", path);
    return 1;
  }
  std::printf("\nwrote %s (validated)\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  const auto duration = smoke ? util::minutes(2) : util::minutes(10);
  const double minutes = duration.usec / 60e6;
  std::printf(
      "S1 reproduction (§7.2 scalability): spambot deployment sweeps,\n"
      "%.0f simulated minutes per configuration\n\n", minutes);

  util::JsonWriter json;
  json.begin_object();
  json.key("bench");
  json.value("s1_scalability");
  json.key("smoke");
  json.value(smoke);
  json.key("sim_minutes_per_row");
  json.value(minutes);
  json.key("rows");
  json.begin_array();

  std::printf("Sweep A: one subfarm, growing population (single CS "
              "interposes on all flows)\n");
  std::printf("%9s %10s %12s %14s %12s %10s\n", "INMATES", "FLOWS",
              "FLOWS/MIN", "CS DECISIONS", "SIM EVENTS", "WALL(ms)");
  std::printf("%s\n", std::string(74, '-').c_str());
  const std::vector<int> sweep_a =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 12};
  for (int inmates : sweep_a) {
    const RunStats stats = run(1, inmates, duration);
    std::printf("%9d %10llu %12.0f %14llu %12llu %10.0f\n", inmates,
                static_cast<unsigned long long>(stats.flows_contained),
                stats.flows_contained / minutes,
                static_cast<unsigned long long>(stats.cs_decisions_max),
                static_cast<unsigned long long>(stats.sim_events),
                stats.wall_ms);
    json_row(json, "population", 1, inmates, "fast", stats);
  }

  std::printf(
      "\nSweep B: 12 inmates total, spread across subfarms (per-subfarm\n"
      "containment servers distribute the decision load, §7.2's remedy)\n");
  std::printf("%9s %10s %12s %20s %10s\n", "SUBFARMS", "FLOWS",
              "FLOWS/MIN", "BUSIEST CS (dec.)", "WALL(ms)");
  std::printf("%s\n", std::string(68, '-').c_str());
  const std::vector<int> sweep_b =
      smoke ? std::vector<int>{2} : std::vector<int>{1, 2, 3, 4, 6};
  for (int subfarms : sweep_b) {
    const RunStats stats = run(subfarms, 12 / subfarms, duration);
    std::printf("%9d %10llu %12.0f %20llu %10.0f\n", subfarms,
                static_cast<unsigned long long>(stats.flows_contained),
                stats.flows_contained / minutes,
                static_cast<unsigned long long>(stats.cs_decisions_max),
                stats.wall_ms);
    json_row(json, "subfarm_spread", subfarms, 12 / subfarms, "fast", stats);
  }

  std::printf(
      "\nSweep C: gateway datapath, 2 subfarms x 6 inmates (slow path\n"
      "decodes and re-encodes every frame; the zero-copy fast path\n"
      "rewrites established flows in place)\n");
  std::printf("%9s %10s %12s %12s %10s %12s\n", "DATAPATH", "FLOWS",
              "FLOWS/MIN", "SIM EVENTS", "WALL(ms)", "EVENTS/ms");
  std::printf("%s\n", std::string(70, '-').c_str());
  for (const bool fast : {false, true}) {
    const RunStats stats = run(2, 6, duration, fast);
    std::printf("%9s %10llu %12.0f %12llu %10.0f %12.0f\n",
                fast ? "fast" : "slow",
                static_cast<unsigned long long>(stats.flows_contained),
                stats.flows_contained / minutes,
                static_cast<unsigned long long>(stats.sim_events),
                stats.wall_ms,
                stats.wall_ms > 0 ? stats.sim_events / stats.wall_ms : 0.0);
    json_row(json, "datapath", 2, 6, fast ? "fast" : "slow", stats);
  }

  std::printf(
      "\nStructural limits (§7.2):\n"
      "  VLAN ID space:            4096 (802.1Q twelve-bit field)\n"
      "  Inmates per /24 subfarm:  ~236 internal leases, ~244 globals\n"
      "  Paper's operating point:  5-6 subfarms, handful-to-dozen "
      "inmates\n\n"
      "Shape check: contained-flow throughput grows with population; the\n"
      "single CS's decision count grows linearly with farm size in sweep "
      "A\nand is flattened by per-subfarm containment servers in sweep "
      "B.\n");

  json.end_array();
  json.end_object();
  return write_summary(json, "BENCH_s1.json");
}
