// Reproduces §7.2 "System scalability": the constraints the paper walks
// through —
//   (1) VLAN IDs are a finite resource (4,096 under 802.1Q);
//   (2) a single containment server must interpose on every flow in its
//       subfarm and becomes the bottleneck as the population grows;
//   (3) the central gateway carries everything but scales comfortably to
//       the paper's operating point (5-6 subfarms, a handful to a dozen
//       inmates each);
//   (4) global address space bounds the inmate population.
//
// The bench sweeps inmate population per subfarm and subfarm count,
// reporting contained-flow throughput and per-component load.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "containment/policy.h"
#include "core/farm.h"
#include "core/sharded_farm.h"
#include "extnet/extnet.h"
#include "malware/spambot.h"
#include "packet/frame.h"
#include "util/json.h"
#include "util/strings.h"

namespace {

using namespace gq;
using util::Ipv4Addr;

struct RunStats {
  std::uint64_t flows_contained = 0;
  std::uint64_t spam_harvested = 0;
  std::uint64_t cs_decisions_max = 0;  // Busiest containment server.
  double wall_ms = 0;
  std::uint64_t sim_events = 0;
};

RunStats run(int subfarms, int inmates_per_subfarm, util::Duration duration,
             bool fast_path = true) {
  core::Farm farm;
  farm.gateway().set_fast_path(fast_path);
  auto& cc_host = farm.add_external_host("cc", Ipv4Addr(50, 8, 207, 91));
  ext::CcServer cc(cc_host, 80);
  mal::SpamTask task;
  task.targets = {{Ipv4Addr(64, 12, 88, 7), 25}};
  cc.set_document("/c2/tasks", task.serialize());

  std::vector<core::Subfarm*> subs;
  for (int s = 0; s < subfarms; ++s) {
    auto& sub = farm.add_subfarm(util::format("Farm%d", s));
    sub.add_catchall_sink();
    sinks::SmtpSinkConfig sink_config;
    sink_config.port = 2526;
    sub.add_smtp_sink(sink_config, "bannersmtpsink");
    sub.set_autoinfect({Ipv4Addr(10, 9, 8, 7), 6543});
    sub.containment().samples().add("grum.000.exe");
    sub.catalog().register_prototype(
        "grum.*", [](const std::string&, util::Rng& rng) {
          mal::SpambotConfig config;
          config.family = "grum";
          config.c2 = {Ipv4Addr(50, 8, 207, 91), 80};
          config.send_interval = util::seconds(2);
          return std::make_unique<mal::SpambotBehavior>(config, rng.fork());
        });
    sub.configure_containment(util::format(
        "[VLAN %d-%d]\nDecider = Grum\nInfection = grum.*\n",
        sub.router().config().vlan_first,
        sub.router().config().vlan_last));
    for (int i = 0; i < inmates_per_subfarm; ++i)
      sub.create_inmate(inm::HostingKind::kVm);
    subs.push_back(&sub);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const auto events_before = farm.loop().events_executed();
  farm.run_for(duration);
  const auto wall_end = std::chrono::steady_clock::now();

  RunStats stats;
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start)
          .count();
  stats.sim_events = farm.loop().events_executed() - events_before;
  for (auto* sub : subs) {
    stats.flows_contained += sub->router().flows_created();
    stats.cs_decisions_max =
        std::max(stats.cs_decisions_max, sub->containment().flows_decided());
    if (auto* sink = sub->smtp_sink("bannersmtpsink"))
      stats.spam_harvested += sink->data_transfers();
  }
  return stats;
}

// --- Sweep D: the gateway verdict cache takes the CS off the per-flow
// hot path. A scan-class workload (one inmate probing a fixed set of
// web servers, port 80) against a policy whose FORWARD verdict is
// cacheable at dst-port scope: one cache entry covers the whole scan,
// so with the cache on only the first flow pays the shim round trip.

class ScanForwardPolicy : public cs::Policy {
 public:
  ScanForwardPolicy() : cs::Policy("ScanForward") {}

  cs::Decision decide(const cs::FlowInfo& info) override {
    // The verdict depends only on the destination port, so dst-port
    // scope is exact; the TTL outlives the whole measured run.
    if (info.dst().port == 80)
      return cs::Decision::forward().cached(shim::CacheScope::kDstPort,
                                            3'600'000);
    return cs::Decision::drop("off-scan").cached(shim::CacheScope::kDstPort,
                                                 3'600'000);
  }
};

struct CacheStats {
  std::uint64_t setups = 0;  // TCP connects completed inside `duration`.
  std::uint64_t cs_decisions = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_inserts = 0;
  double wall_ms = 0;
};

CacheStats run_cache(bool cache_on, util::Duration duration) {
  core::Farm farm;
  // Eight scan targets, all accepting on port 80.
  std::vector<Ipv4Addr> targets;
  for (int i = 0; i < 8; ++i) {
    const Ipv4Addr addr(93, 184, 216, static_cast<std::uint8_t>(34 + i));
    auto& host = farm.add_external_host(util::format("web%d", i), addr);
    host.listen(80, [](std::shared_ptr<net::TcpConnection>) {});
    targets.push_back(addr);
  }

  auto& sub = farm.add_subfarm("Scan");
  sub.router().set_verdict_cache_enabled(cache_on);
  // Each CS decision costs 1 simulated second (policy work, sample
  // lookups, logging — the paper's reason the CS is the §7.2
  // bottleneck): with the cache off, every flow setup pays it.
  sub.configure_containment("[Overload]\nDecisionDelayMs = 1000\n");
  sub.bind_policy(sub.router().config().vlan_first,
                  sub.router().config().vlan_last,
                  std::make_shared<ScanForwardPolicy>());
  auto& inmate = sub.create_inmate(inm::HostingKind::kVm);
  farm.run_for(util::minutes(2));  // VM boot + DHCP.

  // Serial scan driven by the verdict event stream: the next probe
  // launches 40ms after the previous flow's verdict is applied, so the
  // measured cycle is exactly what the cache changes — SYN-to-verdict
  // latency. 40ms pacing keeps the offered rate under the safety-filter
  // caps (2000/inmate/min; 500/dest/min across the eight targets).
  // A "setup" is a flow whose verdict the gateway resolved; the flows
  // stay open (no payload) so a queued CS decision always finds its
  // flow alive.
  CacheStats stats;
  std::vector<std::shared_ptr<net::TcpConnection>> conns;
  std::size_t next_target = 0;
  bool advance_pending = false;
  std::function<void()> launch;
  auto advance = [&] {
    if (advance_pending) return;  // One probe in flight at a time.
    advance_pending = true;
    farm.loop().schedule_in(util::milliseconds(40), [&] {
      advance_pending = false;
      launch();
    });
  };
  farm.telemetry().bus().subscribe([&](const obs::FarmEvent& e) {
    if (e.kind != obs::FarmEvent::Kind::kFlowVerdict) return;
    ++stats.setups;
    advance();
  });
  launch = [&] {
    auto conn = inmate.host().connect(
        {targets[next_target++ % targets.size()], 80});
    conn->on_reset = [&] { advance(); };  // Rejected probe: keep scanning.
    conns.push_back(std::move(conn));
  };
  const auto wall_start = std::chrono::steady_clock::now();
  launch();
  farm.run_for(duration);
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
  stats.cs_decisions = sub.containment().flows_decided();
  stats.cache_hits = sub.router().cache_hits();
  auto counter = [&](const char* name) -> std::uint64_t {
    const auto* c = farm.metrics().find_counter(std::string("gw.Scan.") + name);
    return c ? c->value() : 0;
  };
  stats.cache_misses = counter("cache_miss");
  stats.cache_inserts = counter("cache_insert");
  return stats;
}

// --- Sweep E: the compiled policy table takes the CS off the
// *first-contact* hot path — the one case the verdict cache can never
// help with. A sweep-class workload (one inmate probing a fresh
// destination every cycle, port 80) against a fully compilable policy:
// with the table off every probe is a first contact paying the full
// shim round trip; with it on the gateway answers from the compiled
// table and the containment server sees nothing at all.

class FirstContactPolicy : public cs::Policy {
 public:
  FirstContactPolicy() : cs::Policy("FirstContact") {}

  cs::Decision decide(const cs::FlowInfo& info) override {
    if (info.dst().port == 80) return cs::Decision::forward("scan allowed");
    return cs::Decision::drop("off-scan");
  }

  std::optional<std::vector<shim::TableRule>> compile() const override {
    shim::TableRule web;
    web.port_first = web.port_last = 80;
    web.action = shim::TableAction::kForward;
    web.annotation = "scan allowed";
    shim::TableRule rest;
    rest.action = shim::TableAction::kDrop;
    rest.annotation = "off-scan";
    return std::vector<shim::TableRule>{web, rest};
  }
};

struct TableStats {
  std::uint64_t setups = 0;  // First-contact verdicts inside `duration`.
  std::uint64_t cs_decisions = 0;
  std::uint64_t table_hits = 0;
  double wall_ms = 0;
};

TableStats run_table(bool table_on, util::Duration duration) {
  core::FarmOptions options;
  options.datapath.policy_table = table_on;
  core::Farm farm(options);

  auto& sub = farm.add_subfarm("Sweep");
  // Same 1s-per-decision CS cost as sweep D; the verdict cache stays at
  // its default (on) in both runs to show it cannot mask first contacts.
  sub.configure_containment("[Overload]\nDecisionDelayMs = 1000\n");
  sub.bind_policy(sub.router().config().vlan_first,
                  sub.router().config().vlan_last,
                  std::make_shared<FirstContactPolicy>());
  auto& inmate = sub.create_inmate(inm::HostingKind::kVm);
  farm.run_for(util::minutes(2));  // VM boot + DHCP.

  // Serial sweep, one probe in flight, 40ms pacing (same driver as
  // sweep D) — but every probe goes to a destination never seen before,
  // so by construction each verdict is a first contact.
  TableStats stats;
  std::vector<std::shared_ptr<net::TcpConnection>> conns;
  std::uint32_t next_dst = 0;
  bool advance_pending = false;
  std::function<void()> launch;
  auto advance = [&] {
    if (advance_pending) return;
    advance_pending = true;
    farm.loop().schedule_in(util::milliseconds(40), [&] {
      advance_pending = false;
      launch();
    });
  };
  farm.telemetry().bus().subscribe([&](const obs::FarmEvent& e) {
    if (e.kind != obs::FarmEvent::Kind::kFlowVerdict) return;
    ++stats.setups;
    advance();
  });
  launch = [&] {
    const Ipv4Addr dst(93, static_cast<std::uint8_t>(10 + (next_dst >> 16)),
                       static_cast<std::uint8_t>(next_dst >> 8),
                       static_cast<std::uint8_t>(next_dst));
    ++next_dst;
    auto conn = inmate.host().connect({dst, 80});
    conn->on_reset = [&] { advance(); };
    conns.push_back(std::move(conn));
  };
  const auto wall_start = std::chrono::steady_clock::now();
  launch();
  farm.run_for(duration);
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
  stats.cs_decisions = sub.containment().flows_decided();
  stats.table_hits = sub.router().table_hits();
  return stats;
}

// --- Sweep F: sharded execution. One complete farm replica per shard
// (own event loop, gateway, CS, sinks), external switches L2-bridged in
// a chain, advanced in deterministic lockstep epochs by a worker pool
// (DESIGN.md §12). Same Grum workload as sweep A, with the C&C homed on
// shard 0 so every other shard's polls cross the bridges. Three gates:
// zero escapes (TCP port-25 frames at any shard's upstream choke
// point), bit-identical observable streams serial-vs-parallel, and a
// hardware-aware wall-clock bound (>=2x at 4 shards when >=4 cores
// exist; bounded coordination overhead otherwise).

struct ShardStats {
  unsigned threads_requested = 0;
  unsigned threads_effective = 0;
  std::uint64_t events = 0;
  std::uint64_t cc_requests = 0;
  std::uint64_t cross_shard_messages = 0;
  std::uint64_t epochs = 0;
  std::uint64_t escapes = 0;
  std::uint64_t stream_hash = 0;  // FNV-1a over merged event lines.
  double wall_ms = 0;
};

ShardStats run_sharded(unsigned threads, std::size_t shards,
                       int inmates_per_shard, util::Duration duration) {
  core::ShardedFarmOptions options;
  options.shards = shards;
  options.threads = threads;
  options.seed = 0x5EEDF;
  core::ShardedFarm farm(
      options, [inmates_per_shard](core::Farm& shard_farm, std::size_t s) {
        auto& sub = shard_farm.add_subfarm(util::format("Shard%zu", s));
        sub.add_catchall_sink();
        sinks::SmtpSinkConfig sink_config;
        sink_config.port = 2526;
        sub.add_smtp_sink(sink_config, "bannersmtpsink");
        sub.set_autoinfect({Ipv4Addr(10, 9, 8, 7), 6543});
        sub.containment().samples().add("grum.000.exe");
        sub.catalog().register_prototype(
            "grum.*", [](const std::string&, util::Rng& rng) {
              mal::SpambotConfig config;
              config.family = "grum";
              config.c2 = {Ipv4Addr(50, 8, 207, 91), 80};
              config.send_interval = util::seconds(2);
              return std::make_unique<mal::SpambotBehavior>(config,
                                                            rng.fork());
            });
        sub.configure_containment(util::format(
            "[VLAN %d-%d]\nDecider = Grum\nInfection = grum.*\n",
            sub.router().config().vlan_first,
            sub.router().config().vlan_last));
        for (int i = 0; i < inmates_per_shard; ++i)
          sub.create_inmate(inm::HostingKind::kVm);
      });

  // Escape oracle at every shard's upstream choke point: Grum's policy
  // REFLECTs all port-25 traffic into the shard-local banner sink, so
  // any TCP port-25 frame here means spam reached the (simulated)
  // Internet. One counter slot per shard — taps run on the owning
  // shard's worker thread, reads happen after run_for (the lockstep
  // barrier orders them).
  std::vector<std::uint64_t> escapes_per_shard(farm.shard_count(), 0);
  for (std::size_t s = 0; s < farm.shard_count(); ++s) {
    std::uint64_t* slot = &escapes_per_shard[s];
    farm.shard(s).gateway().set_upstream_tap(
        [slot](util::TimePoint, const std::vector<std::uint8_t>& bytes) {
          const auto decoded = pkt::decode_frame(bytes);
          if (!decoded || !decoded->ip || !decoded->is_tcp()) return;
          if (decoded->dst_port() == 25) ++*slot;
        });
  }

  // The C&C anchor lives on shard 0, declared after the farm so its
  // HttpServer dies before the host stack it references.
  auto& cc_host = farm.shard(0).add_external_host("cc", Ipv4Addr(50, 8, 207, 91));
  ext::CcServer cc(cc_host, 80);
  mal::SpamTask task;
  task.targets = {{Ipv4Addr(64, 12, 88, 7), 25}};
  cc.set_document("/c2/tasks", task.serialize());

  const auto wall_start = std::chrono::steady_clock::now();
  farm.run_for(duration);
  const auto wall_end = std::chrono::steady_clock::now();

  ShardStats stats;
  stats.threads_requested = threads;
  stats.threads_effective = farm.threads();
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start)
          .count();
  stats.events = farm.event_count();
  stats.cc_requests = cc.requests();
  const sim::LockstepStats ls = farm.lockstep_stats();
  stats.cross_shard_messages = ls.messages;
  stats.epochs = ls.epochs;
  for (std::uint64_t n : escapes_per_shard) stats.escapes += n;
  std::uint64_t hash = 1469598103934665603ull;
  for (const std::string& line : farm.merged_event_lines()) {
    for (char c : line) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;
    }
    hash ^= static_cast<unsigned char>('\n');
    hash *= 1099511628211ull;
  }
  stats.stream_hash = hash;
  return stats;
}

// One JSON row shared by all three sweeps.
void json_row(util::JsonWriter& json, const char* sweep, int subfarms,
              int inmates, const char* datapath, const RunStats& stats) {
  json.begin_object();
  json.key("sweep");
  json.value(sweep);
  json.key("subfarms");
  json.value(subfarms);
  json.key("inmates_per_subfarm");
  json.value(inmates);
  json.key("datapath");
  json.value(datapath);
  json.key("flows_contained");
  json.value(stats.flows_contained);
  json.key("spam_harvested");
  json.value(stats.spam_harvested);
  json.key("cs_decisions_max");
  json.value(stats.cs_decisions_max);
  json.key("sim_events");
  json.value(stats.sim_events);
  json.key("wall_ms");
  json.value(stats.wall_ms);
  json.end_object();
}

// Write + validate the machine-readable summary; nonzero on failure so
// the smoke target gates on it.
int write_summary(const util::JsonWriter& json, const char* path) {
  if (!util::json_valid(json.str())) {
    std::fprintf(stderr, "s1: generated %s is not valid JSON\n", path);
    return 1;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << json.str() << '\n';
  out.close();
  if (!out) {
    std::fprintf(stderr, "s1: cannot write %s\n", path);
    return 1;
  }
  std::ifstream back(path, std::ios::binary);
  std::string reread((std::istreambuf_iterator<char>(back)),
                     std::istreambuf_iterator<char>());
  if (!util::json_valid(reread)) {
    std::fprintf(stderr, "s1: %s failed round-trip validation\n", path);
    return 1;
  }
  std::printf("\nwrote %s (validated)\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  const auto duration = smoke ? util::minutes(2) : util::minutes(10);
  const double minutes = duration.usec / 60e6;
  std::printf(
      "S1 reproduction (§7.2 scalability): spambot deployment sweeps,\n"
      "%.0f simulated minutes per configuration\n\n", minutes);

  util::JsonWriter json;
  json.begin_object();
  json.key("bench");
  json.value("s1_scalability");
  json.key("smoke");
  json.value(smoke);
  json.key("sim_minutes_per_row");
  json.value(minutes);
  json.key("rows");
  json.begin_array();

  std::printf("Sweep A: one subfarm, growing population (single CS "
              "interposes on all flows)\n");
  std::printf("%9s %10s %12s %14s %12s %10s\n", "INMATES", "FLOWS",
              "FLOWS/MIN", "CS DECISIONS", "SIM EVENTS", "WALL(ms)");
  std::printf("%s\n", std::string(74, '-').c_str());
  const std::vector<int> sweep_a =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8, 12};
  for (int inmates : sweep_a) {
    const RunStats stats = run(1, inmates, duration);
    std::printf("%9d %10llu %12.0f %14llu %12llu %10.0f\n", inmates,
                static_cast<unsigned long long>(stats.flows_contained),
                stats.flows_contained / minutes,
                static_cast<unsigned long long>(stats.cs_decisions_max),
                static_cast<unsigned long long>(stats.sim_events),
                stats.wall_ms);
    json_row(json, "population", 1, inmates, "fast", stats);
  }

  std::printf(
      "\nSweep B: 12 inmates total, spread across subfarms (per-subfarm\n"
      "containment servers distribute the decision load, §7.2's remedy)\n");
  std::printf("%9s %10s %12s %20s %10s\n", "SUBFARMS", "FLOWS",
              "FLOWS/MIN", "BUSIEST CS (dec.)", "WALL(ms)");
  std::printf("%s\n", std::string(68, '-').c_str());
  const std::vector<int> sweep_b =
      smoke ? std::vector<int>{2} : std::vector<int>{1, 2, 3, 4, 6};
  for (int subfarms : sweep_b) {
    const RunStats stats = run(subfarms, 12 / subfarms, duration);
    std::printf("%9d %10llu %12.0f %20llu %10.0f\n", subfarms,
                static_cast<unsigned long long>(stats.flows_contained),
                stats.flows_contained / minutes,
                static_cast<unsigned long long>(stats.cs_decisions_max),
                stats.wall_ms);
    json_row(json, "subfarm_spread", subfarms, 12 / subfarms, "fast", stats);
  }

  std::printf(
      "\nSweep C: gateway datapath, 2 subfarms x 6 inmates (slow path\n"
      "decodes and re-encodes every frame; the zero-copy fast path\n"
      "rewrites established flows in place)\n");
  std::printf("%9s %10s %12s %12s %10s %12s\n", "DATAPATH", "FLOWS",
              "FLOWS/MIN", "SIM EVENTS", "WALL(ms)", "EVENTS/ms");
  std::printf("%s\n", std::string(70, '-').c_str());
  for (const bool fast : {false, true}) {
    const RunStats stats = run(2, 6, duration, fast);
    std::printf("%9s %10llu %12.0f %12llu %10.0f %12.0f\n",
                fast ? "fast" : "slow",
                static_cast<unsigned long long>(stats.flows_contained),
                stats.flows_contained / minutes,
                static_cast<unsigned long long>(stats.sim_events),
                stats.wall_ms,
                stats.wall_ms > 0 ? stats.sim_events / stats.wall_ms : 0.0);
    json_row(json, "datapath", 2, 6, fast ? "fast" : "slow", stats);
  }

  std::printf(
      "\nSweep D: gateway verdict cache, scan-class workload (one inmate,\n"
      "8 targets, port 80, cacheable FORWARD at dst-port scope, 1s CS\n"
      "decision cost). Cache off: every setup pays the shim round trip.\n"
      "Cache on: only the first does.\n");
  std::printf("%9s %10s %12s %14s %12s %10s\n", "CACHE", "SETUPS",
              "SETUPS/MIN", "CS DECISIONS", "CACHE HITS", "WALL(ms)");
  std::printf("%s\n", std::string(74, '-').c_str());
  double setups_per_min[2] = {0, 0};
  for (const bool cache_on : {false, true}) {
    const CacheStats stats = run_cache(cache_on, duration);
    setups_per_min[cache_on ? 1 : 0] = stats.setups / minutes;
    std::printf("%9s %10llu %12.0f %14llu %12llu %10.0f\n",
                cache_on ? "on" : "off",
                static_cast<unsigned long long>(stats.setups),
                stats.setups / minutes,
                static_cast<unsigned long long>(stats.cs_decisions),
                static_cast<unsigned long long>(stats.cache_hits),
                stats.wall_ms);

    json.begin_object();
    json.key("sweep");
    json.value("verdict_cache");
    json.key("cache");
    json.value(cache_on ? "on" : "off");
    json.key("flow_setups");
    json.value(stats.setups);
    json.key("setups_per_min");
    json.value(stats.setups / minutes);
    json.key("cs_decisions");
    json.value(stats.cs_decisions);
    json.key("cache_hits");
    json.value(stats.cache_hits);
    json.key("cache_misses");
    json.value(stats.cache_misses);
    json.key("cache_inserts");
    json.value(stats.cache_inserts);
    json.key("wall_ms");
    json.value(stats.wall_ms);
    json.end_object();
  }
  const double cache_speedup =
      setups_per_min[0] > 0 ? setups_per_min[1] / setups_per_min[0] : 0;
  std::printf("\nCache-on flow-setup throughput: %.1fx cache-off\n",
              cache_speedup);

  std::printf(
      "\nSweep E: compiled policy table, first-contact workload (one\n"
      "inmate, a fresh destination every probe, port 80, fully compilable\n"
      "policy, 1s CS decision cost). The verdict cache never matches —\n"
      "every probe is a first contact. Table off: every setup is a shim\n"
      "round trip. Table on: the gateway answers from the compiled table.\n");
  std::printf("%9s %10s %12s %14s %12s %10s\n", "TABLE", "SETUPS",
              "SETUPS/MIN", "CS DECISIONS", "TABLE HITS", "WALL(ms)");
  std::printf("%s\n", std::string(74, '-').c_str());
  double table_setups_per_min[2] = {0, 0};
  std::uint64_t table_on_cs_decisions = 0;
  for (const bool table_on : {false, true}) {
    const TableStats stats = run_table(table_on, duration);
    table_setups_per_min[table_on ? 1 : 0] = stats.setups / minutes;
    if (table_on) table_on_cs_decisions = stats.cs_decisions;
    std::printf("%9s %10llu %12.0f %14llu %12llu %10.0f\n",
                table_on ? "on" : "off",
                static_cast<unsigned long long>(stats.setups),
                stats.setups / minutes,
                static_cast<unsigned long long>(stats.cs_decisions),
                static_cast<unsigned long long>(stats.table_hits),
                stats.wall_ms);

    json.begin_object();
    json.key("sweep");
    json.value("policy_table");
    json.key("table");
    json.value(table_on ? "on" : "off");
    json.key("flow_setups");
    json.value(stats.setups);
    json.key("setups_per_min");
    json.value(stats.setups / minutes);
    json.key("cs_decisions");
    json.value(stats.cs_decisions);
    json.key("table_hits");
    json.value(stats.table_hits);
    json.key("wall_ms");
    json.value(stats.wall_ms);
    json.end_object();
  }
  const double table_speedup =
      table_setups_per_min[0] > 0
          ? table_setups_per_min[1] / table_setups_per_min[0]
          : 0;
  std::printf("\nTable-on first-contact throughput: %.1fx table-off\n",
              table_speedup);

  std::printf(
      "\nStructural limits (§7.2):\n"
      "  VLAN ID space:            4096 (802.1Q twelve-bit field)\n"
      "  Inmates per /24 subfarm:  ~236 internal leases, ~244 globals\n"
      "  Paper's operating point:  5-6 subfarms, handful-to-dozen "
      "inmates\n\n"
      "Shape check: contained-flow throughput grows with population; the\n"
      "single CS's decision count grows linearly with farm size in sweep "
      "A\nand is flattened by per-subfarm containment servers in sweep "
      "B.\n");

  const unsigned hw_threads = std::thread::hardware_concurrency();
  std::printf(
      "\nSweep F: sharded execution, 4 shards (one farm replica per\n"
      "shard, external switches chain-bridged, lockstep epochs = 10ms\n"
      "cross-shard latency), same seed at 1/2/4 worker threads.\n"
      "Hardware threads available: %u\n",
      hw_threads);
  std::printf("%9s %10s %12s %12s %10s %10s %10s\n", "THREADS", "EVENTS",
              "CC REQS", "X-SHARD MSG", "ESCAPES", "WALL(ms)", "SPEEDUP");
  std::printf("%s\n", std::string(80, '-').c_str());
  const std::size_t f_shards = 4;
  const int f_inmates = smoke ? 2 : 6;
  double serial_wall = 0;
  std::uint64_t serial_hash = 0;
  std::uint64_t serial_events = 0;
  bool f_streams_identical = true;
  std::uint64_t f_escapes = 0;
  std::uint64_t f_cross_messages = 0;
  std::uint64_t f_cc_requests = 0;
  double f_speedup4 = 0;
  double f_wall4 = 0;
  std::uint64_t f_epochs4 = 0;
  for (unsigned threads : {1u, 2u, 4u}) {
    const ShardStats stats =
        run_sharded(threads, f_shards, f_inmates, duration);
    if (threads == 1) {
      serial_wall = stats.wall_ms;
      serial_hash = stats.stream_hash;
      serial_events = stats.events;
    } else if (stats.stream_hash != serial_hash ||
               stats.events != serial_events) {
      f_streams_identical = false;
    }
    if (threads == 4) {
      f_speedup4 = stats.wall_ms > 0 ? serial_wall / stats.wall_ms : 0;
      f_wall4 = stats.wall_ms;
      f_epochs4 = stats.epochs;
    }
    f_escapes += stats.escapes;
    f_cross_messages = stats.cross_shard_messages;
    f_cc_requests = stats.cc_requests;
    // A wall-clock ratio on a host without the cores to run the workers
    // is time-slicing noise, not a speedup; report the coordination
    // overhead (wall minus serial) there instead of a misleading 0.2x.
    const bool speedup_meaningful = threads == 1 || hw_threads >= 4;
    std::printf("%9u %10llu %12llu %12llu %10llu %10.0f ", threads,
                static_cast<unsigned long long>(stats.events),
                static_cast<unsigned long long>(stats.cc_requests),
                static_cast<unsigned long long>(stats.cross_shard_messages),
                static_cast<unsigned long long>(stats.escapes),
                stats.wall_ms);
    if (speedup_meaningful) {
      std::printf("%9.2fx\n",
                  stats.wall_ms > 0 ? serial_wall / stats.wall_ms : 0.0);
    } else {
      std::printf("%+9.0fms\n", stats.wall_ms - serial_wall);
    }

    json.begin_object();
    json.key("sweep");
    json.value("sharded");
    json.key("shards");
    json.value(static_cast<std::uint64_t>(f_shards));
    json.key("inmates_per_shard");
    json.value(f_inmates);
    json.key("threads");
    json.value(static_cast<std::uint64_t>(threads));
    json.key("threads_effective");
    json.value(static_cast<std::uint64_t>(stats.threads_effective));
    json.key("events");
    json.value(stats.events);
    json.key("cc_requests");
    json.value(stats.cc_requests);
    json.key("cross_shard_messages");
    json.value(stats.cross_shard_messages);
    json.key("lockstep_epochs");
    json.value(stats.epochs);
    json.key("escapes");
    json.value(stats.escapes);
    json.key("stream_hash");
    json.value(util::format("%016llx",
                            static_cast<unsigned long long>(
                                stats.stream_hash)));
    json.key("wall_ms");
    json.value(stats.wall_ms);
    if (speedup_meaningful) {
      json.key("speedup_vs_serial");
      json.value(stats.wall_ms > 0 ? serial_wall / stats.wall_ms : 0.0);
    } else {
      json.key("skipped_reason");
      json.value("insufficient_cores");
      json.key("coordination_overhead_ms");
      json.value(stats.wall_ms - serial_wall);
    }
    json.end_object();
  }
  std::printf("\nSharded streams bit-identical across thread counts: %s\n",
              f_streams_identical ? "yes" : "NO");

  json.end_array();
  json.key("cache_speedup");
  json.value(cache_speedup);
  json.key("table_speedup");
  json.value(table_speedup);
  if (hw_threads >= 4) {
    json.key("sharded_speedup_4t");
    json.value(f_speedup4);
  } else {
    json.key("sharded_speedup_4t_skipped_reason");
    json.value("insufficient_cores");
    json.key("sharded_coordination_overhead_ms");
    json.value(f_wall4 - serial_wall);
  }
  json.key("sharded_streams_identical");
  json.value(f_streams_identical);
  json.key("hardware_threads");
  json.value(static_cast<std::uint64_t>(hw_threads));
  json.end_object();

  // Self-validation: the verdict cache's reason to exist is taking the
  // CS off the hot path; anything under 10x means it did not.
  if (cache_speedup < 10.0) {
    std::fprintf(stderr,
                 "s1: cache-on flow-setup throughput only %.1fx cache-off "
                 "(expected >= 10x)\n",
                 cache_speedup);
    return 1;
  }
  // Same contract for the compiled table on the first-contact path, and
  // the whole point of compiling is that the CS sees nothing: under a
  // fully compilable policy every table-on decision must stay local.
  if (table_speedup < 5.0) {
    std::fprintf(stderr,
                 "s1: table-on first-contact throughput only %.1fx "
                 "table-off (expected >= 5x)\n",
                 table_speedup);
    return 1;
  }
  if (table_on_cs_decisions != 0) {
    std::fprintf(stderr,
                 "s1: containment server decided %llu flows with the table "
                 "on (expected 0 under a fully compiled policy)\n",
                 static_cast<unsigned long long>(table_on_cs_decisions));
    return 1;
  }
  // Sweep F contracts. Containment and determinism are unconditional:
  // parallel execution must never leak a frame or reorder an observable
  // event, whatever the hardware.
  if (f_escapes != 0) {
    std::fprintf(stderr, "s1: %llu containment escapes in sharded runs\n",
                 static_cast<unsigned long long>(f_escapes));
    return 1;
  }
  if (!f_streams_identical) {
    std::fprintf(stderr,
                 "s1: sharded event streams diverged across thread counts\n");
    return 1;
  }
  if (f_cross_messages == 0 || f_cc_requests == 0) {
    std::fprintf(stderr,
                 "s1: sharded sweep exercised no cross-shard traffic "
                 "(messages=%llu cc_requests=%llu) — the gates above are "
                 "vacuous\n",
                 static_cast<unsigned long long>(f_cross_messages),
                 static_cast<unsigned long long>(f_cc_requests));
    return 1;
  }
  // Wall-clock is hardware-aware: 4 workers can only beat 1 when the
  // machine has cores to run them on. With >=4 hardware threads the
  // sharded loop must hit the 2x contract; on smaller machines (CI
  // containers are often pinned to 1-2 cores) the enforceable claim is
  // bounded coordination overhead — lockstep barriers and mailbox
  // drains must not make 4 time-sliced workers much slower than the
  // inline serial path.
  if (hw_threads >= 4) {
    if (f_speedup4 < 2.0) {
      std::fprintf(stderr,
                   "s1: sharded speedup at 4 threads only %.2fx serial "
                   "(expected >= 2x on %u hardware threads)\n",
                   f_speedup4, hw_threads);
      return 1;
    }
  } else {
    // Per-barrier budget: each lockstep epoch costs two condvar
    // round-trips per worker, which on a time-sliced single core means
    // a handful of context switches — roughly 15us/epoch measured.
    // 150us/epoch (plus scheduling noise slack) still catches a lock
    // convoy or an accidental sleep in the barrier.
    const double budget = serial_wall + 250.0 +
                          0.15 * static_cast<double>(f_epochs4);
    if (f_wall4 > budget) {
      std::fprintf(stderr,
                   "s1: sharded 4-thread wall %.0fms exceeds coordination "
                   "budget %.0fms (serial %.0fms, %llu epochs, %u hardware "
                   "threads)\n",
                   f_wall4, budget, serial_wall,
                   static_cast<unsigned long long>(f_epochs4), hw_threads);
      return 1;
    }
    std::printf(
        "note: %u hardware thread(s) — enforcing coordination-overhead "
        "bound instead of the 2x speedup contract (needs >= 4 cores)\n",
        hw_threads);
  }
  return write_summary(json, "BENCH_s1.json");
}
