// Reproduces §7.1 "Satisfying fidelity": Waledac (and then others)
// checked SMTP greeting banners; redirection to a default sink made the
// bots cease activity, so GQ's SMTP sink was upgraded to grab banners
// from the real targets. The bench sweeps sink fidelity against a
// banner-checking spambot and measures the spam harvest.
#include <cstdio>
#include <memory>

#include "core/farm.h"
#include "extnet/extnet.h"
#include "malware/spambot.h"
#include "util/strings.h"

namespace {

using namespace gq;
using util::Ipv4Addr;

struct Outcome {
  std::uint64_t sessions = 0;
  std::uint64_t harvest = 0;
  std::uint64_t banner_rejections = 0;
  bool bot_dormant = false;
  std::uint64_t banners_grabbed = 0;
};

Outcome run(bool banner_grabbing, const std::string& static_banner) {
  core::Farm farm;
  auto& cc_host = farm.add_external_host("cc", Ipv4Addr(79, 4, 4, 20));
  ext::CcServer cc(cc_host, 80);
  mal::SpamTask task;
  task.targets = {{Ipv4Addr(64, 233, 10, 1), 25}};
  cc.set_document("/c2/tasks", task.serialize());

  // The real target, with the genuine Google-style banner.
  auto& gmail_host =
      farm.add_external_host("gmail-mx", Ipv4Addr(64, 233, 10, 1));
  ext::PolicedSmtpServer gmail(gmail_host, 25, &farm.cbl(),
                               "220 mx.google.example ESMTP gsmtp");

  auto& sub = farm.add_subfarm("FidelityFarm");
  sub.add_catchall_sink();
  sinks::SmtpSinkConfig sink_config;
  sink_config.port = 2526;
  sink_config.banner_grabbing = banner_grabbing;
  sink_config.static_banner = static_banner;
  auto& sink = sub.add_smtp_sink(sink_config, "bannersmtpsink");
  sub.set_autoinfect({Ipv4Addr(10, 9, 8, 7), 6543});
  sub.containment().samples().add("waledac.090612.000.exe");
  sub.catalog().register_prototype(
      "waledac.*", [](const std::string&, util::Rng& rng) {
        mal::SpambotConfig config;
        config.family = "waledac";
        config.c2 = {Ipv4Addr(79, 4, 4, 20), 80};
        config.banner_requires = "gsmtp";  // Picky about greetings.
        config.send_interval = util::seconds(3);
        return std::make_unique<mal::SpambotBehavior>(config, rng.fork());
      });
  // The banner-grabbing sink needs destination hints from the policy
  // side; the containment server's Waledac policy reflects SMTP there,
  // and the bench sends the hint the CS would (one inmate, one target).
  sub.configure_containment(
      "[VLAN 16-31]\nDecider = Waledac\nInfection = waledac.*\n");

  auto& inmate = sub.create_inmate(inm::HostingKind::kVm);
  farm.run_for(util::minutes(2));
  if (const auto* binding = sub.router().inmates().by_vlan(16)) {
    sink.add_destination_hint(binding->internal_addr,
                              {Ipv4Addr(64, 233, 10, 1), 25});
  }
  farm.run_for(util::minutes(28));

  Outcome outcome;
  outcome.sessions = sink.sessions();
  outcome.harvest = sink.data_transfers();
  outcome.banners_grabbed = sink.banners_grabbed();
  if (auto* behavior =
          dynamic_cast<mal::SpambotBehavior*>(inmate.behavior())) {
    outcome.banner_rejections = behavior->banner_rejections();
    outcome.bot_dormant = behavior->dormant();
  }
  return outcome;
}

}  // namespace

int main() {
  std::printf(
      "E3 reproduction (§7.1 'Satisfying fidelity'): banner-checking "
      "spambot\nvs sink fidelity (30 simulated minutes each).\n\n");
  std::printf("%-30s %9s %9s %9s %8s %8s\n", "SINK CONFIGURATION",
              "SESSIONS", "HARVEST", "REJECTS", "DORMANT", "GRABBED");
  std::printf("%s\n", std::string(80, '-').c_str());

  const Outcome low = run(false, "220 mx.sink.gq ESMTP ready");
  std::printf("%-30s %9llu %9llu %9llu %8s %8llu\n",
              "static generic banner",
              static_cast<unsigned long long>(low.sessions),
              static_cast<unsigned long long>(low.harvest),
              static_cast<unsigned long long>(low.banner_rejections),
              low.bot_dormant ? "YES" : "no",
              static_cast<unsigned long long>(low.banners_grabbed));

  const Outcome high = run(true, "220 mx.sink.gq ESMTP ready");
  std::printf("%-30s %9llu %9llu %9llu %8s %8llu\n",
              "banner grabbing (real target)",
              static_cast<unsigned long long>(high.sessions),
              static_cast<unsigned long long>(high.harvest),
              static_cast<unsigned long long>(high.banner_rejections),
              high.bot_dormant ? "YES" : "no",
              static_cast<unsigned long long>(high.banners_grabbed));
  std::printf("%s\n", std::string(80, '-').c_str());
  std::printf(
      "\nShape check: against the generic banner the bot rejects the "
      "greeting\nand goes dormant (near-zero harvest); with banner "
      "grabbing the sink\nrelays the real 'gsmtp' greeting and the "
      "harvest flows.\n");
  const bool ok = low.bot_dormant && low.harvest == 0 &&
                  !high.bot_dormant && high.harvest > 50;
  return ok ? 0 : 1;
}
