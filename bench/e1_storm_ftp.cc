// Reproduces §7.1 "Unexpected visitors": during the 2008 Storm
// infiltration, proxy bots kept outside-reachable (for their C&C relay
// role) suddenly received FTP iframe-injection jobs from an upstream
// botmaster. Under GQ's Storm policy — HTTP C&C forwarded, everything
// else reflected to the sink — the attack lands in the sink instead of
// the victim. The bench runs the identical scenario twice: once under a
// dangerously loose ForwardAll policy (what a careless analyst might
// run) and once under the Storm containment, and compares the damage.
#include <cstdio>
#include <memory>

#include "containment/policies.h"
#include "core/farm.h"
#include "extnet/extnet.h"
#include "malware/stormbot.h"
#include "services/ftp.h"
#include "util/strings.h"

namespace {

using namespace gq;
using util::Ipv4Addr;

struct Outcome {
  std::uint64_t jobs_delivered = 0;
  std::uint64_t ftp_attempts = 0;
  std::uint64_t injections_completed = 0;
  bool victim_page_modified = false;
  std::uint64_t sink_flows = 0;
};

Outcome run(bool contained) {
  core::Farm farm;

  // The simulated Internet: Storm's HTTP C&C, the victim FTP server,
  // and the upstream botmaster.
  auto& cc_host = farm.add_external_host("storm-cc", Ipv4Addr(77, 55, 3, 9));
  ext::CcServer cc(cc_host, 80);
  cc.set_document("/storm/checkin", "ok");
  auto& victim = farm.add_external_host("ftp-victim",
                                        Ipv4Addr(208, 97, 20, 5));
  svc::FtpServer ftpd(victim, 21, "webmaster", "hunter2");
  const std::string original_page = "<html><body>corporate site</body></html>";
  ftpd.files()["/index.html"] = original_page;
  auto& master_host =
      farm.add_external_host("botmaster", Ipv4Addr(41, 3, 9, 77));
  ext::StormMaster master(master_host);

  // The Storm proxy subfarm: outside reachability preserved.
  core::SubfarmOptions options;
  options.inbound_mode = gw::InboundMode::kForward;
  auto& sub = farm.add_subfarm("StormFarm", options);
  auto& sink = sub.add_catchall_sink();
  if (contained) {
    sub.containment().bind_policy(
        16, 31, std::make_shared<cs::StormPolicy>(sub.policy_env()));
  } else {
    sub.containment().bind_policy(16, 31,
                                  std::make_shared<cs::ForwardAllPolicy>());
  }

  auto& inmate = sub.create_inmate(inm::HostingKind::kVm);
  farm.run_for(util::minutes(1));

  mal::StormBotConfig bot_config;
  bot_config.listen_port = 8080;
  bot_config.c2 = {Ipv4Addr(77, 55, 3, 9), 80};
  auto bot = std::make_unique<mal::StormProxyBehavior>(bot_config,
                                                       farm.rng().fork());
  auto* bot_ptr = bot.get();
  inmate.infect_with(std::move(bot), "storm.proxy.exe");
  farm.run_for(util::seconds(10));

  // The upstream master pushes the iframe-injection job to the proxy's
  // global address.
  const auto* binding = sub.router().inmates().by_vlan(16);
  master.send_ftp_inject({binding->global_addr, 8080},
                         {Ipv4Addr(208, 97, 20, 5), 21}, "webmaster",
                         "hunter2", "/index.html",
                         "<iframe src=\"http://evil.example/\"></iframe>");
  farm.run_for(util::minutes(3));

  Outcome outcome;
  outcome.jobs_delivered = bot_ptr->jobs_received();
  outcome.ftp_attempts = bot_ptr->ftp_attempts();
  outcome.injections_completed = bot_ptr->ftp_injections_completed();
  outcome.victim_page_modified =
      ftpd.files()["/index.html"] != original_page;
  outcome.sink_flows = sink.tcp_flows();
  return outcome;
}

}  // namespace

int main() {
  std::printf(
      "E1 reproduction (§7.1 'Unexpected visitors'): Storm proxy bots "
      "receive\nFTP iframe-injection jobs from an upstream botmaster.\n\n");
  std::printf("%-26s %12s %12s\n", "", "UNCONTAINED", "GQ (Storm)");
  std::printf("%s\n", std::string(54, '-').c_str());
  const Outcome loose = run(/*contained=*/false);
  const Outcome tight = run(/*contained=*/true);
  auto row = [](const char* label, std::uint64_t a, std::uint64_t b) {
    std::printf("%-26s %12llu %12llu\n", label,
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  };
  row("C&C jobs reaching the bot", loose.jobs_delivered,
      tight.jobs_delivered);
  row("FTP attacks attempted", loose.ftp_attempts, tight.ftp_attempts);
  row("Injections completed", loose.injections_completed,
      tight.injections_completed);
  row("Flows caught by the sink", loose.sink_flows, tight.sink_flows);
  std::printf("%-26s %12s %12s\n", "Victim page defaced",
              loose.victim_page_modified ? "YES" : "no",
              tight.victim_page_modified ? "YES" : "no");
  std::printf("%s\n", std::string(54, '-').c_str());
  std::printf(
      "\nShape check: the bot operates in both runs (jobs delivered, FTP\n"
      "attempted — the proxy role needs inbound reachability), but only\n"
      "under the loose policy does the attack complete. Under GQ the FTP\n"
      "flow surfaces in the sink — which is exactly how the authors\n"
      "*discovered* this behaviour.\n");
  const bool ok = loose.victim_page_modified && !tight.victim_page_modified &&
                  tight.sink_flows > 0;
  return ok ? 0 : 1;
}
