// Reproduces paper Table 1: "Self-propagating worms caught by GQ in
// early 2006". For each worm family class we deploy a worm-era
// honeyfarm subfarm (WormFarm redirect containment), seed one inmate,
// and measure what the paper's columns report: propagation events, the
// number of connections per infection, and the incubation period (delay
// from an infection in the farm to the infection of the next inmate).
//
// Absolute numbers depend on our calibrated behaviour models; the shape
// to check against the paper: multi-connection families (Spybot, Sdbot,
// Boohoo) incubate for minutes while the 2-connection Korgo class
// propagates in seconds, and *every* propagation stays inside the farm.
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "containment/policies.h"
#include "core/farm.h"
#include "malware/worm.h"
#include "util/strings.h"

namespace {

// The paper's reported incubation seconds for the family classes our
// catalogue models (Table 1, representative rows).
const std::map<std::pair<std::string, std::string>, double>
    kPaperIncubation = {
        {{"x.exe", "W32.Korgo.V"}, 6.0},
        {{"x.exe", "W32.Korgo.S"}, 6.6},
        {{"a####.exe", "W32.Zotob.E"}, 29.0},
        {{"enbiei.exe", "W32.Blaster.F.Worm"}, 28.9},
        {{"msblast.exe", "W32.Balster.Worm"}, 43.8},
        {{"dllhost.exe", "W32.Welchia.Worm"}, 24.5},
        {{"scardsvr32.exe", "W32.Femot.Worm"}, 96.6},
        {{"lsd", "W32.Poxdar"}, 32.4},
        {{"cpufanctrl.exe", "Backdoor.Sdbot"}, 111.2},
        {{"sysmsn.exe", "W32.Spybot.Worm"}, 79.6},
        {{"NeroFil.EXE", "W32.Spybot.Worm"}, 237.5},
        {{"xxxx...x", "Backdoor.Berbew.N"}, 9.4},
        {{"x.exe", "W32.Pinfi"}, 58.2},
        {{"multiple", "BAT.Boohoo.Worm"}, 384.9},
};

struct FamilyResult {
  gq::mal::WormFamily family;
  std::size_t events = 0;
  double first_incubation_s = 0;
  double mean_incubation_s = 0;
  bool escaped = false;
};

FamilyResult run_family(const gq::mal::WormFamily& family) {
  using namespace gq;
  core::Farm farm;
  auto& sub = farm.add_subfarm("WormFarm");
  sub.containment().bind_policy(
      16, 31, std::make_shared<cs::WormFarmPolicy>(sub.policy_env()));

  // Decoy: any touch means containment failed.
  auto& decoy = farm.add_external_host(
      "decoy", util::Ipv4Addr(23, 32, 2, 2));
  FamilyResult result;
  result.family = family;
  decoy.listen(family.port, [&](std::shared_ptr<net::TcpConnection>) {
    result.escaped = true;
  });

  std::vector<util::TimePoint> infection_times;
  auto on_infection = [&](const mal::InfectionEvent& event) {
    infection_times.push_back(event.when);
  };

  std::vector<inm::Inmate*> inmates;
  for (int i = 0; i < 6; ++i)
    inmates.push_back(&sub.create_inmate(inm::HostingKind::kVm));
  farm.run_for(util::minutes(2));

  for (std::size_t i = 0; i < inmates.size(); ++i) {
    inmates[i]->infect_with(
        std::make_unique<mal::WormHostBehavior>(
            family, inmates[i]->vlan(), i == 0, on_infection,
            farm.rng().fork()),
        family.executable);
  }
  const util::TimePoint seed_time = farm.loop().now();
  farm.run_for(util::minutes(20));

  result.events = infection_times.size();
  if (!infection_times.empty()) {
    result.first_incubation_s =
        (infection_times.front() - seed_time).seconds_f();
    // Mean inter-infection delay (the per-event incubation the paper
    // tabulates): delay from each infection to the next one it causes.
    double total = 0;
    util::TimePoint previous = seed_time;
    for (const auto& t : infection_times) {
      total += (t - previous).seconds_f();
      previous = t;
    }
    result.mean_incubation_s = total / static_cast<double>(result.events);
  }
  return result;
}

}  // namespace

int main() {
  std::printf(
      "Table 1 reproduction: worms captured under honeyfarm redirect "
      "containment\n"
      "(6 inmates per farm, 20 simulated minutes per family)\n\n");
  // INCUB(s) is the paper's metric: delay from the initial infection in
  // the farm to the subsequent infection of the next inmate.
  std::printf("%-16s %-20s %7s %7s %12s %12s %10s %11s\n", "EXECUTABLE",
              "WORM NAME", "EVENTS", "#CONNS", "INCUB(s)", "PAPER(s)",
              "CONTAINED", "mean-gap(s)");
  std::printf("%s\n", std::string(100, '-').c_str());

  bool all_contained = true;
  for (const auto& family : gq::mal::table1_families()) {
    const FamilyResult result = run_family(family);
    all_contained = all_contained && !result.escaped;
    const auto paper =
        kPaperIncubation.find({family.executable, family.name});
    std::printf("%-16s %-20s %7zu %7d %12.1f %12s %10s %11.1f\n",
                family.executable.c_str(), family.name.c_str(),
                result.events, family.conns_per_infection,
                result.first_incubation_s,
                paper == kPaperIncubation.end()
                    ? "-"
                    : gq::util::format("%.1f", paper->second).c_str(),
                result.escaped ? "ESCAPED!" : "yes",
                result.mean_incubation_s);
  }
  std::printf("%s\n", std::string(100, '-').c_str());
  std::printf(
      "Shape check vs the paper: the Korgo/Berbew class (2 conns) "
      "incubates in\nseconds; Spybot/Sdbot/Boohoo-class infections (5+ "
      "conns) need minutes —\nthe paper's point that even \"fast\" "
      "infections may require long execution\nwindows to observe. All "
      "propagation chains contained: %s\n",
      all_contained ? "YES" : "NO (bug!)");
  return all_contained ? 0 : 1;
}
