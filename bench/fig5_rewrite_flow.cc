// Reproduces paper Figure 5: the TCP packet flow through gateway and
// containment server during a REWRITE containment. An inmate fetches
// "GET /bot.exe"; the containment proxy rewrites the request to
// "GET /cleanup.exe" on its way to the real server and rewrites the 200
// answer into a 404 toward the inmate. The bench replays the recorded
// packet traces of both gateway legs as a Figure 5 style ladder, showing
// the injected request shim, the response shim, the sequence-number
// bumping, and the nonce-port outbound leg.
#include <cstdio>
#include <memory>

#include "containment/handlers.h"
#include "containment/policies.h"
#include "core/farm.h"
#include "packet/frame.h"
#include "packet/pcap.h"
#include "services/http.h"
#include "shim/shim.h"
#include "util/strings.h"

namespace {

using namespace gq;
using util::Ipv4Addr;

class Figure5Policy : public cs::Policy {
 public:
  Figure5Policy() : Policy("Fig5Rewrite") {}
  cs::Decision decide(const cs::FlowInfo&) override {
    return cs::Decision::rewrite("C&C filtering");
  }
  std::unique_ptr<cs::RewriteHandler> make_rewrite_handler(
      const cs::FlowInfo&) override {
    return std::make_unique<cs::HttpFilterHandler>(
        [](svc::HttpRequest request) -> std::optional<svc::HttpRequest> {
          if (request.path == "/bot.exe") request.path = "/cleanup.exe";
          return request;
        },
        [](svc::HttpResponse response) {
          if (response.status == 200)
            return svc::HttpResponse::make(404, "NOT FOUND", "");
          return response;
        });
  }
};

void print_ladder(const char* title, const std::vector<pkt::PcapRecord>& records,
                  util::TimePoint start) {
  std::printf("%s\n%s\n", title, std::string(78, '-').c_str());
  int shown = 0;
  for (const auto& record : records) {
    auto frame = pkt::decode_frame(record.frame);
    if (!frame || !frame->tcp || !frame->ip) continue;
    const auto& tcp = *frame->tcp;
    std::string flags;
    if (tcp.syn()) flags += "SYN ";
    if (tcp.fin()) flags += "FIN ";
    if (tcp.rst()) flags += "RST ";
    if (tcp.has_ack()) flags += "ACK";
    std::string note;
    if (!tcp.payload.empty()) {
      if (shim::RequestShim::parse(tcp.payload)) {
        note = "<-- REQ SHIM (24 B, injected by gateway)";
      } else if (shim::ResponseShim::parse(tcp.payload)) {
        note = "<-- RSP SHIM (verdict; stripped by gateway)";
      } else {
        std::string text(
            reinterpret_cast<const char*>(tcp.payload.data()),
            std::min<std::size_t>(tcp.payload.size(), 26));
        for (auto& c : text)
          if (c == '\r' || c == '\n') c = ' ';
        note = "\"" + text + "\"";
      }
    }
    std::printf("%8.1fms  %15s:%-5u > %15s:%-5u %-12s len=%-4zu %s\n",
                (record.time - start).usec / 1000.0,
                frame->ip->src.str().c_str(), tcp.src_port,
                frame->ip->dst.str().c_str(), tcp.dst_port, flags.c_str(),
                tcp.payload.size(), note.c_str());
    if (++shown >= 40) {
      std::printf("  ... (%zu more packets)\n", records.size());
      break;
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  core::Farm farm;
  auto& web = farm.add_external_host("web", Ipv4Addr(192, 150, 187, 12));
  std::string path_at_server;
  svc::HttpServer httpd(web, 80,
                        [&](const svc::HttpRequest& request, util::Endpoint) {
                          path_at_server = request.path;
                          return svc::HttpResponse::make(200, "OK",
                                                         "MZbinary");
                        });

  auto& sub = farm.add_subfarm("Fig5");
  sub.containment().bind_policy(16, 31, std::make_shared<Figure5Policy>());
  auto& inmate = sub.create_inmate(inm::HostingKind::kVm);
  farm.run_for(util::minutes(1));

  const auto start = farm.loop().now();
  std::string inmate_saw;
  svc::HttpRequest request;
  request.path = "/bot.exe";
  svc::HttpClient::fetch(inmate.host(), {Ipv4Addr(192, 150, 187, 12), 80},
                         request,
                         [&](std::optional<svc::HttpResponse> response) {
                           if (response)
                             inmate_saw = util::format(
                                 "%d %s", response->status,
                                 response->reason.c_str());
                         });
  farm.run_for(util::seconds(30));

  std::printf(
      "Figure 5 reproduction: REWRITE containment packet flow\n"
      "Inmate requests GET /bot.exe from 192.150.187.12:80\n\n");

  // Management leg: inmate<->CS flow with shims, plus the nonce leg.
  auto mgmt = pkt::parse_pcap(farm.gateway().mgmt_trace().contents());
  std::vector<pkt::PcapRecord> after_start;
  for (auto& record : mgmt)
    if (record.time >= start) after_start.push_back(record);
  print_ladder("Management leg (gateway <-> containment server):",
               after_start, start);

  auto upstream = pkt::parse_pcap(farm.gateway().upstream_trace().contents());
  std::vector<pkt::PcapRecord> upstream_after;
  for (auto& record : upstream)
    if (record.time >= start) upstream_after.push_back(record);
  print_ladder("Upstream leg (gateway <-> real target, via nonce port):",
               upstream_after, start);

  std::printf("Server received request for:  %s   (rewritten from /bot.exe)\n",
              path_at_server.c_str());
  std::printf("Inmate received response:     %s  (rewritten from 200 OK)\n",
              inmate_saw.c_str());
  const bool ok = path_at_server == "/cleanup.exe" &&
                  inmate_saw.find("404") != std::string::npos;
  std::printf("Figure 5 semantics reproduced: %s\n", ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
