// Ablation/tooling bench: the §8 future-work policy prober applied to
// every built-in containment policy. For each policy it sweeps the
// probe matrix (destinations × ports × protocols), prints the verdict
// distribution and per-port decision table, and checks the universal
// harm-prevention expectations (no unfiltered SMTP escape). This is the
// "traffic generation tool that can automatically produce test cases
// for a given concrete containment policy" the paper wished for — and
// it demonstrates why ForwardAll-style policies are never acceptable.
#include <cstdio>
#include <memory>

#include "containment/policies.h"
#include "containment/prober.h"
#include "util/strings.h"

int main() {
  using namespace gq;
  using util::Ipv4Addr;

  cs::register_builtin_policies();
  cs::InlinePolicyServices services;
  services.list_inmates_fn = [] {
    return cs::PolicyServices::InmateList{
        {16, Ipv4Addr(10, 0, 0, 10)}, {17, Ipv4Addr(10, 0, 0, 11)}};
  };
  cs::PolicyEnv env(services);
  env.services["sink"] = {Ipv4Addr(10, 3, 0, 9), 9999};
  env.services["smtpsink"] = {Ipv4Addr(10, 3, 0, 10), 2525};
  env.services["bannersmtpsink"] = {Ipv4Addr(10, 3, 1, 4), 2526};
  env.services["autoinfect"] = {Ipv4Addr(10, 9, 8, 7), 6543};

  std::vector<std::string> flagged;
  for (const auto& name : cs::PolicyRegistry::instance().names()) {
    auto policy = cs::PolicyRegistry::instance().create(name, env);
    if (!policy) continue;
    cs::PolicyProber prober(policy);
    prober.expect_no_spam_escape();
    prober.run();
    std::printf("%s\n", prober.render_card().c_str());
    if (!prober.violations().empty()) flagged.push_back(policy->name());
    std::printf("\n");
  }
  std::printf("Policies flagged by the prober:");
  for (const auto& name : flagged) std::printf(" %s", name.c_str());
  std::printf(
      "\n\nThe prober should flag exactly two policies:\n"
      "  * ForwardAll — the deliberately-unsafe strawman; and\n"
      "  * WaledacTest — whose single-test-SMTP exemption is precisely "
      "the\n    §7.1 'mysterious blacklisting' mistake. Had this tool "
      "existed in\n    2009, it would have caught the policy before "
      "deployment — which is\n    the paper's very argument for building "
      "it (§8).\n");
  const bool ok = flagged.size() == 2;
  return ok ? 0 : 1;
}
