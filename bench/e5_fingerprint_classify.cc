// Reproduces §7.1 "Unclear phylogenies": third-party family labels are
// unreliable, so GQ classifies batches of samples itself — "we reflect
// all outgoing network activity to our catch-all sink and apply
// network-level fingerprinting on the samples' initial activity trace"
// (the technique behind classifying ~10,000 pay-per-install samples).
//
// The bench runs a batch of samples drawn from four behavioural
// families (two spambot variants, a clickbot, a DGA bot) one after
// another through a sink-everything subfarm, fingerprints each sample's
// initial trace, clusters the fingerprints, and scores the clustering
// against the (hidden) true families. A few samples are deliberately
// split-personality (MegaD-or-Grum, as observed in February 2010).
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "containment/policies.h"
#include "core/farm.h"
#include "malware/clickbot.h"
#include "malware/dgabot.h"
#include "malware/fingerprint.h"
#include "malware/spambot.h"
#include "util/strings.h"

namespace {

using namespace gq;
using util::Ipv4Addr;

std::unique_ptr<inm::Behavior> make_family(int family, util::Rng& rng) {
  switch (family) {
    case 0: {  // Spambot variant A (HTTP C&C on 80).
      mal::SpambotConfig config;
      config.family = "famA";
      config.c2 = {Ipv4Addr(50, 8, 207, 91), 80};
      config.c2_poll_interval = util::seconds(40);
      config.send_interval = util::seconds(2);
      return std::make_unique<mal::SpambotBehavior>(config, rng.fork());
    }
    case 1: {  // Spambot variant B (C&C on 8080, different path).
      mal::SpambotConfig config;
      config.family = "famB";
      config.c2 = {Ipv4Addr(50, 8, 207, 91), 8080};
      config.c2_path = "/gate.php";
      config.c2_poll_interval = util::seconds(40);
      config.protocol_violations = true;
      return std::make_unique<mal::SpambotBehavior>(config, rng.fork());
    }
    case 2: {  // Clickbot.
      mal::ClickbotConfig config;
      config.c2 = {Ipv4Addr(50, 8, 207, 91), 80};
      config.c2_poll_interval = util::seconds(40);
      config.click_interval = util::seconds(2);
      return std::make_unique<mal::ClickbotBehavior>(config, rng.fork());
    }
    default: {  // DGA bot: DNS-heavy initial trace.
      mal::DgaBotConfig config;
      config.domains_per_round = 6;
      config.round_interval = util::seconds(45);
      return std::make_unique<mal::DgaBotBehavior>(config, rng.fork());
    }
  }
}

}  // namespace

int main() {
  core::Farm farm;
  core::SubfarmOptions options;
  // A (fake) resolver address so DGA samples emit DNS lookups — which
  // the containment reflects into the sink like everything else.
  options.dns_service = Ipv4Addr(198, 41, 0, 4);
  auto& sub = farm.add_subfarm("Classify", options);
  auto& sink = sub.add_catchall_sink();
  sub.containment().bind_policy(
      16, 31, std::make_shared<cs::SinkAllPolicy>(sub.policy_env()));

  // Record original destination ports from the gateway's event stream
  // (the sink only sees the reflected endpoint). The farm's reporter is
  // a bus subscriber already, so this extra tap must not feed it again.
  std::vector<std::uint16_t> event_ports;
  farm.gateway().set_event_handler([&](const gw::FlowEvent& event) {
    if (event.kind == gw::FlowEvent::Kind::kVerdict)
      event_ports.push_back(event.orig_dst.port);
  });

  auto& inmate = sub.create_inmate(inm::HostingKind::kVm);
  farm.run_for(util::minutes(1));

  // 32 samples, true family hidden from the classifier. A couple of
  // split-personality specimens pick their behaviour at infection time.
  const int kSamples = 32;
  std::vector<int> truth;
  std::vector<mal::Fingerprint> fingerprints;
  util::Rng assignment_rng(2010);

  for (int i = 0; i < kSamples; ++i) {
    int family = static_cast<int>(assignment_rng.below(4));
    if (i % 11 == 10) {  // Split personality: famA or famB, 50/50.
      family = assignment_rng.chance(0.5) ? 0 : 1;
    }
    truth.push_back(family);
    sink.clear_records();
    event_ports.clear();
    auto rng = farm.rng().fork();
    inmate.infect_with(make_family(family, rng),
                       gq::util::format("sample-%03d.exe", i));
    farm.run_for(util::minutes(3));
    if (auto* behavior = inmate.behavior()) behavior->stop();
    fingerprints.push_back(
        mal::make_fingerprint(sink.records(), event_ports, 8));
  }

  auto assignment = mal::cluster(fingerprints, 0.55);

  // Score: for each cluster, its majority family; accuracy = fraction of
  // samples whose cluster majority matches their truth.
  std::map<int, std::map<int, int>> cluster_families;
  for (int i = 0; i < kSamples; ++i)
    ++cluster_families[assignment[i]][truth[i]];
  std::map<int, int> majority;
  for (const auto& [cluster_id, counts] : cluster_families) {
    int best = -1, best_count = -1;
    for (const auto& [family, count] : counts)
      if (count > best_count) best = family, best_count = count;
    majority[cluster_id] = best;
  }
  int correct = 0;
  for (int i = 0; i < kSamples; ++i)
    if (majority[assignment[i]] == truth[i]) ++correct;

  std::printf(
      "E5 reproduction (§7.1 'Unclear phylogenies'): network-level\n"
      "fingerprint classification of a %d-sample batch\n\n", kSamples);
  std::printf("Example fingerprints (first 8 flows vs the sink):\n");
  std::map<int, bool> shown;
  for (int i = 0; i < kSamples; ++i) {
    if (shown[truth[i]]) continue;
    shown[truth[i]] = true;
    std::printf("  family %d: %s\n", truth[i],
                fingerprints[i].str().c_str());
  }
  std::printf("\nClusters found: %zu (true families: 4)\n",
              cluster_families.size());
  for (const auto& [cluster_id, counts] : cluster_families) {
    std::printf("  cluster %d:", cluster_id);
    for (const auto& [family, count] : counts)
      std::printf(" fam%d x%d", family, count);
    std::printf("\n");
  }
  const double accuracy = 100.0 * correct / kSamples;
  std::printf("\nMajority-label accuracy: %d/%d (%.0f%%)\n", correct,
              kSamples, accuracy);
  std::printf(
      "Shape check: the batch separates into family-shaped clusters from\n"
      "initial traces alone — the capability GQ used on ~10,000 samples.\n");
  return accuracy >= 75.0 ? 0 : 1;
}
