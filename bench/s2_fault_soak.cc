// Fault-injection soak sweep: drives a full farm through all six
// verdicts for half a simulated hour per row while the fabric degrades —
// escalating drop rates, reordering, duplication, jitter, and a
// containment-server outage schedule — and audits every frame the
// gateway emitted upstream against the verdict event stream. The table
// reports per-profile flow/verdict/retry/fail-closed tallies and the
// escape count, which must be zero on every row: the process exits
// nonzero otherwise, so CI can gate on containment under faults.
//
//   build/bench/s2_fault_soak           # full sweep, ~2.5 simulated hours
//   build/bench/s2_fault_soak --smoke   # 3 simulated minutes per row
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "containment/policy.h"
#include "core/farm.h"
#include "flowdb/flowdb.h"
#include "netsim/fault.h"
#include "packet/frame.h"
#include "packet/pcap.h"
#include "trace/tap.h"
#include "util/json.h"
#include "util/strings.h"

namespace {

using namespace gq;
using util::Ipv4Addr;

constexpr std::uint16_t kPorts[] = {8001, 8002, 8003, 8004, 8005, 8006};

class CyclingPolicy : public cs::Policy {
 public:
  explicit CyclingPolicy(util::Endpoint sink)
      : cs::Policy("Cycling"), sink_(sink) {}
  cs::Decision decide(const cs::FlowInfo& info) override {
    switch (info.dst().port) {
      case 8001: return cs::Decision::forward();
      case 8002: return cs::Decision::limit(4096);
      case 8003: return cs::Decision::drop("denied");
      case 8004: return cs::Decision::redirect(sink_, "redirected");
      case 8005: return cs::Decision::reflect(sink_, "reflected");
      case 8006: return cs::Decision::rewrite("proxied");
      default:   return cs::Decision::drop("unexpected");
    }
  }
  std::unique_ptr<cs::RewriteHandler> make_rewrite_handler(
      const cs::FlowInfo&) override {
    class Banner : public cs::RewriteHandler {
      void on_inmate_data(cs::RewriteContext& ctx,
                          std::span<const std::uint8_t>) override {
        ctx.send_to_inmate(std::string_view("250 proxied\r\n"));
      }
    };
    return std::make_unique<Banner>();
  }
  std::optional<std::vector<std::uint8_t>> rewrite_udp(
      const cs::FlowInfo&, std::span<const std::uint8_t> payload) override {
    return std::vector<std::uint8_t>(payload.begin(), payload.end());
  }

 private:
  util::Endpoint sink_;
};

struct Profile {
  const char* name;
  double drop = 0.0;      // Upstream-link drop probability.
  double reorder = 0.0;
  double duplicate = 0.0;
  bool cs_outage = false; // Flap the CS management link 80s/180s.
};

struct RowStats {
  std::uint64_t verdicts = 0;
  std::uint64_t forwards = 0;
  std::uint64_t fail_closed = 0;
  std::uint64_t shim_retries = 0;
  std::uint64_t fault_dropped = 0;
  std::uint64_t upstream_frames = 0;
  std::uint64_t escapes = 0;
  // Trace-archiver audit under soak load: evictions must happen (the
  // budget is sized to force rotation), retained memory must stay under
  // the configured budget, and every retained segment must be a
  // structurally complete pcap (zero capture gaps within it).
  std::uint64_t trace_evicted_segments = 0;
  std::uint64_t trace_retained_bytes = 0;
  std::uint64_t trace_budget_violations = 0;
  std::uint64_t trace_capture_gaps = 0;
};

// Deliberately tight rotation budget so a soak-scale run must rotate —
// scaled down further for --smoke (3 simulated minutes carries far less
// traffic than the full half hour).
constexpr std::size_t kTraceMaxSegments = 4;
std::size_t trace_segment_bytes(bool smoke) {
  return smoke ? 2 * 1024 : 32 * 1024;
}

// Audit one tap against the configured budget; folds into `stats`.
void audit_tap(const trace::TraceTap& tap, std::size_t segment_bytes,
               RowStats& stats) {
  const auto& archive = tap.archive();
  stats.trace_evicted_segments += archive.evicted_segments();
  stats.trace_retained_bytes += archive.retained_bytes();
  // Bound: max_segments full segments, each overshooting by at most one
  // frame (simulated frames are well under 4 KiB).
  const std::size_t budget = kTraceMaxSegments * (segment_bytes + 4096);
  if (archive.retained_bytes() > budget) ++stats.trace_budget_violations;
  // Zero gaps within retained segments: every record parses back.
  std::size_t parsed = 0;
  for (const auto& segment : archive.segments())
    parsed += pkt::parse_pcap(segment.pcap.contents()).size();
  if (parsed != archive.retained_packets()) ++stats.trace_capture_gaps;
}

RowStats run_row(const Profile& profile, util::Duration duration,
                 bool smoke, flowdb::Writer& flow_store) {
  core::FarmOptions options;
  options.seed = 0x5041B;
  options.trace_archive.segment_bytes = trace_segment_bytes(smoke);
  options.trace_archive.max_segments = kTraceMaxSegments;
  core::Farm farm(options);

  const Ipv4Addr echo_addr(93, 184, 216, 34);
  auto& echo = farm.add_external_host("echo", echo_addr);
  std::vector<std::shared_ptr<net::UdpSocket>> echo_udp;
  for (const auto port : kPorts) {
    echo.listen(port, [](std::shared_ptr<net::TcpConnection> conn) {
      std::weak_ptr<net::TcpConnection> weak = conn;
      conn->on_data = [weak](std::span<const std::uint8_t> data) {
        if (auto c = weak.lock()) c->send(data);
      };
    });
    auto socket = echo.udp_open(port);
    auto* raw = socket.get();
    socket->on_datagram = [raw](util::Endpoint from,
                                std::vector<std::uint8_t> data) {
      raw->send_to(from, data);
    };
    echo_udp.push_back(std::move(socket));
  }

  auto& sub = farm.add_subfarm("Soak");
  sub.add_catchall_sink();
  sub.configure_containment("[FailClosed]\nDeadlineMs = 10000\n");
  sub.bind_policy(sub.router().config().vlan_first,
                  sub.router().config().vlan_last,
                  std::make_shared<CyclingPolicy>(
                      sub.policy_env().services.at("sink")));

  // Escape oracle over the gateway's single upstream choke point.
  const auto external_net = sub.router().config().external_net;
  struct Emission {
    pkt::FlowProto proto;
    Ipv4Addr src, dst;
    std::uint16_t dport;
  };
  std::vector<Emission> upstream;
  farm.gateway().set_upstream_tap(
      [&](util::TimePoint, const std::vector<std::uint8_t>& bytes) {
        const auto decoded = pkt::decode_frame(bytes);
        if (!decoded || !decoded->ip) return;
        if (!decoded->is_tcp() && !decoded->is_udp()) return;
        if (!external_net.contains(decoded->ip->src)) return;
        upstream.push_back({decoded->is_tcp() ? pkt::FlowProto::kTcp
                                              : pkt::FlowProto::kUdp,
                            decoded->ip->src, decoded->ip->dst,
                            decoded->dst_port()});
      });
  std::vector<obs::FarmEvent> events;
  farm.telemetry().bus().subscribe(
      [&](const obs::FarmEvent& e) { events.push_back(e); });

  std::vector<inm::Inmate*> inmates;
  for (int i = 0; i < 3; ++i)
    inmates.push_back(&sub.create_inmate(inm::HostingKind::kVm));

  std::vector<sim::Port*> impaired;
  if (profile.drop > 0 || profile.reorder > 0 || profile.duplicate > 0) {
    sim::FaultProfile link;
    link.drop_probability = profile.drop;
    link.reorder_probability = profile.reorder;
    link.reorder_window = util::milliseconds(20);
    link.duplicate_probability = profile.duplicate;
    link.jitter_max = util::milliseconds(2);
    farm.set_link_faults(farm.gateway().upstream_port(), link);
    impaired.push_back(&farm.gateway().upstream_port());
    sim::FaultProfile mgmt;
    mgmt.drop_probability = profile.drop / 2;
    farm.set_link_faults(sub.containment_host().nic(), mgmt);
    impaired.push_back(&sub.containment_host().nic());
  }
  if (profile.cs_outage) {
    sim::FaultProfile flap;
    flap.flap_period = util::seconds(180);
    flap.flap_down = util::seconds(80);
    farm.set_link_faults(sub.containment_host().nic(), flap);
    if (impaired.empty() ||
        impaired.back() != &sub.containment_host().nic())
      impaired.push_back(&sub.containment_host().nic());
  }

  std::vector<std::shared_ptr<net::TcpConnection>> conns;
  std::vector<std::shared_ptr<net::UdpSocket>> udps;
  auto launch = [&](int index) {
    auto& host = inmates[index % inmates.size()]->host();
    if (!host.configured()) return;
    const auto port = kPorts[index % 6];
    auto conn = host.connect({echo_addr, port});
    std::weak_ptr<net::TcpConnection> weak = conn;
    conn->on_connected = [weak] {
      if (auto c = weak.lock()) c->send(std::string_view("hello gq\r\n"));
    };
    conn->on_data = [weak](std::span<const std::uint8_t>) {
      if (auto c = weak.lock()) c->close();
    };
    conns.push_back(std::move(conn));
    auto socket = host.udp_open(0);
    const std::vector<std::uint8_t> ping = {'p', 'i', 'n', 'g'};
    socket->send_to({echo_addr, port}, ping);
    udps.push_back(std::move(socket));
  };
  int wave = 0;
  for (auto at = util::seconds(60); at.usec < duration.usec;
       at = at + util::seconds(10)) {
    farm.loop().schedule_at(util::TimePoint{at.usec},
                            [&launch, wave] { launch(wave); });
    ++wave;
  }

  farm.run_for(duration);

  // Audit: authorized (proto, global src, dst, dst port) tuples.
  std::map<std::uint16_t, std::set<Ipv4Addr>> globals_by_vlan;
  std::set<std::tuple<pkt::FlowProto, Ipv4Addr, Ipv4Addr, std::uint16_t>>
      authorized;
  RowStats stats;
  for (const auto& e : events) {
    if (e.kind == obs::FarmEvent::Kind::kDhcpBind)
      globals_by_vlan[e.vlan].insert(e.inmate_global);
    if (e.kind != obs::FarmEvent::Kind::kFlowVerdict) continue;
    ++stats.verdicts;
    if (e.verdict == shim::Verdict::kForward) ++stats.forwards;
    if (e.verdict != shim::Verdict::kForward &&
        e.verdict != shim::Verdict::kLimit &&
        e.verdict != shim::Verdict::kRewrite)
      continue;
    for (const auto& global : globals_by_vlan[e.vlan])
      authorized.insert({e.proto, global, e.orig_dst.addr, e.orig_dst.port});
  }
  for (const auto& em : upstream) {
    ++stats.upstream_frames;
    if (!authorized.count({em.proto, em.src, em.dst, em.dport})) {
      ++stats.escapes;
      std::fprintf(stderr, "ESCAPE: %s -> %s:%u (%s)\n",
                   em.src.str().c_str(), em.dst.str().c_str(), em.dport,
                   em.proto == pkt::FlowProto::kTcp ? "tcp" : "udp");
    }
  }
  const auto& metrics = farm.metrics();
  auto counter = [&](const char* name) -> std::uint64_t {
    const auto* c = metrics.find_counter(name);
    return c ? c->value() : 0;
  };
  stats.fail_closed = counter("gw.Soak.fail_closed");
  stats.shim_retries = counter("gw.Soak.shim_retries");
  const std::size_t segment_bytes = trace_segment_bytes(smoke);
  audit_tap(farm.gateway().upstream_trace(), segment_bytes, stats);
  audit_tap(farm.gateway().inmate_rx_trace(), segment_bytes, stats);
  audit_tap(sub.router().trace(), segment_bytes, stats);
  // Compact every audited tap into the sweep-wide FlowDB store, tap
  // names prefixed with the fault profile so `gq_trace stat --by tap`
  // can split the sweep per row.
  const std::string prefix = std::string(profile.name) + "/";
  flow_store.add_index(farm.gateway().upstream_trace().index(),
                       prefix + farm.gateway().upstream_trace().name());
  flow_store.add_index(farm.gateway().inmate_rx_trace().index(),
                       prefix + farm.gateway().inmate_rx_trace().name());
  flow_store.add_index(sub.router().trace().index(),
                       prefix + sub.router().trace().name());
  // Cross-check eviction accounting against the registry metric.
  if (counter("trace.Soak.evicted") !=
      sub.router().trace().archive().evicted_segments())
    ++stats.trace_capture_gaps;
  for (const auto* port : impaired) {
    stats.fault_dropped += port->fault_counters().dropped +
                           port->fault_counters().flap_dropped;
    if (port->peer())
      stats.fault_dropped += port->peer()->fault_counters().dropped +
                             port->peer()->fault_counters().flap_dropped;
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  const auto duration = smoke ? util::minutes(3) : util::minutes(30);

  const Profile profiles[] = {
      {"clean", 0.0, 0.0, 0.0, false},
      {"drop10", 0.10, 0.0, 0.0, false},
      {"drop20+reorder", 0.20, 0.20, 0.0, false},
      {"drop30+reorder+dup", 0.30, 0.30, 0.10, false},
      {"drop10+cs-outage", 0.10, 0.0, 0.0, true},
  };

  std::printf("S2. Containment under network faults (%s sweep, %s/row)\n",
              smoke ? "smoke" : "full",
              util::format_duration(duration).c_str());
  std::printf("%-20s %9s %9s %11s %9s %10s %10s %8s %9s\n", "profile",
              "verdicts", "forwards", "fail_closed", "retries", "faultdrops",
              "upstream", "escapes", "trc-evict");
  util::JsonWriter json;
  json.begin_object();
  json.key("bench");
  json.value("s2_fault_soak");
  json.key("smoke");
  json.value(smoke);
  json.key("sim_minutes_per_row");
  json.value(duration.usec / 60e6);
  json.key("trace_segment_bytes");
  json.value(static_cast<std::uint64_t>(trace_segment_bytes(smoke)));
  json.key("trace_max_segments");
  json.value(static_cast<std::uint64_t>(kTraceMaxSegments));
  json.key("rows");
  json.begin_array();
  std::uint64_t total_escapes = 0;
  std::uint64_t total_trace_violations = 0;
  std::uint64_t total_trace_evictions = 0;
  flowdb::Writer flow_store;
  for (const auto& profile : profiles) {
    const auto stats = run_row(profile, duration, smoke, flow_store);
    total_escapes += stats.escapes;
    total_trace_violations +=
        stats.trace_budget_violations + stats.trace_capture_gaps;
    total_trace_evictions += stats.trace_evicted_segments;
    std::printf("%-20s %9llu %9llu %11llu %9llu %10llu %10llu %8llu %9llu\n",
                profile.name,
                static_cast<unsigned long long>(stats.verdicts),
                static_cast<unsigned long long>(stats.forwards),
                static_cast<unsigned long long>(stats.fail_closed),
                static_cast<unsigned long long>(stats.shim_retries),
                static_cast<unsigned long long>(stats.fault_dropped),
                static_cast<unsigned long long>(stats.upstream_frames),
                static_cast<unsigned long long>(stats.escapes),
                static_cast<unsigned long long>(
                    stats.trace_evicted_segments));
    json.begin_object();
    json.key("profile");
    json.value(profile.name);
    json.key("verdicts");
    json.value(stats.verdicts);
    json.key("forwards");
    json.value(stats.forwards);
    json.key("fail_closed");
    json.value(stats.fail_closed);
    json.key("shim_retries");
    json.value(stats.shim_retries);
    json.key("fault_dropped");
    json.value(stats.fault_dropped);
    json.key("upstream_frames");
    json.value(stats.upstream_frames);
    json.key("escapes");
    json.value(stats.escapes);
    json.key("trace_evicted_segments");
    json.value(stats.trace_evicted_segments);
    json.key("trace_retained_bytes");
    json.value(stats.trace_retained_bytes);
    json.key("trace_budget_violations");
    json.value(stats.trace_budget_violations);
    json.key("trace_capture_gaps");
    json.value(stats.trace_capture_gaps);
    json.end_object();
  }
  json.end_array();

  // Compact the sweep's flow records into a queryable column store; a
  // reader must be able to mmap it back (same validation the tooling
  // runs) before the numbers are trusted.
  const std::string store_path = "BENCH_s2_flows.fdb";
  if (!flow_store.save(store_path)) {
    std::fprintf(stderr, "s2: cannot write %s\n", store_path.c_str());
    return 1;
  }
  const auto store = flowdb::Reader::open(store_path);
  if (!store || store->rows() != flow_store.row_count()) {
    std::fprintf(stderr, "s2: %s failed reopen validation\n",
                 store_path.c_str());
    return 1;
  }
  json.key("flowdb_path");
  json.value(store_path);
  json.key("flowdb_rows");
  json.value(static_cast<std::uint64_t>(store->rows()));
  json.key("flowdb_bytes");
  json.value(static_cast<std::uint64_t>(store->file_bytes()));
  json.end_object();

  if (!util::json_valid(json.str())) {
    std::fprintf(stderr, "s2: generated BENCH_s2.json is not valid JSON\n");
    return 1;
  }
  {
    std::ofstream out("BENCH_s2.json", std::ios::binary | std::ios::trunc);
    out << json.str() << '\n';
    if (!out) {
      std::fprintf(stderr, "s2: cannot write BENCH_s2.json\n");
      return 1;
    }
  }
  std::ifstream back("BENCH_s2.json", std::ios::binary);
  const std::string reread((std::istreambuf_iterator<char>(back)),
                           std::istreambuf_iterator<char>());
  if (!util::json_valid(reread)) {
    std::fprintf(stderr, "s2: BENCH_s2.json failed round-trip validation\n");
    return 1;
  }
  std::printf("\nwrote BENCH_s2.json (validated)\n");

  if (total_escapes > 0) {
    std::fprintf(stderr,
                 "\nCONTAINMENT FAILURE: %llu frame(s) escaped upstream "
                 "without an authorizing verdict\n",
                 static_cast<unsigned long long>(total_escapes));
    return 1;
  }
  if (total_trace_violations > 0) {
    std::fprintf(stderr,
                 "\nTRACE AUDIT FAILURE: %llu budget/gap violation(s) in "
                 "the rotating archivers\n",
                 static_cast<unsigned long long>(total_trace_violations));
    return 1;
  }
  if (total_trace_evictions == 0) {
    std::fprintf(stderr, "\nTRACE AUDIT FAILURE: rotation never evicted a "
                         "segment despite the tight budget\n");
    return 1;
  }
  std::printf("zero containment escapes across all profiles; trace "
              "archivers stayed within budget (%llu segments rotated); "
              "%llu flows compacted into %s\n",
              static_cast<unsigned long long>(total_trace_evictions),
              static_cast<unsigned long long>(flow_store.row_count()),
              store_path.c_str());
  return 0;
}
