// Reproduces paper Figure 3: multiple independent packet routers over
// disjoint VLAN ID ranges — subfarms — enabling parallel experiments on
// one gateway. Three subfarms run three different workloads at once
// (spambot, clickbot, default-deny development); the bench verifies and
// reports their mutual independence: disjoint address bindings, per-
// subfarm containment decisions, and per-subfarm trace/report streams.
#include <cstdio>
#include <memory>

#include "containment/policies.h"
#include "core/farm.h"
#include "extnet/extnet.h"
#include "malware/clickbot.h"
#include "malware/spambot.h"
#include "util/strings.h"

int main() {
  using namespace gq;
  using util::Ipv4Addr;

  core::Farm farm;

  // Shared simulated Internet.
  auto& cc_host = farm.add_external_host("cc", Ipv4Addr(50, 8, 207, 91));
  ext::CcServer cc(cc_host, 80);
  mal::SpamTask task;
  task.targets = {{Ipv4Addr(64, 12, 88, 7), 25}};
  cc.set_document("/c2/tasks", task.serialize());
  cc.set_document("/click/tasks",
                  "click 203.0.113.80:80 /ad?id=1 http://blog.example/\n");
  auto& ad_host = farm.add_external_host("ads", Ipv4Addr(203, 0, 113, 80));
  ext::AdServer ads(ad_host, 80);

  // --- Subfarm 1: spam deployment -------------------------------------
  auto& spam = farm.add_subfarm("Spam");
  spam.add_catchall_sink();
  sinks::SmtpSinkConfig sink_config;
  sink_config.port = 2526;
  auto& smtp_sink = spam.add_smtp_sink(sink_config, "bannersmtpsink");
  spam.set_autoinfect({Ipv4Addr(10, 9, 8, 7), 6543});
  spam.containment().samples().add("grum.000.exe");
  spam.catalog().register_prototype(
      "grum.*", [](const std::string&, util::Rng& rng) {
        mal::SpambotConfig config;
        config.family = "grum";
        config.c2 = {Ipv4Addr(50, 8, 207, 91), 80};
        config.send_interval = util::seconds(3);
        return std::make_unique<mal::SpambotBehavior>(config, rng.fork());
      });
  spam.configure_containment(
      "[VLAN 16-31]\nDecider = Grum\nInfection = grum.*\n");
  spam.create_inmate(inm::HostingKind::kVm);
  spam.create_inmate(inm::HostingKind::kVm);

  // --- Subfarm 2: clickbot study ---------------------------------------
  auto& click = farm.add_subfarm("Clickbots");
  click.add_catchall_sink();
  click.set_autoinfect({Ipv4Addr(10, 9, 8, 8), 6543});
  click.containment().samples().add("clicker.000.exe");
  click.catalog().register_prototype(
      "clicker.*", [](const std::string&, util::Rng& rng) {
        mal::ClickbotConfig config;
        config.c2 = {Ipv4Addr(50, 8, 207, 91), 80};
        config.click_interval = util::seconds(4);
        return std::make_unique<mal::ClickbotBehavior>(config, rng.fork());
      });
  click.configure_containment(
      "[VLAN 32-47]\nDecider = Clickbot\nInfection = clicker.*\n");
  click.create_inmate(inm::HostingKind::kVm);

  // --- Subfarm 3: fresh-sample development (default-deny) --------------
  auto& dev = farm.add_subfarm("Development");
  auto& dev_sink = dev.add_catchall_sink();
  dev.containment().bind_policy(
      48, 63, std::make_shared<cs::SinkAllPolicy>(dev.policy_env()));
  auto& dev_inmate = dev.create_inmate(inm::HostingKind::kVm);
  farm.run_for(util::minutes(1));
  {
    mal::SpambotConfig config;
    config.family = "fresh-specimen";
    config.c2 = {Ipv4Addr(50, 8, 207, 91), 80};
    dev_inmate.infect_with(std::make_unique<mal::SpambotBehavior>(
                               config, farm.rng().fork()),
                           "fresh.exe");
  }

  farm.run_for(util::minutes(30));

  std::printf("Figure 3 reproduction: three parallel subfarms, one gateway\n\n");
  std::printf("%-14s %8s %10s %10s %10s %8s %9s\n", "SUBFARM", "VLANs",
              "FLOWS", "FORWARD", "REFLECT", "REWRITE", "PCAP pkts");
  std::printf("%s\n", std::string(76, '-').c_str());
  for (const auto& sub : farm.gateway().subfarms()) {
    const auto& config = sub->config();
    std::uint64_t fwd = 0, refl = 0, rewr = 0;
    for (std::uint16_t vlan = config.vlan_first; vlan <= config.vlan_last;
         ++vlan) {
      fwd += farm.reporter().flows(config.name, vlan,
                                   shim::Verdict::kForward);
      refl += farm.reporter().flows(config.name, vlan,
                                    shim::Verdict::kReflect);
      rewr += farm.reporter().flows(config.name, vlan,
                                    shim::Verdict::kRewrite);
    }
    std::printf("%-14s %3u-%-4u %10llu %10llu %10llu %8llu %9zu\n",
                config.name.c_str(), config.vlan_first, config.vlan_last,
                static_cast<unsigned long long>(sub->flows_created()),
                static_cast<unsigned long long>(fwd),
                static_cast<unsigned long long>(refl),
                static_cast<unsigned long long>(rewr),
                sub->trace().packet_count());
  }
  std::printf("%s\n", std::string(76, '-').c_str());
  std::printf(
      "\nIndependence checks:\n"
      "  spam harvested in Spam's sink:        %llu messages\n"
      "  ad clicks from Clickbots' REWRITEs:   %llu\n"
      "  Development flows all in its own sink: %llu (FORWARDs there: "
      "%llu)\n",
      static_cast<unsigned long long>(smtp_sink.data_transfers()),
      static_cast<unsigned long long>(ads.clicks()),
      static_cast<unsigned long long>(dev_sink.tcp_flows()),
      static_cast<unsigned long long>(farm.reporter().flows(
          "Development", 48, shim::Verdict::kForward)));
  return 0;
}
