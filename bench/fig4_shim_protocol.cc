// Reproduces paper Figure 4: the shim protocol message structure. Prints
// annotated wire layouts of a containment request shim (24 bytes) and a
// containment response shim (>= 84 bytes: the paper's layout plus the
// wire-v2 typed verdict-parameter block and the wire-v3 verdict-cache
// block), then validates the encoder/decoder with an exhaustive
// round-trip sweep covering both wire versions.
#include <cstdio>
#include <string>

#include "shim/shim.h"
#include "util/rng.h"
#include "util/strings.h"

namespace {

void hexdump(const std::vector<std::uint8_t>& bytes) {
  for (std::size_t i = 0; i < bytes.size(); i += 8) {
    std::printf("  %3zu:", i);
    for (std::size_t j = i; j < std::min(i + 8, bytes.size()); ++j)
      std::printf(" %02x", bytes[j]);
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace gq;
  using util::Ipv4Addr;

  std::printf("Figure 4 reproduction: shim protocol message structure\n\n");

  shim::RequestShim request;
  request.orig = {Ipv4Addr(10, 0, 0, 23), 1234};
  request.resp = {Ipv4Addr(192, 150, 187, 12), 80};
  request.vlan = 12;
  request.nonce_port = 42;
  auto request_bytes = request.encode();
  std::printf("(a) Request shim — %zu bytes\n", request_bytes.size());
  std::printf("  [0-3] magic  [4-5] length  [6] type  [7] version\n");
  std::printf("  [8-11] orig IP  [12-15] resp IP  [16-17] orig port\n");
  std::printf("  [18-19] resp port  [20-21] VLAN ID  [22-23] nonce port\n");
  hexdump(request_bytes);

  shim::ResponseShim response;
  response.orig = request.orig;
  response.resp = {Ipv4Addr(10, 3, 1, 4), 2526};
  response.verdict = shim::Verdict::kReflect;
  response.policy_name = "Grum";
  response.annotation = "full SMTP containment";
  response.cacheable = true;
  response.cache_scope = shim::CacheScope::kDstEndpoint;
  response.cache_ttl_ms = 30000;
  response.policy_epoch = 1;
  auto response_bytes = response.encode();
  std::printf("\n(b) Response shim — %zu bytes (84 + %zu annotation)\n",
              response_bytes.size(), response.annotation.size());
  std::printf("  [0-7] preamble  [8-19] resulting four-tuple\n");
  std::printf("  [20-23] containment verdict  [24-55] policy name\n");
  std::printf("  [56-59] parameter flags  [60-67] LIMIT byte rate\n");
  std::printf("  [68-71] cache scope+pad  [72-75] cache TTL ms\n");
  std::printf("  [76-83] policy epoch  [84-] textual annotation\n");
  hexdump(response_bytes);

  // Round-trip sweep across random field values and all verdicts.
  util::Rng rng(4242);
  int round_trips = 0;
  for (int i = 0; i < 100000; ++i) {
    shim::RequestShim req;
    req.orig = {Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                static_cast<std::uint16_t>(rng.next())};
    req.resp = {Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                static_cast<std::uint16_t>(rng.next())};
    req.vlan = static_cast<std::uint16_t>(rng.below(4096));
    req.nonce_port = static_cast<std::uint16_t>(rng.next());
    auto parsed_req = shim::RequestShim::parse(req.encode());
    if (!parsed_req || parsed_req->orig != req.orig ||
        parsed_req->resp != req.resp || parsed_req->vlan != req.vlan ||
        parsed_req->nonce_port != req.nonce_port) {
      std::printf("REQUEST ROUND-TRIP FAILURE at %d\n", i);
      return 1;
    }
    shim::ResponseShim rsp;
    rsp.orig = req.orig;
    rsp.resp = req.resp;
    rsp.verdict = static_cast<shim::Verdict>(1 + rng.below(6));
    rsp.policy_name = std::string(rng.below(33), 'P');
    rsp.annotation = std::string(rng.below(64), 'a');
    if (rng.below(2) == 1)
      rsp.limit_bytes_per_sec = static_cast<std::int64_t>(rng.below(1 << 20));
    // Half the sweep emits legacy v2 frames; those must come back with a
    // zeroed cache block regardless of what the encoder was handed.
    const bool v2 = rng.below(2) == 1;
    if (v2) rsp.wire_version = shim::kShimVersionV2;
    rsp.policy_epoch = rng.below(1 << 16);
    if (rsp.verdict != shim::Verdict::kRewrite && rng.below(2) == 1) {
      rsp.cacheable = true;
      rsp.cache_scope = static_cast<shim::CacheScope>(rng.below(3));
      rsp.cache_ttl_ms = static_cast<std::uint32_t>(rng.below(120000));
    }
    std::size_t consumed = 0;
    auto parsed_rsp = shim::ResponseShim::parse(rsp.encode(), &consumed);
    if (!parsed_rsp || parsed_rsp->verdict != rsp.verdict ||
        parsed_rsp->policy_name != rsp.policy_name ||
        parsed_rsp->annotation != rsp.annotation ||
        parsed_rsp->limit_bytes_per_sec != rsp.limit_bytes_per_sec) {
      std::printf("RESPONSE ROUND-TRIP FAILURE at %d\n", i);
      return 1;
    }
    if (v2 ? (parsed_rsp->cacheable || parsed_rsp->policy_epoch != 0)
           : (parsed_rsp->cacheable != rsp.cacheable ||
              parsed_rsp->policy_epoch != rsp.policy_epoch ||
              (rsp.cacheable &&
               (parsed_rsp->cache_scope != rsp.cache_scope ||
                parsed_rsp->cache_ttl_ms != rsp.cache_ttl_ms)))) {
      std::printf("CACHE-BLOCK ROUND-TRIP FAILURE at %d\n", i);
      return 1;
    }
    round_trips += 2;
  }
  std::printf("\nRound-trip sweep: %d encode/parse cycles, 0 failures.\n",
              round_trips);
  std::printf("Wire sizes match the paper: request %zu B, response >= %zu B "
              "(v3: >= %zu B).\n",
              shim::kRequestShimSize, shim::kResponseShimMinSize,
              shim::kResponseShimV3MinSize);
  return 0;
}
