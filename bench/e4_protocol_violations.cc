// Reproduces §7.1 "Protocol violations": GQ's spam accounting looked
// healthy at the connection level but meager at the content level —
// the SMTP sink followed the RFC too closely and sloppy bots (repeated
// HELOs, malformed MAIL FROM / RCPT TO) never reached the DATA stage.
// The bench runs the 2x2 matrix: {clean, violating} bot x {strict,
// lenient} sink, measuring sessions (connection level) vs DATA
// transfers (content level).
#include <cstdio>
#include <memory>

#include "core/farm.h"
#include "extnet/extnet.h"
#include "malware/spambot.h"
#include "util/strings.h"

namespace {

using namespace gq;
using util::Ipv4Addr;

struct Outcome {
  std::uint64_t sessions = 0;
  std::uint64_t data_transfers = 0;
};

Outcome run(bool violating_bot, bool strict_sink) {
  core::Farm farm;
  auto& cc_host = farm.add_external_host("cc", Ipv4Addr(79, 4, 4, 20));
  ext::CcServer cc(cc_host, 80);
  mal::SpamTask task;
  task.targets = {{Ipv4Addr(64, 12, 88, 7), 25}};
  cc.set_document("/c2/tasks", task.serialize());

  auto& sub = farm.add_subfarm("ViolationFarm");
  sub.add_catchall_sink();
  sinks::SmtpSinkConfig sink_config;
  sink_config.port = 2526;
  sink_config.strict_protocol = strict_sink;
  auto& sink = sub.add_smtp_sink(sink_config, "bannersmtpsink");
  sub.set_autoinfect({Ipv4Addr(10, 9, 8, 7), 6543});
  sub.containment().samples().add("spambot.000.exe");
  sub.catalog().register_prototype(
      "spambot.*", [violating_bot](const std::string&, util::Rng& rng) {
        mal::SpambotConfig config;
        config.family = "spambot";
        config.c2 = {Ipv4Addr(79, 4, 4, 20), 80};
        config.protocol_violations = violating_bot;
        config.send_interval = util::seconds(3);
        return std::make_unique<mal::SpambotBehavior>(config, rng.fork());
      });
  sub.configure_containment(
      "[VLAN 16-31]\nDecider = Grum\nInfection = spambot.*\n");
  sub.create_inmate(inm::HostingKind::kVm);
  farm.run_for(util::minutes(30));
  return Outcome{sink.sessions(), sink.data_transfers()};
}

}  // namespace

int main() {
  std::printf(
      "E4 reproduction (§7.1 'Protocol violations'): sessions vs DATA\n"
      "transfers across bot grammar x sink strictness (30 sim-min "
      "each).\n\n");
  std::printf("%-22s %-14s %10s %8s %9s\n", "BOT", "SINK ENGINE",
              "SESSIONS", "DATA", "DATA/SESS");
  std::printf("%s\n", std::string(68, '-').c_str());
  struct Case {
    bool violating, strict;
    const char* bot;
    const char* sink;
  };
  const Case cases[] = {
      {false, true, "clean grammar", "strict RFC"},
      {false, false, "clean grammar", "lenient"},
      {true, true, "bot violations", "strict RFC"},
      {true, false, "bot violations", "lenient"},
  };
  Outcome results[4];
  for (int i = 0; i < 4; ++i) {
    results[i] = run(cases[i].violating, cases[i].strict);
    const double ratio =
        results[i].sessions == 0
            ? 0.0
            : static_cast<double>(results[i].data_transfers) /
                  static_cast<double>(results[i].sessions);
    std::printf("%-22s %-14s %10llu %8llu %8.0f%%\n", cases[i].bot,
                cases[i].sink,
                static_cast<unsigned long long>(results[i].sessions),
                static_cast<unsigned long long>(results[i].data_transfers),
                ratio * 100.0);
  }
  std::printf("%s\n", std::string(68, '-').c_str());
  std::printf(
      "\nShape check: the violating-bot/strict-sink cell shows the "
      "paper's\nsymptom — plenty of sessions, zero DATA transfers. "
      "Loosening the\nprotocol engine (the fix the authors deployed) "
      "restores the harvest.\n");
  const bool ok = results[2].sessions > 10 &&
                  results[2].data_transfers == 0 &&
                  results[3].data_transfers > 10;
  return ok ? 0 : 1;
}
