// Microbenchmarks of GQ's data-path primitives (google-benchmark): the
// per-packet costs behind §6's implementation — header parse/serialize,
// checksums, whole-frame decode/re-encode (the gateway's NAT/rewrite
// path), shim encode/parse, flow-table keying, policy decisions,
// trigger matching, MD5 hashing, switch forwarding, and the telemetry
// primitives (counter bump, histogram observe, event-bus publish).
// After the benchmarks it runs a miniature farm and prints the built-in
// flow-decision latency histogram plus a JSON dump of every metric.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "containment/policies.h"
#include "containment/trigger.h"
#include "core/farm.h"
#include "netsim/event_loop.h"
#include "netsim/vlan_switch.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "packet/checksum.h"
#include "packet/frame.h"
#include "packet/frame_view.h"
#include "shim/shim.h"
#include "util/glob.h"
#include "util/md5.h"
#include "util/rng.h"

namespace {

using namespace gq;
using util::Ipv4Addr;

std::vector<std::uint8_t> sample_tcp_frame(std::size_t payload_size) {
  pkt::DecodedFrame frame;
  frame.eth.dst = util::MacAddr::local(1);
  frame.eth.src = util::MacAddr::local(2);
  frame.eth.vlan = 16;
  frame.eth.ethertype = pkt::kEtherTypeIpv4;
  frame.ip = pkt::Ipv4Packet{};
  frame.ip->src = Ipv4Addr(10, 0, 0, 23);
  frame.ip->dst = Ipv4Addr(192, 150, 187, 12);
  frame.tcp = pkt::TcpSegment{};
  frame.tcp->src_port = 1234;
  frame.tcp->dst_port = 80;
  frame.tcp->seq = 0x1000;
  frame.tcp->flags = pkt::kTcpAck | pkt::kTcpPsh;
  frame.tcp->payload.assign(payload_size, 0x41);
  return frame.encode();
}

void BM_Checksum1460(benchmark::State& state) {
  std::vector<std::uint8_t> data(1460, 0x5A);
  for (auto _ : state) benchmark::DoNotOptimize(pkt::checksum(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1460);
}
BENCHMARK(BM_Checksum1460);

// The event loop is the hottest structure in the whole system: every
// frame hop, timer, and shim round trip is a schedule (and often a
// cancel — TCP retransmission timers cancel on every ACK). This
// measures the schedule→cancel→drain cycle that the slot+generation
// bookkeeping optimizes (formerly two unordered_set probes per event).
void BM_EventLoopScheduleCancel(benchmark::State& state) {
  sim::EventLoop loop;
  const std::size_t batch = 64;
  std::vector<sim::EventId> ids(batch);
  for (auto _ : state) {
    // Half the events get cancelled (the retransmit-timer pattern),
    // half run; the drain pays the pop-side bookkeeping.
    for (std::size_t i = 0; i < batch; ++i) {
      ids[i] = loop.schedule_in(util::microseconds(static_cast<int>(i)),
                                [] {});
    }
    for (std::size_t i = 0; i < batch; i += 2) loop.cancel(ids[i]);
    loop.run_for(util::microseconds(static_cast<int>(batch)));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch));
}
BENCHMARK(BM_EventLoopScheduleCancel);

void BM_FrameDecode(benchmark::State& state) {
  auto bytes = sample_tcp_frame(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(pkt::decode_frame(bytes));
}
BENCHMARK(BM_FrameDecode)->Arg(0)->Arg(512)->Arg(1460);

void BM_FrameRewriteReencode(benchmark::State& state) {
  // The gateway's slow path: decode, NAT-rewrite, re-encode.
  auto bytes = sample_tcp_frame(512);
  for (auto _ : state) {
    auto frame = pkt::decode_frame(bytes);
    frame->ip->src = Ipv4Addr(198, 18, 0, 10);
    frame->tcp->src_port = 4444;
    frame->tcp->seq += 24;
    benchmark::DoNotOptimize(frame->encode());
  }
}
BENCHMARK(BM_FrameRewriteReencode);

void BM_FrameViewRewrite(benchmark::State& state) {
  // The gateway's fast path: the same NAT rewrite applied in place
  // through a FrameView with incrementally maintained checksums.
  auto bytes = sample_tcp_frame(512);
  for (auto _ : state) {
    auto view = pkt::FrameView::parse(bytes);
    view->set_ip_src(Ipv4Addr(198, 18, 0, 10));
    view->set_src_port(4444);
    view->set_tcp_seq(view->tcp_seq() + 24);
    benchmark::DoNotOptimize(bytes.data());
  }
}
BENCHMARK(BM_FrameViewRewrite);

void BM_RequestShimEncode(benchmark::State& state) {
  shim::RequestShim shim;
  shim.orig = {Ipv4Addr(10, 0, 0, 23), 1234};
  shim.resp = {Ipv4Addr(192, 150, 187, 12), 80};
  shim.vlan = 12;
  for (auto _ : state) benchmark::DoNotOptimize(shim.encode());
}
BENCHMARK(BM_RequestShimEncode);

void BM_ResponseShimParse(benchmark::State& state) {
  shim::ResponseShim shim;
  shim.verdict = shim::Verdict::kReflect;
  shim.policy_name = "Grum";
  shim.annotation = "full SMTP containment";
  auto bytes = shim.encode();
  for (auto _ : state)
    benchmark::DoNotOptimize(shim::ResponseShim::parse(bytes));
}
BENCHMARK(BM_ResponseShimParse);

void BM_ShimRoundTrip(benchmark::State& state) {
  // The protocol cost a verdict-cache hit removes from flow setup: the
  // gateway encodes a request shim, the containment server parses it,
  // decides, encodes the response, and the gateway parses that back.
  // (Network latency and the CS decision itself come on top — this is
  // the serialization floor of one shim round trip.)
  shim::RequestShim request;
  request.orig = {Ipv4Addr(10, 0, 0, 23), 1234};
  request.resp = {Ipv4Addr(192, 150, 187, 12), 80};
  request.vlan = 16;
  for (auto _ : state) {
    auto request_bytes = request.encode();
    auto parsed_request = shim::RequestShim::parse(request_bytes);
    shim::ResponseShim response;
    response.orig = parsed_request->orig;
    response.resp = parsed_request->resp;
    response.verdict = shim::Verdict::kForward;
    response.policy_name = "Cycling";
    response.cacheable = true;
    response.cache_scope = shim::CacheScope::kDstEndpoint;
    response.cache_ttl_ms = 30000;
    response.policy_epoch = 1;
    auto response_bytes = response.encode();
    benchmark::DoNotOptimize(shim::ResponseShim::parse(response_bytes));
  }
}
BENCHMARK(BM_ShimRoundTrip);

std::vector<pkt::FlowKey> sample_flow_keys(int count) {
  util::Rng rng(1);
  std::vector<pkt::FlowKey> keys;
  for (int i = 0; i < count; ++i) {
    keys.push_back(
        pkt::FlowKey{pkt::FlowProto::kTcp,
                     {Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                      static_cast<std::uint16_t>(rng.next())},
                     {Ipv4Addr(static_cast<std::uint32_t>(rng.next())),
                      static_cast<std::uint16_t>(rng.next())}});
  }
  return keys;
}

// The two flow-table representations side by side: the tree map the
// router used to key flows on vs. the FlowKeyHash table it uses now.
template <typename Table>
void flow_key_lookup(benchmark::State& state) {
  const auto keys = sample_flow_keys(1000);
  Table table;
  for (std::size_t i = 0; i < keys.size(); ++i)
    table[keys[i]] = static_cast<int>(i);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.find(keys[i++ % keys.size()]));
  }
}

void BM_FlowKeyLookup(benchmark::State& state) {
  flow_key_lookup<std::map<pkt::FlowKey, int>>(state);
}
BENCHMARK(BM_FlowKeyLookup);

void BM_FlowKeyLookupHashed(benchmark::State& state) {
  flow_key_lookup<
      std::unordered_map<pkt::FlowKey, int, pkt::FlowKeyHash>>(state);
}
BENCHMARK(BM_FlowKeyLookupHashed);

void BM_PolicyDecide(benchmark::State& state) {
  cs::PolicyEnv env;
  env.services["sink"] = {Ipv4Addr(10, 3, 0, 9), 9999};
  env.services["smtpsink"] = {Ipv4Addr(10, 3, 0, 10), 2525};
  env.services["autoinfect"] = {Ipv4Addr(10, 9, 8, 7), 6543};
  cs::RustockPolicy policy(env);
  cs::FlowInfo info;
  info.shim.orig = {Ipv4Addr(10, 0, 0, 23), 1234};
  info.shim.resp = {Ipv4Addr(5, 5, 5, 5), 25};
  info.shim.vlan = 16;
  for (auto _ : state) benchmark::DoNotOptimize(policy.decide(info));
}
BENCHMARK(BM_PolicyDecide);

void BM_TriggerObserve(benchmark::State& state) {
  cs::TriggerEngine engine;
  engine.add(16, 31, *cs::Trigger::parse("*:25/tcp / 30min < 1 -> revert"));
  engine.inmate_started(16, util::TimePoint{});
  util::TimePoint t{};
  for (auto _ : state) {
    t = t + util::milliseconds(10);
    engine.observe_flow(16, {Ipv4Addr(1, 2, 3, 4), 25},
                        pkt::FlowProto::kTcp, t);
  }
}
BENCHMARK(BM_TriggerObserve);

void BM_GlobMatch(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        util::glob_match("rustock.100921.*.exe", "rustock.100921.042.exe"));
  }
}
BENCHMARK(BM_GlobMatch);

void BM_Md5Sample(benchmark::State& state) {
  std::string payload(4096, 'S');
  for (auto _ : state)
    benchmark::DoNotOptimize(util::Md5::hex_digest(payload));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_Md5Sample);

void BM_SwitchForward(benchmark::State& state) {
  sim::EventLoop loop;
  sim::VlanSwitch sw(loop, "sw", 3);
  sim::Port a(loop, "a"), b(loop, "b");
  sim::Port::connect(a, sw.port(0), util::microseconds(1));
  sim::Port::connect(b, sw.port(1), util::microseconds(1));
  sw.set_access(0, 7);
  sw.set_access(1, 7);
  b.set_rx([](sim::Frame) {});
  // Teach the switch both MACs.
  pkt::EthHeader eth;
  eth.src = util::MacAddr::local(2);
  eth.dst = util::MacAddr::broadcast();
  eth.ethertype = pkt::kEtherTypeIpv4;
  b.transmit(sim::Frame{pkt::serialize_eth(eth, std::vector<std::uint8_t>(46, 0))});
  loop.run_all();
  eth.src = util::MacAddr::local(1);
  eth.dst = util::MacAddr::local(2);
  const auto frame_bytes =
      pkt::serialize_eth(eth, std::vector<std::uint8_t>(512, 0));
  for (auto _ : state) {
    a.transmit(sim::Frame{frame_bytes});
    loop.run_all();
  }
}
BENCHMARK(BM_SwitchForward);

void BM_MetricsCounterInc(benchmark::State& state) {
  obs::MetricsRegistry registry;
  auto& counter = registry.counter("bench.frames");
  for (auto _ : state) counter.inc();
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_MetricsCounterInc);

void BM_VerdictCounterByName(benchmark::State& state) {
  // What the router's hot path used to do per verdict event: rebuild
  // the metric name ("gw." + subfarm + ".verdicts." + verdict) and walk
  // the registry map, allocating twice per event.
  obs::MetricsRegistry registry;
  const std::string subfarm = "Micro";
  auto verdict = shim::Verdict::kForward;
  for (auto _ : state) {
    registry
        .counter("gw." + subfarm + ".verdicts." + shim::verdict_name(verdict))
        .inc();
    verdict = verdict == shim::Verdict::kRewrite
                  ? shim::Verdict::kForward
                  : static_cast<shim::Verdict>(
                        static_cast<std::uint32_t>(verdict) + 1);
  }
}
BENCHMARK(BM_VerdictCounterByName);

void BM_VerdictCounterByHandle(benchmark::State& state) {
  // What it does now: six counter handles resolved once at router
  // construction, indexed by verdict — a load and an increment.
  obs::MetricsRegistry registry;
  const std::string subfarm = "Micro";
  std::array<obs::Counter*, 6> handles{};
  for (std::uint32_t v = 1; v <= handles.size(); ++v)
    handles[v - 1] = &registry.counter(
        "gw." + subfarm + ".verdicts." +
        shim::verdict_name(static_cast<shim::Verdict>(v)));
  auto verdict = shim::Verdict::kForward;
  for (auto _ : state) {
    handles[static_cast<std::uint32_t>(verdict) - 1]->inc();
    verdict = verdict == shim::Verdict::kRewrite
                  ? shim::Verdict::kForward
                  : static_cast<shim::Verdict>(
                        static_cast<std::uint32_t>(verdict) + 1);
  }
}
BENCHMARK(BM_VerdictCounterByHandle);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  auto& hist = registry.histogram("bench.latency_us");
  double value = 1.0;
  for (auto _ : state) {
    hist.observe(value);
    value = value < 1e6 ? value * 1.7 : 1.0;
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_HistogramObserve);

void BM_EventBusPublish(benchmark::State& state) {
  obs::EventBus bus;
  std::uint64_t seen = 0;
  for (std::int64_t i = 0; i < state.range(0); ++i)
    bus.subscribe([&seen](const obs::FarmEvent&) { ++seen; });
  obs::FarmEvent event;
  event.kind = obs::FarmEvent::Kind::kFlowVerdict;
  event.subfarm = "bench";
  event.verdict = shim::Verdict::kForward;
  for (auto _ : state) bus.publish(event);
  benchmark::DoNotOptimize(seen);
}
BENCHMARK(BM_EventBusPublish)->Arg(0)->Arg(1)->Arg(4);

// A miniature farm serving a burst of contained flows, to demonstrate
// the gateway's built-in instrumentation: the inmate-SYN-to-verdict-
// applied latency histogram and the metrics registry JSON export.
void print_decision_latency_report() {
  core::Farm farm;
  auto& sub = farm.add_subfarm("Micro");
  sub.add_catchall_sink();
  sub.bind_policy(16, 31,
                  std::make_shared<cs::SinkAllPolicy>(sub.policy_env()));
  auto& inmate = sub.create_inmate(inm::HostingKind::kVm);
  farm.run_for(util::seconds(30));  // VM boot + DHCP.

  for (int i = 0; i < 32; ++i) {
    auto conn = inmate.host().connect(
        {Ipv4Addr(50, 8, 200, static_cast<std::uint8_t>(10 + i)), 80});
    conn->on_connected = [conn] { conn->send("GET / HTTP/1.0\r\n\r\n"); };
    farm.run_for(util::milliseconds(500));
  }
  farm.run_for(util::seconds(10));

  const std::string name = "gw.Micro.decision_latency_us";
  if (const auto* hist = farm.metrics().find_histogram(name)) {
    std::printf("\n%s", hist->render(name).c_str());
  }
  std::printf("\nMetrics registry (JSON):\n%s\n",
              farm.metrics().render_json().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_decision_latency_report();
  return 0;
}
