// The GQ shimming protocol (paper §6.2, Figure 4). To couple the
// gateway's packet router to the containment server, every redirected
// flow starts with a 24-byte containment *request* shim injected by the
// gateway (into the TCP sequence space, or padded onto the first UDP
// datagram) carrying the flow's original four-tuple, the inmate's VLAN
// ID, and a nonce port on which the gateway will accept a subsequent
// outbound connection from the containment server (used by REWRITE
// proxies). The containment server answers with a *response* shim
// carrying the resulting four-tuple (the possibly rewritten
// destination), the verdict opcode, a 32-byte policy name tag, a typed
// verdict-parameter block (e.g. the LIMIT byte rate), and an optional
// textual annotation. The gateway strips the response shim from the
// stream before relaying bytes to the inmate.
//
// Wire version 2 extends the paper's >= 56-byte response layout with an
// explicit 12-byte parameter block (flags + rate): parameters used to be
// string-packed into the annotation ("rate=4096") and re-parsed by the
// gateway; they are now first-class fields, and the annotation is purely
// descriptive.
//
// Wire version 3 appends a 16-byte cache block to the response: a
// cache-scope selector, a TTL, and the containment server's policy
// epoch, letting the gateway cache resolved verdicts and admit repeat
// flows without a shim round trip (the kParamCacheable flag in the
// parameter block gates whether the verdict may be cached at all).
// Parsers accept both versions; v2 responses are simply never
// cacheable.
//
// Wire version 4 adds a third message type alongside request/response:
// the *table-sync* frame (kTypeTableSync, see shim/table_sync.h) by
// which the containment server pushes its compiled match-action policy
// table to each gateway router. Table-sync frames travel on their own
// UDP port, never inside a flow's byte stream, so the v2/v3 stream
// parsers here remain untouched — `read_preamble` still accepts only
// versions 2 and 3, and v4 frames are decoded solely by the table-sync
// codec.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/addr.h"

namespace gq::shim {

/// Containment verdicts (Figure 2). Endpoint-control verdicts are
/// enforced by the gateway alone once connectivity is established;
/// REWRITE keeps the containment server in-path as a transparent proxy.
enum class Verdict : std::uint32_t {
  kForward = 1,
  kLimit = 2,
  kDrop = 3,
  kRedirect = 4,
  kReflect = 5,
  kRewrite = 6,
};

const char* verdict_name(Verdict v);

/// Magic number opening every shim message ("GQSH").
inline constexpr std::uint32_t kShimMagic = 0x47515348;
/// Current wire version (encoders emit this); v2 is still parsed.
inline constexpr std::uint8_t kShimVersion = 3;
inline constexpr std::uint8_t kShimVersionV2 = 2;
/// Table-sync wire version (table-sync frames only; stream shims stay v3).
inline constexpr std::uint8_t kShimVersionV4 = 4;
inline constexpr std::uint8_t kTypeRequest = 1;
inline constexpr std::uint8_t kTypeResponse = 2;
/// Compiled policy-table push (v4, UDP datagram; see shim/table_sync.h).
inline constexpr std::uint8_t kTypeTableSync = 3;
inline constexpr std::size_t kRequestShimSize = 24;
/// v2 response layout: preamble (8) + four-tuple (12) + verdict (4) +
/// policy name (32) + parameter block (12) = 68, then the annotation.
/// This is also the floor any well-formed response must clear.
inline constexpr std::size_t kResponseShimMinSize = 68;
/// v3 appends the 16-byte cache block (scope u8, reserved u8+u16,
/// ttl_ms u32, policy epoch u64) before the annotation.
inline constexpr std::size_t kResponseShimV3MinSize = 84;
inline constexpr std::size_t kPolicyNameSize = 32;
/// Parameter-block flag bits.
inline constexpr std::uint32_t kParamHasLimitRate = 0x1;
/// The verdict may be cached by the gateway (v3 only). REWRITE verdicts
/// must never carry this flag: the containment server stays in-path.
inline constexpr std::uint32_t kParamCacheable = 0x2;

/// How widely a cached verdict applies (v3 cache block). Chosen by the
/// policy: exact repeat flows only, every flow to the same destination
/// endpoint, or every flow to the same destination port (scan-class
/// policies where the verdict depends on nothing but the service).
enum class CacheScope : std::uint8_t {
  kExactFlow = 0,    ///< Full four-tuple must match.
  kDstEndpoint = 1,  ///< (dst addr, dst port, proto) must match.
  kDstPort = 2,      ///< (dst port, proto) must match.
};

const char* cache_scope_name(CacheScope scope);

/// Where a flow's containment verdict came from, in descending order of
/// cost: a full shim round trip to the containment server, the gateway's
/// verdict cache, or the compiled in-gateway policy table. Threaded
/// through flow events, trace annotations, and the reporter so every
/// listing names its datapath.
enum class VerdictSource : std::uint8_t {
  kShim = 0,    ///< Containment-server shim round trip.
  kCached = 1,  ///< Gateway verdict cache (repeat flow).
  kTable = 2,   ///< Compiled policy table (first-contact local verdict).
};

const char* verdict_source_name(VerdictSource source);

/// Containment request shim: gateway -> containment server.
struct RequestShim {
  util::Endpoint orig;   ///< Flow originator (inmate side, internal addr).
  util::Endpoint resp;   ///< Intended responder (the flow's true target).
  std::uint16_t vlan = 0;       ///< Inmate's VLAN ID.
  std::uint16_t nonce_port = 0; ///< Gateway port for a proxy's outbound leg.

  /// Exactly kRequestShimSize bytes.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Parse from the start of `data`; nullopt if not a valid request shim.
  static std::optional<RequestShim> parse(
      std::span<const std::uint8_t> data);
};

/// Containment response shim: containment server -> gateway.
struct ResponseShim {
  util::Endpoint orig;  ///< Resulting originator endpoint.
  util::Endpoint resp;  ///< Resulting responder endpoint (redirect target).
  Verdict verdict = Verdict::kDrop;
  std::string policy_name;  ///< Truncated/padded to 32 bytes on the wire.
  /// Typed verdict parameter: target byte rate for LIMIT verdicts.
  /// Serialized in the explicit parameter block, never in the annotation.
  std::optional<std::int64_t> limit_bytes_per_sec;
  std::string annotation;   ///< Purely descriptive context.

  // --- v3 cache block ---------------------------------------------------
  /// The gateway may cache this verdict (kParamCacheable). Never set on
  /// REWRITE verdicts. Always false when parsed from a v2 frame.
  bool cacheable = false;
  CacheScope cache_scope = CacheScope::kExactFlow;
  /// Cache entry lifetime; 0 lets the gateway pick its configured default.
  std::uint32_t cache_ttl_ms = 0;
  /// The containment server's policy epoch at decision time. Carried on
  /// every v3 response (cacheable or not) so the gateway can invalidate
  /// stale cache generations lazily.
  std::uint64_t policy_epoch = 0;

  /// Wire version to encode as: kShimVersion (default) or kShimVersionV2
  /// (compatibility paths and mixed-version tests; drops the cache
  /// block). Set from the preamble on parse.
  std::uint8_t wire_version = kShimVersion;

  /// kResponseShimV3MinSize + annotation bytes (v2: kResponseShimMinSize
  /// + annotation bytes).
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Parse from the start of `data`. Returns nullopt if `data` does not
  /// begin with a complete response shim; `consumed` (when non-null)
  /// receives the shim's total wire length on success.
  static std::optional<ResponseShim> parse(std::span<const std::uint8_t> data,
                                           std::size_t* consumed = nullptr);
};

/// Peek at a buffer: is a complete shim message of the given type
/// available at the front, and if so how long is it? Used by the gateway
/// when scanning the containment server's stream for the response shim.
std::optional<std::size_t> complete_shim_length(
    std::span<const std::uint8_t> data, std::uint8_t expected_type);

}  // namespace gq::shim
