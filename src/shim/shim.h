// The GQ shimming protocol (paper §6.2, Figure 4). To couple the
// gateway's packet router to the containment server, every redirected
// flow starts with a 24-byte containment *request* shim injected by the
// gateway (into the TCP sequence space, or padded onto the first UDP
// datagram) carrying the flow's original four-tuple, the inmate's VLAN
// ID, and a nonce port on which the gateway will accept a subsequent
// outbound connection from the containment server (used by REWRITE
// proxies). The containment server answers with a *response* shim
// carrying the resulting four-tuple (the possibly rewritten
// destination), the verdict opcode, a 32-byte policy name tag, a typed
// verdict-parameter block (e.g. the LIMIT byte rate), and an optional
// textual annotation. The gateway strips the response shim from the
// stream before relaying bytes to the inmate.
//
// Wire version 2 extends the paper's >= 56-byte response layout with an
// explicit 12-byte parameter block (flags + rate): parameters used to be
// string-packed into the annotation ("rate=4096") and re-parsed by the
// gateway; they are now first-class fields, and the annotation is purely
// descriptive.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/addr.h"

namespace gq::shim {

/// Containment verdicts (Figure 2). Endpoint-control verdicts are
/// enforced by the gateway alone once connectivity is established;
/// REWRITE keeps the containment server in-path as a transparent proxy.
enum class Verdict : std::uint32_t {
  kForward = 1,
  kLimit = 2,
  kDrop = 3,
  kRedirect = 4,
  kReflect = 5,
  kRewrite = 6,
};

const char* verdict_name(Verdict v);

/// Magic number opening every shim message ("GQSH").
inline constexpr std::uint32_t kShimMagic = 0x47515348;
inline constexpr std::uint8_t kShimVersion = 2;
inline constexpr std::uint8_t kTypeRequest = 1;
inline constexpr std::uint8_t kTypeResponse = 2;
inline constexpr std::size_t kRequestShimSize = 24;
/// Response layout: preamble (8) + four-tuple (12) + verdict (4) +
/// policy name (32) + parameter block (12) = 68, then the annotation.
inline constexpr std::size_t kResponseShimMinSize = 68;
inline constexpr std::size_t kPolicyNameSize = 32;
/// Parameter-block flag bits.
inline constexpr std::uint32_t kParamHasLimitRate = 0x1;

/// Containment request shim: gateway -> containment server.
struct RequestShim {
  util::Endpoint orig;   ///< Flow originator (inmate side, internal addr).
  util::Endpoint resp;   ///< Intended responder (the flow's true target).
  std::uint16_t vlan = 0;       ///< Inmate's VLAN ID.
  std::uint16_t nonce_port = 0; ///< Gateway port for a proxy's outbound leg.

  /// Exactly kRequestShimSize bytes.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Parse from the start of `data`; nullopt if not a valid request shim.
  static std::optional<RequestShim> parse(
      std::span<const std::uint8_t> data);
};

/// Containment response shim: containment server -> gateway.
struct ResponseShim {
  util::Endpoint orig;  ///< Resulting originator endpoint.
  util::Endpoint resp;  ///< Resulting responder endpoint (redirect target).
  Verdict verdict = Verdict::kDrop;
  std::string policy_name;  ///< Truncated/padded to 32 bytes on the wire.
  /// Typed verdict parameter: target byte rate for LIMIT verdicts.
  /// Serialized in the explicit parameter block, never in the annotation.
  std::optional<std::int64_t> limit_bytes_per_sec;
  std::string annotation;   ///< Purely descriptive context.

  /// kResponseShimMinSize + annotation bytes.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Parse from the start of `data`. Returns nullopt if `data` does not
  /// begin with a complete response shim; `consumed` (when non-null)
  /// receives the shim's total wire length on success.
  static std::optional<ResponseShim> parse(std::span<const std::uint8_t> data,
                                           std::size_t* consumed = nullptr);
};

/// Peek at a buffer: is a complete shim message of the given type
/// available at the front, and if so how long is it? Used by the gateway
/// when scanning the containment server's stream for the response shim.
std::optional<std::size_t> complete_shim_length(
    std::span<const std::uint8_t> data, std::uint8_t expected_type);

}  // namespace gq::shim
