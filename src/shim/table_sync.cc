#include "shim/table_sync.h"

#include <limits>
#include <stdexcept>

#include "util/bytes.h"

namespace gq::shim {

const char* table_action_name(TableAction action) {
  switch (action) {
    case TableAction::kForward: return "FORWARD";
    case TableAction::kDrop: return "DROP";
    case TableAction::kLimit: return "LIMIT";
    case TableAction::kRedirect: return "REDIRECT";
    case TableAction::kReflect: return "REFLECT";
    case TableAction::kFallback: return "FALLBACK";
  }
  return "?";
}

namespace {

constexpr std::uint32_t prefix_mask(std::uint8_t len) {
  return len == 0 ? 0 : 0xFFFFFFFFu << (32 - len);
}

}  // namespace

bool TableRule::matches(std::uint16_t vlan, std::uint8_t flow_proto,
                        const util::Endpoint& dst) const {
  if (vlan < vlan_first || vlan > vlan_last) return false;
  if (proto != kProtoAny && proto != flow_proto) return false;
  if ((dst.addr.value() & prefix_mask(prefix_len)) !=
      (dst_prefix.value() & prefix_mask(prefix_len)))
    return false;
  return dst.port >= port_first && dst.port <= port_last;
}

std::vector<std::uint8_t> TableSync::encode() const {
  std::size_t total = kTableSyncHeaderSize;
  for (const auto& rule : rules)
    total += kTableRuleFixedSize + rule.annotation.size();
  if (rules.size() > std::numeric_limits<std::uint16_t>::max() ||
      total > std::numeric_limits<std::uint16_t>::max())
    throw std::length_error("table-sync frame exceeds u16 length field");
  util::ByteWriter w(total);
  w.u32(kShimMagic);
  w.u16(static_cast<std::uint16_t>(total));
  w.u8(kTypeTableSync);
  w.u8(kShimVersionV4);
  w.u64(epoch);
  w.u16(static_cast<std::uint16_t>(rules.size()));
  w.u16(0);
  for (const auto& rule : rules) {
    w.u16(rule.vlan_first);
    w.u16(rule.vlan_last);
    w.u32(rule.dst_prefix.value());
    w.u8(rule.prefix_len);
    w.u8(rule.proto);
    w.u8(static_cast<std::uint8_t>(rule.action));
    w.u8(0);
    w.u16(rule.priority);
    w.u16(rule.port_first);
    w.u16(rule.port_last);
    w.u16(static_cast<std::uint16_t>(rule.annotation.size()));
    w.u32(rule.target.addr.value());
    w.u16(rule.target.port);
    w.u16(0);
    w.u64(rule.limit_bytes_per_sec);
    std::string name = rule.policy_name;
    name.resize(kPolicyNameSize, '\0');
    w.str(name);
    w.str(rule.annotation);
  }
  return w.take();
}

std::optional<TableSync> TableSync::parse(
    std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    if (r.remaining() < kTableSyncHeaderSize) return std::nullopt;
    if (r.u32() != kShimMagic) return std::nullopt;
    const std::uint16_t length = r.u16();
    if (r.u8() != kTypeTableSync) return std::nullopt;
    if (r.u8() != kShimVersionV4) return std::nullopt;
    if (length < kTableSyncHeaderSize) return std::nullopt;
    if (data.size() < length) return std::nullopt;
    TableSync sync;
    sync.epoch = r.u64();
    const std::uint16_t rule_count = r.u16();
    r.u16();  // reserved
    sync.rules.reserve(rule_count);
    for (std::uint16_t i = 0; i < rule_count; ++i) {
      // Never read past the declared frame length, even if the buffer
      // has trailing bytes: a rule's fixed part and its annotation must
      // both fit inside `length`.
      if (r.offset() + kTableRuleFixedSize > length) return std::nullopt;
      TableRule rule;
      rule.vlan_first = r.u16();
      rule.vlan_last = r.u16();
      rule.dst_prefix = util::Ipv4Addr(r.u32());
      rule.prefix_len = r.u8();
      rule.proto = r.u8();
      const std::uint8_t opcode = r.u8();
      r.u8();  // pad
      rule.priority = r.u16();
      rule.port_first = r.u16();
      rule.port_last = r.u16();
      const std::uint16_t annotation_len = r.u16();
      rule.target.addr = util::Ipv4Addr(r.u32());
      rule.target.port = r.u16();
      r.u16();  // pad2
      rule.limit_bytes_per_sec = r.u64();
      rule.policy_name = r.str(kPolicyNameSize);
      if (auto nul = rule.policy_name.find('\0'); nul != std::string::npos)
        rule.policy_name.resize(nul);
      if (rule.prefix_len > 32) return std::nullopt;
      if (rule.proto > TableRule::kProtoUdp) return std::nullopt;
      if (opcode < static_cast<std::uint8_t>(TableAction::kForward) ||
          opcode > static_cast<std::uint8_t>(TableAction::kFallback))
        return std::nullopt;
      rule.action = static_cast<TableAction>(opcode);
      if (rule.vlan_first > rule.vlan_last) return std::nullopt;
      if (rule.port_first > rule.port_last) return std::nullopt;
      if (r.offset() + annotation_len > length) return std::nullopt;
      rule.annotation = r.str(annotation_len);
      sync.rules.push_back(std::move(rule));
    }
    // The declared length must be exactly the bytes the rules consumed —
    // trailing slack inside the frame means a malformed (or truncated-
    // then-padded) table, not a shorter one.
    if (r.offset() != length) return std::nullopt;
    return sync;
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
}

}  // namespace gq::shim
