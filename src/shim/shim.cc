#include "shim/shim.h"

#include "util/bytes.h"

namespace gq::shim {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kForward: return "FORWARD";
    case Verdict::kLimit: return "LIMIT";
    case Verdict::kDrop: return "DROP";
    case Verdict::kRedirect: return "REDIRECT";
    case Verdict::kReflect: return "REFLECT";
    case Verdict::kRewrite: return "REWRITE";
  }
  return "?";
}

const char* cache_scope_name(CacheScope scope) {
  switch (scope) {
    case CacheScope::kExactFlow: return "exact";
    case CacheScope::kDstEndpoint: return "dst-endpoint";
    case CacheScope::kDstPort: return "dst-port";
  }
  return "?";
}

const char* verdict_source_name(VerdictSource source) {
  switch (source) {
    case VerdictSource::kShim: return "shim";
    case VerdictSource::kCached: return "cached";
    case VerdictSource::kTable: return "table";
  }
  return "?";
}

namespace {

void write_preamble(util::ByteWriter& w, std::uint16_t length,
                    std::uint8_t type, std::uint8_t version = kShimVersion) {
  w.u32(kShimMagic);
  w.u16(length);
  w.u8(type);
  w.u8(version);
}

struct Preamble {
  std::uint16_t length;
  std::uint8_t type;
  std::uint8_t version;
};

std::optional<Preamble> read_preamble(util::ByteReader& r) {
  if (r.remaining() < 8) return std::nullopt;
  if (r.u32() != kShimMagic) return std::nullopt;
  Preamble p;
  p.length = r.u16();
  p.type = r.u8();
  p.version = r.u8();
  if (p.version != kShimVersion && p.version != kShimVersionV2)
    return std::nullopt;
  return p;
}

/// A response's fixed-size prefix (everything before the annotation)
/// for the given wire version.
std::size_t response_fixed_size(std::uint8_t version) {
  return version == kShimVersionV2 ? kResponseShimMinSize
                                   : kResponseShimV3MinSize;
}

}  // namespace

std::vector<std::uint8_t> RequestShim::encode() const {
  util::ByteWriter w(kRequestShimSize);
  write_preamble(w, kRequestShimSize, kTypeRequest);
  w.u32(orig.addr.value());
  w.u32(resp.addr.value());
  w.u16(orig.port);
  w.u16(resp.port);
  w.u16(vlan);
  w.u16(nonce_port);
  return w.take();
}

std::optional<RequestShim> RequestShim::parse(
    std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    auto preamble = read_preamble(r);
    if (!preamble || preamble->type != kTypeRequest ||
        preamble->length != kRequestShimSize)
      return std::nullopt;
    if (data.size() < kRequestShimSize) return std::nullopt;
    RequestShim shim;
    shim.orig.addr = util::Ipv4Addr(r.u32());
    shim.resp.addr = util::Ipv4Addr(r.u32());
    shim.orig.port = r.u16();
    shim.resp.port = r.u16();
    shim.vlan = r.u16();
    shim.nonce_port = r.u16();
    return shim;
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> ResponseShim::encode() const {
  const std::uint8_t version =
      wire_version == kShimVersionV2 ? kShimVersionV2 : kShimVersion;
  const std::size_t total = response_fixed_size(version) + annotation.size();
  util::ByteWriter w(total);
  write_preamble(w, static_cast<std::uint16_t>(total), kTypeResponse,
                 version);
  w.u32(orig.addr.value());
  w.u32(resp.addr.value());
  w.u16(orig.port);
  w.u16(resp.port);
  w.u32(static_cast<std::uint32_t>(verdict));
  std::string name = policy_name;
  name.resize(kPolicyNameSize, '\0');
  w.str(name);
  // Typed verdict-parameter block: flags word, then the LIMIT rate
  // (zero-filled when absent so the block stays fixed-size).
  std::uint32_t flags = limit_bytes_per_sec ? kParamHasLimitRate : 0;
  if (version != kShimVersionV2 && cacheable) flags |= kParamCacheable;
  w.u32(flags);
  w.u64(static_cast<std::uint64_t>(limit_bytes_per_sec.value_or(0)));
  if (version != kShimVersionV2) {
    // Cache block: scope, pad to a u32 boundary, TTL, policy epoch.
    w.u8(static_cast<std::uint8_t>(cache_scope));
    w.u8(0);
    w.u16(0);
    w.u32(cache_ttl_ms);
    w.u64(policy_epoch);
  }
  w.str(annotation);
  return w.take();
}

std::optional<ResponseShim> ResponseShim::parse(
    std::span<const std::uint8_t> data, std::size_t* consumed) {
  try {
    util::ByteReader r(data);
    auto preamble = read_preamble(r);
    if (!preamble || preamble->type != kTypeResponse) return std::nullopt;
    const std::size_t fixed = response_fixed_size(preamble->version);
    if (preamble->length < fixed) return std::nullopt;
    if (data.size() < preamble->length) return std::nullopt;
    ResponseShim shim;
    shim.wire_version = preamble->version;
    shim.orig.addr = util::Ipv4Addr(r.u32());
    shim.resp.addr = util::Ipv4Addr(r.u32());
    shim.orig.port = r.u16();
    shim.resp.port = r.u16();
    const std::uint32_t opcode = r.u32();
    if (opcode < 1 || opcode > 6) return std::nullopt;
    shim.verdict = static_cast<Verdict>(opcode);
    shim.policy_name = r.str(kPolicyNameSize);
    // Strip NUL padding.
    if (auto nul = shim.policy_name.find('\0'); nul != std::string::npos)
      shim.policy_name.resize(nul);
    const std::uint32_t param_flags = r.u32();
    const auto limit = static_cast<std::int64_t>(r.u64());
    if ((param_flags & kParamHasLimitRate) != 0)
      shim.limit_bytes_per_sec = limit;
    if (preamble->version != kShimVersionV2) {
      const std::uint8_t scope = r.u8();
      if (scope > static_cast<std::uint8_t>(CacheScope::kDstPort))
        return std::nullopt;
      shim.cache_scope = static_cast<CacheScope>(scope);
      r.u8();
      r.u16();
      shim.cache_ttl_ms = r.u32();
      shim.policy_epoch = r.u64();
      shim.cacheable = (param_flags & kParamCacheable) != 0;
    }
    shim.annotation = r.str(preamble->length - fixed);
    if (consumed) *consumed = preamble->length;
    return shim;
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
}

std::optional<std::size_t> complete_shim_length(
    std::span<const std::uint8_t> data, std::uint8_t expected_type) {
  try {
    util::ByteReader r(data);
    auto preamble = read_preamble(r);
    if (!preamble || preamble->type != expected_type) return std::nullopt;
    // The length field is attacker-influenced stream data: never report a
    // "complete" shim shorter than the type's wire minimum, or a caller
    // consuming that many bytes would desynchronize on the stream. The
    // response minimum depends on the preamble's wire version (v3 carries
    // the fixed cache block).
    const std::size_t min_length =
        expected_type == kTypeRequest ? kRequestShimSize
                                      : response_fixed_size(preamble->version);
    if (preamble->length < min_length) return std::nullopt;
    if (data.size() < preamble->length) return std::nullopt;
    return preamble->length;
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
}

}  // namespace gq::shim
