#include "shim/shim.h"

#include "util/bytes.h"

namespace gq::shim {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kForward: return "FORWARD";
    case Verdict::kLimit: return "LIMIT";
    case Verdict::kDrop: return "DROP";
    case Verdict::kRedirect: return "REDIRECT";
    case Verdict::kReflect: return "REFLECT";
    case Verdict::kRewrite: return "REWRITE";
  }
  return "?";
}

namespace {

void write_preamble(util::ByteWriter& w, std::uint16_t length,
                    std::uint8_t type) {
  w.u32(kShimMagic);
  w.u16(length);
  w.u8(type);
  w.u8(kShimVersion);
}

struct Preamble {
  std::uint16_t length;
  std::uint8_t type;
  std::uint8_t version;
};

std::optional<Preamble> read_preamble(util::ByteReader& r) {
  if (r.remaining() < 8) return std::nullopt;
  if (r.u32() != kShimMagic) return std::nullopt;
  Preamble p;
  p.length = r.u16();
  p.type = r.u8();
  p.version = r.u8();
  if (p.version != kShimVersion) return std::nullopt;
  return p;
}

}  // namespace

std::vector<std::uint8_t> RequestShim::encode() const {
  util::ByteWriter w(kRequestShimSize);
  write_preamble(w, kRequestShimSize, kTypeRequest);
  w.u32(orig.addr.value());
  w.u32(resp.addr.value());
  w.u16(orig.port);
  w.u16(resp.port);
  w.u16(vlan);
  w.u16(nonce_port);
  return w.take();
}

std::optional<RequestShim> RequestShim::parse(
    std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    auto preamble = read_preamble(r);
    if (!preamble || preamble->type != kTypeRequest ||
        preamble->length != kRequestShimSize)
      return std::nullopt;
    if (data.size() < kRequestShimSize) return std::nullopt;
    RequestShim shim;
    shim.orig.addr = util::Ipv4Addr(r.u32());
    shim.resp.addr = util::Ipv4Addr(r.u32());
    shim.orig.port = r.u16();
    shim.resp.port = r.u16();
    shim.vlan = r.u16();
    shim.nonce_port = r.u16();
    return shim;
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> ResponseShim::encode() const {
  const std::size_t total = kResponseShimMinSize + annotation.size();
  util::ByteWriter w(total);
  write_preamble(w, static_cast<std::uint16_t>(total), kTypeResponse);
  w.u32(orig.addr.value());
  w.u32(resp.addr.value());
  w.u16(orig.port);
  w.u16(resp.port);
  w.u32(static_cast<std::uint32_t>(verdict));
  std::string name = policy_name;
  name.resize(kPolicyNameSize, '\0');
  w.str(name);
  // Typed verdict-parameter block: flags word, then the LIMIT rate
  // (zero-filled when absent so the block stays fixed-size).
  w.u32(limit_bytes_per_sec ? kParamHasLimitRate : 0);
  w.u64(static_cast<std::uint64_t>(limit_bytes_per_sec.value_or(0)));
  w.str(annotation);
  return w.take();
}

std::optional<ResponseShim> ResponseShim::parse(
    std::span<const std::uint8_t> data, std::size_t* consumed) {
  try {
    util::ByteReader r(data);
    auto preamble = read_preamble(r);
    if (!preamble || preamble->type != kTypeResponse ||
        preamble->length < kResponseShimMinSize)
      return std::nullopt;
    if (data.size() < preamble->length) return std::nullopt;
    ResponseShim shim;
    shim.orig.addr = util::Ipv4Addr(r.u32());
    shim.resp.addr = util::Ipv4Addr(r.u32());
    shim.orig.port = r.u16();
    shim.resp.port = r.u16();
    const std::uint32_t opcode = r.u32();
    if (opcode < 1 || opcode > 6) return std::nullopt;
    shim.verdict = static_cast<Verdict>(opcode);
    shim.policy_name = r.str(kPolicyNameSize);
    // Strip NUL padding.
    if (auto nul = shim.policy_name.find('\0'); nul != std::string::npos)
      shim.policy_name.resize(nul);
    const std::uint32_t param_flags = r.u32();
    const auto limit = static_cast<std::int64_t>(r.u64());
    if ((param_flags & kParamHasLimitRate) != 0)
      shim.limit_bytes_per_sec = limit;
    shim.annotation = r.str(preamble->length - kResponseShimMinSize);
    if (consumed) *consumed = preamble->length;
    return shim;
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
}

std::optional<std::size_t> complete_shim_length(
    std::span<const std::uint8_t> data, std::uint8_t expected_type) {
  try {
    util::ByteReader r(data);
    auto preamble = read_preamble(r);
    if (!preamble || preamble->type != expected_type) return std::nullopt;
    // The length field is attacker-influenced stream data: never report a
    // "complete" shim shorter than the type's wire minimum, or a caller
    // consuming that many bytes would desynchronize on the stream.
    const std::size_t min_length = expected_type == kTypeRequest
                                       ? kRequestShimSize
                                       : kResponseShimMinSize;
    if (preamble->length < min_length) return std::nullopt;
    if (data.size() < preamble->length) return std::nullopt;
    return preamble->length;
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
}

}  // namespace gq::shim
