// Shim wire v4: the table-sync message. The containment server compiles
// its INI policy class hierarchy into a flat match-action table (one
// TableRule per compiled match arm) and pushes the whole table to each
// gateway router in a single epoch-stamped datagram whenever the policy
// configuration changes. The router then resolves first-contact verdicts
// locally — longest-prefix match on the destination address, port-range
// match, protocol match — with zero containment-server round trips;
// only rules compiled to kFallback (REWRITE policies, trigger-coupled
// VLAN ranges, stateful or otherwise non-compilable policies) still take
// the per-flow shim path.
//
// Table-sync frames reuse the shim preamble (magic, length, type,
// version) but carry their own type (kTypeTableSync) and version
// (kShimVersionV4), and travel as standalone UDP datagrams to the
// gateway's management address on kTableSyncPort — never inside a flow's
// byte stream — so the v2/v3 stream parsers in shim.cc are untouched.
//
// Layout (all integers network order):
//   preamble     8  magic u32, length u16, type u8 (=3), version u8 (=4)
//   epoch        8  containment-server policy epoch
//   rule_count   2
//   reserved     2
//   rules        rule_count × (68 fixed bytes + annotation)
//
// Per-rule fixed part (68 bytes), followed by `annotation_len` bytes:
//   vlan_first u16, vlan_last u16      inmate-VLAN range the rule covers
//   dst_prefix u32, prefix_len u8     dst-address LPM key (len 0 = any)
//   proto u8                           0 = any, 1 = TCP, 2 = UDP
//   action u8, pad u8                  TableAction opcode
//   priority u16                       policy-binding index (first match
//                                      across bindings wins; within one
//                                      binding longer prefixes and
//                                      narrower port ranges win)
//   port_first u16, port_last u16     dst-port range (0..65535 = any)
//   annotation_len u16
//   target_addr u32, target_port u16  REDIRECT/REFLECT target
//   pad2 u16
//   limit u64                          LIMIT byte rate
//   policy_name char[32]              NUL-padded, like the response shim
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "shim/shim.h"
#include "util/addr.h"

namespace gq::shim {

/// UDP port on the gateway's management address that receives table-sync
/// pushes from the containment server (CS listens on 6666, the farm
/// controller on 7777; the table plane gets its own well-known port).
inline constexpr std::uint16_t kTableSyncPort = 6676;

/// Table-sync header: preamble (8) + epoch (8) + rule_count/reserved (4).
inline constexpr std::size_t kTableSyncHeaderSize = 20;
/// Fixed (pre-annotation) size of one encoded TableRule.
inline constexpr std::size_t kTableRuleFixedSize = 68;

/// Match-action opcodes. The first five mirror the gateway-enforceable
/// verdict opcodes; kFallback is table-plane only and means "take the
/// shim path" — it exists so a policy can pin *specific* match arms
/// (e.g. port 25 with its side-effecting sink hint) to the containment
/// server while the rest of its traffic is resolved in-gateway.
enum class TableAction : std::uint8_t {
  kForward = 1,
  kDrop = 2,
  kLimit = 3,
  kRedirect = 4,
  kReflect = 5,
  kFallback = 6,
};

const char* table_action_name(TableAction action);

/// One compiled match-action rule.
struct TableRule {
  // --- match key --------------------------------------------------------
  std::uint16_t vlan_first = 0;
  std::uint16_t vlan_last = 0xFFFF;
  /// Destination-address prefix; prefix_len 0 matches any address.
  util::Ipv4Addr dst_prefix;
  std::uint8_t prefix_len = 0;
  /// 0 = any protocol, 1 = TCP, 2 = UDP.
  std::uint8_t proto = 0;
  /// Destination-port range, inclusive; [0, 65535] matches any port.
  std::uint16_t port_first = 0;
  std::uint16_t port_last = 0xFFFF;
  /// Policy-binding index: rules from earlier bindings always win, so
  /// the table preserves the containment server's first-match-across-
  /// bindings precedence exactly.
  std::uint16_t priority = 0;

  // --- action -----------------------------------------------------------
  TableAction action = TableAction::kFallback;
  /// REDIRECT/REFLECT destination.
  util::Endpoint target;
  /// LIMIT byte rate.
  std::uint64_t limit_bytes_per_sec = 0;
  /// Policy name + annotation, byte-identical to what the containment
  /// server's decide() would put in the response shim for this arm (the
  /// differential harness asserts this).
  std::string policy_name;
  std::string annotation;

  /// TCP convenience constants for `proto`.
  static constexpr std::uint8_t kProtoAny = 0;
  static constexpr std::uint8_t kProtoTcp = 1;
  static constexpr std::uint8_t kProtoUdp = 2;

  /// Does this rule cover (vlan, proto, dst)? `proto` uses the kProto*
  /// encoding above.
  [[nodiscard]] bool matches(std::uint16_t vlan, std::uint8_t flow_proto,
                             const util::Endpoint& dst) const;
};

/// One full compiled table, pushed atomically. A sync always carries the
/// complete table for its epoch — there are no incremental updates, so a
/// lost datagram costs only shim-path fallbacks until the next push.
struct TableSync {
  std::uint64_t epoch = 0;
  std::vector<TableRule> rules;

  /// Encode as one v4 frame. Throws std::length_error if the table does
  /// not fit the u16 length field (~900 annotation-free rules; real
  /// compiled tables are tens of rules).
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Parse a complete table-sync frame from the start of `data`.
  /// Hardened against hostile input: every length, range, and opcode is
  /// validated, and the frame must be internally consistent (consumed
  /// bytes == declared length). Returns nullopt on any violation —
  /// reject or parse, never crash or over-read.
  static std::optional<TableSync> parse(std::span<const std::uint8_t> data);
};

}  // namespace gq::shim
