// Per-subfarm inmate address bookkeeping: the binding between an
// inmate's VLAN ID, MAC, dynamically assigned internal (RFC 1918)
// address, and its NATed global address. Populated by the gateway's
// in-path DHCP responder ("triggered by the inmates' boot-time
// chatter", §5.3); the external address is picked from the subfarm's
// global range the first time a VLAN appears.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "services/dhcp.h"
#include "util/addr.h"

namespace gq::gw {

/// One inmate's address bindings.
struct InmateBinding {
  std::uint16_t vlan = 0;
  util::MacAddr mac;
  util::Ipv4Addr internal_addr;
  util::Ipv4Addr global_addr;
};

class InmateTable {
 public:
  /// `internal_net`/`external_net` as in SubfarmConfig; host indices
  /// [first, last] of internal_net are the DHCP pool.
  InmateTable(util::Ipv4Net internal_net, util::Ipv4Net external_net,
              util::Ipv4Addr gateway_internal, util::Ipv4Addr dns);

  /// Handle an inmate's DHCP message (from `vlan`/`mac`); returns the
  /// reply to broadcast back on that VLAN, if any. Binds addresses as a
  /// side effect.
  std::optional<svc::DhcpMessage> handle_dhcp(std::uint16_t vlan,
                                              const svc::DhcpMessage& msg);

  /// Lookups (nullptr when unknown).
  [[nodiscard]] const InmateBinding* by_vlan(std::uint16_t vlan) const;
  [[nodiscard]] const InmateBinding* by_internal(util::Ipv4Addr addr) const;
  [[nodiscard]] const InmateBinding* by_global(util::Ipv4Addr addr) const;

  /// Forget an inmate (lease + NAT binding released). Called when an
  /// inmate is destroyed; a revert keeps addresses stable.
  void release(std::uint16_t vlan);

  [[nodiscard]] std::size_t size() const { return by_vlan_.size(); }
  [[nodiscard]] util::Ipv4Addr gateway_internal() const {
    return gateway_internal_;
  }

  /// All current bindings (for reports).
  [[nodiscard]] const std::map<std::uint16_t, InmateBinding>& bindings()
      const {
    return by_vlan_;
  }

 private:
  util::Ipv4Net external_net_;
  util::Ipv4Addr gateway_internal_;
  svc::DhcpPool pool_;
  std::map<std::uint16_t, InmateBinding> by_vlan_;
  std::map<util::Ipv4Addr, std::uint16_t> by_internal_;
  std::map<util::Ipv4Addr, std::uint16_t> by_global_;
  /// Global addresses of released VLANs, reused verbatim if the VLAN
  /// re-binds (recycled slot): keeps NAT a pure function of binding
  /// order, which the detonation replay gate depends on.
  std::map<std::uint16_t, util::Ipv4Addr> retired_globals_;
  std::uint32_t next_global_index_ = 10;
};

}  // namespace gq::gw
