// Configuration structures for the GQ gateway and its subfarm packet
// routers. Mirrors the paper's split (§6.1): an invariant, reusable
// forwarding mechanism configured by a small per-subfarm description
// (external address range, VLAN ID range, containment server location,
// safety thresholds, trace naming).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "shim/shim.h"
#include "trace/archive.h"
#include "util/addr.h"
#include "util/time.h"

namespace gq::gw {

/// How the gateway treats unsolicited outside->inside flows (§5.3):
/// dropped (emulating a home NAT) or forwarded with destination rewrite
/// (Internet-reachable servers, needed e.g. for Storm proxy bots).
enum class InboundMode { kDrop, kForward };

/// Every gateway datapath toggle in one place: the switch fast path,
/// the per-subfarm verdict cache, and the compiled policy table. Set
/// once on GatewayConfig (or core::FarmOptions) instead of chasing
/// individual setters; add_subfarm resolves these into each
/// SubfarmConfig.
struct DatapathOptions {
  /// Hardware-switch fast path for established flows.
  bool fast_path = true;

  /// Gateway-side verdict cache (repeat flows resolved locally).
  bool verdict_cache = true;
  /// LRU bound on cached entries.
  std::size_t verdict_cache_capacity = 4096;
  /// TTL applied when a cacheable response carries cache_ttl_ms == 0.
  util::Duration verdict_cache_default_ttl = util::seconds(60);

  /// Compiled in-gateway policy table (first-contact flows resolved
  /// locally from the containment server's pushed match-action rules).
  bool policy_table = true;
};

/// Per-subfarm configuration (the "40-line configuration module").
struct SubfarmConfig {
  std::string name;

  /// VLAN ID range (inclusive) of the inmates this router handles.
  std::uint16_t vlan_first = 0;
  std::uint16_t vlan_last = 0;

  /// RFC 1918 space internal addresses are assigned from.
  util::Ipv4Net internal_net;

  /// Globally routable range inmates are NATed to.
  util::Ipv4Net external_net;

  /// The subfarm's containment server (management network).
  util::Endpoint containment_server;

  /// Optional additional containment servers forming a cluster (§7.2's
  /// scaling remedy: "a cluster of containment servers, managed by the
  /// subfarm's packet router", selected so that "the same containment
  /// server always handles the same inmate"). Flows are distributed
  /// over {containment_server} ∪ extra_containment_servers by VLAN.
  std::vector<util::Endpoint> extra_containment_servers;

  /// Recursive DNS resolver handed to inmates via DHCP.
  util::Ipv4Addr dns_service;

  /// Destinations reachable without containment (infrastructure services
  /// in the inmates' restricted broadcast domain, §5.3).
  std::set<util::Ipv4Addr> infra_services;

  InboundMode inbound_mode = InboundMode::kDrop;

  /// Safety filter thresholds (§5.1): new connections per inmate per
  /// window, and to any single destination per window.
  std::size_t max_conns_per_inmate = 2000;
  std::size_t max_conns_per_dest = 500;
  util::Duration safety_window = util::minutes(1);

  /// Whether DROP verdicts answer the inmate with a RST (visible refusal)
  /// or drop silently (black hole).
  bool drop_sends_rst = true;

  /// Idle flow garbage-collection timeout.
  util::Duration flow_timeout = util::minutes(5);

  // --- Fail-closed verdict resolution ---------------------------------
  // Containment must hold when the containment server is slow, sheds
  // load, or is unreachable (lossy/flapping management link). Each new
  // flow carries a verdict deadline; request shims are retransmitted
  // with bounded exponential backoff; a flow still undecided at the
  // deadline is locally enforced with fail_closed_verdict.

  /// How long a flow may sit in kAwaitVerdict before the router
  /// enforces the fail-closed verdict itself.
  util::Duration verdict_deadline = util::seconds(30);

  /// Verdict enforced when the deadline expires. Only kDrop (default)
  /// and kReflect are meaningful; anything else is treated as kDrop.
  /// kReflect additionally requires fail_closed_reflect_target.
  shim::Verdict fail_closed_verdict = shim::Verdict::kDrop;

  /// Sink endpoint for a kReflect fail-closed verdict (a management-side
  /// catch-all service). An unset address degrades kReflect to kDrop.
  util::Endpoint fail_closed_reflect_target;

  /// Request-shim retransmission: exponential backoff from initial to
  /// max, at most retry_limit retransmits, then fail-closed immediately.
  util::Duration shim_retry_initial = util::seconds(1);
  util::Duration shim_retry_max = util::seconds(8);
  int shim_retry_limit = 6;

  // --- Gateway-side verdict cache -------------------------------------
  // Verdicts the containment server marks cacheable (shim v3) are kept
  // in a per-subfarm LRU and repeat flows are resolved locally, without
  // a shim round trip. Entirely policy-driven: with no cacheable
  // decisions the cache only ever counts misses.

  /// Master switch for consulting/populating the verdict cache.
  bool verdict_cache_enabled = true;

  /// LRU bound on cached entries.
  std::size_t verdict_cache_capacity = 4096;

  /// TTL applied when a cacheable response carries cache_ttl_ms == 0.
  util::Duration verdict_cache_default_ttl = util::seconds(60);

  // --- Compiled policy table ------------------------------------------
  /// Master switch for the in-gateway match-action table: when enabled
  /// (and a current-epoch table has been synced), first-contact flows
  /// whose rule compiles concretely are resolved with no shim round
  /// trip.
  bool policy_table_enabled = true;

  [[nodiscard]] bool owns_vlan(std::uint16_t vlan) const {
    return vlan >= vlan_first && vlan <= vlan_last;
  }

  /// Overwrite this config's datapath toggles from the gateway-wide
  /// options.
  void apply_datapath(const DatapathOptions& datapath) {
    verdict_cache_enabled = datapath.verdict_cache;
    verdict_cache_capacity = datapath.verdict_cache_capacity;
    verdict_cache_default_ttl = datapath.verdict_cache_default_ttl;
    policy_table_enabled = datapath.policy_table;
  }
};

/// Gateway-wide configuration.
struct GatewayConfig {
  /// Gateway addresses on its three legs.
  util::Ipv4Addr upstream_addr;   ///< On the external network.
  util::Ipv4Addr mgmt_addr;       ///< On the management network.
  util::Ipv4Net mgmt_net;

  /// Nonce ports for containment-server proxy legs are allocated from
  /// this range on the management interface.
  std::uint16_t nonce_port_first = 40000;
  std::uint16_t nonce_port_last = 49999;

  /// Offset added to the gateway's locally-administered interface MAC
  /// ids (0xE0001..0xE0003). Zero for a standalone farm; a sharded
  /// deployment gives each shard a disjoint namespace (shard << 20) so
  /// MAC learning on L2-bridged external switches never sees the same
  /// address from two shards.
  std::uint32_t mac_namespace = 0;

  /// Rotation budget shared by every trace tap the gateway owns (the
  /// upstream/mgmt/inmate-ingress taps and one tap per subfarm router).
  trace::ArchiveConfig trace_archive;

  /// Datapath toggles applied to the gateway and to every subfarm
  /// router created under it.
  DatapathOptions datapath;
};

}  // namespace gq::gw
