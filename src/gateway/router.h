// SubfarmRouter: the per-subfarm packet forwarding logic (the Click
// configuration of §6.1). Everything flow-related happens here: the
// redirect of new inmate flows to the containment server, shim
// injection/stripping with sequence bumping (Figure 5), verdict
// enforcement (forward / limit / drop / redirect / reflect / rewrite,
// Figure 2), flow splicing onto real targets, NAT, the safety filter,
// infrastructure-service bypass, inbound-flow handling, per-subfarm
// trace recording, and flow garbage collection.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "gateway/config.h"
#include "gateway/flow.h"
#include "gateway/inmate_table.h"
#include "gateway/policy_table.h"
#include "gateway/safety.h"
#include "gateway/verdict_cache.h"
#include "obs/telemetry.h"
#include "packet/frame.h"
#include "trace/tap.h"
#include "util/rng.h"

namespace gq::gw {

class Gateway;

class SubfarmRouter {
 public:
  SubfarmRouter(Gateway& gateway, SubfarmConfig config);
  ~SubfarmRouter();

  [[nodiscard]] const SubfarmConfig& config() const { return config_; }

  /// Join an additional containment server to this subfarm's cluster
  /// (§7.2). Only affects flows created afterwards.
  void add_containment_server(util::Endpoint endpoint) {
    config_.extra_containment_servers.push_back(endpoint);
  }
  [[nodiscard]] InmateTable& inmates() { return inmates_; }
  /// This subfarm's rotating trace tap (inmate-network perspective,
  /// untagged, pre-NAT) with its per-flow index; flows gain their
  /// verdict annotation when the router applies one.
  [[nodiscard]] trace::TraceTap& trace() { return trace_; }
  [[nodiscard]] SafetyFilter& safety() { return safety_; }

  /// Frame from an inmate on `vlan` (tag already stripped).
  void from_inmate(std::uint16_t vlan, pkt::DecodedFrame frame);

  /// Zero-copy fast path: `bytes` is the untagged wire frame from an
  /// inmate on `vlan`. Returns true when the frame was fully handled
  /// in place (forwarded, or intentionally dropped by rate limiting);
  /// false means the caller must take the decode slow path. Only
  /// established flows with no shim/splice surgery pending qualify,
  /// and the rewrite is byte-identical to the slow path's re-encode.
  bool fast_from_inmate(std::uint16_t vlan, std::vector<std::uint8_t>& bytes);

  /// Fast path for a frame arriving from the server side (upstream or
  /// management leg) addressed into this subfarm. Same contract.
  bool fast_from_server(std::vector<std::uint8_t>& bytes);

  /// Frame from the management network whose destination is inside this
  /// subfarm's internal range (containment server / sink replies).
  void from_mgmt(pkt::DecodedFrame frame);

  /// Frame from upstream addressed into this subfarm's external range.
  void from_upstream(pkt::DecodedFrame frame);

  /// Frame from the containment server to one of this subfarm's nonce
  /// ports (REWRITE proxy outbound leg).
  void on_nonce_frame(std::uint16_t nonce, pkt::DecodedFrame frame);

  // Statistics (reads of the registry metrics this router maintains;
  // events go to the gateway's telemetry bus).
  [[nodiscard]] std::uint64_t flows_created() const {
    return flows_created_ctr_->value();
  }
  [[nodiscard]] std::size_t flows_active() const { return flows_.size(); }
  [[nodiscard]] std::uint64_t frames_from_inmates() const {
    return frames_from_inmates_ctr_->value();
  }
  [[nodiscard]] std::uint64_t fail_closed_verdicts() const {
    return fail_closed_ctr_->value();
  }
  [[nodiscard]] std::uint64_t shim_retries() const {
    return shim_retries_ctr_->value();
  }

  /// Reconfigure fail-closed behaviour at runtime (configuration-file
  /// plumbing: the [FailClosed] section of the containment config).
  void set_fail_closed(shim::Verdict verdict, util::Duration deadline,
                       util::Endpoint reflect_target = {});

  // --- Verdict cache (tentpole) ----------------------------------------
  /// The containment server's policy set changed (config reload): any
  /// epoch newer than the one the cache was filled under flushes it
  /// wholesale. Also invoked inline when a response shim carries a
  /// newer epoch than we have seen.
  void on_policy_epoch(std::uint64_t epoch);
  /// An inmate was reverted or terminated: its VLAN's cached verdicts
  /// describe a machine that no longer exists. Drop them.
  void flush_cache_vlan(std::uint16_t vlan);
  /// Runtime toggle (benchmarks, A/B comparison). Disabling flushes.
  void set_verdict_cache_enabled(bool enabled);
  [[nodiscard]] const VerdictCache& verdict_cache() const {
    return verdict_cache_;
  }
  [[nodiscard]] std::uint64_t cache_hits() const {
    return cache_hit_ctr_->value();
  }
  [[nodiscard]] std::uint64_t cache_misses() const {
    return cache_miss_ctr_->value();
  }

  /// Byte totals over this VLAN's flows that have not yet closed — the
  /// complement of kFlowClose accounting. Short-lived detonation jobs
  /// end well inside flow_timeout, so their flows' close events land
  /// after the job window; the orchestrator sweeps this at harvest.
  struct OpenFlowBytes {
    std::uint64_t to_server = 0;
    std::uint64_t to_inmate = 0;
  };
  [[nodiscard]] OpenFlowBytes open_flow_bytes(std::uint16_t vlan) const;

  // --- Compiled policy table (tentpole) --------------------------------
  /// Install a table pushed by the containment server (shim wire v4).
  /// A sync older than the router's policy epoch is rejected (counted
  /// as stale); a newer one advances the shared epoch, flushing the
  /// verdict cache atomically with the table swap. Returns whether the
  /// table was installed.
  bool install_policy_table(const shim::TableSync& sync);
  /// Runtime toggle (benchmarks, differential harness). Disabling does
  /// not drop the installed rules — re-enabling picks them back up if
  /// their epoch is still current.
  void set_policy_table_enabled(bool enabled);
  [[nodiscard]] bool policy_table_enabled() const {
    return config_.policy_table_enabled;
  }
  [[nodiscard]] const PolicyTable& policy_table() const {
    return policy_table_;
  }
  [[nodiscard]] std::uint64_t table_hits() const {
    return table_hit_ctr_->value();
  }
  [[nodiscard]] std::uint64_t table_fallbacks() const {
    return table_fallback_ctr_->value();
  }

 private:
  struct NonceRelay {
    util::Endpoint cs_ep;       // CS's source for this leg.
    util::Endpoint nat_src;     // What the target sees.
    util::Endpoint target;
    std::uint16_t nonce = 0;
    util::TimePoint last_activity;
  };

  using FlowPtr = std::shared_ptr<Flow>;

  // --- Ingress dispatch -------------------------------------------------
  void inmate_ip(std::uint16_t vlan, pkt::DecodedFrame& frame);
  void handle_new_inmate_flow(std::uint16_t vlan, pkt::DecodedFrame& frame);
  bool handle_server_side(pkt::DecodedFrame& frame);

  // --- Containment-server leg -------------------------------------------
  void relay_inmate_to_server(Flow& flow, pkt::DecodedFrame& frame);
  void cs_to_inmate(Flow& flow, pkt::DecodedFrame& frame);
  void inject_request_shim(Flow& flow);
  void retransmit_request_shim(FlowPtr flow);
  void process_cs_stream(Flow& flow);
  void apply_verdict(Flow& flow, const shim::ResponseShim& shim);

  // --- Fail-closed resolution ---------------------------------------------
  /// Arm (or re-arm) the flow's verdict deadline.
  void arm_verdict_deadline(const FlowPtr& flow);
  /// Deadline expired (or retries exhausted) with the flow still
  /// undecided: synthesize and enforce the fail-closed verdict.
  void fail_close_flow(Flow& flow);
  /// A verdict (real or synthesized) is being applied: cancel the
  /// deadline and drop the flow from the pending-verdict gauge.
  void verdict_resolved(Flow& flow);

  // --- Splicing -----------------------------------------------------------
  void start_splice(Flow& flow);
  void target_to_inmate(Flow& flow, pkt::DecodedFrame& frame);
  void replay_to_target(FlowPtr flow);
  void send_rst_to_cs(Flow& flow);
  void send_rst_to_inmate(Flow& flow);

  // --- UDP ----------------------------------------------------------------
  void udp_from_inmate(Flow& flow, pkt::DecodedFrame& frame);
  void udp_from_server(Flow& flow, pkt::DecodedFrame& frame);
  void apply_udp_verdict(Flow& flow, const shim::ResponseShim& shim,
                         std::span<const std::uint8_t> remainder);

  // --- Verdict cache ------------------------------------------------------
  /// Resolve a brand-new flow from a cache hit: synthesize the response
  /// shim the CS would have sent and run it through the normal verdict
  /// machinery. For TCP the router also plays the server's side of the
  /// handshake (SYN-ACK with a synthetic ISN) — no CS leg ever exists.
  void serve_cached_verdict(const FlowPtr& flow, const CachedVerdict& entry,
                            pkt::DecodedFrame& frame);
  /// Insert a genuine CS verdict into the cache when the policy marked
  /// it cacheable (and it is not REWRITE / stale-epoch), and advance
  /// the cache epoch from the shim.
  void maybe_cache_verdict(const Flow& flow, const shim::ResponseShim& shim);

  // --- Compiled policy table ----------------------------------------------
  /// Probe the policy table for a brand-new flow. Returns a concrete
  /// (non-fallback) rule when the table is enabled, current-epoch, and
  /// matches — counting hits and fallbacks; nullptr sends the flow down
  /// the cache/shim path.
  const shim::TableRule* probe_policy_table(std::uint16_t vlan,
                                            pkt::FlowProto proto,
                                            util::Endpoint dst);
  /// Resolve a brand-new flow from a concrete table rule: synthesize
  /// the response shim the CS would have sent and run it through the
  /// normal verdict machinery (synthetic handshake for TCP, exactly
  /// like a cache hit — no CS leg ever exists).
  void serve_table_verdict(const FlowPtr& flow, const shim::TableRule& rule,
                           pkt::DecodedFrame& frame);

  // --- Helpers --------------------------------------------------------------
  /// NAT source the server side should see for this flow's server.
  util::Endpoint nat_source_for(const Flow& flow,
                                util::Endpoint server) const;
  /// Cluster member handling a given inmate (§7.2: the same containment
  /// server always handles the same inmate).
  [[nodiscard]] util::Endpoint cs_for_vlan(std::uint16_t vlan) const;
  [[nodiscard]] bool is_internal(util::Ipv4Addr addr) const;
  [[nodiscard]] bool is_infra(util::Ipv4Addr addr) const;
  void emit_tcp(util::Endpoint src, util::Endpoint dst, std::uint8_t flags,
                std::uint32_t seq, std::uint32_t ack,
                std::vector<std::uint8_t> payload);
  void emit_udp(util::Endpoint src, util::Endpoint dst,
                std::vector<std::uint8_t> payload);
  void report(const Flow& flow, FlowEvent::Kind kind);
  obs::Counter& verdict_counter(shim::Verdict verdict);
  void close_flow(Flow& flow);
  void gc_sweep();

  Gateway& gateway_;
  SubfarmConfig config_;
  InmateTable inmates_;
  SafetyFilter safety_;
  trace::TraceTap trace_;
  util::Rng rng_;

  // Metric handles, resolved once against the gateway's registry under
  // the "gw.<subfarm>." prefix.
  obs::Counter* flows_created_ctr_ = nullptr;
  obs::Counter* frames_from_inmates_ctr_ = nullptr;
  obs::Counter* safety_admits_ctr_ = nullptr;
  obs::Counter* safety_rejects_ctr_ = nullptr;
  obs::Gauge* active_flows_gauge_ = nullptr;
  obs::Histogram* decision_latency_hist_ = nullptr;
  obs::Histogram* shim_rtt_hist_ = nullptr;
  // Fail-closed / degraded-mode observability.
  obs::Counter* shim_retries_ctr_ = nullptr;
  obs::Counter* verdict_timeouts_ctr_ = nullptr;
  obs::Counter* fail_closed_ctr_ = nullptr;
  obs::Gauge* pending_verdicts_gauge_ = nullptr;
  // Verdict-cache observability, plus the decision-latency histogram
  // split by verdict source (the combined histogram above stays for
  // backward compatibility with existing consumers).
  obs::Counter* cache_hit_ctr_ = nullptr;
  obs::Counter* cache_miss_ctr_ = nullptr;
  obs::Counter* cache_insert_ctr_ = nullptr;
  obs::Counter* cache_evict_ctr_ = nullptr;
  obs::Counter* cache_expire_ctr_ = nullptr;
  obs::Counter* cache_flush_ctr_ = nullptr;
  obs::Counter* cache_bypass_ctr_ = nullptr;
  obs::Histogram* decision_latency_cached_hist_ = nullptr;
  obs::Histogram* decision_latency_uncached_hist_ = nullptr;
  // Policy-table observability: local first-contact verdicts, fallback-
  // rule shim escalations, accepted syncs, and stale syncs rejected by
  // epoch, plus the table slice of the decision-latency split.
  obs::Counter* table_hit_ctr_ = nullptr;
  obs::Counter* table_fallback_ctr_ = nullptr;
  obs::Counter* table_sync_ctr_ = nullptr;
  obs::Counter* table_stale_ctr_ = nullptr;
  obs::Histogram* decision_latency_table_hist_ = nullptr;
  // Per-verdict counters, resolved once at construction and indexed by
  // (verdict - 1). Replaces per-event name concatenation + registry
  // lookup on the verdict hot path.
  std::array<obs::Counter*, 6> verdict_ctrs_{};

  // Gateway-side verdict cache (tentpole): repeat flows matching a
  // cacheable decision are resolved here, without a CS round trip.
  VerdictCache verdict_cache_{0};
  /// Highest containment-policy epoch observed (from response shims,
  /// table syncs, or on_policy_epoch()); entries cached under older
  /// epochs are flushed, and a policy table from an older epoch is
  /// never consulted.
  std::uint64_t cache_epoch_ = 0;

  // Compiled policy table: first-contact flows matching a concrete rule
  // are resolved here, before the verdict cache and without a CS round
  // trip.
  PolicyTable policy_table_;

  // Flow table, keyed by the inmate-side original flow. All per-frame
  // lookup tables are hash maps: the datapath does several lookups per
  // frame and never needs ordered iteration.
  std::unordered_map<pkt::FlowKey, FlowPtr, pkt::FlowKeyHash> flows_;
  // Server-side index: key is {proto, server_ep, nat_src} as seen in
  // frames arriving from the server side.
  std::unordered_map<pkt::FlowKey, FlowPtr, pkt::FlowKeyHash> server_index_;
  // Inbound (outside-initiated) pass-through flows, keyed as seen from
  // the inmate: {proto, inmate_internal_ep, remote_ep}.
  std::unordered_map<pkt::FlowKey, util::TimePoint, pkt::FlowKeyHash>
      inbound_flows_;
  // Nonce relays.
  std::unordered_map<std::uint16_t, NonceRelay> nonce_relays_;
  std::unordered_map<pkt::FlowKey, std::uint16_t, pkt::FlowKeyHash>
      nonce_by_target_key_;

};

}  // namespace gq::gw
