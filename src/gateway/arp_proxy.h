// ARP agent for one gateway interface. The gateway is not a HostStack —
// it forwards raw frames — but it still has to answer ARP for the
// addresses it owns (including proxy-ARP for whole NATed global ranges
// on the upstream side) and resolve next-hop MACs for frames it emits.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "netsim/event_loop.h"
#include "packet/headers.h"
#include "util/addr.h"

namespace gq::gw {

class ArpProxy {
 public:
  /// `emit` transmits a ready Ethernet frame out of the interface this
  /// agent serves (the owner adds VLAN tagging if required).
  using EmitFrame = std::function<void(std::vector<std::uint8_t>)>;

  ArpProxy(sim::EventLoop& loop, util::MacAddr my_mac, util::Ipv4Addr my_addr,
           EmitFrame emit);

  /// Also claim every address in `net` (proxy ARP for NATed inmates).
  void add_proxy_range(util::Ipv4Net net);

  /// Claim a single extra address.
  void add_owned(util::Ipv4Addr addr);

  /// Process an inbound ARP message on this interface: answers requests
  /// for owned addresses and learns peer mappings.
  void handle(const pkt::ArpMessage& arp);

  /// Resolve `next_hop` and then invoke `send(mac)`; queues and emits an
  /// ARP request on a miss (bounded retries; queued sends are dropped if
  /// resolution fails).
  void resolve(util::Ipv4Addr next_hop,
               std::function<void(util::MacAddr)> send);

  /// Pre-seed the cache (e.g. learned from DHCP snooping).
  void learn(util::Ipv4Addr addr, util::MacAddr mac);

  /// Probe the resolution cache without side effects (the zero-copy
  /// fast path declines to the queueing `resolve` on a miss).
  [[nodiscard]] std::optional<util::MacAddr> cached(
      util::Ipv4Addr next_hop) const {
    auto it = cache_.find(next_hop);
    if (it == cache_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] util::MacAddr mac() const { return my_mac_; }
  [[nodiscard]] util::Ipv4Addr addr() const { return my_addr_; }

 private:
  struct Pending {
    std::vector<std::function<void(util::MacAddr)>> waiters;
    int attempts = 0;
  };

  [[nodiscard]] bool owns(util::Ipv4Addr addr) const;
  void send_request(util::Ipv4Addr target);

  sim::EventLoop& loop_;
  util::MacAddr my_mac_;
  util::Ipv4Addr my_addr_;
  EmitFrame emit_;
  std::vector<util::Ipv4Net> proxy_ranges_;
  std::vector<util::Ipv4Addr> owned_;
  std::map<util::Ipv4Addr, util::MacAddr> cache_;
  std::map<util::Ipv4Addr, Pending> pending_;
};

}  // namespace gq::gw
