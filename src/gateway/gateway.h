// The GQ gateway (paper Figure 1): the single choke point between the
// outside network, the inmate network, and the management network. It
// hosts one SubfarmRouter per subfarm (disjoint VLAN ID ranges, Figure
// 3), answers/performs ARP on each leg, serves DHCP to inmates in-path,
// proxy-ARPs the NATed global ranges upstream, maintains the global
// upstream packet trace (§5.6), and brokers nonce-port connections from
// containment servers back out through the NAT.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "gateway/arp_proxy.h"
#include "gateway/config.h"
#include "gateway/flow.h"
#include "netsim/event_loop.h"
#include "netsim/port.h"
#include "obs/telemetry.h"
#include "packet/frame.h"
#include "packet/frame_view.h"
#include "packet/pcap.h"
#include "trace/tap.h"

namespace gq::gw {

class SubfarmRouter;

class Gateway {
 public:
  /// `telemetry` joins the gateway (and its subfarm routers) to a
  /// farm-wide metrics registry + event bus; when null the gateway owns
  /// a private Telemetry, so instrumentation never needs a null check.
  Gateway(sim::EventLoop& loop, GatewayConfig config,
          obs::Telemetry* telemetry = nullptr);
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// The three legs. inmate_port() expects/emits 802.1Q-tagged frames
  /// (wire it to a trunk port of the inmate switch).
  sim::Port& upstream_port() { return upstream_port_; }
  sim::Port& inmate_port() { return inmate_port_; }
  sim::Port& mgmt_port() { return mgmt_port_; }

  /// Create a subfarm router handling `config`'s VLAN range.
  SubfarmRouter& add_subfarm(const SubfarmConfig& config);

  [[nodiscard]] const std::vector<std::unique_ptr<SubfarmRouter>>& subfarms()
      const {
    return subfarms_;
  }
  SubfarmRouter* subfarm_by_name(const std::string& name);

  /// Deprecated: thin adapter over the telemetry bus. The handler is
  /// subscribed to the bus and fed FlowEvent conversions of the flow-
  /// lifecycle FarmEvents; prefer subscribing to telemetry().bus().
  void set_event_handler(FlowEventHandler handler);

  /// The metrics registry + event bus every subfarm router publishes to.
  [[nodiscard]] obs::Telemetry& telemetry() { return *telemetry_; }

  /// Observer invoked for every frame the gateway puts on its upstream
  /// (external) leg, just before transmission. This is the containment-
  /// escape oracle's vantage point: everything that could reach the real
  /// Internet passes exactly here. Null (default) disables.
  using UpstreamTap =
      std::function<void(util::TimePoint, const std::vector<std::uint8_t>&)>;
  void set_upstream_tap(UpstreamTap tap) { upstream_tap_ = std::move(tap); }

  [[nodiscard]] sim::EventLoop& loop() { return loop_; }
  [[nodiscard]] const GatewayConfig& config() const { return config_; }
  /// Rotating trace of the upstream leg: both directions, recorded at
  /// the transmit_upstream choke point and at upstream-port ingress.
  [[nodiscard]] trace::TraceTap& upstream_trace() { return upstream_trace_; }
  /// Trace of the management leg (containment-server traffic) — where
  /// the Figure 5 shim exchange is visible.
  [[nodiscard]] trace::TraceTap& mgmt_trace() { return mgmt_trace_; }
  /// Raw 802.1Q-tagged inmate-port ingress, exactly as received — the
  /// deterministic-replay source (trace/replay.h): injecting these
  /// frames at their recorded times into an identically seeded farm
  /// reproduces the run.
  [[nodiscard]] trace::TraceTap& inmate_rx_trace() { return inmate_rx_trace_; }

  /// Inject one raw (tagged) frame as if it arrived on the inmate port.
  /// The replay driver's entry point.
  void inject_inmate_frame(std::vector<std::uint8_t> bytes) {
    on_inmate_frame(sim::Frame{std::move(bytes)});
  }

  /// Mirror one VLAN's raw tagged inmate-port ingress into `tap`
  /// (recorded alongside inmate_rx_trace_, same bytes and timestamps).
  /// The detonation orchestrator points this at a per-job TraceTap for
  /// the job's lifetime, giving each job a replayable archive that by
  /// construction contains only its own inmate's traffic. The tap must
  /// outlive the binding; clear before destroying it.
  void set_vlan_tap(std::uint16_t vlan, trace::TraceTap* tap) {
    vlan_taps_[vlan] = tap;
  }
  void clear_vlan_tap(std::uint16_t vlan) { vlan_taps_.erase(vlan); }

  // --- Services used by SubfarmRouter ---------------------------------

  /// Emit an IP frame toward an inmate VLAN / the management network /
  /// the upstream network, handling MAC resolution and VLAN tagging.
  /// The frame's IP/L4 fields must already be final.
  void emit_to_inmate(std::uint16_t vlan, util::MacAddr dst_mac,
                      pkt::DecodedFrame frame);
  void emit_to_mgmt(pkt::DecodedFrame frame);
  void emit_to_upstream(pkt::DecodedFrame frame);

  /// Route by destination address: inmate internal nets -> VLAN,
  /// management net -> mgmt leg, anything else -> upstream.
  void emit_auto(pkt::DecodedFrame frame);

  /// Allocate / release a nonce port for a REWRITE proxy leg.
  std::uint16_t allocate_nonce(SubfarmRouter* owner);
  void release_nonce(std::uint16_t port);

  [[nodiscard]] util::MacAddr inmate_leg_mac() const {
    return inmate_leg_mac_;
  }

  // --- Zero-copy fast path ---------------------------------------------

  /// Toggle the established-flow zero-copy datapath (on by default).
  /// Frames the fast path declines always fall back to the decode /
  /// re-encode slow path, so turning it off only changes performance.
  void set_fast_path(bool enabled) { fast_path_ = enabled; }
  [[nodiscard]] bool fast_path() const { return fast_path_; }

  /// A resolved raw-frame egress: which leg, the final Ethernet
  /// addresses, and the VLAN tag for the inmate leg.
  struct RawEgress {
    enum class Leg { kInmate, kMgmt, kUpstream };
    Leg leg = Leg::kUpstream;
    util::MacAddr src_mac;
    util::MacAddr dst_mac;
    std::uint16_t vlan = 0;
    SubfarmRouter* subfarm = nullptr;  // Inmate leg: owns the trace.
  };

  /// Resolve the egress for a final destination with no side effects.
  /// nullopt (unknown inmate binding, cold ARP cache) means the caller
  /// must take the slow path, whose resolver can queue and retry.
  std::optional<RawEgress> resolve_raw_egress(util::Ipv4Addr dst);

  /// Transmit an already-rewritten raw frame on a resolved leg: stamps
  /// the Ethernet addresses through `view` (which must alias `bytes`),
  /// records the leg's trace, and 802.1Q-tags inmate-leg frames.
  void emit_raw(const RawEgress& egress, std::vector<std::uint8_t> bytes,
                pkt::FrameView& view);

 private:
  void on_upstream_frame(sim::Frame frame);
  void on_inmate_frame(sim::Frame frame);
  void on_mgmt_frame(sim::Frame frame);
  /// Single choke point for upstream egress: trace, tap, transmit.
  void transmit_upstream(std::vector<std::uint8_t> bytes);
  SubfarmRouter* subfarm_for_vlan(std::uint16_t vlan);
  SubfarmRouter* subfarm_for_internal(util::Ipv4Addr addr);
  SubfarmRouter* subfarm_for_global(util::Ipv4Addr addr);

  sim::EventLoop& loop_;
  GatewayConfig config_;
  // Telemetry first: subfarm routers resolve metric handles against it
  // at construction.
  std::unique_ptr<obs::Telemetry> owned_telemetry_;
  obs::Telemetry* telemetry_ = nullptr;
  sim::Port upstream_port_;
  sim::Port inmate_port_;
  sim::Port mgmt_port_;
  util::MacAddr inmate_leg_mac_;
  ArpProxy upstream_arp_;
  ArpProxy mgmt_arp_;
  trace::TraceTap upstream_trace_;
  trace::TraceTap mgmt_trace_;
  trace::TraceTap inmate_rx_trace_;
  std::vector<std::unique_ptr<SubfarmRouter>> subfarms_;
  std::map<std::uint16_t, trace::TraceTap*> vlan_taps_;
  std::map<std::uint16_t, SubfarmRouter*> nonce_owners_;
  std::uint16_t next_nonce_;
  bool fast_path_ = true;
  UpstreamTap upstream_tap_;
  // Legacy set_event_handler adapter state.
  FlowEventHandler legacy_handler_;
  std::optional<obs::EventBus::SubscriptionId> legacy_subscription_;
};

}  // namespace gq::gw
