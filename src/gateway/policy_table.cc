#include "gateway/policy_table.h"

#include <algorithm>

namespace gq::gw {

namespace {

/// Width of a rule's port range (any-port rules span the full space).
std::uint32_t port_span(const shim::TableRule& r) {
  return static_cast<std::uint32_t>(r.port_last - r.port_first);
}

/// Specificity order: earlier bindings first (the containment server's
/// first-match-across-bindings precedence), then longer prefixes, then
/// narrower port ranges — so a linear first-hit scan implements
/// longest-prefix match within a binding. Ties keep encounter order
/// (stable sort), matching the compiler's arm order.
bool more_specific(const shim::TableRule& a, const shim::TableRule& b) {
  if (a.priority != b.priority) return a.priority < b.priority;
  if (a.prefix_len != b.prefix_len) return a.prefix_len > b.prefix_len;
  return port_span(a) < port_span(b);
}

}  // namespace

bool PolicyTable::install(const shim::TableSync& sync) {
  if (sync.epoch < epoch_) return false;
  rules_ = sync.rules;
  std::stable_sort(rules_.begin(), rules_.end(), more_specific);
  epoch_ = sync.epoch;
  return true;
}

const shim::TableRule* PolicyTable::lookup(
    std::uint16_t vlan, std::uint8_t proto,
    const util::Endpoint& dst) const {
  for (const auto& rule : rules_)
    if (rule.matches(vlan, proto, dst)) return &rule;
  return nullptr;
}

}  // namespace gq::gw
