// Per-flow state tracked by a subfarm packet router. A flow's life
// (paper §5.4, Figure 5):
//
//   1. kAwaitVerdict — the inmate's flow has been redirected to the
//      containment server (CS); the gateway synthesized the handshake,
//      injected the request shim, and is reassembling the CS's stream
//      to extract the response shim. Inmate payload is both relayed to
//      the CS and buffered for a possible splice.
//   2. kSplicing — verdict was an endpoint-control one (FORWARD / LIMIT /
//      REDIRECT / REFLECT); the gateway RSTs the CS leg and opens its own
//      connection to the real destination, replaying buffered payload.
//   3. kEstablished — relaying with per-direction sequence deltas (and
//      NAT); the CS stays in-path only for REWRITE verdicts.
//   4. kDenied / kClosed — terminal.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/events.h"
#include "packet/frame.h"
#include "shim/shim.h"
#include "util/addr.h"
#include "util/rate.h"
#include "util/time.h"

namespace gq::gw {

enum class FlowPhase {
  kAwaitVerdict,
  kSplicing,
  kEstablished,
  kDenied,
  kClosed,
};

const char* flow_phase_name(FlowPhase p);

/// State for one contained flow (TCP or UDP).
struct Flow {
  // Identity.
  pkt::FlowProto proto = pkt::FlowProto::kTcp;
  std::uint16_t vlan = 0;
  util::Endpoint inmate_ep;    ///< Internal address + source port.
  util::Endpoint orig_dst;     ///< The destination the inmate dialed.
  util::Ipv4Addr inmate_global;
  /// Source endpoint used on the containment-server leg. Normally equal
  /// to inmate_ep, but the source port is remapped when two concurrent
  /// flows from the same inmate endpoint would collide at the CS's
  /// single listening address (all flows are redirected there).
  util::Endpoint cs_src;
  /// The containment server handling this flow (with clustering, the
  /// per-VLAN member of the subfarm's CS cluster).
  util::Endpoint cs_ep;

  // Verdict state.
  FlowPhase phase = FlowPhase::kAwaitVerdict;
  shim::Verdict verdict = shim::Verdict::kDrop;
  std::string policy_name;
  std::string annotation;
  /// LIMIT rate from the response shim's typed parameter block.
  std::optional<std::int64_t> limit_bytes_per_sec;
  util::Endpoint server_ep;    ///< Current server-side endpoint.
  bool server_is_cs = true;

  // --- TCP sequence bookkeeping ---------------------------------------
  std::uint32_t inmate_isn = 0;
  std::uint32_t cs_isn = 0;
  bool cs_isn_known = false;
  std::uint32_t server_isn = 0;  ///< Splice target's ISN.
  // Sequence-space deltas, applied with mod-2^32 wraparound:
  //   seq_toward_server = inmate_seq + d_out    (acks back: ack - d_out)
  //   seq_toward_inmate = server_seq + d_in     (acks back: ack - d_in)
  std::uint32_t d_out = 0;
  std::uint32_t d_in = 0;
  std::uint32_t inmate_snd_nxt = 0;  ///< Highest inmate seq seen + len.
  std::uint32_t server_rcv_next = 0; ///< Next server-side seq expected.

  // Request-shim injection.
  bool req_shim_sent = false;
  bool req_shim_acked = false;
  int req_shim_retries = 0;
  util::TimePoint req_shim_sent_at;  ///< For shim round-trip latency.
  /// Current retransmit backoff (doubles per retry, bounded by config).
  util::Duration req_shim_backoff{};

  // Fail-closed bookkeeping: the pending verdict-deadline event
  // (sim::EventId; 0 = none) and whether the verdict was synthesized
  // locally because the containment server never answered.
  std::uint64_t verdict_deadline_event = 0;
  bool fail_closed = false;

  /// Where the flow's verdict came from: a CS shim round trip, the
  /// verdict cache, or the compiled policy table. For the latter two no
  /// CS leg exists (no redirect, no request shim, synthetic handshake
  /// state), so CS-leg teardown must be skipped — see served_locally().
  shim::VerdictSource verdict_source = shim::VerdictSource::kShim;
  /// Back-compat alias kept in sync with verdict_source (== kCached).
  bool verdict_from_cache = false;

  /// True when the verdict was resolved in-gateway (cache or table):
  /// there is no containment-server leg to tear down or RST.
  [[nodiscard]] bool served_locally() const {
    return verdict_source != shim::VerdictSource::kShim;
  }

  // Response-shim extraction: in-order reassembly of the CS->inmate
  // stream prefix.
  std::vector<std::uint8_t> cs_in_buf;
  std::uint32_t cs_in_expected = 0;  ///< Next CS seq expected.
  std::map<std::uint32_t, std::vector<std::uint8_t>> cs_in_ooo;

  // Inmate payload buffered for splice replay, keyed by inmate seq.
  std::map<std::uint32_t, std::vector<std::uint8_t>> replay_buf;
  std::uint32_t replay_acked = 0;   ///< Target-acked position (inmate seq).
  bool inmate_fin_seen = false;
  std::uint32_t inmate_fin_seq = 0;
  bool replay_fin_sent = false;

  // UDP: datagrams buffered before the verdict.
  std::vector<std::vector<std::uint8_t>> udp_buffer;

  // REWRITE second leg.
  std::uint16_t nonce_port = 0;

  // LIMIT enforcement.
  std::optional<util::TokenBucket> limiter;

  // Accounting.
  std::uint64_t bytes_to_server = 0;
  std::uint64_t bytes_to_inmate = 0;
  util::TimePoint created;
  util::TimePoint last_activity;
  bool fin_inmate = false;
  bool fin_server = false;
  bool reported_open = false;
};

/// A report-stream event emitted by the packet router. Retained as the
/// legacy view of the obs::FarmEvent stream: the router publishes
/// FarmEvents on the gateway's telemetry bus, and
/// Gateway::set_event_handler() adapts them back into FlowEvents for
/// callers that still want this shape.
struct FlowEvent {
  enum class Kind { kOpen, kVerdict, kClose, kSafetyReject, kDhcpBind };
  Kind kind = Kind::kOpen;
  util::TimePoint time;
  std::string subfarm;
  std::uint16_t vlan = 0;
  pkt::FlowProto proto = pkt::FlowProto::kTcp;
  util::Endpoint orig_dst;
  shim::Verdict verdict = shim::Verdict::kDrop;
  std::string policy_name;
  std::string annotation;
  std::optional<std::int64_t> limit_bytes_per_sec;
  std::uint64_t bytes_to_server = 0;
  std::uint64_t bytes_to_inmate = 0;
  /// kVerdict: where the verdict came from (CS shim round trip, verdict
  /// cache, or compiled policy table; fail-closed verdicts count as
  /// "shim" — they are not local hits).
  shim::VerdictSource verdict_source = shim::VerdictSource::kShim;
  /// Back-compat alias: verdict_source == kCached.
  bool verdict_cached = false;
};

using FlowEventHandler = std::function<void(const FlowEvent&)>;

/// Convert between the legacy FlowEvent shape and the bus envelope.
/// to_flow_event() returns nullopt for FarmEvents with no FlowEvent
/// equivalent (containment-server and sink kinds).
obs::FarmEvent to_farm_event(const FlowEvent& event);
std::optional<FlowEvent> to_flow_event(const obs::FarmEvent& event);

}  // namespace gq::gw
