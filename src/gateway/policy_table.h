// The compiled in-gateway policy table: the router-resident half of the
// line-rate first-contact datapath. The containment server compiles its
// policy class hierarchy into flat match-action rules (shim wire v4,
// see shim/table_sync.h) and pushes the complete table per policy
// epoch; the router probes this table for every admitted first-contact
// flow *before* consulting the verdict cache, and a concrete match
// resolves the verdict locally with zero containment-server round
// trips. Rules compiled to kFallback — REWRITE arms, trigger-coupled
// VLAN ranges, stateful policies — deliberately punt to the shim path,
// as does any miss.
//
// Epoch discipline mirrors the verdict cache: the table is stamped with
// the containment server's policy epoch at compile time, installs are
// rejected when older than what the router has already seen, and a
// newer install bumps the shared router epoch (flushing the verdict
// cache atomically with the table swap). A table whose epoch lags the
// router's is never consulted — stale rules cannot outlive a policy
// reload.
#pragma once

#include <cstdint>
#include <vector>

#include "shim/table_sync.h"
#include "util/addr.h"

namespace gq::gw {

/// Flat, epoch-versioned match-action table with longest-prefix-match
/// semantics. Lookup is a linear scan over rules pre-sorted at install
/// time by (binding priority, prefix length desc, port-range width asc)
/// — specificity order — so the first hit is the correct match. Real
/// compiled tables are tens of rules; the scan is cheap and keeps the
/// structure trivially auditable next to the differential harness.
class PolicyTable {
 public:
  /// Replace the whole table with `sync`'s rules. Returns false (and
  /// leaves the current table untouched) when `sync.epoch` is older
  /// than the installed epoch; same-epoch re-installs are accepted
  /// idempotently (table pushes ride UDP and may be repeated).
  bool install(const shim::TableSync& sync);

  /// Most specific rule covering (vlan, proto, dst), or nullptr on a
  /// miss. `proto` uses shim::TableRule::kProto{Tcp,Udp}. A returned
  /// rule may still be a kFallback — callers route those to the shim
  /// path just like a miss, but count them separately.
  [[nodiscard]] const shim::TableRule* lookup(
      std::uint16_t vlan, std::uint8_t proto,
      const util::Endpoint& dst) const;

  /// Drop every rule (the epoch is retained, so a re-push of the same
  /// generation can restore the table).
  void clear() { rules_.clear(); }

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::size_t size() const { return rules_.size(); }
  [[nodiscard]] bool empty() const { return rules_.empty(); }
  [[nodiscard]] const std::vector<shim::TableRule>& rules() const {
    return rules_;
  }

 private:
  std::vector<shim::TableRule> rules_;
  std::uint64_t epoch_ = 0;
};

}  // namespace gq::gw
