// The gateway's safety filter (§5.1): a backstop independent of any
// containment policy that caps the rate of new connections an inmate
// may open overall and toward any single destination. Even a buggy
// containment policy cannot turn the farm into a SYN flood source.
#pragma once

#include <cstdint>
#include <map>

#include "util/addr.h"
#include "util/rate.h"
#include "util/time.h"

namespace gq::gw {

class SafetyFilter {
 public:
  SafetyFilter(std::size_t max_per_inmate, std::size_t max_per_dest,
               util::Duration window)
      : max_per_inmate_(max_per_inmate),
        max_per_dest_(max_per_dest),
        window_(window) {}

  /// Account a new flow from `vlan` to `dst` at time `now`; returns
  /// false if either threshold is exceeded (the flow must be dropped).
  bool admit(util::TimePoint now, std::uint16_t vlan, util::Ipv4Addr dst);

  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }

 private:
  std::size_t max_per_inmate_;
  std::size_t max_per_dest_;
  util::Duration window_;
  std::map<std::uint16_t, util::SlidingWindowCounter> per_inmate_;
  std::map<util::Ipv4Addr, util::SlidingWindowCounter> per_dest_;
  std::uint64_t rejected_ = 0;
};

}  // namespace gq::gw
