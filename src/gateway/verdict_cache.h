// Gateway-side flow-verdict cache (the PR's tentpole, motivated by
// paper §6.2: every new flow stalls on a shim round trip to the
// containment server, so flow-*setup* rate is CS-bound). Policies opt
// individual decisions in via the shim v3 cache block; the router then
// answers repeat flows matching a cached verdict locally — no redirect,
// no shim, no CS occupancy — while REWRITE always bypasses the cache
// (the CS must stay in-path as the content-control proxy).
//
// Keys always include the inmate's VLAN (per-VLAN policy bindings,
// per-VLAN flush on revert/terminate triggers) and the flow protocol.
// Three scopes, probed narrowest-first:
//   exact         full four-tuple — repeat identical flows only
//   dst-endpoint  (dst addr, dst port) — any inmate port to one service
//   dst-port      dst port only — scan-class policies
//
// The cache is LRU-bounded and entries expire on the event-loop clock
// (lazily, at lookup). Invalidation beyond TTL is the router's job:
// whole-cache flush on a policy-epoch bump, per-VLAN flush on inmate
// revert/terminate.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "packet/frame.h"
#include "shim/shim.h"
#include "util/addr.h"
#include "util/time.h"

namespace gq::gw {

/// One cached containment decision — everything needed to synthesize
/// the response shim the containment server would have sent.
struct CachedVerdict {
  shim::Verdict verdict = shim::Verdict::kDrop;
  /// Resulting responder endpoint for kRedirect/kReflect (the sink or
  /// redirect target the original response shim carried).
  util::Endpoint resp;
  std::string policy_name;
  std::string annotation;
  std::optional<std::int64_t> limit_bytes_per_sec;
  util::TimePoint expires;
};

class VerdictCache {
 public:
  explicit VerdictCache(std::size_t capacity) : capacity_(capacity) {}

  /// Probe exact -> dst-endpoint -> dst-port for a live entry. Expired
  /// entries encountered along the way are erased and counted in
  /// `expired` (when non-null). Hits are LRU-refreshed. The returned
  /// pointer is valid until the next mutating call.
  const CachedVerdict* lookup(pkt::FlowProto proto, std::uint16_t vlan,
                              util::Endpoint src, util::Endpoint dst,
                              util::TimePoint now,
                              std::uint64_t* expired = nullptr);

  /// Insert (or refresh) the entry for the given flow at the scope the
  /// policy chose. Returns the number of LRU evictions this caused
  /// (0 or 1).
  std::size_t insert(pkt::FlowProto proto, std::uint16_t vlan,
                     util::Endpoint src, util::Endpoint dst,
                     shim::CacheScope scope, CachedVerdict entry);

  /// Drop everything (policy-epoch bump). Returns entries dropped.
  std::size_t flush();

  /// Drop every entry of one VLAN (inmate revert/terminate trigger).
  /// Returns entries dropped.
  std::size_t flush_vlan(std::uint16_t vlan);

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  /// Scope is part of the key: the source endpoint is zeroed for the
  /// two widened scopes and the destination address for dst-port, so
  /// one map serves all three probe shapes.
  struct Key {
    pkt::FlowProto proto = pkt::FlowProto::kTcp;
    std::uint16_t vlan = 0;
    shim::CacheScope scope = shim::CacheScope::kExactFlow;
    util::Endpoint src;
    util::Endpoint dst;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      const std::uint64_t addrs =
          (std::uint64_t{k.src.addr.value()} << 32) | k.dst.addr.value();
      const std::uint64_t rest =
          (std::uint64_t{k.src.port} << 48) | (std::uint64_t{k.dst.port} << 32) |
          (std::uint64_t{k.vlan} << 16) |
          (std::uint64_t{static_cast<std::uint8_t>(k.scope)} << 8) |
          static_cast<std::uint64_t>(k.proto);
      return static_cast<std::size_t>(
          pkt::FlowKeyHash::mix(addrs ^ pkt::FlowKeyHash::mix(rest)));
    }
  };

  static Key make_key(pkt::FlowProto proto, std::uint16_t vlan,
                      util::Endpoint src, util::Endpoint dst,
                      shim::CacheScope scope);

  using Lru = std::list<std::pair<Key, CachedVerdict>>;

  /// Find the live entry for one fully-formed key; erases it when
  /// expired (counting into `expired`).
  const CachedVerdict* probe(const Key& key, util::TimePoint now,
                             std::uint64_t* expired);

  std::size_t capacity_;
  Lru lru_;  ///< Front = most recently used.
  std::unordered_map<Key, Lru::iterator, KeyHash> map_;
};

}  // namespace gq::gw
