#include "gateway/gateway.h"

#include "gateway/router.h"
#include "services/dhcp.h"
#include "shim/table_sync.h"
#include "util/log.h"

namespace gq::gw {

namespace {
constexpr const char* kLog = "gw";
}

Gateway::Gateway(sim::EventLoop& loop, GatewayConfig config,
                 obs::Telemetry* telemetry)
    : loop_(loop),
      config_(config),
      owned_telemetry_(telemetry ? nullptr
                                 : std::make_unique<obs::Telemetry>()),
      telemetry_(telemetry ? telemetry : owned_telemetry_.get()),
      upstream_port_(loop, "gw.upstream"),
      inmate_port_(loop, "gw.inmate"),
      mgmt_port_(loop, "gw.mgmt"),
      inmate_leg_mac_(util::MacAddr::local(0xE0002 + config.mac_namespace)),
      upstream_arp_(loop, util::MacAddr::local(0xE0001 + config.mac_namespace),
                    config.upstream_addr,
                    [this](std::vector<std::uint8_t> frame) {
                      transmit_upstream(std::move(frame));
                    }),
      mgmt_arp_(loop, util::MacAddr::local(0xE0003 + config.mac_namespace),
                config.mgmt_addr,
                [this](std::vector<std::uint8_t> frame) {
                  mgmt_port_.transmit(sim::Frame{std::move(frame)});
                }),
      upstream_trace_("upstream", config.trace_archive, telemetry_),
      mgmt_trace_("mgmt", config.trace_archive, telemetry_),
      inmate_rx_trace_("inmate_rx", config.trace_archive, telemetry_),
      next_nonce_(config.nonce_port_first),
      fast_path_(config.datapath.fast_path) {
  // The management/control network has its own external connectivity
  // (the paper dedicates one of its five /24s to control infrastructure,
  // §6.7): the gateway proxy-ARPs the range upstream and routes it.
  upstream_arp_.add_proxy_range(config_.mgmt_net);
  upstream_port_.set_rx(
      [this](sim::Frame frame) { on_upstream_frame(std::move(frame)); });
  inmate_port_.set_rx(
      [this](sim::Frame frame) { on_inmate_frame(std::move(frame)); });
  mgmt_port_.set_rx(
      [this](sim::Frame frame) { on_mgmt_frame(std::move(frame)); });
}

Gateway::~Gateway() = default;

SubfarmRouter& Gateway::add_subfarm(const SubfarmConfig& config) {
  // The gateway-wide datapath options win over whatever the caller left
  // in the per-subfarm toggles: one knob, resolved here.
  SubfarmConfig resolved = config;
  resolved.apply_datapath(config_.datapath);
  subfarms_.push_back(std::make_unique<SubfarmRouter>(*this, resolved));
  auto& subfarm = *subfarms_.back();
  // The gateway answers upstream ARP for the whole NATed global range.
  upstream_arp_.add_proxy_range(config.external_net);
  return subfarm;
}

SubfarmRouter* Gateway::subfarm_by_name(const std::string& name) {
  for (auto& subfarm : subfarms_)
    if (subfarm->config().name == name) return subfarm.get();
  return nullptr;
}

void Gateway::set_event_handler(FlowEventHandler handler) {
  if (legacy_subscription_) {
    telemetry_->bus().unsubscribe(*legacy_subscription_);
    legacy_subscription_.reset();
  }
  legacy_handler_ = std::move(handler);
  if (!legacy_handler_) return;
  legacy_subscription_ =
      telemetry_->bus().subscribe([this](const obs::FarmEvent& event) {
        if (auto legacy = to_flow_event(event)) legacy_handler_(*legacy);
      });
}

SubfarmRouter* Gateway::subfarm_for_vlan(std::uint16_t vlan) {
  for (auto& subfarm : subfarms_)
    if (subfarm->config().owns_vlan(vlan)) return subfarm.get();
  return nullptr;
}

SubfarmRouter* Gateway::subfarm_for_internal(util::Ipv4Addr addr) {
  for (auto& subfarm : subfarms_)
    if (subfarm->config().internal_net.contains(addr)) return subfarm.get();
  return nullptr;
}

SubfarmRouter* Gateway::subfarm_for_global(util::Ipv4Addr addr) {
  for (auto& subfarm : subfarms_)
    if (subfarm->config().external_net.contains(addr)) return subfarm.get();
  return nullptr;
}

std::uint16_t Gateway::allocate_nonce(SubfarmRouter* owner) {
  const std::uint32_t pool_size = static_cast<std::uint32_t>(
      config_.nonce_port_last - config_.nonce_port_first + 1);
  for (std::uint32_t guard = 0; guard < pool_size; ++guard) {
    const std::uint16_t candidate = next_nonce_;
    next_nonce_ = (next_nonce_ >= config_.nonce_port_last)
                      ? config_.nonce_port_first
                      : next_nonce_ + 1;
    if (!nonce_owners_.count(candidate)) {
      nonce_owners_[candidate] = owner;
      return candidate;
    }
  }
  GQ_ERROR(kLog, "nonce port pool exhausted");
  return 0;
}

void Gateway::release_nonce(std::uint16_t port) { nonce_owners_.erase(port); }

// --- Zero-copy fast path -----------------------------------------------------

std::optional<Gateway::RawEgress> Gateway::resolve_raw_egress(
    util::Ipv4Addr dst) {
  if (auto* subfarm = subfarm_for_internal(dst)) {
    const InmateBinding* binding = subfarm->inmates().by_internal(dst);
    if (!binding) return std::nullopt;
    return RawEgress{RawEgress::Leg::kInmate, inmate_leg_mac_, binding->mac,
                     binding->vlan, subfarm};
  }
  if (config_.mgmt_net.contains(dst)) {
    const auto mac = mgmt_arp_.cached(dst);
    if (!mac) return std::nullopt;
    return RawEgress{RawEgress::Leg::kMgmt, mgmt_arp_.mac(), *mac, 0,
                     nullptr};
  }
  const auto mac = upstream_arp_.cached(dst);
  if (!mac) return std::nullopt;
  return RawEgress{RawEgress::Leg::kUpstream, upstream_arp_.mac(), *mac, 0,
                   nullptr};
}

void Gateway::emit_raw(const RawEgress& egress,
                       std::vector<std::uint8_t> bytes,
                       pkt::FrameView& view) {
  view.set_eth_src(egress.src_mac);
  view.set_eth_dst(egress.dst_mac);
  switch (egress.leg) {
    case RawEgress::Leg::kInmate:
      // Inmate-side trace is recorded untagged (internal perspective,
      // §5.6), exactly like the slow path's emit_to_inmate.
      egress.subfarm->trace().record(loop_.now(), bytes, egress.vlan);
      pkt::insert_vlan_tag(bytes, egress.vlan);
      inmate_port_.transmit(sim::Frame{std::move(bytes)});
      return;
    case RawEgress::Leg::kMgmt:
      mgmt_trace_.record(loop_.now(), bytes);
      mgmt_port_.transmit(sim::Frame{std::move(bytes)});
      return;
    case RawEgress::Leg::kUpstream:
      transmit_upstream(std::move(bytes));
      return;
  }
}

void Gateway::transmit_upstream(std::vector<std::uint8_t> bytes) {
  upstream_trace_.record(loop_.now(), bytes);
  if (upstream_tap_) upstream_tap_(loop_.now(), bytes);
  upstream_port_.transmit(sim::Frame{std::move(bytes)});
}

// --- Egress ---------------------------------------------------------------

void Gateway::emit_to_inmate(std::uint16_t vlan, util::MacAddr dst_mac,
                             pkt::DecodedFrame frame) {
  frame.eth.src = inmate_leg_mac_;
  frame.eth.dst = dst_mac;
  frame.eth.vlan.reset();
  // Record the inmate-side trace untagged (internal perspective, §5.6).
  if (auto* subfarm = subfarm_for_vlan(vlan)) {
    subfarm->trace().record(loop_.now(), frame.encode(), vlan);
  }
  frame.eth.vlan = vlan;
  inmate_port_.transmit(sim::Frame{frame.encode()});
}

void Gateway::emit_to_mgmt(pkt::DecodedFrame frame) {
  frame.eth.src = mgmt_arp_.mac();
  frame.eth.vlan.reset();
  const util::Ipv4Addr dst = frame.ip ? frame.ip->dst : util::Ipv4Addr();
  // shared_ptr: ArpProxy's callback type requires a copyable closure.
  auto shared = std::make_shared<pkt::DecodedFrame>(std::move(frame));
  mgmt_arp_.resolve(dst, [this, shared](util::MacAddr mac) {
    shared->eth.dst = mac;
    auto bytes = shared->encode();
    mgmt_trace_.record(loop_.now(), bytes);
    mgmt_port_.transmit(sim::Frame{std::move(bytes)});
  });
}

void Gateway::emit_to_upstream(pkt::DecodedFrame frame) {
  frame.eth.src = upstream_arp_.mac();
  frame.eth.vlan.reset();
  const util::Ipv4Addr dst = frame.ip ? frame.ip->dst : util::Ipv4Addr();
  auto shared = std::make_shared<pkt::DecodedFrame>(std::move(frame));
  upstream_arp_.resolve(dst, [this, shared](util::MacAddr mac) {
    shared->eth.dst = mac;
    transmit_upstream(shared->encode());
  });
}

void Gateway::emit_auto(pkt::DecodedFrame frame) {
  if (!frame.ip) return;
  const util::Ipv4Addr dst = frame.ip->dst;
  if (auto* subfarm = subfarm_for_internal(dst)) {
    const InmateBinding* binding = subfarm->inmates().by_internal(dst);
    if (!binding) {
      GQ_DEBUG(kLog, "no inmate binding for %s, dropping",
               dst.str().c_str());
      return;
    }
    emit_to_inmate(binding->vlan, binding->mac, std::move(frame));
    return;
  }
  if (config_.mgmt_net.contains(dst)) {
    emit_to_mgmt(std::move(frame));
    return;
  }
  emit_to_upstream(std::move(frame));
}

// --- Ingress ----------------------------------------------------------------

void Gateway::on_upstream_frame(sim::Frame raw) {
  upstream_trace_.record(loop_.now(), raw.bytes);
  if (fast_path_) {
    if (const auto dst = pkt::ipv4_dst_of(raw.bytes)) {
      if (auto* subfarm = subfarm_for_global(*dst)) {
        if (subfarm->fast_from_server(raw.bytes)) return;
      }
    }
  }
  auto frame = pkt::decode_frame(raw.bytes);
  if (!frame) return;
  if (frame->arp) {
    upstream_arp_.handle(*frame->arp);
    return;
  }
  if (!frame->ip) return;
  if (auto* subfarm = subfarm_for_global(frame->ip->dst)) {
    subfarm->from_upstream(std::move(*frame));
    return;
  }
  // Return traffic for control-infrastructure hosts (banner grabbing,
  // blacklist lookups) routes straight onto the management network.
  if (config_.mgmt_net.contains(frame->ip->dst)) {
    emit_to_mgmt(std::move(*frame));
  }
}

void Gateway::on_inmate_frame(sim::Frame raw) {
  const auto vid = pkt::vlan_vid_of(raw.bytes);
  if (!vid) return;  // Untagged frames: not ours.
  const std::uint16_t vlan = *vid;
  auto* subfarm = subfarm_for_vlan(vlan);
  if (!subfarm) return;
  // Archive the raw tagged frame exactly as received — this tap is the
  // deterministic-replay source, so it must capture everything that can
  // affect gateway state (DHCP/ARP boot chatter included).
  inmate_rx_trace_.record(loop_.now(), raw.bytes);
  if (!vlan_taps_.empty()) {
    auto it = vlan_taps_.find(vlan);
    if (it != vlan_taps_.end()) it->second->record(loop_.now(), raw.bytes);
  }
  // Normalize to untagged in place (capacity retained, so an eventual
  // same-buffer re-tag on egress cannot reallocate), then try the
  // zero-copy fast path before paying for a full decode.
  pkt::strip_vlan_tag(raw.bytes);
  if (fast_path_ && subfarm->fast_from_inmate(vlan, raw.bytes)) return;
  auto frame = pkt::decode_frame(raw.bytes);
  if (!frame) return;
  subfarm->trace().record(loop_.now(), frame->encode(), vlan);

  if (frame->arp) {
    const auto& arp = *frame->arp;
    // Local proxy ARP: the gateway answers for its own internal address
    // and for any other internal address (inmates are L2-isolated per
    // VLAN, so even inmate-to-inmate traffic — e.g. honeyfarm redirects —
    // must route through the gateway's containment path).
    const bool proxied =
        arp.target_ip == subfarm->inmates().gateway_internal() ||
        (subfarm->config().internal_net.contains(arp.target_ip) &&
         arp.target_ip != arp.sender_ip);
    if (arp.op == pkt::ArpMessage::Op::kRequest && proxied) {
      pkt::DecodedFrame reply;
      reply.eth.src = inmate_leg_mac_;
      reply.eth.dst = arp.sender_mac;
      reply.eth.vlan = vlan;
      reply.eth.ethertype = pkt::kEtherTypeArp;
      reply.arp = pkt::ArpMessage{pkt::ArpMessage::Op::kReply,
                                  inmate_leg_mac_, arp.target_ip,
                                  arp.sender_mac, arp.sender_ip};
      inmate_port_.transmit(sim::Frame{reply.encode()});
    }
    return;
  }
  if (!frame->ip) return;

  // In-path DHCP responder: the paper's gateway assigns internal
  // addresses triggered by boot-time chatter (§5.3).
  if (frame->udp && frame->udp->dst_port == 67) {
    auto request = svc::DhcpMessage::parse(frame->udp->payload);
    if (!request) return;
    if (auto reply = subfarm->inmates().handle_dhcp(vlan, *request)) {
      if (const InmateBinding* binding = subfarm->inmates().by_vlan(vlan)) {
        obs::FarmEvent event;
        event.kind = obs::FarmEvent::Kind::kDhcpBind;
        event.time = loop_.now();
        event.subfarm = subfarm->config().name;
        event.vlan = vlan;
        event.inmate_internal = binding->internal_addr;
        event.inmate_global = binding->global_addr;
        telemetry_->publish(event);
      }
      pkt::DecodedFrame out;
      out.eth.ethertype = pkt::kEtherTypeIpv4;
      out.eth.src = inmate_leg_mac_;
      out.eth.dst = util::MacAddr::broadcast();
      out.ip = pkt::Ipv4Packet{};
      out.ip->src = subfarm->inmates().gateway_internal();
      out.ip->dst = util::Ipv4Addr(255, 255, 255, 255);
      out.udp = pkt::UdpDatagram{67, 68, reply->encode()};
      subfarm->trace().record(loop_.now(), out.encode(), vlan);
      out.eth.vlan = vlan;
      inmate_port_.transmit(sim::Frame{out.encode()});
    }
    return;
  }

  subfarm->from_inmate(vlan, std::move(*frame));
}

void Gateway::on_mgmt_frame(sim::Frame raw) {
  mgmt_trace_.record(loop_.now(), raw.bytes);
  if (fast_path_) {
    if (const auto dst = pkt::ipv4_dst_of(raw.bytes)) {
      // Nonce legs terminate on the gateway's own address: slow path.
      if (*dst != config_.mgmt_addr) {
        if (auto* subfarm = subfarm_for_internal(*dst)) {
          if (subfarm->fast_from_server(raw.bytes)) return;
        }
      }
    }
  }
  auto frame = pkt::decode_frame(raw.bytes);
  if (!frame) return;
  if (frame->arp) {
    mgmt_arp_.handle(*frame->arp);
    return;
  }
  if (!frame->ip) return;

  // Policy-table syncs (shim wire v4) arrive as UDP datagrams on the
  // gateway's own management address. The pushing containment server's
  // source address selects which subfarm routers install the table: any
  // router that lists it as its (or a cluster member's) CS.
  if (frame->ip->dst == config_.mgmt_addr && frame->udp &&
      frame->udp->dst_port == shim::kTableSyncPort) {
    const auto sync = shim::TableSync::parse(frame->udp->payload);
    if (!sync) {
      GQ_WARN(kLog, "malformed policy-table sync from %s dropped",
              frame->ip->src.str().c_str());
      return;
    }
    const util::Ipv4Addr cs_addr = frame->ip->src;
    for (auto& subfarm : subfarms_) {
      const auto& cfg = subfarm->config();
      bool owned = cfg.containment_server.addr == cs_addr;
      for (const auto& extra : cfg.extra_containment_servers)
        owned = owned || extra.addr == cs_addr;
      if (owned) subfarm->install_policy_table(*sync);
    }
    return;
  }

  // Containment-server nonce legs terminate on the gateway's own
  // management address.
  if (frame->ip->dst == config_.mgmt_addr && frame->tcp) {
    const std::uint16_t port = frame->tcp->dst_port;
    if (auto it = nonce_owners_.find(port); it != nonce_owners_.end()) {
      it->second->on_nonce_frame(port, std::move(*frame));
      return;
    }
    return;
  }
  if (auto* subfarm = subfarm_for_internal(frame->ip->dst)) {
    subfarm->from_mgmt(std::move(*frame));
    return;
  }
  // Outbound traffic from trusted control-infrastructure hosts (e.g. the
  // banner-grabbing SMTP sink dialing the real target) goes upstream.
  if (!config_.mgmt_net.contains(frame->ip->dst)) {
    emit_to_upstream(std::move(*frame));
  }
}

}  // namespace gq::gw
