#include "gateway/safety.h"

#include "util/log.h"

namespace gq::gw {

bool SafetyFilter::admit(util::TimePoint now, std::uint16_t vlan,
                         util::Ipv4Addr dst) {
  auto inmate_it =
      per_inmate_.try_emplace(vlan, util::SlidingWindowCounter(window_))
          .first;
  auto dest_it =
      per_dest_.try_emplace(dst, util::SlidingWindowCounter(window_)).first;
  if (inmate_it->second.count(now) >= max_per_inmate_ ||
      dest_it->second.count(now) >= max_per_dest_) {
    ++rejected_;
    GQ_DEBUG("gw.safety", "rejecting flow vlan=%u dst=%s", vlan,
             dst.str().c_str());
    return false;
  }
  inmate_it->second.record(now);
  dest_it->second.record(now);
  return true;
}

}  // namespace gq::gw
