#include "gateway/inmate_table.h"

#include "util/log.h"

namespace gq::gw {

namespace {
constexpr const char* kLog = "gw.inmates";
}

InmateTable::InmateTable(util::Ipv4Net internal_net,
                         util::Ipv4Net external_net,
                         util::Ipv4Addr gateway_internal, util::Ipv4Addr dns)
    : external_net_(external_net),
      gateway_internal_(gateway_internal),
      pool_(svc::DhcpLeaseConfig{internal_net, gateway_internal, dns,
                                 gateway_internal},
            /*first=*/10,
            /*last=*/static_cast<std::uint32_t>(internal_net.size() - 10)) {}

std::optional<svc::DhcpMessage> InmateTable::handle_dhcp(
    std::uint16_t vlan, const svc::DhcpMessage& msg) {
  auto reply = pool_.handle(msg);
  if (!reply) return std::nullopt;
  if (reply->type == svc::DhcpType::kAck) {
    InmateBinding& binding = by_vlan_[vlan];
    binding.vlan = vlan;
    binding.mac = msg.client_mac;
    binding.internal_addr = reply->yiaddr;
    if (binding.global_addr.is_unspecified()) {
      // A VLAN that was released and re-binds (a recycled detonation
      // slot) keeps its previous global address: the mapping stays a
      // pure function of binding order, so a replayed run NATs
      // identically whether or not the release happened in between.
      if (auto retired = retired_globals_.find(vlan);
          retired != retired_globals_.end()) {
        binding.global_addr = retired->second;
      } else {
        binding.global_addr = external_net_.host(next_global_index_++);
      }
    }
    by_internal_[binding.internal_addr] = vlan;
    by_global_[binding.global_addr] = vlan;
    GQ_INFO(kLog, "vlan %u bound: %s (global %s, mac %s)", vlan,
            binding.internal_addr.str().c_str(),
            binding.global_addr.str().c_str(), binding.mac.str().c_str());
  }
  return reply;
}

const InmateBinding* InmateTable::by_vlan(std::uint16_t vlan) const {
  auto it = by_vlan_.find(vlan);
  return it == by_vlan_.end() ? nullptr : &it->second;
}

const InmateBinding* InmateTable::by_internal(util::Ipv4Addr addr) const {
  auto it = by_internal_.find(addr);
  return it == by_internal_.end() ? nullptr : by_vlan(it->second);
}

const InmateBinding* InmateTable::by_global(util::Ipv4Addr addr) const {
  auto it = by_global_.find(addr);
  return it == by_global_.end() ? nullptr : by_vlan(it->second);
}

void InmateTable::release(std::uint16_t vlan) {
  auto it = by_vlan_.find(vlan);
  if (it == by_vlan_.end()) return;
  retired_globals_[vlan] = it->second.global_addr;
  pool_.release(it->second.mac);
  by_internal_.erase(it->second.internal_addr);
  by_global_.erase(it->second.global_addr);
  by_vlan_.erase(it);
}

}  // namespace gq::gw
