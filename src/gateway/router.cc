#include "gateway/router.h"

#include <algorithm>

#include "gateway/gateway.h"
#include "packet/frame_view.h"
#include "util/log.h"

namespace gq::gw {

namespace {

constexpr const char* kLog = "gw.router";

// Sequence comparison helpers (mod-2^32).
bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
bool seq_le(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}

// LIMIT rate from the response shim's typed parameter block, with the
// conservative 8 KB/s default when the containment server sent none.
double limit_rate_of(const shim::ResponseShim& shim) {
  if (shim.limit_bytes_per_sec && *shim.limit_bytes_per_sec > 0)
    return static_cast<double>(*shim.limit_bytes_per_sec);
  return 8192.0;
}

}  // namespace

obs::FarmEvent to_farm_event(const FlowEvent& event) {
  obs::FarmEvent out;
  switch (event.kind) {
    case FlowEvent::Kind::kOpen:
      out.kind = obs::FarmEvent::Kind::kFlowOpen;
      break;
    case FlowEvent::Kind::kVerdict:
      out.kind = obs::FarmEvent::Kind::kFlowVerdict;
      break;
    case FlowEvent::Kind::kClose:
      out.kind = obs::FarmEvent::Kind::kFlowClose;
      break;
    case FlowEvent::Kind::kSafetyReject:
      out.kind = obs::FarmEvent::Kind::kSafetyReject;
      break;
    case FlowEvent::Kind::kDhcpBind:
      out.kind = obs::FarmEvent::Kind::kDhcpBind;
      break;
  }
  out.time = event.time;
  out.subfarm = event.subfarm;
  out.vlan = event.vlan;
  out.proto = event.proto;
  out.orig_dst = event.orig_dst;
  out.verdict = event.verdict;
  out.policy_name = event.policy_name;
  out.annotation = event.annotation;
  out.limit_bytes_per_sec = event.limit_bytes_per_sec;
  out.bytes_to_server = event.bytes_to_server;
  out.bytes_to_inmate = event.bytes_to_inmate;
  out.verdict_source = event.verdict_source;
  out.verdict_cached = event.verdict_cached;
  return out;
}

std::optional<FlowEvent> to_flow_event(const obs::FarmEvent& event) {
  FlowEvent out;
  switch (event.kind) {
    case obs::FarmEvent::Kind::kFlowOpen:
      out.kind = FlowEvent::Kind::kOpen;
      break;
    case obs::FarmEvent::Kind::kFlowVerdict:
      out.kind = FlowEvent::Kind::kVerdict;
      break;
    case obs::FarmEvent::Kind::kFlowClose:
      out.kind = FlowEvent::Kind::kClose;
      break;
    case obs::FarmEvent::Kind::kSafetyReject:
      out.kind = FlowEvent::Kind::kSafetyReject;
      break;
    case obs::FarmEvent::Kind::kDhcpBind:
      out.kind = FlowEvent::Kind::kDhcpBind;
      break;
    default:
      return std::nullopt;  // CS/sink event: no FlowEvent shape.
  }
  out.time = event.time;
  out.subfarm = event.subfarm;
  out.vlan = event.vlan;
  out.proto = event.proto;
  out.orig_dst = event.orig_dst;
  out.verdict = event.verdict;
  out.policy_name = event.policy_name;
  out.annotation = event.annotation;
  out.limit_bytes_per_sec = event.limit_bytes_per_sec;
  out.bytes_to_server = event.bytes_to_server;
  out.bytes_to_inmate = event.bytes_to_inmate;
  out.verdict_source = event.verdict_source;
  out.verdict_cached = event.verdict_cached;
  return out;
}

const char* flow_phase_name(FlowPhase p) {
  switch (p) {
    case FlowPhase::kAwaitVerdict: return "AWAIT_VERDICT";
    case FlowPhase::kSplicing: return "SPLICING";
    case FlowPhase::kEstablished: return "ESTABLISHED";
    case FlowPhase::kDenied: return "DENIED";
    case FlowPhase::kClosed: return "CLOSED";
  }
  return "?";
}

SubfarmRouter::SubfarmRouter(Gateway& gateway, SubfarmConfig config)
    : gateway_(gateway),
      config_(std::move(config)),
      inmates_(config_.internal_net, config_.external_net,
               config_.internal_net.host(
                   static_cast<std::uint32_t>(config_.internal_net.size() - 2)),
               config_.dns_service),
      safety_(config_.max_conns_per_inmate, config_.max_conns_per_dest,
              config_.safety_window),
      trace_(config_.name, gateway.config().trace_archive,
             &gateway.telemetry()),
      rng_(0x5afef00d ^ config_.vlan_first) {
  // Resolve this subfarm's metric handles once; the per-frame path then
  // updates them through plain pointers.
  auto& metrics = gateway_.telemetry().metrics();
  const std::string prefix = "gw." + config_.name + ".";
  flows_created_ctr_ = &metrics.counter(prefix + "flows_created");
  frames_from_inmates_ctr_ = &metrics.counter(prefix + "frames_from_inmates");
  safety_admits_ctr_ = &metrics.counter(prefix + "safety.admits");
  safety_rejects_ctr_ = &metrics.counter(prefix + "safety.rejects");
  active_flows_gauge_ = &metrics.gauge(prefix + "active_flows");
  decision_latency_hist_ =
      &metrics.histogram(prefix + "decision_latency_us");
  shim_rtt_hist_ = &metrics.histogram(prefix + "shim_rtt_us");
  shim_retries_ctr_ = &metrics.counter(prefix + "shim_retries");
  verdict_timeouts_ctr_ = &metrics.counter(prefix + "verdict_timeouts");
  fail_closed_ctr_ = &metrics.counter(prefix + "fail_closed");
  pending_verdicts_gauge_ = &metrics.gauge(prefix + "pending_verdicts");
  cache_hit_ctr_ = &metrics.counter(prefix + "cache_hit");
  cache_miss_ctr_ = &metrics.counter(prefix + "cache_miss");
  cache_insert_ctr_ = &metrics.counter(prefix + "cache_insert");
  cache_evict_ctr_ = &metrics.counter(prefix + "cache_evict");
  cache_expire_ctr_ = &metrics.counter(prefix + "cache_expire");
  cache_flush_ctr_ = &metrics.counter(prefix + "cache_flush");
  cache_bypass_ctr_ = &metrics.counter(prefix + "cache_bypass");
  decision_latency_cached_hist_ =
      &metrics.histogram(prefix + "decision_latency_cached_us");
  decision_latency_uncached_hist_ =
      &metrics.histogram(prefix + "decision_latency_uncached_us");
  table_hit_ctr_ = &metrics.counter(prefix + "table_hit");
  table_fallback_ctr_ = &metrics.counter(prefix + "table_fallback");
  table_sync_ctr_ = &metrics.counter(prefix + "table_sync");
  table_stale_ctr_ = &metrics.counter(prefix + "table_stale");
  decision_latency_table_hist_ =
      &metrics.histogram(prefix + "decision_latency_table_us");
  // Per-verdict counters are resolved here, once, rather than by
  // rebuilding "gw.<subfarm>.verdicts.<name>" for every verdict applied.
  for (std::uint32_t v = 1; v <= verdict_ctrs_.size(); ++v) {
    verdict_ctrs_[v - 1] = &metrics.counter(
        prefix + "verdicts." +
        shim::verdict_name(static_cast<shim::Verdict>(v)));
  }
  verdict_cache_ = VerdictCache(config_.verdict_cache_capacity);
  // Periodic flow garbage collection.
  gateway_.loop().schedule_in(util::seconds(5), [this] { gc_sweep(); });
}

obs::Counter& SubfarmRouter::verdict_counter(shim::Verdict verdict) {
  return *verdict_ctrs_[static_cast<std::uint32_t>(verdict) - 1];
}

SubfarmRouter::~SubfarmRouter() = default;

void SubfarmRouter::set_fail_closed(shim::Verdict verdict,
                                    util::Duration deadline,
                                    util::Endpoint reflect_target) {
  config_.fail_closed_verdict = verdict;
  if (deadline.usec > 0) config_.verdict_deadline = deadline;
  config_.fail_closed_reflect_target = reflect_target;
}

void SubfarmRouter::on_policy_epoch(std::uint64_t epoch) {
  if (epoch <= cache_epoch_) return;
  cache_epoch_ = epoch;
  const std::size_t dropped = verdict_cache_.flush();
  if (dropped > 0) cache_flush_ctr_->inc(dropped);
  GQ_INFO(kLog, "[%s] policy epoch %llu: verdict cache flushed (%zu)",
          config_.name.c_str(),
          static_cast<unsigned long long>(epoch), dropped);
}

void SubfarmRouter::flush_cache_vlan(std::uint16_t vlan) {
  const std::size_t dropped = verdict_cache_.flush_vlan(vlan);
  if (dropped > 0) {
    cache_flush_ctr_->inc(dropped);
    GQ_INFO(kLog, "[%s] vlan %u revert/terminate: %zu cached verdicts dropped",
            config_.name.c_str(), vlan, dropped);
  }
}

void SubfarmRouter::set_verdict_cache_enabled(bool enabled) {
  if (config_.verdict_cache_enabled && !enabled) {
    const std::size_t dropped = verdict_cache_.flush();
    if (dropped > 0) cache_flush_ctr_->inc(dropped);
  }
  config_.verdict_cache_enabled = enabled;
}

bool SubfarmRouter::install_policy_table(const shim::TableSync& sync) {
  // The router's epoch high-water mark covers both local datapaths: a
  // sync older than anything we have seen (a shim response, a previous
  // sync, a reload notification) describes a superseded policy set.
  if (sync.epoch < cache_epoch_ || !policy_table_.install(sync)) {
    table_stale_ctr_->inc();
    GQ_WARN(kLog, "[%s] stale policy table rejected (epoch %llu < %llu)",
            config_.name.c_str(),
            static_cast<unsigned long long>(sync.epoch),
            static_cast<unsigned long long>(
                std::max(cache_epoch_, policy_table_.epoch())));
    return false;
  }
  // A newer epoch flushes the verdict cache atomically with the table
  // swap — one invalidation point for both local datapaths.
  on_policy_epoch(sync.epoch);
  table_sync_ctr_->inc();
  GQ_INFO(kLog, "[%s] policy table installed: epoch %llu, %zu rules",
          config_.name.c_str(),
          static_cast<unsigned long long>(sync.epoch),
          policy_table_.size());
  return true;
}

void SubfarmRouter::set_policy_table_enabled(bool enabled) {
  config_.policy_table_enabled = enabled;
}

bool SubfarmRouter::is_internal(util::Ipv4Addr addr) const {
  return config_.internal_net.contains(addr);
}

bool SubfarmRouter::is_infra(util::Ipv4Addr addr) const {
  // Only addresses explicitly placed in the inmates' restricted
  // broadcast domain bypass containment; the DHCP-advertised resolver
  // address is *not* automatically exempt (an experiment may well want
  // DNS contained, e.g. for DGA studies).
  return config_.infra_services.count(addr) > 0;
}

void SubfarmRouter::report(const Flow& flow, FlowEvent::Kind kind) {
  FlowEvent event;
  event.kind = kind;
  event.time = gateway_.loop().now();
  event.subfarm = config_.name;
  event.vlan = flow.vlan;
  event.proto = flow.proto;
  event.orig_dst = flow.orig_dst;
  event.verdict = flow.verdict;
  event.policy_name = flow.policy_name;
  event.annotation = flow.annotation;
  event.limit_bytes_per_sec = flow.limit_bytes_per_sec;
  event.bytes_to_server = flow.bytes_to_server;
  event.bytes_to_inmate = flow.bytes_to_inmate;
  event.verdict_source = flow.verdict_source;
  event.verdict_cached = flow.verdict_from_cache;
  gateway_.telemetry().publish(to_farm_event(event));
}

void SubfarmRouter::emit_tcp(util::Endpoint src, util::Endpoint dst,
                             std::uint8_t flags, std::uint32_t seq,
                             std::uint32_t ack,
                             std::vector<std::uint8_t> payload) {
  pkt::DecodedFrame frame;
  frame.eth.ethertype = pkt::kEtherTypeIpv4;
  frame.ip = pkt::Ipv4Packet{};
  frame.ip->src = src.addr;
  frame.ip->dst = dst.addr;
  frame.ip->ttl = 63;
  frame.tcp = pkt::TcpSegment{};
  frame.tcp->src_port = src.port;
  frame.tcp->dst_port = dst.port;
  frame.tcp->flags = flags;
  frame.tcp->seq = seq;
  frame.tcp->ack = ack;
  frame.tcp->payload = std::move(payload);
  gateway_.emit_auto(std::move(frame));
}

void SubfarmRouter::emit_udp(util::Endpoint src, util::Endpoint dst,
                             std::vector<std::uint8_t> payload) {
  pkt::DecodedFrame frame;
  frame.eth.ethertype = pkt::kEtherTypeIpv4;
  frame.ip = pkt::Ipv4Packet{};
  frame.ip->src = src.addr;
  frame.ip->dst = dst.addr;
  frame.ip->ttl = 63;
  frame.udp = pkt::UdpDatagram{src.port, dst.port, std::move(payload)};
  gateway_.emit_auto(std::move(frame));
}

util::Endpoint SubfarmRouter::nat_source_for(const Flow& flow,
                                             util::Endpoint server) const {
  // Internal destinations (sinks on the management network, redirects to
  // other inmates) see the inmate's internal address — useful for
  // per-inmate attribution in sink logs. External targets see the NATed
  // global address.
  if (is_internal(server.addr) ||
      gateway_.config().mgmt_net.contains(server.addr)) {
    return flow.inmate_ep;
  }
  return {flow.inmate_global, flow.inmate_ep.port};
}

util::Endpoint SubfarmRouter::cs_for_vlan(std::uint16_t vlan) const {
  if (config_.extra_containment_servers.empty())
    return config_.containment_server;
  // Deterministic per-inmate selection over the cluster.
  const std::size_t cluster_size =
      1 + config_.extra_containment_servers.size();
  const std::size_t index =
      static_cast<std::size_t>(vlan - config_.vlan_first) % cluster_size;
  if (index == 0) return config_.containment_server;
  return config_.extra_containment_servers[index - 1];
}

// --- Ingress: inmate side ---------------------------------------------------

void SubfarmRouter::from_inmate(std::uint16_t vlan, pkt::DecodedFrame frame) {
  frames_from_inmates_ctr_->inc();
  if (!frame.ip) return;

  // Infrastructure services bypass containment (restricted broadcast
  // domain, §5.3).
  if (is_infra(frame.ip->dst)) {
    gateway_.emit_auto(std::move(frame));
    return;
  }

  // This inmate may be the server side of a redirected flow (worm
  // honeyfarm reflection) — check before anything else.
  if (handle_server_side(frame)) return;

  // Return path of an inbound (outside-initiated) flow: NAT out.
  if (auto key = pkt::flow_key_of(frame)) {
    if (auto it = inbound_flows_.find(*key); it != inbound_flows_.end()) {
      it->second = gateway_.loop().now();
      const InmateBinding* binding = inmates_.by_vlan(vlan);
      if (binding) {
        frame.ip->src = binding->global_addr;
        gateway_.emit_to_upstream(std::move(frame));
      }
      return;
    }
  }

  inmate_ip(vlan, frame);
}

// --- Zero-copy fast path -----------------------------------------------------
//
// Both entry points mirror the slow path's dispatch order exactly, and
// every early return of `false` happens before the buffer or any flow
// state is touched, so a decline always falls back cleanly. The rewrite
// itself is in-place with incrementally maintained checksums and is
// byte-identical to the decode/mutate/encode slow path for canonical
// frames (the only kind FrameView::parse accepts).

bool SubfarmRouter::fast_from_inmate(std::uint16_t /*vlan*/,
                                     std::vector<std::uint8_t>& bytes) {
  auto view = pkt::FrameView::parse(bytes);
  if (!view) return false;
  // Infrastructure-service bypass and everything the slow path matches
  // before the flow table — reflected server-side traffic, nonce relay
  // return legs, inbound NAT flows — stay on the slow path.
  if (is_infra(view->ip_dst())) return false;
  const pkt::FlowKey key = view->flow_key();
  if (nonce_by_target_key_.count(key) || server_index_.count(key) ||
      inbound_flows_.count(key)) {
    return false;
  }
  const auto it = flows_.find(key);
  if (it == flows_.end()) return false;
  Flow& flow = *it->second;
  if (flow.phase != FlowPhase::kEstablished || flow.server_is_cs)
    return false;
  const bool tcp = view->is_tcp();
  if (tcp && (view->tcp_syn() || view->tcp_rst())) return false;

  // Resolve the egress leg before touching anything so a miss (cold ARP
  // cache, unbound inmate) declines with no side effects.
  const util::Endpoint nat_src = nat_source_for(flow, flow.server_ep);
  const auto egress = gateway_.resolve_raw_egress(flow.server_ep.addr);
  if (!egress) return false;

  // Committed. Ingress trace first (pre-rewrite, like the slow path).
  trace_.record(gateway_.loop().now(), bytes, flow.vlan);
  frames_from_inmates_ctr_->inc();
  flow.last_activity = gateway_.loop().now();
  const std::uint32_t payload_len = view->payload_len();
  if (tcp) {
    const bool fin = view->tcp_fin();
    if (payload_len > 0 || fin) {
      const std::uint32_t end =
          view->tcp_seq() + payload_len + (fin ? 1 : 0);
      if (seq_lt(flow.inmate_snd_nxt, end)) flow.inmate_snd_nxt = end;
    }
    if (flow.limiter && payload_len > 0 &&
        !flow.limiter->try_consume(flow.last_activity,
                                   static_cast<double>(payload_len))) {
      return true;  // Dropped; the inmate's TCP retransmits, throttled.
    }
    if (payload_len > 0) flow.bytes_to_server += payload_len;
    if (fin) flow.fin_inmate = true;
    view->set_ip_src(nat_src.addr);
    view->set_src_port(nat_src.port);
    view->set_ip_dst(flow.server_ep.addr);
    view->set_dst_port(flow.server_ep.port);
    view->set_tcp_seq(view->tcp_seq() + flow.d_out);
    if (view->tcp_has_ack()) view->set_tcp_ack(view->tcp_ack() - flow.d_in);
  } else {
    if (flow.limiter &&
        !flow.limiter->try_consume(flow.last_activity,
                                   static_cast<double>(payload_len))) {
      return true;
    }
    flow.bytes_to_server += payload_len;
    view->set_ip_src(nat_src.addr);
    view->set_src_port(nat_src.port);
    view->set_ip_dst(flow.server_ep.addr);
    view->set_dst_port(flow.server_ep.port);
  }
  gateway_.emit_raw(*egress, std::move(bytes), *view);
  return true;
}

bool SubfarmRouter::fast_from_server(std::vector<std::uint8_t>& bytes) {
  auto view = pkt::FrameView::parse(bytes);
  if (!view) return false;
  const pkt::FlowKey key = view->flow_key();
  if (nonce_by_target_key_.count(key)) return false;
  const auto it = server_index_.find(key);
  if (it == server_index_.end()) return false;
  Flow& flow = *it->second;
  if (flow.phase != FlowPhase::kEstablished || flow.server_is_cs)
    return false;
  const bool tcp = view->is_tcp();
  if (tcp && (view->tcp_syn() || view->tcp_rst())) return false;
  const auto egress = gateway_.resolve_raw_egress(flow.inmate_ep.addr);
  if (!egress) return false;

  flow.last_activity = gateway_.loop().now();
  const std::uint32_t payload_len = view->payload_len();
  if (tcp) {
    // Advance the splice replay window with the target's acks (d_out is
    // zero for spliced flows, so ack values live directly in inmate
    // sequence space).
    if (view->tcp_has_ack() && seq_lt(flow.replay_acked, view->tcp_ack())) {
      flow.replay_acked = view->tcp_ack();
      for (auto rit = flow.replay_buf.begin();
           rit != flow.replay_buf.end();) {
        const std::uint32_t end =
            rit->first + static_cast<std::uint32_t>(rit->second.size());
        if (seq_le(end, flow.replay_acked))
          rit = flow.replay_buf.erase(rit);
        else
          break;
      }
    }
    if (flow.limiter && payload_len > 0 &&
        !flow.limiter->try_consume(flow.last_activity,
                                   static_cast<double>(payload_len))) {
      return true;  // Dropped; the target's TCP retransmits, throttled.
    }
    if (payload_len > 0) {
      flow.bytes_to_inmate += payload_len;
      const std::uint32_t end = view->tcp_seq() + payload_len;
      if (seq_lt(flow.server_rcv_next, end)) flow.server_rcv_next = end;
    }
    if (view->tcp_fin()) flow.fin_server = true;
    view->set_ip_src(flow.orig_dst.addr);
    view->set_src_port(flow.orig_dst.port);
    view->set_ip_dst(flow.inmate_ep.addr);
    view->set_dst_port(flow.inmate_ep.port);
    view->set_tcp_seq(view->tcp_seq() + flow.d_in);
    if (view->tcp_has_ack()) view->set_tcp_ack(view->tcp_ack() - flow.d_out);
  } else {
    flow.bytes_to_inmate += payload_len;
    view->set_ip_src(flow.orig_dst.addr);
    view->set_src_port(flow.orig_dst.port);
    view->set_ip_dst(flow.inmate_ep.addr);
    view->set_dst_port(flow.inmate_ep.port);
  }
  gateway_.emit_raw(*egress, std::move(bytes), *view);
  return true;
}

void SubfarmRouter::inmate_ip(std::uint16_t vlan, pkt::DecodedFrame& frame) {
  auto key = pkt::flow_key_of(frame);
  if (!key) return;  // ICMP and friends: default-deny.

  if (auto it = flows_.find(*key); it != flows_.end()) {
    auto flow = it->second;
    if (flow->proto == pkt::FlowProto::kTcp)
      relay_inmate_to_server(*flow, frame);
    else
      udp_from_inmate(*flow, frame);
    return;
  }

  const bool tcp_open =
      frame.tcp && frame.tcp->syn() && !frame.tcp->has_ack();
  if (tcp_open || frame.udp) {
    handle_new_inmate_flow(vlan, frame);
  }
  // Anything else (stray RST/FIN for an expired flow) is dropped.
}

void SubfarmRouter::handle_new_inmate_flow(std::uint16_t vlan,
                                           pkt::DecodedFrame& frame) {
  const InmateBinding* binding = inmates_.by_vlan(vlan);
  if (!binding) {
    GQ_DEBUG(kLog, "[%s] flow from unbound vlan %u dropped",
             config_.name.c_str(), vlan);
    return;
  }
  const auto now = gateway_.loop().now();
  auto key = *pkt::flow_key_of(frame);

  if (!safety_.admit(now, vlan, key.dst.addr)) {
    safety_rejects_ctr_->inc();
    Flow rejected;
    rejected.vlan = vlan;
    rejected.proto = key.proto;
    rejected.orig_dst = key.dst;
    rejected.policy_name = "SafetyFilter";
    report(rejected, FlowEvent::Kind::kSafetyReject);
    return;
  }
  safety_admits_ctr_->inc();

  // Compiled-policy-table probe (after the safety filter — the caps
  // apply to table-resolved flows too — but before the verdict cache:
  // the table covers first contacts the cache has never seen, and a
  // concrete rule is authoritative for the whole epoch). A hit resolves
  // the flow right here; a kFallback rule or a miss falls through.
  const shim::TableRule* table_rule =
      probe_policy_table(vlan, key.proto, key.dst);

  // Verdict-cache consult (after the safety filter: cached FORWARD /
  // LIMIT verdicts stay subject to the connection-rate caps). A live
  // entry resolves the flow right here — no redirect, no shim round
  // trip, no containment-server occupancy.
  std::optional<CachedVerdict> cached;
  if (!table_rule && config_.verdict_cache_enabled) {
    std::uint64_t expired = 0;
    if (const CachedVerdict* entry =
            verdict_cache_.lookup(key.proto, vlan, key.src, key.dst, now,
                                  &expired)) {
      cached = *entry;
    }
    if (expired > 0) cache_expire_ctr_->inc(expired);
    if (cached)
      cache_hit_ctr_->inc();
    else
      cache_miss_ctr_->inc();
  }

  auto flow = std::make_shared<Flow>();
  flow->proto = key.proto;
  flow->vlan = vlan;
  flow->inmate_ep = key.src;
  flow->orig_dst = key.dst;
  flow->inmate_global = binding->global_addr;
  flow->cs_ep = cs_for_vlan(vlan);
  flow->server_ep = flow->cs_ep;
  flow->server_is_cs = true;
  flow->created = now;
  flow->last_activity = now;
  flows_[key] = flow;
  flows_created_ctr_->inc();
  active_flows_gauge_->set(static_cast<std::int64_t>(flows_.size()));

  if (table_rule) {
    serve_table_verdict(flow, *table_rule, frame);
    return;
  }
  if (cached) {
    serve_cached_verdict(flow, *cached, frame);
    return;
  }

  // All new flows funnel into the CS's single listening endpoint, so two
  // concurrent flows from the same inmate source port (to different
  // destinations) would collide there — remap the source port until the
  // CS-leg key is unique.
  flow->cs_src = flow->inmate_ep;
  while (server_index_.count(
      {key.proto, flow->server_ep, flow->cs_src})) {
    flow->cs_src.port =
        (flow->cs_src.port >= 65535) ? 1024 : flow->cs_src.port + 1;
  }
  // Frames from the CS for this flow arrive as src=CS, dst=cs_src.
  server_index_[{key.proto, flow->server_ep, flow->cs_src}] = flow;

  // Containment must not hinge on the CS answering: every flow joins the
  // pending-verdict queue with a deadline after which the router
  // enforces the fail-closed verdict locally.
  pending_verdicts_gauge_->add(1);
  arm_verdict_deadline(flow);

  if (flow->proto == pkt::FlowProto::kTcp) {
    flow->inmate_isn = frame.tcp->seq;
    flow->inmate_snd_nxt = frame.tcp->seq + 1;
    flow->nonce_port = gateway_.allocate_nonce(this);
    // Redirect the SYN to the containment server (Figure 5, step 1).
    frame.tcp->src_port = flow->cs_src.port;
    frame.ip->dst = flow->server_ep.addr;
    frame.tcp->dst_port = flow->server_ep.port;
    gateway_.emit_to_mgmt(std::move(frame));
  } else {
    udp_from_inmate(*flow, frame);
  }
}

void SubfarmRouter::serve_cached_verdict(const FlowPtr& flow,
                                         const CachedVerdict& entry,
                                         pkt::DecodedFrame& frame) {
  Flow& f = *flow;
  f.verdict_source = shim::VerdictSource::kCached;
  f.verdict_from_cache = true;
  f.cs_src = f.inmate_ep;  // No CS leg: never remapped, never indexed.
  // Symmetric with the miss path: the flow joins the pending-verdict
  // gauge so verdict_resolved()'s decrement balances, but no deadline
  // is armed — the verdict is already in hand.
  pending_verdicts_gauge_->add(1);

  shim::ResponseShim synthesized;
  synthesized.orig = f.inmate_ep;
  synthesized.resp = entry.resp;
  synthesized.verdict = entry.verdict;
  synthesized.policy_name = entry.policy_name;
  synthesized.annotation = entry.annotation;
  synthesized.limit_bytes_per_sec = entry.limit_bytes_per_sec;
  synthesized.policy_epoch = cache_epoch_;

  if (f.proto == pkt::FlowProto::kTcp) {
    f.inmate_isn = frame.tcp->seq;
    f.inmate_snd_nxt = frame.tcp->seq + 1;
    // The router plays the server's side of the handshake with a
    // synthetic ISN; the splice machinery then treats it exactly like a
    // CS ISN (the inmate believes the server's ISN is this one, and
    // d_in = cs_isn - server_isn maps the real target underneath it).
    f.cs_isn = static_cast<std::uint32_t>(rng_.next());
    f.cs_isn_known = true;
    f.cs_in_expected = f.cs_isn + 1;
    if (entry.verdict != shim::Verdict::kDrop) {
      emit_tcp(f.orig_dst, f.inmate_ep, pkt::kTcpSyn | pkt::kTcpAck,
               f.cs_isn, f.inmate_isn + 1, {});
    }
    apply_verdict(f, synthesized);
  } else {
    apply_udp_verdict(f, synthesized, {});
    // Deliver the datagram that opened the flow through the now-decided
    // flow state (forwarded, limited, redirected — or silently dropped).
    udp_from_inmate(f, frame);
  }
}

const shim::TableRule* SubfarmRouter::probe_policy_table(
    std::uint16_t vlan, pkt::FlowProto proto, util::Endpoint dst) {
  if (!config_.policy_table_enabled || policy_table_.empty()) return nullptr;
  // A table whose epoch lags the router's high-water mark was compiled
  // from a superseded policy set: never consult it. (A *newer* table
  // cannot exist — installs advance cache_epoch_ in lockstep.)
  if (policy_table_.epoch() != cache_epoch_) return nullptr;
  const std::uint8_t proto_code = proto == pkt::FlowProto::kTcp
                                      ? shim::TableRule::kProtoTcp
                                      : shim::TableRule::kProtoUdp;
  const shim::TableRule* rule = policy_table_.lookup(vlan, proto_code, dst);
  if (!rule) return nullptr;
  if (rule->action == shim::TableAction::kFallback) {
    // The policy pinned this match arm to the containment server
    // (REWRITE, side effects, state) — shim path, counted separately
    // from plain misses.
    table_fallback_ctr_->inc();
    return nullptr;
  }
  table_hit_ctr_->inc();
  return rule;
}

void SubfarmRouter::serve_table_verdict(const FlowPtr& flow,
                                        const shim::TableRule& rule,
                                        pkt::DecodedFrame& frame) {
  Flow& f = *flow;
  f.verdict_source = shim::VerdictSource::kTable;
  f.cs_src = f.inmate_ep;  // No CS leg: never remapped, never indexed.
  // Symmetric with serve_cached_verdict: join the pending-verdict gauge
  // so verdict_resolved()'s decrement balances; no deadline needed.
  pending_verdicts_gauge_->add(1);

  // Synthesize the response shim the containment server would have sent
  // for this match arm and run it through the normal verdict machinery —
  // enforcement, accounting, and reporting are identical to a CS-issued
  // verdict (the differential harness holds us to that).
  shim::ResponseShim synthesized;
  synthesized.orig = f.inmate_ep;
  synthesized.resp = f.orig_dst;
  synthesized.policy_name = rule.policy_name;
  synthesized.annotation = rule.annotation;
  synthesized.policy_epoch = cache_epoch_;
  switch (rule.action) {
    case shim::TableAction::kForward:
      synthesized.verdict = shim::Verdict::kForward;
      break;
    case shim::TableAction::kDrop:
      synthesized.verdict = shim::Verdict::kDrop;
      break;
    case shim::TableAction::kLimit:
      synthesized.verdict = shim::Verdict::kLimit;
      if (rule.limit_bytes_per_sec > 0) {
        synthesized.limit_bytes_per_sec =
            static_cast<std::int64_t>(rule.limit_bytes_per_sec);
      }
      break;
    case shim::TableAction::kRedirect:
      synthesized.verdict = shim::Verdict::kRedirect;
      synthesized.resp = rule.target;
      break;
    case shim::TableAction::kReflect:
      synthesized.verdict = shim::Verdict::kReflect;
      synthesized.resp = rule.target;
      break;
    case shim::TableAction::kFallback:
      return;  // Unreachable: probe_policy_table filters fallbacks.
  }

  if (f.proto == pkt::FlowProto::kTcp) {
    f.inmate_isn = frame.tcp->seq;
    f.inmate_snd_nxt = frame.tcp->seq + 1;
    // Play the server's side of the handshake with a synthetic ISN,
    // exactly like a cache hit (see serve_cached_verdict).
    f.cs_isn = static_cast<std::uint32_t>(rng_.next());
    f.cs_isn_known = true;
    f.cs_in_expected = f.cs_isn + 1;
    if (synthesized.verdict != shim::Verdict::kDrop) {
      emit_tcp(f.orig_dst, f.inmate_ep, pkt::kTcpSyn | pkt::kTcpAck,
               f.cs_isn, f.inmate_isn + 1, {});
    }
    apply_verdict(f, synthesized);
  } else {
    apply_udp_verdict(f, synthesized, {});
    udp_from_inmate(f, frame);
  }
}

// --- TCP: inmate -> server side ---------------------------------------------

void SubfarmRouter::relay_inmate_to_server(Flow& flow,
                                           pkt::DecodedFrame& frame) {
  auto& seg = *frame.tcp;
  flow.last_activity = gateway_.loop().now();
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(seg.payload.size());
  if (payload_len > 0 || seg.fin())
    flow.inmate_snd_nxt =
        std::max(flow.inmate_snd_nxt,
                 seg.seq + payload_len + (seg.fin() ? 1 : 0),
                 [](std::uint32_t a, std::uint32_t b) { return seq_lt(a, b); });

  switch (flow.phase) {
    case FlowPhase::kDenied:
    case FlowPhase::kClosed:
      return;

    case FlowPhase::kAwaitVerdict: {
      if (seg.rst()) {
        // Inmate aborted before the verdict: tear down the CS leg.
        emit_tcp(flow.cs_src, flow.server_ep, pkt::kTcpRst | pkt::kTcpAck,
                 seg.seq + flow.d_out, 0, {});
        close_flow(flow);
        return;
      }
      if (seg.syn()) {  // Retransmitted SYN.
        frame.ip->dst = flow.server_ep.addr;
        frame.tcp->dst_port = flow.server_ep.port;
        gateway_.emit_to_mgmt(std::move(frame));
        return;
      }
      // First non-SYN packet completes the handshake: inject the request
      // shim (Figure 5, step 2) before relaying anything else.
      if (!flow.req_shim_sent && seg.has_ack() && flow.cs_isn_known) {
        inject_request_shim(flow);
      }
      if (payload_len > 0) {
        flow.replay_buf[seg.seq].assign(seg.payload.begin(),
                                        seg.payload.end());
        flow.bytes_to_server += payload_len;
        emit_tcp(flow.cs_src, flow.server_ep,
                 pkt::kTcpAck | pkt::kTcpPsh, seg.seq + flow.d_out,
                 seg.ack - flow.d_in, seg.payload);
      } else if (seg.has_ack() && flow.req_shim_sent && !seg.fin()) {
        emit_tcp(flow.cs_src, flow.server_ep, pkt::kTcpAck,
                 seg.seq + flow.d_out, seg.ack - flow.d_in, {});
      }
      if (seg.fin()) {
        flow.inmate_fin_seen = true;
        flow.inmate_fin_seq = seg.seq + payload_len;
        emit_tcp(flow.cs_src, flow.server_ep, pkt::kTcpFin | pkt::kTcpAck,
                 flow.inmate_fin_seq + flow.d_out, seg.ack - flow.d_in, {});
      }
      return;
    }

    case FlowPhase::kSplicing: {
      if (seg.rst()) {
        close_flow(flow);
        return;
      }
      // Buffer for replay once the target leg is up. Counted here, like
      // the kAwaitVerdict buffer: the replay drain re-emits without
      // accounting.
      if (payload_len > 0) {
        flow.replay_buf[seg.seq].assign(seg.payload.begin(),
                                        seg.payload.end());
        flow.bytes_to_server += payload_len;
      }
      if (seg.fin()) {
        flow.inmate_fin_seen = true;
        flow.inmate_fin_seq = seg.seq + payload_len;
      }
      return;
    }

    case FlowPhase::kEstablished: {
      if (seg.rst()) {
        emit_tcp(nat_source_for(flow, flow.server_ep), flow.server_ep,
                 pkt::kTcpRst | pkt::kTcpAck, seg.seq + flow.d_out, 0, {});
        close_flow(flow);
        return;
      }
      // LIMIT enforcement on outbound payload.
      if (flow.limiter && payload_len > 0 &&
          !flow.limiter->try_consume(flow.last_activity,
                                     static_cast<double>(payload_len))) {
        return;  // Dropped; the inmate's TCP will retransmit, throttled.
      }
      if (payload_len > 0) flow.bytes_to_server += payload_len;
      if (seg.fin()) flow.fin_inmate = true;

      const util::Endpoint src = nat_source_for(flow, flow.server_ep);
      frame.ip->src = src.addr;
      frame.tcp->src_port = src.port;
      frame.ip->dst = flow.server_ep.addr;
      frame.tcp->dst_port = flow.server_ep.port;
      frame.tcp->seq = seg.seq + flow.d_out;
      if (seg.has_ack()) frame.tcp->ack = seg.ack - flow.d_in;
      gateway_.emit_auto(std::move(frame));
      return;
    }
  }
}

void SubfarmRouter::inject_request_shim(Flow& flow) {
  shim::RequestShim shim;
  shim.orig = flow.inmate_ep;
  shim.resp = flow.orig_dst;
  shim.vlan = flow.vlan;
  shim.nonce_port = flow.nonce_port;
  // The shim occupies inmate sequence space [isn+1, isn+1+24) on the CS
  // leg; all subsequent inmate bytes are bumped by 24 (Figure 5).
  emit_tcp(flow.cs_src, flow.server_ep, pkt::kTcpAck | pkt::kTcpPsh,
           flow.inmate_isn + 1, flow.cs_isn + 1, shim.encode());
  flow.req_shim_sent = true;
  flow.req_shim_sent_at = gateway_.loop().now();
  flow.req_shim_backoff = config_.shim_retry_initial;
  flow.d_out = shim::kRequestShimSize;

  // Gateway-side reliability for the injected segment: bounded
  // exponential backoff toward the CS.
  auto weak = std::weak_ptr<Flow>();
  if (auto it = flows_.find(
          {flow.proto, flow.inmate_ep, flow.orig_dst});
      it != flows_.end())
    weak = it->second;
  gateway_.loop().schedule_in(flow.req_shim_backoff, [this, weak] {
    if (auto flow = weak.lock()) retransmit_request_shim(flow);
  });
}

void SubfarmRouter::retransmit_request_shim(FlowPtr flow) {
  if (flow->req_shim_acked || flow->phase != FlowPhase::kAwaitVerdict)
    return;
  if (++flow->req_shim_retries > config_.shim_retry_limit) {
    // Retries exhausted with the CS still silent: enforce the
    // fail-closed verdict now rather than waiting out the deadline.
    GQ_WARN(kLog, "[%s] request shim never acked for %s, failing closed",
            config_.name.c_str(), flow->orig_dst.str().c_str());
    fail_close_flow(*flow);
    return;
  }
  shim_retries_ctr_->inc();
  shim::RequestShim shim;
  shim.orig = flow->inmate_ep;
  shim.resp = flow->orig_dst;
  shim.vlan = flow->vlan;
  shim.nonce_port = flow->nonce_port;
  emit_tcp(flow->cs_src, flow->server_ep, pkt::kTcpAck | pkt::kTcpPsh,
           flow->inmate_isn + 1, flow->cs_isn + 1, shim.encode());
  flow->req_shim_backoff =
      std::min(flow->req_shim_backoff + flow->req_shim_backoff,
               config_.shim_retry_max);
  std::weak_ptr<Flow> weak = flow;
  gateway_.loop().schedule_in(flow->req_shim_backoff, [this, weak] {
    if (auto f = weak.lock()) retransmit_request_shim(f);
  });
}

// --- Fail-closed resolution -------------------------------------------------

void SubfarmRouter::arm_verdict_deadline(const FlowPtr& flow) {
  std::weak_ptr<Flow> weak = flow;
  flow->verdict_deadline_event =
      gateway_.loop().schedule_in(config_.verdict_deadline, [this, weak] {
        if (auto f = weak.lock()) {
          if (f->phase != FlowPhase::kAwaitVerdict) return;
          verdict_timeouts_ctr_->inc();
          fail_close_flow(*f);
        }
      });
}

void SubfarmRouter::verdict_resolved(Flow& flow) {
  if (flow.verdict_deadline_event != 0) {
    gateway_.loop().cancel(flow.verdict_deadline_event);
    flow.verdict_deadline_event = 0;
  }
  pending_verdicts_gauge_->sub(1);
}

void SubfarmRouter::fail_close_flow(Flow& flow) {
  fail_closed_ctr_->inc();
  flow.fail_closed = true;
  // Synthesize a response shim and run it through the normal verdict
  // machinery so enforcement, accounting, and reporting are identical
  // to a CS-issued verdict.
  shim::ResponseShim synthesized;
  synthesized.orig = flow.inmate_ep;
  synthesized.resp = flow.orig_dst;
  synthesized.verdict = shim::Verdict::kDrop;
  synthesized.policy_name = "FailClosed";
  synthesized.annotation = "containment server unreachable";
  if (config_.fail_closed_verdict == shim::Verdict::kReflect &&
      !config_.fail_closed_reflect_target.addr.is_unspecified()) {
    synthesized.verdict = shim::Verdict::kReflect;
    synthesized.resp = config_.fail_closed_reflect_target;
  }
  if (flow.proto == pkt::FlowProto::kTcp)
    apply_verdict(flow, synthesized);
  else
    apply_udp_verdict(flow, synthesized, {});
}

// --- TCP: server side -> inmate ---------------------------------------------

bool SubfarmRouter::handle_server_side(pkt::DecodedFrame& frame) {
  auto key = pkt::flow_key_of(frame);
  if (!key) return false;

  // Nonce relay return path (target -> CS proxy leg).
  if (auto it = nonce_by_target_key_.find(*key);
      it != nonce_by_target_key_.end()) {
    auto relay_it = nonce_relays_.find(it->second);
    if (relay_it != nonce_relays_.end()) {
      auto& relay = relay_it->second;
      relay.last_activity = gateway_.loop().now();
      frame.ip->src = gateway_.config().mgmt_addr;
      frame.ip->dst = relay.cs_ep.addr;
      if (frame.tcp) {
        frame.tcp->src_port = relay.nonce;
        frame.tcp->dst_port = relay.cs_ep.port;
      }
      gateway_.emit_to_mgmt(std::move(frame));
    }
    return true;
  }

  auto it = server_index_.find(*key);
  if (it == server_index_.end()) return false;
  auto flow = it->second;
  if (flow->proto == pkt::FlowProto::kTcp) {
    if (flow->server_is_cs)
      cs_to_inmate(*flow, frame);
    else
      target_to_inmate(*flow, frame);
  } else {
    udp_from_server(*flow, frame);
  }
  return true;
}

void SubfarmRouter::cs_to_inmate(Flow& flow, pkt::DecodedFrame& frame) {
  auto& seg = *frame.tcp;
  flow.last_activity = gateway_.loop().now();

  if (seg.rst()) {
    if (flow.phase == FlowPhase::kAwaitVerdict ||
        flow.phase == FlowPhase::kEstablished) {
      send_rst_to_inmate(flow);
      close_flow(flow);
    }
    return;
  }

  if (seg.syn()) {  // SYN-ACK from the containment server.
    if (!flow.cs_isn_known) {
      flow.cs_isn = seg.seq;
      flow.cs_isn_known = true;
      flow.cs_in_expected = seg.seq + 1;
    }
    // Relay to the inmate as if it came from the intended target.
    frame.ip->src = flow.orig_dst.addr;
    frame.tcp->src_port = flow.orig_dst.port;
    frame.ip->dst = flow.inmate_ep.addr;
    frame.tcp->dst_port = flow.inmate_ep.port;
    gateway_.emit_auto(std::move(frame));
    return;
  }

  if (seg.has_ack() && flow.req_shim_sent && !flow.req_shim_acked &&
      seq_le(flow.inmate_isn + 1 + shim::kRequestShimSize, seg.ack)) {
    flow.req_shim_acked = true;
    shim_rtt_hist_->observe(static_cast<double>(
        (gateway_.loop().now() - flow.req_shim_sent_at).usec));
  }

  switch (flow.phase) {
    case FlowPhase::kAwaitVerdict: {
      if (!seg.payload.empty()) {
        // Reassemble the CS stream prefix to extract the response shim.
        flow.cs_in_ooo[seg.seq].assign(seg.payload.begin(),
                                       seg.payload.end());
        for (auto ooo = flow.cs_in_ooo.begin();
             ooo != flow.cs_in_ooo.end();) {
          if (seq_lt(flow.cs_in_expected, ooo->first)) break;
          const std::uint32_t overlap = flow.cs_in_expected - ooo->first;
          if (overlap < ooo->second.size()) {
            flow.cs_in_buf.insert(flow.cs_in_buf.end(),
                                  ooo->second.begin() + overlap,
                                  ooo->second.end());
            flow.cs_in_expected +=
                static_cast<std::uint32_t>(ooo->second.size()) - overlap;
          }
          ooo = flow.cs_in_ooo.erase(ooo);
        }
        process_cs_stream(flow);
        // Ack the CS bytes we consumed on the inmate's behalf (the inmate
        // never sees the shim, so it can never ack it).
        if (flow.phase == FlowPhase::kAwaitVerdict ||
            (flow.phase == FlowPhase::kEstablished && flow.server_is_cs)) {
          emit_tcp(flow.cs_src, flow.server_ep, pkt::kTcpAck,
                   flow.inmate_snd_nxt + flow.d_out, flow.cs_in_expected,
                   {});
        }
      } else if (seg.has_ack() && flow.phase == FlowPhase::kAwaitVerdict) {
        // Pure ACK: keep the inmate's retransmission timers happy.
        emit_tcp({flow.orig_dst.addr, flow.orig_dst.port}, flow.inmate_ep,
                 pkt::kTcpAck, seg.seq + flow.d_in, seg.ack - flow.d_out,
                 {});
      }
      return;
    }

    case FlowPhase::kEstablished: {
      // REWRITE: transparent proxy relay with sequence-space surgery.
      const std::uint32_t payload_len =
          static_cast<std::uint32_t>(seg.payload.size());
      if (payload_len > 0) flow.bytes_to_inmate += payload_len;
      if (seg.fin()) flow.fin_server = true;
      frame.ip->src = flow.orig_dst.addr;
      frame.tcp->src_port = flow.orig_dst.port;
      frame.ip->dst = flow.inmate_ep.addr;
      frame.tcp->dst_port = flow.inmate_ep.port;
      frame.tcp->seq = seg.seq + flow.d_in;
      if (seg.has_ack()) frame.tcp->ack = seg.ack - flow.d_out;
      gateway_.emit_auto(std::move(frame));
      return;
    }

    default:
      return;  // Splicing/closed: the CS leg is already dead to us.
  }
}

void SubfarmRouter::process_cs_stream(Flow& flow) {
  if (flow.phase != FlowPhase::kAwaitVerdict) return;
  std::size_t consumed = 0;
  auto shim = shim::ResponseShim::parse(flow.cs_in_buf, &consumed);
  if (!shim) return;  // Incomplete; wait for more bytes.
  flow.cs_in_buf.erase(flow.cs_in_buf.begin(),
                       flow.cs_in_buf.begin() +
                           static_cast<std::ptrdiff_t>(consumed));
  // The response shim occupied CS sequence space the inmate never sees.
  flow.d_in = static_cast<std::uint32_t>(
      0 - static_cast<std::uint32_t>(consumed));
  apply_verdict(flow, *shim);

  // Any proxy payload the CS sent right behind the shim (REWRITE).
  if (!flow.cs_in_buf.empty() && flow.phase == FlowPhase::kEstablished &&
      flow.server_is_cs) {
    const std::uint32_t cs_seq =
        flow.cs_in_expected -
        static_cast<std::uint32_t>(flow.cs_in_buf.size());
    flow.bytes_to_inmate += flow.cs_in_buf.size();
    emit_tcp({flow.orig_dst.addr, flow.orig_dst.port}, flow.inmate_ep,
             pkt::kTcpAck | pkt::kTcpPsh, cs_seq + flow.d_in,
             flow.inmate_snd_nxt, flow.cs_in_buf);
    flow.cs_in_buf.clear();
  }
}

void SubfarmRouter::apply_verdict(Flow& flow,
                                  const shim::ResponseShim& shim) {
  verdict_resolved(flow);
  flow.verdict = shim.verdict;
  flow.policy_name = shim.policy_name;
  flow.annotation = shim.annotation;
  flow.limit_bytes_per_sec = shim.limit_bytes_per_sec;
  const double latency_us = static_cast<double>(
      (gateway_.loop().now() - flow.created).usec);
  decision_latency_hist_->observe(latency_us);
  switch (flow.verdict_source) {
    case shim::VerdictSource::kTable:
      decision_latency_table_hist_->observe(latency_us);
      break;
    case shim::VerdictSource::kCached:
      decision_latency_cached_hist_->observe(latency_us);
      break;
    case shim::VerdictSource::kShim:
      decision_latency_uncached_hist_->observe(latency_us);
      break;
  }
  verdict_counter(shim.verdict).inc();
  maybe_cache_verdict(flow, shim);
  // Link the verdict into the trace archive's flow index: the flow's
  // packets were captured pre-NAT, so the canonical index key is the
  // inmate's original (inmate_ep -> orig_dst) direction.
  trace_.annotate({flow.proto, flow.inmate_ep, flow.orig_dst}, flow.vlan,
                  shim.verdict, shim.policy_name, flow.verdict_source);
  GQ_INFO(kLog, "[%s] vlan %u %s -> %s: %s (%s)", config_.name.c_str(),
          flow.vlan, flow.inmate_ep.str().c_str(),
          flow.orig_dst.str().c_str(), shim::verdict_name(shim.verdict),
          shim.policy_name.c_str());

  switch (shim.verdict) {
    case shim::Verdict::kRewrite:
      flow.phase = FlowPhase::kEstablished;
      break;
    case shim::Verdict::kForward:
      flow.server_ep = flow.orig_dst;
      start_splice(flow);
      break;
    case shim::Verdict::kLimit: {
      flow.server_ep = flow.orig_dst;
      const double rate = limit_rate_of(shim);
      // Burst must cover at least a couple of MSS-sized segments or the
      // bucket can never admit a full segment at all.
      flow.limiter.emplace(rate, std::max(rate * 2, 4096.0));
      start_splice(flow);
      break;
    }
    case shim::Verdict::kRedirect:
    case shim::Verdict::kReflect:
      flow.server_ep = shim.resp;
      start_splice(flow);
      break;
    case shim::Verdict::kDrop:
      flow.phase = FlowPhase::kDenied;
      if (!flow.served_locally()) send_rst_to_cs(flow);
      if (config_.drop_sends_rst) send_rst_to_inmate(flow);
      break;
  }
  report(flow, FlowEvent::Kind::kVerdict);
}

void SubfarmRouter::maybe_cache_verdict(const Flow& flow,
                                        const shim::ResponseShim& shim) {
  // Only genuine CS responses drive the cache; verdicts synthesized
  // locally — fail-closed, cache replays, and policy-table hits — never
  // do (a table hit inserting a cache entry would double-count the
  // local datapaths and let a rule outlive its table via the TTL).
  if (flow.fail_closed || flow.served_locally()) return;
  // Every CS response carries the policy epoch: a bump means the policy
  // set was reconfigured, so everything cached under the old set is
  // invalid — flush before considering this response for insertion.
  on_policy_epoch(shim.policy_epoch);
  if (!config_.verdict_cache_enabled || !shim.cacheable) return;
  if (shim.verdict == shim::Verdict::kRewrite) {
    // Defence in depth: the CS already refuses to mark REWRITE
    // cacheable. A cached REWRITE would sever the CS's in-path proxy
    // role, so it is never inserted regardless of the shim's flags.
    cache_bypass_ctr_->inc();
    return;
  }
  if (shim.policy_epoch < cache_epoch_) {
    cache_bypass_ctr_->inc();  // Decided under an older policy set.
    return;
  }
  CachedVerdict entry;
  entry.verdict = shim.verdict;
  entry.resp = shim.resp;
  entry.policy_name = shim.policy_name;
  entry.annotation = shim.annotation;
  entry.limit_bytes_per_sec = shim.limit_bytes_per_sec;
  const util::Duration ttl = shim.cache_ttl_ms > 0
                                 ? util::milliseconds(shim.cache_ttl_ms)
                                 : config_.verdict_cache_default_ttl;
  entry.expires = gateway_.loop().now() + ttl;
  const std::size_t evicted =
      verdict_cache_.insert(flow.proto, flow.vlan, flow.inmate_ep,
                            flow.orig_dst, shim.cache_scope,
                            std::move(entry));
  cache_insert_ctr_->inc();
  if (evicted > 0) cache_evict_ctr_->inc(evicted);
}

void SubfarmRouter::start_splice(Flow& flow) {
  flow.phase = FlowPhase::kSplicing;
  // Locally resolved flows (cache or table) have no CS leg to tear
  // down — and their cs_src was never remapped, so the CS-leg key could
  // name another flow's live entry.
  if (!flow.served_locally()) {
    send_rst_to_cs(flow);
    // Re-home the server-side index from the CS to the actual target.
    server_index_.erase(
        {flow.proto, flow.cs_ep, flow.cs_src});
  }
  const util::Endpoint nat_src = nat_source_for(flow, flow.server_ep);
  server_index_[{flow.proto, flow.server_ep, nat_src}] =
      flows_.at({flow.proto, flow.inmate_ep, flow.orig_dst});
  flow.server_is_cs = false;
  // Dial the target reusing the inmate's ISN so the outbound direction
  // needs no delta at all (buffered payload replays verbatim).
  emit_tcp(nat_src, flow.server_ep, pkt::kTcpSyn, flow.inmate_isn, 0, {});
}

void SubfarmRouter::target_to_inmate(Flow& flow, pkt::DecodedFrame& frame) {
  auto& seg = *frame.tcp;
  flow.last_activity = gateway_.loop().now();

  if (seg.rst()) {
    send_rst_to_inmate(flow);
    close_flow(flow);
    return;
  }

  if (seg.syn() && seg.has_ack() && flow.phase == FlowPhase::kSplicing) {
    flow.server_isn = seg.seq;
    flow.server_rcv_next = seg.seq + 1;
    // The inmate believes the server's ISN is the CS's ISN.
    flow.d_in = flow.cs_isn - flow.server_isn;
    flow.d_out = 0;
    flow.phase = FlowPhase::kEstablished;
    flow.replay_acked = flow.inmate_isn + 1;
    const util::Endpoint nat_src = nat_source_for(flow, flow.server_ep);
    emit_tcp(nat_src, flow.server_ep, pkt::kTcpAck, flow.inmate_isn + 1,
             flow.server_isn + 1, {});
    report(flow, FlowEvent::Kind::kOpen);
    replay_to_target(
        flows_.at({flow.proto, flow.inmate_ep, flow.orig_dst}));
    return;
  }
  if (seg.syn()) {
    // Retransmitted SYN-ACK: re-ack.
    const util::Endpoint nat_src = nat_source_for(flow, flow.server_ep);
    emit_tcp(nat_src, flow.server_ep, pkt::kTcpAck, flow.inmate_isn + 1,
             flow.server_isn + 1, {});
    return;
  }
  if (flow.phase != FlowPhase::kEstablished) return;

  // Advance the splice replay window with the target's acks (d_out == 0,
  // so target ack values live directly in inmate sequence space).
  if (seg.has_ack() && seq_lt(flow.replay_acked, seg.ack)) {
    flow.replay_acked = seg.ack;
    for (auto it = flow.replay_buf.begin(); it != flow.replay_buf.end();) {
      const std::uint32_t end =
          it->first + static_cast<std::uint32_t>(it->second.size());
      if (seq_le(end, flow.replay_acked))
        it = flow.replay_buf.erase(it);
      else
        break;
    }
  }

  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(seg.payload.size());
  // LIMIT throttles the flow in both directions (Figure 2b): drop the
  // segment when the bucket is dry; the target's TCP retransmits.
  if (flow.limiter && payload_len > 0 &&
      !flow.limiter->try_consume(flow.last_activity,
                                 static_cast<double>(payload_len))) {
    return;
  }
  if (payload_len > 0) {
    flow.bytes_to_inmate += payload_len;
    flow.server_rcv_next =
        std::max(flow.server_rcv_next, seg.seq + payload_len,
                 [](std::uint32_t a, std::uint32_t b) { return seq_lt(a, b); });
  }
  if (seg.fin()) flow.fin_server = true;

  // Relay to the inmate as the original destination.
  frame.ip->src = flow.orig_dst.addr;
  frame.tcp->src_port = flow.orig_dst.port;
  frame.ip->dst = flow.inmate_ep.addr;
  frame.tcp->dst_port = flow.inmate_ep.port;
  frame.tcp->seq = seg.seq + flow.d_in;
  if (seg.has_ack()) frame.tcp->ack = seg.ack - flow.d_out;
  gateway_.emit_auto(std::move(frame));
}

void SubfarmRouter::replay_to_target(FlowPtr flow) {
  if (flow->phase != FlowPhase::kEstablished || flow->server_is_cs) return;
  const util::Endpoint nat_src = nat_source_for(*flow, flow->server_ep);
  const auto now = gateway_.loop().now();
  bool outstanding = false;
  bool throttled = false;
  // A LIMIT verdict throttles the replayed prefix too: stop emitting
  // once the bucket is dry and retry on the timer.
  auto admit = [&](std::size_t len) {
    if (!flow->limiter) return true;
    if (flow->limiter->try_consume(now, static_cast<double>(len)))
      return true;
    throttled = true;
    return false;
  };
  // Handle a first entry that starts before replay_acked but extends past.
  if (auto it = flow->replay_buf.begin();
      it != flow->replay_buf.end() && seq_lt(it->first, flow->replay_acked) &&
      admit(it->second.size())) {
    emit_tcp(nat_src, flow->server_ep, pkt::kTcpAck | pkt::kTcpPsh,
             it->first, flow->server_rcv_next, it->second);
    outstanding = true;
  }
  for (auto it = flow->replay_buf.lower_bound(flow->replay_acked);
       it != flow->replay_buf.end() && !throttled; ++it) {
    // Entries fully below replay_acked were erased; partial overlap can
    // only happen at the first entry (handled above).
    if (!admit(it->second.size())) break;
    emit_tcp(nat_src, flow->server_ep, pkt::kTcpAck | pkt::kTcpPsh,
             it->first, flow->server_rcv_next, it->second);
    outstanding = true;
  }
  outstanding = outstanding || throttled;
  if (!outstanding && flow->inmate_fin_seen && !flow->replay_fin_sent) {
    emit_tcp(nat_src, flow->server_ep, pkt::kTcpFin | pkt::kTcpAck,
             flow->inmate_fin_seq, flow->server_rcv_next, {});
    flow->replay_fin_sent = true;
    flow->fin_inmate = true;
  }
  if (outstanding) {
    std::weak_ptr<Flow> weak = flow;
    gateway_.loop().schedule_in(util::milliseconds(500), [this, weak] {
      if (auto f = weak.lock()) replay_to_target(f);
    });
  }
}

void SubfarmRouter::send_rst_to_cs(Flow& flow) {
  emit_tcp(flow.cs_src, flow.cs_ep,
           pkt::kTcpRst | pkt::kTcpAck, flow.inmate_snd_nxt + flow.d_out,
           flow.cs_in_expected, {});
}

void SubfarmRouter::send_rst_to_inmate(Flow& flow) {
  const std::uint32_t seq =
      flow.cs_isn_known ? flow.cs_in_expected + flow.d_in : 0;
  emit_tcp(flow.orig_dst, flow.inmate_ep, pkt::kTcpRst | pkt::kTcpAck, seq,
           flow.inmate_snd_nxt, {});
}

// --- UDP ---------------------------------------------------------------------

void SubfarmRouter::udp_from_inmate(Flow& flow, pkt::DecodedFrame& frame) {
  auto& dgram = *frame.udp;
  flow.last_activity = gateway_.loop().now();

  switch (flow.phase) {
    case FlowPhase::kDenied:
    case FlowPhase::kClosed:
      return;
    case FlowPhase::kAwaitVerdict:
    case FlowPhase::kSplicing: {
      flow.udp_buffer.push_back(dgram.payload);
      if (!flow.req_shim_sent) {
        flow.req_shim_sent = true;
        flow.req_shim_sent_at = flow.last_activity;
      }
      // Shim-prefixed copy to the containment server (§6.2: UDP shims
      // pad the datagram).
      shim::RequestShim shim;
      shim.orig = flow.inmate_ep;
      shim.resp = flow.orig_dst;
      shim.vlan = flow.vlan;
      shim.nonce_port = 0;
      auto payload = shim.encode();
      payload.insert(payload.end(), dgram.payload.begin(),
                     dgram.payload.end());
      emit_udp(flow.cs_src, flow.cs_ep,
               std::move(payload));
      flow.bytes_to_server += dgram.payload.size();
      return;
    }
    case FlowPhase::kEstablished: {
      if (flow.server_is_cs) {
        // UDP REWRITE: every datagram travels shimmed through the CS.
        shim::RequestShim shim;
        shim.orig = flow.inmate_ep;
        shim.resp = flow.orig_dst;
        shim.vlan = flow.vlan;
        auto payload = shim.encode();
        payload.insert(payload.end(), dgram.payload.begin(),
                       dgram.payload.end());
        emit_udp(flow.cs_src, flow.cs_ep,
                 std::move(payload));
        flow.bytes_to_server += dgram.payload.size();
        return;
      }
      if (flow.limiter &&
          !flow.limiter->try_consume(
              flow.last_activity, static_cast<double>(dgram.payload.size()))) {
        return;
      }
      const util::Endpoint src = nat_source_for(flow, flow.server_ep);
      flow.bytes_to_server += dgram.payload.size();
      frame.ip->src = src.addr;
      frame.udp->src_port = src.port;
      frame.ip->dst = flow.server_ep.addr;
      frame.udp->dst_port = flow.server_ep.port;
      gateway_.emit_auto(std::move(frame));
      return;
    }
  }
}

void SubfarmRouter::udp_from_server(Flow& flow, pkt::DecodedFrame& frame) {
  auto& dgram = *frame.udp;
  flow.last_activity = gateway_.loop().now();

  if (flow.server_is_cs) {
    // Datagram from the CS: response shim (+ optional rewritten payload).
    std::size_t consumed = 0;
    auto shim = shim::ResponseShim::parse(dgram.payload, &consumed);
    if (!shim) return;  // Malformed; default-deny.
    std::span<const std::uint8_t> remainder(dgram.payload);
    remainder = remainder.subspan(consumed);
    if (flow.phase == FlowPhase::kAwaitVerdict) {
      apply_udp_verdict(flow, *shim, remainder);
    } else if (flow.phase == FlowPhase::kEstablished &&
               !remainder.empty()) {
      flow.bytes_to_inmate += remainder.size();
      emit_udp(flow.orig_dst, flow.inmate_ep,
               {remainder.begin(), remainder.end()});
    }
    return;
  }
  // From the real/redirected target: NAT back to the inmate.
  flow.bytes_to_inmate += dgram.payload.size();
  frame.ip->src = flow.orig_dst.addr;
  frame.udp->src_port = flow.orig_dst.port;
  frame.ip->dst = flow.inmate_ep.addr;
  frame.udp->dst_port = flow.inmate_ep.port;
  gateway_.emit_auto(std::move(frame));
}

void SubfarmRouter::apply_udp_verdict(Flow& flow,
                                      const shim::ResponseShim& shim,
                                      std::span<const std::uint8_t> remainder) {
  verdict_resolved(flow);
  flow.verdict = shim.verdict;
  flow.policy_name = shim.policy_name;
  flow.annotation = shim.annotation;
  flow.limit_bytes_per_sec = shim.limit_bytes_per_sec;
  const auto now = gateway_.loop().now();
  const double latency_us = static_cast<double>((now - flow.created).usec);
  decision_latency_hist_->observe(latency_us);
  switch (flow.verdict_source) {
    case shim::VerdictSource::kTable:
      decision_latency_table_hist_->observe(latency_us);
      break;
    case shim::VerdictSource::kCached:
      decision_latency_cached_hist_->observe(latency_us);
      break;
    case shim::VerdictSource::kShim:
      decision_latency_uncached_hist_->observe(latency_us);
      break;
  }
  if (flow.req_shim_sent && !flow.req_shim_acked) {
    flow.req_shim_acked = true;
    shim_rtt_hist_->observe(
        static_cast<double>((now - flow.req_shim_sent_at).usec));
  }
  verdict_counter(shim.verdict).inc();
  maybe_cache_verdict(flow, shim);
  trace_.annotate({flow.proto, flow.inmate_ep, flow.orig_dst}, flow.vlan,
                  shim.verdict, shim.policy_name, flow.verdict_source);

  switch (shim.verdict) {
    case shim::Verdict::kRewrite: {
      flow.phase = FlowPhase::kEstablished;
      if (!remainder.empty()) {
        flow.bytes_to_inmate += remainder.size();
        emit_udp(flow.orig_dst, flow.inmate_ep,
                 {remainder.begin(), remainder.end()});
      }
      break;
    }
    case shim::Verdict::kDrop:
      flow.phase = FlowPhase::kDenied;
      break;
    case shim::Verdict::kForward:
    case shim::Verdict::kLimit:
    case shim::Verdict::kRedirect:
    case shim::Verdict::kReflect: {
      flow.server_ep = (shim.verdict == shim::Verdict::kForward ||
                        shim.verdict == shim::Verdict::kLimit)
                           ? flow.orig_dst
                           : shim.resp;
      if (shim.verdict == shim::Verdict::kLimit) {
        const double rate = limit_rate_of(shim);
        flow.limiter.emplace(rate, std::max(rate * 2, 4096.0));
      }
      flow.server_is_cs = false;
      flow.phase = FlowPhase::kEstablished;
      // Same CS-leg caveat as start_splice(): a locally resolved flow
      // was never indexed under its cs_src.
      if (!flow.served_locally()) {
        server_index_.erase(
            {flow.proto, flow.cs_ep, flow.cs_src});
      }
      const util::Endpoint nat_src = nat_source_for(flow, flow.server_ep);
      server_index_[{flow.proto, flow.server_ep, nat_src}] =
          flows_.at({flow.proto, flow.inmate_ep, flow.orig_dst});
      // Flush everything the inmate sent before the verdict.
      for (auto& payload : flow.udp_buffer) {
        emit_udp(nat_src, flow.server_ep, std::move(payload));
      }
      flow.udp_buffer.clear();
      break;
    }
  }
  report(flow, FlowEvent::Kind::kVerdict);
}

// --- Ingress: management / upstream -----------------------------------------

void SubfarmRouter::from_mgmt(pkt::DecodedFrame frame) {
  if (!frame.ip) return;
  if (handle_server_side(frame)) return;
  // Infrastructure replies (DNS resolver, etc.) pass straight back.
  if (is_infra(frame.ip->src)) {
    gateway_.emit_auto(std::move(frame));
    return;
  }
  GQ_DEBUG(kLog, "[%s] unmatched mgmt frame %s dropped",
           config_.name.c_str(), frame.summary().c_str());
}

void SubfarmRouter::from_upstream(pkt::DecodedFrame frame) {
  if (!frame.ip) return;
  if (handle_server_side(frame)) return;

  if (config_.inbound_mode == InboundMode::kForward) {
    const InmateBinding* binding = inmates_.by_global(frame.ip->dst);
    if (binding) {
      // Rewrite destination to the internal address and remember the
      // flow so the inmate's replies NAT back out (§5.3: Internet-
      // reachable servers).
      frame.ip->dst = binding->internal_addr;
      if (auto key = pkt::flow_key_of(frame)) {
        inbound_flows_[key->reversed()] = gateway_.loop().now();
      }
      gateway_.emit_auto(std::move(frame));
      return;
    }
  }
  // Default: unsolicited inbound traffic is dropped (home-NAT emulation).
}

// --- Nonce relays -------------------------------------------------------------

void SubfarmRouter::on_nonce_frame(std::uint16_t nonce,
                                   pkt::DecodedFrame frame) {
  if (!frame.ip || !frame.tcp) return;
  auto relay_it = nonce_relays_.find(nonce);
  if (relay_it == nonce_relays_.end()) {
    // First packet on this nonce: it must be a SYN from the CS, and the
    // nonce must belong to a REWRITE flow awaiting its outbound leg.
    if (!frame.tcp->syn()) return;
    FlowPtr owner;
    for (auto& [key, flow] : flows_) {
      if (flow->nonce_port == nonce &&
          flow->phase == FlowPhase::kEstablished && flow->server_is_cs) {
        owner = flow;
        break;
      }
    }
    if (!owner) {
      GQ_WARN(kLog, "[%s] nonce %u connection without owning flow",
              config_.name.c_str(), nonce);
      return;
    }
    NonceRelay relay;
    relay.cs_ep = {frame.ip->src, frame.tcp->src_port};
    relay.nonce = nonce;
    relay.target = owner->orig_dst;
    relay.nat_src = nat_source_for(*owner, owner->orig_dst);
    relay.last_activity = gateway_.loop().now();
    nonce_relays_[nonce] = relay;
    nonce_by_target_key_[{pkt::FlowProto::kTcp, relay.target,
                          relay.nat_src}] = nonce;
    relay_it = nonce_relays_.find(nonce);
  }
  auto& relay = relay_it->second;
  relay.last_activity = gateway_.loop().now();
  // Pure NAT relay toward the target: the CS's fresh connection needs no
  // sequence surgery, only address rewriting.
  frame.ip->src = relay.nat_src.addr;
  frame.tcp->src_port = relay.nat_src.port;
  frame.ip->dst = relay.target.addr;
  frame.tcp->dst_port = relay.target.port;
  gateway_.emit_auto(std::move(frame));
}

// --- Lifecycle -----------------------------------------------------------------

void SubfarmRouter::close_flow(Flow& flow) {
  if (flow.phase == FlowPhase::kClosed) return;
  // A flow torn down while still undecided leaves the pending-verdict
  // queue here (the deadline event must not fire on a dead flow).
  if (flow.phase == FlowPhase::kAwaitVerdict) verdict_resolved(flow);
  flow.phase = FlowPhase::kClosed;
  report(flow, FlowEvent::Kind::kClose);
  if (flow.nonce_port != 0) {
    if (auto it = nonce_relays_.find(flow.nonce_port);
        it != nonce_relays_.end()) {
      nonce_by_target_key_.erase(
          {pkt::FlowProto::kTcp, it->second.target, it->second.nat_src});
      nonce_relays_.erase(it);
    }
    gateway_.release_nonce(flow.nonce_port);
    flow.nonce_port = 0;
  }
  if (!flow.served_locally()) {
    server_index_.erase(
        {flow.proto, flow.cs_ep, flow.cs_src});
  }
  server_index_.erase({flow.proto, flow.server_ep,
                       nat_source_for(flow, flow.server_ep)});
  flows_.erase({flow.proto, flow.inmate_ep, flow.orig_dst});
  active_flows_gauge_->set(static_cast<std::int64_t>(flows_.size()));
  // `flow` may be dangling now if the last shared_ptr lived in the maps;
  // callers must not touch it after close_flow().
}

SubfarmRouter::OpenFlowBytes SubfarmRouter::open_flow_bytes(
    std::uint16_t vlan) const {
  OpenFlowBytes totals;
  for (const auto& [key, flow] : flows_) {
    if (flow->vlan != vlan || flow->phase == FlowPhase::kClosed) continue;
    totals.to_server += flow->bytes_to_server;
    totals.to_inmate += flow->bytes_to_inmate;
  }
  return totals;
}

void SubfarmRouter::gc_sweep() {
  const auto now = gateway_.loop().now();
  std::vector<FlowPtr> to_close;
  for (auto& [key, flow] : flows_) {
    const bool idle = now - flow->last_activity > config_.flow_timeout;
    const bool done = flow->fin_inmate && flow->fin_server &&
                      now - flow->last_activity > util::seconds(2);
    const bool denied_old = flow->phase == FlowPhase::kDenied &&
                            now - flow->last_activity > util::seconds(30);
    if (idle || done || denied_old) to_close.push_back(flow);
  }
  for (auto& flow : to_close) close_flow(*flow);
  for (auto it = nonce_relays_.begin(); it != nonce_relays_.end();) {
    if (now - it->second.last_activity > config_.flow_timeout) {
      nonce_by_target_key_.erase(
          {pkt::FlowProto::kTcp, it->second.target, it->second.nat_src});
      it = nonce_relays_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = inbound_flows_.begin(); it != inbound_flows_.end();) {
    if (now - it->second > config_.flow_timeout)
      it = inbound_flows_.erase(it);
    else
      ++it;
  }
  gateway_.loop().schedule_in(util::seconds(5), [this] { gc_sweep(); });
}

}  // namespace gq::gw
