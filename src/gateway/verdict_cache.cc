#include "gateway/verdict_cache.h"

namespace gq::gw {

VerdictCache::Key VerdictCache::make_key(pkt::FlowProto proto,
                                         std::uint16_t vlan,
                                         util::Endpoint src,
                                         util::Endpoint dst,
                                         shim::CacheScope scope) {
  Key key;
  key.proto = proto;
  key.vlan = vlan;
  key.scope = scope;
  switch (scope) {
    case shim::CacheScope::kExactFlow:
      key.src = src;
      key.dst = dst;
      break;
    case shim::CacheScope::kDstEndpoint:
      key.dst = dst;
      break;
    case shim::CacheScope::kDstPort:
      key.dst.port = dst.port;
      break;
  }
  return key;
}

const CachedVerdict* VerdictCache::probe(const Key& key, util::TimePoint now,
                                         std::uint64_t* expired) {
  auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  if (it->second->second.expires <= now) {
    lru_.erase(it->second);
    map_.erase(it);
    if (expired) ++*expired;
    return nullptr;
  }
  // LRU refresh: move to front.
  lru_.splice(lru_.begin(), lru_, it->second);
  return &it->second->second;
}

const CachedVerdict* VerdictCache::lookup(pkt::FlowProto proto,
                                          std::uint16_t vlan,
                                          util::Endpoint src,
                                          util::Endpoint dst,
                                          util::TimePoint now,
                                          std::uint64_t* expired) {
  for (const auto scope :
       {shim::CacheScope::kExactFlow, shim::CacheScope::kDstEndpoint,
        shim::CacheScope::kDstPort}) {
    if (const auto* entry =
            probe(make_key(proto, vlan, src, dst, scope), now, expired))
      return entry;
  }
  return nullptr;
}

std::size_t VerdictCache::insert(pkt::FlowProto proto, std::uint16_t vlan,
                                 util::Endpoint src, util::Endpoint dst,
                                 shim::CacheScope scope,
                                 CachedVerdict entry) {
  if (capacity_ == 0) return 0;
  const Key key = make_key(proto, vlan, src, dst, scope);
  if (auto it = map_.find(key); it != map_.end()) {
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return 0;
  }
  std::size_t evicted = 0;
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    evicted = 1;
  }
  lru_.emplace_front(key, std::move(entry));
  map_[key] = lru_.begin();
  return evicted;
}

std::size_t VerdictCache::flush() {
  const std::size_t dropped = map_.size();
  map_.clear();
  lru_.clear();
  return dropped;
}

std::size_t VerdictCache::flush_vlan(std::uint16_t vlan) {
  std::size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first.vlan == vlan) {
      map_.erase(it->first);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

}  // namespace gq::gw
