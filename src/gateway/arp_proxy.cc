#include "gateway/arp_proxy.h"

#include <algorithm>

#include "util/log.h"

namespace gq::gw {

namespace {
constexpr const char* kLog = "gw.arp";
constexpr int kMaxAttempts = 3;
constexpr util::Duration kRetryDelay = util::milliseconds(500);
}  // namespace

ArpProxy::ArpProxy(sim::EventLoop& loop, util::MacAddr my_mac,
                   util::Ipv4Addr my_addr, EmitFrame emit)
    : loop_(loop), my_mac_(my_mac), my_addr_(my_addr), emit_(std::move(emit)) {}

void ArpProxy::add_proxy_range(util::Ipv4Net net) {
  proxy_ranges_.push_back(net);
}

void ArpProxy::add_owned(util::Ipv4Addr addr) { owned_.push_back(addr); }

bool ArpProxy::owns(util::Ipv4Addr addr) const {
  if (addr == my_addr_) return true;
  if (std::find(owned_.begin(), owned_.end(), addr) != owned_.end())
    return true;
  for (const auto& net : proxy_ranges_)
    if (net.contains(addr)) return true;
  return false;
}

void ArpProxy::handle(const pkt::ArpMessage& arp) {
  if (!arp.sender_ip.is_unspecified()) {
    cache_[arp.sender_ip] = arp.sender_mac;
    if (auto it = pending_.find(arp.sender_ip); it != pending_.end()) {
      auto waiters = std::move(it->second.waiters);
      pending_.erase(it);
      for (auto& waiter : waiters) waiter(arp.sender_mac);
    }
  }
  if (arp.op == pkt::ArpMessage::Op::kRequest && owns(arp.target_ip)) {
    pkt::ArpMessage reply;
    reply.op = pkt::ArpMessage::Op::kReply;
    reply.sender_mac = my_mac_;
    reply.sender_ip = arp.target_ip;  // Answer as the queried address.
    reply.target_mac = arp.sender_mac;
    reply.target_ip = arp.sender_ip;
    pkt::EthHeader eth;
    eth.dst = arp.sender_mac;
    eth.src = my_mac_;
    eth.ethertype = pkt::kEtherTypeArp;
    emit_(pkt::serialize_eth(eth, pkt::serialize_arp(reply)));
  }
}

void ArpProxy::resolve(util::Ipv4Addr next_hop,
                       std::function<void(util::MacAddr)> send) {
  if (auto it = cache_.find(next_hop); it != cache_.end()) {
    send(it->second);
    return;
  }
  auto& pending = pending_[next_hop];
  pending.waiters.push_back(std::move(send));
  if (pending.waiters.size() > 1) return;
  pending.attempts = 0;
  send_request(next_hop);
}

void ArpProxy::send_request(util::Ipv4Addr target) {
  auto it = pending_.find(target);
  if (it == pending_.end()) return;
  if (it->second.attempts++ >= kMaxAttempts) {
    GQ_WARN(kLog, "ARP for %s failed; dropping %zu queued sends",
            target.str().c_str(), it->second.waiters.size());
    pending_.erase(it);
    return;
  }
  pkt::ArpMessage request;
  request.op = pkt::ArpMessage::Op::kRequest;
  request.sender_mac = my_mac_;
  request.sender_ip = my_addr_;
  request.target_ip = target;
  pkt::EthHeader eth;
  eth.dst = util::MacAddr::broadcast();
  eth.src = my_mac_;
  eth.ethertype = pkt::kEtherTypeArp;
  emit_(pkt::serialize_eth(eth, pkt::serialize_arp(request)));
  loop_.schedule_in(kRetryDelay, [this, target] {
    if (pending_.count(target)) send_request(target);
  });
}

void ArpProxy::learn(util::Ipv4Addr addr, util::MacAddr mac) {
  cache_[addr] = mac;
}

}  // namespace gq::gw
