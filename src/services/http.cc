#include "services/http.h"

#include "util/log.h"
#include "util/strings.h"

namespace gq::svc {

namespace {

constexpr const char* kLog = "http";

std::optional<std::string> find_header(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& name) {
  const std::string lower = util::to_lower(name);
  for (const auto& [k, v] : headers)
    if (util::to_lower(k) == lower) return v;
  return std::nullopt;
}

void set_header_in(std::vector<std::pair<std::string, std::string>>& headers,
                   const std::string& name, const std::string& value) {
  const std::string lower = util::to_lower(name);
  for (auto& [k, v] : headers) {
    if (util::to_lower(k) == lower) {
      v = value;
      return;
    }
  }
  headers.emplace_back(name, value);
}

void encode_headers(
    std::string& out,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  for (const auto& [k, v] : headers) out += k + ": " + v + "\r\n";
  out += "\r\n";
}

// Parses header lines shared between requests and responses. Returns
// false on malformed header lines.
bool parse_header_lines(
    const std::string& text,
    std::vector<std::pair<std::string, std::string>>& headers) {
  for (const auto& line : util::split(text, '\n')) {
    std::string_view trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    const auto colon = trimmed.find(':');
    if (colon == std::string_view::npos) return false;
    headers.emplace_back(std::string(util::trim(trimmed.substr(0, colon))),
                         std::string(util::trim(trimmed.substr(colon + 1))));
  }
  return true;
}

// Fills in the start-line fields of a request from its first line.
bool parse_start_line(HttpRequest& req, std::string_view line) {
  auto parts = util::split_ws(line);
  if (parts.size() != 3) return false;
  req.method = parts[0];
  req.path = parts[1];
  req.version = parts[2];
  return true;
}

bool parse_start_line(HttpResponse& rsp, std::string_view line) {
  auto parts = util::split_ws(line);
  if (parts.size() < 2) return false;
  rsp.version = parts[0];
  auto status = util::parse_int(parts[1]);
  if (!status) return false;
  rsp.status = static_cast<int>(*status);
  rsp.reason.clear();
  for (std::size_t i = 2; i < parts.size(); ++i) {
    if (i > 2) rsp.reason += ' ';
    rsp.reason += parts[i];
  }
  return true;
}

}  // namespace

std::optional<std::string> HttpRequest::header(const std::string& name) const {
  return find_header(headers, name);
}

void HttpRequest::set_header(const std::string& name,
                             const std::string& value) {
  set_header_in(headers, name, value);
}

std::string HttpRequest::encode() const {
  std::string out = method + " " + path + " " + version + "\r\n";
  auto copy = headers;
  if (!body.empty() && !find_header(copy, "Content-Length"))
    set_header_in(copy, "Content-Length", std::to_string(body.size()));
  encode_headers(out, copy);
  out += body;
  return out;
}

std::optional<std::string> HttpResponse::header(
    const std::string& name) const {
  return find_header(headers, name);
}

void HttpResponse::set_header(const std::string& name,
                              const std::string& value) {
  set_header_in(headers, name, value);
}

std::string HttpResponse::encode() const {
  std::string out =
      version + " " + std::to_string(status) + " " + reason + "\r\n";
  auto copy = headers;
  if (!find_header(copy, "Content-Length"))
    set_header_in(copy, "Content-Length", std::to_string(body.size()));
  encode_headers(out, copy);
  out += body;
  return out;
}

HttpResponse HttpResponse::make(int status, std::string reason,
                                std::string body, std::string content_type) {
  HttpResponse rsp;
  rsp.status = status;
  rsp.reason = std::move(reason);
  rsp.body = std::move(body);
  rsp.set_header("Content-Type", std::move(content_type));
  rsp.set_header("Content-Length", std::to_string(rsp.body.size()));
  return rsp;
}

template <typename Message>
void HttpParser<Message>::feed(std::span<const std::uint8_t> data) {
  if (failed_) return;
  buffer_.append(reinterpret_cast<const char*>(data.data()), data.size());
}

template <typename Message>
bool HttpParser<Message>::try_parse_header() {
  const auto end = buffer_.find("\r\n\r\n");
  if (end == std::string::npos) {
    if (buffer_.size() > 64 * 1024) failed_ = true;  // Header flood.
    return false;
  }
  const std::string head = buffer_.substr(0, end);
  buffer_.erase(0, end + 4);

  const auto line_end = head.find("\r\n");
  const std::string start_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const std::string rest =
      line_end == std::string::npos ? "" : head.substr(line_end + 2);

  Message msg;
  if (!parse_start_line(msg, start_line) ||
      !parse_header_lines(rest, msg.headers)) {
    failed_ = true;
    return false;
  }
  body_needed_ = 0;
  if (auto cl = find_header(msg.headers, "Content-Length")) {
    auto n = util::parse_int(*cl);
    if (!n || *n < 0 || *n > 16 * 1024 * 1024) {
      failed_ = true;
      return false;
    }
    body_needed_ = static_cast<std::size_t>(*n);
  }
  in_progress_ = std::move(msg);
  return true;
}

template <typename Message>
std::optional<Message> HttpParser<Message>::take() {
  if (failed_) return std::nullopt;
  if (!in_progress_ && !try_parse_header()) return std::nullopt;
  if (buffer_.size() < body_needed_) return std::nullopt;
  Message msg = std::move(*in_progress_);
  in_progress_.reset();
  msg.body = buffer_.substr(0, body_needed_);
  buffer_.erase(0, body_needed_);
  body_needed_ = 0;
  return msg;
}

template class HttpParser<HttpRequest>;
template class HttpParser<HttpResponse>;

HttpServer::HttpServer(net::HostStack& stack, std::uint16_t port,
                       Handler handler)
    : stack_(stack), handler_(std::move(handler)) {
  stack_.listen(port, [this](std::shared_ptr<net::TcpConnection> conn) {
    auto parser = std::make_shared<HttpRequestParser>();
    conn->on_data = [this, conn, parser](std::span<const std::uint8_t> data) {
      parser->feed(data);
      if (parser->failed()) {
        conn->abort();
        return;
      }
      while (auto request = parser->take()) {
        ++requests_;
        HttpResponse response = handler_(*request, conn->remote());
        const bool close =
            request->header("Connection").value_or("") == "close" ||
            request->version == "HTTP/1.0";
        conn->send(response.encode());
        if (close) {
          conn->close();
          break;
        }
      }
    };
    conn->on_remote_close = [conn] { conn->close(); };
  });
}

void HttpClient::fetch(net::HostStack& stack, util::Endpoint server,
                       HttpRequest request, Callback callback) {
  auto conn = stack.connect(server);
  auto parser = std::make_shared<HttpResponseParser>();
  auto done = std::make_shared<bool>(false);
  auto cb = std::make_shared<Callback>(std::move(callback));

  auto finish = [done, cb](std::optional<HttpResponse> response) {
    if (*done) return;
    *done = true;
    if (*cb) (*cb)(std::move(response));
  };

  conn->on_connected = [conn, request = std::move(request)] {
    conn->send(request.encode());
  };
  conn->on_data = [conn, parser, finish](std::span<const std::uint8_t> data) {
    parser->feed(data);
    if (parser->failed()) {
      finish(std::nullopt);
      conn->abort();
      return;
    }
    if (auto response = parser->take()) {
      finish(std::move(response));
      conn->close();
    }
  };
  conn->on_reset = [finish] { finish(std::nullopt); };
  conn->on_closed = [finish] { finish(std::nullopt); };
  // A server that accepts but never answers (a catch-all sink, say) must
  // not hang the client forever.
  stack.loop().schedule_in(util::seconds(30), [finish, conn] {
    finish(std::nullopt);
    conn->abort();
  });
  GQ_DEBUG(kLog, "%s: fetch from %s", stack.name().c_str(),
           server.str().c_str());
}

}  // namespace gq::svc
