#include "services/ftp.h"

#include "util/log.h"
#include "util/strings.h"

namespace gq::svc {

namespace {
constexpr const char* kLog = "ftp";
}

struct FtpServer::Session {
  std::shared_ptr<net::TcpConnection> control;
  std::string line_buffer;
  bool authed = false;
  std::string pending_user;
  // PASV state.
  std::uint16_t data_port = 0;
  std::shared_ptr<net::TcpConnection> data;
  std::string upload_path;     // Non-empty while a STOR is in progress.
  std::string upload_buffer;
};

FtpServer::FtpServer(net::HostStack& stack, std::uint16_t port,
                     std::string user, std::string pass)
    : stack_(stack), user_(std::move(user)), pass_(std::move(pass)) {
  stack_.listen(port, [this](std::shared_ptr<net::TcpConnection> conn) {
    auto session = std::make_shared<Session>();
    session->control = conn;
    conn->send("220 " + stack_.name() + " FTP ready\r\n");
    conn->on_data = [this, session](std::span<const std::uint8_t> data) {
      session->line_buffer.append(reinterpret_cast<const char*>(data.data()),
                                  data.size());
      std::size_t pos;
      while ((pos = session->line_buffer.find("\r\n")) != std::string::npos) {
        std::string line = session->line_buffer.substr(0, pos);
        session->line_buffer.erase(0, pos + 2);
        handle_command(session, line);
      }
    };
    conn->on_remote_close = [conn] { conn->close(); };
  });
}

void FtpServer::open_pasv(std::shared_ptr<Session> session) {
  const std::uint16_t port = stack_.allocate_port();
  session->data_port = port;
  stack_.listen(port, [this, session,
                       port](std::shared_ptr<net::TcpConnection> conn) {
    stack_.close_listener(port);  // Single-use data listener.
    session->data = conn;
    conn->on_data = [session](std::span<const std::uint8_t> data) {
      if (!session->upload_path.empty())
        session->upload_buffer.append(
            reinterpret_cast<const char*>(data.data()), data.size());
    };
    conn->on_remote_close = [this, session, conn] {
      if (!session->upload_path.empty()) {
        files_[session->upload_path] = session->upload_buffer;
        ++stores_;
        GQ_INFO(kLog, "%s: stored %s (%zu bytes)", stack_.name().c_str(),
                session->upload_path.c_str(),
                session->upload_buffer.size());
        session->upload_path.clear();
        session->upload_buffer.clear();
        session->control->send("226 Transfer complete\r\n");
      }
      conn->close();
    };
  });
  const util::Ipv4Addr a = stack_.addr();
  session->control->send(util::format(
      "227 Entering Passive Mode (%u,%u,%u,%u,%u,%u)\r\n", a.value() >> 24,
      (a.value() >> 16) & 0xFF, (a.value() >> 8) & 0xFF, a.value() & 0xFF,
      port >> 8, port & 0xFF));
}

void FtpServer::handle_command(std::shared_ptr<Session> session,
                               const std::string& line) {
  auto parts = util::split_ws(line);
  if (parts.empty()) return;
  const std::string cmd = util::to_lower(parts[0]);
  const std::string arg = parts.size() > 1 ? parts[1] : "";
  auto& control = *session->control;

  if (cmd == "user") {
    session->pending_user = arg;
    control.send("331 Password required\r\n");
    return;
  }
  if (cmd == "pass") {
    if ((user_.empty() && pass_.empty()) ||
        (session->pending_user == user_ && arg == pass_)) {
      session->authed = true;
      ++logins_;
      control.send("230 Logged in\r\n");
    } else {
      control.send("530 Login incorrect\r\n");
    }
    return;
  }
  if (cmd == "quit") {
    control.send("221 Goodbye\r\n");
    control.close();
    return;
  }
  if (!session->authed) {
    control.send("530 Not logged in\r\n");
    return;
  }
  if (cmd == "type") {
    control.send("200 Type set\r\n");
    return;
  }
  if (cmd == "pasv") {
    open_pasv(session);
    return;
  }
  if (cmd == "retr") {
    auto it = files_.find(arg);
    if (it == files_.end()) {
      control.send("550 No such file\r\n");
      return;
    }
    if (!session->data) {
      control.send("425 Use PASV first\r\n");
      return;
    }
    control.send("150 Opening data connection\r\n");
    ++retrievals_;
    auto data_conn = session->data;
    session->data.reset();
    data_conn->send(it->second);
    data_conn->close();
    control.send("226 Transfer complete\r\n");
    return;
  }
  if (cmd == "stor") {
    if (!session->data) {
      control.send("425 Use PASV first\r\n");
      return;
    }
    control.send("150 Ready for upload\r\n");
    session->upload_path = arg;
    session->upload_buffer.clear();
    return;
  }
  control.send("502 Command not implemented\r\n");
}

}  // namespace gq::svc
