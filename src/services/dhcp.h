// DHCP (RFC 2131 subset): wire format, lease-pool policy, and a client
// that drives a HostStack's boot-time configuration. GQ's gateway
// "dynamically assigns internal addresses from RFC 1918 space, triggered
// by the inmates' boot-time chatter" (§5.3) — the protocol and pool
// logic here are pure so both the gateway's in-path DHCP responder and
// the raw-iron controller's standalone server reuse them.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "net/stack.h"
#include "util/addr.h"

namespace gq::svc {

/// The DHCP message types the farm uses.
enum class DhcpType : std::uint8_t {
  kDiscover = 1,
  kOffer = 2,
  kRequest = 3,
  kAck = 5,
  kNak = 6,
};

/// Decoded DHCP message (BOOTP header + the options we care about).
struct DhcpMessage {
  bool is_reply = false;  // BOOTP op: false=BOOTREQUEST, true=BOOTREPLY.
  std::uint32_t xid = 0;
  util::MacAddr client_mac;
  util::Ipv4Addr ciaddr;  // Client's current address (renewals).
  util::Ipv4Addr yiaddr;  // "Your" address (in replies).
  DhcpType type = DhcpType::kDiscover;
  std::optional<util::Ipv4Addr> requested_ip;   // Option 50.
  std::optional<util::Ipv4Addr> server_id;      // Option 54.
  std::optional<util::Ipv4Addr> subnet_mask;    // Option 1.
  std::optional<util::Ipv4Addr> router;         // Option 3.
  std::optional<util::Ipv4Addr> dns;            // Option 6.

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<DhcpMessage> parse(std::span<const std::uint8_t> data);
};

/// What a DHCP responder hands out.
struct DhcpLeaseConfig {
  util::Ipv4Net subnet;
  util::Ipv4Addr router;
  util::Ipv4Addr dns;
  util::Ipv4Addr server_id;
};

/// Pure lease-pool + protocol policy: feed it inbound client messages,
/// get the reply (if any). Used in-path by the gateway and by the
/// standalone DhcpServer below. Assignment is first-free from the pool,
/// sticky per client MAC.
class DhcpPool {
 public:
  /// Hands out subnet.host(first)..subnet.host(last) inclusive.
  DhcpPool(DhcpLeaseConfig config, std::uint32_t first, std::uint32_t last);

  /// Process a client message; returns the reply to broadcast, if any.
  std::optional<DhcpMessage> handle(const DhcpMessage& request);

  /// The address currently bound to `mac`, if any.
  [[nodiscard]] std::optional<util::Ipv4Addr> lease_of(
      util::MacAddr mac) const;

  /// Release a client's lease (inmate destroyed).
  void release(util::MacAddr mac);

  [[nodiscard]] const DhcpLeaseConfig& config() const { return config_; }
  [[nodiscard]] std::size_t leases_in_use() const { return by_mac_.size(); }

 private:
  std::optional<util::Ipv4Addr> allocate(util::MacAddr mac);

  DhcpLeaseConfig config_;
  std::uint32_t first_, last_;
  std::map<util::MacAddr, util::Ipv4Addr> by_mac_;
  std::map<util::Ipv4Addr, util::MacAddr> by_addr_;
};

/// Standalone DHCP server bound to a HostStack (used on the raw-iron
/// controller network, §6.4).
class DhcpServer {
 public:
  DhcpServer(net::HostStack& stack, DhcpPool pool);

  [[nodiscard]] DhcpPool& pool() { return pool_; }

 private:
  net::HostStack& stack_;
  DhcpPool pool_;
  std::shared_ptr<net::UdpSocket> sock_;
};

/// DHCP client: performs DISCOVER/OFFER/REQUEST/ACK and configures the
/// stack with the result. Retries with backoff until it succeeds.
class DhcpClient {
 public:
  using ConfiguredHandler = std::function<void(const net::Ipv4Config&)>;

  DhcpClient(net::HostStack& stack, ConfiguredHandler on_configured);

  /// Begin (or restart) acquisition.
  void start();

  [[nodiscard]] bool bound() const { return bound_; }

 private:
  void send_discover();
  void handle_datagram(std::span<const std::uint8_t> data);

  net::HostStack& stack_;
  ConfiguredHandler on_configured_;
  std::shared_ptr<net::UdpSocket> sock_;
  std::uint32_t xid_ = 0;
  bool bound_ = false;
  int attempts_ = 0;
  /// Liveness token: the client is destroyed on inmate reboot/revert
  /// while retry timers may still be pending.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace gq::svc
