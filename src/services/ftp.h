// Minimal FTP server (RFC 959 subset: USER/PASS, TYPE, PASV, RETR, STOR,
// QUIT) with an in-memory filesystem. Exists to reproduce the paper's
// "unexpected visitors" episode (§7.1): an upstream Storm botmaster used
// proxy bots to log into FTP servers, fetch an HTML file and re-upload
// it with a malicious iframe injected. The victim FTP server in the
// simulated Internet is one of these.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/stack.h"
#include "net/tcp.h"

namespace gq::svc {

class FtpServer {
 public:
  /// Serves `files` (path -> contents); credentials checked against the
  /// given user/pass ("anonymous" access when both empty).
  FtpServer(net::HostStack& stack, std::uint16_t port, std::string user,
            std::string pass);

  /// The in-memory filesystem (inspectable by tests: a successful iframe
  /// injection shows up as a modified file here).
  std::map<std::string, std::string>& files() { return files_; }

  [[nodiscard]] std::uint64_t logins() const { return logins_; }
  [[nodiscard]] std::uint64_t retrievals() const { return retrievals_; }
  [[nodiscard]] std::uint64_t stores() const { return stores_; }

 private:
  struct Session;

  void handle_command(std::shared_ptr<Session> session,
                      const std::string& line);
  void open_pasv(std::shared_ptr<Session> session);

  net::HostStack& stack_;
  std::string user_, pass_;
  std::map<std::string, std::string> files_;
  std::uint64_t logins_ = 0;
  std::uint64_t retrievals_ = 0;
  std::uint64_t stores_ = 0;
};

}  // namespace gq::svc
