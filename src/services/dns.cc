#include "services/dns.h"

#include "util/bytes.h"
#include "util/glob.h"
#include "util/log.h"
#include "util/strings.h"

namespace gq::svc {

namespace {

constexpr const char* kLog = "dns";

// Encode a dotted name as DNS labels.
void encode_name(util::ByteWriter& w, const std::string& name) {
  for (const auto& label : util::split(name, '.')) {
    w.u8(static_cast<std::uint8_t>(label.size()));
    w.str(label);
  }
  w.u8(0);
}

// Decode labels at the reader's position (no compression-pointer support
// needed: we never emit pointers).
std::optional<std::string> decode_name(util::ByteReader& r) {
  std::string name;
  for (;;) {
    const std::uint8_t len = r.u8();
    if (len == 0) break;
    if (len >= 0xC0) return std::nullopt;  // Compression unsupported.
    if (!name.empty()) name += '.';
    name += r.str(len);
  }
  return util::to_lower(name);
}

}  // namespace

std::vector<std::uint8_t> DnsMessage::encode() const {
  util::ByteWriter w(64);
  w.u16(id);
  std::uint16_t flags = 0;
  if (is_response) flags |= 0x8000;
  if (recursion_desired) flags |= 0x0100;
  if (is_response) flags |= 0x0080;  // RA.
  flags |= rcode & 0x0F;
  w.u16(flags);
  w.u16(1);  // QDCOUNT.
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(0);  // NSCOUNT.
  w.u16(0);  // ARCOUNT.
  encode_name(w, qname);
  w.u16(qtype);
  w.u16(1);  // QCLASS IN.
  for (const auto& addr : answers) {
    encode_name(w, qname);
    w.u16(1);   // TYPE A.
    w.u16(1);   // CLASS IN.
    w.u32(60);  // TTL.
    w.u16(4);
    w.u32(addr.value());
  }
  return w.take();
}

std::optional<DnsMessage> DnsMessage::parse(
    std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    DnsMessage msg;
    msg.id = r.u16();
    const std::uint16_t flags = r.u16();
    msg.is_response = flags & 0x8000;
    msg.recursion_desired = flags & 0x0100;
    msg.rcode = flags & 0x0F;
    const std::uint16_t qdcount = r.u16();
    const std::uint16_t ancount = r.u16();
    r.skip(4);  // NSCOUNT + ARCOUNT.
    if (qdcount != 1) return std::nullopt;
    auto qname = decode_name(r);
    if (!qname) return std::nullopt;
    msg.qname = *qname;
    msg.qtype = r.u16();
    r.skip(2);  // QCLASS.
    for (std::uint16_t i = 0; i < ancount; ++i) {
      auto name = decode_name(r);
      if (!name) return std::nullopt;
      const std::uint16_t type = r.u16();
      r.skip(2 + 4);  // CLASS + TTL.
      const std::uint16_t rdlen = r.u16();
      if (type == 1 && rdlen == 4) {
        msg.answers.emplace_back(r.u32());
      } else {
        r.skip(rdlen);
      }
    }
    return msg;
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
}

DnsServer::DnsServer(net::HostStack& stack, std::uint16_t port)
    : stack_(stack) {
  sock_ = stack_.udp_open(port);
  sock_->on_datagram = [this](util::Endpoint from,
                              std::vector<std::uint8_t> data) {
    handle(from, std::move(data));
  };
}

void DnsServer::add_record(std::string name, util::Ipv4Addr addr) {
  records_.emplace_back(util::to_lower(name), addr);
}

void DnsServer::remove_record(const std::string& name) {
  const std::string lower = util::to_lower(name);
  std::erase_if(records_, [&](const auto& r) { return r.first == lower; });
}

void DnsServer::handle(util::Endpoint from, std::vector<std::uint8_t> data) {
  auto query = DnsMessage::parse(data);
  if (!query || query->is_response) return;
  ++queries_;
  DnsMessage response = *query;
  response.is_response = true;
  response.answers.clear();
  for (const auto& [pattern, addr] : records_) {
    if (pattern == query->qname ||
        util::glob_match(pattern, query->qname)) {
      response.answers.push_back(addr);
    }
  }
  response.rcode = response.answers.empty() ? 3 : 0;  // NXDOMAIN : NOERROR.
  sock_->send_to(from, response.encode());
}

DnsForwarder::DnsForwarder(net::HostStack& stack, util::Endpoint upstream)
    : stack_(stack), upstream_(upstream) {
  server_sock_ = stack_.udp_open(53);
  server_sock_->on_datagram = [this](util::Endpoint from,
                                     std::vector<std::uint8_t> data) {
    handle_client(from, std::move(data));
  };
  upstream_sock_ = stack_.udp_open(0);
  upstream_sock_->on_datagram = [this](util::Endpoint,
                                       std::vector<std::uint8_t> data) {
    handle_upstream(std::move(data));
  };
}

void DnsForwarder::handle_client(util::Endpoint from,
                                 std::vector<std::uint8_t> data) {
  auto query = DnsMessage::parse(data);
  if (!query || query->is_response) return;

  if (auto it = cache_.find(query->qname); it != cache_.end()) {
    ++cache_hits_;
    DnsMessage response = *query;
    response.is_response = true;
    response.answers = it->second;
    response.rcode = response.answers.empty() ? 3 : 0;
    server_sock_->send_to(from, response.encode());
    return;
  }

  const std::uint16_t upstream_id = next_id_++;
  pending_[upstream_id] = Pending{from, query->id};
  DnsMessage forwarded = *query;
  forwarded.id = upstream_id;
  upstream_sock_->send_to(upstream_, forwarded.encode());
  ++forwarded_;
}

void DnsForwarder::handle_upstream(std::vector<std::uint8_t> data) {
  auto response = DnsMessage::parse(data);
  if (!response || !response->is_response) return;
  auto it = pending_.find(response->id);
  if (it == pending_.end()) return;
  const Pending pending = it->second;
  pending_.erase(it);
  cache_[response->qname] = response->answers;
  response->id = pending.client_id;
  server_sock_->send_to(pending.client, response->encode());
}

StubResolver::StubResolver(net::HostStack& stack) : stack_(stack) {
  sock_ = stack_.udp_open(0);
  sock_->on_datagram = [this](util::Endpoint, std::vector<std::uint8_t> data) {
    handle(std::move(data));
  };
}

void StubResolver::resolve(const std::string& name, Callback callback) {
  const std::uint16_t id = next_id_++;
  pending_[id] = Query{util::to_lower(name), std::move(callback), 0};
  send_query(id);
}

void StubResolver::send_query(std::uint16_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  auto& query = it->second;
  if (query.attempts++ >= 3) {
    auto cb = std::move(query.callback);
    pending_.erase(it);
    GQ_DEBUG(kLog, "%s: resolve %s timed out", stack_.name().c_str(),
             query.name.c_str());
    if (cb) cb(std::nullopt);
    return;
  }
  DnsMessage msg;
  msg.id = id;
  msg.qname = query.name;
  const util::Ipv4Addr server = stack_.config().dns;
  if (server.is_unspecified()) {
    auto cb = std::move(query.callback);
    pending_.erase(it);
    if (cb) cb(std::nullopt);
    return;
  }
  sock_->send_to({server, 53}, msg.encode());
  ++sent_;
  stack_.loop().schedule_in(util::seconds(2),
                            [this, id, weak = std::weak_ptr<bool>(alive_)] {
                              if (!weak.expired()) send_query(id);
                            });
}

void StubResolver::handle(std::vector<std::uint8_t> data) {
  auto response = DnsMessage::parse(data);
  if (!response || !response->is_response) return;
  auto it = pending_.find(response->id);
  if (it == pending_.end()) return;
  auto cb = std::move(it->second.callback);
  pending_.erase(it);
  if (cb) {
    if (response->rcode == 0 && !response->answers.empty())
      cb(response->answers.front());
    else
      cb(std::nullopt);
  }
}

}  // namespace gq::svc
