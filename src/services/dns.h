// DNS (RFC 1035 subset): message encode/parse for A queries, an
// authoritative server with a static zone, a forwarding resolver (the
// "recursive DNS resolver" GQ places on the inmate network, §5.3), and a
// stub resolver for client hosts. DGA-style malware exercises this stack
// heavily: generated names resolve (or NXDOMAIN) through the farm
// resolver to the simulated Internet's DNS.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/stack.h"
#include "util/addr.h"

namespace gq::svc {

/// A decoded DNS message (queries and A-record responses).
struct DnsMessage {
  std::uint16_t id = 0;
  bool is_response = false;
  bool recursion_desired = true;
  std::uint8_t rcode = 0;  // 0=NOERROR, 3=NXDOMAIN.
  std::string qname;       // Single question, lowercase, no trailing dot.
  std::uint16_t qtype = 1;  // A.
  std::vector<util::Ipv4Addr> answers;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static std::optional<DnsMessage> parse(std::span<const std::uint8_t> data);
};

/// Authoritative DNS server over a static zone; unknown names get
/// NXDOMAIN. Supports glob patterns in record names ("*.cc.example").
class DnsServer {
 public:
  DnsServer(net::HostStack& stack, std::uint16_t port = 53);

  /// Add an exact or glob record.
  void add_record(std::string name, util::Ipv4Addr addr);
  void remove_record(const std::string& name);

  [[nodiscard]] std::uint64_t queries_served() const { return queries_; }

 private:
  void handle(util::Endpoint from, std::vector<std::uint8_t> data);

  net::HostStack& stack_;
  std::shared_ptr<net::UdpSocket> sock_;
  std::vector<std::pair<std::string, util::Ipv4Addr>> records_;
  std::uint64_t queries_ = 0;
};

/// Forwarding resolver: relays client queries to an upstream server and
/// relays the answers back (with a small cache). This is the inmate
/// network's "recursive resolver" — inmates only ever talk to it, the
/// resolver talks to the simulated Internet.
class DnsForwarder {
 public:
  DnsForwarder(net::HostStack& stack, util::Endpoint upstream);

  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }
  [[nodiscard]] std::uint64_t cache_hits() const { return cache_hits_; }

 private:
  struct Pending {
    util::Endpoint client;
    std::uint16_t client_id;
  };

  void handle_client(util::Endpoint from, std::vector<std::uint8_t> data);
  void handle_upstream(std::vector<std::uint8_t> data);

  net::HostStack& stack_;
  util::Endpoint upstream_;
  std::shared_ptr<net::UdpSocket> server_sock_;
  std::shared_ptr<net::UdpSocket> upstream_sock_;
  std::map<std::uint16_t, Pending> pending_;  // Upstream id -> client.
  std::map<std::string, std::vector<util::Ipv4Addr>> cache_;
  std::uint16_t next_id_ = 1;
  std::uint64_t forwarded_ = 0;
  std::uint64_t cache_hits_ = 0;
};

/// Client-side resolver: asks the stack's configured DNS server, with
/// timeout + retry. Callback receives nullopt on NXDOMAIN or timeout.
class StubResolver {
 public:
  using Callback = std::function<void(std::optional<util::Ipv4Addr>)>;

  explicit StubResolver(net::HostStack& stack);

  void resolve(const std::string& name, Callback callback);

  [[nodiscard]] std::uint64_t queries_sent() const { return sent_; }

 private:
  struct Query {
    std::string name;
    Callback callback;
    int attempts = 0;
  };

  void send_query(std::uint16_t id);
  void handle(std::vector<std::uint8_t> data);

  net::HostStack& stack_;
  std::shared_ptr<net::UdpSocket> sock_;
  std::map<std::uint16_t, Query> pending_;
  std::uint16_t next_id_ = 1;
  std::uint64_t sent_ = 0;
  /// Liveness token: retry timers become no-ops after destruction (the
  /// resolver is owned by behaviours that die on revert/reinfection).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace gq::svc
