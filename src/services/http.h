// Minimal HTTP/1.1: message types, incremental parsers, a server and a
// client. HTTP is the lingua franca of the malware GQ studies — C&C
// polls, auto-infection downloads (§6.6), clickbot traffic — and the
// containment server's REWRITE proxies parse and rewrite it in-path
// (Figure 5 rewrites "GET bot.exe" into "GET cleanup.exe").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/stack.h"
#include "net/tcp.h"

namespace gq::svc {

/// An HTTP request line + headers + body.
struct HttpRequest {
  std::string method = "GET";
  std::string path = "/";
  std::string version = "HTTP/1.1";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  [[nodiscard]] std::optional<std::string> header(
      const std::string& name) const;
  void set_header(const std::string& name, const std::string& value);
  [[nodiscard]] std::string encode() const;
};

/// An HTTP response.
struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  [[nodiscard]] std::optional<std::string> header(
      const std::string& name) const;
  void set_header(const std::string& name, const std::string& value);
  [[nodiscard]] std::string encode() const;

  /// Convenience factory with Content-Length set.
  static HttpResponse make(int status, std::string reason, std::string body,
                           std::string content_type = "text/plain");
};

/// Incremental parser: feed() bytes as they arrive; when a complete
/// message is available, take() returns it and parsing continues with
/// any remaining bytes (pipelined / keep-alive traffic). Framing is via
/// Content-Length (or none: headers-only messages complete immediately).
template <typename Message>
class HttpParser {
 public:
  /// Append raw stream bytes.
  void feed(std::span<const std::uint8_t> data);

  /// Extract the next complete message, if any.
  std::optional<Message> take();

  /// True once malformed input was seen; the stream should be dropped.
  [[nodiscard]] bool failed() const { return failed_; }

 private:
  bool try_parse_header();

  std::string buffer_;
  std::optional<Message> in_progress_;
  std::size_t body_needed_ = 0;
  bool failed_ = false;
};

using HttpRequestParser = HttpParser<HttpRequest>;
using HttpResponseParser = HttpParser<HttpResponse>;

/// HTTP server on a HostStack. The handler maps request -> response;
/// connections are kept alive for sequential requests.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(
      const HttpRequest&, util::Endpoint client)>;

  HttpServer(net::HostStack& stack, std::uint16_t port, Handler handler);

  [[nodiscard]] std::uint64_t requests_served() const { return requests_; }

 private:
  net::HostStack& stack_;
  Handler handler_;
  std::uint64_t requests_ = 0;
};

/// One-shot HTTP client: connect, send request, invoke callback with the
/// response (nullopt on connection failure/reset/timeout).
class HttpClient {
 public:
  using Callback = std::function<void(std::optional<HttpResponse>)>;

  /// Fetch `request` from `server`. The connection closes after the
  /// response arrives.
  static void fetch(net::HostStack& stack, util::Endpoint server,
                    HttpRequest request, Callback callback);
};

}  // namespace gq::svc
