#include "services/dhcp.h"

#include "util/bytes.h"
#include "util/log.h"

namespace gq::svc {

namespace {

constexpr const char* kLog = "dhcp";
constexpr std::uint32_t kDhcpMagic = 0x63825363;
constexpr std::uint8_t kOptSubnetMask = 1;
constexpr std::uint8_t kOptRouter = 3;
constexpr std::uint8_t kOptDns = 6;
constexpr std::uint8_t kOptRequestedIp = 50;
constexpr std::uint8_t kOptMessageType = 53;
constexpr std::uint8_t kOptServerId = 54;
constexpr std::uint8_t kOptEnd = 255;

void put_addr_option(util::ByteWriter& w, std::uint8_t code,
                     util::Ipv4Addr addr) {
  w.u8(code);
  w.u8(4);
  w.u32(addr.value());
}

}  // namespace

std::vector<std::uint8_t> DhcpMessage::encode() const {
  util::ByteWriter w(300);
  w.u8(is_reply ? 2 : 1);  // op
  w.u8(1);                 // htype: Ethernet
  w.u8(6);                 // hlen
  w.u8(0);                 // hops
  w.u32(xid);
  w.u16(0);       // secs
  w.u16(0x8000);  // flags: broadcast
  w.u32(ciaddr.value());
  w.u32(yiaddr.value());
  w.u32(0);  // siaddr
  w.u32(0);  // giaddr
  w.bytes(std::span<const std::uint8_t>(client_mac.bytes().data(), 6));
  w.zeros(10);   // chaddr padding
  w.zeros(64);   // sname
  w.zeros(128);  // file
  w.u32(kDhcpMagic);
  w.u8(kOptMessageType);
  w.u8(1);
  w.u8(static_cast<std::uint8_t>(type));
  if (requested_ip) put_addr_option(w, kOptRequestedIp, *requested_ip);
  if (server_id) put_addr_option(w, kOptServerId, *server_id);
  if (subnet_mask) put_addr_option(w, kOptSubnetMask, *subnet_mask);
  if (router) put_addr_option(w, kOptRouter, *router);
  if (dns) put_addr_option(w, kOptDns, *dns);
  w.u8(kOptEnd);
  return w.take();
}

std::optional<DhcpMessage> DhcpMessage::parse(
    std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    DhcpMessage msg;
    const std::uint8_t op = r.u8();
    if (op != 1 && op != 2) return std::nullopt;
    msg.is_reply = (op == 2);
    if (r.u8() != 1 || r.u8() != 6) return std::nullopt;
    r.skip(1);  // hops
    msg.xid = r.u32();
    r.skip(4);  // secs + flags
    msg.ciaddr = util::Ipv4Addr(r.u32());
    msg.yiaddr = util::Ipv4Addr(r.u32());
    r.skip(8);  // siaddr + giaddr
    auto mac_bytes = r.bytes(6);
    std::array<std::uint8_t, 6> arr;
    std::copy(mac_bytes.begin(), mac_bytes.end(), arr.begin());
    msg.client_mac = util::MacAddr(arr);
    r.skip(10 + 64 + 128);
    if (r.u32() != kDhcpMagic) return std::nullopt;
    while (r.remaining() > 0) {
      const std::uint8_t code = r.u8();
      if (code == kOptEnd) break;
      if (code == 0) continue;  // Pad.
      const std::uint8_t len = r.u8();
      auto value = r.bytes(len);
      auto as_addr = [&]() -> std::optional<util::Ipv4Addr> {
        if (len != 4) return std::nullopt;
        return util::Ipv4Addr((std::uint32_t{value[0]} << 24) |
                              (std::uint32_t{value[1]} << 16) |
                              (std::uint32_t{value[2]} << 8) |
                              std::uint32_t{value[3]});
      };
      switch (code) {
        case kOptMessageType:
          if (len == 1) msg.type = static_cast<DhcpType>(value[0]);
          break;
        case kOptRequestedIp: msg.requested_ip = as_addr(); break;
        case kOptServerId: msg.server_id = as_addr(); break;
        case kOptSubnetMask: msg.subnet_mask = as_addr(); break;
        case kOptRouter: msg.router = as_addr(); break;
        case kOptDns: msg.dns = as_addr(); break;
        default: break;
      }
    }
    return msg;
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
}

DhcpPool::DhcpPool(DhcpLeaseConfig config, std::uint32_t first,
                   std::uint32_t last)
    : config_(config), first_(first), last_(last) {}

std::optional<util::Ipv4Addr> DhcpPool::allocate(util::MacAddr mac) {
  if (auto it = by_mac_.find(mac); it != by_mac_.end()) return it->second;
  for (std::uint32_t i = first_; i <= last_; ++i) {
    const util::Ipv4Addr candidate = config_.subnet.host(i);
    if (!by_addr_.count(candidate)) {
      by_mac_[mac] = candidate;
      by_addr_[candidate] = mac;
      return candidate;
    }
  }
  return std::nullopt;  // Pool exhausted.
}

std::optional<DhcpMessage> DhcpPool::handle(const DhcpMessage& request) {
  if (request.is_reply) return std::nullopt;
  DhcpMessage reply;
  reply.is_reply = true;
  reply.xid = request.xid;
  reply.client_mac = request.client_mac;
  reply.server_id = config_.server_id;
  reply.subnet_mask = util::Ipv4Addr(config_.subnet.mask());
  reply.router = config_.router;
  reply.dns = config_.dns;

  switch (request.type) {
    case DhcpType::kDiscover: {
      auto addr = allocate(request.client_mac);
      if (!addr) {
        GQ_WARN(kLog, "pool exhausted for %s",
                request.client_mac.str().c_str());
        return std::nullopt;
      }
      reply.type = DhcpType::kOffer;
      reply.yiaddr = *addr;
      return reply;
    }
    case DhcpType::kRequest: {
      auto bound = lease_of(request.client_mac);
      const auto wanted = request.requested_ip
                              ? request.requested_ip
                              : std::optional<util::Ipv4Addr>(request.ciaddr);
      if (bound && wanted && *bound == *wanted) {
        reply.type = DhcpType::kAck;
        reply.yiaddr = *bound;
      } else {
        reply.type = DhcpType::kNak;
      }
      return reply;
    }
    default:
      return std::nullopt;
  }
}

std::optional<util::Ipv4Addr> DhcpPool::lease_of(util::MacAddr mac) const {
  if (auto it = by_mac_.find(mac); it != by_mac_.end()) return it->second;
  return std::nullopt;
}

void DhcpPool::release(util::MacAddr mac) {
  if (auto it = by_mac_.find(mac); it != by_mac_.end()) {
    by_addr_.erase(it->second);
    by_mac_.erase(it);
  }
}

DhcpServer::DhcpServer(net::HostStack& stack, DhcpPool pool)
    : stack_(stack), pool_(std::move(pool)) {
  sock_ = stack_.udp_open(67);
  sock_->on_datagram = [this](util::Endpoint,
                              std::vector<std::uint8_t> data) {
    auto request = DhcpMessage::parse(data);
    if (!request) return;
    if (auto reply = pool_.handle(*request)) {
      // Replies go to the client port via broadcast (client has no IP yet).
      sock_->send_broadcast(68, reply->encode());
    }
  };
}

DhcpClient::DhcpClient(net::HostStack& stack, ConfiguredHandler on_configured)
    : stack_(stack), on_configured_(std::move(on_configured)) {}

void DhcpClient::start() {
  bound_ = false;
  attempts_ = 0;
  sock_ = stack_.udp_open(68);
  sock_->on_datagram = [this](util::Endpoint,
                              std::vector<std::uint8_t> data) {
    handle_datagram(data);
  };
  send_discover();
}

void DhcpClient::send_discover() {
  if (bound_) return;
  if (attempts_++ > 10) {
    GQ_WARN(kLog, "%s: DHCP giving up", stack_.name().c_str());
    return;
  }
  xid_ = static_cast<std::uint32_t>(stack_.rng().next());
  DhcpMessage discover;
  discover.type = DhcpType::kDiscover;
  discover.xid = xid_;
  discover.client_mac = stack_.mac();
  sock_->send_broadcast(67, discover.encode());
  stack_.loop().schedule_in(util::seconds(2 * attempts_),
                            [this, weak = std::weak_ptr<bool>(alive_)] {
                              if (!weak.expired() && !bound_)
                                send_discover();
                            });
}

void DhcpClient::handle_datagram(std::span<const std::uint8_t> data) {
  auto msg = DhcpMessage::parse(data);
  if (!msg || !msg->is_reply || msg->xid != xid_ || bound_) return;
  if (msg->client_mac != stack_.mac()) return;

  if (msg->type == DhcpType::kOffer) {
    DhcpMessage request;
    request.type = DhcpType::kRequest;
    request.xid = xid_;
    request.client_mac = stack_.mac();
    request.requested_ip = msg->yiaddr;
    request.server_id = msg->server_id;
    sock_->send_broadcast(67, request.encode());
    return;
  }
  if (msg->type == DhcpType::kAck) {
    bound_ = true;
    net::Ipv4Config config;
    config.addr = msg->yiaddr;
    int prefix = 24;
    if (msg->subnet_mask) {
      prefix = 0;
      for (std::uint32_t m = msg->subnet_mask->value(); m & 0x80000000u;
           m <<= 1)
        ++prefix;
    }
    config.subnet = util::Ipv4Net(msg->yiaddr, prefix);
    config.gateway = msg->router.value_or(util::Ipv4Addr());
    config.dns = msg->dns.value_or(util::Ipv4Addr());
    stack_.configure(config);
    GQ_INFO(kLog, "%s: bound %s", stack_.name().c_str(),
            config.addr.str().c_str());
    if (on_configured_) on_configured_(config);
  }
}

}  // namespace gq::svc
