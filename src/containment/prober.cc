#include "containment/prober.h"

#include <map>

#include "util/strings.h"

namespace gq::cs {

PolicyProber::PolicyProber(std::shared_ptr<Policy> policy)
    : policy_(std::move(policy)) {
  // Default matrix: the service ports malware traffic concentrates on,
  // against a spread of outside destinations.
  ports_ = {21, 22, 25, 53, 80, 110, 135, 139, 443, 445, 587,
            1433, 3389, 6667, 8080};
  destinations_ = {
      util::Ipv4Addr(8, 8, 8, 8),        util::Ipv4Addr(64, 12, 88, 7),
      util::Ipv4Addr(91, 207, 6, 10),    util::Ipv4Addr(192, 150, 187, 12),
      util::Ipv4Addr(203, 0, 113, 99),
  };
}

void PolicyProber::add_port(std::uint16_t port) { ports_.push_back(port); }

void PolicyProber::add_destination(util::Ipv4Addr addr) {
  destinations_.push_back(addr);
}

void PolicyProber::clear_matrix() {
  ports_.clear();
  destinations_.clear();
}

void PolicyProber::expect(const FlowPattern& pattern,
                          std::set<shim::Verdict> allowed,
                          std::string rationale) {
  expectations_.push_back(
      Expectation{pattern, std::move(allowed), std::move(rationale)});
}

void PolicyProber::expect_no_spam_escape() {
  auto smtp = FlowPattern::parse("*:25/tcp");
  expect(*smtp,
         {shim::Verdict::kReflect, shim::Verdict::kDrop,
          shim::Verdict::kRedirect, shim::Verdict::kRewrite},
         "direct SMTP delivery must never leave the farm unfiltered");
  auto submission = FlowPattern::parse("*:587/tcp");
  expect(*submission,
         {shim::Verdict::kReflect, shim::Verdict::kDrop,
          shim::Verdict::kRedirect, shim::Verdict::kRewrite},
         "mail submission must never leave the farm unfiltered");
}

const std::vector<PolicyProber::Probe>& PolicyProber::run(
    std::uint16_t vlan) {
  probes_.clear();
  violations_.clear();
  for (const auto proto : {pkt::FlowProto::kTcp, pkt::FlowProto::kUdp}) {
    for (const auto& dst : destinations_) {
      for (const auto port : ports_) {
        FlowInfo info;
        info.proto = proto;
        info.shim.orig = {util::Ipv4Addr(10, 0, 0, 23), 1234};
        info.shim.resp = {dst, port};
        info.shim.vlan = vlan;
        Probe probe{info, policy_->decide(info)};
        for (const auto& expectation : expectations_) {
          if (expectation.pattern.matches(info.dst(), proto) &&
              !expectation.allowed.count(probe.decision.verdict)) {
            violations_.push_back(Violation{probe, expectation});
          }
        }
        probes_.push_back(std::move(probe));
      }
    }
  }
  return probes_;
}

std::string PolicyProber::render_card() const {
  std::string out;
  out += util::format("Policy test card: %s\n", policy_->name().c_str());
  out += std::string(60, '=') + "\n";

  // Verdict histogram.
  std::map<shim::Verdict, int> histogram;
  for (const auto& probe : probes_) ++histogram[probe.decision.verdict];
  out += "Verdict distribution over the probe matrix:\n";
  for (const auto& [verdict, count] : histogram) {
    out += util::format("  %-9s %4d / %zu\n", shim::verdict_name(verdict),
                        count, probes_.size());
  }

  // Per-port summary (collapsing destinations when uniform).
  out += "\nPer-port decisions (TCP):\n";
  std::map<std::uint16_t, std::set<shim::Verdict>> by_port;
  for (const auto& probe : probes_) {
    if (probe.info.proto == pkt::FlowProto::kTcp)
      by_port[probe.info.dst().port].insert(probe.decision.verdict);
  }
  for (const auto& [port, verdicts] : by_port) {
    std::string names;
    for (auto verdict : verdicts) {
      if (!names.empty()) names += ",";
      names += shim::verdict_name(verdict);
    }
    out += util::format("  port %-5u -> %s\n", port, names.c_str());
  }

  if (violations_.empty()) {
    out += util::format("\nExpectations: %zu declared, 0 violated.\n",
                        expectations_.size());
  } else {
    out += util::format("\n!! %zu EXPECTATION VIOLATIONS:\n",
                        violations_.size());
    for (const auto& violation : violations_) {
      out += util::format(
          "  %s %s -> %s  (violates: %s)\n",
          violation.probe.info.proto == pkt::FlowProto::kTcp ? "tcp" : "udp",
          violation.probe.info.dst().str().c_str(),
          shim::verdict_name(violation.probe.decision.verdict),
          violation.expectation.rationale.c_str());
    }
  }
  return out;
}

}  // namespace gq::cs
