// Containment-server configuration file (paper §6.2, Figure 6). The
// file binds VLAN ranges to policies ("Decider") and infection batches
// ("Infection"), declares activity triggers, and locates infrastructure
// services in the subfarm:
//
//     [VLAN 16-17]
//     Decider = Rustock
//     Infection = rustock.100921.*.exe
//
//     [VLAN 16-19]
//     Trigger = *:25/tcp / 30min < 1 -> revert
//
//     [Autoinfect]
//     Address = 10.9.8.7
//     Port = 6543
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "containment/trigger.h"
#include "util/addr.h"

namespace gq::cs {

struct VlanRange {
  std::uint16_t first = 0;
  std::uint16_t last = 0;
  [[nodiscard]] bool contains(std::uint16_t vlan) const {
    return vlan >= first && vlan <= last;
  }
};

/// Fully parsed configuration.
struct ContainmentConfig {
  struct Binding {
    VlanRange range;
    std::string decider;         // Policy name.
    std::string infection_glob;  // Optional batch of samples.
  };
  struct TriggerBinding {
    VlanRange range;
    Trigger trigger;
    std::string raw;
  };

  /// [FailClosed] — what the *gateway* enforces when this subfarm's CS
  /// stays unreachable past the verdict deadline:
  ///
  ///     [FailClosed]
  ///     Verdict = REFLECT          ; DROP (default) or REFLECT
  ///     DeadlineMs = 20000         ; 0 keeps the gateway default
  ///     ReflectService = catchall  ; service section naming the sink
  struct FailClosed {
    std::string verdict;          // "DROP" / "REFLECT" (case-insensitive).
    std::int64_t deadline_ms = 0;
    std::string reflect_service;
  };

  /// [Overload] — the CS's shedding knob:
  ///
  ///     [Overload]
  ///     QueueDepth = 64            ; shed beyond this many queued verdicts
  ///     Mode = refuse              ; "defer" (default) or "refuse"
  ///     DecisionDelayMs = 5        ; simulated per-decision service time
  struct Overload {
    std::int64_t queue_depth = 0;
    std::string mode = "defer";
    std::int64_t decision_delay_ms = 0;
  };

  std::vector<Binding> bindings;
  std::vector<TriggerBinding> triggers;
  /// Service sections ("autoinfect", "bannersmtpsink", ...) -> endpoint.
  std::map<std::string, util::Endpoint> services;
  std::optional<FailClosed> fail_closed;
  std::optional<Overload> overload;

  /// Parse the Figure 6 format; throws std::runtime_error with a
  /// descriptive message on malformed content.
  static ContainmentConfig parse(const std::string& text);

  /// The policy binding covering `vlan`, if any (first match wins).
  [[nodiscard]] const Binding* binding_for(std::uint16_t vlan) const;
};

}  // namespace gq::cs
