#include "containment/handlers.h"

#include "containment/samples.h"
#include "util/log.h"

namespace gq::cs {

namespace {
constexpr const char* kLog = "cs.handler";
}

// --- AutoInfectHandler ------------------------------------------------------

AutoInfectHandler::AutoInfectHandler(const PolicyEnv& env) : env_(env) {}

void AutoInfectHandler::on_inmate_data(RewriteContext& ctx,
                                       std::span<const std::uint8_t> data) {
  parser_.feed(data);
  if (parser_.failed()) {
    ctx.close_inmate();
    return;
  }
  while (auto request = parser_.take()) {
    const std::uint16_t vlan = ctx.info().vlan();
    std::optional<std::string> name = env_.next_sample(vlan);
    if (!name || !env_.samples) {
      ctx.send_to_inmate(
          svc::HttpResponse::make(404, "NOT FOUND", "no sample").encode());
      continue;
    }
    auto payload = env_.samples->payload(*name);
    if (!payload) {
      ctx.send_to_inmate(
          svc::HttpResponse::make(404, "NOT FOUND", "unknown sample")
              .encode());
      continue;
    }
    auto response = svc::HttpResponse::make(
        200, "OK", *payload, "application/octet-stream");
    response.set_header("X-Sample-Name", *name);
    ctx.send_to_inmate(response.encode());
    env_.report_infection(vlan, *name, *env_.samples->md5(*name));
    GQ_INFO(kLog, "served sample %s to vlan %u", name->c_str(), vlan);
  }
}

// --- HttpFilterHandler ------------------------------------------------------

HttpFilterHandler::HttpFilterHandler(RequestFilter request_filter,
                                     ResponseFilter response_filter,
                                     svc::HttpResponse blocked_response)
    : request_filter_(std::move(request_filter)),
      response_filter_(std::move(response_filter)),
      blocked_response_(std::move(blocked_response)) {}

void HttpFilterHandler::on_inmate_data(RewriteContext& ctx,
                                       std::span<const std::uint8_t> data) {
  request_parser_.feed(data);
  if (request_parser_.failed()) {
    ctx.close_inmate();
    return;
  }
  while (auto request = request_parser_.take()) {
    std::optional<svc::HttpRequest> filtered =
        request_filter_ ? request_filter_(std::move(*request))
                        : std::move(request);
    if (!filtered) {
      ctx.send_to_inmate(blocked_response_.encode());
      continue;
    }
    outbound_queue_.push_back(filtered->encode());
  }
  pump_requests(ctx);
}

void HttpFilterHandler::pump_requests(RewriteContext& ctx) {
  if (outbound_queue_.empty()) return;
  if (!ctx.target_connected()) {
    if (!connect_requested_) {
      connect_requested_ = true;
      ctx.connect_outbound();
    }
    return;
  }
  for (const auto& encoded : outbound_queue_) ctx.send_to_target(encoded);
  outbound_queue_.clear();
}

void HttpFilterHandler::on_target_connected(RewriteContext& ctx) {
  pump_requests(ctx);
}

void HttpFilterHandler::on_target_data(RewriteContext& ctx,
                                       std::span<const std::uint8_t> data) {
  response_parser_.feed(data);
  if (response_parser_.failed()) {
    ctx.close_target();
    ctx.close_inmate();
    return;
  }
  while (auto response = response_parser_.take()) {
    svc::HttpResponse out = response_filter_
                                ? response_filter_(std::move(*response))
                                : std::move(*response);
    ctx.send_to_inmate(out.encode());
  }
}

void HttpFilterHandler::on_target_closed(RewriteContext& ctx) {
  ctx.close_inmate();
}

// --- PassthroughHandler -----------------------------------------------------

PassthroughHandler::PassthroughHandler(Tap tap_outbound, Tap tap_inbound)
    : tap_outbound_(std::move(tap_outbound)),
      tap_inbound_(std::move(tap_inbound)) {}

void PassthroughHandler::on_inmate_data(RewriteContext& ctx,
                                        std::span<const std::uint8_t> data) {
  if (tap_outbound_) tap_outbound_(data);
  if (ctx.target_connected()) {
    ctx.send_to_target(data);
    return;
  }
  pending_outbound_.insert(pending_outbound_.end(), data.begin(), data.end());
  if (!connect_requested_) {
    connect_requested_ = true;
    ctx.connect_outbound();
  }
}

void PassthroughHandler::on_target_connected(RewriteContext& ctx) {
  if (!pending_outbound_.empty()) {
    ctx.send_to_target(pending_outbound_);
    pending_outbound_.clear();
  }
}

void PassthroughHandler::on_target_data(RewriteContext& ctx,
                                        std::span<const std::uint8_t> data) {
  if (tap_inbound_) tap_inbound_(data);
  ctx.send_to_inmate(data);
}

void PassthroughHandler::on_inmate_closed(RewriteContext& ctx) {
  ctx.close_target();
}

void PassthroughHandler::on_target_closed(RewriteContext& ctx) {
  ctx.close_inmate();
}

}  // namespace gq::cs
