#include "containment/config.h"

#include <stdexcept>

#include "util/ini.h"
#include "util/strings.h"

namespace gq::cs {

namespace {

// Parse "VLAN 16-17" or "VLAN 7" section names.
std::optional<VlanRange> parse_vlan_section(const std::string& name) {
  if (!util::starts_with_icase(name, "vlan")) return std::nullopt;
  auto rest = util::trim(std::string_view(name).substr(4));
  const auto dash = rest.find('-');
  VlanRange range;
  if (dash == std::string_view::npos) {
    auto v = util::parse_int(rest);
    if (!v || *v < 0 || *v > 4095) return std::nullopt;
    range.first = range.last = static_cast<std::uint16_t>(*v);
  } else {
    auto lo = util::parse_int(rest.substr(0, dash));
    auto hi = util::parse_int(rest.substr(dash + 1));
    if (!lo || !hi || *lo < 0 || *hi > 4095 || *lo > *hi)
      return std::nullopt;
    range.first = static_cast<std::uint16_t>(*lo);
    range.last = static_cast<std::uint16_t>(*hi);
  }
  return range;
}

}  // namespace

ContainmentConfig ContainmentConfig::parse(const std::string& text) {
  ContainmentConfig config;
  const util::IniFile ini = util::IniFile::parse(text);

  for (const auto& section : ini.sections) {
    if (auto range = parse_vlan_section(section.name)) {
      Binding binding;
      binding.range = *range;
      if (auto decider = section.get("Decider")) binding.decider = *decider;
      if (auto infection = section.get("Infection"))
        binding.infection_glob = *infection;
      if (!binding.decider.empty() || !binding.infection_glob.empty())
        config.bindings.push_back(binding);
      for (const auto& raw : section.get_all("Trigger")) {
        auto trigger = Trigger::parse(raw);
        if (!trigger)
          throw std::runtime_error("malformed trigger: '" + raw + "'");
        config.triggers.push_back(TriggerBinding{*range, *trigger, raw});
      }
      continue;
    }
    if (util::to_lower(section.name) == "failclosed") {
      FailClosed fc;
      if (auto verdict = section.get("Verdict")) {
        const auto v = util::to_lower(*verdict);
        if (v != "drop" && v != "reflect")
          throw std::runtime_error("[FailClosed] Verdict must be DROP or "
                                   "REFLECT, got '" + *verdict + "'");
        fc.verdict = v;
      }
      if (auto deadline = section.get("DeadlineMs")) {
        auto ms = util::parse_int(*deadline);
        if (!ms || *ms < 0)
          throw std::runtime_error("[FailClosed] malformed DeadlineMs");
        fc.deadline_ms = *ms;
      }
      if (auto service = section.get("ReflectService"))
        fc.reflect_service = util::to_lower(*service);
      config.fail_closed = fc;
      continue;
    }
    if (util::to_lower(section.name) == "overload") {
      Overload ov;
      if (auto depth = section.get("QueueDepth")) {
        auto n = util::parse_int(*depth);
        if (!n || *n < 0)
          throw std::runtime_error("[Overload] malformed QueueDepth");
        ov.queue_depth = *n;
      }
      if (auto mode = section.get("Mode")) {
        const auto m = util::to_lower(*mode);
        if (m != "defer" && m != "refuse")
          throw std::runtime_error("[Overload] Mode must be defer or "
                                   "refuse, got '" + *mode + "'");
        ov.mode = m;
      }
      if (auto delay = section.get("DecisionDelayMs")) {
        auto ms = util::parse_int(*delay);
        if (!ms || *ms < 0)
          throw std::runtime_error("[Overload] malformed DecisionDelayMs");
        ov.decision_delay_ms = *ms;
      }
      config.overload = ov;
      continue;
    }
    // Service section: Address + Port.
    auto address = section.get("Address");
    auto port = section.get("Port");
    if (address && port) {
      auto addr = util::Ipv4Addr::parse(*address);
      auto port_num = util::parse_int(*port);
      if (!addr || !port_num || *port_num < 1 || *port_num > 65535)
        throw std::runtime_error("malformed service section [" +
                                 section.name + "]");
      config.services[util::to_lower(section.name)] =
          util::Endpoint{*addr, static_cast<std::uint16_t>(*port_num)};
    }
  }
  return config;
}

const ContainmentConfig::Binding* ContainmentConfig::binding_for(
    std::uint16_t vlan) const {
  for (const auto& binding : bindings)
    if (binding.range.contains(vlan)) return &binding;
  return nullptr;
}

}  // namespace gq::cs
