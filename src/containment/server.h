// The containment server (paper §5.4, §6.2): a standard application
// server on the management network that the gateway couples to via the
// shim protocol. It decides each flow's containment policy, conveys the
// verdict back in a response shim, acts as the transparent application-
// layer proxy for REWRITE flows (opening outbound legs through the
// gateway's nonce ports), runs the activity-trigger engine that drives
// inmate life-cycles, and sequences auto-infection batches.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "containment/config.h"
#include "containment/policy.h"
#include "containment/samples.h"
#include "containment/trigger.h"
#include "net/stack.h"
#include "net/tcp.h"
#include "obs/telemetry.h"
#include "shim/shim.h"
#include "util/addr.h"

namespace gq::cs {

/// Report-stream events emitted by the containment server. Retained as
/// the legacy view of the obs::FarmEvent stream: the server publishes
/// FarmEvents on its telemetry bus, and set_event_handler() adapts them
/// back into CsEvents for callers that still want this shape.
struct CsEvent {
  enum class Kind { kFlowDecision, kInfectionServed, kTriggerFired };
  Kind kind = Kind::kFlowDecision;
  util::TimePoint time;
  std::uint16_t vlan = 0;
  // kFlowDecision.
  util::Endpoint orig_dst;
  pkt::FlowProto proto = pkt::FlowProto::kTcp;
  shim::Verdict verdict = shim::Verdict::kDrop;
  std::string policy_name;
  std::string annotation;
  std::optional<std::int64_t> limit_bytes_per_sec;
  // kInfectionServed.
  std::string sample_name;
  std::string sample_md5;
  // kTriggerFired.
  std::string trigger_text;
  LifecycleAction action = LifecycleAction::kRevert;
};

using CsEventHandler = std::function<void(const CsEvent&)>;

/// Convert between the legacy CsEvent shape and the bus envelope.
obs::FarmEvent to_farm_event(const CsEvent& event, const std::string& subfarm);
std::optional<CsEvent> to_cs_event(const obs::FarmEvent& event);

/// Overload-shedding behaviour for a containment server. Decisions are
/// served from a queue, each occupying the server for `decision_delay`
/// of simulated service time; a request arriving while the queue
/// already holds `shed_queue_depth` entries is *shed* — either refused
/// on the spot with an explicit "OverloadShed" DROP response
/// (refuse = true) or deferred, i.e. queued anyway and answered late
/// (refuse = false). Either way the inmate's gateway leg sees an
/// explicit signal or a late verdict, never silence — shedding stays
/// distinguishable from network loss. All-defaults disables queueing
/// (decisions stay synchronous).
struct OverloadPolicy {
  util::Duration decision_delay{};
  std::size_t shed_queue_depth = 0;
  bool refuse = false;

  [[nodiscard]] bool active() const {
    return decision_delay.usec > 0 || shed_queue_depth > 0;
  }
};

class ContainmentServer : public PolicyServices {
 public:
  /// `listen_port` is the fixed port the gateway redirects flows to;
  /// `gateway_mgmt` is where nonce-port connections are dialed.
  ContainmentServer(net::HostStack& stack, std::uint16_t listen_port,
                    util::Ipv4Addr gateway_mgmt);
  ~ContainmentServer();

  ContainmentServer(const ContainmentServer&) = delete;
  ContainmentServer& operator=(const ContainmentServer&) = delete;

  /// Apply a parsed configuration file: instantiate policies for each
  /// VLAN binding, install triggers, and remember service locations.
  /// `env_base` supplies the sample library / RNG / inmate enumerator;
  /// service locations from the config are merged into it. The env's
  /// backend becomes this server (which delegates list_inmates to the
  /// env_base backend, since only the subfarm knows the inmate table).
  void configure(const ContainmentConfig& config, PolicyEnv env_base);

  /// Join the farm-wide telemetry (metrics + event bus). Standalone
  /// servers own a private Telemetry until this is called. `subfarm`
  /// names this server's scope in metric names and published events.
  void set_telemetry(obs::Telemetry* telemetry, std::string subfarm);
  [[nodiscard]] obs::Telemetry& telemetry() { return *telemetry_; }

  // --- PolicyServices (the production backend) -------------------------
  PolicyServices::InmateList list_inmates() override;
  [[nodiscard]] bool can_list_inmates() const override;
  std::optional<std::string> next_sample(std::uint16_t vlan) override;
  void report_infection(std::uint16_t vlan, const std::string& name,
                        const std::string& md5) override;
  void send_udp(util::Endpoint to, const std::string& message) override;
  /// Encode the compiled table as a shim v4 frame and push it to the
  /// gateway's management address (kTableSyncPort). The gateway fans it
  /// out to the owning subfarm's router.
  void publish_policy_table(const shim::TableSync& table) override;

  /// Bind a policy instance directly (tests / programmatic setup).
  /// Recompiles and republishes the policy table under the current
  /// epoch.
  void bind_policy(std::uint16_t vlan_first, std::uint16_t vlan_last,
                   std::shared_ptr<Policy> policy);

  /// Like bind_policy, but with precedence: policy_for() is first-match
  /// across bindings (and the compiled table preserves that order), so
  /// a front binding overrides any existing one covering the same
  /// VLANs without clearing the static configuration underneath. The
  /// detonation orchestrator uses this to swap tenant policy profiles
  /// onto a recycled slot.
  void bind_policy_front(std::uint16_t vlan_first, std::uint16_t vlan_last,
                         std::shared_ptr<Policy> policy);

  /// Compile the current policy bindings into the flat match-action
  /// table (stamped with the current policy epoch). Each binding whose
  /// policy compiles contributes its rules with the binding's VLAN range
  /// and priority; non-compilable or trigger-coupled bindings contribute
  /// one catch-all fallback rule so their flows stay on the shim path.
  [[nodiscard]] shim::TableSync compile_policy_table() const;

  /// Where life-cycle commands go (the inmate controller, §5.5).
  void set_inmate_controller(util::Endpoint controller);

  /// Install (or disable, with an all-defaults policy) overload
  /// shedding. Takes effect for subsequently arriving decisions.
  void set_overload(const OverloadPolicy& policy) { overload_ = policy; }
  [[nodiscard]] const OverloadPolicy& overload() const { return overload_; }
  [[nodiscard]] std::size_t pending_decisions() const {
    return pending_decisions_.size();
  }

  /// Life-cycle notification: arms triggers for this inmate.
  void notify_inmate_started(std::uint16_t vlan);

  /// Deprecated: thin adapter over the telemetry bus. The handler is
  /// subscribed to this server's bus and fed CsEvent conversions of the
  /// FarmEvents published here; prefer subscribing to the bus directly.
  void set_event_handler(CsEventHandler handler);

  /// The next auto-infection sample for an inmate, advancing the batch
  /// cursor. nullopt when the VLAN has no infection binding.
  std::optional<std::string> next_sample_name(std::uint16_t vlan);

  [[nodiscard]] SampleLibrary& samples() { return samples_; }
  /// Monotonically increasing policy generation, bumped by every
  /// configure(). Carried in each v3 response shim so the gateway can
  /// invalidate cached verdicts from older policy configurations.
  [[nodiscard]] std::uint64_t policy_epoch() const { return policy_epoch_; }
  [[nodiscard]] std::uint64_t flows_decided() const { return flows_decided_; }
  [[nodiscard]] std::uint64_t rewrites_active() const {
    return rewrites_active_;
  }
  [[nodiscard]] util::Endpoint endpoint() const {
    return {stack_.addr(), listen_port_};
  }

 private:
  class SessionContext;
  struct Session;

  void on_accept(std::shared_ptr<net::TcpConnection> conn);
  void on_inmate_data(std::shared_ptr<Session> session,
                      std::span<const std::uint8_t> data);
  void on_udp(util::Endpoint from, std::vector<std::uint8_t> data);
  void finish_tcp_decision(std::shared_ptr<Session> session,
                           std::vector<std::uint8_t> leftover);
  void finish_udp_decision(util::Endpoint from, shim::RequestShim request,
                           std::vector<std::uint8_t> payload);
  /// Route a decision through the overload queue (or run it inline when
  /// shedding is disabled). `refuse` is invoked instead when the queue
  /// is full and the policy says to refuse.
  void submit_decision(std::function<void()> run, std::function<void()> refuse);
  void drain_decisions();
  /// Stamp the v3 cache block onto an outgoing response: the current
  /// policy epoch plus the decision's cacheability — which is refused
  /// for kRewrite (the server must stay in-path to proxy the flow).
  void fill_cache_block(shim::ResponseShim& response,
                        const Decision& decision) const;
  std::shared_ptr<Policy> policy_for(std::uint16_t vlan);
  Decision decide(FlowInfo& info, std::shared_ptr<Policy>& policy_out,
                  std::unique_ptr<RewriteHandler>* handler_out);
  void evaluate_triggers();
  void send_lifecycle(std::uint16_t vlan, LifecycleAction action);
  void emit_event(CsEvent event);
  void rebind_metrics();

  net::HostStack& stack_;
  std::uint16_t listen_port_;
  util::Ipv4Addr gateway_mgmt_;
  std::shared_ptr<net::UdpSocket> udp_sock_;
  std::shared_ptr<net::UdpSocket> control_sock_;

  struct PolicyBinding {
    VlanRange range;
    std::shared_ptr<Policy> policy;
  };
  std::vector<PolicyBinding> policies_;
  /// VLAN ranges covered by activity triggers. A policy binding whose
  /// range intersects any of these is never compiled concretely:
  /// triggers key on decide()-observed flows, and table-served flows are
  /// invisible to the containment server.
  std::vector<VlanRange> trigger_ranges_;
  struct InfectionBinding {
    VlanRange range;
    std::vector<std::string> batch;
    std::map<std::uint16_t, std::size_t> cursor;  // Per-VLAN batch index.
  };
  std::vector<InfectionBinding> infections_;
  PolicyEnv env_;
  SampleLibrary samples_;
  TriggerEngine triggers_;
  std::optional<util::Endpoint> controller_;

  // Telemetry: farm-shared when set_telemetry() was called, private
  // otherwise. Metric handles are re-resolved on every rebind.
  std::unique_ptr<obs::Telemetry> owned_telemetry_;
  obs::Telemetry* telemetry_ = nullptr;
  std::string subfarm_name_;
  obs::Counter* decisions_ctr_ = nullptr;
  obs::Counter* infections_ctr_ = nullptr;
  obs::Counter* triggers_ctr_ = nullptr;
  obs::Gauge* rewrites_gauge_ = nullptr;
  obs::Counter* shed_refused_ctr_ = nullptr;
  obs::Counter* shed_deferred_ctr_ = nullptr;
  obs::Gauge* pending_gauge_ = nullptr;
  // Legacy set_event_handler adapter state.
  CsEventHandler legacy_handler_;
  std::optional<obs::EventBus::SubscriptionId> legacy_subscription_;
  // list_inmates delegate (the subfarm's enumerator), from env_base.
  PolicyServices* inmate_source_ = nullptr;

  // Cached UDP decisions, keyed by (orig, resp).
  std::map<std::pair<util::Endpoint, util::Endpoint>, Decision>
      udp_decisions_;

  // Overload shedding.
  OverloadPolicy overload_;
  std::deque<std::function<void()>> pending_decisions_;
  bool drain_scheduled_ = false;

  std::uint64_t flows_decided_ = 0;
  std::uint64_t rewrites_active_ = 0;
  std::uint64_t policy_epoch_ = 0;
};

}  // namespace gq::cs
