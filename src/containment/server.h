// The containment server (paper §5.4, §6.2): a standard application
// server on the management network that the gateway couples to via the
// shim protocol. It decides each flow's containment policy, conveys the
// verdict back in a response shim, acts as the transparent application-
// layer proxy for REWRITE flows (opening outbound legs through the
// gateway's nonce ports), runs the activity-trigger engine that drives
// inmate life-cycles, and sequences auto-infection batches.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "containment/config.h"
#include "containment/policy.h"
#include "containment/samples.h"
#include "containment/trigger.h"
#include "net/stack.h"
#include "net/tcp.h"
#include "shim/shim.h"
#include "util/addr.h"

namespace gq::cs {

/// Report-stream events emitted by the containment server.
struct CsEvent {
  enum class Kind { kFlowDecision, kInfectionServed, kTriggerFired };
  Kind kind = Kind::kFlowDecision;
  util::TimePoint time;
  std::uint16_t vlan = 0;
  // kFlowDecision.
  util::Endpoint orig_dst;
  pkt::FlowProto proto = pkt::FlowProto::kTcp;
  shim::Verdict verdict = shim::Verdict::kDrop;
  std::string policy_name;
  std::string annotation;
  // kInfectionServed.
  std::string sample_name;
  std::string sample_md5;
  // kTriggerFired.
  std::string trigger_text;
  LifecycleAction action = LifecycleAction::kRevert;
};

using CsEventHandler = std::function<void(const CsEvent&)>;

class ContainmentServer {
 public:
  /// `listen_port` is the fixed port the gateway redirects flows to;
  /// `gateway_mgmt` is where nonce-port connections are dialed.
  ContainmentServer(net::HostStack& stack, std::uint16_t listen_port,
                    util::Ipv4Addr gateway_mgmt);
  ~ContainmentServer();

  ContainmentServer(const ContainmentServer&) = delete;
  ContainmentServer& operator=(const ContainmentServer&) = delete;

  /// Apply a parsed configuration file: instantiate policies for each
  /// VLAN binding, install triggers, and remember service locations.
  /// `env_base` supplies the sample library / RNG / inmate enumerator;
  /// service locations from the config are merged into it.
  void configure(const ContainmentConfig& config, PolicyEnv env_base);

  /// Bind a policy instance directly (tests / programmatic setup).
  void bind_policy(std::uint16_t vlan_first, std::uint16_t vlan_last,
                   std::shared_ptr<Policy> policy);

  /// Where life-cycle commands go (the inmate controller, §5.5).
  void set_inmate_controller(util::Endpoint controller);

  /// Life-cycle notification: arms triggers for this inmate.
  void notify_inmate_started(std::uint16_t vlan);

  void set_event_handler(CsEventHandler handler) {
    events_ = std::move(handler);
  }

  /// The next auto-infection sample for an inmate, advancing the batch
  /// cursor. nullopt when the VLAN has no infection binding.
  std::optional<std::string> next_sample_name(std::uint16_t vlan);

  [[nodiscard]] SampleLibrary& samples() { return samples_; }
  [[nodiscard]] std::uint64_t flows_decided() const { return flows_decided_; }
  [[nodiscard]] std::uint64_t rewrites_active() const {
    return rewrites_active_;
  }
  [[nodiscard]] util::Endpoint endpoint() const {
    return {stack_.addr(), listen_port_};
  }

 private:
  class SessionContext;
  struct Session;

  void on_accept(std::shared_ptr<net::TcpConnection> conn);
  void on_inmate_data(std::shared_ptr<Session> session,
                      std::span<const std::uint8_t> data);
  void on_udp(util::Endpoint from, std::vector<std::uint8_t> data);
  std::shared_ptr<Policy> policy_for(std::uint16_t vlan);
  Decision decide(FlowInfo& info, std::shared_ptr<Policy>& policy_out,
                  std::unique_ptr<RewriteHandler>* handler_out);
  void evaluate_triggers();
  void send_lifecycle(std::uint16_t vlan, LifecycleAction action);
  void emit_event(CsEvent event);

  net::HostStack& stack_;
  std::uint16_t listen_port_;
  util::Ipv4Addr gateway_mgmt_;
  std::shared_ptr<net::UdpSocket> udp_sock_;
  std::shared_ptr<net::UdpSocket> control_sock_;

  struct PolicyBinding {
    VlanRange range;
    std::shared_ptr<Policy> policy;
  };
  std::vector<PolicyBinding> policies_;
  struct InfectionBinding {
    VlanRange range;
    std::vector<std::string> batch;
    std::map<std::uint16_t, std::size_t> cursor;  // Per-VLAN batch index.
  };
  std::vector<InfectionBinding> infections_;
  PolicyEnv env_;
  SampleLibrary samples_;
  TriggerEngine triggers_;
  std::optional<util::Endpoint> controller_;
  CsEventHandler events_;

  // Cached UDP decisions, keyed by (orig, resp).
  std::map<std::pair<util::Endpoint, util::Endpoint>, Decision>
      udp_decisions_;

  std::uint64_t flows_decided_ = 0;
  std::uint64_t rewrites_active_ = 0;
};

}  // namespace gq::cs
