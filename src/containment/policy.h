// Containment policies (paper §6.2, "Policy structure"). Policies are
// codified as classes; the containment server instantiates them keyed
// on VLAN ID ranges and applies them per flow. Endpoint control is
// decided from the flow's four-tuple; content control (REWRITE) hands
// the flow to a RewriteHandler that acts as a transparent application-
// layer proxy — optionally opening an outbound leg through the
// gateway's nonce port, or impersonating the destination outright
// (auto-infection, §6.6).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "netsim/event_loop.h"
#include "packet/frame.h"
#include "shim/shim.h"
#include "shim/table_sync.h"
#include "util/addr.h"
#include "util/rng.h"

namespace gq::cs {

class SampleLibrary;

/// Everything a policy may key its decision on: the request shim's
/// four-tuple and VLAN, plus the transport protocol.
struct FlowInfo {
  shim::RequestShim shim;
  pkt::FlowProto proto = pkt::FlowProto::kTcp;

  [[nodiscard]] util::Endpoint orig() const { return shim.orig; }
  [[nodiscard]] util::Endpoint dst() const { return shim.resp; }
  [[nodiscard]] std::uint16_t vlan() const { return shim.vlan; }
};

/// A policy's endpoint-control decision for one flow. Construct through
/// the named builders — Decision::forward()/drop()/limit(bps)/
/// redirect(ep)/reflect(sink)/rewrite() — chaining .cached(scope, ttl)
/// to opt into gateway-side verdict caching. The positional constructor
/// survives only for source compatibility and is deprecated.
struct Decision {
  Decision() = default;
  /// Deprecated positional form; use the named builders below instead —
  /// they read as the verdict they produce and cannot transpose fields.
  [[deprecated("use Decision::forward()/drop()/limit()/redirect()/reflect()/"
               "rewrite() builders")]]
  Decision(shim::Verdict v, util::Endpoint t = {}, std::string note = "",
           std::optional<std::int64_t> limit_bps = std::nullopt)
      : verdict(v),
        target(t),
        annotation(std::move(note)),
        limit_bytes_per_sec(limit_bps) {}

  shim::Verdict verdict = shim::Verdict::kDrop;
  /// Target for kRedirect / kReflect (copied into the response shim's
  /// resulting four-tuple).
  util::Endpoint target;
  /// Purely descriptive annotation (report grouping label). Verdict
  /// parameters are typed fields below, never string-packed here.
  std::string annotation;
  /// Byte rate for kLimit, carried in the response shim's typed
  /// parameter block.
  std::optional<std::int64_t> limit_bytes_per_sec;

  /// Gateway-side verdict caching (shim v3 cache block). Strictly
  /// opt-in via cached(): a decision that depends on per-flow state or
  /// has side effects (sink hints, one-shot exemptions) must stay
  /// non-cacheable, and kRewrite can never be cached — the containment
  /// server must stay in-path.
  bool cacheable = false;
  shim::CacheScope cache_scope = shim::CacheScope::kExactFlow;
  /// 0: the gateway's configured default TTL applies.
  std::uint32_t cache_ttl_ms = 0;

  /// Fluent opt-in: mark this decision cacheable at the given scope.
  /// Ignored (containment server refuses the flag) on kRewrite.
  Decision cached(shim::CacheScope scope, std::uint32_t ttl_ms = 0) && {
    cacheable = true;
    cache_scope = scope;
    cache_ttl_ms = ttl_ms;
    return std::move(*this);
  }

  /// Fluent annotation: attach/replace the descriptive label.
  Decision annotated(std::string why) && {
    annotation = std::move(why);
    return std::move(*this);
  }

  static Decision forward(std::string why = "") {
    Decision d;
    d.verdict = shim::Verdict::kForward;
    d.annotation = std::move(why);
    return d;
  }
  static Decision drop(std::string why = "") {
    Decision d;
    d.annotation = std::move(why);
    return d;
  }
  static Decision reflect(util::Endpoint sink, std::string why = "") {
    Decision d;
    d.verdict = shim::Verdict::kReflect;
    d.target = sink;
    d.annotation = std::move(why);
    return d;
  }
  static Decision redirect(util::Endpoint to, std::string why = "") {
    Decision d;
    d.verdict = shim::Verdict::kRedirect;
    d.target = to;
    d.annotation = std::move(why);
    return d;
  }
  static Decision limit(std::int64_t bytes_per_sec) {
    Decision d;
    d.verdict = shim::Verdict::kLimit;
    d.annotation = "limit " + std::to_string(bytes_per_sec) + " B/s";
    d.limit_bytes_per_sec = bytes_per_sec;
    return d;
  }
  static Decision rewrite(std::string why = "") {
    Decision d;
    d.verdict = shim::Verdict::kRewrite;
    d.annotation = std::move(why);
    return d;
  }
};

/// Plumbing the containment server provides to a RewriteHandler.
class RewriteContext {
 public:
  virtual ~RewriteContext() = default;

  /// Push bytes to the inmate (they appear to come from the original
  /// destination).
  virtual void send_to_inmate(std::span<const std::uint8_t> data) = 0;
  void send_to_inmate(std::string_view text);

  /// Close the inmate-side connection (gracefully).
  virtual void close_inmate() = 0;

  /// Open the outbound leg to the flow's true destination through the
  /// gateway's nonce port. on_data/on_closed fire as the target answers.
  virtual void connect_outbound() = 0;
  virtual void send_to_target(std::span<const std::uint8_t> data) = 0;
  void send_to_target(std::string_view text);
  virtual void close_target() = 0;
  [[nodiscard]] virtual bool target_connected() const = 0;

  [[nodiscard]] virtual const FlowInfo& info() const = 0;
  [[nodiscard]] virtual sim::EventLoop& loop() = 0;
};

/// Per-flow content-control logic for REWRITE verdicts.
class RewriteHandler {
 public:
  virtual ~RewriteHandler() = default;

  /// Called once after the verdict is issued.
  virtual void on_start(RewriteContext&) {}
  /// Bytes arriving from the inmate.
  virtual void on_inmate_data(RewriteContext&,
                              std::span<const std::uint8_t> data) = 0;
  /// Bytes arriving from the outbound target leg (if opened).
  virtual void on_target_data(RewriteContext&,
                              std::span<const std::uint8_t>) {}
  virtual void on_target_connected(RewriteContext&) {}
  virtual void on_target_closed(RewriteContext&) {}
  virtual void on_inmate_closed(RewriteContext&) {}
};

/// Services the containment server exposes to policies and rewrite
/// handlers. ContainmentServer is the production implementation; tests
/// and benches plug an InlinePolicyServices with just the pieces they
/// need. This replaces PolicyEnv's former bag of loose std::function
/// members.
class PolicyServices {
 public:
  using InmateList = std::vector<std::pair<std::uint16_t, util::Ipv4Addr>>;

  virtual ~PolicyServices() = default;

  /// Enumerate (vlan, internal address) of live inmates in the subfarm
  /// (honeyfarm redirect policies).
  virtual InmateList list_inmates() { return {}; }
  /// Whether list_inmates() is backed by a real enumerator (lets a
  /// policy distinguish "no enumerator wired" from "no inmates yet").
  [[nodiscard]] virtual bool can_list_inmates() const { return false; }
  /// Next auto-infection sample for a VLAN (advances the batch cursor).
  virtual std::optional<std::string> next_sample(std::uint16_t vlan) {
    (void)vlan;
    return std::nullopt;
  }
  /// Report a served infection (name + payload MD5) to the event stream.
  virtual void report_infection(std::uint16_t vlan, const std::string& name,
                                const std::string& md5) {
    (void)vlan;
    (void)name;
    (void)md5;
  }
  /// Send a small out-of-band UDP datagram from the containment server
  /// (used to push original-destination hints to the banner-grabbing
  /// SMTP sink).
  virtual void send_udp(util::Endpoint to, const std::string& message) {
    (void)to;
    (void)message;
  }
  /// Push a freshly compiled policy table toward the gateway's routers
  /// (shim wire v4). ContainmentServer encodes and transmits the frame;
  /// InlinePolicyServices setups hand the table straight to a router or
  /// capture it for assertions. The default discards it, so policy-side
  /// code may publish unconditionally.
  virtual void publish_policy_table(const shim::TableSync& table) {
    (void)table;
  }
};

/// Function-backed PolicyServices for tests and programmatic setups:
/// assign only the members you care about, defaults are inert.
class InlinePolicyServices : public PolicyServices {
 public:
  std::function<InmateList()> list_inmates_fn;
  std::function<std::optional<std::string>(std::uint16_t)> next_sample_fn;
  std::function<void(std::uint16_t, const std::string&, const std::string&)>
      report_infection_fn;
  std::function<void(util::Endpoint, const std::string&)> send_udp_fn;
  std::function<void(const shim::TableSync&)> publish_policy_table_fn;

  InmateList list_inmates() override {
    return list_inmates_fn ? list_inmates_fn() : InmateList{};
  }
  [[nodiscard]] bool can_list_inmates() const override {
    return static_cast<bool>(list_inmates_fn);
  }
  std::optional<std::string> next_sample(std::uint16_t vlan) override {
    return next_sample_fn ? next_sample_fn(vlan) : std::nullopt;
  }
  void report_infection(std::uint16_t vlan, const std::string& name,
                        const std::string& md5) override {
    if (report_infection_fn) report_infection_fn(vlan, name, md5);
  }
  void send_udp(util::Endpoint to, const std::string& message) override {
    if (send_udp_fn) send_udp_fn(to, message);
  }
  void publish_policy_table(const shim::TableSync& table) override {
    if (publish_policy_table_fn) publish_policy_table_fn(table);
  }
};

/// Environment handed to policies at construction: where the subfarm's
/// services live, the sample library for auto-infection, a deterministic
/// RNG, and the PolicyServices backend (normally the containment server;
/// nullptr degrades every service call to an inert default).
struct PolicyEnv {
  PolicyEnv() = default;
  /// Compatibility constructor for tests: wire a services backend
  /// directly (the caller keeps ownership and must outlive the env).
  explicit PolicyEnv(PolicyServices& services_backend)
      : backend(&services_backend) {}

  /// Service locations from the configuration file ("Autoinfect",
  /// "BannerSmtpSink", ...), keyed by section name, lowercase.
  std::map<std::string, util::Endpoint> services;
  SampleLibrary* samples = nullptr;
  util::Rng* rng = nullptr;
  PolicyServices* backend = nullptr;

  [[nodiscard]] PolicyServices::InmateList list_inmates() const {
    return backend ? backend->list_inmates() : PolicyServices::InmateList{};
  }
  [[nodiscard]] bool can_list_inmates() const {
    return backend && backend->can_list_inmates();
  }
  [[nodiscard]] std::optional<std::string> next_sample(
      std::uint16_t vlan) const {
    return backend ? backend->next_sample(vlan) : std::nullopt;
  }
  void report_infection(std::uint16_t vlan, const std::string& name,
                        const std::string& md5) const {
    if (backend) backend->report_infection(vlan, name, md5);
  }
  void send_udp(util::Endpoint to, const std::string& message) const {
    if (backend) backend->send_udp(to, message);
  }

  [[nodiscard]] util::Endpoint service(const std::string& name) const;
  [[nodiscard]] bool has_service(const std::string& name) const;
};

/// Base class of all containment policies. The default behaviour is the
/// paper's recommended starting stance: default-deny everything.
class Policy {
 public:
  explicit Policy(std::string name) : name_(std::move(name)) {}
  virtual ~Policy() = default;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Endpoint-control decision for a new flow. Default: drop.
  virtual Decision decide(const FlowInfo& info);

  /// For kRewrite decisions: produce the content-control handler.
  /// Returning nullptr degrades the flow to a drop.
  virtual std::unique_ptr<RewriteHandler> make_rewrite_handler(
      const FlowInfo& info);

  /// For kRewrite decisions on UDP flows: transform/answer one inmate
  /// datagram (e.g. DNS impersonation). Returning nullopt sends no
  /// response datagram.
  virtual std::optional<std::vector<std::uint8_t>> rewrite_udp(
      const FlowInfo& info, std::span<const std::uint8_t> payload);

  /// Compile this policy's decide() logic into flat match-action rules
  /// for the in-gateway policy table. A compilable policy returns the
  /// rules covering *every* flow it could see — arms that must stay on
  /// the containment server (REWRITE proxies, side-effecting branches
  /// like sink hints, per-flow state) compile to kFallback rules so the
  /// shim path still handles them. Returning nullopt (the default)
  /// declares the whole policy non-compilable: the server emits a
  /// single catch-all fallback for its binding. The compiled actions,
  /// policy names, and annotations must be byte-identical to what
  /// decide() would produce — the differential harness
  /// (tests/policy_diff_test.cc) enforces this equivalence.
  ///
  /// VLAN range and priority are stamped by the containment server per
  /// binding; compile() leaves them at defaults.
  [[nodiscard]] virtual std::optional<std::vector<shim::TableRule>> compile()
      const {
    return std::nullopt;
  }

 private:
  std::string name_;
};

/// Global policy registry ("Decider = Rustock" in the configuration file
/// resolves through here). Built-in policies self-register.
class PolicyRegistry {
 public:
  using Factory = std::function<std::shared_ptr<Policy>(const PolicyEnv&)>;

  static PolicyRegistry& instance();

  void register_policy(const std::string& name, Factory factory);
  [[nodiscard]] std::shared_ptr<Policy> create(const std::string& name,
                                               const PolicyEnv& env) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, Factory> factories_;
};

/// Ensures the built-in policy set (containment/policies.cc) is
/// registered; call before resolving policies by name.
void register_builtin_policies();

}  // namespace gq::cs
