// Containment policies (paper §6.2, "Policy structure"). Policies are
// codified as classes; the containment server instantiates them keyed
// on VLAN ID ranges and applies them per flow. Endpoint control is
// decided from the flow's four-tuple; content control (REWRITE) hands
// the flow to a RewriteHandler that acts as a transparent application-
// layer proxy — optionally opening an outbound leg through the
// gateway's nonce port, or impersonating the destination outright
// (auto-infection, §6.6).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "netsim/event_loop.h"
#include "packet/frame.h"
#include "shim/shim.h"
#include "util/addr.h"
#include "util/rng.h"

namespace gq::cs {

class SampleLibrary;

/// Everything a policy may key its decision on: the request shim's
/// four-tuple and VLAN, plus the transport protocol.
struct FlowInfo {
  shim::RequestShim shim;
  pkt::FlowProto proto = pkt::FlowProto::kTcp;

  [[nodiscard]] util::Endpoint orig() const { return shim.orig; }
  [[nodiscard]] util::Endpoint dst() const { return shim.resp; }
  [[nodiscard]] std::uint16_t vlan() const { return shim.vlan; }
};

/// A policy's endpoint-control decision for one flow.
struct Decision {
  shim::Verdict verdict = shim::Verdict::kDrop;
  /// Target for kRedirect / kReflect (copied into the response shim's
  /// resulting four-tuple).
  util::Endpoint target;
  /// Free-form annotation; also carries parameters ("rate=4096").
  std::string annotation;

  static Decision forward() { return {shim::Verdict::kForward, {}, ""}; }
  static Decision drop(std::string why = "") {
    return {shim::Verdict::kDrop, {}, std::move(why)};
  }
  static Decision reflect(util::Endpoint sink, std::string why = "") {
    return {shim::Verdict::kReflect, sink, std::move(why)};
  }
  static Decision redirect(util::Endpoint to, std::string why = "") {
    return {shim::Verdict::kRedirect, to, std::move(why)};
  }
  static Decision limit(std::int64_t bytes_per_sec) {
    return {shim::Verdict::kLimit, {},
            "rate=" + std::to_string(bytes_per_sec)};
  }
  static Decision rewrite(std::string why = "") {
    return {shim::Verdict::kRewrite, {}, std::move(why)};
  }
};

/// Plumbing the containment server provides to a RewriteHandler.
class RewriteContext {
 public:
  virtual ~RewriteContext() = default;

  /// Push bytes to the inmate (they appear to come from the original
  /// destination).
  virtual void send_to_inmate(std::span<const std::uint8_t> data) = 0;
  void send_to_inmate(std::string_view text);

  /// Close the inmate-side connection (gracefully).
  virtual void close_inmate() = 0;

  /// Open the outbound leg to the flow's true destination through the
  /// gateway's nonce port. on_data/on_closed fire as the target answers.
  virtual void connect_outbound() = 0;
  virtual void send_to_target(std::span<const std::uint8_t> data) = 0;
  void send_to_target(std::string_view text);
  virtual void close_target() = 0;
  [[nodiscard]] virtual bool target_connected() const = 0;

  [[nodiscard]] virtual const FlowInfo& info() const = 0;
  [[nodiscard]] virtual sim::EventLoop& loop() = 0;
};

/// Per-flow content-control logic for REWRITE verdicts.
class RewriteHandler {
 public:
  virtual ~RewriteHandler() = default;

  /// Called once after the verdict is issued.
  virtual void on_start(RewriteContext&) {}
  /// Bytes arriving from the inmate.
  virtual void on_inmate_data(RewriteContext&,
                              std::span<const std::uint8_t> data) = 0;
  /// Bytes arriving from the outbound target leg (if opened).
  virtual void on_target_data(RewriteContext&,
                              std::span<const std::uint8_t>) {}
  virtual void on_target_connected(RewriteContext&) {}
  virtual void on_target_closed(RewriteContext&) {}
  virtual void on_inmate_closed(RewriteContext&) {}
};

/// Environment handed to policies at construction: where the subfarm's
/// services live, the sample library for auto-infection, a deterministic
/// RNG, and an inmate enumerator (for honeyfarm redirect policies).
struct PolicyEnv {
  /// Service locations from the configuration file ("Autoinfect",
  /// "BannerSmtpSink", ...), keyed by section name, lowercase.
  std::map<std::string, util::Endpoint> services;
  SampleLibrary* samples = nullptr;
  util::Rng* rng = nullptr;
  /// Enumerate (vlan, internal address) of live inmates in the subfarm.
  std::function<std::vector<std::pair<std::uint16_t, util::Ipv4Addr>>()>
      list_inmates;
  /// Next auto-infection sample for a VLAN (advances the batch cursor).
  /// Filled in by the containment server during configure().
  std::function<std::optional<std::string>(std::uint16_t)> next_sample;
  /// Report a served infection (name + payload MD5) to the event stream.
  std::function<void(std::uint16_t vlan, const std::string& name,
                     const std::string& md5)>
      report_infection;
  /// Send a small out-of-band UDP datagram from the containment server
  /// (used to push original-destination hints to the banner-grabbing
  /// SMTP sink). Filled in by the containment server.
  std::function<void(util::Endpoint to, const std::string& message)>
      send_udp;

  [[nodiscard]] util::Endpoint service(const std::string& name) const;
  [[nodiscard]] bool has_service(const std::string& name) const;
};

/// Base class of all containment policies. The default behaviour is the
/// paper's recommended starting stance: default-deny everything.
class Policy {
 public:
  explicit Policy(std::string name) : name_(std::move(name)) {}
  virtual ~Policy() = default;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Endpoint-control decision for a new flow. Default: drop.
  virtual Decision decide(const FlowInfo& info);

  /// For kRewrite decisions: produce the content-control handler.
  /// Returning nullptr degrades the flow to a drop.
  virtual std::unique_ptr<RewriteHandler> make_rewrite_handler(
      const FlowInfo& info);

  /// For kRewrite decisions on UDP flows: transform/answer one inmate
  /// datagram (e.g. DNS impersonation). Returning nullopt sends no
  /// response datagram.
  virtual std::optional<std::vector<std::uint8_t>> rewrite_udp(
      const FlowInfo& info, std::span<const std::uint8_t> payload);

 private:
  std::string name_;
};

/// Global policy registry ("Decider = Rustock" in the configuration file
/// resolves through here). Built-in policies self-register.
class PolicyRegistry {
 public:
  using Factory = std::function<std::shared_ptr<Policy>(const PolicyEnv&)>;

  static PolicyRegistry& instance();

  void register_policy(const std::string& name, Factory factory);
  [[nodiscard]] std::shared_ptr<Policy> create(const std::string& name,
                                               const PolicyEnv& env) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, Factory> factories_;
};

/// Ensures the built-in policy set (containment/policies.cc) is
/// registered; call before resolving policies by name.
void register_builtin_policies();

}  // namespace gq::cs
