#include "containment/policies.h"

#include <mutex>

#include "containment/handlers.h"
#include "services/dns.h"
#include "util/glob.h"
#include "util/log.h"
#include "util/strings.h"

namespace gq::cs {

namespace {

// Table-rule construction helpers for the compile() passes. Every
// compiled rule must reproduce decide()'s verdict, annotation, and
// target byte-for-byte — the differential harness
// (tests/policy_diff_test.cc) replays identical traffic through
// table-on and table-off farms and asserts identical verdict streams.

/// A rule matching one exact destination port on any address/protocol
/// (the builtin policies switch on info.dst().port alone, without
/// narrowing the protocol).
shim::TableRule port_rule(std::uint16_t port, shim::TableAction action,
                          std::string annotation = "") {
  shim::TableRule rule;
  rule.port_first = port;
  rule.port_last = port;
  rule.action = action;
  rule.annotation = std::move(annotation);
  return rule;
}

/// A port arm that must stay on the containment server.
shim::TableRule fallback_port(std::uint16_t port) {
  return port_rule(port, shim::TableAction::kFallback);
}

/// A catch-all rule (any VLAN in the binding, any address, any port).
shim::TableRule catch_all(shim::TableAction action,
                          std::string annotation = "") {
  shim::TableRule rule;
  rule.action = action;
  rule.annotation = std::move(annotation);
  return rule;
}

}  // namespace

// --- SinkAllPolicy ----------------------------------------------------------

SinkAllPolicy::SinkAllPolicy(const PolicyEnv& env, std::string name)
    : Policy(std::move(name)), env_(env) {}

Decision SinkAllPolicy::to_sink(std::string why) const {
  if (env_.has_service("sink"))
    return Decision::reflect(env_.service("sink"), std::move(why));
  return Decision::drop(std::move(why));
}

Decision SinkAllPolicy::decide(const FlowInfo&) {
  return to_sink("sink containment");
}

shim::TableRule SinkAllPolicy::sink_rule(std::string why) const {
  if (env_.has_service("sink")) {
    auto rule = catch_all(shim::TableAction::kReflect, std::move(why));
    rule.target = env_.service("sink");
    return rule;
  }
  return catch_all(shim::TableAction::kDrop, std::move(why));
}

std::optional<std::vector<shim::TableRule>> SinkAllPolicy::compile() const {
  return std::vector<shim::TableRule>{sink_rule("sink containment")};
}

// --- DefaultDenyPolicy ------------------------------------------------------

std::optional<std::vector<shim::TableRule>> DefaultDenyPolicy::compile()
    const {
  return std::vector<shim::TableRule>{
      catch_all(shim::TableAction::kDrop, "default-deny")};
}

// --- ForwardAllPolicy -------------------------------------------------------

std::optional<std::vector<shim::TableRule>> ForwardAllPolicy::compile()
    const {
  return std::vector<shim::TableRule>{
      catch_all(shim::TableAction::kForward)};
}

// --- SpambotPolicy ----------------------------------------------------------

SpambotPolicy::SpambotPolicy(const PolicyEnv& env, std::string name,
                             std::string smtp_sink_service)
    : SinkAllPolicy(env, std::move(name)),
      smtp_sink_service_(std::move(smtp_sink_service)) {}

bool SpambotPolicy::is_autoinfect(const FlowInfo& info) const {
  return env().has_service("autoinfect") &&
         info.dst() == env().service("autoinfect");
}

util::Endpoint SpambotPolicy::smtp_sink() const {
  if (env().has_service(smtp_sink_service_))
    return env().service(smtp_sink_service_);
  return env().service("sink");
}

void SpambotPolicy::send_sink_hint(const FlowInfo& info) const {
  // Banner-grabbing sinks need the flow's *original* destination (the
  // REFLECT rewrite erases it); push it over the sink's UDP hint channel
  // (sink port + 1) before the reflected flow arrives.
  if (!env().has_service("bannersmtpsink")) return;
  const util::Endpoint sink = env().service("bannersmtpsink");
  env().send_udp(
      {sink.addr, static_cast<std::uint16_t>(sink.port + 1)},
      info.orig().addr.str() + " " + info.dst().str() + "\n");
}

Decision SpambotPolicy::decide(const FlowInfo& info) {
  if (is_autoinfect(info)) return Decision::rewrite("autoinfection");
  if (info.dst().port == 25) {
    send_sink_hint(info);
    return Decision::reflect(smtp_sink(), "SMTP containment");
  }
  return to_sink("sink containment");
}

std::unique_ptr<RewriteHandler> SpambotPolicy::make_rewrite_handler(
    const FlowInfo& info) {
  if (is_autoinfect(info)) return std::make_unique<AutoInfectHandler>(env());
  return nullptr;
}

std::vector<shim::TableRule> SpambotPolicy::spambot_prelude_rules() const {
  std::vector<shim::TableRule> rules;
  // Auto-infection flows take the REWRITE impersonation handler — a /32
  // exact-endpoint fallback keeps them on the server. The /32 outranks
  // any port arm in the table's specificity order, matching decide()'s
  // is_autoinfect-first check.
  if (env().has_service("autoinfect")) {
    const util::Endpoint ai = env().service("autoinfect");
    shim::TableRule rule;
    rule.dst_prefix = ai.addr;
    rule.prefix_len = 32;
    rule.port_first = ai.port;
    rule.port_last = ai.port;
    rule.action = shim::TableAction::kFallback;
    rules.push_back(rule);
  }
  return rules;
}

std::optional<std::vector<shim::TableRule>> SpambotPolicy::compile() const {
  auto rules = spambot_prelude_rules();
  // Port 25 pushes an original-destination hint to the banner sink — a
  // side effect the table cannot reproduce, so SMTP stays shim-path.
  rules.push_back(fallback_port(25));
  rules.push_back(sink_rule("sink containment"));
  return rules;
}

// --- RustockPolicy ----------------------------------------------------------

RustockPolicy::RustockPolicy(const PolicyEnv& env)
    : SpambotPolicy(env, "Rustock", "smtpsink") {}

Decision RustockPolicy::decide(const FlowInfo& info) {
  if (is_autoinfect(info)) return Decision::rewrite("autoinfection");
  switch (info.dst().port) {
    case 443:
      return Decision::forward();  // Encrypted C&C lifeline.
    case 80:
      return Decision::rewrite("C&C filtering");
    case 25:
      send_sink_hint(info);
      return Decision::reflect(smtp_sink(), "simple SMTP containment");
    default:
      return to_sink("sink containment");
  }
}

std::optional<std::vector<shim::TableRule>> RustockPolicy::compile() const {
  auto rules = spambot_prelude_rules();
  rules.push_back(fallback_port(25));  // Sink-hint side effect.
  rules.push_back(port_rule(443, shim::TableAction::kForward));
  rules.push_back(fallback_port(80));  // REWRITE C&C filter.
  rules.push_back(sink_rule("sink containment"));
  return rules;
}

std::unique_ptr<RewriteHandler> RustockPolicy::make_rewrite_handler(
    const FlowInfo& info) {
  if (is_autoinfect(info)) return std::make_unique<AutoInfectHandler>(env());
  // HTTP C&C filter: only narrow, understood C&C requests pass (the §3
  // methodology: never "generally open up HTTP").
  auto request_filter =
      [](svc::HttpRequest request) -> std::optional<svc::HttpRequest> {
    if (request.method == "GET" &&
        (util::starts_with_icase(request.path, "/c2/") ||
         util::starts_with_icase(request.path, "/cfg/")))
      return request;
    return std::nullopt;  // Anything else (e.g. SQL injection) blocked.
  };
  auto response_filter = [](svc::HttpResponse response) { return response; };
  return std::make_unique<HttpFilterHandler>(request_filter, response_filter);
}

// --- GrumPolicy -------------------------------------------------------------

GrumPolicy::GrumPolicy(const PolicyEnv& env)
    : SpambotPolicy(env, "Grum", "bannersmtpsink") {}

Decision GrumPolicy::decide(const FlowInfo& info) {
  if (is_autoinfect(info)) return Decision::rewrite("autoinfection");
  switch (info.dst().port) {
    case 80:
      return Decision::forward();  // HTTP C&C.
    case 25:
      send_sink_hint(info);
      return Decision::reflect(smtp_sink(), "full SMTP containment");
    default:
      return to_sink("sink containment");
  }
}

std::optional<std::vector<shim::TableRule>> GrumPolicy::compile() const {
  auto rules = spambot_prelude_rules();
  rules.push_back(fallback_port(25));  // Sink-hint side effect.
  rules.push_back(port_rule(80, shim::TableAction::kForward));
  rules.push_back(sink_rule("sink containment"));
  return rules;
}

// --- WaledacPolicy ----------------------------------------------------------

WaledacPolicy::WaledacPolicy(const PolicyEnv& env, bool allow_test_smtp)
    : SpambotPolicy(env, allow_test_smtp ? "WaledacTest" : "Waledac",
                    "bannersmtpsink"),
      allow_test_smtp_(allow_test_smtp) {}

Decision WaledacPolicy::decide(const FlowInfo& info) {
  if (is_autoinfect(info)) return Decision::rewrite("autoinfection");
  switch (info.dst().port) {
    case 80:
      return Decision::forward();  // HTTP C&C.
    case 25: {
      if (allow_test_smtp_ && !test_sent_[info.vlan()]) {
        // The 2009 mistake: permit a single seemingly innocuous test
        // message to a real server (§7.1, "mysterious blacklisting").
        test_sent_[info.vlan()] = true;
        return Decision::forward("single test SMTP exchange");
      }
      send_sink_hint(info);
      return Decision::reflect(smtp_sink(), "full SMTP containment");
    }
    default:
      return to_sink("sink containment");
  }
}

std::optional<std::vector<shim::TableRule>> WaledacPolicy::compile() const {
  // The WaledacTest variant carries per-VLAN one-shot state (the single
  // test-message exemption); its port-25 arm depends on history the
  // table cannot see, so the whole policy stays shim-path.
  if (allow_test_smtp_) return std::nullopt;
  auto rules = spambot_prelude_rules();
  rules.push_back(fallback_port(25));  // Sink-hint side effect.
  rules.push_back(port_rule(80, shim::TableAction::kForward));
  rules.push_back(sink_rule("sink containment"));
  return rules;
}

// --- StormPolicy ------------------------------------------------------------

StormPolicy::StormPolicy(const PolicyEnv& env)
    : SpambotPolicy(env, "Storm", "smtpsink") {}

Decision StormPolicy::decide(const FlowInfo& info) {
  if (is_autoinfect(info)) return Decision::rewrite("autoinfection");
  if (info.dst().port == 80) return Decision::forward();  // HTTP C&C relay.
  // Everything else — SMTP, and notably the FTP iframe-injection jobs an
  // upstream botmaster may push through the proxy — lands in the sink.
  return to_sink("sink containment");
}

std::optional<std::vector<shim::TableRule>> StormPolicy::compile() const {
  auto rules = spambot_prelude_rules();
  rules.push_back(port_rule(80, shim::TableAction::kForward));
  rules.push_back(sink_rule("sink containment"));
  return rules;
}

// --- MegaDPolicy ------------------------------------------------------------

MegaDPolicy::MegaDPolicy(const PolicyEnv& env)
    : SpambotPolicy(env, "MegaD", "bannersmtpsink") {}

Decision MegaDPolicy::decide(const FlowInfo& info) {
  if (is_autoinfect(info)) return Decision::rewrite("autoinfection");
  switch (info.dst().port) {
    case 80:
    case 443:
      return Decision::rewrite("C&C observation");
    case 25:
      send_sink_hint(info);
      return Decision::reflect(smtp_sink(), "SMTP containment");
    default:
      return to_sink("sink containment");
  }
}

std::optional<std::vector<shim::TableRule>> MegaDPolicy::compile() const {
  auto rules = spambot_prelude_rules();
  rules.push_back(fallback_port(25));  // Sink-hint side effect.
  rules.push_back(fallback_port(80));   // REWRITE C&C tap.
  rules.push_back(fallback_port(443));  // REWRITE C&C tap.
  rules.push_back(sink_rule("sink containment"));
  return rules;
}

std::unique_ptr<RewriteHandler> MegaDPolicy::make_rewrite_handler(
    const FlowInfo& info) {
  if (is_autoinfect(info)) return std::make_unique<AutoInfectHandler>(env());
  return std::make_unique<PassthroughHandler>();
}

// --- ClickbotPolicy ---------------------------------------------------------

ClickbotPolicy::ClickbotPolicy(const PolicyEnv& env)
    : SpambotPolicy(env, "Clickbot", "smtpsink") {}

Decision ClickbotPolicy::decide(const FlowInfo& info) {
  if (is_autoinfect(info)) return Decision::rewrite("autoinfection");
  if (info.dst().port == 80) return Decision::rewrite("click observation");
  return to_sink("sink containment");
}

std::optional<std::vector<shim::TableRule>> ClickbotPolicy::compile() const {
  auto rules = spambot_prelude_rules();
  rules.push_back(fallback_port(80));  // REWRITE click observer.
  rules.push_back(sink_rule("sink containment"));
  return rules;
}

std::unique_ptr<RewriteHandler> ClickbotPolicy::make_rewrite_handler(
    const FlowInfo& info) {
  if (is_autoinfect(info)) return std::make_unique<AutoInfectHandler>(env());
  return std::make_unique<PassthroughHandler>();
}

// --- DnsSinkholePolicy --------------------------------------------------------

DnsSinkholePolicy::DnsSinkholePolicy(const PolicyEnv& env,
                                     util::Ipv4Addr sinkhole_addr)
    : SinkAllPolicy(env, "DnsSinkhole"), sinkhole_(sinkhole_addr) {}

void DnsSinkholePolicy::add_sinkholed_domain(std::string glob) {
  domains_.push_back(util::to_lower(glob));
}

Decision DnsSinkholePolicy::decide(const FlowInfo& info) {
  if (info.proto == pkt::FlowProto::kUdp && info.dst().port == 53)
    return Decision::rewrite("DNS sinkhole");
  return to_sink("sink containment");
}

std::optional<std::vector<shim::TableRule>> DnsSinkholePolicy::compile()
    const {
  // UDP/53 is the REWRITE impersonation arm; everything else sinks.
  std::vector<shim::TableRule> rules;
  auto dns = fallback_port(53);
  dns.proto = shim::TableRule::kProtoUdp;
  rules.push_back(dns);
  rules.push_back(sink_rule("sink containment"));
  return rules;
}

std::optional<std::vector<std::uint8_t>> DnsSinkholePolicy::rewrite_udp(
    const FlowInfo&, std::span<const std::uint8_t> payload) {
  auto query = svc::DnsMessage::parse(payload);
  if (!query || query->is_response) return std::nullopt;
  ++answered_;
  svc::DnsMessage response = *query;
  response.is_response = true;
  response.answers.clear();
  for (const auto& glob : domains_) {
    if (util::glob_match(glob, query->qname)) {
      response.answers.push_back(sinkhole_);
      ++sinkholed_;
      break;
    }
  }
  response.rcode = response.answers.empty() ? 3 : 0;
  return response.encode();
}

// --- WormFarmPolicy ---------------------------------------------------------

WormFarmPolicy::WormFarmPolicy(const PolicyEnv& env)
    : Policy("WormFarm"), env_(env) {}

Decision WormFarmPolicy::decide(const FlowInfo& info) {
  if (!env_.can_list_inmates()) return Decision::drop("no inmate enumerator");

  // Sticky mapping: a multi-connection exploit against one scanned
  // address must hit the same victim with every connection.
  const auto key = std::make_pair(info.vlan(), info.dst().addr);
  if (auto it = chosen_.find(key); it != chosen_.end()) {
    return Decision::redirect({it->second, info.dst().port},
                              "honeyfarm redirect (sticky)");
  }

  auto inmates = env_.list_inmates();
  // Round-robin over inmates other than the originator, preserving the
  // destination port so the exploit hits the same "service".
  for (std::size_t attempt = 0; attempt < inmates.size(); ++attempt) {
    const auto& [vlan, addr] = inmates[next_ % inmates.size()];
    ++next_;
    if (vlan == info.vlan()) continue;
    chosen_[key] = addr;
    return Decision::redirect({addr, info.dst().port},
                              "honeyfarm redirect vlan " +
                                  std::to_string(vlan));
  }
  return Decision::drop("no redirect victim available");
}

// --- Registration -----------------------------------------------------------

void register_builtin_policies() {
  static std::once_flag once;
  std::call_once(once, [] {
    auto& registry = PolicyRegistry::instance();
    registry.register_policy("DefaultDeny", [](const PolicyEnv&) {
      return std::make_shared<DefaultDenyPolicy>();
    });
    registry.register_policy("SinkAll", [](const PolicyEnv& env) {
      return std::make_shared<SinkAllPolicy>(env);
    });
    registry.register_policy("ForwardAll", [](const PolicyEnv&) {
      return std::make_shared<ForwardAllPolicy>();
    });
    registry.register_policy("Rustock", [](const PolicyEnv& env) {
      return std::make_shared<RustockPolicy>(env);
    });
    registry.register_policy("Grum", [](const PolicyEnv& env) {
      return std::make_shared<GrumPolicy>(env);
    });
    registry.register_policy("Waledac", [](const PolicyEnv& env) {
      return std::make_shared<WaledacPolicy>(env, false);
    });
    registry.register_policy("WaledacTest", [](const PolicyEnv& env) {
      return std::make_shared<WaledacPolicy>(env, true);
    });
    registry.register_policy("Storm", [](const PolicyEnv& env) {
      return std::make_shared<StormPolicy>(env);
    });
    registry.register_policy("MegaD", [](const PolicyEnv& env) {
      return std::make_shared<MegaDPolicy>(env);
    });
    registry.register_policy("Clickbot", [](const PolicyEnv& env) {
      return std::make_shared<ClickbotPolicy>(env);
    });
    registry.register_policy("WormFarm", [](const PolicyEnv& env) {
      return std::make_shared<WormFarmPolicy>(env);
    });
  });
}

}  // namespace gq::cs
