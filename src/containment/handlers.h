// Reusable content-control (REWRITE) handlers:
//
//  * AutoInfectHandler — impersonates the auto-infection HTTP server
//    (paper §6.6): the inmate's first-boot infection script requests a
//    sample; the handler serves the next binary of the VLAN's batch and
//    reports the MD5 that later shows up in the activity report.
//  * HttpFilterHandler — transparent HTTP proxy with request/response
//    transformation hooks; the Figure 5 scenario ("GET bot.exe" becomes
//    "GET cleanup.exe", the answer becomes 404) is one configuration.
//  * PassthroughHandler — raw byte proxy with observation taps, for
//    policies that only need to watch (clickbot C&C studies).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "containment/policy.h"
#include "services/http.h"

namespace gq::cs {

class AutoInfectHandler : public RewriteHandler {
 public:
  /// Pulls samples/reporting hooks out of `env` (shared with the server).
  explicit AutoInfectHandler(const PolicyEnv& env);

  void on_inmate_data(RewriteContext& ctx,
                      std::span<const std::uint8_t> data) override;

 private:
  const PolicyEnv& env_;
  svc::HttpRequestParser parser_;
};

class HttpFilterHandler : public RewriteHandler {
 public:
  /// Return the (possibly modified) request to forward it; nullopt to
  /// block it (the inmate receives `blocked_response`).
  using RequestFilter =
      std::function<std::optional<svc::HttpRequest>(svc::HttpRequest)>;
  /// Transform responses on their way back to the inmate.
  using ResponseFilter = std::function<svc::HttpResponse(svc::HttpResponse)>;

  HttpFilterHandler(RequestFilter request_filter,
                    ResponseFilter response_filter,
                    svc::HttpResponse blocked_response =
                        svc::HttpResponse::make(403, "Forbidden", ""));

  void on_inmate_data(RewriteContext& ctx,
                      std::span<const std::uint8_t> data) override;
  void on_target_data(RewriteContext& ctx,
                      std::span<const std::uint8_t> data) override;
  void on_target_connected(RewriteContext& ctx) override;
  void on_target_closed(RewriteContext& ctx) override;

 private:
  void pump_requests(RewriteContext& ctx);

  RequestFilter request_filter_;
  ResponseFilter response_filter_;
  svc::HttpResponse blocked_response_;
  svc::HttpRequestParser request_parser_;
  svc::HttpResponseParser response_parser_;
  std::vector<std::string> outbound_queue_;  // Awaiting target connect.
  bool connect_requested_ = false;
};

class PassthroughHandler : public RewriteHandler {
 public:
  using Tap = std::function<void(std::span<const std::uint8_t>)>;

  PassthroughHandler(Tap tap_outbound = nullptr, Tap tap_inbound = nullptr);

  void on_inmate_data(RewriteContext& ctx,
                      std::span<const std::uint8_t> data) override;
  void on_target_data(RewriteContext& ctx,
                      std::span<const std::uint8_t> data) override;
  void on_target_connected(RewriteContext& ctx) override;
  void on_inmate_closed(RewriteContext& ctx) override;
  void on_target_closed(RewriteContext& ctx) override;

 private:
  Tap tap_outbound_, tap_inbound_;
  std::vector<std::uint8_t> pending_outbound_;
  bool connect_requested_ = false;
};

}  // namespace gq::cs
