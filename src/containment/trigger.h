// Activity triggers (paper §5.4, §6.2): the containment server witnesses
// all network-level activity of an inmate, so it can react to the
// presence — and absence — of flows by terminating, rebooting, or
// reverting the inmate. The configuration grammar is the paper's:
//
//     Trigger = *:25/tcp / 30min < 1 -> revert
//
// meaning "whenever the number of flows matching <any address>:25/tcp
// within a 30-minute window drops below one, revert the inmate."
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

#include "packet/frame.h"
#include "util/addr.h"
#include "util/time.h"

namespace gq::cs {

/// Flow pattern "<addr-glob>:<port|*>/<tcp|udp|*>".
struct FlowPattern {
  std::string addr_glob = "*";
  std::optional<std::uint16_t> port;      // nullopt = any.
  std::optional<pkt::FlowProto> proto;    // nullopt = any.

  [[nodiscard]] bool matches(util::Endpoint dst, pkt::FlowProto p) const;
  static std::optional<FlowPattern> parse(std::string_view text);
  [[nodiscard]] std::string str() const;
};

enum class Comparison { kLess, kLessEqual, kGreater, kGreaterEqual, kEqual };

enum class LifecycleAction { kRevert, kReboot, kTerminate };

const char* lifecycle_action_name(LifecycleAction a);

/// One parsed trigger rule.
struct Trigger {
  FlowPattern pattern;
  util::Duration window{};
  Comparison cmp = Comparison::kLess;
  std::int64_t threshold = 0;
  LifecycleAction action = LifecycleAction::kRevert;

  /// Parse the full "pattern / window cmp count -> action" syntax;
  /// nullopt on malformed input.
  static std::optional<Trigger> parse(std::string_view text);
  [[nodiscard]] std::string str() const;
};

/// Evaluates a set of triggers against per-inmate flow activity. The
/// owner feeds flow observations and inmate (re)start notifications and
/// polls evaluate(); fired triggers are reported once per arming period
/// (firing disarms until the inmate restarts).
class TriggerEngine {
 public:
  struct Firing {
    std::uint16_t vlan;
    LifecycleAction action;
    std::string trigger_text;
  };

  /// Attach a trigger covering VLANs [first, last].
  void add(std::uint16_t vlan_first, std::uint16_t vlan_last,
           Trigger trigger);

  /// Note that an inmate (re)started at `now`: its triggers re-arm and
  /// evaluation is deferred one full window.
  void inmate_started(std::uint16_t vlan, util::TimePoint now);

  /// Record one observed flow from `vlan` to `dst`.
  void observe_flow(std::uint16_t vlan, util::Endpoint dst,
                    pkt::FlowProto proto, util::TimePoint now);

  /// Evaluate all triggers; returns the rules that fired.
  std::vector<Firing> evaluate(util::TimePoint now);

  [[nodiscard]] std::size_t trigger_count() const { return rules_.size(); }

 private:
  struct Rule {
    std::uint16_t vlan_first, vlan_last;
    Trigger trigger;
    // Per-vlan state.
    struct VlanState {
      std::deque<util::TimePoint> events;
      util::TimePoint armed_at{};
      bool armed = false;
      bool fired = false;
    };
    std::map<std::uint16_t, VlanState> per_vlan;
  };

  static bool compare(Comparison cmp, std::int64_t value,
                      std::int64_t threshold);

  std::vector<Rule> rules_;
};

}  // namespace gq::cs
