// The built-in containment policy hierarchy (paper §6.2): from a base
// class implementing default-deny we derive per-verdict bases and then
// per-family specializations — exactly the object-oriented reuse the
// paper describes. Family policies reproduce the containment the paper
// reports operating: Rustock and Grum (Figure 6/7), Waledac (the
// "mysterious blacklisting" episode), Storm proxies (the FTP iframe
// "unexpected visitors" episode), MegaD, clickbots, and the worm-era
// honeyfarm redirect policy behind Table 1.
#pragma once

#include <memory>

#include "containment/policy.h"

namespace gq::cs {

/// Reflects every flow to the subfarm's catch-all sink ("sink" service)
/// — the paper's recommended starting point when studying a fresh
/// sample (§3). Falls back to drop when no sink is configured.
class SinkAllPolicy : public Policy {
 public:
  explicit SinkAllPolicy(const PolicyEnv& env, std::string name = "SinkAll");
  Decision decide(const FlowInfo& info) override;
  std::optional<std::vector<shim::TableRule>> compile() const override;

 protected:
  const PolicyEnv& env() const { return env_; }
  /// Reflect to the catch-all sink (or drop without one).
  Decision to_sink(std::string why) const;
  /// Table-rule twin of to_sink(): a catch-all REFLECT to the sink (or
  /// DROP without one) carrying the same annotation decide() would emit.
  shim::TableRule sink_rule(std::string why) const;

 private:
  PolicyEnv env_;
};

/// Pure default-deny as a compilable policy: the registry's
/// "DefaultDeny" resolves here so a default-deny binding drops
/// first-contact flows at line rate in the gateway table.
class DefaultDenyPolicy : public Policy {
 public:
  DefaultDenyPolicy() : Policy("DefaultDeny") {}
  std::optional<std::vector<shim::TableRule>> compile() const override;
};

/// Forwards everything — the paper's cautionary tale, provided for
/// ablation benchmarks and tests, never as a default.
class ForwardAllPolicy : public Policy {
 public:
  ForwardAllPolicy() : Policy("ForwardAll") {}
  Decision decide(const FlowInfo&) override { return Decision::forward(); }
  std::optional<std::vector<shim::TableRule>> compile() const override;
};

/// Base for spambot families: auto-infection flows get the REWRITE
/// impersonation handler; SMTP is reflected to a configurable sink;
/// everything else goes to the catch-all sink.
class SpambotPolicy : public SinkAllPolicy {
 public:
  SpambotPolicy(const PolicyEnv& env, std::string name,
                std::string smtp_sink_service);
  Decision decide(const FlowInfo& info) override;
  std::unique_ptr<RewriteHandler> make_rewrite_handler(
      const FlowInfo& info) override;
  std::optional<std::vector<shim::TableRule>> compile() const override;

 protected:
  [[nodiscard]] bool is_autoinfect(const FlowInfo& info) const;
  [[nodiscard]] util::Endpoint smtp_sink() const;
  /// Push the flow's original destination to the banner-grabbing sink's
  /// hint channel (no-op without one configured).
  void send_sink_hint(const FlowInfo& info) const;
  /// Rules every spambot-family compile() starts from: the
  /// auto-infection /32 fallback (REWRITE must stay on the server) when
  /// an autoinfect service is configured. Families whose decide() has a
  /// port-25 arm append its fallback themselves — the sink-hint side
  /// effect is not table-expressible.
  [[nodiscard]] std::vector<shim::TableRule> spambot_prelude_rules() const;

 private:
  std::string smtp_sink_service_;
};

/// Rustock (Figure 7): HTTPS C&C forwarded, HTTP C&C filtered through a
/// REWRITE proxy, SMTP reflected to the simple sink.
class RustockPolicy : public SpambotPolicy {
 public:
  explicit RustockPolicy(const PolicyEnv& env);
  Decision decide(const FlowInfo& info) override;
  std::optional<std::vector<shim::TableRule>> compile() const override;
  std::unique_ptr<RewriteHandler> make_rewrite_handler(
      const FlowInfo& info) override;
};

/// Grum (Figure 7): HTTP C&C forwarded, full (banner-grabbing) SMTP
/// containment.
class GrumPolicy : public SpambotPolicy {
 public:
  explicit GrumPolicy(const PolicyEnv& env);
  Decision decide(const FlowInfo& info) override;
  std::optional<std::vector<shim::TableRule>> compile() const override;
};

/// Waledac: SMTP reflected — with an optional "allow one test message"
/// exemption reproducing the 2009 blacklisting episode (§7.1). The
/// exemption is enabled by registering the policy as "WaledacTest".
class WaledacPolicy : public SpambotPolicy {
 public:
  WaledacPolicy(const PolicyEnv& env, bool allow_test_smtp);
  Decision decide(const FlowInfo& info) override;
  std::optional<std::vector<shim::TableRule>> compile() const override;

 private:
  bool allow_test_smtp_;
  std::map<std::uint16_t, bool> test_sent_;  // Per-VLAN one-shot.
};

/// Storm C&C-relay proxies (§7.1 "unexpected visitors"): outside
/// reachability is preserved by the gateway's inbound mode; outbound
/// HTTP-borne C&C is forwarded, everything else — including the iframe-
/// injection FTP jobs an upstream botmaster pushes — lands in the sink.
class StormPolicy : public SpambotPolicy {
 public:
  explicit StormPolicy(const PolicyEnv& env);
  Decision decide(const FlowInfo& info) override;
  std::optional<std::vector<shim::TableRule>> compile() const override;
};

/// MegaD: proprietary C&C protocol observed through a passthrough
/// REWRITE tap (the live-experimentation half of §7.1 "exploratory
/// containment"); SMTP reflected.
class MegaDPolicy : public SpambotPolicy {
 public:
  explicit MegaDPolicy(const PolicyEnv& env);
  Decision decide(const FlowInfo& info) override;
  std::optional<std::vector<shim::TableRule>> compile() const override;
  std::unique_ptr<RewriteHandler> make_rewrite_handler(
      const FlowInfo& info) override;
};

/// Clickbot: HTTP click traffic passes through an observing REWRITE
/// proxy (What's Clicking What, §7.1); everything else sinks.
class ClickbotPolicy : public SpambotPolicy {
 public:
  explicit ClickbotPolicy(const PolicyEnv& env);
  Decision decide(const FlowInfo& info) override;
  std::optional<std::vector<shim::TableRule>> compile() const override;
  std::unique_ptr<RewriteHandler> make_rewrite_handler(
      const FlowInfo& info) override;
};

/// DNS sinkhole containment: UDP port-53 flows are REWRITten so the
/// containment server impersonates the resolver — names matching a
/// sinkholed glob resolve to the sinkhole address (typically a farm
/// sink), everything else gets NXDOMAIN. The "exploratory containment"
/// flavour of §7.1 applied to DGA malware: the analyst controls exactly
/// which generated domains appear to exist.
class DnsSinkholePolicy : public SinkAllPolicy {
 public:
  DnsSinkholePolicy(const PolicyEnv& env, util::Ipv4Addr sinkhole_addr);

  /// Names (globs) that resolve to the sinkhole address.
  void add_sinkholed_domain(std::string glob);

  Decision decide(const FlowInfo& info) override;
  std::optional<std::vector<shim::TableRule>> compile() const override;
  std::optional<std::vector<std::uint8_t>> rewrite_udp(
      const FlowInfo& info, std::span<const std::uint8_t> payload) override;

  [[nodiscard]] std::uint64_t queries_answered() const { return answered_; }
  [[nodiscard]] std::uint64_t queries_sinkholed() const {
    return sinkholed_;
  }

 private:
  util::Ipv4Addr sinkhole_;
  std::vector<std::string> domains_;
  std::uint64_t answered_ = 0;
  std::uint64_t sinkholed_ = 0;
};

/// Worm-era honeyfarm containment (Table 1): every outbound propagation
/// attempt is redirected to another inmate of the same subfarm (round
/// robin), so self-propagation chains stay inside the farm.
class WormFarmPolicy : public Policy {
 public:
  explicit WormFarmPolicy(const PolicyEnv& env);
  Decision decide(const FlowInfo& info) override;

 private:
  PolicyEnv env_;
  std::size_t next_ = 0;
  /// Sticky victim choice per (origin VLAN, scanned address): multi-
  /// connection exploits must land every connection on the same victim.
  std::map<std::pair<std::uint16_t, util::Ipv4Addr>, util::Ipv4Addr>
      chosen_;
};

}  // namespace gq::cs
