#include "containment/samples.h"

#include "util/glob.h"
#include "util/md5.h"

namespace gq::cs {

void SampleLibrary::add(const std::string& name) {
  // Deterministic synthetic payload: the name itself is the executable
  // "header" (the inmate-side behaviour factory keys on it), plus filler
  // derived from the name so each sample hashes uniquely.
  std::string payload = name + "\n";
  std::string filler = util::Md5::hex_digest(name);
  for (int i = 0; i < 8; ++i) {
    payload += filler;
    filler = util::Md5::hex_digest(filler);
  }
  add(name, std::move(payload));
}

void SampleLibrary::add(const std::string& name, std::string payload) {
  if (!payloads_.count(name)) order_.push_back(name);
  payloads_[name] = std::move(payload);
}

std::vector<std::string> SampleLibrary::match(const std::string& glob) const {
  std::vector<std::string> out;
  for (const auto& name : order_)
    if (util::glob_match(glob, name)) out.push_back(name);
  return out;
}

std::optional<std::string> SampleLibrary::payload(
    const std::string& name) const {
  auto it = payloads_.find(name);
  if (it == payloads_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> SampleLibrary::md5(const std::string& name) const {
  auto p = payload(name);
  if (!p) return std::nullopt;
  return util::Md5::hex_digest(*p);
}

}  // namespace gq::cs
