#include "containment/trigger.h"

#include "util/glob.h"
#include "util/strings.h"

namespace gq::cs {

namespace {

// Parse a duration like "30min", "2h", "45s", "500ms".
std::optional<util::Duration> parse_duration(std::string_view text) {
  std::size_t digits = 0;
  while (digits < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[digits])))
    ++digits;
  if (digits == 0) return std::nullopt;
  auto value = util::parse_int(text.substr(0, digits));
  if (!value) return std::nullopt;
  const std::string_view unit = text.substr(digits);
  if (unit == "ms") return util::milliseconds(*value);
  if (unit == "s" || unit == "sec") return util::seconds(*value);
  if (unit == "min" || unit == "m") return util::minutes(*value);
  if (unit == "h" || unit == "hr") return util::hours(*value);
  return std::nullopt;
}

}  // namespace

bool FlowPattern::matches(util::Endpoint dst, pkt::FlowProto p) const {
  if (port && *port != dst.port) return false;
  if (proto && *proto != p) return false;
  return util::glob_match(addr_glob, dst.addr.str());
}

std::optional<FlowPattern> FlowPattern::parse(std::string_view text) {
  // "<addr-glob>:<port|*>/<tcp|udp|*>"
  const auto slash = text.rfind('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const std::string_view proto_text = text.substr(slash + 1);
  const auto colon = text.substr(0, slash).rfind(':');
  if (colon == std::string_view::npos) return std::nullopt;

  FlowPattern pattern;
  pattern.addr_glob = std::string(text.substr(0, colon));
  if (pattern.addr_glob.empty()) return std::nullopt;

  const std::string_view port_text = text.substr(colon + 1, slash - colon - 1);
  if (port_text != "*") {
    auto port = util::parse_int(port_text);
    if (!port || *port < 0 || *port > 65535) return std::nullopt;
    pattern.port = static_cast<std::uint16_t>(*port);
  }
  if (proto_text == "tcp") {
    pattern.proto = pkt::FlowProto::kTcp;
  } else if (proto_text == "udp") {
    pattern.proto = pkt::FlowProto::kUdp;
  } else if (proto_text != "*") {
    return std::nullopt;
  }
  return pattern;
}

std::string FlowPattern::str() const {
  std::string out = addr_glob + ":";
  out += port ? std::to_string(*port) : "*";
  out += "/";
  if (!proto) {
    out += "*";
  } else {
    out += (*proto == pkt::FlowProto::kTcp) ? "tcp" : "udp";
  }
  return out;
}

const char* lifecycle_action_name(LifecycleAction a) {
  switch (a) {
    case LifecycleAction::kRevert: return "revert";
    case LifecycleAction::kReboot: return "reboot";
    case LifecycleAction::kTerminate: return "terminate";
  }
  return "?";
}

std::optional<Trigger> Trigger::parse(std::string_view text) {
  // "<pattern> / <window> <cmp> <count> -> <action>"
  const auto arrow = text.find("->");
  if (arrow == std::string_view::npos) return std::nullopt;
  const std::string action_text(util::trim(text.substr(arrow + 2)));
  std::string_view head = util::trim(text.substr(0, arrow));

  // The pattern itself contains a '/', so split on the *last* " / "
  // separator (spaces around it disambiguate from the proto slash).
  const auto sep = head.rfind(" / ");
  if (sep == std::string_view::npos) return std::nullopt;
  auto pattern = FlowPattern::parse(util::trim(head.substr(0, sep)));
  if (!pattern) return std::nullopt;

  auto rest = util::split_ws(head.substr(sep + 3));
  if (rest.size() != 3) return std::nullopt;
  auto window = parse_duration(rest[0]);
  if (!window) return std::nullopt;

  Trigger trigger;
  trigger.pattern = *pattern;
  trigger.window = *window;
  if (rest[1] == "<") trigger.cmp = Comparison::kLess;
  else if (rest[1] == "<=") trigger.cmp = Comparison::kLessEqual;
  else if (rest[1] == ">") trigger.cmp = Comparison::kGreater;
  else if (rest[1] == ">=") trigger.cmp = Comparison::kGreaterEqual;
  else if (rest[1] == "==" || rest[1] == "=") trigger.cmp = Comparison::kEqual;
  else return std::nullopt;
  auto threshold = util::parse_int(rest[2]);
  if (!threshold) return std::nullopt;
  trigger.threshold = *threshold;

  if (action_text == "revert") trigger.action = LifecycleAction::kRevert;
  else if (action_text == "reboot") trigger.action = LifecycleAction::kReboot;
  else if (action_text == "terminate")
    trigger.action = LifecycleAction::kTerminate;
  else return std::nullopt;
  return trigger;
}

std::string Trigger::str() const {
  const char* cmp_text = "<";
  switch (cmp) {
    case Comparison::kLess: cmp_text = "<"; break;
    case Comparison::kLessEqual: cmp_text = "<="; break;
    case Comparison::kGreater: cmp_text = ">"; break;
    case Comparison::kGreaterEqual: cmp_text = ">="; break;
    case Comparison::kEqual: cmp_text = "=="; break;
  }
  return pattern.str() + " / " + util::format_duration(window) + " " +
         cmp_text + " " + std::to_string(threshold) + " -> " +
         lifecycle_action_name(action);
}

bool TriggerEngine::compare(Comparison cmp, std::int64_t value,
                            std::int64_t threshold) {
  switch (cmp) {
    case Comparison::kLess: return value < threshold;
    case Comparison::kLessEqual: return value <= threshold;
    case Comparison::kGreater: return value > threshold;
    case Comparison::kGreaterEqual: return value >= threshold;
    case Comparison::kEqual: return value == threshold;
  }
  return false;
}

void TriggerEngine::add(std::uint16_t vlan_first, std::uint16_t vlan_last,
                        Trigger trigger) {
  rules_.push_back(Rule{vlan_first, vlan_last, std::move(trigger), {}});
}

void TriggerEngine::inmate_started(std::uint16_t vlan, util::TimePoint now) {
  for (auto& rule : rules_) {
    if (vlan < rule.vlan_first || vlan > rule.vlan_last) continue;
    auto& state = rule.per_vlan[vlan];
    state.events.clear();
    state.armed = true;
    state.fired = false;
    state.armed_at = now;
  }
}

void TriggerEngine::observe_flow(std::uint16_t vlan, util::Endpoint dst,
                                 pkt::FlowProto proto, util::TimePoint now) {
  for (auto& rule : rules_) {
    if (vlan < rule.vlan_first || vlan > rule.vlan_last) continue;
    if (!rule.trigger.pattern.matches(dst, proto)) continue;
    rule.per_vlan[vlan].events.push_back(now);
  }
}

std::vector<TriggerEngine::Firing> TriggerEngine::evaluate(
    util::TimePoint now) {
  std::vector<Firing> firings;
  for (auto& rule : rules_) {
    for (auto& [vlan, state] : rule.per_vlan) {
      if (!state.armed || state.fired) continue;
      // Absence-style triggers only make sense once one full window has
      // passed since the inmate came up.
      if (now - state.armed_at < rule.trigger.window) continue;
      while (!state.events.empty() &&
             now - state.events.front() > rule.trigger.window)
        state.events.pop_front();
      if (compare(rule.trigger.cmp,
                  static_cast<std::int64_t>(state.events.size()),
                  rule.trigger.threshold)) {
        state.fired = true;
        firings.push_back(
            Firing{vlan, rule.trigger.action, rule.trigger.str()});
      }
    }
  }
  return firings;
}

}  // namespace gq::cs
