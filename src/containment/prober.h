// Policy prober — the paper's §8 future-work item, implemented:
//
//   "a traffic generation tool that can automatically produce test
//    cases for a given concrete containment policy would strengthen
//    confidence in the policy's correctness significantly."
//
// The prober sweeps a policy with synthetic flows over a matrix of
// destinations × ports × protocols, records every decision, checks the
// decisions against declared expectations (e.g. "flows to *:25/tcp must
// never be FORWARDed"), and renders a human-readable test card. It runs
// entirely offline — no farm needed — so a policy can be validated
// before any specimen touches it.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "containment/policy.h"
#include "containment/trigger.h"
#include "shim/shim.h"
#include "util/addr.h"

namespace gq::cs {

class PolicyProber {
 public:
  struct Probe {
    FlowInfo info;
    Decision decision;
  };
  struct Expectation {
    FlowPattern pattern;
    std::set<shim::Verdict> allowed;
    std::string rationale;
  };
  struct Violation {
    Probe probe;
    Expectation expectation;
  };

  explicit PolicyProber(std::shared_ptr<Policy> policy);

  /// Extend the probe matrix (sensible defaults are preloaded: common
  /// service ports, a spread of external destinations, TCP and UDP).
  void add_port(std::uint16_t port);
  void add_destination(util::Ipv4Addr addr);
  void clear_matrix();

  /// Declare a safety expectation: flows matching `pattern` may only
  /// receive verdicts in `allowed`.
  void expect(const FlowPattern& pattern, std::set<shim::Verdict> allowed,
              std::string rationale);

  /// Convenience: the universal harm-prevention expectations — direct
  /// SMTP must never be forwarded, and nothing may be forwarded
  /// unfiltered to arbitrary low ports.
  void expect_no_spam_escape();

  /// Run the sweep for flows from `vlan`; returns all probes.
  const std::vector<Probe>& run(std::uint16_t vlan = 16);

  [[nodiscard]] const std::vector<Probe>& probes() const { return probes_; }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }

  /// Render the decision table + verdict histogram + violations.
  [[nodiscard]] std::string render_card() const;

 private:
  std::shared_ptr<Policy> policy_;
  std::vector<std::uint16_t> ports_;
  std::vector<util::Ipv4Addr> destinations_;
  std::vector<Expectation> expectations_;
  std::vector<Probe> probes_;
  std::vector<Violation> violations_;
};

}  // namespace gq::cs
