#include "containment/server.h"

#include <algorithm>

#include "util/bytes.h"
#include "util/log.h"
#include "util/strings.h"

namespace gq::cs {

namespace {
constexpr const char* kLog = "cs";
constexpr util::Duration kTriggerPollInterval = util::seconds(10);

std::optional<LifecycleAction> lifecycle_action_from_name(
    const std::string& name) {
  for (LifecycleAction action :
       {LifecycleAction::kRevert, LifecycleAction::kReboot,
        LifecycleAction::kTerminate}) {
    if (name == lifecycle_action_name(action)) return action;
  }
  return std::nullopt;
}

}  // namespace

obs::FarmEvent to_farm_event(const CsEvent& event, const std::string& subfarm) {
  obs::FarmEvent out;
  switch (event.kind) {
    case CsEvent::Kind::kFlowDecision:
      out.kind = obs::FarmEvent::Kind::kCsDecision;
      break;
    case CsEvent::Kind::kInfectionServed:
      out.kind = obs::FarmEvent::Kind::kInfectionServed;
      break;
    case CsEvent::Kind::kTriggerFired:
      out.kind = obs::FarmEvent::Kind::kTriggerFired;
      break;
  }
  out.time = event.time;
  out.subfarm = subfarm;
  out.vlan = event.vlan;
  out.orig_dst = event.orig_dst;
  out.proto = event.proto;
  out.verdict = event.verdict;
  out.policy_name = event.policy_name;
  out.annotation = event.annotation;
  out.limit_bytes_per_sec = event.limit_bytes_per_sec;
  out.sample_name = event.sample_name;
  out.sample_md5 = event.sample_md5;
  out.trigger_text = event.trigger_text;
  out.trigger_action = lifecycle_action_name(event.action);
  return out;
}

std::optional<CsEvent> to_cs_event(const obs::FarmEvent& event) {
  CsEvent out;
  switch (event.kind) {
    case obs::FarmEvent::Kind::kCsDecision:
      out.kind = CsEvent::Kind::kFlowDecision;
      break;
    case obs::FarmEvent::Kind::kInfectionServed:
      out.kind = CsEvent::Kind::kInfectionServed;
      break;
    case obs::FarmEvent::Kind::kTriggerFired:
      out.kind = CsEvent::Kind::kTriggerFired;
      break;
    default:
      return std::nullopt;  // Gateway/sink event: no CsEvent shape.
  }
  out.time = event.time;
  out.vlan = event.vlan;
  out.orig_dst = event.orig_dst;
  out.proto = event.proto;
  out.verdict = event.verdict;
  out.policy_name = event.policy_name;
  out.annotation = event.annotation;
  out.limit_bytes_per_sec = event.limit_bytes_per_sec;
  out.sample_name = event.sample_name;
  out.sample_md5 = event.sample_md5;
  out.trigger_text = event.trigger_text;
  if (auto action = lifecycle_action_from_name(event.trigger_action))
    out.action = *action;
  return out;
}

/// One inmate-side TCP session (a contained flow terminated at the CS).
struct ContainmentServer::Session
    : std::enable_shared_from_this<ContainmentServer::Session> {
  std::shared_ptr<net::TcpConnection> inmate;
  std::vector<std::uint8_t> buffer;
  bool shim_parsed = false;
  FlowInfo info;
  std::shared_ptr<Policy> policy;
  std::unique_ptr<RewriteHandler> handler;
  std::unique_ptr<SessionContext> context;
  std::shared_ptr<net::TcpConnection> target;
  bool target_up = false;
  bool counted_rewrite = false;
};

/// RewriteContext implementation wiring a Session's two legs.
class ContainmentServer::SessionContext : public RewriteContext {
 public:
  // Holds a raw back-pointer: the context is owned by the session
  // (`Session::context`), so it can never outlive it — and a shared_ptr
  // here would form a session→context→session cycle that leaks every
  // rewritten flow.
  SessionContext(ContainmentServer& server, std::shared_ptr<Session> session)
      : server_(server), session_(session.get()) {}

  void send_to_inmate(std::span<const std::uint8_t> data) override {
    if (session_->inmate) session_->inmate->send(data);
  }
  using RewriteContext::send_to_inmate;
  using RewriteContext::send_to_target;

  void close_inmate() override {
    if (session_->inmate) session_->inmate->close();
  }

  void connect_outbound() override {
    if (session_->target) return;
    auto session = session_->shared_from_this();
    auto& server = server_;
    session->target = server.stack_.connect(
        {server.gateway_mgmt_, session->info.shim.nonce_port});
    session->target->on_connected = [session] {
      session->target_up = true;
      if (session->handler)
        session->handler->on_target_connected(*session->context);
    };
    session->target->on_data = [session](std::span<const std::uint8_t> d) {
      if (session->handler)
        session->handler->on_target_data(*session->context, d);
    };
    session->target->on_remote_close = [session] {
      if (session->handler)
        session->handler->on_target_closed(*session->context);
    };
    session->target->on_reset = [session] {
      session->target_up = false;
      if (session->handler)
        session->handler->on_target_closed(*session->context);
    };
  }

  void send_to_target(std::span<const std::uint8_t> data) override {
    if (session_->target) session_->target->send(data);
  }

  void close_target() override {
    if (session_->target) session_->target->close();
  }

  [[nodiscard]] bool target_connected() const override {
    return session_->target_up;
  }

  [[nodiscard]] const FlowInfo& info() const override {
    return session_->info;
  }

  [[nodiscard]] sim::EventLoop& loop() override {
    return server_.stack_.loop();
  }

 private:
  ContainmentServer& server_;
  Session* session_;
};

ContainmentServer::ContainmentServer(net::HostStack& stack,
                                     std::uint16_t listen_port,
                                     util::Ipv4Addr gateway_mgmt)
    : stack_(stack), listen_port_(listen_port), gateway_mgmt_(gateway_mgmt) {
  owned_telemetry_ = std::make_unique<obs::Telemetry>();
  telemetry_ = owned_telemetry_.get();
  rebind_metrics();
  stack_.listen(listen_port_,
                [this](std::shared_ptr<net::TcpConnection> conn) {
                  on_accept(std::move(conn));
                });
  udp_sock_ = stack_.udp_open(listen_port_);
  udp_sock_->on_datagram = [this](util::Endpoint from,
                                  std::vector<std::uint8_t> data) {
    on_udp(from, std::move(data));
  };
  control_sock_ = stack_.udp_open(0);
  stack_.loop().schedule_in(kTriggerPollInterval,
                            [this] { evaluate_triggers(); });
}

ContainmentServer::~ContainmentServer() = default;

void ContainmentServer::rebind_metrics() {
  const std::string prefix =
      "cs." + (subfarm_name_.empty() ? std::string("default") : subfarm_name_) +
      ".";
  auto& metrics = telemetry_->metrics();
  decisions_ctr_ = &metrics.counter(prefix + "decisions");
  infections_ctr_ = &metrics.counter(prefix + "infections_served");
  triggers_ctr_ = &metrics.counter(prefix + "triggers_fired");
  rewrites_gauge_ = &metrics.gauge(prefix + "rewrites_active");
  shed_refused_ctr_ = &metrics.counter(prefix + "shed_refused");
  shed_deferred_ctr_ = &metrics.counter(prefix + "shed_deferred");
  pending_gauge_ = &metrics.gauge(prefix + "pending_decisions");
}

void ContainmentServer::set_telemetry(obs::Telemetry* telemetry,
                                      std::string subfarm) {
  if (legacy_subscription_) {
    telemetry_->bus().unsubscribe(*legacy_subscription_);
    legacy_subscription_.reset();
  }
  telemetry_ = telemetry ? telemetry : owned_telemetry_.get();
  subfarm_name_ = std::move(subfarm);
  rebind_metrics();
  if (legacy_handler_) set_event_handler(legacy_handler_);
}

void ContainmentServer::set_event_handler(CsEventHandler handler) {
  if (legacy_subscription_) {
    telemetry_->bus().unsubscribe(*legacy_subscription_);
    legacy_subscription_.reset();
  }
  legacy_handler_ = std::move(handler);
  if (!legacy_handler_) return;
  legacy_subscription_ =
      telemetry_->bus().subscribe([this](const obs::FarmEvent& event) {
        if (auto legacy = to_cs_event(event)) legacy_handler_(*legacy);
      });
}

// --- PolicyServices backend -------------------------------------------------

PolicyServices::InmateList ContainmentServer::list_inmates() {
  return inmate_source_ ? inmate_source_->list_inmates()
                        : PolicyServices::InmateList{};
}

bool ContainmentServer::can_list_inmates() const {
  return inmate_source_ && inmate_source_->can_list_inmates();
}

std::optional<std::string> ContainmentServer::next_sample(std::uint16_t vlan) {
  return next_sample_name(vlan);
}

void ContainmentServer::report_infection(std::uint16_t vlan,
                                         const std::string& name,
                                         const std::string& md5) {
  infections_ctr_->inc();
  CsEvent event;
  event.kind = CsEvent::Kind::kInfectionServed;
  event.vlan = vlan;
  event.sample_name = name;
  event.sample_md5 = md5;
  emit_event(std::move(event));
}

void ContainmentServer::send_udp(util::Endpoint to,
                                 const std::string& message) {
  control_sock_->send_to(to, util::to_bytes(message));
}

void ContainmentServer::configure(const ContainmentConfig& config,
                                  PolicyEnv env_base) {
  register_builtin_policies();
  // Chain the services backend: the caller's backend (if any) keeps
  // providing list_inmates — only the subfarm knows its inmate table —
  // while this server answers samples, infections and UDP hints.
  inmate_source_ = env_base.backend;
  env_ = std::move(env_base);
  env_.backend = this;
  for (const auto& [name, endpoint] : config.services)
    env_.services[name] = endpoint;
  if (!env_.samples) env_.samples = &samples_;

  // Every (re)configuration starts a new policy generation: verdicts the
  // gateway cached under the previous configuration must stop matching.
  ++policy_epoch_;

  policies_.clear();
  infections_.clear();
  for (const auto& binding : config.bindings) {
    if (!binding.decider.empty()) {
      auto policy = PolicyRegistry::instance().create(binding.decider, env_);
      if (!policy) {
        throw std::runtime_error("config references unknown policy '" +
                                 binding.decider + "'");
      }
      policies_.push_back(PolicyBinding{binding.range, std::move(policy)});
    }
    if (!binding.infection_glob.empty()) {
      InfectionBinding infection;
      infection.range = binding.range;
      infection.batch = env_.samples->match(binding.infection_glob);
      if (infection.batch.empty()) {
        GQ_WARN(kLog, "infection glob '%s' matches no samples",
                binding.infection_glob.c_str());
      }
      infections_.push_back(std::move(infection));
    }
  }
  for (const auto& trigger : config.triggers) {
    triggers_.add(trigger.range.first, trigger.range.last, trigger.trigger);
    trigger_ranges_.push_back(trigger.range);
  }

  // The new generation's compiled table ships immediately so the
  // gateway's first-contact datapath flips to the fresh rules in the
  // same reconfiguration step that invalidates its verdict cache.
  publish_policy_table(compile_policy_table());
}

void ContainmentServer::bind_policy(std::uint16_t vlan_first,
                                    std::uint16_t vlan_last,
                                    std::shared_ptr<Policy> policy) {
  policies_.push_back(
      PolicyBinding{VlanRange{vlan_first, vlan_last}, std::move(policy)});
  // Same epoch, new rules: the gateway re-installs idempotently.
  publish_policy_table(compile_policy_table());
}

void ContainmentServer::bind_policy_front(std::uint16_t vlan_first,
                                          std::uint16_t vlan_last,
                                          std::shared_ptr<Policy> policy) {
  policies_.insert(
      policies_.begin(),
      PolicyBinding{VlanRange{vlan_first, vlan_last}, std::move(policy)});
  publish_policy_table(compile_policy_table());
}

shim::TableSync ContainmentServer::compile_policy_table() const {
  shim::TableSync sync;
  sync.epoch = policy_epoch_;
  for (std::size_t i = 0; i < policies_.size(); ++i) {
    const auto& binding = policies_[i];
    const bool trigger_coupled =
        std::any_of(trigger_ranges_.begin(), trigger_ranges_.end(),
                    [&](const VlanRange& r) {
                      return r.first <= binding.range.last &&
                             binding.range.first <= r.last;
                    });
    std::optional<std::vector<shim::TableRule>> compiled;
    if (!trigger_coupled) compiled = binding.policy->compile();
    if (!compiled) {
      // Non-compilable (or trigger-coupled: the trigger engine must see
      // every flow via decide()): one catch-all fallback for the range.
      shim::TableRule rule;
      compiled = std::vector<shim::TableRule>{rule};
    }
    for (auto rule : *compiled) {
      rule.vlan_first = binding.range.first;
      rule.vlan_last = binding.range.last;
      rule.priority = static_cast<std::uint16_t>(i);
      rule.policy_name = binding.policy->name();
      sync.rules.push_back(std::move(rule));
    }
  }
  return sync;
}

void ContainmentServer::publish_policy_table(const shim::TableSync& table) {
  std::vector<std::uint8_t> frame;
  try {
    frame = table.encode();
  } catch (const std::length_error&) {
    // An oversized table fails safe: the gateway keeps (and eventually
    // epoch-expires) its previous table and every flow takes the shim
    // path.
    GQ_WARN(kLog, "compiled policy table too large to sync (%zu rules)",
            table.rules.size());
    return;
  }
  control_sock_->send_to({gateway_mgmt_, shim::kTableSyncPort}, frame);
  GQ_INFO(kLog, "pushed policy table: epoch %llu, %zu rules",
          static_cast<unsigned long long>(table.epoch), table.rules.size());
}

void ContainmentServer::set_inmate_controller(util::Endpoint controller) {
  controller_ = controller;
}

void ContainmentServer::notify_inmate_started(std::uint16_t vlan) {
  triggers_.inmate_started(vlan, stack_.loop().now());
}

std::optional<std::string> ContainmentServer::next_sample_name(
    std::uint16_t vlan) {
  for (auto& infection : infections_) {
    if (!infection.range.contains(vlan) || infection.batch.empty()) continue;
    std::size_t& cursor = infection.cursor[vlan];
    const std::string& name = infection.batch[cursor % infection.batch.size()];
    ++cursor;
    return name;
  }
  return std::nullopt;
}

void ContainmentServer::fill_cache_block(shim::ResponseShim& response,
                                         const Decision& decision) const {
  response.policy_epoch = policy_epoch_;
  if (!decision.cacheable) return;
  if (decision.verdict == shim::Verdict::kRewrite) {
    GQ_WARN(kLog, "policy marked a REWRITE decision cacheable; refusing");
    return;
  }
  response.cacheable = true;
  response.cache_scope = decision.cache_scope;
  response.cache_ttl_ms = decision.cache_ttl_ms;
}

std::shared_ptr<Policy> ContainmentServer::policy_for(std::uint16_t vlan) {
  for (auto& binding : policies_)
    if (binding.range.contains(vlan)) return binding.policy;
  return nullptr;
}

Decision ContainmentServer::decide(
    FlowInfo& info, std::shared_ptr<Policy>& policy_out,
    std::unique_ptr<RewriteHandler>* handler_out) {
  ++flows_decided_;
  decisions_ctr_->inc();
  policy_out = policy_for(info.vlan());
  Decision decision = policy_out ? policy_out->decide(info)
                                 : Decision::drop("no policy bound");
  if (decision.verdict == shim::Verdict::kRewrite && handler_out) {
    *handler_out = policy_out->make_rewrite_handler(info);
    if (!*handler_out && info.proto == pkt::FlowProto::kTcp) {
      decision = Decision::drop("rewrite without handler");
    }
  }
  triggers_.observe_flow(info.vlan(), info.dst(), info.proto,
                         stack_.loop().now());

  CsEvent event;
  event.kind = CsEvent::Kind::kFlowDecision;
  event.vlan = info.vlan();
  event.orig_dst = info.dst();
  event.proto = info.proto;
  event.verdict = decision.verdict;
  event.policy_name = policy_out ? policy_out->name() : "DefaultDeny";
  event.annotation = decision.annotation;
  event.limit_bytes_per_sec = decision.limit_bytes_per_sec;
  emit_event(std::move(event));
  return decision;
}

void ContainmentServer::on_accept(std::shared_ptr<net::TcpConnection> conn) {
  auto session = std::make_shared<Session>();
  session->inmate = conn;
  conn->on_data = [this, session](std::span<const std::uint8_t> data) {
    on_inmate_data(session, data);
  };
  conn->on_remote_close = [session] {
    if (session->handler && session->context)
      session->handler->on_inmate_closed(*session->context);
    if (session->inmate) session->inmate->close();
  };
  conn->on_closed = [this, session] {
    if (session->counted_rewrite && rewrites_active_ > 0) {
      --rewrites_active_;
      rewrites_gauge_->sub(1);
    }
    if (session->target) session->target->close();
    // The inmate leg is fully terminated — nothing fires on this conn
    // again (enter_closed keeps it alive through this callback). Drop
    // the session's conn refs so the lambda-held cycles (conn→lambda→
    // session→conn, and likewise for the target leg) unwind once the
    // stack releases each connection.
    session->inmate.reset();
    session->target.reset();
  };
}

void ContainmentServer::on_inmate_data(std::shared_ptr<Session> session,
                                       std::span<const std::uint8_t> data) {
  if (session->shim_parsed) {
    if (session->handler)
      session->handler->on_inmate_data(*session->context, data);
    return;
  }
  session->buffer.insert(session->buffer.end(), data.begin(), data.end());
  if (session->buffer.size() < shim::kRequestShimSize) return;
  auto request = shim::RequestShim::parse(session->buffer);
  if (!request) {
    GQ_WARN(kLog, "malformed request shim from %s; refusing flow",
            session->inmate->remote().str().c_str());
    session->inmate->abort();
    return;
  }
  session->shim_parsed = true;
  session->info.shim = *request;
  session->info.proto = pkt::FlowProto::kTcp;
  std::vector<std::uint8_t> leftover(
      session->buffer.begin() + shim::kRequestShimSize,
      session->buffer.end());
  session->buffer.clear();

  submit_decision(
      [this, session, leftover = std::move(leftover)]() mutable {
        finish_tcp_decision(session, std::move(leftover));
      },
      [this, session] {
        // Refused under overload: an explicit DROP, attributed to
        // "OverloadShed" so the report stream can tell shedding apart
        // from a lost or timed-out shim exchange.
        shim::ResponseShim response;
        response.orig = session->info.shim.orig;
        response.resp = session->info.shim.resp;
        response.verdict = shim::Verdict::kDrop;
        response.policy_name = "OverloadShed";
        response.annotation = "decision queue full";
        response.policy_epoch = policy_epoch_;
        session->inmate->send(response.encode());
        session->inmate->close();
        CsEvent event;
        event.kind = CsEvent::Kind::kFlowDecision;
        event.vlan = session->info.vlan();
        event.orig_dst = session->info.dst();
        event.proto = pkt::FlowProto::kTcp;
        event.verdict = shim::Verdict::kDrop;
        event.policy_name = "OverloadShed";
        event.annotation = "decision queue full";
        emit_event(std::move(event));
      });
}

void ContainmentServer::finish_tcp_decision(
    std::shared_ptr<Session> session, std::vector<std::uint8_t> leftover) {
  // The inmate leg may have been reset while the decision sat queued.
  if (!session->inmate) return;

  Decision decision =
      decide(session->info, session->policy, &session->handler);

  shim::ResponseShim response;
  response.orig = session->info.shim.orig;
  response.resp = (decision.verdict == shim::Verdict::kRedirect ||
                   decision.verdict == shim::Verdict::kReflect)
                      ? decision.target
                      : session->info.shim.resp;
  response.verdict = decision.verdict;
  response.policy_name =
      session->policy ? session->policy->name() : "DefaultDeny";
  response.annotation = decision.annotation;
  response.limit_bytes_per_sec = decision.limit_bytes_per_sec;
  fill_cache_block(response, decision);
  session->inmate->send(response.encode());

  if (decision.verdict == shim::Verdict::kRewrite && session->handler) {
    ++rewrites_active_;
    rewrites_gauge_->add(1);
    session->counted_rewrite = true;
    session->context = std::make_unique<SessionContext>(*this, session);
    session->handler->on_start(*session->context);
    if (!leftover.empty())
      session->handler->on_inmate_data(*session->context, leftover);
  } else {
    // Endpoint verdicts: our part is done; the gateway takes over (and
    // typically resets this leg). Close gracefully from our side.
    session->inmate->close();
  }
}

void ContainmentServer::submit_decision(std::function<void()> run,
                                        std::function<void()> refuse) {
  if (!overload_.active()) {
    run();
    return;
  }
  if (overload_.shed_queue_depth > 0 &&
      pending_decisions_.size() >= overload_.shed_queue_depth) {
    if (overload_.refuse) {
      shed_refused_ctr_->inc();
      refuse();
      return;
    }
    shed_deferred_ctr_->inc();
  }
  pending_decisions_.push_back(std::move(run));
  pending_gauge_->set(static_cast<std::int64_t>(pending_decisions_.size()));
  if (!drain_scheduled_) {
    drain_scheduled_ = true;
    stack_.loop().schedule_in(overload_.decision_delay,
                              [this] { drain_decisions(); });
  }
}

void ContainmentServer::drain_decisions() {
  drain_scheduled_ = false;
  if (pending_decisions_.empty()) return;
  auto run = std::move(pending_decisions_.front());
  pending_decisions_.pop_front();
  pending_gauge_->set(static_cast<std::int64_t>(pending_decisions_.size()));
  run();
  if (!pending_decisions_.empty()) {
    drain_scheduled_ = true;
    stack_.loop().schedule_in(overload_.decision_delay,
                              [this] { drain_decisions(); });
  }
}

void ContainmentServer::on_udp(util::Endpoint from,
                               std::vector<std::uint8_t> data) {
  auto request = shim::RequestShim::parse(data);
  if (!request) return;
  std::vector<std::uint8_t> payload(data.begin() + shim::kRequestShimSize,
                                    data.end());
  submit_decision(
      [this, from, request = *request, payload = std::move(payload)]() mutable {
        finish_udp_decision(from, request, std::move(payload));
      },
      [this, from, request = *request] {
        shim::ResponseShim response;
        response.orig = request.orig;
        response.resp = request.resp;
        response.verdict = shim::Verdict::kDrop;
        response.policy_name = "OverloadShed";
        response.annotation = "decision queue full";
        response.policy_epoch = policy_epoch_;
        udp_sock_->send_to(from, response.encode());
        CsEvent event;
        event.kind = CsEvent::Kind::kFlowDecision;
        event.vlan = request.vlan;
        event.orig_dst = request.resp;
        event.proto = pkt::FlowProto::kUdp;
        event.verdict = shim::Verdict::kDrop;
        event.policy_name = "OverloadShed";
        event.annotation = "decision queue full";
        emit_event(std::move(event));
      });
}

void ContainmentServer::finish_udp_decision(util::Endpoint from,
                                            shim::RequestShim request,
                                            std::vector<std::uint8_t> data) {
  std::span<const std::uint8_t> payload(data);

  FlowInfo info;
  info.shim = request;
  info.proto = pkt::FlowProto::kUdp;

  const auto key = std::make_pair(request.orig, request.resp);
  auto cached = udp_decisions_.find(key);
  std::shared_ptr<Policy> policy = policy_for(info.vlan());
  Decision decision;
  if (cached == udp_decisions_.end()) {
    decision = decide(info, policy, nullptr);
    udp_decisions_[key] = decision;
  } else {
    decision = cached->second;
  }

  shim::ResponseShim response;
  response.orig = request.orig;
  response.resp = (decision.verdict == shim::Verdict::kRedirect ||
                   decision.verdict == shim::Verdict::kReflect)
                      ? decision.target
                      : request.resp;
  response.verdict = decision.verdict;
  response.policy_name = policy ? policy->name() : "DefaultDeny";
  response.annotation = decision.annotation;
  response.limit_bytes_per_sec = decision.limit_bytes_per_sec;
  fill_cache_block(response, decision);
  auto reply = response.encode();

  if (decision.verdict == shim::Verdict::kRewrite && policy) {
    if (auto rewritten = policy->rewrite_udp(info, payload)) {
      reply.insert(reply.end(), rewritten->begin(), rewritten->end());
    }
  }
  udp_sock_->send_to(from, reply);
}

void ContainmentServer::evaluate_triggers() {
  for (const auto& firing : triggers_.evaluate(stack_.loop().now())) {
    GQ_INFO(kLog, "trigger fired for vlan %u: %s", firing.vlan,
            firing.trigger_text.c_str());
    triggers_ctr_->inc();
    CsEvent event;
    event.kind = CsEvent::Kind::kTriggerFired;
    event.vlan = firing.vlan;
    event.trigger_text = firing.trigger_text;
    event.action = firing.action;
    emit_event(std::move(event));
    send_lifecycle(firing.vlan, firing.action);
  }
  stack_.loop().schedule_in(kTriggerPollInterval,
                            [this] { evaluate_triggers(); });
}

void ContainmentServer::send_lifecycle(std::uint16_t vlan,
                                       LifecycleAction action) {
  if (!controller_) {
    GQ_WARN(kLog, "no inmate controller configured; %s vlan %u not sent",
            lifecycle_action_name(action), vlan);
    return;
  }
  // The paper's "simple text-based message format" (§6.3).
  const std::string message = util::format(
      "%s %u\n", lifecycle_action_name(action), vlan);
  control_sock_->send_to(*controller_, util::to_bytes(message));
}

void ContainmentServer::emit_event(CsEvent event) {
  event.time = stack_.loop().now();
  telemetry_->publish(to_farm_event(event, subfarm_name_));
}

}  // namespace gq::cs
