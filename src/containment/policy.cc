#include "containment/policy.h"

#include "util/log.h"
#include "util/strings.h"

namespace gq::cs {

void RewriteContext::send_to_inmate(std::string_view text) {
  send_to_inmate(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

void RewriteContext::send_to_target(std::string_view text) {
  send_to_target(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

util::Endpoint PolicyEnv::service(const std::string& name) const {
  auto it = services.find(util::to_lower(name));
  return it == services.end() ? util::Endpoint{} : it->second;
}

bool PolicyEnv::has_service(const std::string& name) const {
  return services.count(util::to_lower(name)) > 0;
}

Decision Policy::decide(const FlowInfo& info) {
  (void)info;
  return Decision::drop("default-deny");
}

std::unique_ptr<RewriteHandler> Policy::make_rewrite_handler(
    const FlowInfo&) {
  return nullptr;
}

std::optional<std::vector<std::uint8_t>> Policy::rewrite_udp(
    const FlowInfo&, std::span<const std::uint8_t>) {
  return std::nullopt;
}

PolicyRegistry& PolicyRegistry::instance() {
  static PolicyRegistry registry;
  return registry;
}

void PolicyRegistry::register_policy(const std::string& name,
                                     Factory factory) {
  factories_[util::to_lower(name)] = std::move(factory);
}

std::shared_ptr<Policy> PolicyRegistry::create(const std::string& name,
                                               const PolicyEnv& env) const {
  auto it = factories_.find(util::to_lower(name));
  if (it == factories_.end()) {
    GQ_WARN("cs.policy", "unknown policy '%s'", name.c_str());
    return nullptr;
  }
  return it->second(env);
}

std::vector<std::string> PolicyRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

}  // namespace gq::cs
