// Malware sample library for auto-infection and batch processing
// (paper §6.6). In the real GQ these are binary files on disk matched
// by globs like "rustock.100921.*.exe"; here samples are registered by
// experiment code with synthesized (deterministic) payload bytes whose
// MD5 hashes appear in the activity reports, exactly as in Figure 7.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gq::cs {

class SampleLibrary {
 public:
  /// Register a sample by name with auto-generated payload content.
  void add(const std::string& name);

  /// Register a sample with explicit payload bytes.
  void add(const std::string& name, std::string payload);

  /// Names matching a glob, in registration order (a "batch").
  [[nodiscard]] std::vector<std::string> match(
      const std::string& glob) const;

  [[nodiscard]] std::optional<std::string> payload(
      const std::string& name) const;

  /// Lowercase hex MD5 of a sample's payload.
  [[nodiscard]] std::optional<std::string> md5(const std::string& name) const;

  [[nodiscard]] std::size_t size() const { return order_.size(); }

 private:
  std::map<std::string, std::string> payloads_;
  std::vector<std::string> order_;
};

}  // namespace gq::cs
