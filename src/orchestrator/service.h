// Multi-shard detonation service: one Orchestrator per ShardedFarm
// shard, with deterministic round-robin job placement. This is the
// "millions of users" serving front door — tenants see one submit()
// API; capacity scales with the shard count, and because placement
// depends only on submission order (never on wall-clock or shard load),
// a same-seed rerun of a batch schedules every job identically, which
// is what lets the s3 bench gate bit-identical batch replay.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/sharded_farm.h"
#include "orchestrator/orchestrator.h"

namespace gq::orch {

class DetonationService {
 public:
  struct Submission {
    std::size_t shard = 0;
    std::uint64_t job = 0;
  };

  /// Construct on the main thread after the ShardedFarm, before any
  /// run_for (the workers are quiescent, so per-shard construction —
  /// subfarms, inmates, registry mutation — is safe). The SlotBuilder
  /// runs once per slot per shard; slot subfarm names get a per-shard
  /// prefix so they stay unique within each shard's gateway.
  DetonationService(core::ShardedFarm& farm, OrchestratorOptions options,
                    const InmatePool::SlotBuilder& builder);

  void register_tenant(const std::string& name);
  void register_profile(const std::string& name,
                        Orchestrator::ProfileFactory factory);

  /// Round-robin submit. The cursor advances on every call — accepted
  /// or rejected — so placement is a pure function of submission order.
  Submission submit(const JobSpec& spec);

  /// Compact every shard's job archives into one `.fdb` store at
  /// `path`, shards in index order then jobs in id order — a pure
  /// function of the batch, so same-seed reruns produce byte-identical
  /// stores. Returns the row count, or nullopt on I/O error. Call
  /// between run epochs (workers quiescent).
  std::optional<std::size_t> compact_flowdb(const std::string& path);

  /// Incremental flush into the segmented store at `dir` (created on
  /// first use): every job archive not yet flushed — shards in index
  /// order, jobs in id order — is sealed into ONE new segment. With
  /// `sealed_only` (the live-farm default) only fully recycled jobs
  /// are taken, so the segment content at a lockstep-epoch boundary is
  /// a pure function of the batch and identical at any worker-thread
  /// count; a final drain flush passes false to also snapshot
  /// still-running jobs. Zero new jobs appends nothing (returns 0).
  /// Call between run epochs (workers quiescent); nullopt on I/O
  /// error or a corrupt store dir.
  std::optional<std::size_t> append_flowdb_store(const std::string& dir,
                                                 bool sealed_only = true);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] Orchestrator& shard(std::size_t i) { return *shards_.at(i); }

  // Aggregates over all shards.
  [[nodiscard]] std::uint64_t jobs_submitted() const;
  [[nodiscard]] std::uint64_t jobs_completed() const;
  [[nodiscard]] std::uint64_t jobs_rejected() const;
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  std::vector<std::unique_ptr<Orchestrator>> shards_;
  std::size_t next_shard_ = 0;
};

}  // namespace gq::orch
