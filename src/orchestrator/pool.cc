#include "orchestrator/pool.h"

#include "obs/metrics.h"
#include "util/log.h"
#include "util/strings.h"

namespace gq::orch {

namespace {
constexpr const char* kLog = "orch";
}

const char* slot_state_name(SlotState state) {
  switch (state) {
    case SlotState::kWarming: return "warming";
    case SlotState::kAvailable: return "available";
    case SlotState::kLeased: return "leased";
    case SlotState::kRecycling: return "recycling";
  }
  return "?";
}

InmatePool::InmatePool(core::Farm& farm, PoolOptions options,
                       const SlotBuilder& builder)
    : farm_(farm), options_(std::move(options)) {
  recycling_gauge_ = &farm_.metrics().gauge("inmate.pool.recycling");
  raw_iron_.bind_metrics(farm_.metrics());

  // Phase 1: every subfarm, fully configured — sinks, catalog, policy —
  // before any inmate exists, so an inmate-less replay rig built from
  // the same builder consumes the identical farm RNG prefix.
  slots_.reserve(options_.slots);
  for (std::size_t i = 0; i < options_.slots; ++i) {
    auto& subfarm = farm_.add_subfarm(
        util::format("%s%zu", options_.name_prefix.c_str(), i));
    builder(subfarm, i);
    PoolSlot slot;
    slot.index = i;
    slot.subfarm = &subfarm;
    slots_.push_back(slot);
  }

  // Phase 2: inmates last. Each slot watches its inmate's life cycle to
  // learn when warming / recycling completes.
  if (!options_.create_inmates) return;
  for (auto& slot : slots_) {
    slot.inmate = &slot.subfarm->create_inmate(options_.hosting);
    if (options_.hosting == inm::HostingKind::kRawIron) {
      raw_iron_.register_system(*slot.inmate);
    }
    slot.inmate->add_state_listener(
        [this, &slot](inm::Inmate&, inm::InmateState, inm::InmateState s) {
          on_inmate_state(slot, s);
        });
  }
}

std::size_t InmatePool::available() const {
  std::size_t n = 0;
  for (const auto& slot : slots_) {
    if (slot.state == SlotState::kAvailable) ++n;
  }
  return n;
}

PoolSlot* InmatePool::acquire() {
  for (auto& slot : slots_) {
    if (slot.state == SlotState::kAvailable) {
      slot.state = SlotState::kLeased;
      return &slot;
    }
  }
  return nullptr;
}

void InmatePool::recycle(PoolSlot& slot) {
  slot.state = SlotState::kRecycling;
  ++slot.recycles;
  ++total_recycles_;
  recycling_gauge_->add(1);

  const std::uint16_t vlan = slot.inmate ? slot.inmate->vlan() : 0;

  // Flush the gateway verdict cache for this VLAN through the same
  // trigger-event path a containment REVERT action takes (the Farm
  // constructor's kTriggerFired subscription), so recycling and policy
  // triggers share one cache-invalidation mechanism.
  obs::FarmEvent ev;
  ev.kind = obs::FarmEvent::Kind::kTriggerFired;
  ev.time = farm_.loop().now();
  ev.subfarm = slot.subfarm->name();
  ev.vlan = vlan;
  ev.trigger_text = "recycle";
  ev.trigger_action = "REVERT";
  farm_.telemetry().publish(ev);

  // Drop the lease + NAT binding: the rebooted inmate re-binds via DHCP,
  // and no global->internal mapping from the previous tenant's job
  // survives into the next one.
  slot.subfarm->router().inmates().release(vlan);

  if (!slot.inmate) {
    // Inmate-less rig: nothing to revert; the slot is available again
    // immediately (recycling accounting still recorded above).
    recycling_gauge_->sub(1);
    slot.state = SlotState::kAvailable;
    if (on_ready_) on_ready_(slot);
    return;
  }

  GQ_DEBUG(kLog, "slot %zu (%s vlan %u): recycling", slot.index,
           slot.subfarm->name().c_str(), vlan);
  if (options_.hosting == inm::HostingKind::kRawIron) {
    raw_iron_.reimage(vlan);  // ~6 min PXE reimage (§6.4).
  } else {
    slot.inmate->revert();  // Snapshot restore.
  }
}

void InmatePool::on_inmate_state(PoolSlot& slot, inm::InmateState state) {
  if (state != inm::InmateState::kRunning) return;
  if (slot.state != SlotState::kWarming &&
      slot.state != SlotState::kRecycling) {
    return;
  }
  if (slot.state == SlotState::kRecycling) recycling_gauge_->sub(1);
  slot.state = SlotState::kAvailable;
  if (on_ready_) on_ready_(slot);
}

}  // namespace gq::orch
