#include "orchestrator/service.h"

#include "flowdb/flowdb.h"
#include "flowdb/store.h"
#include "util/strings.h"

namespace gq::orch {

DetonationService::DetonationService(core::ShardedFarm& farm,
                                     OrchestratorOptions options,
                                     const InmatePool::SlotBuilder& builder) {
  shards_.reserve(farm.shard_count());
  for (std::size_t s = 0; s < farm.shard_count(); ++s) {
    OrchestratorOptions shard_options = options;
    shard_options.pool.name_prefix =
        util::format("S%zu%s", s, options.pool.name_prefix.c_str());
    if (!options.archive_dir.empty()) {
      shard_options.archive_dir =
          util::format("%s/shard%zu", options.archive_dir.c_str(), s);
    }
    shards_.push_back(std::make_unique<Orchestrator>(
        farm.shard(s), std::move(shard_options), builder));
  }
}

void DetonationService::register_tenant(const std::string& name) {
  for (auto& shard : shards_) shard->register_tenant(name);
}

void DetonationService::register_profile(
    const std::string& name, Orchestrator::ProfileFactory factory) {
  for (auto& shard : shards_) shard->register_profile(name, factory);
}

DetonationService::Submission DetonationService::submit(const JobSpec& spec) {
  const std::size_t shard = next_shard_;
  next_shard_ = (next_shard_ + 1) % shards_.size();
  return {shard, shards_[shard]->submit(spec)};
}

std::optional<std::size_t> DetonationService::compact_flowdb(
    const std::string& path) {
  flowdb::Writer writer(&shards_.front()->farm().metrics());
  std::size_t rows = 0;
  for (const auto& shard : shards_) rows += shard->append_flowdb(writer);
  if (!writer.save(path)) return std::nullopt;
  return rows;
}

std::optional<std::size_t> DetonationService::append_flowdb_store(
    const std::string& dir, bool sealed_only) {
  auto* metrics = &shards_.front()->farm().metrics();
  auto store = flowdb::SegmentedStore::open(dir, metrics);
  if (!store) return std::nullopt;
  flowdb::Writer writer(metrics);
  std::size_t rows = 0;
  for (const auto& shard : shards_)
    rows += shard->append_flowdb_new(writer, sealed_only);
  if (rows == 0) return 0;
  if (!store->append_segment(writer)) return std::nullopt;
  return rows;
}

std::uint64_t DetonationService::jobs_submitted() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->jobs_submitted();
  return n;
}

std::uint64_t DetonationService::jobs_completed() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->jobs_completed();
  return n;
}

std::uint64_t DetonationService::jobs_rejected() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->jobs_rejected();
  return n;
}

std::size_t DetonationService::queue_depth() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) n += shard->queue_depth();
  return n;
}

}  // namespace gq::orch
