// Detonation-job orchestrator (DESIGN.md §13): the API-driven ephemeral
// sandbox layer over one core::Farm. Tenants submit JobSpecs; the
// orchestrator queues them, leases recycled slots from an InmatePool,
// infects the slot inmate with the requested sample (through the slot
// subfarm's BehaviorCatalog), lets it run for the budgeted simulated
// time while mirroring the inmate's raw ingress into a per-job
// trace::TraceTap archive, then harvests a per-job summary and recycles
// the slot. Every life-cycle transition is published as a kJobState
// FarmEvent — part of the canonical observable stream, so job
// scheduling itself is covered by the bit-identical replay gates.
//
// Threading: an Orchestrator is shard-affine like everything else that
// touches a Farm. submit()/cancel() are called either from inside the
// shard's loop or from the main thread between run_for() calls (the
// ShardedFarm quiescence windows); actual allocation always happens on
// the loop via a scheduled pump.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/farm.h"
#include "orchestrator/job.h"
#include "orchestrator/pool.h"
#include "trace/tap.h"

namespace gq::flowdb {
class Writer;
}

namespace gq::orch {

struct OrchestratorOptions {
  PoolOptions pool;
  /// Submission-queue bound; jobs submitted beyond it are kRejected
  /// (backpressure). 0 = unbounded.
  std::size_t max_queue = 0;
  /// Rotation budget for each per-job trace archive.
  trace::ArchiveConfig job_archive;
  /// When non-empty, each harvested job's archive is saved under
  /// "<archive_dir>/job-<id>" (load_trace-compatible).
  std::string archive_dir;
};

/// Everything the orchestrator knows about one job. Map-node storage:
/// addresses are stable for the orchestrator's lifetime.
struct JobRecord {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::kQueued;
  std::size_t slot = 0;   ///< Valid from kAllocated on.
  std::uint16_t vlan = 0;
  util::TimePoint submitted;
  util::TimePoint allocated;
  util::TimePoint harvested;
  util::TimePoint recycled;
  // Per-job activity, attributed by VLAN while the job runs.
  std::uint64_t flows = 0;
  std::map<int, std::uint64_t> verdicts;  ///< shim::Verdict -> count.
  std::uint64_t bytes_to_server = 0;
  std::uint64_t bytes_to_inmate = 0;
  std::uint64_t archived_packets = 0;
  /// The job's raw-ingress archive (alive until the orchestrator dies,
  /// so tests can replay/inspect without touching disk).
  std::unique_ptr<trace::TraceTap> archive;
  /// True once the job's slot has fully recycled — from then on the
  /// archive is immutable, so incremental FlowDB flushes can take it.
  bool archive_sealed = false;
  /// True once an incremental flush wrote this archive to a segmented
  /// store (jobs finish out of id order, so a high-water id won't do).
  bool flowdb_appended = false;
  sim::EventId budget_timer = 0;

  [[nodiscard]] std::string summary() const;
};

class Orchestrator {
 public:
  /// Builds a policy for a named profile on a slot subfarm; bound over
  /// the slot's full VLAN range when a job with that profile is
  /// allocated. The binding persists until another profile binds — so
  /// pools that mix named profiles with bare kDefaultProfile jobs
  /// should register a "default" factory too (a registered "default"
  /// is re-bound like any other; an unregistered one is a no-op that
  /// keeps the SlotBuilder's static containment config).
  using ProfileFactory =
      std::function<std::shared_ptr<cs::Policy>(core::Subfarm& subfarm)>;

  Orchestrator(core::Farm& farm, OrchestratorOptions options,
               const InmatePool::SlotBuilder& builder);
  ~Orchestrator();

  Orchestrator(const Orchestrator&) = delete;
  Orchestrator& operator=(const Orchestrator&) = delete;

  /// Tenants must be registered before their jobs are accepted —
  /// submissions for unknown tenants are kRejected, which is the
  /// submit-level check the fuzz suite drives with arbitrary names.
  void register_tenant(const std::string& name);
  [[nodiscard]] bool tenant_known(const std::string& name) const;

  void register_profile(const std::string& name, ProfileFactory factory);

  /// Submit a job. Always returns a job id; consult job(id)->state for
  /// kRejected (unknown tenant/profile, queue full) vs kQueued.
  std::uint64_t submit(const JobSpec& spec);

  /// Cancel a queued or running job. Queued jobs go straight to
  /// kCancelled; running jobs are harvested early (state kCancelled,
  /// archive intact) and their slot recycles as usual. False if the job
  /// is unknown or already terminal.
  bool cancel(std::uint64_t id);

  /// Append every job archive's indexed flows into a FlowDB writer,
  /// jobs in id order (deterministic: same batch → same store bytes).
  /// Returns the number of rows appended.
  std::size_t append_flowdb(flowdb::Writer& writer) const;

  /// Incremental variant for segmented stores: append only jobs not
  /// yet flushed, jobs in id order, and mark them flushed. With
  /// `sealed_only` (the live-farm case) only jobs whose slot has fully
  /// recycled — whose archives are immutable — are taken; a final
  /// drain pass can set it false to also snapshot still-running jobs,
  /// matching append_flowdb's semantics. Returns rows appended.
  std::size_t append_flowdb_new(flowdb::Writer& writer, bool sealed_only);

  /// Compact all job archives into one `.fdb` store at `path` (the
  /// farm metrics registry picks up the writer's flowdb.* counters).
  /// False on I/O error.
  bool compact_flowdb(const std::string& path);

  [[nodiscard]] const JobRecord* job(std::uint64_t id) const;
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t jobs_submitted() const { return submitted_; }
  [[nodiscard]] std::uint64_t jobs_completed() const { return completed_; }
  [[nodiscard]] std::uint64_t jobs_rejected() const { return rejected_; }
  [[nodiscard]] std::uint64_t jobs_cancelled() const { return cancelled_; }
  [[nodiscard]] InmatePool& pool() { return pool_; }
  [[nodiscard]] core::Farm& farm() { return farm_; }

 private:
  void pump();
  void allocate(JobRecord& job, PoolSlot& slot);
  void harvest(JobRecord& job, bool cancelled);
  void on_slot_ready(PoolSlot& slot);
  void on_flow_event(const obs::FarmEvent& event);
  void publish_state(const JobRecord& job);

  core::Farm& farm_;
  OrchestratorOptions options_;
  InmatePool pool_;
  util::Rng rng_;
  std::map<std::string, bool> tenants_;
  std::map<std::string, ProfileFactory> profiles_;
  std::map<std::uint64_t, JobRecord> jobs_;
  std::deque<std::uint64_t> queue_;
  std::map<std::uint16_t, std::uint64_t> vlan_jobs_;   ///< Running jobs.
  std::map<std::size_t, std::uint64_t> recycling_jobs_;  ///< Slot -> job.
  std::uint64_t next_id_ = 1;
  bool pump_scheduled_ = false;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t cancelled_ = 0;
  // Instruments (resolved once; see obs/metrics.h contract).
  obs::Counter* submitted_ctr_ = nullptr;
  obs::Counter* completed_ctr_ = nullptr;
  obs::Counter* rejected_ctr_ = nullptr;
  obs::Counter* cancelled_ctr_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Gauge* running_gauge_ = nullptr;
  obs::Histogram* job_latency_ = nullptr;
  obs::Histogram* queue_wait_ = nullptr;
  std::optional<obs::EventBus::SubscriptionId> verdict_sub_;
  std::optional<obs::EventBus::SubscriptionId> close_sub_;
};

}  // namespace gq::orch
