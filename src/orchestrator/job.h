// Detonation-job specifications (DESIGN.md §13). A JobSpec is the unit
// of work the multi-tenant detonation service accepts: which sample to
// run, under which policy profile, for how much budgeted simulated
// time, and on whose behalf. Specs travel as one-line key=value text —
//
//   tenant=acme sample=beacon.001 budget_ms=40000 profile=standard
//
// so the parser faces operator/attacker-shaped input and is fuzzed like
// the wire codecs (tests/fuzz_parse_test.cc): malformed budgets,
// oversized fields, duplicate or unknown keys must be rejected, never
// crash or over-read. Accepted specs round-trip byte-identically
// through str(), which is what the fuzz round-trip property checks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/time.h"

namespace gq::orch {

/// Field caps enforced by the parser. Oversized fields are rejected,
/// not truncated: an accepted spec must round-trip unchanged.
inline constexpr std::size_t kMaxTenantLen = 32;
inline constexpr std::size_t kMaxSampleLen = 64;
inline constexpr std::size_t kMaxProfileLen = 32;
/// Budget bounds, inclusive: one millisecond to one simulated day.
inline constexpr std::int64_t kMinBudgetMs = 1;
inline constexpr std::int64_t kMaxBudgetMs = 24LL * 60 * 60 * 1000;

/// The profile name that means "keep the slot subfarm's statically
/// configured policy binding" — always accepted, never registered.
inline constexpr const char* kDefaultProfile = "default";

struct JobSpec {
  std::string tenant;
  std::string sample;
  std::string profile = kDefaultProfile;
  util::Duration budget = util::seconds(60);

  /// Parse one spec line: whitespace-separated key=value tokens with
  /// required keys `tenant`, `sample`, `budget_ms` and optional
  /// `profile`. Rejects (nullopt): unknown or duplicate keys, empty or
  /// oversized values, identifier charset violations (tenant/profile
  /// are [A-Za-z0-9._-], sample is printable ASCII), and budgets
  /// outside [kMinBudgetMs, kMaxBudgetMs] or non-numeric.
  static std::optional<JobSpec> parse(std::string_view line);

  /// Canonical one-line encoding; parse(str()) == *this for any spec
  /// parse() accepts.
  [[nodiscard]] std::string str() const;

  friend bool operator==(const JobSpec&, const JobSpec&) = default;
};

/// Job life-cycle states (the state machine tests/orchestrator_test.cc
/// covers): kQueued → kAllocated → kRunning → kHarvested → kRecycled,
/// with kCancelled (operator cancel, queued or mid-run) and kRejected
/// (validation failure at submit) as terminal branches.
enum class JobState {
  kQueued,
  kAllocated,
  kRunning,
  kHarvested,
  kRecycled,
  kCancelled,
  kRejected,
};

const char* job_state_name(JobState state);

}  // namespace gq::orch
