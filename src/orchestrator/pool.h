// Recycled detonation-slot pool (DESIGN.md §13). A slot is one
// ephemeral subfarm plus one inmate, built once at pool construction
// and reused across jobs: the orchestrator leases an available slot,
// detonates a sample on it, then recycles it — which reverts the inmate
// (reimage for raw iron, via a pool-owned RawIronController), flushes
// the gateway verdict cache for its VLAN (PR 5/6 semantics, by way of
// the farm's kTriggerFired subscription), and releases the NAT binding
// + lease so the next tenant's job starts from a machine with no
// addresses, flows, cache entries, or samples carried over. The slot
// returns to the pool only when the rebooted inmate lands idle in
// kRunning again, so revert/reimage latency (inm::HostingProfile) is a
// first-class part of job throughput — exactly the recycling economics
// the paper's §6.4 raw-iron discussion prices out.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/farm.h"
#include "inmate/controller.h"

namespace gq::orch {

enum class SlotState {
  kWarming,    ///< First boot after construction; never leased yet.
  kAvailable,  ///< Idle inmate in kRunning, ready for a job.
  kLeased,     ///< Running a job.
  kRecycling,  ///< Revert/reimage in progress after a harvest.
};

const char* slot_state_name(SlotState state);

struct PoolSlot {
  std::size_t index = 0;
  core::Subfarm* subfarm = nullptr;
  inm::Inmate* inmate = nullptr;  ///< Null in inmate-less replay rigs.
  SlotState state = SlotState::kWarming;
  std::uint64_t recycles = 0;
};

struct PoolOptions {
  std::size_t slots = 2;
  inm::HostingKind hosting = inm::HostingKind::kVm;
  /// Subfarm names are "<name_prefix><index>" — must be unique per farm
  /// (the DetonationService prefixes a shard tag).
  std::string name_prefix = "Pod";
  /// False builds the subfarms but no inmates: the replay-rig
  /// configuration (trace/replay.h contract — inmates are created last,
  /// so a rig without them draws identical RNG seeds for everything
  /// else).
  bool create_inmates = true;
};

class InmatePool {
 public:
  /// Called once per slot after its subfarm exists, before any inmate is
  /// created: install sinks, register samples/prototypes, configure
  /// containment. Keeping ALL subfarm construction ahead of ALL inmate
  /// construction preserves the replay contract above.
  using SlotBuilder =
      std::function<void(core::Subfarm& subfarm, std::size_t slot)>;
  using ReadyHandler = std::function<void(PoolSlot& slot)>;

  InmatePool(core::Farm& farm, PoolOptions options,
             const SlotBuilder& builder);

  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] PoolSlot& slot(std::size_t i) { return slots_.at(i); }
  [[nodiscard]] std::size_t available() const;
  [[nodiscard]] core::Farm& farm() { return farm_; }

  /// Lease the lowest-index available slot; nullptr when none is idle
  /// (callers queue and retry from on_slot_ready).
  PoolSlot* acquire();

  /// Harvested job done: flush containment state and start the revert /
  /// reimage cycle. The slot re-enters the pool asynchronously, when
  /// the fresh inmate finishes booting (on_slot_ready fires).
  void recycle(PoolSlot& slot);

  /// Invoked (synchronously, on the farm's loop) each time a slot
  /// finishes warming or recycling and becomes available.
  void set_ready_handler(ReadyHandler handler) {
    on_ready_ = std::move(handler);
  }

  [[nodiscard]] std::uint64_t total_recycles() const {
    return total_recycles_;
  }
  [[nodiscard]] inm::RawIronController& raw_iron() { return raw_iron_; }

 private:
  void on_inmate_state(PoolSlot& slot, inm::InmateState state);

  core::Farm& farm_;
  PoolOptions options_;
  std::vector<PoolSlot> slots_;
  inm::RawIronController raw_iron_;
  ReadyHandler on_ready_;
  std::uint64_t total_recycles_ = 0;
  obs::Gauge* recycling_gauge_ = nullptr;
};

}  // namespace gq::orch
