#include "orchestrator/orchestrator.h"

#include "flowdb/flowdb.h"
#include "util/log.h"
#include "util/strings.h"

namespace gq::orch {

namespace {

constexpr const char* kLog = "orch";

// Job latencies are seconds-to-minutes of simulated time (budgets plus
// revert cycles), far past default_latency_bounds_us(): 1s .. 1h edges.
std::vector<double> job_latency_bounds_us() {
  return {1e6,   5e6,   10e6,   30e6,   60e6,
          120e6, 300e6, 600e6, 1800e6, 3600e6};
}

}  // namespace

std::string JobRecord::summary() const {
  std::string verdict_text;
  for (const auto& [verdict, count] : verdicts) {
    verdict_text += util::format(
        " %s=%llu", shim::verdict_name(static_cast<shim::Verdict>(verdict)),
        static_cast<unsigned long long>(count));
  }
  return util::format(
      "job %llu tenant=%s sample=%s profile=%s state=%s flows=%llu "
      "b2s=%llu b2i=%llu pkts=%llu%s",
      static_cast<unsigned long long>(id), spec.tenant.c_str(),
      spec.sample.c_str(), spec.profile.c_str(), job_state_name(state),
      static_cast<unsigned long long>(flows),
      static_cast<unsigned long long>(bytes_to_server),
      static_cast<unsigned long long>(bytes_to_inmate),
      static_cast<unsigned long long>(archived_packets),
      verdict_text.c_str());
}

Orchestrator::Orchestrator(core::Farm& farm, OrchestratorOptions options,
                           const InmatePool::SlotBuilder& builder)
    : farm_(farm),
      options_(std::move(options)),
      pool_(farm, options_.pool, builder),
      rng_(farm.next_seed()) {
  auto& metrics = farm_.metrics();
  submitted_ctr_ = &metrics.counter("orch.jobs_submitted");
  completed_ctr_ = &metrics.counter("orch.jobs_completed");
  rejected_ctr_ = &metrics.counter("orch.jobs_rejected");
  cancelled_ctr_ = &metrics.counter("orch.jobs_cancelled");
  queue_depth_gauge_ = &metrics.gauge("orch.queue_depth");
  running_gauge_ = &metrics.gauge("orch.jobs_running");
  job_latency_ =
      &metrics.histogram("orch.job_latency_us", job_latency_bounds_us());
  queue_wait_ =
      &metrics.histogram("orch.queue_wait_us", job_latency_bounds_us());

  pool_.set_ready_handler([this](PoolSlot& slot) { on_slot_ready(slot); });
  auto& bus = farm_.telemetry().bus();
  verdict_sub_ = bus.subscribe(
      obs::FarmEvent::Kind::kFlowVerdict,
      [this](const obs::FarmEvent& event) { on_flow_event(event); });
  close_sub_ = bus.subscribe(
      obs::FarmEvent::Kind::kFlowClose,
      [this](const obs::FarmEvent& event) { on_flow_event(event); });
}

Orchestrator::~Orchestrator() {
  auto& bus = farm_.telemetry().bus();
  if (verdict_sub_) bus.unsubscribe(*verdict_sub_);
  if (close_sub_) bus.unsubscribe(*close_sub_);
  for (const auto& [vlan, id] : vlan_jobs_) {
    farm_.gateway().clear_vlan_tap(vlan);
    auto it = jobs_.find(id);
    if (it != jobs_.end() && it->second.budget_timer) {
      farm_.loop().cancel(it->second.budget_timer);
    }
  }
}

void Orchestrator::register_tenant(const std::string& name) {
  tenants_[name] = true;
}

bool Orchestrator::tenant_known(const std::string& name) const {
  return tenants_.count(name) > 0;
}

void Orchestrator::register_profile(const std::string& name,
                                    ProfileFactory factory) {
  profiles_[name] = std::move(factory);
}

std::uint64_t Orchestrator::submit(const JobSpec& spec) {
  const std::uint64_t id = next_id_++;
  JobRecord& job = jobs_[id];
  job.id = id;
  job.spec = spec;
  job.submitted = farm_.loop().now();

  const bool profile_ok =
      spec.profile == kDefaultProfile || profiles_.count(spec.profile) > 0;
  const bool queue_ok =
      options_.max_queue == 0 || queue_.size() < options_.max_queue;
  if (!tenant_known(spec.tenant) || !profile_ok || !queue_ok) {
    job.state = JobState::kRejected;
    ++rejected_;
    rejected_ctr_->inc();
    publish_state(job);
    return id;
  }

  ++submitted_;
  submitted_ctr_->inc();
  job.state = JobState::kQueued;
  queue_.push_back(id);
  queue_depth_gauge_->add(1);
  publish_state(job);
  if (!pump_scheduled_) {
    pump_scheduled_ = true;
    farm_.loop().schedule_in(util::microseconds(0), [this] { pump(); });
  }
  return id;
}

void Orchestrator::pump() {
  pump_scheduled_ = false;
  while (!queue_.empty()) {
    PoolSlot* slot = pool_.acquire();
    if (!slot) return;  // Backpressure: resume from on_slot_ready.
    const std::uint64_t id = queue_.front();
    queue_.pop_front();
    queue_depth_gauge_->sub(1);
    allocate(jobs_.at(id), *slot);
  }
}

void Orchestrator::allocate(JobRecord& job, PoolSlot& slot) {
  job.state = JobState::kAllocated;
  job.slot = slot.index;
  job.vlan = slot.inmate ? slot.inmate->vlan() : 0;
  job.allocated = farm_.loop().now();
  queue_wait_->observe(
      static_cast<double>((job.allocated - job.submitted).usec));
  publish_state(job);

  // Bind the job's policy profile over the slot's VLAN range, in front
  // of (overriding, not clearing) the SlotBuilder's static containment
  // configuration. The unregistered default binds nothing and keeps the
  // static config — the path the replay rigs depend on.
  auto profile_it = profiles_.find(job.spec.profile);
  if (profile_it != profiles_.end()) {
    const auto& config = slot.subfarm->router().config();
    slot.subfarm->bind_policy_front(config.vlan_first, config.vlan_last,
                                    profile_it->second(*slot.subfarm));
  }

  // Per-job raw-ingress archive: every tagged frame this inmate sends
  // is mirrored here for the job's lifetime. No telemetry handle — the
  // tap may be created from a shard worker thread (pump runs on the
  // shard loop) and registry mutation is not thread-safe.
  job.archive = std::make_unique<trace::TraceTap>(
      util::format("job-%llu", static_cast<unsigned long long>(job.id)),
      options_.job_archive, nullptr);
  // Tenant/job attribution rides on every flow the archive indexes —
  // saved archives and compacted FlowDB stores keep the identity.
  job.archive->set_context(job.spec.tenant, job.id);
  farm_.gateway().set_vlan_tap(job.vlan, job.archive.get());
  vlan_jobs_[job.vlan] = job.id;

  // Detonate: resolve the sample through the slot subfarm's catalog. An
  // unmatched sample yields a null behavior — the inmate idles for the
  // budget, which is a valid (negative-result) detonation.
  if (slot.inmate) {
    auto behavior = slot.subfarm->catalog().factory()(job.spec.sample, rng_);
    slot.inmate->infect_with(std::move(behavior), job.spec.sample);
  }

  job.state = JobState::kRunning;
  running_gauge_->add(1);
  publish_state(job);
  GQ_DEBUG(kLog, "job %llu: running on slot %zu vlan %u",
           static_cast<unsigned long long>(job.id), slot.index, job.vlan);

  job.budget_timer = farm_.loop().schedule_in(job.spec.budget, [this, id = job.id] {
    auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second.state != JobState::kRunning) return;
    it->second.budget_timer = 0;
    harvest(it->second, /*cancelled=*/false);
  });
}

void Orchestrator::harvest(JobRecord& job, bool cancelled) {
  if (job.budget_timer) {
    farm_.loop().cancel(job.budget_timer);
    job.budget_timer = 0;
  }
  PoolSlot& slot = pool_.slot(job.slot);
  // Flows shorter than the router's flow_timeout have not emitted
  // kFlowClose yet; fold their live byte counters into the harvest.
  const auto open = slot.subfarm->router().open_flow_bytes(job.vlan);
  job.bytes_to_server += open.to_server;
  job.bytes_to_inmate += open.to_inmate;
  farm_.gateway().clear_vlan_tap(job.vlan);
  vlan_jobs_.erase(job.vlan);
  if (job.archive) {
    job.archived_packets = job.archive->packet_count();
    if (!options_.archive_dir.empty()) {
      job.archive->save(util::format(
          "%s/job-%llu", options_.archive_dir.c_str(),
          static_cast<unsigned long long>(job.id)));
    }
  }
  job.harvested = farm_.loop().now();
  job_latency_->observe(
      static_cast<double>((job.harvested - job.submitted).usec));
  running_gauge_->sub(1);
  job.state = cancelled ? JobState::kCancelled : JobState::kHarvested;
  if (cancelled) {
    ++cancelled_;
    cancelled_ctr_->inc();
  }
  publish_state(job);

  recycling_jobs_[slot.index] = job.id;
  pool_.recycle(slot);
}

void Orchestrator::on_slot_ready(PoolSlot& slot) {
  auto pending = recycling_jobs_.find(slot.index);
  if (pending != recycling_jobs_.end()) {
    JobRecord& job = jobs_.at(pending->second);
    recycling_jobs_.erase(pending);
    job.recycled = farm_.loop().now();
    job.archive_sealed = true;  // The tap stops mirroring on recycle.
    if (job.state == JobState::kHarvested) {
      job.state = JobState::kRecycled;
      ++completed_;
      completed_ctr_->inc();
      publish_state(job);
    }
  }
  pump();
}

void Orchestrator::on_flow_event(const obs::FarmEvent& event) {
  auto it = vlan_jobs_.find(event.vlan);
  if (it == vlan_jobs_.end()) return;
  JobRecord& job = jobs_.at(it->second);
  if (event.kind == obs::FarmEvent::Kind::kFlowVerdict) {
    ++job.flows;
    ++job.verdicts[static_cast<int>(event.verdict)];
  } else if (event.kind == obs::FarmEvent::Kind::kFlowClose) {
    job.bytes_to_server += event.bytes_to_server;
    job.bytes_to_inmate += event.bytes_to_inmate;
  }
}

void Orchestrator::publish_state(const JobRecord& job) {
  obs::FarmEvent event;
  event.kind = obs::FarmEvent::Kind::kJobState;
  event.time = farm_.loop().now();
  if (job.state != JobState::kQueued && job.state != JobState::kRejected) {
    event.subfarm = pool_.slot(job.slot).subfarm->name();
    event.vlan = job.vlan;
  }
  event.job_id = job.id;
  event.tenant = job.spec.tenant;
  event.job_state = job_state_name(job.state);
  event.sample_name = job.spec.sample;
  event.policy_name = job.spec.profile;
  if (job.state == JobState::kHarvested ||
      job.state == JobState::kCancelled) {
    event.bytes_to_server = job.bytes_to_server;
    event.bytes_to_inmate = job.bytes_to_inmate;
  }
  farm_.telemetry().publish(event);
}

const JobRecord* Orchestrator::job(std::uint64_t id) const {
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

std::size_t Orchestrator::append_flowdb(flowdb::Writer& writer) const {
  std::size_t rows = 0;
  // jobs_ is an ordered map: iteration is id order, so a same-seed
  // batch compacts to byte-identical store contents.
  for (const auto& [id, job] : jobs_) {
    if (!job.archive) continue;
    writer.add_tap(*job.archive);
    rows += job.archive->index().flow_count();
  }
  return rows;
}

std::size_t Orchestrator::append_flowdb_new(flowdb::Writer& writer,
                                            bool sealed_only) {
  std::size_t rows = 0;
  for (auto& [id, job] : jobs_) {
    if (!job.archive || job.flowdb_appended) continue;
    if (sealed_only && !job.archive_sealed) continue;
    writer.add_tap(*job.archive);
    job.flowdb_appended = true;
    rows += job.archive->index().flow_count();
  }
  return rows;
}

bool Orchestrator::compact_flowdb(const std::string& path) {
  flowdb::Writer writer(&farm_.metrics());
  append_flowdb(writer);
  return writer.save(path);
}

bool Orchestrator::cancel(std::uint64_t id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  JobRecord& job = it->second;
  switch (job.state) {
    case JobState::kQueued: {
      for (auto q = queue_.begin(); q != queue_.end(); ++q) {
        if (*q == id) {
          queue_.erase(q);
          queue_depth_gauge_->sub(1);
          break;
        }
      }
      job.state = JobState::kCancelled;
      ++cancelled_;
      cancelled_ctr_->inc();
      publish_state(job);
      return true;
    }
    case JobState::kAllocated:
    case JobState::kRunning:
      harvest(job, /*cancelled=*/true);
      return true;
    default:
      return false;
  }
}

}  // namespace gq::orch
