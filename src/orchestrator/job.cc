#include "orchestrator/job.h"

#include <cctype>
#include <cstdlib>

#include "util/strings.h"

namespace gq::orch {
namespace {

bool ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
}

bool valid_ident(std::string_view s, std::size_t max_len) {
  if (s.empty() || s.size() > max_len) return false;
  for (char c : s) {
    if (!ident_char(c)) return false;
  }
  return true;
}

// Sample names are looser than tenant/profile identifiers (the catalog
// matches arbitrary glob patterns) but must stay printable ASCII with
// no whitespace so the one-line encoding stays parseable.
bool valid_sample(std::string_view s) {
  if (s.empty() || s.size() > kMaxSampleLen) return false;
  for (char c : s) {
    if (c <= ' ' || c > '~' || c == '=') return false;
  }
  return true;
}

std::optional<std::int64_t> parse_budget_ms(std::string_view s) {
  if (s.empty() || s.size() > 18) return std::nullopt;  // overflow guard
  std::int64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + (c - '0');
  }
  if (value < kMinBudgetMs || value > kMaxBudgetMs) return std::nullopt;
  return value;
}

}  // namespace

std::optional<JobSpec> JobSpec::parse(std::string_view line) {
  JobSpec spec;
  bool saw_tenant = false;
  bool saw_sample = false;
  bool saw_budget = false;
  bool saw_profile = false;

  std::size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
    if (pos >= line.size()) break;
    std::size_t end = pos;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t') ++end;
    const std::string_view token = line.substr(pos, end - pos);
    pos = end;

    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) return std::nullopt;
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (value.empty()) return std::nullopt;

    if (key == "tenant") {
      if (saw_tenant || !valid_ident(value, kMaxTenantLen)) return std::nullopt;
      saw_tenant = true;
      spec.tenant = std::string(value);
    } else if (key == "sample") {
      if (saw_sample || !valid_sample(value)) return std::nullopt;
      saw_sample = true;
      spec.sample = std::string(value);
    } else if (key == "budget_ms") {
      if (saw_budget) return std::nullopt;
      const auto ms = parse_budget_ms(value);
      if (!ms) return std::nullopt;
      saw_budget = true;
      spec.budget = util::milliseconds(*ms);
    } else if (key == "profile") {
      if (saw_profile || !valid_ident(value, kMaxProfileLen)) {
        return std::nullopt;
      }
      saw_profile = true;
      spec.profile = std::string(value);
    } else {
      return std::nullopt;
    }
  }

  if (!saw_tenant || !saw_sample || !saw_budget) return std::nullopt;
  return spec;
}

std::string JobSpec::str() const {
  return util::format("tenant=%s sample=%s budget_ms=%lld profile=%s",
                      tenant.c_str(), sample.c_str(),
                      static_cast<long long>(budget.usec / 1000),
                      profile.c_str());
}

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kAllocated:
      return "allocated";
    case JobState::kRunning:
      return "running";
    case JobState::kHarvested:
      return "harvested";
    case JobState::kRecycled:
      return "recycled";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kRejected:
      return "rejected";
  }
  return "unknown";
}

}  // namespace gq::orch
