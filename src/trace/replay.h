// Deterministic replay driver: feed an archived inmate-side trace back
// through a freshly constructed farm and check that what the farm *does*
// — its verdict event sequence and its upstream egress — is bit-identical
// to the original recording. The whole simulator is deterministic (one
// virtual clock, seeded RNGs, FIFO tie-break for same-time events), so a
// farm built with the same seed and the same policy configuration,
// driven by the same inmate-port frames at the same virtual times, must
// retrace the recording exactly. Any divergence is a regression in the
// datapath, the verdict machinery, or determinism itself — which makes a
// saved golden archive a whole-system regression oracle (wired into
// ctest as trace_smoke / the TraceReplay gtest suite).
//
// Replay contract:
//   * The recording farm captures raw 802.1Q-tagged inmate-port ingress
//     in the gateway's "inmate_rx" tap (Gateway::inmate_rx_trace()).
//   * The replay farm is constructed identically (same FarmOptions.seed,
//     same subfarms/policy INI in the same order) but WITHOUT inmates —
//     inmates are created last in farm assembly, so omitting them leaves
//     the construction-time RNG draw sequence of everything else intact.
//   * schedule_replay() pre-schedules every archived frame for injection
//     at its recorded virtual time; external hosts and containment
//     servers react exactly as they did live.
//   * Equality is judged on EventRecorder::joined() (canonical event
//     serialization) and the upstream tap's archive bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/events.h"
#include "packet/pcap.h"

namespace gq::gw {
class Gateway;
}

namespace gq::trace {

/// Canonical one-line serialization of a FarmEvent — every field that
/// makes two event streams comparable, stable across runs.
std::string event_line(const obs::FarmEvent& event);

/// Subscribes to a bus and accumulates canonical event lines; the
/// golden-trace comparison runs on joined().
class EventRecorder {
 public:
  explicit EventRecorder(obs::EventBus& bus);
  ~EventRecorder();

  EventRecorder(const EventRecorder&) = delete;
  EventRecorder& operator=(const EventRecorder&) = delete;

  [[nodiscard]] const std::vector<std::string>& lines() const {
    return lines_;
  }
  /// All lines newline-joined (one comparable blob).
  [[nodiscard]] std::string joined() const;

 private:
  obs::EventBus& bus_;
  obs::EventBus::SubscriptionId id_;
  std::vector<std::string> lines_;
};

/// Pre-schedule every archived record for injection into the gateway's
/// inmate port at its recorded virtual time. Call before running the
/// loop (recorded times must still be in the future); pre-scheduling
/// everything up front keeps injected frames ordered ahead of reactive
/// events at equal timestamps, matching live port delivery. Records with
/// snaplen-truncated frames cannot be reproduced faithfully and are
/// skipped. Returns the number of frames scheduled.
std::size_t schedule_replay(gw::Gateway& gateway,
                            const std::vector<pkt::PcapRecord>& records);

}  // namespace gq::trace
