#include "trace/archive.h"

#include <algorithm>

namespace gq::trace {

TraceArchiver::TraceArchiver(ArchiveConfig config) : config_(config) {
  if (config_.segment_bytes < pkt::kPcapFileHeaderSize +
                                  pkt::kPcapRecordHeaderSize)
    config_.segment_bytes =
        pkt::kPcapFileHeaderSize + pkt::kPcapRecordHeaderSize;
  if (config_.max_segments == 0) config_.max_segments = 1;
}

TraceArchiver::Segment& TraceArchiver::active_segment(util::TimePoint at) {
  if (segments_.empty() ||
      segments_.back().pcap.size_bytes() >= config_.segment_bytes) {
    Segment segment;
    segment.seq = next_seq_++;
    segment.first_time = at;
    segment.last_time = at;
    segments_.push_back(std::move(segment));
    while (segments_.size() > config_.max_segments) {
      const Segment& victim = segments_.front();
      ++evicted_segments_;
      evicted_packets_ += victim.packets;
      evicted_bytes_ += victim.pcap.size_bytes();
      segments_.pop_front();
    }
  }
  return segments_.back();
}

Location TraceArchiver::record(util::TimePoint at,
                               std::span<const std::uint8_t> frame) {
  Segment& segment = active_segment(at);
  if (segment.packets == 0) segment.first_time = at;
  const Location loc{segment.seq, segment.pcap.size_bytes()};
  segment.pcap.record(at, frame);
  segment.last_time = at;
  ++segment.packets;
  ++total_packets_;
  return loc;
}

const TraceArchiver::Segment* TraceArchiver::find_segment(
    std::uint64_t seq) const {
  if (segments_.empty()) return nullptr;
  const std::uint64_t first = segments_.front().seq;
  if (seq < first || seq >= first + segments_.size()) return nullptr;
  // Seqs are contiguous across retained segments, so index directly.
  return &segments_[static_cast<std::size_t>(seq - first)];
}

std::size_t TraceArchiver::retained_bytes() const {
  std::size_t total = 0;
  for (const auto& segment : segments_) total += segment.pcap.size_bytes();
  return total;
}

std::size_t TraceArchiver::retained_packets() const {
  std::size_t total = 0;
  for (const auto& segment : segments_) total += segment.packets;
  return total;
}

std::optional<pkt::PcapRecord> TraceArchiver::record_at(Location loc) const {
  const Segment* segment = find_segment(loc.segment);
  if (!segment) return std::nullopt;
  const auto data = segment->pcap.contents();
  if (loc.offset < pkt::kPcapFileHeaderSize ||
      loc.offset + pkt::kPcapRecordHeaderSize > data.size())
    return std::nullopt;
  auto u32le = [&](std::size_t at) -> std::uint32_t {
    return data[at] | (data[at + 1] << 8) | (data[at + 2] << 16) |
           (static_cast<std::uint32_t>(data[at + 3]) << 24);
  };
  const auto at = static_cast<std::size_t>(loc.offset);
  const std::uint64_t sec = u32le(at);
  const std::uint64_t usec = u32le(at + 4);
  const std::uint32_t incl_len = u32le(at + 8);
  const std::uint32_t orig_len = u32le(at + 12);
  const std::size_t start = at + pkt::kPcapRecordHeaderSize;
  if (incl_len > pkt::kPcapSnapLen || incl_len > orig_len ||
      start + incl_len > data.size())
    return std::nullopt;
  pkt::PcapRecord record;
  record.time.usec = static_cast<std::int64_t>(sec * 1'000'000 + usec);
  record.orig_len = orig_len;
  record.frame.assign(
      data.begin() + static_cast<std::ptrdiff_t>(start),
      data.begin() + static_cast<std::ptrdiff_t>(start + incl_len));
  return record;
}

std::vector<pkt::PcapRecord> TraceArchiver::records() const {
  std::vector<pkt::PcapRecord> all;
  for (const auto& segment : segments_) {
    auto parsed = pkt::parse_pcap(segment.pcap.contents());
    all.insert(all.end(), std::make_move_iterator(parsed.begin()),
               std::make_move_iterator(parsed.end()));
  }
  return all;
}

std::vector<std::uint8_t> TraceArchiver::contents() const {
  // One global header, then every retained segment's records.
  pkt::PcapWriter header_only;
  std::vector<std::uint8_t> out(header_only.contents().begin(),
                                header_only.contents().end());
  for (const auto& segment : segments_) {
    const auto data = segment.pcap.contents();
    out.insert(out.end(), data.begin() + pkt::kPcapFileHeaderSize,
               data.end());
  }
  return out;
}

bool TraceArchiver::restore_segment(
    std::uint64_t seq, std::span<const std::uint8_t> pcap_bytes) {
  if (!segments_.empty() && seq != segments_.back().seq + 1)
    return false;  // Retained seqs must stay contiguous.
  const auto parsed = pkt::parse_pcap(pcap_bytes);
  Segment segment;
  segment.seq = seq;
  for (const auto& record : parsed) {
    if (segment.packets == 0) segment.first_time = record.time;
    segment.pcap.record(record.time, record.frame);
    segment.last_time = record.time;
    ++segment.packets;
  }
  segments_.push_back(std::move(segment));
  next_seq_ = seq + 1;
  return true;
}

void TraceArchiver::restore_counters(std::uint64_t total_packets,
                                     std::uint64_t evicted_segments,
                                     std::uint64_t evicted_packets,
                                     std::uint64_t evicted_bytes) {
  total_packets_ = total_packets;
  evicted_segments_ = evicted_segments;
  evicted_packets_ = evicted_packets;
  evicted_bytes_ = evicted_bytes;
}

}  // namespace gq::trace
