#include "trace/replay.h"

#include <sstream>

#include "gateway/gateway.h"
#include "netsim/event_loop.h"

namespace gq::trace {

std::string event_line(const obs::FarmEvent& e) {
  std::ostringstream os;
  os << e.time.usec << ' ' << obs::farm_event_kind_name(e.kind) << ' '
     << e.subfarm << " vlan=" << e.vlan << ' '
     << (e.proto == pkt::FlowProto::kTcp ? "tcp" : "udp")
     << " dst=" << e.orig_dst.str() << ' ' << shim::verdict_name(e.verdict)
     << " src=" << shim::verdict_source_name(e.verdict_source)
     << " policy=" << e.policy_name << " ann=" << e.annotation;
  if (e.limit_bytes_per_sec) os << " limit=" << *e.limit_bytes_per_sec;
  os << " b2s=" << e.bytes_to_server << " b2i=" << e.bytes_to_inmate
     << " int=" << e.inmate_internal.str()
     << " glob=" << e.inmate_global.str() << " sink=" << e.sink_service
     << " ssrc=" << e.sink_source.str() << " job=" << e.job_id
     << " tenant=" << e.tenant << " jstate=" << e.job_state;
  return os.str();
}

EventRecorder::EventRecorder(obs::EventBus& bus)
    : bus_(bus), id_(bus.subscribe([this](const obs::FarmEvent& event) {
        lines_.push_back(event_line(event));
      })) {}

EventRecorder::~EventRecorder() { bus_.unsubscribe(id_); }

std::string EventRecorder::joined() const {
  std::string out;
  for (const auto& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

std::size_t schedule_replay(gw::Gateway& gateway,
                            const std::vector<pkt::PcapRecord>& records) {
  auto& loop = gateway.loop();
  std::size_t scheduled = 0;
  for (const auto& record : records) {
    if (record.orig_len != 0 && record.orig_len != record.frame.size())
      continue;  // Snaplen-truncated: the full wire frame is gone.
    loop.schedule_at(record.time,
                     [&gateway, bytes = record.frame]() mutable {
                       gateway.inject_inmate_frame(std::move(bytes));
                     });
    ++scheduled;
  }
  return scheduled;
}

}  // namespace gq::trace
