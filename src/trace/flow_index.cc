#include "trace/flow_index.h"

namespace gq::trace {

FlowRecord* FlowIndex::lookup(const pkt::FlowKey& key, std::uint16_t vlan) {
  if (auto it = by_key_.find({key, vlan}); it != by_key_.end())
    return &flows_[it->second];
  if (auto it = by_key_.find({key.reversed(), vlan}); it != by_key_.end())
    return &flows_[it->second];
  return nullptr;
}

FlowRecord& FlowIndex::touch(const pkt::FlowKey& key, std::uint16_t vlan,
                             util::TimePoint at, std::size_t frame_bytes,
                             Location loc) {
  FlowRecord* record = lookup(key, vlan);
  if (!record) {
    FlowRecord fresh;
    fresh.key = key;
    fresh.vlan = vlan;
    fresh.first_time = at;
    flows_.push_back(std::move(fresh));
    by_key_[{key, vlan}] = flows_.size() - 1;
    record = &flows_.back();
  }
  ++record->packets;
  record->bytes += frame_bytes;
  record->last_time = at;
  record->locations.push_back(loc);
  return *record;
}

bool FlowIndex::annotate(const pkt::FlowKey& key, std::uint16_t vlan,
                         shim::Verdict verdict,
                         const std::string& policy_name,
                         shim::VerdictSource source) {
  FlowRecord* record = lookup(key, vlan);
  if (!record) return false;
  record->has_verdict = true;
  record->verdict = verdict;
  record->policy_name = policy_name;
  record->verdict_source = source;
  record->verdict_cached = source == shim::VerdictSource::kCached;
  return true;
}

const FlowRecord* FlowIndex::find(const pkt::FlowKey& key,
                                  std::uint16_t vlan) const {
  return const_cast<FlowIndex*>(this)->lookup(key, vlan);
}

void FlowIndex::restore(FlowRecord record) {
  const MapKey map_key{record.key, record.vlan};
  flows_.push_back(std::move(record));
  by_key_[map_key] = flows_.size() - 1;
}

}  // namespace gq::trace
