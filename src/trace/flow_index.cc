#include "trace/flow_index.h"

#include <sstream>

#include "util/addr.h"
#include "util/strings.h"

namespace gq::trace {

FlowRecord* FlowIndex::lookup(const pkt::FlowKey& key, std::uint16_t vlan) {
  if (auto it = by_key_.find({key, vlan}); it != by_key_.end())
    return &flows_[it->second];
  if (auto it = by_key_.find({key.reversed(), vlan}); it != by_key_.end())
    return &flows_[it->second];
  return nullptr;
}

FlowRecord& FlowIndex::touch(const pkt::FlowKey& key, std::uint16_t vlan,
                             util::TimePoint at, std::size_t frame_bytes,
                             Location loc) {
  FlowRecord* record = lookup(key, vlan);
  if (!record) {
    FlowRecord fresh;
    fresh.key = key;
    fresh.vlan = vlan;
    fresh.first_time = at;
    flows_.push_back(std::move(fresh));
    by_key_[{key, vlan}] = flows_.size() - 1;
    record = &flows_.back();
  }
  ++record->packets;
  record->bytes += frame_bytes;
  record->last_time = at;
  record->locations.push_back(loc);
  return *record;
}

bool FlowIndex::annotate(const pkt::FlowKey& key, std::uint16_t vlan,
                         shim::Verdict verdict,
                         const std::string& policy_name,
                         shim::VerdictSource source) {
  FlowRecord* record = lookup(key, vlan);
  if (!record) return false;
  record->has_verdict = true;
  record->verdict = verdict;
  record->policy_name = policy_name;
  record->verdict_source = source;
  record->verdict_cached = source == shim::VerdictSource::kCached;
  return true;
}

const FlowRecord* FlowIndex::find(const pkt::FlowKey& key,
                                  std::uint16_t vlan) const {
  return const_cast<FlowIndex*>(this)->lookup(key, vlan);
}

void FlowIndex::restore(FlowRecord record) {
  const MapKey map_key{record.key, record.vlan};
  flows_.push_back(std::move(record));
  by_key_[map_key] = flows_.size() - 1;
}

namespace {

std::optional<shim::Verdict> verdict_from_name(std::string_view name) {
  for (const auto v :
       {shim::Verdict::kForward, shim::Verdict::kLimit, shim::Verdict::kDrop,
        shim::Verdict::kRedirect, shim::Verdict::kReflect,
        shim::Verdict::kRewrite}) {
    if (name == shim::verdict_name(v)) return v;
  }
  return std::nullopt;
}

/// parse_int with an inclusive range gate; nullopt rejects the line.
std::optional<std::int64_t> parse_ranged(std::string_view text,
                                         std::int64_t lo, std::int64_t hi) {
  const auto value = util::parse_int(text);
  if (!value || *value < lo || *value > hi) return std::nullopt;
  return value;
}

}  // namespace

std::string flow_record_line(const FlowRecord& record) {
  std::ostringstream line;
  line << "flow\t"
       << (record.key.proto == pkt::FlowProto::kTcp ? "tcp" : "udp") << '\t'
       << record.key.src.addr.str() << '\t' << record.key.src.port << '\t'
       << record.key.dst.addr.str() << '\t' << record.key.dst.port << '\t'
       << record.vlan << '\t' << record.packets << '\t' << record.bytes
       << '\t' << record.first_time.usec << '\t' << record.last_time.usec
       << '\t'
       << (record.has_verdict ? shim::verdict_name(record.verdict) : "-")
       << '\t' << (record.policy_name.empty() ? "-" : record.policy_name)
       << '\t';
  for (std::size_t i = 0; i < record.locations.size(); ++i) {
    if (i) line << ',';
    line << record.locations[i].segment << ':' << record.locations[i].offset;
  }
  // Trailing columns, append-only for backward compatibility: verdict
  // source, then tenant/job attribution.
  line << '\t'
       << (record.has_verdict ? shim::verdict_source_name(record.verdict_source)
                              : "-")
       << '\t' << (record.tenant.empty() ? "-" : record.tenant) << '\t'
       << record.job;
  return line.str();
}

std::optional<FlowRecord> parse_flow_record_line(std::string_view line) {
  const auto fields = util::split(line, '\t');
  // Mandatory columns run through `policy` (index 12); everything after
  // is optional so older archives still load.
  if (fields.size() < 13 || fields[0] != "flow") return std::nullopt;

  FlowRecord record;
  if (fields[1] == "tcp") {
    record.key.proto = pkt::FlowProto::kTcp;
  } else if (fields[1] == "udp") {
    record.key.proto = pkt::FlowProto::kUdp;
  } else {
    return std::nullopt;
  }
  const auto src = util::Ipv4Addr::parse(fields[2]);
  const auto src_port = parse_ranged(fields[3], 0, 0xFFFF);
  const auto dst = util::Ipv4Addr::parse(fields[4]);
  const auto dst_port = parse_ranged(fields[5], 0, 0xFFFF);
  const auto vlan = parse_ranged(fields[6], 0, 0xFFFF);
  const auto packets = util::parse_int(fields[7]);
  const auto bytes = util::parse_int(fields[8]);
  const auto first = util::parse_int(fields[9]);
  const auto last = util::parse_int(fields[10]);
  if (!src || !src_port || !dst || !dst_port || !vlan || !packets ||
      *packets < 0 || !bytes || *bytes < 0 || !first || !last)
    return std::nullopt;
  record.key.src = {*src, static_cast<std::uint16_t>(*src_port)};
  record.key.dst = {*dst, static_cast<std::uint16_t>(*dst_port)};
  record.vlan = static_cast<std::uint16_t>(*vlan);
  record.packets = static_cast<std::uint64_t>(*packets);
  record.bytes = static_cast<std::uint64_t>(*bytes);
  record.first_time.usec = *first;
  record.last_time.usec = *last;
  if (fields[11] != "-") {
    // Unknown verdict names degrade to "no verdict" rather than
    // rejecting the whole line (a future verdict kind must not make
    // old readers drop the flow's counters).
    if (const auto v = verdict_from_name(fields[11])) {
      record.has_verdict = true;
      record.verdict = *v;
    }
  }
  if (fields[12] != "-") record.policy_name = fields[12];
  if (fields.size() > 13 && !fields[13].empty()) {
    // Malformed pairs are skipped, not fatal: a partially rotten
    // location list still leaves the flow extractable elsewhere.
    for (const auto& pair : util::split(fields[13], ',')) {
      const auto colon = pair.find(':');
      if (colon == std::string::npos) continue;
      const auto segment = util::parse_int(
          std::string_view(pair).substr(0, colon));
      const auto offset = util::parse_int(
          std::string_view(pair).substr(colon + 1));
      if (!segment || *segment < 0 || !offset || *offset < 0) continue;
      record.locations.push_back({static_cast<std::uint64_t>(*segment),
                                  static_cast<std::uint64_t>(*offset)});
    }
  }
  if (fields.size() > 14 && record.has_verdict) {
    record.verdict_source = fields[14] == "cached"
                                ? shim::VerdictSource::kCached
                                : fields[14] == "table"
                                      ? shim::VerdictSource::kTable
                                      : shim::VerdictSource::kShim;
    record.verdict_cached =
        record.verdict_source == shim::VerdictSource::kCached;
  }
  if (fields.size() > 15 && fields[15] != "-") record.tenant = fields[15];
  if (fields.size() > 16) {
    if (const auto job = util::parse_int(fields[16]); job && *job >= 0)
      record.job = static_cast<std::uint64_t>(*job);
  }
  return record;
}

}  // namespace gq::trace
