// Flow index over a trace archive: maps the (5-tuple, VLAN) of every
// captured TCP/UDP frame to a per-flow record carrying verdict, packet
// and byte counts, first/last timestamps, and the segment+offset
// location of each captured packet — so one flow's packets can be
// extracted from a multi-megabyte archive in O(packets of that flow)
// instead of a full rescan. This is the forensic entry point the paper
// implies for §5.6 trace audits ("which flow was that, and what did the
// containment server decide about it?").
//
// Keys are canonicalized bidirectionally: the first-seen direction of a
// flow becomes its canonical key, and frames of the reverse direction
// fold into the same record.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "packet/frame.h"
#include "shim/shim.h"
#include "trace/archive.h"
#include "util/time.h"

namespace gq::trace {

struct FlowRecord {
  /// Canonical (first-seen direction) key plus the 802.1Q VID the flow
  /// was captured on (0 for untagged captures).
  pkt::FlowKey key;
  std::uint16_t vlan = 0;

  /// Tenant/job attribution, stamped by per-job archives (see
  /// TraceTap::set_context) so saved archives keep the multi-tenant
  /// identity the orchestrator attributed the traffic to. Empty/0 for
  /// unattributed captures (shared taps, pre-attribution archives).
  std::string tenant;
  std::uint64_t job = 0;

  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;  ///< Sum of wire frame sizes.
  util::TimePoint first_time;
  util::TimePoint last_time;

  /// Containment verdict, once the router annotated the flow.
  bool has_verdict = false;
  shim::Verdict verdict = shim::Verdict::kDrop;
  std::string policy_name;
  /// Where the verdict was resolved: containment-server shim round
  /// trip, gateway verdict cache, or compiled in-gateway policy table.
  shim::VerdictSource verdict_source = shim::VerdictSource::kShim;
  /// Back-compat alias: verdict_source == kCached.
  bool verdict_cached = false;

  /// Archive location of every captured packet, capture order. Entries
  /// pointing into evicted segments stop resolving (extraction skips
  /// them); the counters above still cover the full flow lifetime.
  std::vector<Location> locations;

  friend bool operator==(const FlowRecord&, const FlowRecord&) = default;
};

class FlowIndex {
 public:
  /// Account one captured frame to its flow (created on first sight).
  FlowRecord& touch(const pkt::FlowKey& key, std::uint16_t vlan,
                    util::TimePoint at, std::size_t frame_bytes,
                    Location loc);

  /// Attach a containment verdict to a flow. Returns false when the
  /// flow was never captured (e.g. its packets all predate the index).
  /// `source` records where the verdict was resolved (CS shim round
  /// trip, gateway verdict cache, or compiled policy table).
  bool annotate(const pkt::FlowKey& key, std::uint16_t vlan,
                shim::Verdict verdict, const std::string& policy_name,
                shim::VerdictSource source = shim::VerdictSource::kShim);

  /// Bidirectional lookup: `key` or its reverse. nullptr when unknown.
  [[nodiscard]] const FlowRecord* find(const pkt::FlowKey& key,
                                       std::uint16_t vlan) const;

  /// All flows, in order of first appearance.
  [[nodiscard]] const std::deque<FlowRecord>& flows() const { return flows_; }
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }

  /// Re-insert a fully built record (archive loading).
  void restore(FlowRecord record);

 private:
  struct MapKey {
    pkt::FlowKey key;
    std::uint16_t vlan = 0;
    friend constexpr bool operator==(const MapKey&, const MapKey&) = default;
  };
  struct MapKeyHash {
    std::size_t operator()(const MapKey& k) const noexcept {
      return pkt::FlowKeyHash{}(k.key) ^
             pkt::FlowKeyHash::mix(std::uint64_t{k.vlan} + 0x9E37u);
    }
  };

  FlowRecord* lookup(const pkt::FlowKey& key, std::uint16_t vlan);

  // deque: records keep stable addresses as the index grows.
  std::deque<FlowRecord> flows_;
  std::unordered_map<MapKey, std::size_t, MapKeyHash> by_key_;
};

/// Serialize one record as a flows.txt line (tab-separated, no trailing
/// newline). Column order is fixed; new columns only ever append, so
/// older readers keep working:
///   flow proto src sport dst dport vlan packets bytes first last
///   verdict policy locations source tenant job
std::string flow_record_line(const FlowRecord& record);

/// Parse one flows.txt line. Hardened: malformed or out-of-range
/// numeric fields and bad addresses reject the line (nullopt) instead
/// of throwing; unknown verdict/source names and malformed location
/// pairs degrade leniently (forward compatibility, matching the
/// manifest's unknown-key rule). Trailing columns are optional so
/// archives written before verdict sources or tenant attribution still
/// load.
std::optional<FlowRecord> parse_flow_record_line(std::string_view line);

}  // namespace gq::trace
