// TraceTap: one named capture point — a rotating archiver plus its flow
// index plus `trace.<tap>.*` metrics, bundled so the gateway's record
// sites stay one-liners. Taps exist per subfarm router (inmate-network
// perspective), for the upstream leg, the management leg, and the raw
// inmate-port ingress (the replay source, see trace/replay.h).
//
// A tap can be saved to / loaded from a directory:
//   manifest.txt              archive config, counters, segment table
//   segment-<seq>.pcap        one standard pcap file per retained segment
//   flows.txt                 serialized flow index (tab-separated)
// Saved archives are what examples/gq_trace lists, summarises, and
// extracts flows from, and what the golden-trace replay regression
// feeds back through a fresh farm.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "obs/telemetry.h"
#include "packet/pcap.h"
#include "trace/archive.h"
#include "trace/flow_index.h"
#include "util/time.h"

namespace gq::trace {

class TraceTap {
 public:
  /// `telemetry` may be null (standalone tools/tests): metrics updates
  /// are skipped, capture behaves identically. Metric names:
  ///   trace.<name>.segments   gauge    retained segment count
  ///   trace.<name>.bytes      gauge    retained archive bytes
  ///   trace.<name>.evicted    counter  segments evicted by rotation
  ///   trace.<name>.packets    counter  packets captured (lifetime)
  TraceTap(std::string name, ArchiveConfig config,
           obs::Telemetry* telemetry);

  TraceTap(const TraceTap&) = delete;
  TraceTap& operator=(const TraceTap&) = delete;
  TraceTap(TraceTap&&) = default;
  TraceTap& operator=(TraceTap&&) = default;

  /// Capture one frame: archive it, index it by flow when it parses as
  /// a TCP/UDP frame (tagged or untagged), update metrics. `vlan_hint`
  /// is the VLAN to index an *untagged* frame under — record sites that
  /// capture post-strip (the subfarm taps) know the VLAN even though
  /// the archived bytes no longer carry it; a tagged frame's own tag
  /// always wins.
  void record(util::TimePoint at, std::span<const std::uint8_t> frame,
              std::uint16_t vlan_hint = 0);

  /// Attach a containment verdict to an indexed flow. `source` records
  /// where the verdict was resolved — a containment-server shim round
  /// trip, the gateway's verdict cache, or the compiled policy table.
  bool annotate(const pkt::FlowKey& key, std::uint16_t vlan,
                shim::Verdict verdict, const std::string& policy_name,
                shim::VerdictSource source = shim::VerdictSource::kShim);

  /// Attach tenant/job attribution: flows indexed from now on are
  /// stamped with this identity (already-stamped records keep theirs),
  /// and save() carries it in the manifest. The orchestrator sets this
  /// on each per-job archive at allocation, so saved archives — and the
  /// FlowDB stores compacted from them — keep multi-tenant identity.
  void set_context(std::string tenant, std::uint64_t job) {
    tenant_ = std::move(tenant);
    job_ = job;
  }
  [[nodiscard]] const std::string& tenant() const { return tenant_; }
  [[nodiscard]] std::uint64_t job() const { return job_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const TraceArchiver& archive() const { return archive_; }
  [[nodiscard]] const FlowIndex& index() const { return index_; }

  /// Lifetime packet count (compatible with the old PcapWriter
  /// accounting — rotation does not make it go backwards).
  [[nodiscard]] std::size_t packet_count() const {
    return static_cast<std::size_t>(archive_.total_packets());
  }

  /// The retained capture as one valid pcap file.
  [[nodiscard]] std::vector<std::uint8_t> contents() const {
    return archive_.contents();
  }

  /// O(flow) packet extraction: resolve each of the flow's recorded
  /// locations, skipping those rotated out of the archive.
  [[nodiscard]] std::vector<pkt::PcapRecord> extract_flow(
      const FlowRecord& flow) const;

  /// Persist to `dir` (created if missing). Returns false on I/O error.
  bool save(const std::string& dir) const;

  /// Write the retained capture as one pcap file (operator convenience,
  /// matches the old PcapWriter::save shape).
  bool save_pcap(const std::string& path) const;

 private:
  friend std::optional<TraceTap> load_trace(const std::string& dir);

  void refresh_metrics();

  std::string name_;
  std::string tenant_;       ///< Empty = unattributed (shared tap).
  std::uint64_t job_ = 0;    ///< 0 = unattributed.
  TraceArchiver archive_;
  FlowIndex index_;
  std::vector<std::uint8_t> scratch_;  ///< FrameView needs mutable bytes.
  obs::Gauge* segments_gauge_ = nullptr;
  obs::Gauge* bytes_gauge_ = nullptr;
  obs::Counter* evicted_ctr_ = nullptr;
  obs::Counter* packets_ctr_ = nullptr;
  std::uint64_t reported_evicted_ = 0;
};

/// Load a tap saved with TraceTap::save. The loaded tap has no
/// telemetry attached. nullopt on missing/corrupt archive.
std::optional<TraceTap> load_trace(const std::string& dir);

}  // namespace gq::trace
