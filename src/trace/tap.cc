#include "trace/tap.h"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "packet/frame_view.h"
#include "util/strings.h"

namespace gq::trace {

namespace {

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

std::optional<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
    bytes.insert(bytes.end(), chunk, chunk + n);
  std::fclose(f);
  return bytes;
}

std::string segment_filename(std::uint64_t seq) {
  return util::format("segment-%08llu.pcap",
                      static_cast<unsigned long long>(seq));
}

}  // namespace

TraceTap::TraceTap(std::string name, ArchiveConfig config,
                   obs::Telemetry* telemetry)
    : name_(std::move(name)), archive_(config) {
  if (telemetry) {
    auto& metrics = telemetry->metrics();
    const std::string prefix = "trace." + name_ + ".";
    segments_gauge_ = &metrics.gauge(prefix + "segments");
    bytes_gauge_ = &metrics.gauge(prefix + "bytes");
    evicted_ctr_ = &metrics.counter(prefix + "evicted");
    packets_ctr_ = &metrics.counter(prefix + "packets");
  }
}

void TraceTap::refresh_metrics() {
  if (!segments_gauge_) return;
  segments_gauge_->set(static_cast<std::int64_t>(archive_.segment_count()));
  bytes_gauge_->set(static_cast<std::int64_t>(archive_.retained_bytes()));
  packets_ctr_->inc();
  const std::uint64_t evicted = archive_.evicted_segments();
  if (evicted > reported_evicted_) {
    evicted_ctr_->inc(evicted - reported_evicted_);
    reported_evicted_ = evicted;
  }
}

void TraceTap::record(util::TimePoint at,
                      std::span<const std::uint8_t> frame,
                      std::uint16_t vlan_hint) {
  const Location loc = archive_.record(at, frame);
  // Index by flow key when the frame parses as TCP/UDP. FrameView wants
  // mutable bytes (it doubles as the rewrite engine), so parse a scratch
  // copy; at capture granularity the copy is noise next to the archive
  // append itself.
  scratch_.assign(frame.begin(), frame.end());
  if (const auto view = pkt::FrameView::parse(scratch_)) {
    FlowRecord& record =
        index_.touch(view->flow_key(), view->vlan().value_or(vlan_hint), at,
                     frame.size(), loc);
    // Stamp tenant/job attribution; a record that already carries an
    // identity (restored, or captured under an earlier context) keeps it.
    if (record.tenant.empty()) record.tenant = tenant_;
    if (record.job == 0) record.job = job_;
  }
  refresh_metrics();
}

bool TraceTap::annotate(const pkt::FlowKey& key, std::uint16_t vlan,
                        shim::Verdict verdict,
                        const std::string& policy_name,
                        shim::VerdictSource source) {
  return index_.annotate(key, vlan, verdict, policy_name, source);
}

std::vector<pkt::PcapRecord> TraceTap::extract_flow(
    const FlowRecord& flow) const {
  std::vector<pkt::PcapRecord> records;
  records.reserve(flow.locations.size());
  for (const auto& loc : flow.locations) {
    if (auto record = archive_.record_at(loc))
      records.push_back(std::move(*record));
  }
  return records;
}

bool TraceTap::save_pcap(const std::string& path) const {
  const auto bytes = contents();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

bool TraceTap::save(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;

  std::ostringstream manifest;
  manifest << "gq-trace 1\n";
  manifest << "name " << name_ << '\n';
  // Tenant/job attribution (absent for unattributed taps; readers that
  // predate it skip unknown keys).
  if (!tenant_.empty()) manifest << "tenant " << tenant_ << '\n';
  if (job_ != 0) manifest << "job " << job_ << '\n';
  manifest << "segment_bytes " << archive_.config().segment_bytes << '\n';
  manifest << "max_segments " << archive_.config().max_segments << '\n';
  manifest << "total_packets " << archive_.total_packets() << '\n';
  manifest << "evicted_segments " << archive_.evicted_segments() << '\n';
  manifest << "evicted_packets " << archive_.evicted_packets() << '\n';
  manifest << "evicted_bytes " << archive_.evicted_bytes() << '\n';
  for (const auto& segment : archive_.segments()) {
    manifest << "segment " << segment.seq << ' '
             << segment_filename(segment.seq) << '\n';
    if (!segment.pcap.save(dir + "/" + segment_filename(segment.seq)))
      return false;
  }
  if (!write_file(dir + "/manifest.txt", manifest.str())) return false;

  std::ostringstream flows;
  for (const auto& flow : index_.flows())
    flows << flow_record_line(flow) << '\n';
  return write_file(dir + "/flows.txt", flows.str());
}

std::optional<TraceTap> load_trace(const std::string& dir) {
  const auto manifest_bytes = read_file(dir + "/manifest.txt");
  if (!manifest_bytes) return std::nullopt;
  std::istringstream manifest(
      std::string(manifest_bytes->begin(), manifest_bytes->end()));
  std::string magic;
  int version = 0;
  manifest >> magic >> version;
  if (magic != "gq-trace" || version != 1) return std::nullopt;

  std::string name = "loaded";
  std::string tenant;
  std::uint64_t job = 0;
  ArchiveConfig config;
  std::uint64_t total_packets = 0, evicted_segments = 0;
  std::uint64_t evicted_packets = 0, evicted_bytes = 0;
  struct SegmentEntry {
    std::uint64_t seq;
    std::string file;
  };
  std::vector<SegmentEntry> segment_entries;
  std::string key;
  while (manifest >> key) {
    if (key == "name") {
      manifest >> name;
    } else if (key == "tenant") {
      manifest >> tenant;
    } else if (key == "job") {
      manifest >> job;
    } else if (key == "segment_bytes") {
      manifest >> config.segment_bytes;
    } else if (key == "max_segments") {
      manifest >> config.max_segments;
    } else if (key == "total_packets") {
      manifest >> total_packets;
    } else if (key == "evicted_segments") {
      manifest >> evicted_segments;
    } else if (key == "evicted_packets") {
      manifest >> evicted_packets;
    } else if (key == "evicted_bytes") {
      manifest >> evicted_bytes;
    } else if (key == "segment") {
      SegmentEntry entry;
      manifest >> entry.seq >> entry.file;
      segment_entries.push_back(std::move(entry));
    } else {
      std::string skipped;
      std::getline(manifest, skipped);
    }
  }

  TraceTap tap(name, config, nullptr);
  tap.set_context(tenant, job);
  for (const auto& entry : segment_entries) {
    const auto bytes = read_file(dir + "/" + entry.file);
    if (!bytes) return std::nullopt;
    if (!tap.archive_.restore_segment(entry.seq, *bytes)) return std::nullopt;
  }
  tap.archive_.restore_counters(total_packets, evicted_segments,
                                evicted_packets, evicted_bytes);

  const auto flows_bytes = read_file(dir + "/flows.txt");
  if (flows_bytes) {
    std::istringstream flows(
        std::string(flows_bytes->begin(), flows_bytes->end()));
    std::string line;
    while (std::getline(flows, line)) {
      // Hardened parser (trace/flow_index.h): malformed lines are
      // dropped, never thrown on — the fuzz suite drives this with
      // mutated archives.
      if (auto record = parse_flow_record_line(line))
        tap.index_.restore(std::move(*record));
    }
  }
  return tap;
}

}  // namespace gq::trace
