#include "trace/tap.h"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "packet/frame_view.h"
#include "util/strings.h"

namespace gq::trace {

namespace {

std::optional<shim::Verdict> verdict_from_name(const std::string& name) {
  for (const auto v :
       {shim::Verdict::kForward, shim::Verdict::kLimit, shim::Verdict::kDrop,
        shim::Verdict::kRedirect, shim::Verdict::kReflect,
        shim::Verdict::kRewrite}) {
    if (name == shim::verdict_name(v)) return v;
  }
  return std::nullopt;
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

std::optional<std::vector<std::uint8_t>> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[4096];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
    bytes.insert(bytes.end(), chunk, chunk + n);
  std::fclose(f);
  return bytes;
}

std::string segment_filename(std::uint64_t seq) {
  return util::format("segment-%08llu.pcap",
                      static_cast<unsigned long long>(seq));
}

}  // namespace

TraceTap::TraceTap(std::string name, ArchiveConfig config,
                   obs::Telemetry* telemetry)
    : name_(std::move(name)), archive_(config) {
  if (telemetry) {
    auto& metrics = telemetry->metrics();
    const std::string prefix = "trace." + name_ + ".";
    segments_gauge_ = &metrics.gauge(prefix + "segments");
    bytes_gauge_ = &metrics.gauge(prefix + "bytes");
    evicted_ctr_ = &metrics.counter(prefix + "evicted");
    packets_ctr_ = &metrics.counter(prefix + "packets");
  }
}

void TraceTap::refresh_metrics() {
  if (!segments_gauge_) return;
  segments_gauge_->set(static_cast<std::int64_t>(archive_.segment_count()));
  bytes_gauge_->set(static_cast<std::int64_t>(archive_.retained_bytes()));
  packets_ctr_->inc();
  const std::uint64_t evicted = archive_.evicted_segments();
  if (evicted > reported_evicted_) {
    evicted_ctr_->inc(evicted - reported_evicted_);
    reported_evicted_ = evicted;
  }
}

void TraceTap::record(util::TimePoint at,
                      std::span<const std::uint8_t> frame,
                      std::uint16_t vlan_hint) {
  const Location loc = archive_.record(at, frame);
  // Index by flow key when the frame parses as TCP/UDP. FrameView wants
  // mutable bytes (it doubles as the rewrite engine), so parse a scratch
  // copy; at capture granularity the copy is noise next to the archive
  // append itself.
  scratch_.assign(frame.begin(), frame.end());
  if (const auto view = pkt::FrameView::parse(scratch_)) {
    index_.touch(view->flow_key(), view->vlan().value_or(vlan_hint), at,
                 frame.size(), loc);
  }
  refresh_metrics();
}

bool TraceTap::annotate(const pkt::FlowKey& key, std::uint16_t vlan,
                        shim::Verdict verdict,
                        const std::string& policy_name,
                        shim::VerdictSource source) {
  return index_.annotate(key, vlan, verdict, policy_name, source);
}

std::vector<pkt::PcapRecord> TraceTap::extract_flow(
    const FlowRecord& flow) const {
  std::vector<pkt::PcapRecord> records;
  records.reserve(flow.locations.size());
  for (const auto& loc : flow.locations) {
    if (auto record = archive_.record_at(loc))
      records.push_back(std::move(*record));
  }
  return records;
}

bool TraceTap::save_pcap(const std::string& path) const {
  const auto bytes = contents();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  return std::fclose(f) == 0 && ok;
}

bool TraceTap::save(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;

  std::ostringstream manifest;
  manifest << "gq-trace 1\n";
  manifest << "name " << name_ << '\n';
  manifest << "segment_bytes " << archive_.config().segment_bytes << '\n';
  manifest << "max_segments " << archive_.config().max_segments << '\n';
  manifest << "total_packets " << archive_.total_packets() << '\n';
  manifest << "evicted_segments " << archive_.evicted_segments() << '\n';
  manifest << "evicted_packets " << archive_.evicted_packets() << '\n';
  manifest << "evicted_bytes " << archive_.evicted_bytes() << '\n';
  for (const auto& segment : archive_.segments()) {
    manifest << "segment " << segment.seq << ' '
             << segment_filename(segment.seq) << '\n';
    if (!segment.pcap.save(dir + "/" + segment_filename(segment.seq)))
      return false;
  }
  if (!write_file(dir + "/manifest.txt", manifest.str())) return false;

  std::ostringstream flows;
  for (const auto& flow : index_.flows()) {
    flows << "flow\t"
          << (flow.key.proto == pkt::FlowProto::kTcp ? "tcp" : "udp") << '\t'
          << flow.key.src.addr.str() << '\t' << flow.key.src.port << '\t'
          << flow.key.dst.addr.str() << '\t' << flow.key.dst.port << '\t'
          << flow.vlan << '\t' << flow.packets << '\t' << flow.bytes << '\t'
          << flow.first_time.usec << '\t' << flow.last_time.usec << '\t'
          << (flow.has_verdict ? shim::verdict_name(flow.verdict) : "-")
          << '\t' << (flow.policy_name.empty() ? "-" : flow.policy_name)
          << '\t';
    for (std::size_t i = 0; i < flow.locations.size(); ++i) {
      if (i) flows << ',';
      flows << flow.locations[i].segment << ':' << flow.locations[i].offset;
    }
    // Verdict source, trailing so pre-cache readers stay compatible.
    flows << '\t'
          << (flow.has_verdict ? shim::verdict_source_name(flow.verdict_source)
                               : "-");
    flows << '\n';
  }
  return write_file(dir + "/flows.txt", flows.str());
}

std::optional<TraceTap> load_trace(const std::string& dir) {
  const auto manifest_bytes = read_file(dir + "/manifest.txt");
  if (!manifest_bytes) return std::nullopt;
  std::istringstream manifest(
      std::string(manifest_bytes->begin(), manifest_bytes->end()));
  std::string magic;
  int version = 0;
  manifest >> magic >> version;
  if (magic != "gq-trace" || version != 1) return std::nullopt;

  std::string name = "loaded";
  ArchiveConfig config;
  std::uint64_t total_packets = 0, evicted_segments = 0;
  std::uint64_t evicted_packets = 0, evicted_bytes = 0;
  struct SegmentEntry {
    std::uint64_t seq;
    std::string file;
  };
  std::vector<SegmentEntry> segment_entries;
  std::string key;
  while (manifest >> key) {
    if (key == "name") {
      manifest >> name;
    } else if (key == "segment_bytes") {
      manifest >> config.segment_bytes;
    } else if (key == "max_segments") {
      manifest >> config.max_segments;
    } else if (key == "total_packets") {
      manifest >> total_packets;
    } else if (key == "evicted_segments") {
      manifest >> evicted_segments;
    } else if (key == "evicted_packets") {
      manifest >> evicted_packets;
    } else if (key == "evicted_bytes") {
      manifest >> evicted_bytes;
    } else if (key == "segment") {
      SegmentEntry entry;
      manifest >> entry.seq >> entry.file;
      segment_entries.push_back(std::move(entry));
    } else {
      std::string skipped;
      std::getline(manifest, skipped);
    }
  }

  TraceTap tap(name, config, nullptr);
  for (const auto& entry : segment_entries) {
    const auto bytes = read_file(dir + "/" + entry.file);
    if (!bytes) return std::nullopt;
    if (!tap.archive_.restore_segment(entry.seq, *bytes)) return std::nullopt;
  }
  tap.archive_.restore_counters(total_packets, evicted_segments,
                                evicted_packets, evicted_bytes);

  const auto flows_bytes = read_file(dir + "/flows.txt");
  if (flows_bytes) {
    std::istringstream flows(
        std::string(flows_bytes->begin(), flows_bytes->end()));
    std::string line;
    while (std::getline(flows, line)) {
      std::istringstream fields(line);
      std::string tag, proto, src_addr, dst_addr, verdict, policy, locs;
      std::uint16_t src_port = 0, dst_port = 0;
      FlowRecord record;
      auto next = [&fields](std::string& out) {
        return static_cast<bool>(std::getline(fields, out, '\t'));
      };
      std::string field;
      if (!next(tag) || tag != "flow") continue;
      if (!next(proto)) continue;
      record.key.proto =
          proto == "udp" ? pkt::FlowProto::kUdp : pkt::FlowProto::kTcp;
      if (!next(src_addr)) continue;
      if (!next(field)) continue;
      src_port = static_cast<std::uint16_t>(std::stoul(field));
      if (!next(dst_addr)) continue;
      if (!next(field)) continue;
      dst_port = static_cast<std::uint16_t>(std::stoul(field));
      const auto src = util::Ipv4Addr::parse(src_addr);
      const auto dst = util::Ipv4Addr::parse(dst_addr);
      if (!src || !dst) continue;
      record.key.src = {*src, src_port};
      record.key.dst = {*dst, dst_port};
      if (!next(field)) continue;
      record.vlan = static_cast<std::uint16_t>(std::stoul(field));
      if (!next(field)) continue;
      record.packets = std::stoull(field);
      if (!next(field)) continue;
      record.bytes = std::stoull(field);
      if (!next(field)) continue;
      record.first_time.usec = std::stoll(field);
      if (!next(field)) continue;
      record.last_time.usec = std::stoll(field);
      if (!next(verdict)) continue;
      if (verdict != "-") {
        if (const auto v = verdict_from_name(verdict)) {
          record.has_verdict = true;
          record.verdict = *v;
        }
      }
      if (!next(policy)) continue;
      if (policy != "-") record.policy_name = policy;
      if (next(locs) && !locs.empty()) {
        std::istringstream loc_stream(locs);
        std::string pair;
        while (std::getline(loc_stream, pair, ',')) {
          const auto colon = pair.find(':');
          if (colon == std::string::npos) continue;
          Location loc;
          loc.segment = std::stoull(pair.substr(0, colon));
          loc.offset = std::stoull(pair.substr(colon + 1));
          record.locations.push_back(loc);
        }
      }
      // Optional trailing verdict-source column (absent in archives
      // written before gateway-side verdict caching existed).
      if (next(field)) {
        record.verdict_source = field == "cached"
                                    ? shim::VerdictSource::kCached
                                    : field == "table"
                                          ? shim::VerdictSource::kTable
                                          : shim::VerdictSource::kShim;
        record.verdict_cached =
            record.verdict_source == shim::VerdictSource::kCached;
      }
      tap.index_.restore(std::move(record));
    }
  }
  return tap;
}

}  // namespace gq::trace
