// Rotating trace archiver (paper §5.6, §6.5): GQ keeps packet traces at
// every subfarm router and at the upstream interface so operators can
// audit containment after the fact. A raw PcapWriter grows without
// bound; the archiver caps memory by splitting the capture into pcap
// segments of a configured size and evicting the oldest segments once a
// configured count is exceeded — tcpdump -C/-W semantics, in memory.
// Each retained segment is a complete, independently valid pcap file,
// so there are never capture gaps *within* a retained segment; loss
// from rotation is only ever whole trailing-edge segments, and it is
// accounted (evicted segment/packet/byte counts) rather than silent.
//
// record() returns the (segment seq, byte offset) location of the
// appended record so a flow index can find any packet of a flow again
// in O(locations) without rescanning the archive.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "packet/pcap.h"
#include "util/time.h"

namespace gq::trace {

struct ArchiveConfig {
  /// Rotate to a fresh segment once the active one reaches this many
  /// bytes (pcap header + records). One frame never splits: a segment
  /// may overshoot by at most one max-size record.
  std::size_t segment_bytes = 256 * 1024;
  /// Retained segment count (including the active segment); the oldest
  /// segment is evicted beyond this. 0 behaves as 1.
  std::size_t max_segments = 8;
};

/// Where one captured record lives: the archive-wide segment sequence
/// number plus the byte offset of the record header inside that
/// segment's pcap buffer. Stable for the lifetime of the segment;
/// locations pointing into evicted segments simply stop resolving.
struct Location {
  std::uint64_t segment = 0;
  std::uint64_t offset = 0;

  friend constexpr auto operator<=>(const Location&, const Location&) =
      default;
};

class TraceArchiver {
 public:
  explicit TraceArchiver(ArchiveConfig config = {});

  /// One pcap segment. `seq` increases monotonically across the archive
  /// lifetime (evicted seqs are never reused).
  struct Segment {
    std::uint64_t seq = 0;
    pkt::PcapWriter pcap;
    util::TimePoint first_time;
    util::TimePoint last_time;
    std::size_t packets = 0;
  };

  /// Append one frame; rotates/evicts as needed. Returns the record's
  /// stable location.
  Location record(util::TimePoint at, std::span<const std::uint8_t> frame);

  [[nodiscard]] const ArchiveConfig& config() const { return config_; }
  [[nodiscard]] const std::deque<Segment>& segments() const {
    return segments_;
  }
  [[nodiscard]] const Segment* find_segment(std::uint64_t seq) const;

  /// Retained-state accounting (bounded by the segment budget).
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  [[nodiscard]] std::size_t retained_bytes() const;
  [[nodiscard]] std::size_t retained_packets() const;

  /// Lifetime accounting (monotonic).
  [[nodiscard]] std::uint64_t total_packets() const { return total_packets_; }
  [[nodiscard]] std::uint64_t evicted_segments() const {
    return evicted_segments_;
  }
  [[nodiscard]] std::uint64_t evicted_packets() const {
    return evicted_packets_;
  }
  [[nodiscard]] std::uint64_t evicted_bytes() const { return evicted_bytes_; }

  /// Resolve one record by location; nullopt if the segment was evicted
  /// or the offset does not name a record boundary.
  [[nodiscard]] std::optional<pkt::PcapRecord> record_at(Location loc) const;

  /// All retained records, oldest first.
  [[nodiscard]] std::vector<pkt::PcapRecord> records() const;

  /// The retained capture as one valid pcap file (single global header,
  /// segments concatenated oldest first).
  [[nodiscard]] std::vector<std::uint8_t> contents() const;

  /// Reconstruct a segment from saved pcap file contents (archive
  /// loading). Segments must be restored in ascending seq order; the
  /// restored segment becomes the active tail.
  bool restore_segment(std::uint64_t seq,
                       std::span<const std::uint8_t> pcap_bytes);

  /// Restore lifetime counters when loading a saved archive manifest.
  void restore_counters(std::uint64_t total_packets,
                        std::uint64_t evicted_segments,
                        std::uint64_t evicted_packets,
                        std::uint64_t evicted_bytes);

 private:
  Segment& active_segment(util::TimePoint at);

  ArchiveConfig config_;
  std::deque<Segment> segments_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t total_packets_ = 0;
  std::uint64_t evicted_segments_ = 0;
  std::uint64_t evicted_packets_ = 0;
  std::uint64_t evicted_bytes_ = 0;
};

}  // namespace gq::trace
