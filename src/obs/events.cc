#include "obs/events.h"

#include <algorithm>

#include "util/strings.h"

namespace gq::obs {

const char* farm_event_kind_name(FarmEvent::Kind kind) {
  switch (kind) {
    case FarmEvent::Kind::kFlowOpen: return "flow_open";
    case FarmEvent::Kind::kFlowVerdict: return "flow_verdict";
    case FarmEvent::Kind::kFlowClose: return "flow_close";
    case FarmEvent::Kind::kSafetyReject: return "safety_reject";
    case FarmEvent::Kind::kDhcpBind: return "dhcp_bind";
    case FarmEvent::Kind::kCsDecision: return "cs_decision";
    case FarmEvent::Kind::kInfectionServed: return "infection_served";
    case FarmEvent::Kind::kTriggerFired: return "trigger_fired";
    case FarmEvent::Kind::kSinkSession: return "sink_session";
    case FarmEvent::Kind::kSinkData: return "sink_data";
    case FarmEvent::Kind::kJobState: return "job_state";
  }
  return "?";
}

std::string format_event(const FarmEvent& event) {
  std::string out = util::format(
      "%lld %s %s vlan=%u proto=%d dst=%s verdict=%d src=%d policy=%s "
      "ann=%s b2s=%llu b2i=%llu",
      static_cast<long long>(event.time.usec),
      farm_event_kind_name(event.kind), event.subfarm.c_str(), event.vlan,
      static_cast<int>(event.proto), event.orig_dst.str().c_str(),
      static_cast<int>(event.verdict),
      static_cast<int>(event.verdict_source), event.policy_name.c_str(),
      event.annotation.c_str(),
      static_cast<unsigned long long>(event.bytes_to_server),
      static_cast<unsigned long long>(event.bytes_to_inmate));
  if (event.limit_bytes_per_sec) {
    out += util::format(" limit=%lld",
                        static_cast<long long>(*event.limit_bytes_per_sec));
  }
  if (!event.inmate_internal.is_unspecified() ||
      !event.inmate_global.is_unspecified()) {
    out += util::format(" bind=%s/%s", event.inmate_internal.str().c_str(),
                        event.inmate_global.str().c_str());
  }
  if (!event.sample_name.empty() || !event.sample_md5.empty()) {
    out += util::format(" sample=%s md5=%s", event.sample_name.c_str(),
                        event.sample_md5.c_str());
  }
  if (!event.trigger_text.empty() || !event.trigger_action.empty()) {
    out += util::format(" trigger=%s action=%s", event.trigger_text.c_str(),
                        event.trigger_action.c_str());
  }
  if (!event.sink_service.empty()) {
    out += util::format(" sink=%s from=%s", event.sink_service.c_str(),
                        event.sink_source.str().c_str());
  }
  if (!event.job_state.empty()) {
    out += util::format(" job=%llu tenant=%s state=%s",
                        static_cast<unsigned long long>(event.job_id),
                        event.tenant.c_str(), event.job_state.c_str());
  }
  return out;
}

EventBus::SubscriptionId EventBus::subscribe(Handler handler) {
  subscriptions_.push_back({next_id_, std::nullopt, std::move(handler)});
  return next_id_++;
}

EventBus::SubscriptionId EventBus::subscribe(FarmEvent::Kind kind,
                                             Handler handler) {
  subscriptions_.push_back({next_id_, kind, std::move(handler)});
  return next_id_++;
}

void EventBus::unsubscribe(SubscriptionId id) {
  subscriptions_.erase(
      std::remove_if(subscriptions_.begin(), subscriptions_.end(),
                     [id](const Subscription& s) { return s.id == id; }),
      subscriptions_.end());
}

void EventBus::publish(const FarmEvent& event) {
  ++published_;
  // Index-based walk: a handler may subscribe while we dispatch (the new
  // subscriber then sees only subsequent events of this publish chain).
  for (std::size_t i = 0; i < subscriptions_.size(); ++i) {
    const auto& sub = subscriptions_[i];
    if (sub.kind && *sub.kind != event.kind) continue;
    sub.handler(event);
  }
}

}  // namespace gq::obs
