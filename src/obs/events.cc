#include "obs/events.h"

#include <algorithm>

namespace gq::obs {

const char* farm_event_kind_name(FarmEvent::Kind kind) {
  switch (kind) {
    case FarmEvent::Kind::kFlowOpen: return "flow_open";
    case FarmEvent::Kind::kFlowVerdict: return "flow_verdict";
    case FarmEvent::Kind::kFlowClose: return "flow_close";
    case FarmEvent::Kind::kSafetyReject: return "safety_reject";
    case FarmEvent::Kind::kDhcpBind: return "dhcp_bind";
    case FarmEvent::Kind::kCsDecision: return "cs_decision";
    case FarmEvent::Kind::kInfectionServed: return "infection_served";
    case FarmEvent::Kind::kTriggerFired: return "trigger_fired";
    case FarmEvent::Kind::kSinkSession: return "sink_session";
    case FarmEvent::Kind::kSinkData: return "sink_data";
  }
  return "?";
}

EventBus::SubscriptionId EventBus::subscribe(Handler handler) {
  subscriptions_.push_back({next_id_, std::nullopt, std::move(handler)});
  return next_id_++;
}

EventBus::SubscriptionId EventBus::subscribe(FarmEvent::Kind kind,
                                             Handler handler) {
  subscriptions_.push_back({next_id_, kind, std::move(handler)});
  return next_id_++;
}

void EventBus::unsubscribe(SubscriptionId id) {
  subscriptions_.erase(
      std::remove_if(subscriptions_.begin(), subscriptions_.end(),
                     [id](const Subscription& s) { return s.id == id; }),
      subscriptions_.end());
}

void EventBus::publish(const FarmEvent& event) {
  ++published_;
  // Index-based walk: a handler may subscribe while we dispatch (the new
  // subscriber then sees only subsequent events of this publish chain).
  for (std::size_t i = 0; i < subscriptions_.size(); ++i) {
    const auto& sub = subscriptions_[i];
    if (sub.kind && *sub.kind != event.kind) continue;
    sub.handler(event);
  }
}

}  // namespace gq::obs
