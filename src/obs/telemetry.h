// Telemetry: the farm's single observability handle — a metrics
// registry plus the structured event bus. core::Farm owns one and hands
// it to the gateway, the containment servers, and the sinks; standalone
// components (unit tests, benches) that are built without a farm own a
// private instance instead, so instrumentation code never needs a null
// check.
//
// publish() forwards to the bus and maintains per-kind event counters
// ("obs.events.<kind>") so the event stream itself is measurable.
#pragma once

#include <array>

#include "obs/events.h"
#include "obs/metrics.h"

namespace gq::obs {

class Telemetry {
 public:
  Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] EventBus& bus() { return bus_; }

  /// Publish an event, counting it under "obs.events.<kind>".
  void publish(const FarmEvent& event);

 private:
  MetricsRegistry metrics_;
  EventBus bus_;
  std::array<Counter*, 11> kind_counters_{};
};

}  // namespace gq::obs
