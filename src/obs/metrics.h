// Farm-wide metrics registry (paper §6.5 motivation: operators verify
// containment from continuous measurement — "an unusual number of
// FORWARD verdicts might indicate a bug in the policy"). Components
// resolve named instruments once (at construction) and then update them
// through plain pointers, so the per-frame path pays one integer
// add/compare — no map lookup, no allocation, no formatting.
//
// Three instrument kinds:
//   * Counter   — monotonically increasing u64 (flows created, verdicts).
//   * Gauge     — signed level that moves both ways (active flows,
//                 rewrites in flight).
//   * Histogram — fixed upper-bound buckets plus count/sum, tuned by
//                 default for microsecond latencies (decision latency,
//                 shim round-trip time).
//
// The registry renders either a human-readable text table or a JSON
// document (for scripted consumers of bench/micro_datapath and future
// scrape endpoints).
//
// Memory-ordering contract under sharded (multi-threaded) execution:
//
//   * Instrument updates (Counter::inc, Gauge::add/set, Histogram::
//     observe) are relaxed atomics: concurrent publishers from
//     different shard worker threads never lose increments, but an
//     in-epoch reader on another thread sees no ordering between
//     instruments. No publisher ever blocks.
//   * Registry *mutation* (counter()/gauge()/histogram() creating a new
//     instrument) is NOT thread-safe. Components resolve their handles
//     at construction time — before the lockstep workers start — which
//     is also what keeps instrument addresses stable for cached
//     references.
//   * Cross-thread reads (render_text/render_json, find_*, value())
//     are exact only at a lockstep epoch barrier: the coordinator's
//     barrier mutex hand-off makes every relaxed update from the
//     preceding epoch happen-before the reader. ShardedFarm therefore
//     snapshots metrics only between run_for() calls.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gq::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void sub(std::int64_t delta) {
    value_.fetch_sub(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram. Bounds are inclusive upper edges in ascending
/// order; an implicit +inf bucket catches the tail, so bucket_counts()
/// always has upper_bounds().size() + 1 entries.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return upper_bounds_;
  }
  /// Snapshot of the per-bucket counts (copy: the live buckets are
  /// atomics a concurrent publisher may still be bumping).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

  /// Estimate of the q-quantile (0 < q <= 1) assuming a uniform spread
  /// within the winning bucket. Good enough for operator dashboards.
  [[nodiscard]] double quantile(double q) const;

  /// ASCII bucket table with proportional bars, e.g. for the
  /// micro_datapath latency baseline printout.
  [[nodiscard]] std::string render(const std::string& title) const;

 private:
  std::vector<double> upper_bounds_;
  // upper_bounds_.size() + 1 entries; sized once in the constructor and
  // never resized, so element addresses stay valid for publishers.
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default bucket edges for microsecond-scale latency histograms:
/// 100us .. 5s in roughly 1-2.5-5 steps.
std::vector<double> default_latency_bounds_us();

/// Name -> instrument registry. Instruments are created on first access
/// and have stable addresses for the lifetime of the registry, so hot
/// paths cache the returned reference. Metric names follow
/// "<component>.<scope>.<metric>", e.g. "gw.Botfarm.decision_latency_us".
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds = {});

  /// Lookups without creation (tests, render helpers). nullptr if absent.
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// One "name value" line per instrument, sorted by name.
  [[nodiscard]] std::string render_text() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  [[nodiscard]] std::string render_json() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace gq::obs
