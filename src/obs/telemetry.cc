#include "obs/telemetry.h"

#include <string>

namespace gq::obs {

Telemetry::Telemetry() {
  for (std::size_t i = 0; i < kind_counters_.size(); ++i) {
    const auto kind = static_cast<FarmEvent::Kind>(i);
    kind_counters_[i] = &metrics_.counter(
        std::string("obs.events.") + farm_event_kind_name(kind));
  }
}

void Telemetry::publish(const FarmEvent& event) {
  const auto index = static_cast<std::size_t>(event.kind);
  if (index < kind_counters_.size()) kind_counters_[index]->inc();
  bus_.publish(event);
}

}  // namespace gq::obs
