#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"

namespace gq::obs {

namespace {

// JSON number formatting: integers stay integral, everything else keeps
// enough precision to round-trip typical latency sums.
std::string json_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    return util::format("%lld", static_cast<long long>(v));
  }
  return util::format("%.6g", v);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  if (upper_bounds_.empty()) upper_bounds_ = default_latency_bounds_us();
  std::sort(upper_bounds_.begin(), upper_bounds_.end());
  buckets_ = std::vector<std::atomic<std::uint64_t>>(upper_bounds_.size() + 1);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(upper_bounds_.begin(),
                                   upper_bounds_.end(), value);
  buckets_[static_cast<std::size_t>(it - upper_bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // C++20 floating-point fetch_add (a CAS loop on this target): relaxed
  // like the rest — concurrent observes never lose a sample.
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::quantile(double q) const {
  const std::vector<std::uint64_t> buckets = bucket_counts();
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(n);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (buckets[i] == 0) continue;
    const double hi = (i < upper_bounds_.size()) ? upper_bounds_[i]
                                                 : upper_bounds_.back();
    const double lo = (i == 0) ? 0.0 : upper_bounds_[i - 1];
    const double below = static_cast<double>(cumulative - buckets[i]);
    const double within =
        (rank - below) / static_cast<double>(buckets[i]);
    return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
  }
  return upper_bounds_.back();
}

std::string Histogram::render(const std::string& title) const {
  const std::vector<std::uint64_t> buckets = bucket_counts();
  std::string out = title + "\n";
  out += util::format("  count %llu  mean %.1f  p50 %.1f  p95 %.1f  p99 %.1f\n",
                      static_cast<unsigned long long>(count()), mean(),
                      quantile(0.50), quantile(0.95), quantile(0.99));
  const std::uint64_t peak =
      *std::max_element(buckets.begin(), buckets.end());
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    std::string edge =
        (i < upper_bounds_.size())
            ? util::format("<= %10.0f", upper_bounds_[i])
            : std::string("      > last");
    const std::size_t bar =
        peak == 0 ? 0
                  : static_cast<std::size_t>(40.0 *
                                             static_cast<double>(buckets[i]) /
                                             static_cast<double>(peak));
    out += util::format("  %s %8llu %s\n", edge.c_str(),
                        static_cast<unsigned long long>(buckets[i]),
                        std::string(bar, '#').c_str());
  }
  return out;
}

std::vector<double> default_latency_bounds_us() {
  return {100,    250,    500,     1000,    2500,    5000,    10000,
          25000,  50000,  100000,  250000,  500000,  1000000, 2500000,
          5000000};
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string MetricsRegistry::render_text() const {
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += util::format("%s %llu\n", name.c_str(),
                        static_cast<unsigned long long>(counter->value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    out += util::format("%s %lld\n", name.c_str(),
                        static_cast<long long>(gauge->value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    out += util::format("%s count %llu mean %.1f p95 %.1f\n", name.c_str(),
                        static_cast<unsigned long long>(histogram->count()),
                        histogram->mean(), histogram->quantile(0.95));
  }
  return out;
}

std::string MetricsRegistry::render_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += util::format("%s\"%s\":%llu", first ? "" : ",",
                        json_escape(name).c_str(),
                        static_cast<unsigned long long>(counter->value()));
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += util::format("%s\"%s\":%lld", first ? "" : ",",
                        json_escape(name).c_str(),
                        static_cast<long long>(gauge->value()));
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out += util::format(
        "%s\"%s\":{\"count\":%llu,\"sum\":%s,\"buckets\":[", first ? "" : ",",
        json_escape(name).c_str(),
        static_cast<unsigned long long>(histogram->count()),
        json_number(histogram->sum()).c_str());
    const auto& bounds = histogram->upper_bounds();
    const std::vector<std::uint64_t> buckets = histogram->bucket_counts();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      const std::string le =
          (i < bounds.size()) ? json_number(bounds[i]) : "\"+inf\"";
      out += util::format("%s{\"le\":%s,\"count\":%llu}", i == 0 ? "" : ",",
                          le.c_str(),
                          static_cast<unsigned long long>(buckets[i]));
    }
    out += "]}";
    first = false;
  }
  out += "}}";
  return out;
}

}  // namespace gq::obs
