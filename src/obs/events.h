// Structured farm event bus. One typed envelope — FarmEvent — carries
// every observable occurrence in the farm: flow lifecycle and verdicts
// from the gateway's packet routers, containment decisions / served
// infections / trigger firings from the containment servers, safety-
// filter rejections, DHCP address bindings, and sink session activity.
// Publishers fill the fields relevant to their Kind and leave the rest
// defaulted; subscribers filter on Kind.
//
// The bus replaces the previous trio of ad-hoc channels (gw::FlowEvent
// handlers, cs::CsEvent handlers, and render-time pulls from sink
// counters): components publish here, and consumers — the Figure 7
// reporter, tests, experiment harnesses — subscribe once, in one place
// (core::Farm's constructor). Dispatch is synchronous and in
// subscription order, which keeps the whole farm deterministic under the
// simulated clock.
//
// Threading contract: an EventBus is single-domain-affine — publishers
// and subscribers of one bus all live in the same execution domain (one
// farm shard), so dispatch needs no locks and stays deterministic.
// Sharded runs keep one bus per shard and merge observable streams at
// epoch barriers (core::ShardedFarm::merged_event_lines, built on
// format_event below); nothing ever publishes across shard threads.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "packet/frame.h"
#include "shim/shim.h"
#include "util/addr.h"
#include "util/time.h"

namespace gq::obs {

struct FarmEvent {
  enum class Kind {
    // Gateway / SubfarmRouter.
    kFlowOpen,      ///< Splice established to the verdict's server.
    kFlowVerdict,   ///< Response shim applied to a contained flow.
    kFlowClose,     ///< Flow closed (FIN/RST/GC); byte counts final.
    kSafetyReject,  ///< Safety filter refused a new flow (§5.2).
    kDhcpBind,      ///< Inmate bound an internal/global address pair.
    // Containment server.
    kCsDecision,       ///< Policy decision issued (CS-side view).
    kInfectionServed,  ///< Auto-infection payload delivered (§6.6).
    kTriggerFired,     ///< Activity trigger fired a lifecycle action.
    // Sinks.
    kSinkSession,  ///< Sink accepted a session / flow.
    kSinkData,     ///< Sink completed a data unit (SMTP DATA, datagram).
    // Detonation-job orchestrator.
    kJobState,  ///< A detonation job changed life-cycle state.
  };

  Kind kind = Kind::kFlowVerdict;
  util::TimePoint time;
  std::string subfarm;
  std::uint16_t vlan = 0;
  pkt::FlowProto proto = pkt::FlowProto::kTcp;

  // Flow / decision facts.
  util::Endpoint orig_dst;
  shim::Verdict verdict = shim::Verdict::kDrop;
  std::string policy_name;
  std::string annotation;
  std::optional<std::int64_t> limit_bytes_per_sec;  ///< LIMIT parameter.
  std::uint64_t bytes_to_server = 0;
  std::uint64_t bytes_to_inmate = 0;
  /// kFlowVerdict: where the verdict was resolved — a containment-
  /// server shim round trip, the gateway's verdict cache, or the
  /// compiled in-gateway policy table. The latter two mean the flow
  /// never reached the containment server.
  shim::VerdictSource verdict_source = shim::VerdictSource::kShim;
  /// Back-compat alias: verdict_source == kCached.
  bool verdict_cached = false;

  // kDhcpBind.
  util::Ipv4Addr inmate_internal;
  util::Ipv4Addr inmate_global;

  // kInfectionServed.
  std::string sample_name;
  std::string sample_md5;

  // kTriggerFired. The lifecycle action travels by name ("REVERT",
  // "REBOOT", "TERMINATE") so obs does not depend on containment types.
  std::string trigger_text;
  std::string trigger_action;

  // kSinkSession / kSinkData.
  std::string sink_service;      ///< e.g. "smtpsink", "catchall".
  util::Endpoint sink_source;    ///< Inmate-side endpoint (internal addr).

  // kJobState. The state travels by name (orch::job_state_name) so obs
  // does not depend on orchestrator types; sample_name/policy_name
  // carry the job's sample and profile.
  std::uint64_t job_id = 0;
  std::string tenant;
  std::string job_state;
};

const char* farm_event_kind_name(FarmEvent::Kind kind);

/// Canonical one-line rendering of an event, covering every field a
/// publisher sets. Two runs are observably identical iff their
/// format_event streams are byte-identical — this is the comparison key
/// of the serial-vs-parallel differential gates (tests/shard_test.cc,
/// bench sweep F), so keep it exhaustive: a field omitted here is a
/// field divergence can hide in.
std::string format_event(const FarmEvent& event);

/// Multi-subscriber dispatch. Synchronous, ordered by subscription;
/// unsubscribing is O(subscribers) and safe between publishes.
class EventBus {
 public:
  using Handler = std::function<void(const FarmEvent&)>;
  using SubscriptionId = std::uint64_t;

  /// Subscribe to every event.
  SubscriptionId subscribe(Handler handler);
  /// Subscribe to one Kind only.
  SubscriptionId subscribe(FarmEvent::Kind kind, Handler handler);
  void unsubscribe(SubscriptionId id);

  void publish(const FarmEvent& event);

  [[nodiscard]] std::size_t subscriber_count() const {
    return subscriptions_.size();
  }
  [[nodiscard]] std::uint64_t published() const { return published_; }

 private:
  struct Subscription {
    SubscriptionId id = 0;
    std::optional<FarmEvent::Kind> kind;  // nullopt: all kinds.
    Handler handler;
  };

  std::vector<Subscription> subscriptions_;
  SubscriptionId next_id_ = 1;
  std::uint64_t published_ = 0;
};

}  // namespace gq::obs
