#include "sinks/catchall.h"

namespace gq::sinks {

CatchAllSink::CatchAllSink(net::HostStack& stack, std::uint16_t port,
                           std::size_t capture_limit)
    : stack_(stack), capture_limit_(capture_limit) {
  stack_.listen(port, [this](std::shared_ptr<net::TcpConnection> conn) {
    ++tcp_flows_;
    if (tcp_flows_ctr_) tcp_flows_ctr_->inc();
    publish_sink_event(obs::FarmEvent::Kind::kSinkSession, conn->remote(),
                       pkt::FlowProto::kTcp);
    records_.push_back(FlowRecord{conn->remote(), pkt::FlowProto::kTcp, "",
                                  stack_.loop().now()});
    const std::size_t index = records_.size() - 1;
    conn->on_data = [this, index](std::span<const std::uint8_t> data) {
      auto& record = records_[index];
      const std::size_t room =
          capture_limit_ - std::min(capture_limit_, record.first_bytes.size());
      const std::size_t take = std::min(room, data.size());
      record.first_bytes.append(reinterpret_cast<const char*>(data.data()),
                                take);
      // Accept silently: no response whatsoever.
    };
    conn->on_remote_close = [conn] { conn->close(); };
  });
  udp_ = stack_.udp_open(port);
  udp_->on_datagram = [this](util::Endpoint from,
                             std::vector<std::uint8_t> data) {
    ++udp_datagrams_;
    if (udp_datagrams_ctr_) udp_datagrams_ctr_->inc();
    publish_sink_event(obs::FarmEvent::Kind::kSinkData, from,
                       pkt::FlowProto::kUdp);
    FlowRecord record{from, pkt::FlowProto::kUdp, "", stack_.loop().now()};
    record.first_bytes.assign(
        reinterpret_cast<const char*>(data.data()),
        std::min(capture_limit_, data.size()));
    records_.push_back(std::move(record));
  };
}

void CatchAllSink::set_telemetry(obs::Telemetry* telemetry,
                                 std::string subfarm, std::string service) {
  telemetry_ = telemetry;
  subfarm_name_ = std::move(subfarm);
  service_name_ = std::move(service);
  if (!telemetry_) {
    tcp_flows_ctr_ = udp_datagrams_ctr_ = nullptr;
    return;
  }
  const std::string prefix =
      "sink." + subfarm_name_ + "." + service_name_ + ".";
  auto& metrics = telemetry_->metrics();
  tcp_flows_ctr_ = &metrics.counter(prefix + "tcp_flows");
  udp_datagrams_ctr_ = &metrics.counter(prefix + "udp_datagrams");
}

void CatchAllSink::publish_sink_event(obs::FarmEvent::Kind kind,
                                      util::Endpoint source,
                                      pkt::FlowProto proto) {
  if (!telemetry_) return;
  obs::FarmEvent event;
  event.kind = kind;
  event.time = stack_.loop().now();
  event.subfarm = subfarm_name_;
  event.proto = proto;
  event.sink_service = service_name_;
  event.sink_source = source;
  telemetry_->publish(event);
}

}  // namespace gq::sinks
