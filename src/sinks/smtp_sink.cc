#include "sinks/smtp_sink.h"

#include "util/bytes.h"
#include "util/log.h"
#include "util/strings.h"

namespace gq::sinks {

namespace {
constexpr const char* kLog = "smtpsink";

enum class SmtpState { kWaitHelo, kIdle, kWaitRcpt, kInData };

// Lenient extraction of an address from "MAIL FROM:<a@b>" and its many
// bot-flavoured corruptions ("MAIL FROM a@b", "mail from: a@b", ...).
std::string extract_address(std::string_view args) {
  std::string out(util::trim(args));
  if (!out.empty() && out.front() == ':') out = out.substr(1);
  out = std::string(util::trim(out));
  if (!out.empty() && out.front() == '<') out = out.substr(1);
  if (!out.empty() && out.back() == '>') out.pop_back();
  return out;
}

// Strict form requires exactly "FROM:<address>".
bool strict_address_ok(std::string_view args) {
  return args.size() >= 3 && args.front() == ':' &&
         args[1] == '<' && args.back() == '>';
}

}  // namespace

struct SmtpSink::Session {
  std::shared_ptr<net::TcpConnection> conn;
  std::string buffer;
  SmtpState state = SmtpState::kWaitHelo;
  bool helo_seen = false;
  HarvestedMessage message;
  std::string data_buffer;
};

SmtpSink::SmtpSink(net::HostStack& stack, SmtpSinkConfig config)
    : stack_(stack), config_(std::move(config)), rng_(config_.seed) {
  stack_.listen(config_.port,
                [this](std::shared_ptr<net::TcpConnection> conn) {
                  on_accept(std::move(conn));
                });
  hint_sock_ = stack_.udp_open(config_.hint_port);
  hint_sock_->on_datagram = [this](util::Endpoint,
                                   std::vector<std::uint8_t> data) {
    // Hint format: "<inmate-ip> <target-ip>:<port>\n".
    auto parts = util::split_ws(util::to_string(data));
    if (parts.size() != 2) return;
    auto inmate = util::Ipv4Addr::parse(parts[0]);
    auto colon = parts[1].rfind(':');
    if (!inmate || colon == std::string::npos) return;
    auto target = util::Ipv4Addr::parse(parts[1].substr(0, colon));
    auto port = util::parse_int(parts[1].substr(colon + 1));
    if (!target || !port) return;
    add_destination_hint(*inmate,
                         {*target, static_cast<std::uint16_t>(*port)});
  };
}

void SmtpSink::add_destination_hint(util::Ipv4Addr inmate,
                                    util::Endpoint orig_dst) {
  hints_[inmate] = orig_dst;
}

void SmtpSink::set_telemetry(obs::Telemetry* telemetry, std::string subfarm,
                             std::string service) {
  telemetry_ = telemetry;
  subfarm_name_ = std::move(subfarm);
  service_name_ = std::move(service);
  if (!telemetry_) {
    sessions_ctr_ = data_ctr_ = dropped_ctr_ = nullptr;
    return;
  }
  const std::string prefix =
      "sink." + subfarm_name_ + "." + service_name_ + ".";
  auto& metrics = telemetry_->metrics();
  sessions_ctr_ = &metrics.counter(prefix + "sessions");
  data_ctr_ = &metrics.counter(prefix + "data_transfers");
  dropped_ctr_ = &metrics.counter(prefix + "dropped_connections");
}

void SmtpSink::publish_sink_event(obs::FarmEvent::Kind kind,
                                  util::Endpoint source) {
  if (!telemetry_) return;
  obs::FarmEvent event;
  event.kind = kind;
  event.time = stack_.loop().now();
  event.subfarm = subfarm_name_;
  event.sink_service = service_name_;
  event.sink_source = source;
  telemetry_->publish(event);
}

void SmtpSink::on_accept(std::shared_ptr<net::TcpConnection> conn) {
  if (config_.drop_probability > 0.0 &&
      rng_.chance(config_.drop_probability)) {
    ++dropped_;
    if (dropped_ctr_) dropped_ctr_->inc();
    conn->abort();
    return;
  }
  ++sessions_;
  ++by_source_[conn->remote().addr].sessions;
  if (sessions_ctr_) sessions_ctr_->inc();
  publish_sink_event(obs::FarmEvent::Kind::kSinkSession, conn->remote());
  auto session = std::make_shared<Session>();
  session->conn = conn;
  session->message.from = conn->remote();
  conn->on_data = [this, session](std::span<const std::uint8_t> data) {
    session->buffer.append(reinterpret_cast<const char*>(data.data()),
                           data.size());
    std::size_t pos;
    while ((pos = session->buffer.find("\r\n")) != std::string::npos) {
      std::string line = session->buffer.substr(0, pos);
      session->buffer.erase(0, pos + 2);
      handle_line(session, std::move(line));
    }
  };
  conn->on_remote_close = [conn] { conn->close(); };
  begin_session(session);
}

void SmtpSink::begin_session(std::shared_ptr<Session> session) {
  if (!config_.banner_grabbing) {
    session->conn->send(config_.static_banner + "\r\n");
    return;
  }
  auto hint = hints_.find(session->conn->remote().addr);
  if (hint == hints_.end()) {
    session->conn->send(config_.static_banner + "\r\n");
    return;
  }
  const util::Endpoint target = hint->second;
  if (auto cached = banner_cache_.find(target.addr);
      cached != banner_cache_.end()) {
    session->conn->send(cached->second + "\r\n");
    return;
  }
  grab_banner(target, [this, session, target](std::string banner) {
    banner_cache_[target.addr] = banner;
    if (session->conn) session->conn->send(banner + "\r\n");
  });
}

void SmtpSink::grab_banner(util::Endpoint target,
                           std::function<void(std::string)> done) {
  auto conn = stack_.connect(target);
  auto buffer = std::make_shared<std::string>();
  auto finished = std::make_shared<bool>(false);
  auto finish = [this, done, finished, conn](std::string banner) {
    if (*finished) return;
    *finished = true;
    ++banners_grabbed_;
    done(std::move(banner));
    conn->abort();
  };
  conn->on_data = [buffer, finish](std::span<const std::uint8_t> data) {
    buffer->append(reinterpret_cast<const char*>(data.data()), data.size());
    if (auto pos = buffer->find("\r\n"); pos != std::string::npos) {
      finish(buffer->substr(0, pos));
    }
  };
  auto fallback = [this, done, finished] {
    if (*finished) return;
    *finished = true;
    done(config_.static_banner);
  };
  conn->on_reset = fallback;
  conn->on_closed = fallback;
  // Give the real server a bounded time to answer.
  stack_.loop().schedule_in(util::seconds(10), [finish, this] {
    finish(config_.static_banner);
  });
}

void SmtpSink::handle_line(std::shared_ptr<Session> session,
                           std::string line) {
  auto& conn = *session->conn;

  if (session->state == SmtpState::kInData) {
    if (line == ".") {
      session->state = SmtpState::kIdle;
      ++data_transfers_;
      ++by_source_[session->conn->remote().addr].data_transfers;
      if (data_ctr_) data_ctr_->inc();
      publish_sink_event(obs::FarmEvent::Kind::kSinkData,
                         session->conn->remote());
      session->message.data = std::move(session->data_buffer);
      session->data_buffer.clear();
      session->message.received = stack_.loop().now();
      harvest_.push_back(session->message);
      if (on_message_) on_message_(harvest_.back());
      session->message.rcpt_to.clear();
      session->message.mail_from.clear();
      conn.send("250 OK queued\r\n");
    } else {
      session->data_buffer += line;
      session->data_buffer += "\r\n";
    }
    return;
  }

  const auto space = line.find(' ');
  const std::string verb = util::to_lower(
      space == std::string::npos ? line : line.substr(0, space));
  const std::string args =
      space == std::string::npos ? "" : line.substr(space + 1);

  if (verb == "helo" || verb == "ehlo") {
    if (config_.strict_protocol && session->helo_seen) {
      // §7.1: real bots repeat HELO; a strict engine refuses and the
      // session never reaches DATA.
      conn.send("503 bad sequence of commands\r\n");
      return;
    }
    session->helo_seen = true;
    session->message.helo = std::string(util::trim(args));
    session->state = SmtpState::kIdle;
    conn.send("250 " + std::string("mx.sink.gq") + "\r\n");
    return;
  }
  if (verb == "mail") {
    if (session->state == SmtpState::kWaitHelo) {
      conn.send("503 need HELO first\r\n");
      return;
    }
    // Args look like "FROM:<a@b>" (or a bot-mangled variant).
    std::string_view rest(args);
    if (util::starts_with_icase(rest, "from")) rest.remove_prefix(4);
    if (config_.strict_protocol && !strict_address_ok(rest)) {
      conn.send("501 syntax error in MAIL FROM\r\n");
      return;
    }
    session->message.mail_from = extract_address(rest);
    session->state = SmtpState::kWaitRcpt;
    conn.send("250 sender OK\r\n");
    return;
  }
  if (verb == "rcpt") {
    if (session->state != SmtpState::kWaitRcpt) {
      conn.send("503 need MAIL first\r\n");
      return;
    }
    std::string_view rest(args);
    if (util::starts_with_icase(rest, "to")) rest.remove_prefix(2);
    if (config_.strict_protocol && !strict_address_ok(rest)) {
      conn.send("501 syntax error in RCPT TO\r\n");
      return;
    }
    session->message.rcpt_to.push_back(extract_address(rest));
    conn.send("250 recipient OK\r\n");
    return;
  }
  if (verb == "data") {
    if (session->state != SmtpState::kWaitRcpt ||
        session->message.rcpt_to.empty()) {
      conn.send("503 need RCPT first\r\n");
      return;
    }
    session->state = SmtpState::kInData;
    conn.send("354 end with <CRLF>.<CRLF>\r\n");
    return;
  }
  if (verb == "rset") {
    session->state =
        session->helo_seen ? SmtpState::kIdle : SmtpState::kWaitHelo;
    session->message.rcpt_to.clear();
    session->message.mail_from.clear();
    conn.send("250 OK\r\n");
    return;
  }
  if (verb == "quit") {
    conn.send("221 bye\r\n");
    conn.close();
    return;
  }
  if (verb == "noop") {
    conn.send("250 OK\r\n");
    return;
  }
  conn.send("502 command not implemented\r\n");
}

}  // namespace gq::sinks
