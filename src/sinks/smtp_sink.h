// Fidelity-adjustable SMTP sink (paper §6.3): GQ's most complex sink.
// It terminates spambot SMTP sessions inside the farm so that no spam
// escapes, while presenting enough realism that bots keep spamming:
//
//  * banner grabbing — "SMTP requests to a hitherto unseen host now
//    caused the sink to actually connect out to the target SMTP server
//    and obtain the greeting message" (§7.1 "satisfying fidelity");
//    original-destination hints arrive out-of-band from the containment
//    server on a UDP side channel, since REFLECT rewrites the endpoint;
//  * probabilistic connection drops — Figure 7's note that REFLECTed
//    flow counts exceed SMTP session counts "because we configured the
//    SMTP sink to drop connections probabilistically";
//  * a protocol engine with strict and lenient modes — §7.1 "protocol
//    violations": a sink following RFC 821 too closely never reaches the
//    DATA stage with sloppy bots (repeated HELOs, malformed MAIL FROM),
//    gutting the spam harvest.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/stack.h"
#include "net/tcp.h"
#include "obs/telemetry.h"
#include "util/addr.h"
#include "util/rng.h"

namespace gq::sinks {

struct SmtpSinkConfig {
  /// Port the sink listens on (Figure 6 uses 2526).
  std::uint16_t port = 2526;
  /// UDP port for original-destination hints from the containment server.
  std::uint16_t hint_port = 2527;
  /// Fetch the greeting banner from the real target for unseen hosts.
  bool banner_grabbing = false;
  /// Greeting used when not grabbing (or as fallback).
  std::string static_banner = "220 mx.sink.gq ESMTP ready";
  /// Fraction of connections dropped right after accept.
  double drop_probability = 0.0;
  /// Strict RFC 821 protocol engine (the failure mode of §7.1) vs the
  /// lenient engine that tolerates real-world bot sloppiness.
  bool strict_protocol = false;
  std::uint64_t seed = 0x5347;
};

/// One harvested message.
struct HarvestedMessage {
  util::Endpoint from;        ///< Inmate endpoint (internal address).
  std::string helo;
  std::string mail_from;
  std::vector<std::string> rcpt_to;
  std::string data;           ///< Full message body.
  util::TimePoint received;
};

class SmtpSink {
 public:
  using MessageHandler = std::function<void(const HarvestedMessage&)>;

  SmtpSink(net::HostStack& stack, SmtpSinkConfig config);

  /// Record that flows from `inmate` were originally destined to
  /// `orig_dst` (sent by the containment server via the hint channel,
  /// or directly by test code).
  void add_destination_hint(util::Ipv4Addr inmate, util::Endpoint orig_dst);

  void set_message_handler(MessageHandler handler) {
    on_message_ = std::move(handler);
  }

  /// Join the farm-wide telemetry: sessions and completed DATA
  /// transfers are published as kSinkSession / kSinkData events and
  /// counted under "sink.<subfarm>.<service>.*". Null-safe: standalone
  /// sinks simply skip publication.
  void set_telemetry(obs::Telemetry* telemetry, std::string subfarm,
                     std::string service);

  // Counters for the Figure 7 report lines.
  [[nodiscard]] std::uint64_t sessions() const { return sessions_; }
  [[nodiscard]] std::uint64_t data_transfers() const {
    return data_transfers_;
  }
  [[nodiscard]] std::uint64_t dropped_connections() const {
    return dropped_; }
  [[nodiscard]] std::uint64_t banners_grabbed() const {
    return banners_grabbed_;
  }
  [[nodiscard]] const std::vector<HarvestedMessage>& harvest() const {
    return harvest_;
  }

  /// Per-source (inmate internal address) counters, for per-inmate
  /// report attribution.
  struct SourceStats {
    std::uint64_t sessions = 0;
    std::uint64_t data_transfers = 0;
  };
  [[nodiscard]] const std::map<util::Ipv4Addr, SourceStats>& by_source()
      const {
    return by_source_;
  }

  [[nodiscard]] const SmtpSinkConfig& config() const { return config_; }

 private:
  struct Session;

  void on_accept(std::shared_ptr<net::TcpConnection> conn);
  void begin_session(std::shared_ptr<Session> session);
  void send_banner(std::shared_ptr<Session> session);
  void handle_line(std::shared_ptr<Session> session, std::string line);
  void grab_banner(util::Endpoint target,
                   std::function<void(std::string)> done);
  void publish_sink_event(obs::FarmEvent::Kind kind, util::Endpoint source);

  net::HostStack& stack_;
  SmtpSinkConfig config_;
  util::Rng rng_;
  std::shared_ptr<net::UdpSocket> hint_sock_;
  std::map<util::Ipv4Addr, util::Endpoint> hints_;
  std::map<util::Ipv4Addr, std::string> banner_cache_;  // By target host.
  MessageHandler on_message_;
  std::vector<HarvestedMessage> harvest_;
  std::map<util::Ipv4Addr, SourceStats> by_source_;
  std::uint64_t sessions_ = 0;
  std::uint64_t data_transfers_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t banners_grabbed_ = 0;

  obs::Telemetry* telemetry_ = nullptr;
  std::string subfarm_name_;
  std::string service_name_;
  obs::Counter* sessions_ctr_ = nullptr;
  obs::Counter* data_ctr_ = nullptr;
  obs::Counter* dropped_ctr_ = nullptr;
};

}  // namespace gq::sinks
