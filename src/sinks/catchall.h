// Catch-all sink server (paper §6.3): "accepts arbitrary traffic without
// meaningfully responding to it". Reflected flows land here under a
// default-deny development policy; the recorded first-bytes of each flow
// are what an analyst inspects to understand a fresh specimen's
// behavioural envelope (§3), and what the network-level fingerprinting
// of §7.1 ("unclear phylogenies") consumes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/stack.h"
#include "net/tcp.h"
#include "obs/telemetry.h"
#include "util/addr.h"

namespace gq::sinks {

class CatchAllSink {
 public:
  /// One observed flow and its captured payload prefix.
  struct FlowRecord {
    util::Endpoint from;
    pkt::FlowProto proto = pkt::FlowProto::kTcp;
    std::string first_bytes;  ///< Up to `capture_limit` bytes.
    util::TimePoint started;
  };

  /// Listens on `port` for both TCP and UDP.
  CatchAllSink(net::HostStack& stack, std::uint16_t port,
               std::size_t capture_limit = 256);

  /// Join the farm-wide telemetry: accepted flows / datagrams are
  /// published as kSinkSession / kSinkData events and counted under
  /// "sink.<subfarm>.<service>.*". Null-safe.
  void set_telemetry(obs::Telemetry* telemetry, std::string subfarm,
                     std::string service);

  [[nodiscard]] std::uint64_t tcp_flows() const { return tcp_flows_; }
  [[nodiscard]] std::uint64_t udp_datagrams() const { return udp_datagrams_; }
  [[nodiscard]] const std::vector<FlowRecord>& records() const {
    return records_;
  }
  void clear_records() { records_.clear(); }

 private:
  void publish_sink_event(obs::FarmEvent::Kind kind, util::Endpoint source,
                          pkt::FlowProto proto);

  net::HostStack& stack_;
  std::size_t capture_limit_;
  std::shared_ptr<net::UdpSocket> udp_;
  std::vector<FlowRecord> records_;
  std::uint64_t tcp_flows_ = 0;
  std::uint64_t udp_datagrams_ = 0;

  obs::Telemetry* telemetry_ = nullptr;
  std::string subfarm_name_;
  std::string service_name_;
  obs::Counter* tcp_flows_ctr_ = nullptr;
  obs::Counter* udp_datagrams_ctr_ = nullptr;
};

}  // namespace gq::sinks
