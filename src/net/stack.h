// HostStack: the network stack of one simulated machine. Owns the NIC
// port, speaks ARP, routes via a default gateway, demultiplexes IPv4 to
// TCP connections / UDP sockets / ICMP echo, and allocates ephemeral
// ports. Inmates, sink servers, containment servers, infrastructure
// services, and external Internet hosts are all HostStacks; only the GQ
// gateway itself works below this layer, on raw frames.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/tcp.h"
#include "netsim/event_loop.h"
#include "netsim/port.h"
#include "packet/frame.h"
#include "packet/headers.h"
#include "util/addr.h"
#include "util/rng.h"

namespace gq::net {

/// IPv4 configuration of a host (static or learned via DHCP).
struct Ipv4Config {
  util::Ipv4Addr addr;
  util::Ipv4Net subnet;
  util::Ipv4Addr gateway;
  util::Ipv4Addr dns;
};

/// A bound UDP socket. Obtained from HostStack::udp_open().
class UdpSocket {
 public:
  /// Called for each datagram received on the bound port.
  std::function<void(util::Endpoint from, std::vector<std::uint8_t> data)>
      on_datagram;

  UdpSocket(HostStack& stack, std::uint16_t port)
      : stack_(stack), port_(port) {}

  /// Send to a unicast destination (routed normally).
  void send_to(util::Endpoint dst, std::span<const std::uint8_t> payload);

  /// Send a link-local broadcast (255.255.255.255) — used by DHCP before
  /// the host has an address; the source address is 0.0.0.0 when the
  /// stack is unconfigured.
  void send_broadcast(std::uint16_t dst_port,
                      std::span<const std::uint8_t> payload);

  /// Unbind; pending inbound datagrams are dropped.
  void close();

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  HostStack& stack_;
  std::uint16_t port_;
};

class HostStack {
 public:
  using AcceptHandler =
      std::function<void(std::shared_ptr<TcpConnection>)>;

  HostStack(sim::EventLoop& loop, std::string name, util::MacAddr mac,
            std::uint64_t seed);
  ~HostStack();

  HostStack(const HostStack&) = delete;
  HostStack& operator=(const HostStack&) = delete;

  /// The NIC; wire it to a switch port or directly to another port.
  sim::Port& nic() { return nic_; }

  /// Assign a static IPv4 configuration.
  void configure(const Ipv4Config& config);

  /// Drop IP configuration (host goes silent, e.g. during revert).
  void deconfigure();

  [[nodiscard]] bool configured() const { return config_.has_value(); }
  [[nodiscard]] const Ipv4Config& config() const { return *config_; }
  [[nodiscard]] util::Ipv4Addr addr() const {
    return config_ ? config_->addr : util::Ipv4Addr();
  }
  [[nodiscard]] util::MacAddr mac() const { return mac_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::EventLoop& loop() { return loop_; }
  [[nodiscard]] util::Rng& rng() { return rng_; }

  // --- TCP -----------------------------------------------------------

  /// Active open to `dst`. Returns the connection immediately; the
  /// caller sets callbacks on it (on_connected fires once established).
  std::shared_ptr<TcpConnection> connect(util::Endpoint dst);

  /// Passive open: invoke `handler` with each accepted connection.
  void listen(std::uint16_t port, AcceptHandler handler);
  void close_listener(std::uint16_t port);

  // --- UDP -----------------------------------------------------------

  /// Bind a UDP socket; port 0 allocates an ephemeral port.
  std::shared_ptr<UdpSocket> udp_open(std::uint16_t port);

  // --- Stats -----------------------------------------------------------

  [[nodiscard]] std::uint64_t ip_rx() const { return ip_rx_; }
  [[nodiscard]] std::uint64_t ip_tx() const { return ip_tx_; }

  // --- Internal interfaces used by TcpConnection / UdpSocket ----------

  void send_tcp(util::Ipv4Addr dst, const pkt::TcpSegment& seg);
  void send_udp(util::Ipv4Addr src, util::Ipv4Addr dst,
                const pkt::UdpDatagram& dgram, bool broadcast);
  void remove_connection(const TcpConnection& conn);
  void remove_udp(std::uint16_t port);
  std::uint16_t allocate_port();
  std::uint32_t random_isn() { return static_cast<std::uint32_t>(rng_.next()); }

 private:
  void handle_frame(sim::Frame frame);
  void handle_arp(const pkt::ArpMessage& arp);
  void handle_ipv4(const pkt::DecodedFrame& frame);
  void handle_tcp_segment(util::Ipv4Addr src, const pkt::TcpSegment& seg);
  void send_ipv4(util::Ipv4Addr dst, std::uint8_t proto,
                 std::vector<std::uint8_t> payload,
                 std::optional<util::Ipv4Addr> src_override = std::nullopt);
  void transmit_to_mac(util::MacAddr dst_mac, std::uint16_t ethertype,
                       std::vector<std::uint8_t> payload);
  void arp_resolve(util::Ipv4Addr next_hop, std::vector<std::uint8_t> packet);
  void send_arp_request(util::Ipv4Addr target);

  sim::EventLoop& loop_;
  std::string name_;
  util::MacAddr mac_;
  util::Rng rng_;
  sim::Port nic_;
  std::optional<Ipv4Config> config_;

  // ARP.
  struct PendingArp {
    std::vector<std::vector<std::uint8_t>> queue;  // Queued IPv4 packets.
    int attempts = 0;
  };
  std::map<util::Ipv4Addr, util::MacAddr> arp_cache_;
  std::map<util::Ipv4Addr, PendingArp> arp_pending_;

  // TCP demux: (local port, remote endpoint) -> connection.
  std::map<std::pair<std::uint16_t, util::Endpoint>,
           std::shared_ptr<TcpConnection>>
      connections_;
  std::map<std::uint16_t, AcceptHandler> listeners_;

  // UDP demux.
  std::map<std::uint16_t, std::weak_ptr<UdpSocket>> udp_sockets_;

  std::uint16_t next_ephemeral_ = 1024;
  std::uint64_t ip_rx_ = 0;
  std::uint64_t ip_tx_ = 0;
};

}  // namespace gq::net
