#include "net/stack.h"

#include "packet/headers.h"
#include "util/log.h"

namespace gq::net {

namespace {
constexpr const char* kLog = "stack";
constexpr int kArpMaxAttempts = 3;
constexpr util::Duration kArpRetryDelay = util::milliseconds(500);
}  // namespace

void UdpSocket::send_to(util::Endpoint dst,
                        std::span<const std::uint8_t> payload) {
  pkt::UdpDatagram dgram;
  dgram.src_port = port_;
  dgram.dst_port = dst.port;
  dgram.payload.assign(payload.begin(), payload.end());
  stack_.send_udp(stack_.addr(), dst.addr, dgram, /*broadcast=*/false);
}

void UdpSocket::send_broadcast(std::uint16_t dst_port,
                               std::span<const std::uint8_t> payload) {
  pkt::UdpDatagram dgram;
  dgram.src_port = port_;
  dgram.dst_port = dst_port;
  dgram.payload.assign(payload.begin(), payload.end());
  stack_.send_udp(stack_.addr(), util::Ipv4Addr(255, 255, 255, 255), dgram,
                  /*broadcast=*/true);
}

void UdpSocket::close() { stack_.remove_udp(port_); }

HostStack::HostStack(sim::EventLoop& loop, std::string name,
                     util::MacAddr mac, std::uint64_t seed)
    : loop_(loop),
      name_(std::move(name)),
      mac_(mac),
      rng_(seed),
      nic_(loop, name_ + ".nic") {
  nic_.set_rx([this](sim::Frame frame) { handle_frame(std::move(frame)); });
}

HostStack::~HostStack() {
  // Callbacks commonly capture shared_ptrs back to their own connection
  // or socket (a server session holding the inmate conn whose on_data
  // holds the session, a UDP echo responder capturing itself). For
  // anything still open when the host dies, that cycle would outlive
  // us — clear the handlers so the cycle breaks and the objects free.
  for (auto& [key, conn] : connections_) {
    conn->on_connected = nullptr;
    conn->on_data = nullptr;
    conn->on_remote_close = nullptr;
    conn->on_closed = nullptr;
  }
  for (auto& [port, weak] : udp_sockets_)
    if (const auto sock = weak.lock()) sock->on_datagram = nullptr;
}

void HostStack::configure(const Ipv4Config& config) {
  config_ = config;
  GQ_DEBUG(kLog, "%s: configured %s gw %s", name_.c_str(),
           config.addr.str().c_str(), config.gateway.str().c_str());
}

void HostStack::deconfigure() {
  config_.reset();
  arp_cache_.clear();
  arp_pending_.clear();
  // Abort every connection: the "machine" lost its address.
  auto conns = connections_;
  for (auto& [key, conn] : conns) conn->abort();
  connections_.clear();
}

std::shared_ptr<TcpConnection> HostStack::connect(util::Endpoint dst) {
  const std::uint16_t port = allocate_port();
  auto conn = std::make_shared<TcpConnection>(
      *this, util::Endpoint{addr(), port}, dst);
  connections_[{port, dst}] = conn;
  conn->start_connect();
  return conn;
}

void HostStack::listen(std::uint16_t port, AcceptHandler handler) {
  listeners_[port] = std::move(handler);
}

void HostStack::close_listener(std::uint16_t port) { listeners_.erase(port); }

std::shared_ptr<UdpSocket> HostStack::udp_open(std::uint16_t port) {
  if (port == 0) port = allocate_port();
  auto sock = std::make_shared<UdpSocket>(*this, port);
  udp_sockets_[port] = sock;
  return sock;
}

std::uint16_t HostStack::allocate_port() {
  for (int guard = 0; guard < 65536; ++guard) {
    const std::uint16_t candidate = next_ephemeral_;
    next_ephemeral_ =
        (next_ephemeral_ >= 65535) ? 1024 : next_ephemeral_ + 1;
    bool used = listeners_.count(candidate) || udp_sockets_.count(candidate);
    if (!used) {
      for (const auto& [key, conn] : connections_) {
        if (key.first == candidate) {
          used = true;
          break;
        }
      }
    }
    if (!used) return candidate;
  }
  return 0;  // Exhausted (practically unreachable).
}

void HostStack::remove_connection(const TcpConnection& conn) {
  connections_.erase({conn.local().port, conn.remote()});
}

void HostStack::remove_udp(std::uint16_t port) { udp_sockets_.erase(port); }

void HostStack::send_tcp(util::Ipv4Addr dst, const pkt::TcpSegment& seg) {
  send_ipv4(dst, pkt::kProtoTcp, pkt::serialize_tcp(addr(), dst, seg));
}

void HostStack::send_udp(util::Ipv4Addr src, util::Ipv4Addr dst,
                         const pkt::UdpDatagram& dgram, bool broadcast) {
  if (broadcast) {
    // Link-local broadcast bypasses routing and ARP entirely.
    pkt::Ipv4Packet ip;
    ip.src = src;
    ip.dst = dst;
    ip.protocol = pkt::kProtoUdp;
    ip.payload = pkt::serialize_udp(src, dst, dgram);
    transmit_to_mac(util::MacAddr::broadcast(), pkt::kEtherTypeIpv4,
                    pkt::serialize_ipv4(ip));
    ++ip_tx_;
    return;
  }
  send_ipv4(dst, pkt::kProtoUdp, pkt::serialize_udp(src, dst, dgram));
}

void HostStack::send_ipv4(util::Ipv4Addr dst, std::uint8_t proto,
                          std::vector<std::uint8_t> payload,
                          std::optional<util::Ipv4Addr> src_override) {
  if (!config_) {
    GQ_DEBUG(kLog, "%s: dropping IP packet, no configuration", name_.c_str());
    return;
  }
  pkt::Ipv4Packet ip;
  ip.src = src_override.value_or(config_->addr);
  ip.dst = dst;
  ip.protocol = proto;
  ip.payload = std::move(payload);
  auto packet = pkt::serialize_ipv4(ip);
  ++ip_tx_;

  const util::Ipv4Addr next_hop =
      config_->subnet.contains(dst) ? dst : config_->gateway;
  if (auto it = arp_cache_.find(next_hop); it != arp_cache_.end()) {
    transmit_to_mac(it->second, pkt::kEtherTypeIpv4, std::move(packet));
    return;
  }
  arp_resolve(next_hop, std::move(packet));
}

void HostStack::arp_resolve(util::Ipv4Addr next_hop,
                            std::vector<std::uint8_t> packet) {
  auto& pending = arp_pending_[next_hop];
  pending.queue.push_back(std::move(packet));
  if (pending.queue.size() > 1) return;  // Request already outstanding.
  pending.attempts = 0;
  send_arp_request(next_hop);
}

void HostStack::send_arp_request(util::Ipv4Addr target) {
  auto it = arp_pending_.find(target);
  if (it == arp_pending_.end()) return;
  if (it->second.attempts++ >= kArpMaxAttempts) {
    GQ_WARN(kLog, "%s: ARP for %s failed, dropping %zu packets",
            name_.c_str(), target.str().c_str(), it->second.queue.size());
    arp_pending_.erase(it);
    return;
  }
  pkt::ArpMessage arp;
  arp.op = pkt::ArpMessage::Op::kRequest;
  arp.sender_mac = mac_;
  arp.sender_ip = addr();
  arp.target_ip = target;
  transmit_to_mac(util::MacAddr::broadcast(), pkt::kEtherTypeArp,
                  pkt::serialize_arp(arp));
  loop_.schedule_in(kArpRetryDelay, [this, target] {
    if (arp_pending_.count(target)) send_arp_request(target);
  });
}

void HostStack::transmit_to_mac(util::MacAddr dst_mac, std::uint16_t ethertype,
                                std::vector<std::uint8_t> payload) {
  pkt::EthHeader eth;
  eth.dst = dst_mac;
  eth.src = mac_;
  eth.ethertype = ethertype;
  nic_.transmit(sim::Frame{pkt::serialize_eth(eth, payload)});
}

void HostStack::handle_frame(sim::Frame frame) {
  auto decoded = pkt::decode_frame(frame.bytes);
  if (!decoded) return;
  if (decoded->arp) {
    handle_arp(*decoded->arp);
    return;
  }
  if (decoded->ip) handle_ipv4(*decoded);
}

void HostStack::handle_arp(const pkt::ArpMessage& arp) {
  if (!config_) return;
  // Learn the sender mapping opportunistically.
  if (!arp.sender_ip.is_unspecified())
    arp_cache_[arp.sender_ip] = arp.sender_mac;

  // Flush any packets that were waiting on this resolution.
  if (auto it = arp_pending_.find(arp.sender_ip); it != arp_pending_.end()) {
    auto queue = std::move(it->second.queue);
    arp_pending_.erase(it);
    for (auto& packet : queue)
      transmit_to_mac(arp.sender_mac, pkt::kEtherTypeIpv4, std::move(packet));
  }

  if (arp.op == pkt::ArpMessage::Op::kRequest &&
      arp.target_ip == config_->addr) {
    pkt::ArpMessage reply;
    reply.op = pkt::ArpMessage::Op::kReply;
    reply.sender_mac = mac_;
    reply.sender_ip = config_->addr;
    reply.target_mac = arp.sender_mac;
    reply.target_ip = arp.sender_ip;
    pkt::EthHeader eth;
    eth.dst = arp.sender_mac;
    eth.src = mac_;
    eth.ethertype = pkt::kEtherTypeArp;
    nic_.transmit(sim::Frame{pkt::serialize_eth(eth, pkt::serialize_arp(reply))});
  }
}

void HostStack::handle_ipv4(const pkt::DecodedFrame& frame) {
  const auto& ip = *frame.ip;
  const bool to_me =
      config_ && (ip.dst == config_->addr || ip.dst.is_broadcast());
  const bool broadcast_while_unconfigured =
      !config_ && ip.dst.is_broadcast();
  if (!to_me && !broadcast_while_unconfigured) return;
  ++ip_rx_;

  if (frame.tcp) {
    handle_tcp_segment(ip.src, *frame.tcp);
  } else if (frame.udp) {
    if (auto it = udp_sockets_.find(frame.udp->dst_port);
        it != udp_sockets_.end()) {
      if (auto sock = it->second.lock()) {
        if (sock->on_datagram)
          sock->on_datagram(util::Endpoint{ip.src, frame.udp->src_port},
                            frame.udp->payload);
      } else {
        udp_sockets_.erase(it);
      }
    }
  } else if (frame.icmp && frame.icmp->type == 8 && config_) {
    // Echo request: reply in kind.
    pkt::IcmpMessage reply = *frame.icmp;
    reply.type = 0;
    send_ipv4(ip.src, pkt::kProtoIcmp, pkt::serialize_icmp(reply));
  }
}

void HostStack::handle_tcp_segment(util::Ipv4Addr src,
                                   const pkt::TcpSegment& seg) {
  const util::Endpoint remote{src, seg.src_port};
  if (auto it = connections_.find({seg.dst_port, remote});
      it != connections_.end()) {
    auto conn = it->second;  // Keep alive during input().
    conn->input(seg);
    return;
  }
  if (seg.syn() && !seg.has_ack()) {
    if (auto it = listeners_.find(seg.dst_port); it != listeners_.end()) {
      auto conn = std::make_shared<TcpConnection>(
          *this, util::Endpoint{addr(), seg.dst_port}, remote);
      connections_[{seg.dst_port, remote}] = conn;
      // Enter SYN_RCVD before handing the connection to the application:
      // servers commonly send a greeting straight from the accept
      // callback, and send() buffers in SYN_RCVD until establishment.
      conn->start_accept(seg);
      // Copy the handler first: the callback may close_listener() on its
      // own port (single-use listeners), which would destroy the function
      // object we are executing.
      auto handler = it->second;
      handler(conn);
      return;
    }
  }
  if (!seg.rst()) {
    // No listener / unknown connection: refuse.
    pkt::TcpSegment rst;
    rst.src_port = seg.dst_port;
    rst.dst_port = seg.src_port;
    rst.flags = pkt::kTcpRst | pkt::kTcpAck;
    rst.seq = seg.has_ack() ? seg.ack : 0;
    rst.ack = seg.seq + (seg.syn() ? 1 : 0) +
              static_cast<std::uint32_t>(seg.payload.size());
    send_tcp(src, rst);
  }
}

}  // namespace gq::net
