// Simulator-hosted TCP. Every application in the farm — containment
// server, sink servers, C&C servers, malware behaviours — talks through
// TcpConnection. The implementation is a deliberately compact but
// honest TCP: 3-way handshake, cumulative ACKs, out-of-order reassembly,
// retransmission with exponential backoff, FIN/RST teardown. It must be
// real TCP at the segment level because GQ's gateway rewrites sequence
// numbers mid-stream (shim injection/stripping, flow splicing) and both
// endpoints have to keep working through that surgery.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "netsim/event_loop.h"
#include "packet/headers.h"
#include "util/addr.h"

namespace gq::net {

class HostStack;

/// TCP connection states (RFC 793 subset; no TIME_WAIT — the simulator
/// has no wandering duplicates and ephemeral ports are never reused).
enum class TcpState {
  kClosed,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kLastAck,
  kClosing,
};

const char* tcp_state_name(TcpState s);

/// One endpoint of a TCP connection. Created via HostStack::connect() or
/// delivered by a listener's accept callback. All callbacks fire on the
/// event loop; the object stays alive while the stack tracks it or any
/// callback closure holds the shared_ptr.
class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  /// Application event hooks. Set them before data can arrive (i.e., in
  /// the accept callback, or immediately after connect()).
  std::function<void()> on_connected;
  std::function<void(std::span<const std::uint8_t>)> on_data;
  std::function<void()> on_remote_close;  ///< Peer sent FIN.
  std::function<void()> on_closed;        ///< Connection fully terminated.
  std::function<void()> on_reset;         ///< Terminated by RST or timeout.

  TcpConnection(HostStack& stack, util::Endpoint local, util::Endpoint remote);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Queue bytes for transmission; segmentation and pacing are handled
  /// internally. Ignored (with a warning) once closing.
  void send(std::span<const std::uint8_t> data);
  void send(std::string_view text);

  /// Graceful close: FIN after all queued data is sent.
  void close();

  /// Hard close: RST immediately.
  void abort();

  [[nodiscard]] TcpState state() const { return state_; }
  [[nodiscard]] util::Endpoint local() const { return local_; }
  [[nodiscard]] util::Endpoint remote() const { return remote_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const {
    return bytes_received_;
  }

  // --- Stack-internal interface (not for applications) ---

  /// Start an active open (SYN).
  void start_connect();

  /// Start a passive open in response to `syn`.
  void start_accept(const pkt::TcpSegment& syn);

  /// Process one inbound segment addressed to this connection.
  void input(const pkt::TcpSegment& seg);

 private:
  static constexpr std::size_t kMss = 1460;
  static constexpr std::size_t kSendWindow = 64 * 1024;
  static constexpr int kMaxRetries = 6;

  void emit(std::uint8_t flags, std::uint32_t seq,
            std::span<const std::uint8_t> payload);
  void send_ack();
  void pump_output();
  void handle_established_data(const pkt::TcpSegment& seg);
  void process_ack(std::uint32_t ack);
  void deliver_in_order();
  void maybe_send_fin();
  void arm_retransmit();
  void cancel_retransmit();
  void on_retransmit_timeout();
  void enter_closed(bool reset);

  HostStack& stack_;
  util::Endpoint local_;
  util::Endpoint remote_;
  TcpState state_ = TcpState::kClosed;

  // Send side.
  std::uint32_t iss_ = 0;       // Initial send sequence.
  std::uint32_t snd_una_ = 0;   // Oldest unacknowledged.
  std::uint32_t snd_nxt_ = 0;   // Next to send.
  std::vector<std::uint8_t> send_buf_;  // Unacked + unsent bytes.
  std::size_t unsent_offset_ = 0;       // send_buf_[unsent_offset_..) unsent.
  bool fin_pending_ = false;
  bool fin_sent_ = false;
  std::uint32_t fin_seq_ = 0;

  // Receive side.
  std::uint32_t rcv_nxt_ = 0;
  std::map<std::uint32_t, std::vector<std::uint8_t>> out_of_order_;
  bool fin_received_ = false;

  // Retransmission.
  sim::EventId rtx_timer_ = 0;
  bool rtx_armed_ = false;
  int retries_ = 0;
  util::Duration rto_ = util::milliseconds(200);

  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace gq::net
