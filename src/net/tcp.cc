#include "net/tcp.h"

#include <algorithm>

#include "net/stack.h"
#include "util/log.h"

namespace gq::net {

namespace {
constexpr const char* kLog = "tcp";

// Sequence-number comparison with wraparound (RFC 1982 style).
bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
bool seq_le(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
}  // namespace

const char* tcp_state_name(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynReceived: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kClosing: return "CLOSING";
  }
  return "?";
}

TcpConnection::TcpConnection(HostStack& stack, util::Endpoint local,
                             util::Endpoint remote)
    : stack_(stack), local_(local), remote_(remote) {}

TcpConnection::~TcpConnection() { cancel_retransmit(); }

void TcpConnection::start_connect() {
  iss_ = stack_.random_isn();
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  state_ = TcpState::kSynSent;
  emit(pkt::kTcpSyn, iss_, {});
  arm_retransmit();
}

void TcpConnection::start_accept(const pkt::TcpSegment& syn) {
  iss_ = stack_.random_isn();
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  rcv_nxt_ = syn.seq + 1;
  state_ = TcpState::kSynReceived;
  emit(pkt::kTcpSyn | pkt::kTcpAck, iss_, {});
  arm_retransmit();
}

void TcpConnection::send(std::span<const std::uint8_t> data) {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kSynSent && state_ != TcpState::kSynReceived) {
    GQ_WARN(kLog, "%s: send() in state %s ignored", stack_.name().c_str(),
            tcp_state_name(state_));
    return;
  }
  if (fin_pending_ || fin_sent_) {
    GQ_WARN(kLog, "%s: send() after close() ignored", stack_.name().c_str());
    return;
  }
  send_buf_.insert(send_buf_.end(), data.begin(), data.end());
  pump_output();
}

void TcpConnection::send(std::string_view text) {
  send(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

void TcpConnection::close() {
  switch (state_) {
    case TcpState::kEstablished:
      state_ = TcpState::kFinWait1;
      break;
    case TcpState::kCloseWait:
      state_ = TcpState::kLastAck;
      break;
    case TcpState::kSynSent:
    case TcpState::kSynReceived:
      enter_closed(false);
      return;
    default:
      return;  // Already closing or closed.
  }
  fin_pending_ = true;
  maybe_send_fin();
}

void TcpConnection::abort() {
  if (state_ == TcpState::kClosed) return;
  emit(pkt::kTcpRst | pkt::kTcpAck, snd_nxt_, {});
  enter_closed(true);
}

void TcpConnection::emit(std::uint8_t flags, std::uint32_t seq,
                         std::span<const std::uint8_t> payload) {
  pkt::TcpSegment seg;
  seg.src_port = local_.port;
  seg.dst_port = remote_.port;
  seg.seq = seq;
  seg.flags = flags;
  if (flags & pkt::kTcpAck) seg.ack = rcv_nxt_;
  seg.payload.assign(payload.begin(), payload.end());
  stack_.send_tcp(remote_.addr, seg);
}

void TcpConnection::send_ack() { emit(pkt::kTcpAck, snd_nxt_, {}); }

void TcpConnection::pump_output() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kFinWait1 && state_ != TcpState::kLastAck)
    return;
  // Bytes in flight = snd_nxt - snd_una (minus the FIN if counted).
  while (unsent_offset_ < send_buf_.size()) {
    const std::uint32_t in_flight = snd_nxt_ - snd_una_;
    if (in_flight >= kSendWindow) break;
    const std::size_t chunk =
        std::min({send_buf_.size() - unsent_offset_, kMss,
                  kSendWindow - in_flight});
    std::span<const std::uint8_t> payload(send_buf_.data() + unsent_offset_,
                                          chunk);
    emit(pkt::kTcpAck | pkt::kTcpPsh, snd_nxt_, payload);
    snd_nxt_ += static_cast<std::uint32_t>(chunk);
    unsent_offset_ += chunk;
    bytes_sent_ += chunk;
  }
  if (snd_una_ != snd_nxt_) arm_retransmit();
  maybe_send_fin();
}

void TcpConnection::maybe_send_fin() {
  if (!fin_pending_ || fin_sent_) return;
  if (unsent_offset_ < send_buf_.size()) return;  // Data still queued.
  fin_seq_ = snd_nxt_;
  emit(pkt::kTcpFin | pkt::kTcpAck, snd_nxt_, {});
  snd_nxt_ += 1;
  fin_sent_ = true;
  arm_retransmit();
}

void TcpConnection::process_ack(std::uint32_t ack) {
  if (seq_le(ack, snd_una_)) return;  // Duplicate/old ACK.
  if (seq_lt(snd_nxt_, ack)) return;  // Acks data we never sent; ignore.
  std::uint32_t acked = ack - snd_una_;
  // The SYN and FIN occupy sequence space but not the send buffer.
  std::uint32_t buffer_acked = acked;
  if (state_ == TcpState::kSynSent || state_ == TcpState::kSynReceived)
    buffer_acked = 0;  // Handshake ACK handled by caller.
  if (fin_sent_ && seq_lt(fin_seq_, ack) && buffer_acked > 0)
    buffer_acked -= 1;
  buffer_acked = std::min<std::uint32_t>(
      buffer_acked, static_cast<std::uint32_t>(unsent_offset_));
  if (buffer_acked > 0) {
    send_buf_.erase(send_buf_.begin(), send_buf_.begin() + buffer_acked);
    unsent_offset_ -= buffer_acked;
  }
  snd_una_ = ack;
  retries_ = 0;
  rto_ = util::milliseconds(200);
  if (snd_una_ == snd_nxt_)
    cancel_retransmit();
  else
    arm_retransmit();
}

void TcpConnection::input(const pkt::TcpSegment& seg) {
  if (seg.rst()) {
    if (state_ != TcpState::kClosed) {
      GQ_DEBUG(kLog, "%s: RST from %s", stack_.name().c_str(),
               remote_.str().c_str());
      enter_closed(true);
    }
    return;
  }

  switch (state_) {
    case TcpState::kSynSent: {
      if (seg.syn() && seg.has_ack() && seg.ack == iss_ + 1) {
        rcv_nxt_ = seg.seq + 1;
        process_ack(seg.ack);
        state_ = TcpState::kEstablished;
        send_ack();
        if (on_connected) on_connected();
        pump_output();
      }
      return;
    }
    case TcpState::kSynReceived: {
      if (seg.has_ack() && seg.ack == iss_ + 1) {
        process_ack(seg.ack);
        state_ = TcpState::kEstablished;
        if (on_connected) on_connected();
        // Fall through to handle any data carried on the ACK.
        handle_established_data(seg);
        pump_output();
      } else if (seg.syn()) {
        // Retransmitted SYN: repeat our SYN-ACK.
        emit(pkt::kTcpSyn | pkt::kTcpAck, iss_, {});
      }
      return;
    }
    case TcpState::kClosed:
      return;
    default:
      break;
  }

  if (seg.syn()) {
    // Spurious SYN on an established connection: retransmitted handshake;
    // re-ACK our current position.
    send_ack();
    return;
  }

  if (seg.has_ack()) process_ack(seg.ack);

  handle_established_data(seg);

  // FIN processing (only once all preceding data has been received).
  if (seg.fin() && !fin_received_ && seg.seq == rcv_nxt_) {
    fin_received_ = true;
    rcv_nxt_ += 1;
    send_ack();
    if (on_remote_close) on_remote_close();
    switch (state_) {
      case TcpState::kEstablished:
        state_ = TcpState::kCloseWait;
        break;
      case TcpState::kFinWait1:
        state_ = TcpState::kClosing;
        break;
      case TcpState::kFinWait2:
        enter_closed(false);
        return;
      default:
        break;
    }
  } else if (seg.fin() && fin_received_) {
    send_ack();  // Retransmitted FIN.
  }

  // Progress our own teardown once our FIN is acknowledged.
  if (fin_sent_ && seq_lt(fin_seq_, snd_una_)) {
    switch (state_) {
      case TcpState::kFinWait1:
        state_ = TcpState::kFinWait2;
        break;
      case TcpState::kClosing:
      case TcpState::kLastAck:
        enter_closed(false);
        return;
      default:
        break;
    }
  }
  pump_output();
}

void TcpConnection::handle_established_data(const pkt::TcpSegment& seg) {
  if (seg.payload.empty()) return;
  std::uint32_t seq = seg.seq;
  std::span<const std::uint8_t> payload(seg.payload);

  if (seq_lt(rcv_nxt_, seq)) {
    // Future data: stash for reassembly.
    out_of_order_[seq] =
        std::vector<std::uint8_t>(payload.begin(), payload.end());
    send_ack();  // Duplicate ACK signals the gap.
    return;
  }
  // Trim any already-received prefix.
  const std::uint32_t overlap = rcv_nxt_ - seq;
  if (overlap >= payload.size()) {
    send_ack();  // Entirely duplicate.
    return;
  }
  payload = payload.subspan(overlap);
  rcv_nxt_ += static_cast<std::uint32_t>(payload.size());
  bytes_received_ += payload.size();
  // Deliver, keeping `this` alive through the callback.
  auto self = shared_from_this();
  if (on_data) on_data(payload);
  deliver_in_order();
  send_ack();
}

void TcpConnection::deliver_in_order() {
  auto self = shared_from_this();
  while (!out_of_order_.empty()) {
    auto it = out_of_order_.begin();
    if (seq_lt(rcv_nxt_, it->first)) break;  // Still a gap.
    std::vector<std::uint8_t> data = std::move(it->second);
    const std::uint32_t seq = it->first;
    out_of_order_.erase(it);
    const std::uint32_t overlap = rcv_nxt_ - seq;
    if (overlap >= data.size()) continue;
    std::span<const std::uint8_t> payload(data.data() + overlap,
                                          data.size() - overlap);
    rcv_nxt_ += static_cast<std::uint32_t>(payload.size());
    bytes_received_ += payload.size();
    if (on_data) on_data(payload);
  }
}

void TcpConnection::arm_retransmit() {
  if (rtx_armed_) return;
  rtx_armed_ = true;
  auto self = shared_from_this();
  rtx_timer_ = stack_.loop().schedule_in(rto_, [self] {
    self->rtx_armed_ = false;
    self->on_retransmit_timeout();
  });
}

void TcpConnection::cancel_retransmit() {
  if (!rtx_armed_) return;
  stack_.loop().cancel(rtx_timer_);
  rtx_armed_ = false;
}

void TcpConnection::on_retransmit_timeout() {
  if (state_ == TcpState::kClosed) return;
  if (snd_una_ == snd_nxt_) return;  // Everything acked meanwhile.
  if (++retries_ > kMaxRetries) {
    GQ_WARN(kLog, "%s: %s -> %s retransmit limit, resetting",
            stack_.name().c_str(), local_.str().c_str(),
            remote_.str().c_str());
    abort();
    return;
  }
  rto_ = rto_ * 2;

  // Retransmit from snd_una_.
  if (state_ == TcpState::kSynSent) {
    emit(pkt::kTcpSyn, iss_, {});
  } else if (state_ == TcpState::kSynReceived) {
    emit(pkt::kTcpSyn | pkt::kTcpAck, iss_, {});
  } else {
    const std::uint32_t outstanding_data =
        static_cast<std::uint32_t>(unsent_offset_);
    if (outstanding_data > 0) {
      const std::size_t chunk =
          std::min<std::size_t>(outstanding_data, kMss);
      emit(pkt::kTcpAck | pkt::kTcpPsh, snd_una_,
           std::span<const std::uint8_t>(send_buf_.data(), chunk));
    } else if (fin_sent_) {
      emit(pkt::kTcpFin | pkt::kTcpAck, fin_seq_, {});
    }
  }
  arm_retransmit();
}

void TcpConnection::enter_closed(bool reset) {
  if (state_ == TcpState::kClosed) return;
  state_ = TcpState::kClosed;
  cancel_retransmit();
  auto self = shared_from_this();
  stack_.remove_connection(*this);
  if (reset && on_reset) on_reset();
  if (on_closed) on_closed();
}

}  // namespace gq::net
