// Self-contained MD5 (RFC 1321). GQ's activity reports identify infection
// payloads by MD5, matching the hashes shown in the paper's Figure 7
// report excerpt. Not used for anything security-critical here.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace gq::util {

/// Streaming MD5 context.
class Md5 {
 public:
  Md5();

  void update(std::span<const std::uint8_t> data);
  void update(std::string_view text);

  /// Finalize and return the 16-byte digest. The context must not be
  /// updated afterwards.
  std::array<std::uint8_t, 16> digest();

  /// One-shot convenience: lowercase hex digest of `data`.
  static std::string hex_digest(std::string_view data);
  static std::string hex_digest(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[4];
  std::uint64_t total_len_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
  bool finalized_ = false;
};

}  // namespace gq::util
