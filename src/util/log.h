// Leveled, component-tagged logging. The farm stamps every record with the
// simulated time, which makes interleaved gateway/containment logs
// directly comparable to packet traces. Tests can install a capture sink.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "util/strings.h"
#include "util/time.h"

namespace gq::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide logging configuration.
class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component,
                                  std::string_view message)>;

  /// Minimum level that is emitted; defaults to kWarn so tests stay quiet.
  static void set_level(LogLevel level);
  static LogLevel level();

  /// Replace the output sink (default: stderr). Pass nullptr to restore.
  static void set_sink(Sink sink);

  /// The clock used for timestamps; the farm points this at the event loop.
  static void set_clock(std::function<TimePoint()> clock);

  static void write(LogLevel level, std::string_view component,
                    std::string message);
};

#define GQ_LOG_AT(lvl, component, ...)                            \
  do {                                                            \
    if (static_cast<int>(lvl) >=                                  \
        static_cast<int>(::gq::util::Log::level())) {             \
      ::gq::util::Log::write(lvl, component,                      \
                             ::gq::util::format(__VA_ARGS__));    \
    }                                                             \
  } while (0)

#define GQ_DEBUG(component, ...) \
  GQ_LOG_AT(::gq::util::LogLevel::kDebug, component, __VA_ARGS__)
#define GQ_INFO(component, ...) \
  GQ_LOG_AT(::gq::util::LogLevel::kInfo, component, __VA_ARGS__)
#define GQ_WARN(component, ...) \
  GQ_LOG_AT(::gq::util::LogLevel::kWarn, component, __VA_ARGS__)
#define GQ_ERROR(component, ...) \
  GQ_LOG_AT(::gq::util::LogLevel::kError, component, __VA_ARGS__)

}  // namespace gq::util
