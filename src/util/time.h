// Simulated-time primitives. The whole farm runs on a virtual clock owned
// by the event loop; Duration and TimePoint are microsecond counts, with
// named constructors so experiment code can say `minutes(30)` and mean it.
#pragma once

#include <cstdint>
#include <string>

namespace gq::util {

/// A span of simulated time, in microseconds.
struct Duration {
  std::int64_t usec = 0;

  [[nodiscard]] constexpr double seconds_f() const {
    return static_cast<double>(usec) / 1e6;
  }

  friend constexpr auto operator<=>(Duration, Duration) = default;
  friend constexpr Duration operator+(Duration a, Duration b) {
    return {a.usec + b.usec};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return {a.usec - b.usec};
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return {a.usec * k};
  }
  friend constexpr Duration operator/(Duration a, std::int64_t k) {
    return {a.usec / k};
  }
};

constexpr Duration microseconds(std::int64_t n) { return {n}; }
constexpr Duration milliseconds(std::int64_t n) { return {n * 1000}; }
constexpr Duration seconds(std::int64_t n) { return {n * 1'000'000}; }
constexpr Duration minutes(std::int64_t n) { return {n * 60'000'000}; }
constexpr Duration hours(std::int64_t n) { return {n * 3'600'000'000LL}; }

/// An instant on the simulated clock, microseconds since simulation start.
struct TimePoint {
  std::int64_t usec = 0;

  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;
  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return {t.usec + d.usec};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return {a.usec - b.usec};
  }
};

/// Render a duration compactly for reports, e.g. "29.0s", "3.2min".
std::string format_duration(Duration d);

}  // namespace gq::util
