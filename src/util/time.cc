#include "util/time.h"

#include <cstdio>

namespace gq::util {

std::string format_duration(Duration d) {
  char buf[32];
  const double s = d.seconds_f();
  if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", s * 1000.0);
  } else if (s < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", s);
  } else if (s < 7200.0) {
    std::snprintf(buf, sizeof(buf), "%.1fmin", s / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fh", s / 3600.0);
  }
  return buf;
}

}  // namespace gq::util
