#include "util/json.h"

#include <cctype>
#include <cstdio>
#include <cstring>

namespace gq::util {

std::string json_quote(std::string_view text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;  // Value completing a key: no comma, the colon is out.
  }
  if (!has_member_.empty()) {
    if (has_member_.back()) out_ += ',';
    has_member_.back() = true;
  }
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
  has_member_.push_back(false);
}

void JsonWriter::end_object() {
  if (!has_member_.empty()) has_member_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  comma();
  out_ += '[';
  has_member_.push_back(false);
}

void JsonWriter::end_array() {
  if (!has_member_.empty()) has_member_.pop_back();
  out_ += ']';
}

void JsonWriter::key(std::string_view name) {
  comma();
  out_ += json_quote(name);
  out_ += ':';
  after_key_ = true;
}

void JsonWriter::value(std::string_view text) {
  comma();
  out_ += json_quote(text);
}

void JsonWriter::value(double number) {
  comma();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", number);
  out_ += buf;
}

void JsonWriter::value(std::uint64_t number) {
  comma();
  out_ += std::to_string(number);
}

void JsonWriter::value(std::int64_t number) {
  comma();
  out_ += std::to_string(number);
}

void JsonWriter::value(bool flag) {
  comma();
  out_ += flag ? "true" : "false";
}

// --- Validation -----------------------------------------------------------

namespace {

struct Checker {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }
  bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool string() {
    if (!eat('"')) return false;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos >= text.size()) return false;
        const char esc = text[pos++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i)
            if (pos >= text.size() ||
                !std::isxdigit(static_cast<unsigned char>(text[pos++])))
              return false;
        } else if (!std::strchr("\"\\/bfnrt", esc)) {
          return false;
        }
      }
    }
    return false;  // Unterminated.
  }

  bool number() {
    const std::size_t start = pos;
    eat('-');
    if (!eat('0')) {
      if (pos >= text.size() ||
          !std::isdigit(static_cast<unsigned char>(text[pos])))
        return false;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    if (eat('.')) {
      if (pos >= text.size() ||
          !std::isdigit(static_cast<unsigned char>(text[pos])))
        return false;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() ||
          !std::isdigit(static_cast<unsigned char>(text[pos])))
        return false;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    return pos > start;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    bool ok = false;
    if (pos >= text.size()) {
      ok = false;
    } else if (text[pos] == '{') {
      ++pos;
      skip_ws();
      if (eat('}')) {
        ok = true;
      } else {
        ok = true;
        while (ok) {
          skip_ws();
          ok = string();
          if (!ok) break;
          skip_ws();
          ok = eat(':') && value();
          if (!ok) break;
          skip_ws();
          if (eat('}')) break;
          ok = eat(',');
        }
      }
    } else if (text[pos] == '[') {
      ++pos;
      skip_ws();
      if (eat(']')) {
        ok = true;
      } else {
        ok = true;
        while (ok) {
          ok = value();
          if (!ok) break;
          skip_ws();
          if (eat(']')) break;
          ok = eat(',');
        }
      }
    } else if (text[pos] == '"') {
      ok = string();
    } else if (text[pos] == 't') {
      ok = literal("true");
    } else if (text[pos] == 'f') {
      ok = literal("false");
    } else if (text[pos] == 'n') {
      ok = literal("null");
    } else {
      ok = number();
    }
    --depth;
    return ok;
  }
};

}  // namespace

bool json_valid(std::string_view text) {
  Checker checker{text};
  if (!checker.value()) return false;
  checker.skip_ws();
  return checker.pos == text.size();
}

}  // namespace gq::util
