// Shell-style glob matching ('*' and '?'), used for infection batch
// specifications like "rustock.100921.*.exe" (paper Figure 6) and for
// trigger flow patterns like "*:25/tcp".
#pragma once

#include <string_view>

namespace gq::util {

/// Returns true if `text` matches `pattern`, where '*' matches any run of
/// characters (including empty) and '?' matches exactly one character.
/// Matching is case-sensitive; patterns with no metacharacters degrade to
/// equality.
bool glob_match(std::string_view pattern, std::string_view text);

}  // namespace gq::util
