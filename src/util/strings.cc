#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace gq::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with_icase(std::string_view text, std::string_view prefix) {
  if (text.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i])))
      return false;
  }
  return true;
}

std::optional<std::int64_t> parse_int(std::string_view text) {
  text = trim(text);
  std::int64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size())
    return std::nullopt;
  return value;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

std::string hex(const std::uint8_t* data, std::size_t len) {
  static const char digits[] = "0123456789abcdef";
  std::string out;
  out.reserve(len * 2);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(digits[data[i] >> 4]);
    out.push_back(digits[data[i] & 0xF]);
  }
  return out;
}

}  // namespace gq::util
