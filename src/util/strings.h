// Small string utilities shared across modules: splitting, trimming,
// case folding, prefix tests, and printf-style formatting into std::string.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gq::util {

/// Split `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Split on any run of whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view text);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

bool starts_with_icase(std::string_view text, std::string_view prefix);

/// Parse a decimal integer; nullopt if malformed or out of range.
std::optional<std::int64_t> parse_int(std::string_view text);

/// printf into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Hex dump of bytes, lowercase, no separators (used for hashes).
std::string hex(const std::uint8_t* data, std::size_t len);

}  // namespace gq::util
