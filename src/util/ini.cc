#include "util/ini.h"

#include "util/strings.h"

namespace gq::util {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  return to_lower(a) == to_lower(b);
}

}  // namespace

std::optional<std::string> IniSection::get(std::string_view key) const {
  for (const auto& [k, v] : entries)
    if (iequals(k, key)) return v;
  return std::nullopt;
}

std::vector<std::string> IniSection::get_all(std::string_view key) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : entries)
    if (iequals(k, key)) out.push_back(v);
  return out;
}

IniFile IniFile::parse(std::string_view text) {
  IniFile file;
  IniSection current;  // Unnamed leading section.
  bool current_has_content = false;
  std::size_t line_no = 0;

  auto flush = [&] {
    if (current_has_content || !current.name.empty())
      file.sections.push_back(std::move(current));
    current = IniSection{};
    current_has_content = false;
  };

  for (const auto& raw_line : split(text, '\n')) {
    ++line_no;
    std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']')
        throw IniError(line_no, "unterminated section header");
      flush();
      current.name = std::string(trim(line.substr(1, line.size() - 2)));
      if (current.name.empty())
        throw IniError(line_no, "empty section name");
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string_view::npos)
      throw IniError(line_no, "expected 'key = value'");
    std::string key(trim(line.substr(0, eq)));
    std::string value(trim(line.substr(eq + 1)));
    if (key.empty()) throw IniError(line_no, "empty key");
    current.entries.emplace_back(std::move(key), std::move(value));
    current_has_content = true;
  }
  flush();
  return file;
}

std::vector<const IniSection*> IniFile::find(std::string_view name) const {
  std::vector<const IniSection*> out;
  for (const auto& s : sections)
    if (iequals(s.name, name)) out.push_back(&s);
  return out;
}

}  // namespace gq::util
