#include "util/log.h"

#include <cstdio>
#include <mutex>

namespace gq::util {

namespace {

struct LogState {
  LogLevel level = LogLevel::kWarn;
  Log::Sink sink;
  std::function<TimePoint()> clock;
  std::mutex mutex;
};

LogState& state() {
  static LogState s;
  return s;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) { state().level = level; }

LogLevel Log::level() { return state().level; }

void Log::set_sink(Sink sink) { state().sink = std::move(sink); }

void Log::set_clock(std::function<TimePoint()> clock) {
  state().clock = std::move(clock);
}

void Log::write(LogLevel level, std::string_view component,
                std::string message) {
  auto& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.sink) {
    s.sink(level, component, message);
    return;
  }
  double t = 0.0;
  if (s.clock) t = static_cast<double>(s.clock().usec) / 1e6;
  std::fprintf(stderr, "[%10.6f] %-5s %.*s: %s\n", t, level_name(level),
               static_cast<int>(component.size()), component.data(),
               message.c_str());
}

}  // namespace gq::util
