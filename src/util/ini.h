// INI-style configuration parser for the containment server's config file
// format (paper Figure 6): "[Section Name]" headers followed by
// "Key = Value" lines, '#' or ';' comments, blank lines ignored.
// Sections may repeat and key order is preserved — triggers and VLAN
// bindings are order-sensitive.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gq::util {

/// Parse error with line number context.
class IniError : public std::runtime_error {
 public:
  IniError(std::size_t line, const std::string& what)
      : std::runtime_error("ini line " + std::to_string(line) + ": " + what),
        line_(line) {}
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// One "[...]" section with its ordered key/value pairs.
struct IniSection {
  std::string name;
  std::vector<std::pair<std::string, std::string>> entries;

  /// First value for `key` (case-insensitive), if present.
  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;
  /// All values for `key` (case-insensitive), in file order.
  [[nodiscard]] std::vector<std::string> get_all(std::string_view key) const;
};

/// A parsed INI document: ordered list of sections. Keys appearing before
/// any section header go into an unnamed leading section.
struct IniFile {
  std::vector<IniSection> sections;

  /// Parse from text; throws IniError on malformed lines.
  static IniFile parse(std::string_view text);

  /// All sections whose name matches exactly (case-insensitive).
  [[nodiscard]] std::vector<const IniSection*> find(
      std::string_view name) const;
};

}  // namespace gq::util
