// Rate-measurement and rate-limiting primitives used by the gateway's
// safety filter (connection-rate caps, §5.1) and the LIMIT containment
// verdict (per-flow throughput caps, §5.4).
#pragma once

#include <cstdint>
#include <deque>

#include "util/time.h"

namespace gq::util {

/// Classic token bucket: `rate` tokens per second with burst capacity
/// `burst`. Used for byte- and packet-level throttling of LIMITed flows.
class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

  /// Try to take `amount` tokens at simulated time `now`. Returns true
  /// (and consumes) if enough tokens are available.
  bool try_consume(TimePoint now, double amount);

  /// Tokens currently available (after refill to `now`).
  double available(TimePoint now);

  [[nodiscard]] double rate() const { return rate_; }

 private:
  void refill(TimePoint now);

  double rate_;
  double burst_;
  double tokens_;
  TimePoint last_{};
};

/// Counts events inside a sliding window of simulated time; answers
/// "how many connections did this inmate open in the last N seconds?".
/// Old events are evicted lazily on each query/insert.
class SlidingWindowCounter {
 public:
  explicit SlidingWindowCounter(Duration window) : window_(window) {}

  void record(TimePoint now) {
    evict(now);
    events_.push_back(now);
  }

  /// Number of events within the window ending at `now`.
  std::size_t count(TimePoint now) {
    evict(now);
    return events_.size();
  }

  [[nodiscard]] Duration window() const { return window_; }

 private:
  void evict(TimePoint now) {
    while (!events_.empty() && now - events_.front() > window_)
      events_.pop_front();
  }

  Duration window_;
  std::deque<TimePoint> events_;
};

}  // namespace gq::util
