// Network address value types: IPv4 addresses, IPv4 prefixes, MAC
// addresses, and transport endpoints. All are cheap value types with
// total ordering so they can key maps throughout the gateway.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace gq::util {

/// An IPv4 address held in host byte order; serialization to wire format
/// happens in the packet layer.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parse dotted-quad notation; returns nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool is_unspecified() const { return value_ == 0; }
  [[nodiscard]] constexpr bool is_broadcast() const {
    return value_ == 0xFFFFFFFFu;
  }
  /// True for RFC 1918 private space (10/8, 172.16/12, 192.168/16).
  [[nodiscard]] bool is_private() const;

  [[nodiscard]] std::string str() const;

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t value_ = 0;
};

/// An IPv4 prefix (address + mask length), e.g. a subfarm's /24.
class Ipv4Net {
 public:
  constexpr Ipv4Net() = default;
  constexpr Ipv4Net(Ipv4Addr base, int prefix_len)
      : base_(Ipv4Addr(base.value() & mask_for(prefix_len))),
        prefix_len_(prefix_len) {}

  /// Parse "a.b.c.d/len"; returns nullopt on malformed input.
  static std::optional<Ipv4Net> parse(std::string_view text);

  [[nodiscard]] constexpr Ipv4Addr base() const { return base_; }
  [[nodiscard]] constexpr int prefix_len() const { return prefix_len_; }
  [[nodiscard]] constexpr std::uint32_t mask() const {
    return mask_for(prefix_len_);
  }
  [[nodiscard]] constexpr bool contains(Ipv4Addr a) const {
    return (a.value() & mask()) == base_.value();
  }
  /// Number of host addresses in the prefix (including network/broadcast).
  [[nodiscard]] constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - prefix_len_);
  }
  /// The `i`-th address inside the prefix.
  [[nodiscard]] constexpr Ipv4Addr host(std::uint32_t i) const {
    return Ipv4Addr(base_.value() + i);
  }

  [[nodiscard]] std::string str() const;

  friend constexpr auto operator<=>(const Ipv4Net&, const Ipv4Net&) = default;

 private:
  static constexpr std::uint32_t mask_for(int len) {
    return len == 0 ? 0 : 0xFFFFFFFFu << (32 - len);
  }

  Ipv4Addr base_;
  int prefix_len_ = 0;
};

/// A 48-bit Ethernet MAC address.
class MacAddr {
 public:
  constexpr MacAddr() = default;
  constexpr explicit MacAddr(std::array<std::uint8_t, 6> bytes)
      : bytes_(bytes) {}

  /// A locally administered unicast MAC derived from a small integer id,
  /// used by the simulator to hand out unique NIC addresses.
  static constexpr MacAddr local(std::uint32_t id) {
    return MacAddr({0x02, 0x00,
                    static_cast<std::uint8_t>(id >> 24),
                    static_cast<std::uint8_t>(id >> 16),
                    static_cast<std::uint8_t>(id >> 8),
                    static_cast<std::uint8_t>(id)});
  }

  static constexpr MacAddr broadcast() {
    return MacAddr({0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF});
  }

  [[nodiscard]] constexpr const std::array<std::uint8_t, 6>& bytes() const {
    return bytes_;
  }
  [[nodiscard]] constexpr bool is_broadcast() const {
    return *this == broadcast();
  }
  /// True for group (multicast/broadcast) addresses.
  [[nodiscard]] constexpr bool is_multicast() const {
    return (bytes_[0] & 0x01) != 0;
  }

  [[nodiscard]] std::string str() const;

  friend constexpr auto operator<=>(const MacAddr&, const MacAddr&) = default;

 private:
  std::array<std::uint8_t, 6> bytes_{};
};

/// A transport endpoint: IPv4 address + port.
struct Endpoint {
  Ipv4Addr addr;
  std::uint16_t port = 0;

  [[nodiscard]] std::string str() const;
  friend constexpr auto operator<=>(const Endpoint&, const Endpoint&) =
      default;
};

}  // namespace gq::util

template <>
struct std::hash<gq::util::Ipv4Addr> {
  std::size_t operator()(const gq::util::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<gq::util::MacAddr> {
  std::size_t operator()(const gq::util::MacAddr& m) const noexcept {
    const auto& b = m.bytes();
    std::uint64_t v = 0;
    for (auto byte : b) v = (v << 8) | byte;
    return std::hash<std::uint64_t>{}(v);
  }
};

template <>
struct std::hash<gq::util::Endpoint> {
  std::size_t operator()(const gq::util::Endpoint& e) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{e.addr.value()} << 16) | e.port);
  }
};
