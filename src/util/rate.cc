#include "util/rate.h"

#include <algorithm>

namespace gq::util {

void TokenBucket::refill(TimePoint now) {
  if (now <= last_) return;
  const double elapsed = (now - last_).seconds_f();
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
  last_ = now;
}

bool TokenBucket::try_consume(TimePoint now, double amount) {
  refill(now);
  if (tokens_ + 1e-9 < amount) return false;
  tokens_ -= amount;
  return true;
}

double TokenBucket::available(TimePoint now) {
  refill(now);
  return tokens_;
}

}  // namespace gq::util
