// Byte-buffer reading and writing with explicit big-endian (network order)
// accessors. All wire formats in GQ (Ethernet, IPv4, TCP/UDP, DNS, the shim
// protocol) are serialized through these two classes so that byte-order
// handling lives in exactly one place.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gq::util {

/// Error thrown when a read runs past the end of the buffer.
class BufferUnderflow : public std::runtime_error {
 public:
  BufferUnderflow() : std::runtime_error("buffer underflow") {}
};

/// Sequential reader over a non-owning byte span. Multi-byte integers are
/// read in network (big-endian) order. Reads past the end throw
/// BufferUnderflow; callers on the packet path should check remaining()
/// first and treat short input as a malformed packet.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Bytes left to read.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// Current read offset from the start of the buffer.
  [[nodiscard]] std::size_t offset() const { return pos_; }

  std::uint8_t u8() { return take(1)[0]; }

  std::uint16_t u16() {
    auto b = take(2);
    return static_cast<std::uint16_t>((b[0] << 8) | b[1]);
  }

  std::uint32_t u32() {
    auto b = take(4);
    return (static_cast<std::uint32_t>(b[0]) << 24) |
           (static_cast<std::uint32_t>(b[1]) << 16) |
           (static_cast<std::uint32_t>(b[2]) << 8) |
           static_cast<std::uint32_t>(b[3]);
  }

  std::uint64_t u64() {
    std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }

  /// Read `n` raw bytes without copying.
  std::span<const std::uint8_t> bytes(std::size_t n) { return take(n); }

  /// Read `n` bytes as a std::string (for textual fields).
  std::string str(std::size_t n) {
    auto b = take(n);
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }

  /// Skip `n` bytes.
  void skip(std::size_t n) { take(n); }

  /// View of everything not yet consumed (does not advance).
  [[nodiscard]] std::span<const std::uint8_t> rest() const {
    return data_.subspan(pos_);
  }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (remaining() < n) throw BufferUnderflow();
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Growable byte buffer with network-order append operations plus random
/// access patching (needed for length/checksum fields that are written
/// after the payload).
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }

  void bytes(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  void str(std::string_view s) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
    buf_.insert(buf_.end(), p, p + s.size());
  }

  /// Append `n` zero bytes (padding / placeholder for later patching).
  void zeros(std::size_t n) { buf_.insert(buf_.end(), n, 0); }

  /// Overwrite a previously written 16-bit field at byte offset `at`.
  void patch_u16(std::size_t at, std::uint16_t v) {
    buf_.at(at) = static_cast<std::uint8_t>(v >> 8);
    buf_.at(at + 1) = static_cast<std::uint8_t>(v);
  }

  void patch_u32(std::size_t at, std::uint32_t v) {
    buf_.at(at) = static_cast<std::uint8_t>(v >> 24);
    buf_.at(at + 1) = static_cast<std::uint8_t>(v >> 16);
    buf_.at(at + 2) = static_cast<std::uint8_t>(v >> 8);
    buf_.at(at + 3) = static_cast<std::uint8_t>(v);
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> view() const { return buf_; }

  /// Move the accumulated bytes out, leaving the writer empty.
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Convenience: copy a string's bytes into a fresh vector.
inline std::vector<std::uint8_t> to_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()),
          reinterpret_cast<const std::uint8_t*>(s.data()) + s.size()};
}

/// Convenience: interpret a byte span as text.
inline std::string to_string(std::span<const std::uint8_t> b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

}  // namespace gq::util
