// Deterministic pseudo-random source for the simulator. Every stochastic
// decision in the farm (worm scan targets, SMTP sink drop probability,
// incubation jitter) draws from an explicitly seeded Rng so experiments
// replay bit-identically.
#pragma once

#include <cstdint>

namespace gq::util {

/// xoshiro256** generator seeded via splitmix64. Small, fast, and good
/// enough statistically for workload generation (not cryptography).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound) — bound must be nonzero.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability `p`.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean (>0).
  double exponential(double mean);

  /// Fork an independent stream, deterministically derived from this one.
  Rng fork() { return Rng(next()); }

 private:
  std::uint64_t state_[4] = {};
};

}  // namespace gq::util
