#include "util/addr.h"

#include <charconv>
#include <cstdio>

namespace gq::util {

namespace {

// Parses an integer in [0, max] from the front of `text`, advancing it.
std::optional<std::uint32_t> parse_component(std::string_view& text,
                                             std::uint32_t max) {
  std::uint32_t value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr == begin || value > max) return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return value;
}

}  // namespace

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (text.empty() || text.front() != '.') return std::nullopt;
      text.remove_prefix(1);
    }
    auto octet = parse_component(text, 255);
    if (!octet) return std::nullopt;
    value = (value << 8) | *octet;
  }
  if (!text.empty()) return std::nullopt;
  return Ipv4Addr(value);
}

bool Ipv4Addr::is_private() const {
  if ((value_ >> 24) == 10) return true;
  if ((value_ >> 20) == 0xAC1) return true;  // 172.16/12
  if ((value_ >> 16) == 0xC0A8) return true;  // 192.168/16
  return false;
}

std::string Ipv4Addr::str() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", value_ >> 24,
                (value_ >> 16) & 0xFF, (value_ >> 8) & 0xFF, value_ & 0xFF);
  return buf;
}

std::optional<Ipv4Net> Ipv4Net::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  auto len = parse_component(len_text, 32);
  if (!len || !len_text.empty()) return std::nullopt;
  return Ipv4Net(*addr, static_cast<int>(*len));
}

std::string Ipv4Net::str() const {
  return base_.str() + "/" + std::to_string(prefix_len_);
}

std::string MacAddr::str() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0],
                bytes_[1], bytes_[2], bytes_[3], bytes_[4], bytes_[5]);
  return buf;
}

std::string Endpoint::str() const {
  return addr.str() + ":" + std::to_string(port);
}

}  // namespace gq::util
