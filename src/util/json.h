// Minimal JSON emission and validation for the bench harnesses: the
// scenario benches print human tables AND write machine-readable
// BENCH_*.json summaries for CI to archive and diff. The writer covers
// exactly the subset the benches need (objects, arrays, strings,
// numbers, booleans); json_valid() is a strict syntax checker the smoke
// targets run over their own output, so a malformed summary fails the
// build instead of poisoning the CI archive.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gq::util {

/// Escape a string for embedding in a JSON document (quotes included).
std::string json_quote(std::string_view text);

/// Streaming JSON writer. Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("rows"); w.begin_array();
///   w.begin_object(); w.key("n"); w.value(7); w.end_object();
///   w.end_array();
///   w.end_object();
///   w.str();  // {"rows":[{"n":7}]}
/// The writer inserts commas; nesting errors are the caller's bug and
/// surface as invalid output (which json_valid then catches).
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view name);
  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(double number);
  void value(std::uint64_t number);
  void value(std::int64_t number);
  void value(int number) { value(static_cast<std::int64_t>(number)); }
  void value(bool flag);

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void comma();

  std::string out_;
  // One entry per open container: true once it has a member (so the
  // next one needs a comma).
  std::vector<bool> has_member_;
  bool after_key_ = false;
};

/// Strict syntax check of a complete JSON document (single top-level
/// value, no trailing bytes). No DOM is built.
[[nodiscard]] bool json_valid(std::string_view text);

}  // namespace gq::util
