#include "util/rng.h"

#include <cmath>

namespace gq::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  for (auto& s : state_) s = splitmix64(seed);
  // Avoid the all-zero state, which xoshiro cannot leave.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

}  // namespace gq::util
