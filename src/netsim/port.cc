#include "netsim/port.h"

namespace gq::sim {

void Port::connect(Port& a, Port& b, util::Duration latency) {
  a.peer_ = &b;
  b.peer_ = &a;
  a.latency_ = latency;
  b.latency_ = latency;
}

void Port::set_loss(double probability, std::uint64_t seed) {
  loss_probability_ = probability;
  loss_rng_.reseed(seed);
}

void Port::transmit(Frame frame) {
  ++tx_frames_;
  if (peer_ == nullptr) {
    ++dropped_;
    return;
  }
  if (loss_probability_ > 0.0 && loss_rng_.chance(loss_probability_)) {
    ++dropped_;
    return;
  }
  Port* peer = peer_;
  loop_.schedule_in(latency_, [peer, frame = std::move(frame)]() mutable {
    peer->deliver(std::move(frame));
  });
}

void Port::deliver(Frame frame) {
  ++rx_frames_;
  if (rx_) rx_(std::move(frame));
}

}  // namespace gq::sim
