#include "netsim/port.h"

#include "obs/metrics.h"

namespace gq::sim {

namespace {
void bump(obs::Counter* ctr) {
  if (ctr != nullptr) ctr->inc();
}
}  // namespace

void Port::connect(Port& a, Port& b, util::Duration latency) {
  a.peer_ = &b;
  b.peer_ = &a;
  a.latency_ = latency;
  b.latency_ = latency;
}

void Port::set_bridge(BridgeTx tx, util::Duration latency) {
  peer_ = nullptr;
  bridge_ = std::move(tx);
  latency_ = latency;
}

void Port::clear_bridge() { bridge_ = nullptr; }

void Port::set_fault_profile(const FaultProfile& profile,
                             std::uint64_t seed) {
  faults_ = profile;
  fault_rng_.reseed(seed);
}

void Port::set_loss(double probability, std::uint64_t seed) {
  FaultProfile profile;
  profile.drop_probability = probability;
  set_fault_profile(profile, seed);
}

void Port::bind_fault_metrics(obs::MetricsRegistry& metrics,
                              const std::string& prefix) {
  dropped_ctr_ = &metrics.counter(prefix + "dropped");
  flap_dropped_ctr_ = &metrics.counter(prefix + "flap_dropped");
  duplicated_ctr_ = &metrics.counter(prefix + "duplicated");
  reordered_ctr_ = &metrics.counter(prefix + "reordered");
}

void Port::schedule_delivery(Frame frame, util::Duration delay) {
  Port* peer = peer_;
  loop_.schedule_in(delay, [peer, frame = std::move(frame)]() mutable {
    peer->deliver(std::move(frame));
  });
}

void Port::schedule_bridged(util::TimePoint at, Frame frame) {
  loop_.schedule_at(at, [this, frame = std::move(frame)]() mutable {
    deliver(std::move(frame));
  });
}

void Port::dispatch(Frame frame, util::Duration delay) {
  if (bridge_) {
    bridge_(delay, std::move(frame));
    return;
  }
  schedule_delivery(std::move(frame), delay);
}

void Port::transmit(Frame frame) {
  ++tx_frames_;
  if (!connected()) {
    ++dropped_;
    return;
  }
  util::Duration delay = latency_;
  if (faults_.enabled()) {
    // Fixed decision order (flap, drop, jitter, reorder, duplicate) so
    // the Rng stream — and therefore the whole run — is reproducible.
    if (faults_.link_down_at(loop_.now())) {
      ++dropped_;
      ++fault_counters_.flap_dropped;
      bump(flap_dropped_ctr_);
      return;
    }
    if (faults_.drop_probability > 0.0 &&
        fault_rng_.chance(faults_.drop_probability)) {
      ++dropped_;
      ++fault_counters_.dropped;
      bump(dropped_ctr_);
      return;
    }
    if (faults_.jitter_max.usec > 0) {
      const auto jitter = static_cast<std::int64_t>(
          fault_rng_.below(static_cast<std::uint64_t>(faults_.jitter_max.usec) + 1));
      if (jitter > 0) ++fault_counters_.jittered;
      delay = delay + util::microseconds(jitter);
    }
    if (faults_.reorder_probability > 0.0 &&
        fault_rng_.chance(faults_.reorder_probability) &&
        faults_.reorder_window.usec > 0) {
      // Hold the frame back so frames sent after it can overtake.
      delay = delay +
              util::microseconds(1 + static_cast<std::int64_t>(fault_rng_.below(
                                         static_cast<std::uint64_t>(
                                             faults_.reorder_window.usec))));
      ++fault_counters_.reordered;
      bump(reordered_ctr_);
    }
    if (faults_.duplicate_probability > 0.0 &&
        fault_rng_.chance(faults_.duplicate_probability)) {
      ++fault_counters_.duplicated;
      bump(duplicated_ctr_);
      dispatch(Frame{frame.bytes}, delay);
    }
  }
  dispatch(std::move(frame), delay);
}

void Port::deliver(Frame frame) {
  ++rx_frames_;
  if (rx_) rx_(std::move(frame));
}

}  // namespace gq::sim
