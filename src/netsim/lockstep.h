// Conservative-lookahead lockstep execution of multiple event-loop
// domains (GQ subfarm shards). Each domain runs its own sim::EventLoop
// on a dedicated worker thread; the only communication between domains
// is Ethernet frames crossing bridged Ports, which travel through
// per-link bounded mailboxes and are delivered at epoch barriers.
//
// Determinism argument (DESIGN.md §12): every cross-domain link has a
// fixed propagation latency L_i, and the coordinator advances all
// domains in lockstep epochs of length E = min_i(L_i). A frame
// transmitted at time t inside epoch [T, T+E) is timestamped
// deliver_at = t + delay with delay >= L_i >= E, hence
// deliver_at >= T + E — never inside the current epoch. Draining
// mailboxes only at the barrier therefore loses nothing, and because
// drained frames are scheduled in the canonical order
// (deliver_at, link id, per-link production seq) by one thread while
// every worker is quiescent, the destination loop's heap — and thus the
// whole run — is bit-identical for any worker-thread count, including 1.
//
// Memory ordering: mailboxes are SPSC with no atomics. The producer is
// the single worker thread running the source domain during an epoch;
// the consumer is the coordinator thread at the barrier. The barrier's
// mutex hand-off (worker's final unlock happens-before the
// coordinator's wakeup, and the epoch-generation bump happens-before
// the workers' next wait returns) orders every push against every
// drain, which is what makes the plain std::vector storage race-free —
// the tsan lane exists to keep this honest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "netsim/event_loop.h"
#include "netsim/port.h"
#include "util/time.h"

namespace gq::sim {

/// A frame in flight between domains, stamped with its absolute
/// delivery time on the destination loop.
struct TimedFrame {
  util::TimePoint deliver_at;
  Frame frame;
};

/// Bounded SPSC frame buffer for one direction of one cross-domain
/// link. push() runs on the producing domain's worker thread, drain()
/// on the coordinator thread at an epoch barrier; the barrier provides
/// the ordering (see file comment). Overflow drops are deterministic:
/// they depend only on the per-link production order, never on thread
/// interleaving.
class Mailbox {
 public:
  explicit Mailbox(std::size_t capacity) : capacity_(capacity) {}

  /// False (and the frame is dropped) when the mailbox is full.
  bool push(TimedFrame tf) {
    if (buf_.size() >= capacity_) {
      ++overflow_dropped_;
      return false;
    }
    buf_.push_back(std::move(tf));
    return true;
  }

  std::vector<TimedFrame> take() {
    std::vector<TimedFrame> out;
    out.swap(buf_);
    return out;
  }

  [[nodiscard]] std::uint64_t overflow_dropped() const {
    return overflow_dropped_;
  }

 private:
  std::size_t capacity_;
  std::vector<TimedFrame> buf_;
  std::uint64_t overflow_dropped_ = 0;
};

struct LockstepStats {
  std::uint64_t epochs = 0;            // Barriers crossed.
  std::uint64_t messages = 0;          // Frames delivered across domains.
  std::uint64_t overflow_dropped = 0;  // Frames lost to full mailboxes.
};

/// Advances a set of EventLoop domains in deterministic lockstep
/// epochs. With threads == 1 (or one domain) everything runs inline on
/// the calling thread — no std::thread is created — and produces the
/// exact same event order as any parallel configuration.
class LockstepCoordinator {
 public:
  /// `threads` caps the worker pool (clamped to the domain count);
  /// `mailbox_capacity` bounds each link direction's per-epoch backlog.
  explicit LockstepCoordinator(unsigned threads = 1,
                               std::size_t mailbox_capacity = 65536);
  ~LockstepCoordinator();

  LockstepCoordinator(const LockstepCoordinator&) = delete;
  LockstepCoordinator& operator=(const LockstepCoordinator&) = delete;

  /// Register a domain's loop. All domains must be added, and all
  /// bridges installed, before the first run_*() call.
  std::size_t add_domain(EventLoop& loop);

  /// Bridge two ports in different domains with a full-duplex link of
  /// the given one-way latency. The latency must be > 0: it bounds the
  /// epoch length (lookahead), and the coordinator asserts that the
  /// minimum across links stays positive.
  void bridge(std::size_t domain_a, Port& a, std::size_t domain_b, Port& b,
              util::Duration latency);

  /// Advance every domain to `deadline` in lockstep epochs.
  void run_until(util::TimePoint deadline);

  /// Advance every domain by `d` from the current lockstep time.
  void run_for(util::Duration d) { run_until(now_ + d); }

  [[nodiscard]] util::TimePoint now() const { return now_; }
  [[nodiscard]] util::Duration epoch_length() const { return epoch_; }
  [[nodiscard]] unsigned threads() const { return threads_; }
  [[nodiscard]] LockstepStats stats() const;

 private:
  struct Link {
    std::size_t src_domain;
    std::size_t dst_domain;
    Port* dst_port;
    Mailbox box;
  };

  void advance_domains(util::TimePoint epoch_end);
  void drain_mailboxes(util::TimePoint epoch_end);
  void start_workers();
  void worker_main(unsigned worker_index);

  std::vector<EventLoop*> domains_;
  // deque-like stability is required: BridgeTx closures capture Link
  // pointers, so links are held by unique_ptr.
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Port*> bridged_ports_;
  std::size_t mailbox_capacity_;
  util::TimePoint now_{};
  util::Duration epoch_{};  // min cross-domain link latency
  LockstepStats stats_;
  bool started_ = false;

  // Worker pool (empty in serial mode). Barrier state below mu_.
  unsigned threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t epoch_gen_ = 0;
  util::TimePoint epoch_deadline_{};
  unsigned workers_remaining_ = 0;
  bool shutdown_ = false;
};

}  // namespace gq::sim
