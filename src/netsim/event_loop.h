// Deterministic discrete-event scheduler. Each execution domain — a
// whole farm, or one subfarm shard under sim::LockstepCoordinator —
// runs off one EventLoop with a virtual microsecond clock, so an
// experiment with a 30-minute trigger window completes in milliseconds
// of wall time and replays identically given the same seed.
//
// Threading contract: an EventLoop is single-threaded. Under sharded
// execution exactly one worker thread runs a given loop during an
// epoch, and the coordinator may schedule cross-shard deliveries onto
// it only at epoch barriers while every worker is quiescent (the
// barrier's mutex hand-off orders those accesses).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/time.h"

namespace gq::sim {

/// Handle for cancelling a scheduled event. Encodes (generation, slot):
/// slots are recycled, generations make stale handles harmless.
using EventId = std::uint64_t;

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current simulated time.
  [[nodiscard]] util::TimePoint now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (clamped to now).
  EventId schedule_at(util::TimePoint at, std::function<void()> fn);

  /// Schedule `fn` to run `delay` from now.
  EventId schedule_in(util::Duration delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event; cancelling an already-run or unknown id is a
  /// harmless no-op (and is not recorded, so `pending()` stays exact).
  void cancel(EventId id);

  /// Run events until the queue empties or the clock would pass
  /// `deadline`; the clock ends at `deadline`.
  void run_until(util::TimePoint deadline);

  /// Run for `d` of simulated time from now.
  void run_for(util::Duration d) { run_until(now_ + d); }

  /// Drain every pending event regardless of time (tests only; malware
  /// behaviours self-rescheduling forever would never let this return).
  void run_all();

  /// Destroy every pending event without running it. Owners of the loop
  /// call this before tearing down the devices the closures reference: a
  /// pending closure can hold the last reference to an object (e.g. a
  /// TCP retransmit timer owning its connection) whose destructor touches
  /// a device, so those closures must die while the devices still exist.
  void drop_pending();

  /// Number of events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending (scheduled, not yet run or
  /// cancelled).
  [[nodiscard]] std::size_t pending() const { return live_; }

 private:
  struct Entry {
    util::TimePoint at;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps.
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Slot state for the scheduled-event bookkeeping. The hot path
  // (schedule, cancel, pop) pays two O(1) array accesses per event where
  // it used to pay hash probes into a live-set and a cancelled-set — the
  // event loop is the hottest structure in the whole system, so those
  // probes were measurable (see BM_EventLoopScheduleCancel).
  enum class SlotState : std::uint8_t { kFree, kLive, kCancelled };
  struct Slot {
    // Generations start at 1 so EventId 0 is never issued: callers use 0
    // as a "no event" sentinel and cancel(0) must stay a no-op.
    std::uint32_t generation = 1;
    SlotState state = SlotState::kFree;
  };

  static constexpr std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }
  static constexpr std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static constexpr EventId make_id(std::uint32_t generation,
                                   std::uint32_t slot) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  bool step(util::TimePoint deadline);
  /// Pop the top heap entry by move (std::priority_queue::top is const
  /// and would copy the closure — including any captured frame buffer).
  Entry pop_entry();
  /// Return a popped entry's slot to the free list, bumping the
  /// generation so any still-held EventId for it goes stale.
  void release_slot(std::uint32_t slot);

  util::TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;  // Scheduled and not yet run or cancelled.
  // Min-heap over `heap_` managed with push_heap/pop_heap so entries can
  // be moved out instead of copied.
  std::vector<Entry> heap_;
  // Generation-tagged slots replacing the former live/cancelled hash
  // sets; one entry per id ever in flight, recycled through free_slots_.
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace gq::sim
