// Deterministic discrete-event scheduler. The whole farm — link
// propagation, TCP retransmission timers, malware behaviour timers,
// containment triggers — runs off one EventLoop with a virtual
// microsecond clock, so an experiment with a 30-minute trigger window
// completes in milliseconds of wall time and replays identically given
// the same seed.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "util/time.h"

namespace gq::sim {

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current simulated time.
  [[nodiscard]] util::TimePoint now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (clamped to now).
  EventId schedule_at(util::TimePoint at, std::function<void()> fn);

  /// Schedule `fn` to run `delay` from now.
  EventId schedule_in(util::Duration delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event; cancelling an already-run or unknown id is a
  /// harmless no-op (and is not recorded, so `pending()` stays exact).
  void cancel(EventId id);

  /// Run events until the queue empties or the clock would pass
  /// `deadline`; the clock ends at `deadline`.
  void run_until(util::TimePoint deadline);

  /// Run for `d` of simulated time from now.
  void run_for(util::Duration d) { run_until(now_ + d); }

  /// Drain every pending event regardless of time (tests only; malware
  /// behaviours self-rescheduling forever would never let this return).
  void run_all();

  /// Destroy every pending event without running it. Owners of the loop
  /// call this before tearing down the devices the closures reference: a
  /// pending closure can hold the last reference to an object (e.g. a
  /// TCP retransmit timer owning its connection) whose destructor touches
  /// a device, so those closures must die while the devices still exist.
  void drop_pending();

  /// Number of events executed since construction.
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending (scheduled, not yet run or
  /// cancelled).
  [[nodiscard]] std::size_t pending() const { return live_.size(); }

 private:
  struct Entry {
    util::TimePoint at;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps.
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool step(util::TimePoint deadline);
  /// Pop the top heap entry by move (std::priority_queue::top is const
  /// and would copy the closure — including any captured frame buffer).
  Entry pop_entry();

  util::TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  // Min-heap over `heap_` managed with push_heap/pop_heap so entries can
  // be moved out instead of copied.
  std::vector<Entry> heap_;
  std::unordered_set<EventId> live_;       // Scheduled and not yet run.
  std::unordered_set<EventId> cancelled_;  // Subset of ids still in heap_.
};

}  // namespace gq::sim
