// Deterministic link-fault injection. GQ's containment argument (§5)
// must hold when the farm network misbehaves, not just on a perfect
// fabric — the gateway is the sole enforcement point even while links
// drop, duplicate, reorder, jitter, or flap. A FaultProfile describes
// one transmit direction's impairments; Port applies it at delivery
// time, drawing every random decision from a per-port seeded util::Rng
// so a run replays bit-identically given the same seeds.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace gq::sim {

/// Impairments applied to one direction of a link (each Port owns its
/// transmit side; apply a profile to both ports for a symmetric link).
/// All probabilities are per-frame and drawn from the port's fault Rng
/// in a fixed order, so determinism is independent of which features
/// are enabled.
struct FaultProfile {
  /// Chance a transmitted frame is silently discarded.
  double drop_probability = 0.0;
  /// Chance a frame is delivered twice (the copy takes the same delay).
  double duplicate_probability = 0.0;
  /// Chance a frame is held back by an extra uniform(1, reorder_window]
  /// delay, letting later frames overtake it.
  double reorder_probability = 0.0;
  util::Duration reorder_window = util::milliseconds(10);
  /// Uniform [0, jitter_max] added to every delivered frame's latency.
  util::Duration jitter_max{};
  /// Scheduled link flaps: a deterministic square wave anchored at
  /// flap_epoch. In every flap_period, the link is dead (all frames
  /// dropped) for the final flap_down. flap_period 0 disables flaps.
  /// Being a pure function of the clock, flaps need no recurring
  /// events — run_all() and cancellation semantics are unaffected.
  util::Duration flap_period{};
  util::Duration flap_down{};
  util::TimePoint flap_epoch{};

  [[nodiscard]] bool enabled() const {
    return drop_probability > 0.0 || duplicate_probability > 0.0 ||
           reorder_probability > 0.0 || jitter_max.usec > 0 ||
           flap_period.usec > 0;
  }

  /// True when the flap schedule has the link down at `now`.
  [[nodiscard]] bool link_down_at(util::TimePoint now) const {
    if (flap_period.usec <= 0 || flap_down.usec <= 0) return false;
    std::int64_t phase = (now - flap_epoch).usec % flap_period.usec;
    if (phase < 0) phase += flap_period.usec;
    return phase >= flap_period.usec - flap_down.usec;
  }
};

/// Per-direction tallies of injected faults (distinct from a Port's
/// dropped_frames(), which also counts unconnected transmits).
struct FaultCounters {
  std::uint64_t dropped = 0;       // Random per-frame drops.
  std::uint64_t flap_dropped = 0;  // Frames lost to a down flap window.
  std::uint64_t duplicated = 0;    // Extra copies delivered.
  std::uint64_t reordered = 0;     // Frames given an overtaking delay.
  std::uint64_t jittered = 0;      // Frames with nonzero added jitter.
};

}  // namespace gq::sim
