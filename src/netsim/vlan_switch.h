// Learning 802.1Q Ethernet switch. GQ isolates each inmate on its own
// VLAN (§5.2): physical and virtual switches enforce a per-inmate VLAN
// assignment, and the gateway attaches over a trunk carrying every
// inmate VLAN. This switch implements exactly that: access ports strip/
// add tags for their configured VID, trunk ports carry tagged frames for
// an allowed VID set, and MAC learning is scoped per VLAN so crosstalk
// between VLANs is impossible at layer 2.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "netsim/port.h"
#include "util/addr.h"

namespace gq::sim {

class VlanSwitch {
 public:
  /// A switch with `num_ports` ports, all initially unconfigured (frames
  /// on unconfigured ports are dropped).
  VlanSwitch(EventLoop& loop, std::string name, std::size_t num_ports);

  Port& port(std::size_t index) { return *ports_.at(index); }
  [[nodiscard]] std::size_t num_ports() const { return ports_.size(); }

  /// Configure a port as an access port for `vlan`: untagged frames in,
  /// untagged frames out, all traffic confined to that VLAN.
  void set_access(std::size_t index, std::uint16_t vlan);

  /// Configure a port as a trunk carrying all VLANs (tagged frames).
  void set_trunk_all(std::size_t index);

  /// Configure a port as a trunk carrying only the listed VLANs.
  void set_trunk(std::size_t index, std::set<std::uint16_t> allowed);

  /// Remove any configuration (port goes back to dropping frames).
  void clear_port(std::size_t index);

  /// Forget learned MAC entries (all, or only one port's).
  void flush_learning();
  void flush_learning_for_port(std::size_t index);

  [[nodiscard]] std::uint64_t flooded_frames() const { return flooded_; }
  [[nodiscard]] std::uint64_t dropped_frames() const { return dropped_; }

 private:
  enum class Mode { kUnconfigured, kAccess, kTrunk };
  struct PortConfig {
    Mode mode = Mode::kUnconfigured;
    std::uint16_t access_vlan = 0;
    bool trunk_all = false;
    std::set<std::uint16_t> trunk_vlans;

    [[nodiscard]] bool carries(std::uint16_t vlan) const;
  };

  void handle_frame(std::size_t ingress, Frame frame);
  /// Deliver `untagged` out of port `index`, re-tagging in place for
  /// trunks. Takes the buffer by value: the single-target forward path
  /// moves the ingress buffer straight through; only flooding copies.
  void egress(std::size_t index, std::uint16_t vlan,
              std::vector<std::uint8_t> untagged);

  struct TableKey {
    std::uint16_t vlan;
    util::MacAddr mac;
    friend bool operator==(const TableKey&, const TableKey&) = default;
  };
  struct TableKeyHash {
    std::size_t operator()(const TableKey& k) const noexcept {
      return std::hash<util::MacAddr>{}(k.mac) ^
             (std::size_t{k.vlan} * 0x9E3779B97F4A7C15ull);
    }
  };

  EventLoop& loop_;
  std::string name_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::vector<PortConfig> configs_;
  // Learning table: (vlan, mac) -> port index.
  std::unordered_map<TableKey, std::size_t, TableKeyHash> table_;
  std::uint64_t flooded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace gq::sim
