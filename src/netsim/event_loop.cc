#include "netsim/event_loop.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace gq::sim {

EventId EventLoop::schedule_at(util::TimePoint at, std::function<void()> fn) {
  if (at < now_) at = now_;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].state = SlotState::kLive;
  const EventId id = make_id(slots_[slot].generation, slot);
  heap_.push_back(Entry{at, next_seq_++, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return id;
}

void EventLoop::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size()) return;
  // A stale generation means the event already ran (or the id was never
  // issued): both are the documented no-op.
  if (slots_[slot].generation != generation_of(id)) return;
  if (slots_[slot].state != SlotState::kLive) return;
  // Tombstone in place; the heap entry is purged when it pops, so the
  // slot table never grows past the high-water mark of in-flight events.
  slots_[slot].state = SlotState::kCancelled;
  --live_;
}

void EventLoop::release_slot(std::uint32_t slot) {
  ++slots_[slot].generation;
  slots_[slot].state = SlotState::kFree;
  free_slots_.push_back(slot);
}

EventLoop::Entry EventLoop::pop_entry() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  return entry;
}

bool EventLoop::step(util::TimePoint deadline) {
  while (!heap_.empty()) {
    if (heap_.front().at > deadline) return false;
    Entry entry = pop_entry();
    const std::uint32_t slot = slot_of(entry.id);
    const bool cancelled = slots_[slot].state == SlotState::kCancelled;
    release_slot(slot);
    if (cancelled) continue;
    // The virtual clock is monotone: schedule_at clamps past timestamps
    // to now, so no heap entry can sit behind the clock. Assert in debug
    // builds and clamp defensively in release (NDEBUG) builds — time
    // travelling backwards would silently corrupt every latency
    // measurement and retransmission timer downstream.
    assert(entry.at >= now_ && "EventLoop clock must be monotone");
    if (entry.at < now_) entry.at = now_;
    --live_;
    now_ = entry.at;
    ++executed_;
    entry.fn();
    return true;
  }
  return false;
}

void EventLoop::run_until(util::TimePoint deadline) {
  while (step(deadline)) {
  }
  if (now_ < deadline) now_ = deadline;
}

void EventLoop::drop_pending() {
  // Destroying a pending closure can re-enter cancel() (an object owned
  // by one closure cancelling its own timers in its destructor), so move
  // the heap out and retire every slot before any closure dies: a
  // re-entrant cancel then sees a stale generation and no-ops.
  std::vector<Entry> doomed;
  doomed.swap(heap_);
  for (const Entry& entry : doomed) release_slot(slot_of(entry.id));
  live_ = 0;
  doomed.clear();
}

void EventLoop::run_all() {
  while (step(util::TimePoint{INT64_MAX})) {
  }
}

}  // namespace gq::sim
