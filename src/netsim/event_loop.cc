#include "netsim/event_loop.h"

#include <algorithm>
#include <utility>

namespace gq::sim {

EventId EventLoop::schedule_at(util::TimePoint at, std::function<void()> fn) {
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  heap_.push_back(Entry{at, next_seq_++, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  live_.insert(id);
  return id;
}

void EventLoop::cancel(EventId id) {
  // Only genuinely pending ids are recorded; the tombstone is purged
  // when its heap entry pops, so neither set grows without bound.
  if (live_.erase(id) > 0) cancelled_.insert(id);
}

EventLoop::Entry EventLoop::pop_entry() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  return entry;
}

bool EventLoop::step(util::TimePoint deadline) {
  while (!heap_.empty()) {
    if (heap_.front().at > deadline) return false;
    Entry entry = pop_entry();
    if (auto it = cancelled_.find(entry.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    live_.erase(entry.id);
    now_ = entry.at;
    ++executed_;
    entry.fn();
    return true;
  }
  return false;
}

void EventLoop::run_until(util::TimePoint deadline) {
  while (step(deadline)) {
  }
  if (now_ < deadline) now_ = deadline;
}

void EventLoop::run_all() {
  while (step(util::TimePoint{INT64_MAX})) {
  }
}

}  // namespace gq::sim
