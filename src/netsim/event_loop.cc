#include "netsim/event_loop.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace gq::sim {

EventId EventLoop::schedule_at(util::TimePoint at, std::function<void()> fn) {
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  heap_.push_back(Entry{at, next_seq_++, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  live_.insert(id);
  return id;
}

void EventLoop::cancel(EventId id) {
  // Only genuinely pending ids are recorded; the tombstone is purged
  // when its heap entry pops, so neither set grows without bound.
  if (live_.erase(id) > 0) cancelled_.insert(id);
}

EventLoop::Entry EventLoop::pop_entry() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  return entry;
}

bool EventLoop::step(util::TimePoint deadline) {
  while (!heap_.empty()) {
    if (heap_.front().at > deadline) return false;
    Entry entry = pop_entry();
    if (auto it = cancelled_.find(entry.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    // The virtual clock is monotone: schedule_at clamps past timestamps
    // to now, so no heap entry can sit behind the clock. Assert in debug
    // builds and clamp defensively in release (NDEBUG) builds — time
    // travelling backwards would silently corrupt every latency
    // measurement and retransmission timer downstream.
    assert(entry.at >= now_ && "EventLoop clock must be monotone");
    if (entry.at < now_) entry.at = now_;
    live_.erase(entry.id);
    now_ = entry.at;
    ++executed_;
    entry.fn();
    return true;
  }
  return false;
}

void EventLoop::run_until(util::TimePoint deadline) {
  while (step(deadline)) {
  }
  if (now_ < deadline) now_ = deadline;
}

void EventLoop::drop_pending() {
  // Destroying a pending closure can re-enter cancel() (an object owned
  // by one closure cancelling its own timers in its destructor), so move
  // the heap out and clear the bookkeeping sets before any closure dies.
  std::vector<Entry> doomed;
  doomed.swap(heap_);
  live_.clear();
  cancelled_.clear();
  doomed.clear();
}

void EventLoop::run_all() {
  while (step(util::TimePoint{INT64_MAX})) {
  }
}

}  // namespace gq::sim
