#include "netsim/event_loop.h"

namespace gq::sim {

EventId EventLoop::schedule_at(util::TimePoint at, std::function<void()> fn) {
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  queue_.push(Entry{at, next_seq_++, id, std::move(fn)});
  return id;
}

void EventLoop::cancel(EventId id) { cancelled_.insert(id); }

bool EventLoop::step(util::TimePoint deadline) {
  while (!queue_.empty()) {
    if (queue_.top().at > deadline) return false;
    // Entries are popped by copy because priority_queue::top is const;
    // the function object is small (usually a lambda with a few captures).
    Entry entry = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(entry.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = entry.at;
    ++executed_;
    entry.fn();
    return true;
  }
  return false;
}

void EventLoop::run_until(util::TimePoint deadline) {
  while (step(deadline)) {
  }
  if (now_ < deadline) now_ = deadline;
}

void EventLoop::run_all() {
  while (step(util::TimePoint{INT64_MAX})) {
  }
}

}  // namespace gq::sim
