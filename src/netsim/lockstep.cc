#include "netsim/lockstep.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace gq::sim {

LockstepCoordinator::LockstepCoordinator(unsigned threads,
                                         std::size_t mailbox_capacity)
    : mailbox_capacity_(mailbox_capacity),
      threads_(threads == 0 ? 1 : threads) {}

LockstepCoordinator::~LockstepCoordinator() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }
  // Bridge closures capture Link pointers owned by this coordinator;
  // detach them so a port outliving the coordinator cannot call into
  // freed state.
  for (Port* port : bridged_ports_) port->clear_bridge();
}

std::size_t LockstepCoordinator::add_domain(EventLoop& loop) {
  assert(!started_ && "add_domain after the first run_*() call");
  domains_.push_back(&loop);
  return domains_.size() - 1;
}

void LockstepCoordinator::bridge(std::size_t domain_a, Port& a,
                                 std::size_t domain_b, Port& b,
                                 util::Duration latency) {
  assert(!started_ && "bridge after the first run_*() call");
  assert(domain_a != domain_b && "bridge() is for cross-domain links");
  assert(latency.usec > 0 && "cross-domain latency bounds the lookahead");
  if (epoch_.usec == 0 || latency < epoch_) epoch_ = latency;

  auto install = [this](std::size_t src, std::size_t dst, Port& src_port,
                        Port& dst_port, util::Duration lat) {
    links_.push_back(std::make_unique<Link>(
        Link{src, dst, &dst_port, Mailbox{mailbox_capacity_}}));
    Link* link = links_.back().get();
    EventLoop* src_loop = domains_[src];
    // Runs on the worker thread owning `src` during an epoch: stamp the
    // absolute delivery time from the source clock and park the frame
    // until the barrier.
    src_port.set_bridge(
        [link, src_loop](util::Duration delay, Frame frame) {
          link->box.push(TimedFrame{src_loop->now() + delay,
                                    std::move(frame)});
        },
        lat);
    bridged_ports_.push_back(&src_port);
  };
  install(domain_a, domain_b, a, b, latency);
  install(domain_b, domain_a, b, a, latency);
}

void LockstepCoordinator::start_workers() {
  started_ = true;
  now_ = util::TimePoint{};
  for (EventLoop* loop : domains_) now_ = std::max(now_, loop->now());
  threads_ = std::min<unsigned>(
      threads_, static_cast<unsigned>(std::max<std::size_t>(domains_.size(), 1)));
  if (threads_ <= 1) return;
  workers_.reserve(threads_);
  for (unsigned w = 0; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

void LockstepCoordinator::worker_main(unsigned worker_index) {
  std::uint64_t seen = 0;
  for (;;) {
    util::TimePoint deadline{};
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return shutdown_ || epoch_gen_ != seen; });
      if (shutdown_) return;
      seen = epoch_gen_;
      deadline = epoch_deadline_;
    }
    // Static domain partition: worker w always runs the same domains,
    // so a domain's loop is only ever touched by one thread per epoch.
    for (std::size_t d = worker_index; d < domains_.size(); d += threads_) {
      domains_[d]->run_until(deadline);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--workers_remaining_ == 0) cv_.notify_all();
    }
  }
}

void LockstepCoordinator::advance_domains(util::TimePoint epoch_end) {
  if (workers_.empty()) {
    for (EventLoop* loop : domains_) loop->run_until(epoch_end);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    epoch_deadline_ = epoch_end;
    workers_remaining_ = static_cast<unsigned>(workers_.size());
    ++epoch_gen_;
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return workers_remaining_ == 0; });
}

void LockstepCoordinator::drain_mailboxes(util::TimePoint epoch_end) {
  // Canonical delivery order: (deliver_at, link id, per-link production
  // seq). Iterating links in creation order and stable-sorting on
  // deliver_at alone yields exactly that, independent of which thread
  // ran which domain.
  struct Pending {
    TimedFrame tf;
    Port* dst_port;
  };
  std::vector<Pending> pending;
  for (auto& link : links_) {
    std::vector<TimedFrame> frames = link->box.take();
    for (TimedFrame& tf : frames) {
      pending.push_back(Pending{std::move(tf), link->dst_port});
    }
  }
  if (pending.empty()) return;
  std::stable_sort(pending.begin(), pending.end(),
                   [](const Pending& x, const Pending& y) {
                     return x.tf.deliver_at < y.tf.deliver_at;
                   });
  stats_.messages += pending.size();
  for (Pending& p : pending) {
    // The lookahead rule guarantees deliver_at >= epoch_end; the
    // destination clock sits exactly at epoch_end, so schedule_at never
    // clamps. (void)epoch_end in release builds.
    assert(p.tf.deliver_at >= epoch_end);
    (void)epoch_end;
    p.dst_port->schedule_bridged(p.tf.deliver_at, std::move(p.tf.frame));
  }
}

void LockstepCoordinator::run_until(util::TimePoint deadline) {
  if (!started_) start_workers();
  assert((links_.empty() || epoch_.usec > 0) && "epoch needs a latency");
  while (now_ < deadline) {
    util::TimePoint epoch_end = deadline;
    if (!links_.empty() && now_ + epoch_ < deadline) {
      epoch_end = now_ + epoch_;
    }
    advance_domains(epoch_end);
    drain_mailboxes(epoch_end);
    now_ = epoch_end;
    ++stats_.epochs;
  }
}

LockstepStats LockstepCoordinator::stats() const {
  LockstepStats out = stats_;
  for (const auto& link : links_) {
    out.overflow_dropped += link->box.overflow_dropped();
  }
  return out;
}

}  // namespace gq::sim
