#include "netsim/vlan_switch.h"

#include <cstring>
#include <utility>

#include "packet/frame_view.h"
#include "packet/headers.h"

namespace gq::sim {

namespace {

// Minimal in-place frame inspection: offsets into the standard Ethernet
// header. Full decoding is unnecessary (and wasteful) on the switching
// fast path.
constexpr std::size_t kDstOffset = 0;
constexpr std::size_t kSrcOffset = 6;
constexpr std::size_t kMinFrame = 14;

util::MacAddr mac_at(const std::vector<std::uint8_t>& bytes,
                     std::size_t offset) {
  std::array<std::uint8_t, 6> arr;
  std::memcpy(arr.data(), bytes.data() + offset, 6);
  return util::MacAddr(arr);
}

}  // namespace

bool VlanSwitch::PortConfig::carries(std::uint16_t vlan) const {
  switch (mode) {
    case Mode::kUnconfigured:
      return false;
    case Mode::kAccess:
      return access_vlan == vlan;
    case Mode::kTrunk:
      return trunk_all || trunk_vlans.count(vlan) > 0;
  }
  return false;
}

VlanSwitch::VlanSwitch(EventLoop& loop, std::string name,
                       std::size_t num_ports)
    : loop_(loop), name_(std::move(name)), configs_(num_ports) {
  ports_.reserve(num_ports);
  for (std::size_t i = 0; i < num_ports; ++i) {
    ports_.push_back(
        std::make_unique<Port>(loop_, name_ + ".p" + std::to_string(i)));
    ports_.back()->set_rx(
        [this, i](Frame frame) { handle_frame(i, std::move(frame)); });
  }
}

void VlanSwitch::set_access(std::size_t index, std::uint16_t vlan) {
  configs_.at(index) = PortConfig{Mode::kAccess, vlan, false, {}};
  flush_learning_for_port(index);
}

void VlanSwitch::set_trunk_all(std::size_t index) {
  configs_.at(index) = PortConfig{Mode::kTrunk, 0, true, {}};
  flush_learning_for_port(index);
}

void VlanSwitch::set_trunk(std::size_t index,
                           std::set<std::uint16_t> allowed) {
  configs_.at(index) = PortConfig{Mode::kTrunk, 0, false, std::move(allowed)};
  flush_learning_for_port(index);
}

void VlanSwitch::clear_port(std::size_t index) {
  configs_.at(index) = PortConfig{};
  flush_learning_for_port(index);
}

void VlanSwitch::flush_learning() { table_.clear(); }

void VlanSwitch::flush_learning_for_port(std::size_t index) {
  for (auto it = table_.begin(); it != table_.end();) {
    if (it->second == index)
      it = table_.erase(it);
    else
      ++it;
  }
}

void VlanSwitch::handle_frame(std::size_t ingress, Frame frame) {
  if (frame.bytes.size() < kMinFrame) {
    ++dropped_;
    return;
  }
  const PortConfig& in_cfg = configs_[ingress];
  std::uint16_t vlan;
  // Normalize the ingress buffer to untagged form in place; the buffer
  // is then moved straight through to the egress port (copied only when
  // flooding to multiple ports).
  std::vector<std::uint8_t> untagged = std::move(frame.bytes);
  const auto tag = pkt::vlan_vid_of(untagged);
  switch (in_cfg.mode) {
    case Mode::kUnconfigured:
      ++dropped_;
      return;
    case Mode::kAccess:
      if (tag) {  // Tagged frames on access ports are invalid.
        ++dropped_;
        return;
      }
      vlan = in_cfg.access_vlan;
      break;
    case Mode::kTrunk:
      if (!tag) {  // No native VLAN on trunks in this switch.
        ++dropped_;
        return;
      }
      vlan = *tag;
      if (!in_cfg.carries(vlan)) {
        ++dropped_;
        return;
      }
      pkt::strip_vlan_tag(untagged);
      break;
    default:
      ++dropped_;
      return;
  }

  const util::MacAddr src = mac_at(untagged, kSrcOffset);
  const util::MacAddr dst = mac_at(untagged, kDstOffset);
  if (!src.is_multicast()) table_[{vlan, src}] = ingress;

  if (!dst.is_multicast()) {
    if (auto it = table_.find({vlan, dst}); it != table_.end()) {
      if (it->second != ingress) egress(it->second, vlan, std::move(untagged));
      return;
    }
  }
  // Broadcast / unknown unicast: flood within the VLAN.
  ++flooded_;
  std::size_t last = ports_.size();
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (i == ingress || !configs_[i].carries(vlan)) continue;
    if (last != ports_.size()) egress(last, vlan, untagged);
    last = i;
  }
  if (last != ports_.size()) egress(last, vlan, std::move(untagged));
}

void VlanSwitch::egress(std::size_t index, std::uint16_t vlan,
                        std::vector<std::uint8_t> untagged) {
  const PortConfig& cfg = configs_[index];
  if (cfg.mode == Mode::kTrunk) pkt::insert_vlan_tag(untagged, vlan);
  ports_[index]->transmit(Frame{std::move(untagged)});
}

}  // namespace gq::sim
