// Link-layer plumbing of the simulator: a Port is one end of a
// point-to-point cable; connecting two ports creates a full-duplex link
// with a fixed propagation latency. Frames are raw Ethernet bytes —
// the switch and the gateway both operate on the real wire encoding.
// Each port's transmit side can carry a FaultProfile (drops, dupes,
// reordering, jitter, flaps), so impairments are per link AND per
// direction, each with its own deterministic Rng stream.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "netsim/event_loop.h"
#include "netsim/fault.h"
#include "util/rng.h"

namespace gq::obs {
class Counter;
class MetricsRegistry;
}  // namespace gq::obs

namespace gq::sim {

/// One Ethernet frame on the wire.
struct Frame {
  std::vector<std::uint8_t> bytes;
};

/// One end of a point-to-point link. Owned by the device it belongs to
/// (switch, host NIC, gateway interface); devices must outlive the loop's
/// pending events, which holds in practice because the farm owns
/// everything and drains the loop before teardown.
class Port {
 public:
  using RxHandler = std::function<void(Frame)>;
  /// Transmit sink for a port bridged across execution domains: called
  /// on the owning domain's thread with the fault-adjusted delivery
  /// delay; the sink (a LockstepCoordinator mailbox) carries the frame
  /// to the peer domain, which hands it back via deliver_bridged().
  using BridgeTx = std::function<void(util::Duration delay, Frame frame)>;

  Port(EventLoop& loop, std::string name)
      : loop_(loop), name_(std::move(name)) {}

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  /// Install the receive handler invoked for each frame arriving here.
  void set_rx(RxHandler handler) { rx_ = std::move(handler); }

  /// Wire two ports together with the given one-way latency.
  static void connect(Port& a, Port& b, util::Duration latency);

  /// Replace the in-domain peer with a cross-domain transmit sink. The
  /// fault pipeline still runs locally (per-direction impairments stay
  /// deterministic per shard); the sink receives the resulting delay
  /// instead of a schedule on this loop. Mutually exclusive with
  /// connect().
  void set_bridge(BridgeTx tx, util::Duration latency);

  /// Detach the bridge sink (coordinator teardown: closures referencing
  /// the coordinator must die before the coordinator does).
  void clear_bridge();

  /// Entry point for frames arriving from a bridged peer domain:
  /// schedules the frame's arrival at absolute time `at` on this port's
  /// own loop. Called only by the lockstep coordinator at epoch
  /// barriers, while the loop's worker is quiescent.
  void schedule_bridged(util::TimePoint at, Frame frame);

  /// Queue a frame for delivery to the peer after the link latency.
  /// Frames transmitted on an unconnected port are counted and dropped.
  void transmit(Frame frame);

  /// Install a fault profile on this port's transmit side with its own
  /// Rng seed (independent streams per direction). An all-defaults
  /// profile disables injection.
  void set_fault_profile(const FaultProfile& profile, std::uint64_t seed);

  /// Remove any fault profile (the counters are kept).
  void clear_faults() { faults_ = FaultProfile{}; }

  /// Inject random frame loss on this port's transmit side (tests of
  /// retransmission behaviour). Probability 0 disables (the default).
  /// Convenience wrapper over set_fault_profile with only drops set.
  void set_loss(double probability, std::uint64_t seed);

  /// Mirror this port's fault counters into a metrics registry as
  /// "<prefix>dropped" / "flap_dropped" / "duplicated" / "reordered".
  void bind_fault_metrics(obs::MetricsRegistry& metrics,
                          const std::string& prefix);

  [[nodiscard]] bool connected() const {
    return peer_ != nullptr || bridge_ != nullptr;
  }
  [[nodiscard]] Port* peer() const { return peer_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const FaultProfile& fault_profile() const { return faults_; }
  [[nodiscard]] const FaultCounters& fault_counters() const {
    return fault_counters_;
  }
  [[nodiscard]] std::uint64_t tx_frames() const { return tx_frames_; }
  [[nodiscard]] std::uint64_t rx_frames() const { return rx_frames_; }
  [[nodiscard]] std::uint64_t dropped_frames() const { return dropped_; }

 private:
  void deliver(Frame frame);
  /// Route a frame with its final delay: onto this loop toward the peer
  /// for an in-domain link, or into the bridge sink for a cross-domain
  /// one.
  void dispatch(Frame frame, util::Duration delay);
  void schedule_delivery(Frame frame, util::Duration delay);

  EventLoop& loop_;
  std::string name_;
  Port* peer_ = nullptr;
  util::Duration latency_{};
  RxHandler rx_;
  BridgeTx bridge_;
  FaultProfile faults_;
  util::Rng fault_rng_{0};
  FaultCounters fault_counters_;
  // Optional mirrors into an obs::MetricsRegistry (not owned).
  obs::Counter* dropped_ctr_ = nullptr;
  obs::Counter* flap_dropped_ctr_ = nullptr;
  obs::Counter* duplicated_ctr_ = nullptr;
  obs::Counter* reordered_ctr_ = nullptr;
  std::uint64_t tx_frames_ = 0;
  std::uint64_t rx_frames_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace gq::sim
