#include "report/reporter.h"

#include <algorithm>

#include "util/strings.h"

namespace gq::rep {

void Reporter::attach(obs::EventBus& bus) {
  bus.subscribe([this](const obs::FarmEvent& event) { on_event(event); });
}

void Reporter::on_event(const obs::FarmEvent& event) {
  switch (event.kind) {
    case obs::FarmEvent::Kind::kSafetyReject:
      ++subfarms_[event.subfarm].safety_rejections;
      return;

    case obs::FarmEvent::Kind::kFlowVerdict: {
      auto& inmate = subfarms_[event.subfarm].inmates[event.vlan];
      if (!event.policy_name.empty() && event.policy_name != "DefaultDeny")
        inmate.policy_name = event.policy_name;
      auto& group =
          inmate.groups[GroupKey{event.verdict, event.annotation}];
      ++group.flows;
      if (event.verdict_source == shim::VerdictSource::kCached)
        ++group.cached;
      else if (event.verdict_source == shim::VerdictSource::kTable)
        ++group.table;
      ++group.by_target[event.orig_dst];
      return;
    }

    case obs::FarmEvent::Kind::kInfectionServed: {
      ++infections_;
      auto& inmate = subfarms_[event.subfarm].inmates[event.vlan];
      inmate.infections.emplace_back(event.sample_name, event.sample_md5);
      return;
    }

    case obs::FarmEvent::Kind::kTriggerFired:
      ++trigger_firings_;
      return;

    case obs::FarmEvent::Kind::kDhcpBind:
      dhcp_bindings_[event.subfarm][event.vlan] =
          AddressPair{event.inmate_internal, event.inmate_global};
      return;

    case obs::FarmEvent::Kind::kSinkSession:
    case obs::FarmEvent::Kind::kSinkData: {
      // Only SMTP-flavoured sinks feed the per-inmate "SMTP sessions /
      // DATA transfers" report lines.
      if (event.sink_service.find("smtp") == std::string::npos) return;
      auto& stats = sink_smtp_[event.subfarm][event.sink_source.addr];
      if (event.kind == obs::FarmEvent::Kind::kSinkSession)
        ++stats.sessions;
      else
        ++stats.data_transfers;
      return;
    }

    case obs::FarmEvent::Kind::kJobState: {
      auto& tenant = tenant_jobs_[event.tenant];
      ++tenant.states[event.job_state];
      if (event.job_state == "harvested") {
        tenant.bytes_to_server += event.bytes_to_server;
        tenant.bytes_to_inmate += event.bytes_to_inmate;
      }
      return;
    }

    case obs::FarmEvent::Kind::kFlowOpen:
    case obs::FarmEvent::Kind::kFlowClose:
    case obs::FarmEvent::Kind::kCsDecision:
      return;  // The verdict event carries the facts the report needs.
  }
}

std::uint64_t Reporter::jobs_observed(const std::string& tenant,
                                      const std::string& state) const {
  auto it = tenant_jobs_.find(tenant);
  if (it == tenant_jobs_.end()) return 0;
  auto st = it->second.states.find(state);
  return st == it->second.states.end() ? 0 : st->second;
}

void Reporter::on_flow_event(const gw::FlowEvent& event) {
  on_event(gw::to_farm_event(event));
}

void Reporter::on_cs_event(const std::string& subfarm,
                           const cs::CsEvent& event) {
  on_event(cs::to_farm_event(event, subfarm));
}

void Reporter::register_subfarm(gw::SubfarmRouter* subfarm) {
  routers_.push_back(subfarm);
}

void Reporter::register_smtp_sink(const std::string& subfarm_name,
                                  sinks::SmtpSink* sink) {
  smtp_sinks_[subfarm_name] = sink;
}

void Reporter::register_trace_tap(const trace::TraceTap* tap) {
  trace_taps_.push_back(tap);
}

std::string Reporter::port_name(std::uint16_t port) {
  switch (port) {
    case 25: return "smtp";
    case 80: return "http";
    case 443: return "https";
    case 53: return "dns";
    case 21: return "ftp";
    case 6667: return "irc";
    default: return std::to_string(port);
  }
}

std::string Reporter::render(util::TimePoint now) const {
  std::string out;
  out += "Inmate Activity\n";
  out += "===============\n\n";
  out += util::format("Report time: %s\n\n",
                      util::format_duration(now - util::TimePoint{}).c_str());

  out += "Active subfarms:";
  bool first = true;
  for (const auto& [name, subfarm] : subfarms_) {
    out += (first ? " " : ", ") + name;
    first = false;
  }
  out += "\n";

  for (const auto& [name, subfarm] : subfarms_) {
    out += util::format("\nSubfarm '%s'\n", name.c_str());
    out += std::string(56, '-') + "\n";

    // Resolve the router for address lookups.
    gw::SubfarmRouter* router = nullptr;
    for (auto* candidate : routers_)
      if (candidate->config().name == name) router = candidate;

    for (const auto& [vlan, inmate] : subfarm.inmates) {
      std::string addresses = "-/-";
      util::Ipv4Addr internal_addr;
      if (router) {
        if (const auto* binding = router->inmates().by_vlan(vlan)) {
          addresses = binding->global_addr.str() + "/" +
                      binding->internal_addr.str();
          internal_addr = binding->internal_addr;
        }
      } else if (auto sf = dhcp_bindings_.find(name);
                 sf != dhcp_bindings_.end()) {
        // No router registered: fall back to bus-fed kDhcpBind records.
        if (auto bound = sf->second.find(vlan); bound != sf->second.end()) {
          addresses = bound->second.global_addr.str() + "/" +
                      bound->second.internal_addr.str();
          internal_addr = bound->second.internal_addr;
        }
      }
      out += util::format(
          "\n%s [%s, VLAN %u]\n",
          inmate.policy_name.empty() ? "(unnamed)"
                                     : inmate.policy_name.c_str(),
          addresses.c_str(), vlan);
      out += std::string(52, '-') + "\n";

      shim::Verdict last_verdict = shim::Verdict::kDrop;
      bool verdict_printed = false;
      for (const auto& [key, stats] : inmate.groups) {
        if (!verdict_printed || key.verdict != last_verdict) {
          out += util::format("%s\n", shim::verdict_name(key.verdict));
          last_verdict = key.verdict;
          verdict_printed = true;
        }
        // Target display: the single target, or a wildcard when spread.
        std::string target = "*.*.*.*";
        std::string port = "?";
        if (!stats.by_target.empty()) {
          port = port_name(stats.by_target.begin()->first.port);
          if (stats.by_target.size() == 1)
            target = stats.by_target.begin()->first.addr.str();
        }
        out += util::format("- %-34s target %-18s %-6s #flows %llu",
                            key.annotation.c_str(), target.c_str(),
                            port.c_str(),
                            static_cast<unsigned long long>(stats.flows));
        if (stats.cached > 0) {
          out += util::format(
              " (%llu cached)",
              static_cast<unsigned long long>(stats.cached));
        }
        if (stats.table > 0) {
          out += util::format(
              " (%llu table)",
              static_cast<unsigned long long>(stats.table));
        }
        out += "\n";
      }
      for (const auto& [sample, md5] : inmate.infections) {
        out += util::format("  autoinfection %s %s\n", md5.c_str(),
                            sample.c_str());
      }
      // SMTP statistics by internal address: bus-fed kSinkSession /
      // kSinkData aggregates first, pull from a registered sink when the
      // sink was wired without telemetry.
      bool smtp_printed = false;
      if (!internal_addr.is_unspecified()) {
        if (auto sf = sink_smtp_.find(name); sf != sink_smtp_.end()) {
          if (auto stats = sf->second.find(internal_addr);
              stats != sf->second.end()) {
            out += util::format(
                "\nSMTP sessions       %llu\nSMTP DATA transfers %llu\n",
                static_cast<unsigned long long>(stats->second.sessions),
                static_cast<unsigned long long>(
                    stats->second.data_transfers));
            smtp_printed = true;
          }
        }
      }
      if (auto sink_it = smtp_sinks_.find(name);
          !smtp_printed && sink_it != smtp_sinks_.end() &&
          !internal_addr.is_unspecified()) {
        const auto& by_source = sink_it->second->by_source();
        if (auto stats = by_source.find(internal_addr);
            stats != by_source.end()) {
          out += util::format(
              "\nSMTP sessions       %llu\nSMTP DATA transfers %llu\n",
              static_cast<unsigned long long>(stats->second.sessions),
              static_cast<unsigned long long>(
                  stats->second.data_transfers));
        }
      }
      // Blacklist verification (§6.5: "we check all global IP addresses
      // currently used by inmates against relevant IP blacklists").
      if (cbl_ && router) {
        if (const auto* binding = router->inmates().by_vlan(vlan)) {
          if (cbl_->is_listed(binding->global_addr)) {
            out += util::format(
                "!! WARNING: inmate global address %s is BLACKLISTED — "
                "possible containment failure\n",
                binding->global_addr.str().c_str());
          }
        }
      }
    }
    if (subfarm.safety_rejections > 0) {
      out += util::format(
          "\nSafety filter rejections: %llu\n",
          static_cast<unsigned long long>(subfarm.safety_rejections));
    }
  }

  if (!tenant_jobs_.empty()) {
    out += "\nDetonation jobs\n";
    out += std::string(56, '=') + "\n";
    for (const auto& [tenant, jobs] : tenant_jobs_) {
      auto count = [&jobs](const char* state) -> unsigned long long {
        auto it = jobs.states.find(state);
        return it == jobs.states.end() ? 0ull : it->second;
      };
      out += util::format(
          "\n%-16s submitted %llu  running %llu  harvested %llu  "
          "recycled %llu  cancelled %llu  rejected %llu\n",
          tenant.c_str(), count("queued"), count("running"),
          count("harvested"), count("recycled"), count("cancelled"),
          count("rejected"));
      out += util::format(
          "  harvested traffic: %llu B to servers, %llu B to inmates\n",
          static_cast<unsigned long long>(jobs.bytes_to_server),
          static_cast<unsigned long long>(jobs.bytes_to_inmate));
    }
  }

  if (!trace_taps_.empty()) {
    out += "\nTrace archives\n";
    out += std::string(56, '=') + "\n";
    for (const auto* tap : trace_taps_) {
      const auto& archive = tap->archive();
      out += util::format(
          "\n%-12s segments %zu  retained %llu pkts / %llu B  "
          "evicted %llu seg / %llu pkts\n",
          tap->name().c_str(), archive.segment_count(),
          static_cast<unsigned long long>(archive.retained_packets()),
          static_cast<unsigned long long>(archive.retained_bytes()),
          static_cast<unsigned long long>(archive.evicted_segments()),
          static_cast<unsigned long long>(archive.evicted_packets()));
      for (const auto& flow : tap->index().flows()) {
        const char* proto =
            flow.key.proto == pkt::FlowProto::kTcp ? "tcp" : "udp";
        std::string verdict = flow.has_verdict
                                  ? shim::verdict_name(flow.verdict)
                                  : std::string("-");
        if (flow.has_verdict) {
          verdict += " [";
          verdict += shim::verdict_source_name(flow.verdict_source);
          verdict += "]";
        }
        out += util::format(
            "  %s %s -> %s vlan %u  %llu pkts / %llu B  %s%s%s\n", proto,
            flow.key.src.str().c_str(), flow.key.dst.str().c_str(),
            flow.vlan, static_cast<unsigned long long>(flow.packets),
            static_cast<unsigned long long>(flow.bytes), verdict.c_str(),
            flow.policy_name.empty() ? "" : " policy ",
            flow.policy_name.c_str());
      }
    }
  }
  return out;
}

void Reporter::enable_rotation(sim::EventLoop& loop,
                               util::Duration interval) {
  loop.schedule_in(interval, [this, &loop, interval] {
    rotated_.push_back(render(loop.now()));
    enable_rotation(loop, interval);
  });
}

std::map<shim::Verdict, std::uint64_t> Reporter::verdict_totals() const {
  std::map<shim::Verdict, std::uint64_t> totals;
  for (const auto& [name, subfarm] : subfarms_) {
    for (const auto& [vlan, inmate] : subfarm.inmates) {
      for (const auto& [key, stats] : inmate.groups)
        totals[key.verdict] += stats.flows;
    }
  }
  return totals;
}

std::uint64_t Reporter::flows(const std::string& subfarm, std::uint16_t vlan,
                              shim::Verdict verdict) const {
  auto subfarm_it = subfarms_.find(subfarm);
  if (subfarm_it == subfarms_.end()) return 0;
  auto inmate_it = subfarm_it->second.inmates.find(vlan);
  if (inmate_it == subfarm_it->second.inmates.end()) return 0;
  std::uint64_t total = 0;
  for (const auto& [key, stats] : inmate_it->second.groups)
    if (key.verdict == verdict) total += stats.flows;
  return total;
}

std::vector<util::Ipv4Addr> Reporter::blacklisted_inmates() const {
  std::vector<util::Ipv4Addr> out;
  if (!cbl_) return out;
  for (auto* router : routers_) {
    for (const auto& [vlan, binding] : router->inmates().bindings()) {
      if (cbl_->is_listed(binding.global_addr))
        out.push_back(binding.global_addr);
    }
  }
  return out;
}

}  // namespace gq::rep
