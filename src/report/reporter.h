// Reporting and monitoring (paper §6.5): the Bro role. The reporter
// taps the gateway's per-flow event stream (the shim-protocol analyzer)
// and the containment server's decision/infection/trigger events, pulls
// SMTP session statistics from the sinks, cross-checks inmate global
// addresses against external blacklists, and renders periodic activity
// reports in the paper's Figure 7 format — broken down by subfarm,
// inmate, and containment decision, so an operator can verify that the
// gateway enforces decisions as expected ("an unusual number of FORWARD
// verdicts might indicate a bug in the policy").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "containment/server.h"
#include "extnet/extnet.h"
#include "gateway/flow.h"
#include "gateway/router.h"
#include "netsim/event_loop.h"
#include "obs/events.h"
#include "sinks/smtp_sink.h"
#include "trace/tap.h"

namespace gq::rep {

class Reporter {
 public:
  /// Subscribe this reporter to a farm's event bus; every aggregate the
  /// report renders is then driven by published FarmEvents. core::Farm
  /// calls this once at construction.
  void attach(obs::EventBus& bus);

  /// Central ingestion: one FarmEvent of any kind.
  void on_event(const obs::FarmEvent& event);

  /// Legacy event-ingestion hooks: convert to the FarmEvent envelope and
  /// feed on_event(). Kept for callers wiring handlers by hand.
  void on_flow_event(const gw::FlowEvent& event);
  void on_cs_event(const std::string& subfarm, const cs::CsEvent& event);

  /// Registration for render-time lookups.
  void register_subfarm(gw::SubfarmRouter* subfarm);
  void register_smtp_sink(const std::string& subfarm_name,
                          sinks::SmtpSink* sink);
  /// Register a gateway trace tap; the report then appends a "Trace
  /// archives" section summarising each tap's retained segments and its
  /// flow index (per-flow verdicts and byte counts).
  void register_trace_tap(const trace::TraceTap* tap);
  void set_blacklist(const ext::Cbl* cbl) { cbl_ = cbl; }

  /// Render the Figure 7 style activity report.
  [[nodiscard]] std::string render(util::TimePoint now) const;

  /// Enable periodic report rotation ("hourly and daily basis").
  void enable_rotation(sim::EventLoop& loop, util::Duration interval);
  [[nodiscard]] const std::vector<std::string>& rotated_reports() const {
    return rotated_;
  }

  // --- Structured access (tests / verification) -----------------------

  /// Flow counts per verdict across the whole farm — the containment
  /// verification signal the paper describes.
  [[nodiscard]] std::map<shim::Verdict, std::uint64_t> verdict_totals()
      const;

  /// Flow count for (subfarm, vlan, verdict, annotation).
  [[nodiscard]] std::uint64_t flows(const std::string& subfarm,
                                    std::uint16_t vlan,
                                    shim::Verdict verdict) const;

  /// Inmate global addresses currently blacklisted (containment-failure
  /// alarm, §7.1 "mysterious blacklisting").
  [[nodiscard]] std::vector<util::Ipv4Addr> blacklisted_inmates() const;

  [[nodiscard]] std::uint64_t trigger_firings() const {
    return trigger_firings_;
  }
  [[nodiscard]] std::uint64_t infections_served() const {
    return infections_;
  }

  /// kJobState transitions observed for (tenant, state name) — e.g.
  /// jobs_observed("acme", "recycled") counts acme's completed
  /// detonation jobs. State names are orch::job_state_name strings.
  [[nodiscard]] std::uint64_t jobs_observed(const std::string& tenant,
                                            const std::string& state) const;

 private:
  struct GroupKey {
    shim::Verdict verdict;
    std::string annotation;
    friend auto operator<=>(const GroupKey&, const GroupKey&) = default;
  };
  struct GroupStats {
    std::uint64_t flows = 0;
    /// How many of `flows` were resolved from the gateway's verdict
    /// cache, and how many from the compiled policy table (the rest
    /// took a containment-server shim round trip).
    std::uint64_t cached = 0;
    std::uint64_t table = 0;
    std::map<util::Endpoint, std::uint64_t> by_target;
  };
  struct InmateReport {
    std::string policy_name;  // Most recent non-default policy.
    std::map<GroupKey, GroupStats> groups;
    std::vector<std::pair<std::string, std::string>> infections;  // name,md5
  };
  struct SubfarmReport {
    std::map<std::uint16_t, InmateReport> inmates;
    std::uint64_t safety_rejections = 0;
  };

  static std::string port_name(std::uint16_t port);

  /// Bus-fed per-inmate SMTP sink stats (kSinkSession / kSinkData from
  /// SMTP-flavoured sink services), keyed subfarm -> internal address.
  struct SmtpStats {
    std::uint64_t sessions = 0;
    std::uint64_t data_transfers = 0;
  };
  /// Bus-fed DHCP address bindings (kDhcpBind), used when no router is
  /// registered for render-time lookups: vlan -> (internal, global).
  struct AddressPair {
    util::Ipv4Addr internal_addr;
    util::Ipv4Addr global_addr;
  };

  std::map<std::string, SubfarmReport> subfarms_;
  std::vector<gw::SubfarmRouter*> routers_;
  std::vector<const trace::TraceTap*> trace_taps_;
  std::map<std::string, sinks::SmtpSink*> smtp_sinks_;
  std::map<std::string, std::map<util::Ipv4Addr, SmtpStats>> sink_smtp_;
  std::map<std::string, std::map<std::uint16_t, AddressPair>> dhcp_bindings_;
  const ext::Cbl* cbl_ = nullptr;
  std::vector<std::string> rotated_;
  std::uint64_t trigger_firings_ = 0;
  std::uint64_t infections_ = 0;
  /// Bus-fed detonation-job aggregates (kJobState): tenant -> state
  /// name -> transition count, plus per-tenant harvested byte totals.
  struct TenantJobs {
    std::map<std::string, std::uint64_t> states;
    std::uint64_t bytes_to_server = 0;
    std::uint64_t bytes_to_inmate = 0;
  };
  std::map<std::string, TenantJobs> tenant_jobs_;
};

}  // namespace gq::rep
