#include "core/farm.h"

#include <stdexcept>

#include "util/log.h"
#include "util/strings.h"

namespace gq::core {

namespace {
constexpr const char* kLog = "farm";
constexpr std::uint16_t kCsPort = 6666;
constexpr std::uint16_t kControllerPort = 7777;
constexpr std::uint16_t kMgmtVlan = 2;
constexpr std::uint16_t kExternalVlan = 3;
constexpr util::Duration kLinkLatency = util::microseconds(50);
constexpr util::Duration kUpstreamLatency = util::microseconds(500);
}  // namespace

Farm::Farm(FarmOptions options)
    : options_(options),
      rng_(options.seed),
      inmate_switch_(loop_, "inmate-sw", options.inmate_switch_ports),
      mgmt_switch_(loop_, "mgmt-sw", options.mgmt_switch_ports),
      external_switch_(loop_, "ext-sw", options.external_switch_ports) {
  next_subfarm_index_ = options_.subfarm_index_base;
  gw::GatewayConfig gwc;
  gwc.upstream_addr = options_.gateway_upstream;
  gwc.mgmt_net = options_.mgmt_net;
  gwc.mgmt_addr = options_.mgmt_net.host(1);
  gwc.trace_archive = options_.trace_archive;
  gwc.datapath = options_.datapath;
  gwc.mac_namespace = options_.mac_namespace;
  gateway_ = std::make_unique<gw::Gateway>(loop_, gwc, &telemetry_);
  reporter_.register_trace_tap(&gateway_->upstream_trace());

  // Wire the gateway's three legs: trunk into the inmate switch, access
  // ports on the management and external switches.
  const std::size_t inmate_trunk = options.inmate_switch_ports - 1;
  inmate_switch_.set_trunk_all(inmate_trunk);
  sim::Port::connect(gateway_->inmate_port(), inmate_switch_.port(inmate_trunk),
                     kLinkLatency);

  const std::size_t mgmt_uplink = options.mgmt_switch_ports - 1;
  mgmt_switch_.set_access(mgmt_uplink, kMgmtVlan);
  sim::Port::connect(gateway_->mgmt_port(), mgmt_switch_.port(mgmt_uplink),
                     kLinkLatency);

  const std::size_t ext_uplink = options.external_switch_ports - 1;
  external_switch_.set_access(ext_uplink, kExternalVlan);
  sim::Port::connect(gateway_->upstream_port(),
                     external_switch_.port(ext_uplink), kUpstreamLatency);

  // All observability flows through one place: components publish into
  // the farm telemetry bus, the reporter subscribes to it.
  reporter_.attach(telemetry_.bus());
  reporter_.set_blacklist(&cbl_);

  // An inmate that is reverted or terminated invalidates every verdict
  // the gateway cached for its VLAN: the machine (and whatever policy
  // state its flows accumulated) no longer exists. REBOOT keeps the
  // same disk image, so its cached verdicts stay valid.
  telemetry_.bus().subscribe(
      obs::FarmEvent::Kind::kTriggerFired, [this](const obs::FarmEvent& ev) {
        if (ev.trigger_action != "REVERT" && ev.trigger_action != "TERMINATE")
          return;
        for (auto& subfarm : subfarms_) {
          if (subfarm->name() == ev.subfarm) {
            subfarm->router().flush_cache_vlan(ev.vlan);
            break;
          }
        }
      });

  // The inmate controller (§5.5) — conceptually on the gateway; hosted
  // on a dedicated management host here.
  controller_host_ = &add_mgmt_host("inmate-controller");
  controller_ = std::make_unique<inm::InmateController>(*controller_host_,
                                                        kControllerPort);
}

Farm::~Farm() {
  // Pending loop entries can own the last reference to live objects — a
  // TCP retransmit closure holds its connection, whose destructor talks
  // to its host stack. Member destruction runs in reverse declaration
  // order (hosts_ before loop_), so drop those closures now, while every
  // device they reference still exists.
  loop_.drop_pending();
}

net::HostStack& Farm::add_external_host(const std::string& name,
                                        util::Ipv4Addr addr) {
  if (next_external_port_ >= options_.external_switch_ports - 1)
    throw std::runtime_error("external switch full");
  auto host = std::make_unique<net::HostStack>(
      loop_, name,
      util::MacAddr::local(0x30000u + options_.mac_namespace +
                           static_cast<std::uint32_t>(hosts_.size())),
      next_seed());
  external_switch_.set_access(next_external_port_, kExternalVlan);
  sim::Port::connect(host->nic(), external_switch_.port(next_external_port_),
                     kUpstreamLatency);
  ++next_external_port_;
  // The simulated Internet is one flat on-link world (prefix length 0):
  // external hosts ARP directly for any address; the gateway proxy-ARPs
  // the NATed ranges.
  host->configure({addr, util::Ipv4Net(util::Ipv4Addr(), 0),
                   util::Ipv4Addr(), {}});
  hosts_.push_back(std::move(host));
  return *hosts_.back();
}

net::HostStack& Farm::add_mgmt_host(const std::string& name) {
  if (next_mgmt_port_ >= options_.mgmt_switch_ports - 1)
    throw std::runtime_error("management switch full");
  auto host = std::make_unique<net::HostStack>(
      loop_, name,
      util::MacAddr::local(0x40000u + options_.mac_namespace +
                           static_cast<std::uint32_t>(hosts_.size())),
      next_seed());
  mgmt_switch_.set_access(next_mgmt_port_, kMgmtVlan);
  sim::Port::connect(host->nic(), mgmt_switch_.port(next_mgmt_port_),
                     kLinkLatency);
  ++next_mgmt_port_;
  host->configure({next_mgmt_addr(), options_.mgmt_net,
                   options_.mgmt_net.host(1), {}});
  hosts_.push_back(std::move(host));
  return *hosts_.back();
}

util::Ipv4Addr Farm::next_mgmt_addr() {
  return options_.mgmt_net.host(next_mgmt_host_index_++);
}

void Farm::set_link_faults(sim::Port& port, const sim::FaultProfile& profile) {
  // Each direction draws from its own Rng stream seeded off the farm
  // Rng, so two links (or two directions) never share random state.
  port.set_fault_profile(profile, rng_.next());
  port.bind_fault_metrics(telemetry_.metrics(),
                          "net.fault." + port.name() + ".");
  if (sim::Port* peer = port.peer()) {
    peer->set_fault_profile(profile, rng_.next());
    peer->bind_fault_metrics(telemetry_.metrics(),
                             "net.fault." + peer->name() + ".");
  }
}

sim::Port& Farm::claim_external_bridge_port() {
  if (next_external_port_ >= options_.external_switch_ports - 1)
    throw std::runtime_error("external switch full");
  external_switch_.set_access(next_external_port_, kExternalVlan);
  return external_switch_.port(next_external_port_++);
}

sim::Port& Farm::next_inmate_access_port(std::uint16_t vlan) {
  if (next_inmate_port_ >= options_.inmate_switch_ports - 1)
    throw std::runtime_error("inmate switch full");
  inmate_switch_.set_access(next_inmate_port_, vlan);
  return inmate_switch_.port(next_inmate_port_++);
}

Subfarm& Farm::add_subfarm(const std::string& name, SubfarmOptions options) {
  const int index = next_subfarm_index_++;
  if (options.vlan_first == 0) {
    options.vlan_first = next_vlan_base_;
    options.vlan_last = static_cast<std::uint16_t>(next_vlan_base_ + 15);
    next_vlan_base_ = static_cast<std::uint16_t>(next_vlan_base_ + 16);
  }
  if (options.internal_net.prefix_len() == 0) {
    options.internal_net = util::Ipv4Net(
        util::Ipv4Addr(10, static_cast<std::uint8_t>(10 + index), 0, 0), 24);
  }
  if (options.external_net.prefix_len() == 0) {
    options.external_net = util::Ipv4Net(
        util::Ipv4Addr(198, static_cast<std::uint8_t>(18 + index), 0, 0),
        24);
  }

  auto& cs_host = add_mgmt_host(name + "-cs");

  gw::SubfarmConfig sfc;
  sfc.name = name;
  sfc.vlan_first = options.vlan_first;
  sfc.vlan_last = options.vlan_last;
  sfc.internal_net = options.internal_net;
  sfc.external_net = options.external_net;
  sfc.containment_server = {cs_host.addr(), kCsPort};
  sfc.inbound_mode = options.inbound_mode;
  sfc.max_conns_per_inmate = options.max_conns_per_inmate;
  sfc.max_conns_per_dest = options.max_conns_per_dest;
  sfc.drop_sends_rst = options.drop_sends_rst;
  sfc.dns_service = options.dns_service;
  sfc.infra_services = options.infra_services;
  auto& router = gateway_->add_subfarm(sfc);

  auto cs = std::make_unique<cs::ContainmentServer>(
      cs_host, kCsPort, gateway_->config().mgmt_addr);
  cs->set_inmate_controller({controller_host_->addr(), kControllerPort});
  cs->set_telemetry(&telemetry_, name);

  subfarms_.push_back(std::make_unique<Subfarm>(
      *this, router, std::move(cs), cs_host, options.vlan_first,
      options.vlan_last));
  reporter_.register_subfarm(&router);
  reporter_.register_trace_tap(&router.trace());
  GQ_INFO(kLog, "subfarm '%s': VLANs %u-%u internal %s external %s",
          name.c_str(), options.vlan_first, options.vlan_last,
          options.internal_net.str().c_str(),
          options.external_net.str().c_str());
  return *subfarms_.back();
}

// --- Subfarm -----------------------------------------------------------------

Subfarm::Subfarm(Farm& farm, gw::SubfarmRouter& router,
                 std::unique_ptr<cs::ContainmentServer> cs,
                 net::HostStack& cs_host, std::uint16_t vlan_first,
                 std::uint16_t vlan_last)
    : farm_(farm),
      router_(router),
      cs_(std::move(cs)),
      cs_host_(cs_host),
      vlan_pool_(vlan_first, vlan_last) {
  vlan_pool_.bind_metrics(farm_.metrics());
  env_.rng = &farm_.rng();
  env_.samples = &cs_->samples();
  // The router knows who is alive; the containment server layers the
  // rest of PolicyServices on top when configure() chains the backend.
  services_.list_inmates_fn = [this] {
    cs::PolicyServices::InmateList out;
    for (const auto& [vlan, binding] : router_.inmates().bindings())
      out.emplace_back(vlan, binding.internal_addr);
    return out;
  };
  env_.backend = &services_;
}

sinks::CatchAllSink& Subfarm::add_catchall_sink(std::uint16_t port) {
  auto& host = farm_.add_mgmt_host(name() + "-sink");
  catchall_ = std::make_unique<sinks::CatchAllSink>(host, port);
  catchall_->set_telemetry(&farm_.telemetry(), name(), "sink");
  env_.services["sink"] = {host.addr(), port};
  return *catchall_;
}

sinks::SmtpSink& Subfarm::add_smtp_sink(sinks::SmtpSinkConfig config,
                                        std::string service_name) {
  auto& host = farm_.add_mgmt_host(name() + "-" + service_name);
  auto sink = std::make_unique<sinks::SmtpSink>(host, config);
  sink->set_telemetry(&farm_.telemetry(), name(),
                      util::to_lower(service_name));
  env_.services[util::to_lower(service_name)] = {host.addr(), config.port};
  farm_.reporter().register_smtp_sink(name(), sink.get());
  auto& ref = *sink;
  smtp_sinks_[service_name] = std::move(sink);
  return ref;
}

void Subfarm::set_autoinfect(util::Endpoint endpoint) {
  autoinfect_ = endpoint;
  env_.services["autoinfect"] = endpoint;
}

void Subfarm::configure_containment(const std::string& config_text) {
  auto config = cs::ContainmentConfig::parse(config_text);
  last_config_text_ = config_text;
  // Service sections in the file override/add to programmatic ones.
  cs_->configure(config, env_);
  for (auto& extra : extra_cs_) extra->configure(config, env_);
  // A reconfiguration bumps the policy epoch; tell the router directly
  // so cached verdicts from the previous policy set die immediately
  // (not just lazily, when the next response shim carries the epoch).
  router_.on_policy_epoch(cs_->policy_epoch());
  if (auto it = config.services.find("autoinfect");
      it != config.services.end()) {
    autoinfect_ = it->second;
  }
  // [Overload] applies to every cluster member; [FailClosed] configures
  // the gateway side (the router enforces it when the CS is silent).
  if (config.overload) {
    cs::OverloadPolicy policy;
    policy.decision_delay =
        util::milliseconds(config.overload->decision_delay_ms);
    policy.shed_queue_depth =
        static_cast<std::size_t>(config.overload->queue_depth);
    policy.refuse = config.overload->mode == "refuse";
    cs_->set_overload(policy);
    for (auto& extra : extra_cs_) extra->set_overload(policy);
  }
  if (config.fail_closed) {
    shim::Verdict verdict = shim::Verdict::kDrop;
    util::Endpoint reflect_target;
    if (config.fail_closed->verdict == "reflect") {
      const auto& service = config.fail_closed->reflect_service;
      if (auto it = config.services.find(service);
          it != config.services.end()) {
        reflect_target = it->second;
      } else if (auto it2 = env_.services.find(service);
                 it2 != env_.services.end()) {
        reflect_target = it2->second;
      }
      // A REFLECT fail-closed stance without a resolvable sink would
      // silently degrade to DROP in the router; refuse the config
      // instead so the experiment author notices.
      if (reflect_target.addr.is_unspecified())
        throw std::runtime_error(
            "[FailClosed] ReflectService '" + service +
            "' does not name a known service section");
      verdict = shim::Verdict::kReflect;
    }
    router_.set_fail_closed(verdict,
                            util::milliseconds(config.fail_closed->deadline_ms),
                            reflect_target);
  }
}

cs::ContainmentServer& Subfarm::add_containment_server() {
  auto& host = farm_.add_mgmt_host(
      name() + "-cs" + std::to_string(extra_cs_.size() + 2));
  auto extra = std::make_unique<cs::ContainmentServer>(
      host, router_.config().containment_server.port,
      farm_.gateway().config().mgmt_addr);
  extra->set_inmate_controller(farm_.controller().endpoint());
  extra->set_telemetry(&farm_.telemetry(), name());
  router_.add_containment_server(
      {host.addr(), router_.config().containment_server.port});
  // The new member must enforce the same policy state.
  if (!last_config_text_.empty()) {
    extra->configure(cs::ContainmentConfig::parse(last_config_text_), env_);
  }
  extra->set_overload(cs_->overload());
  extra_cs_.push_back(std::move(extra));
  return *extra_cs_.back();
}

void Subfarm::bind_policy(std::uint16_t vlan_first, std::uint16_t vlan_last,
                          std::shared_ptr<cs::Policy> policy) {
  cs_->bind_policy(vlan_first, vlan_last, policy);
  for (auto& extra : extra_cs_)
    extra->bind_policy(vlan_first, vlan_last, policy);
}

void Subfarm::bind_policy_front(std::uint16_t vlan_first,
                                std::uint16_t vlan_last,
                                std::shared_ptr<cs::Policy> policy) {
  cs_->bind_policy_front(vlan_first, vlan_last, policy);
  for (auto& extra : extra_cs_)
    extra->bind_policy_front(vlan_first, vlan_last, policy);
}

std::vector<cs::ContainmentServer*> Subfarm::containment_cluster() {
  std::vector<cs::ContainmentServer*> cluster{cs_.get()};
  for (auto& extra : extra_cs_) cluster.push_back(extra.get());
  return cluster;
}

inm::Inmate& Subfarm::create_inmate(inm::HostingKind hosting,
                                    std::optional<std::uint16_t> vlan) {
  std::uint16_t assigned;
  if (vlan) {
    if (!vlan_pool_.reserve(*vlan))
      throw std::runtime_error("vlan unavailable");
    assigned = *vlan;
  } else {
    auto allocated = vlan_pool_.allocate();
    if (!allocated) throw std::runtime_error("vlan pool exhausted");
    assigned = *allocated;
  }
  inm::InmateConfig config;
  config.vlan = assigned;
  config.hosting = hosting;
  config.autoinfect = autoinfect_;
  config.seed = farm_.next_seed();
  auto inmate = std::make_unique<inm::Inmate>(farm_.loop(), config,
                                              catalog_.factory());
  sim::Port::connect(inmate->host().nic(),
                     farm_.next_inmate_access_port(assigned),
                     util::microseconds(50));
  farm_.controller().register_inmate(*inmate);
  inmate->set_state_handler(
      [this](inm::Inmate& inmate, inm::InmateState, inm::InmateState state) {
        if (state == inm::InmateState::kRunning) {
          cs_->notify_inmate_started(inmate.vlan());
          for (auto& extra : extra_cs_)
            extra->notify_inmate_started(inmate.vlan());
        }
      });
  inmate->power_on();
  inmates_.push_back(std::move(inmate));
  return *inmates_.back();
}

}  // namespace gq::core
