// gq::core::Farm — the top-level public API of this library: a complete
// GQ malware farm in one object. It assembles the architecture of the
// paper's Figure 1 (gateway between inmate network, management network,
// and the outside), hosts independent subfarms (Figure 3), wires the
// containment servers, inmate controller, sinks, reporting, and the
// simulated external Internet, and exposes convenience methods for
// building experiments:
//
//   core::Farm farm;
//   auto& web = farm.add_external_host("cc", {Ipv4Addr(50,8,207,91)});
//   auto& sub = farm.add_subfarm("Botfarm", {...});
//   sub.add_catchall_sink();
//   sub.add_smtp_sink({...});
//   sub.set_autoinfect({Ipv4Addr(10,9,8,7), 6543});
//   sub.catalog().register_prototype("grum.*", ...);
//   sub.configure_containment(config_text);
//   sub.create_inmate(inm::HostingKind::kVm);
//   farm.run_for(util::hours(1));
//   std::cout << farm.report();
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "containment/server.h"
#include "extnet/extnet.h"
#include "gateway/gateway.h"
#include "gateway/router.h"
#include "inmate/controller.h"
#include "inmate/inmate.h"
#include "inmate/vlan_pool.h"
#include "malware/factory.h"
#include "net/stack.h"
#include "netsim/event_loop.h"
#include "netsim/vlan_switch.h"
#include "obs/telemetry.h"
#include "report/reporter.h"
#include "sinks/catchall.h"
#include "sinks/smtp_sink.h"

namespace gq::core {

struct FarmOptions {
  std::uint64_t seed = 0x6071;
  util::Ipv4Addr gateway_upstream = util::Ipv4Addr(203, 0, 113, 1);
  util::Ipv4Net mgmt_net{util::Ipv4Addr(10, 3, 0, 0), 16};
  std::size_t inmate_switch_ports = 72;
  std::size_t mgmt_switch_ports = 48;
  std::size_t external_switch_ports = 48;
  /// Rotation budget for every gateway trace tap (upstream, mgmt,
  /// inmate-ingress, one per subfarm). Defaults keep a few MB per farm.
  trace::ArchiveConfig trace_archive;
  /// Gateway datapath toggles (switch fast path, verdict cache,
  /// compiled policy table), applied to the gateway and resolved into
  /// every subfarm router created under it.
  gw::DatapathOptions datapath;
  /// Offset added to every locally-administered MAC id this farm mints
  /// (gateway legs, external/management hosts). Zero for a standalone
  /// farm; ShardedFarm gives each shard `shard << 20` so L2-bridged
  /// external switches never learn the same MAC from two shards.
  std::uint32_t mac_namespace = 0;
  /// First value of the per-farm subfarm index that seeds the automatic
  /// internal (10.<10+i>/24) and external (198.<18+i>/24) subfarm nets.
  /// ShardedFarm spaces shards apart so every shard's NATed external
  /// ranges are disjoint — required because each gateway proxy-ARPs its
  /// own ranges onto the shared bridged external segment.
  int subfarm_index_base = 0;
};

struct SubfarmOptions {
  std::uint16_t vlan_first = 0;  ///< 0: allocated automatically.
  std::uint16_t vlan_last = 0;
  util::Ipv4Net internal_net;    ///< Default: 10.<n>.0.0/24.
  util::Ipv4Net external_net;    ///< Default: 198.<18+n>.0.0/24.
  gw::InboundMode inbound_mode = gw::InboundMode::kDrop;
  std::size_t max_conns_per_inmate = 2000;
  std::size_t max_conns_per_dest = 500;
  bool drop_sends_rst = true;
  /// Resolver address handed to inmates via DHCP. Flows to it are
  /// contained like any other unless the address is also added to
  /// `infra_services` (the restricted broadcast domain).
  util::Ipv4Addr dns_service;
  std::set<util::Ipv4Addr> infra_services;
};

class Farm;

/// One independent experiment habitat: a packet router over a dedicated
/// VLAN range, its own containment server, sinks, and inmates.
class Subfarm {
 public:
  Subfarm(Farm& farm, gw::SubfarmRouter& router,
          std::unique_ptr<cs::ContainmentServer> cs,
          net::HostStack& cs_host, std::uint16_t vlan_first,
          std::uint16_t vlan_last);

  [[nodiscard]] const std::string& name() const {
    return router_.config().name;
  }
  [[nodiscard]] gw::SubfarmRouter& router() { return router_; }
  [[nodiscard]] cs::ContainmentServer& containment() { return *cs_; }
  [[nodiscard]] mal::BehaviorCatalog& catalog() { return catalog_; }
  [[nodiscard]] inm::VlanPool& vlan_pool() { return vlan_pool_; }

  /// Attach a catch-all sink on a fresh management host; registers the
  /// "sink" service for policies.
  sinks::CatchAllSink& add_catchall_sink(std::uint16_t port = 9999);

  /// Attach an SMTP sink; registers under `service_name` ("smtpsink" or
  /// "bannersmtpsink").
  sinks::SmtpSink& add_smtp_sink(sinks::SmtpSinkConfig config,
                                 std::string service_name = "smtpsink");

  /// Register the (virtual) auto-infection service endpoint — the
  /// containment server impersonates it via REWRITE (§6.6).
  void set_autoinfect(util::Endpoint endpoint);

  /// Apply a Figure 6 containment configuration file (to every member
  /// of the containment-server cluster).
  void configure_containment(const std::string& config_text);

  /// Grow the containment-server cluster by one member on a fresh
  /// management host (§7.2 scaling). The new member shares the primary
  /// server's sample library and receives subsequent
  /// configure_containment()/bind_policy() calls like the primary.
  cs::ContainmentServer& add_containment_server();

  /// Bind a policy instance on every cluster member.
  void bind_policy(std::uint16_t vlan_first, std::uint16_t vlan_last,
                   std::shared_ptr<cs::Policy> policy);

  /// Bind with precedence over every existing binding (first-match
  /// order): the per-job tenant-profile path.
  void bind_policy_front(std::uint16_t vlan_first, std::uint16_t vlan_last,
                         std::shared_ptr<cs::Policy> policy);

  /// All cluster members (primary first).
  [[nodiscard]] std::vector<cs::ContainmentServer*> containment_cluster();

  /// Create (and power on) an inmate; VLAN allocated from the pool
  /// unless given.
  inm::Inmate& create_inmate(inm::HostingKind hosting,
                             std::optional<std::uint16_t> vlan = {});

  [[nodiscard]] const std::vector<std::unique_ptr<inm::Inmate>>& inmates()
      const {
    return inmates_;
  }
  [[nodiscard]] sinks::CatchAllSink* catchall_sink() {
    return catchall_.get();
  }
  [[nodiscard]] sinks::SmtpSink* smtp_sink(const std::string& service) {
    auto it = smtp_sinks_.find(service);
    return it == smtp_sinks_.end() ? nullptr : it->second.get();
  }

  /// The PolicyEnv used when configuring containment (accumulates
  /// service registrations).
  [[nodiscard]] cs::PolicyEnv& policy_env() { return env_; }

  /// The management host the primary containment server runs on — the
  /// handle fault experiments use to impair or sever the CS link.
  [[nodiscard]] net::HostStack& containment_host() { return cs_host_; }

 private:
  friend class Farm;

  Farm& farm_;
  gw::SubfarmRouter& router_;
  std::unique_ptr<cs::ContainmentServer> cs_;
  std::vector<std::unique_ptr<cs::ContainmentServer>> extra_cs_;
  std::string last_config_text_;
  net::HostStack& cs_host_;
  inm::VlanPool vlan_pool_;
  mal::BehaviorCatalog catalog_;
  cs::InlinePolicyServices services_;  // env_.backend; enumerates inmates.
  cs::PolicyEnv env_;
  std::unique_ptr<sinks::CatchAllSink> catchall_;
  std::map<std::string, std::unique_ptr<sinks::SmtpSink>> smtp_sinks_;
  std::optional<util::Endpoint> autoinfect_;
  std::vector<std::unique_ptr<inm::Inmate>> inmates_;
};

class Farm {
 public:
  explicit Farm(FarmOptions options = {});
  ~Farm();

  Farm(const Farm&) = delete;
  Farm& operator=(const Farm&) = delete;

  [[nodiscard]] sim::EventLoop& loop() { return loop_; }
  [[nodiscard]] gw::Gateway& gateway() { return *gateway_; }
  [[nodiscard]] rep::Reporter& reporter() { return reporter_; }

  /// The farm-wide telemetry hub: every component (gateway routers,
  /// containment servers, sinks) publishes FarmEvents into its bus and
  /// counts into its metrics registry; the reporter is a subscriber.
  [[nodiscard]] obs::Telemetry& telemetry() { return telemetry_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() {
    return telemetry_.metrics();
  }
  [[nodiscard]] ext::Cbl& cbl() { return cbl_; }
  [[nodiscard]] inm::InmateController& controller() { return *controller_; }
  [[nodiscard]] util::Rng& rng() { return rng_; }

  /// Add a host to the simulated external Internet.
  net::HostStack& add_external_host(const std::string& name,
                                    util::Ipv4Addr addr);

  /// Add a host to the management/control network (address assigned
  /// from the management range).
  net::HostStack& add_mgmt_host(const std::string& name);

  /// Create a subfarm (VLAN range auto-allocated when not specified).
  Subfarm& add_subfarm(const std::string& name, SubfarmOptions options = {});

  [[nodiscard]] const std::vector<std::unique_ptr<Subfarm>>& subfarms()
      const {
    return subfarms_;
  }

  /// Advance simulated time.
  void run_for(util::Duration d) { loop_.run_for(d); }

  /// Apply a fault profile to BOTH directions of the link attached to
  /// `port` (the port and its peer). Each direction gets an independent
  /// fault-Rng seed drawn from the farm seed, and each direction's
  /// fault counters are mirrored into the farm metrics registry under
  /// "net.fault.<port-name>.". Pass an all-defaults profile to heal the
  /// link again.
  void set_link_faults(sim::Port& port, const sim::FaultProfile& profile);

  /// Render the current Figure 7 style activity report.
  [[nodiscard]] std::string report() { return reporter_.render(loop_.now()); }

  // --- Internal wiring helpers used by Subfarm ------------------------

  sim::Port& next_inmate_access_port(std::uint16_t vlan);
  util::Ipv4Addr next_mgmt_addr();
  std::uint64_t next_seed() { return rng_.next(); }

  /// Claim a free external-switch access port for cross-shard L2
  /// bridging (ShardedFarm connects it to a peer shard through the
  /// lockstep coordinator). The caller installs the bridge sink.
  sim::Port& claim_external_bridge_port();

 private:
  FarmOptions options_;
  sim::EventLoop loop_;
  util::Rng rng_;
  sim::VlanSwitch inmate_switch_;
  sim::VlanSwitch mgmt_switch_;
  sim::VlanSwitch external_switch_;
  obs::Telemetry telemetry_;  // Declared before its publishers below.
  std::unique_ptr<gw::Gateway> gateway_;
  rep::Reporter reporter_;
  ext::Cbl cbl_;
  std::vector<std::unique_ptr<net::HostStack>> hosts_;
  net::HostStack* controller_host_ = nullptr;
  std::unique_ptr<inm::InmateController> controller_;
  std::vector<std::unique_ptr<Subfarm>> subfarms_;
  std::size_t next_inmate_port_ = 0;
  std::size_t next_mgmt_port_ = 0;
  std::size_t next_external_port_ = 0;
  std::uint32_t next_mgmt_host_index_ = 10;
  std::uint16_t next_vlan_base_ = 16;
  int next_subfarm_index_ = 0;
};

}  // namespace gq::core
