#include "core/sharded_farm.h"

#include <algorithm>

#include "obs/events.h"
#include "util/rng.h"

namespace gq::core {

ShardedFarm::ShardedFarm(ShardedFarmOptions options,
                         const ShardBuilder& builder)
    : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  coordinator_ = std::make_unique<sim::LockstepCoordinator>(
      options_.threads, options_.mailbox_capacity);

  // Independent per-shard seed streams derived from the master seed:
  // shard 0 of a 4-shard farm and shard 0 of an 8-shard farm see the
  // same stream, and no shard shares state with another.
  util::Rng seeder(options_.seed);

  std::vector<std::size_t> domains;
  for (std::size_t s = 0; s < options_.shards; ++s) {
    FarmOptions fo;
    fo.seed = seeder.next();
    fo.mac_namespace = static_cast<std::uint32_t>(s) << 20;
    fo.subfarm_index_base = static_cast<int>(s) * 8;
    fo.gateway_upstream =
        util::Ipv4Addr(203, 0, 113, static_cast<std::uint8_t>(1 + s));
    fo.mgmt_net = util::Ipv4Net(
        util::Ipv4Addr(10, 3, static_cast<std::uint8_t>(s), 0), 24);
    fo.datapath = options_.datapath;
    fo.trace_archive = options_.trace_archive;
    farms_.push_back(std::make_unique<Farm>(fo));
    domains.push_back(coordinator_->add_domain(farms_.back()->loop()));

    auto capture = std::make_unique<ShardCapture>();
    capture->shard = s;
    ShardCapture* slot = capture.get();
    // Runs on the shard's worker thread; the per-shard buffer makes it
    // race-free (see header). Rendered eagerly so the stream reflects
    // the event exactly as published.
    farms_.back()->telemetry().bus().subscribe(
        [slot](const obs::FarmEvent& ev) {
          slot->events.push_back(
              CapturedEvent{ev.time.usec, obs::format_event(ev)});
        });
    captures_.push_back(std::move(capture));
  }

  // Chain bridging of the external switches: no L2 loops (the learning
  // switches run no spanning tree), and ARP floods traverse the whole
  // chain so every shard's simulated Internet is one broadcast domain.
  for (std::size_t s = 0; s + 1 < options_.shards; ++s) {
    sim::Port& left = farms_[s]->claim_external_bridge_port();
    sim::Port& right = farms_[s + 1]->claim_external_bridge_port();
    coordinator_->bridge(domains[s], left, domains[s + 1], right,
                         options_.cross_shard_latency);
  }

  if (builder) {
    for (std::size_t s = 0; s < options_.shards; ++s) {
      builder(*farms_[s], s);
    }
  }
}

ShardedFarm::~ShardedFarm() = default;

std::vector<std::string> ShardedFarm::merged_event_lines() const {
  struct Tagged {
    std::int64_t usec;
    std::size_t shard;
    const std::string* line;
  };
  std::vector<Tagged> all;
  for (const auto& capture : captures_) {
    for (const CapturedEvent& ev : capture->events) {
      all.push_back(Tagged{ev.usec, capture->shard, &ev.line});
    }
  }
  // (time, shard) with per-shard publication order preserved by the
  // stable sort — deterministic for any thread count because each
  // shard's own stream already is.
  std::stable_sort(all.begin(), all.end(),
                   [](const Tagged& a, const Tagged& b) {
                     if (a.usec != b.usec) return a.usec < b.usec;
                     return a.shard < b.shard;
                   });
  std::vector<std::string> lines;
  lines.reserve(all.size());
  for (const Tagged& t : all) {
    lines.push_back("s" + std::to_string(t.shard) + " " + *t.line);
  }
  return lines;
}

std::uint64_t ShardedFarm::event_count() const {
  std::uint64_t n = 0;
  for (const auto& capture : captures_) n += capture->events.size();
  return n;
}

}  // namespace gq::core
