// gq::core::ShardedFarm — parallel farm execution over subfarm shards
// (DESIGN.md §12). GQ's scaling unit is the subfarm: an independent
// containment domain with its own packet router, containment server,
// sinks, and VLAN range. A ShardedFarm instantiates one complete Farm
// replica per shard — each with its own EventLoop, gateway, telemetry,
// and Rng stream — and runs them on a sim::LockstepCoordinator worker
// pool. Shards share one simulated Internet: their external switches
// are L2-bridged in a chain through cross-domain mailbox links, so a
// host homed on shard 0 (a C&C server, say) is reachable from inmates
// on every shard, with the gateways' disjoint proxy-ARP ranges doing
// the routing.
//
// Per-shard namespaces keep the bridged segment coherent:
//   * MAC ids offset by shard << 20 (gateway legs + hosts) so the
//     bridged switches' MAC learning never sees a duplicate address,
//   * upstream addresses 203.0.113.<1+shard>,
//   * management nets 10.3.<shard>.0/24 (each gateway proxy-ARPs its
//     management range on the shared segment),
//   * subfarm index bases spaced by 8 so auto-assigned NAT external
//     ranges 198.<18+i>.0.0/24 are disjoint across shards.
//
// Determinism: with a fixed options.seed, run_for() produces
// bit-identical observable event streams (merged_event_lines) for ANY
// worker-thread count — the lockstep epoch/barrier discipline makes
// thread scheduling invisible. tests/shard_test.cc holds this as a
// differential gate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/farm.h"
#include "netsim/lockstep.h"

namespace gq::core {

struct ShardedFarmOptions {
  std::size_t shards = 4;
  /// Lockstep worker threads (clamped to the shard count); 1 runs every
  /// shard inline on the calling thread with identical results.
  unsigned threads = 1;
  std::uint64_t seed = 0x6071;
  /// One-way latency of the chain links bridging neighbouring shards'
  /// external switches. This is the conservative lookahead: the epoch
  /// length equals the minimum cross-shard latency, so a WAN-scale
  /// value keeps per-epoch compute large relative to barrier cost.
  util::Duration cross_shard_latency = util::milliseconds(10);
  /// Per-direction bound on frames parked at a bridge link per epoch.
  std::size_t mailbox_capacity = 65536;
  /// Applied to every shard's FarmOptions.
  gw::DatapathOptions datapath;
  trace::ArchiveConfig trace_archive;
};

class ShardedFarm {
 public:
  /// Called once per shard, after the shard farms and bridges exist, to
  /// populate subfarms/sinks/inmates. Everything the builder creates
  /// lives and dies with the shard's Farm; objects that must outlive
  /// the builder but die before the farm (e.g. ext::CcServer holding a
  /// host's HttpServer) belong in the caller's scope, created after the
  /// ShardedFarm and anchored on shard(i).
  using ShardBuilder = std::function<void(Farm& farm, std::size_t shard)>;

  ShardedFarm(ShardedFarmOptions options, const ShardBuilder& builder);
  ~ShardedFarm();

  ShardedFarm(const ShardedFarm&) = delete;
  ShardedFarm& operator=(const ShardedFarm&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return farms_.size(); }
  [[nodiscard]] Farm& shard(std::size_t i) { return *farms_.at(i); }
  [[nodiscard]] unsigned threads() const { return coordinator_->threads(); }
  [[nodiscard]] sim::LockstepStats lockstep_stats() const {
    return coordinator_->stats();
  }

  /// Advance all shards together in lockstep epochs.
  void run_for(util::Duration d) { coordinator_->run_for(d); }

  /// The canonical observable stream: every FarmEvent from every shard,
  /// rendered with obs::format_event, merged in (time, shard,
  /// per-shard seq) order. Byte-identical across worker-thread counts
  /// for the same seed — the differential gates compare exactly this.
  [[nodiscard]] std::vector<std::string> merged_event_lines() const;

  /// Total FarmEvents captured across shards.
  [[nodiscard]] std::uint64_t event_count() const;

 private:
  struct CapturedEvent {
    std::int64_t usec;
    std::string line;
  };
  /// Filled by the owning shard's worker thread during epochs; read only
  /// at barriers / after run_for returns (ordering via the coordinator's
  /// barrier mutex — see netsim/lockstep.h).
  struct ShardCapture {
    std::size_t shard = 0;
    std::vector<CapturedEvent> events;
  };

  ShardedFarmOptions options_;
  // Declaration order is teardown order in reverse and it matters:
  // coordinator_ dies first (joins workers, detaches bridge closures
  // from ports), farms_ next (their loops drop pending closures), and
  // captures_ last because bus subscriptions inside farms reference it.
  std::vector<std::unique_ptr<ShardCapture>> captures_;
  std::vector<std::unique_ptr<Farm>> farms_;
  std::unique_ptr<sim::LockstepCoordinator> coordinator_;
};

}  // namespace gq::core
