#include "packet/frame_view.h"

#include <cstring>

#include "packet/checksum.h"

namespace gq::pkt {

namespace {

constexpr std::size_t kEthHeader = 14;
constexpr std::size_t kVlanTag = 4;
constexpr std::size_t kTypeOffset = 12;

}  // namespace

std::optional<FrameView> FrameView::parse(std::span<std::uint8_t> bytes,
                                          ViewVerify verify) {
  if (bytes.size() < kEthHeader + 20) return std::nullopt;
  FrameView view;
  view.base_ = bytes.data();
  std::size_t l3 = kEthHeader;
  std::uint16_t ethertype = view.rd16(kTypeOffset);
  if (ethertype == kEtherTypeVlan) {
    if (bytes.size() < kEthHeader + kVlanTag + 20) return std::nullopt;
    view.vlan_ = view.rd16(kTypeOffset + 2) & 0x0FFF;
    ethertype = view.rd16(kTypeOffset + 4);
    l3 = kEthHeader + kVlanTag;
  }
  if (ethertype != kEtherTypeIpv4) return std::nullopt;
  view.l3_ = static_cast<std::uint16_t>(l3);

  // Canonical IPv4 header: version 4, IHL 5, DSCP/ECN zero, unfragmented,
  // and a total length that exactly covers the rest of the buffer (the
  // encoder never pads).
  if (view.base_[l3] != 0x45 || view.base_[l3 + 1] != 0) return std::nullopt;
  const std::uint16_t total_len = view.rd16(l3 + 2);
  if (view.rd16(l3 + 6) != 0) return std::nullopt;  // Flags/fragment.
  if (total_len < 20 || l3 + total_len != bytes.size()) return std::nullopt;
  view.proto_ = view.base_[l3 + 9];
  const std::size_t l4 = l3 + 20;
  const std::uint32_t l4_len = total_len - 20u;

  if (view.proto_ == kProtoTcp) {
    if (l4_len < 20) return std::nullopt;
    // Data offset 5, reserved bits zero, urgent pointer zero — exactly
    // what serialize_tcp emits.
    if (view.base_[l4 + 12] != 0x50) return std::nullopt;
    if (view.rd16(l4 + 18) != 0) return std::nullopt;
    view.l4_csum_ = static_cast<std::uint16_t>(l4 + 16);
    view.payload_len_ = l4_len - 20u;
  } else if (view.proto_ == kProtoUdp) {
    if (l4_len < 8) return std::nullopt;
    if (view.rd16(l4 + 4) != l4_len) return std::nullopt;  // UDP length.
    // A zero checksum means "none" (RFC 768); re-encoding would add one,
    // so such frames are not canonical.
    if (view.rd16(l4 + 6) == 0) return std::nullopt;
    view.l4_csum_ = static_cast<std::uint16_t>(l4 + 6);
    view.payload_len_ = l4_len - 8u;
  } else {
    return std::nullopt;
  }
  view.l4_ = static_cast<std::uint16_t>(l4);

  if (verify != ViewVerify::kNone) {
    if (checksum(bytes.subspan(l3, 20)) != 0) return std::nullopt;
    if (verify == ViewVerify::kFull) {
      const auto segment = bytes.subspan(l4, l4_len);
      const std::uint16_t csum =
          l4_checksum(view.ip_src(), view.ip_dst(), view.proto_, segment);
      if (csum != 0) return std::nullopt;
    }
  }
  return view;
}

void FrameView::wr_mac(std::size_t at, const util::MacAddr& mac) {
  std::memcpy(base_ + at, mac.bytes().data(), 6);
}

void FrameView::l4_csum_update32(std::uint32_t old_word,
                                 std::uint32_t new_word) {
  std::uint16_t csum = checksum_update32(rd16(l4_csum_), old_word, new_word);
  // serialize_udp maps a computed zero to 0xFFFF (RFC 768); mirror it so
  // the fast path stays byte-identical to a re-encode.
  if (proto_ == kProtoUdp && csum == 0) csum = 0xFFFF;
  wr16(l4_csum_, csum);
}

void FrameView::set_ip_addr(std::size_t at, util::Ipv4Addr addr) {
  const std::uint32_t old_word = rd32(at);
  const std::uint32_t new_word = addr.value();
  if (old_word == new_word) return;
  wr32(at, new_word);
  // The address is covered by both the IP header checksum and the L4
  // pseudo-header checksum.
  wr16(l3_ + 10, checksum_update32(rd16(l3_ + 10), old_word, new_word));
  l4_csum_update32(old_word, new_word);
}

void FrameView::set_l4_u16(std::size_t at, std::uint16_t v) {
  const std::uint16_t old_word = rd16(at);
  if (old_word == v) return;
  wr16(at, v);
  l4_csum_update32(old_word, v);
}

void FrameView::set_l4_u32(std::size_t at, std::uint32_t v) {
  const std::uint32_t old_word = rd32(at);
  if (old_word == v) return;
  wr32(at, v);
  l4_csum_update32(old_word, v);
}

std::optional<std::uint16_t> vlan_vid_of(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kEthHeader + kVlanTag) return std::nullopt;
  const std::uint16_t type = static_cast<std::uint16_t>(
      (bytes[kTypeOffset] << 8) | bytes[kTypeOffset + 1]);
  if (type != kEtherTypeVlan) return std::nullopt;
  return static_cast<std::uint16_t>(
      ((bytes[kTypeOffset + 2] << 8) | bytes[kTypeOffset + 3]) & 0x0FFF);
}

std::optional<util::Ipv4Addr> ipv4_dst_of(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kEthHeader + 20) return std::nullopt;
  const std::uint16_t type = static_cast<std::uint16_t>(
      (bytes[kTypeOffset] << 8) | bytes[kTypeOffset + 1]);
  if (type != kEtherTypeIpv4) return std::nullopt;
  const std::size_t at = kEthHeader + 16;
  return util::Ipv4Addr((static_cast<std::uint32_t>(bytes[at]) << 24) |
                        (static_cast<std::uint32_t>(bytes[at + 1]) << 16) |
                        (static_cast<std::uint32_t>(bytes[at + 2]) << 8) |
                        static_cast<std::uint32_t>(bytes[at + 3]));
}

void strip_vlan_tag(std::vector<std::uint8_t>& bytes) {
  if (!vlan_vid_of(bytes)) return;
  bytes.erase(bytes.begin() + kTypeOffset,
              bytes.begin() + kTypeOffset + kVlanTag);
}

void insert_vlan_tag(std::vector<std::uint8_t>& bytes, std::uint16_t vlan) {
  const std::uint8_t tag[kVlanTag] = {
      kEtherTypeVlan >> 8, kEtherTypeVlan & 0xFF,
      static_cast<std::uint8_t>((vlan & 0x0FFF) >> 8),
      static_cast<std::uint8_t>(vlan)};
  bytes.insert(bytes.begin() + kTypeOffset, tag, tag + kVlanTag);
}

}  // namespace gq::pkt
