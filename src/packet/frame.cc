#include "packet/frame.h"

#include "util/strings.h"

namespace gq::pkt {

std::uint16_t DecodedFrame::src_port() const {
  if (tcp) return tcp->src_port;
  if (udp) return udp->src_port;
  return 0;
}

std::uint16_t DecodedFrame::dst_port() const {
  if (tcp) return tcp->dst_port;
  if (udp) return udp->dst_port;
  return 0;
}

std::vector<std::uint8_t> DecodedFrame::encode() const {
  if (arp) return serialize_eth(eth, serialize_arp(*arp));
  if (ip) {
    Ipv4Packet copy = *ip;
    if (tcp) {
      copy.protocol = kProtoTcp;
      copy.payload = serialize_tcp(copy.src, copy.dst, *tcp);
    } else if (udp) {
      copy.protocol = kProtoUdp;
      copy.payload = serialize_udp(copy.src, copy.dst, *udp);
    } else if (icmp) {
      copy.protocol = kProtoIcmp;
      copy.payload = serialize_icmp(*icmp);
    }
    return serialize_eth(eth, serialize_ipv4(copy));
  }
  return serialize_eth(eth, {});
}

std::string DecodedFrame::summary() const {
  if (arp) {
    return util::format(
        "ARP %s %s -> %s",
        arp->op == ArpMessage::Op::kRequest ? "who-has" : "is-at",
        arp->sender_ip.str().c_str(), arp->target_ip.str().c_str());
  }
  if (ip && tcp) {
    std::string flags;
    if (tcp->syn()) flags += 'S';
    if (tcp->fin()) flags += 'F';
    if (tcp->rst()) flags += 'R';
    if (tcp->has_ack()) flags += 'A';
    return util::format("%s:%u > %s:%u TCP %s len=%zu", ip->src.str().c_str(),
                        tcp->src_port, ip->dst.str().c_str(), tcp->dst_port,
                        flags.c_str(), tcp->payload.size());
  }
  if (ip && udp) {
    return util::format("%s:%u > %s:%u UDP len=%zu", ip->src.str().c_str(),
                        udp->src_port, ip->dst.str().c_str(), udp->dst_port,
                        udp->payload.size());
  }
  if (ip) {
    return util::format("%s > %s proto=%u", ip->src.str().c_str(),
                        ip->dst.str().c_str(), ip->protocol);
  }
  return "eth frame";
}

std::optional<DecodedFrame> decode_frame(
    std::span<const std::uint8_t> bytes) {
  std::span<const std::uint8_t> payload;
  auto eth = parse_eth(bytes, &payload);
  if (!eth) return std::nullopt;
  DecodedFrame frame;
  frame.eth = *eth;
  if (eth->ethertype == kEtherTypeArp) {
    frame.arp = parse_arp(payload);
  } else if (eth->ethertype == kEtherTypeIpv4) {
    frame.ip = parse_ipv4(payload);
    if (frame.ip) {
      if (frame.ip->protocol == kProtoTcp) {
        frame.tcp = parse_tcp(frame.ip->src, frame.ip->dst, frame.ip->payload);
      } else if (frame.ip->protocol == kProtoUdp) {
        frame.udp = parse_udp(frame.ip->src, frame.ip->dst, frame.ip->payload);
      } else if (frame.ip->protocol == kProtoIcmp) {
        frame.icmp = parse_icmp(frame.ip->payload);
      }
    }
  }
  return frame;
}

std::string FlowKey::str() const {
  return util::format("%s > %s/%s", src.str().c_str(), dst.str().c_str(),
                      proto == FlowProto::kTcp ? "tcp" : "udp");
}

std::optional<FlowKey> flow_key_of(const DecodedFrame& frame) {
  if (!frame.ip) return std::nullopt;
  if (frame.tcp) {
    return FlowKey{FlowProto::kTcp,
                   {frame.ip->src, frame.tcp->src_port},
                   {frame.ip->dst, frame.tcp->dst_port}};
  }
  if (frame.udp) {
    return FlowKey{FlowProto::kUdp,
                   {frame.ip->src, frame.udp->src_port},
                   {frame.ip->dst, frame.udp->dst_port}};
  }
  return std::nullopt;
}

}  // namespace gq::pkt
