// Wire-format constants and mutable header representations for the
// protocols GQ's data path speaks: Ethernet (+802.1Q), ARP, IPv4, TCP,
// UDP, ICMP. The gateway parses frames into these structs, rewrites
// fields (NAT, sequence bumping, redirection), and re-serializes; all
// checksums are recomputed on serialization.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/addr.h"

namespace gq::pkt {

// EtherTypes.
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;
inline constexpr std::uint16_t kEtherTypeVlan = 0x8100;

// IPv4 protocol numbers.
inline constexpr std::uint8_t kProtoIcmp = 1;
inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;

// TCP flag bits.
inline constexpr std::uint8_t kTcpFin = 0x01;
inline constexpr std::uint8_t kTcpSyn = 0x02;
inline constexpr std::uint8_t kTcpRst = 0x04;
inline constexpr std::uint8_t kTcpPsh = 0x08;
inline constexpr std::uint8_t kTcpAck = 0x10;

/// Ethernet header; `vlan` present iff the frame carries an 802.1Q tag.
/// GQ identifies inmates by VLAN ID (§5.2), so the tag is first-class.
struct EthHeader {
  util::MacAddr dst;
  util::MacAddr src;
  std::optional<std::uint16_t> vlan;  // 12-bit VID.
  std::uint16_t ethertype = 0;        // Inner ethertype (after any tag).
};

/// ARP request/reply (IPv4 over Ethernet only).
struct ArpMessage {
  enum class Op : std::uint16_t { kRequest = 1, kReply = 2 };
  Op op = Op::kRequest;
  util::MacAddr sender_mac;
  util::Ipv4Addr sender_ip;
  util::MacAddr target_mac;
  util::Ipv4Addr target_ip;
};

/// IPv4 header (no options) + payload ownership.
struct Ipv4Packet {
  util::Ipv4Addr src;
  util::Ipv4Addr dst;
  std::uint8_t protocol = 0;
  std::uint8_t ttl = 64;
  std::uint16_t ident = 0;
  std::vector<std::uint8_t> payload;
};

/// TCP segment (header without options + payload).
struct TcpSegment {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] bool syn() const { return flags & kTcpSyn; }
  [[nodiscard]] bool fin() const { return flags & kTcpFin; }
  [[nodiscard]] bool rst() const { return flags & kTcpRst; }
  [[nodiscard]] bool has_ack() const { return flags & kTcpAck; }
};

/// UDP datagram.
struct UdpDatagram {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::vector<std::uint8_t> payload;
};

/// ICMP message (echo and unreachable are what the farm uses).
struct IcmpMessage {
  std::uint8_t type = 0;
  std::uint8_t code = 0;
  std::uint16_t ident = 0;
  std::uint16_t sequence = 0;
  std::vector<std::uint8_t> payload;
};

// --- Serialization -------------------------------------------------------

/// Serialize an Ethernet frame: header (+optional 802.1Q tag) + payload.
std::vector<std::uint8_t> serialize_eth(const EthHeader& eth,
                                        std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> serialize_arp(const ArpMessage& arp);

/// Serialize IPv4 header + payload with correct header checksum.
std::vector<std::uint8_t> serialize_ipv4(const Ipv4Packet& ip);

/// Serialize a TCP segment with a correct pseudo-header checksum; the
/// src/dst addresses are those of the enclosing IPv4 packet.
std::vector<std::uint8_t> serialize_tcp(util::Ipv4Addr src, util::Ipv4Addr dst,
                                        const TcpSegment& tcp);

std::vector<std::uint8_t> serialize_udp(util::Ipv4Addr src, util::Ipv4Addr dst,
                                        const UdpDatagram& udp);

std::vector<std::uint8_t> serialize_icmp(const IcmpMessage& icmp);

// --- Parsing -------------------------------------------------------------
// Parsers return nullopt on truncated or malformed input; checksums are
// verified where `verify_checksums` is requested (the simulator always
// produces valid checksums, but the gateway verifies defensively).

std::optional<EthHeader> parse_eth(std::span<const std::uint8_t> frame,
                                   std::span<const std::uint8_t>* payload);

std::optional<ArpMessage> parse_arp(std::span<const std::uint8_t> data);

std::optional<Ipv4Packet> parse_ipv4(std::span<const std::uint8_t> data,
                                     bool verify_checksum = true);

std::optional<TcpSegment> parse_tcp(util::Ipv4Addr src, util::Ipv4Addr dst,
                                    std::span<const std::uint8_t> data,
                                    bool verify_checksum = true);

std::optional<UdpDatagram> parse_udp(util::Ipv4Addr src, util::Ipv4Addr dst,
                                     std::span<const std::uint8_t> data,
                                     bool verify_checksum = true);

std::optional<IcmpMessage> parse_icmp(std::span<const std::uint8_t> data);

}  // namespace gq::pkt
