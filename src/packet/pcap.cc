#include "packet/pcap.h"

#include <algorithm>
#include <cstdio>

namespace gq::pkt {

namespace {

// pcap files are conventionally little-endian with magic 0xA1B2C3D4.
void put_u16le(std::vector<std::uint8_t>& buf, std::uint16_t v) {
  buf.push_back(static_cast<std::uint8_t>(v));
  buf.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32le(std::vector<std::uint8_t>& buf, std::uint32_t v) {
  buf.push_back(static_cast<std::uint8_t>(v));
  buf.push_back(static_cast<std::uint8_t>(v >> 8));
  buf.push_back(static_cast<std::uint8_t>(v >> 16));
  buf.push_back(static_cast<std::uint8_t>(v >> 24));
}

}  // namespace

PcapWriter::PcapWriter() {
  put_u32le(buf_, 0xA1B2C3D4u);  // Magic (microsecond timestamps).
  put_u16le(buf_, 2);            // Version major.
  put_u16le(buf_, 4);            // Version minor.
  put_u32le(buf_, 0);            // Timezone offset.
  put_u32le(buf_, 0);            // Timestamp accuracy.
  put_u32le(buf_, kPcapSnapLen); // Snap length.
  put_u32le(buf_, 1);            // LINKTYPE_ETHERNET.
}

void PcapWriter::record(util::TimePoint at,
                        std::span<const std::uint8_t> frame) {
  const auto usec_total = static_cast<std::uint64_t>(at.usec);
  const auto orig_len = static_cast<std::uint32_t>(frame.size());
  const std::uint32_t incl_len = std::min(orig_len, kPcapSnapLen);
  put_u32le(buf_, static_cast<std::uint32_t>(usec_total / 1'000'000));
  put_u32le(buf_, static_cast<std::uint32_t>(usec_total % 1'000'000));
  put_u32le(buf_, incl_len);
  put_u32le(buf_, orig_len);
  buf_.insert(buf_.end(), frame.begin(), frame.begin() + incl_len);
  ++packet_count_;
}

std::vector<PcapRecord> parse_pcap(std::span<const std::uint8_t> data) {
  std::vector<PcapRecord> records;
  auto u32le = [&](std::size_t at) -> std::uint32_t {
    return data[at] | (data[at + 1] << 8) | (data[at + 2] << 16) |
           (static_cast<std::uint32_t>(data[at + 3]) << 24);
  };
  if (data.size() < kPcapFileHeaderSize || u32le(0) != 0xA1B2C3D4u)
    return records;
  std::size_t at = kPcapFileHeaderSize;
  while (at + kPcapRecordHeaderSize <= data.size()) {
    const std::uint64_t sec = u32le(at);
    const std::uint64_t usec = u32le(at + 4);
    const std::uint32_t incl_len = u32le(at + 8);
    const std::uint32_t orig_len = u32le(at + 12);
    // A caplen above the declared snap length, or above the original
    // wire length, is structurally invalid: record framing after this
    // point cannot be trusted, so stop and return the valid prefix.
    if (incl_len > kPcapSnapLen || incl_len > orig_len) break;
    at += kPcapRecordHeaderSize;
    // Truncated mid-record: return every complete record before the cut.
    if (at + incl_len > data.size()) break;
    PcapRecord record;
    record.time.usec = static_cast<std::int64_t>(sec * 1'000'000 + usec);
    record.orig_len = orig_len;
    record.frame.assign(
        data.begin() + static_cast<std::ptrdiff_t>(at),
        data.begin() + static_cast<std::ptrdiff_t>(at + incl_len));
    records.push_back(std::move(record));
    at += incl_len;
  }
  return records;
}

bool PcapWriter::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok =
      std::fwrite(buf_.data(), 1, buf_.size(), f) == buf_.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace gq::pkt
