#include "packet/headers.h"

#include "packet/checksum.h"
#include "util/bytes.h"

namespace gq::pkt {

using util::ByteReader;
using util::ByteWriter;

namespace {

void write_mac(ByteWriter& w, util::MacAddr mac) {
  w.bytes(std::span<const std::uint8_t>(mac.bytes().data(), 6));
}

util::MacAddr read_mac(ByteReader& r) {
  auto b = r.bytes(6);
  std::array<std::uint8_t, 6> arr;
  std::copy(b.begin(), b.end(), arr.begin());
  return util::MacAddr(arr);
}

}  // namespace

std::vector<std::uint8_t> serialize_eth(
    const EthHeader& eth, std::span<const std::uint8_t> payload) {
  ByteWriter w(18 + payload.size());
  write_mac(w, eth.dst);
  write_mac(w, eth.src);
  if (eth.vlan) {
    w.u16(kEtherTypeVlan);
    w.u16(*eth.vlan & 0x0FFF);  // PCP/DEI zero.
  }
  w.u16(eth.ethertype);
  w.bytes(payload);
  return w.take();
}

std::optional<EthHeader> parse_eth(std::span<const std::uint8_t> frame,
                                   std::span<const std::uint8_t>* payload) {
  try {
    ByteReader r(frame);
    EthHeader eth;
    eth.dst = read_mac(r);
    eth.src = read_mac(r);
    std::uint16_t type = r.u16();
    if (type == kEtherTypeVlan) {
      eth.vlan = r.u16() & 0x0FFF;
      type = r.u16();
    }
    eth.ethertype = type;
    if (payload) *payload = r.rest();
    return eth;
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> serialize_arp(const ArpMessage& arp) {
  ByteWriter w(28);
  w.u16(1);                       // HTYPE: Ethernet.
  w.u16(kEtherTypeIpv4);          // PTYPE: IPv4.
  w.u8(6);                        // HLEN.
  w.u8(4);                        // PLEN.
  w.u16(static_cast<std::uint16_t>(arp.op));
  write_mac(w, arp.sender_mac);
  w.u32(arp.sender_ip.value());
  write_mac(w, arp.target_mac);
  w.u32(arp.target_ip.value());
  return w.take();
}

std::optional<ArpMessage> parse_arp(std::span<const std::uint8_t> data) {
  try {
    ByteReader r(data);
    if (r.u16() != 1 || r.u16() != kEtherTypeIpv4) return std::nullopt;
    if (r.u8() != 6 || r.u8() != 4) return std::nullopt;
    ArpMessage arp;
    const std::uint16_t op = r.u16();
    if (op != 1 && op != 2) return std::nullopt;
    arp.op = static_cast<ArpMessage::Op>(op);
    arp.sender_mac = read_mac(r);
    arp.sender_ip = util::Ipv4Addr(r.u32());
    arp.target_mac = read_mac(r);
    arp.target_ip = util::Ipv4Addr(r.u32());
    return arp;
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> serialize_ipv4(const Ipv4Packet& ip) {
  ByteWriter w(20 + ip.payload.size());
  w.u8(0x45);  // Version 4, IHL 5.
  w.u8(0);     // DSCP/ECN.
  w.u16(static_cast<std::uint16_t>(20 + ip.payload.size()));
  w.u16(ip.ident);
  w.u16(0);  // Flags/fragment offset: never fragmented by the simulator.
  w.u8(ip.ttl);
  w.u8(ip.protocol);
  w.u16(0);  // Checksum placeholder.
  w.u32(ip.src.value());
  w.u32(ip.dst.value());
  const std::uint16_t csum = checksum(w.view().subspan(0, 20));
  w.patch_u16(10, csum);
  w.bytes(ip.payload);
  return w.take();
}

std::optional<Ipv4Packet> parse_ipv4(std::span<const std::uint8_t> data,
                                     bool verify_checksum) {
  try {
    ByteReader r(data);
    const std::uint8_t ver_ihl = r.u8();
    if ((ver_ihl >> 4) != 4) return std::nullopt;
    const std::size_t header_len = (ver_ihl & 0x0F) * 4u;
    if (header_len < 20 || data.size() < header_len) return std::nullopt;
    r.skip(1);  // DSCP.
    const std::uint16_t total_len = r.u16();
    if (total_len < header_len || total_len > data.size())
      return std::nullopt;
    Ipv4Packet ip;
    ip.ident = r.u16();
    r.skip(2);  // Flags/fragment.
    ip.ttl = r.u8();
    ip.protocol = r.u8();
    r.skip(2);  // Checksum (verified over the whole header below).
    ip.src = util::Ipv4Addr(r.u32());
    ip.dst = util::Ipv4Addr(r.u32());
    if (verify_checksum && checksum(data.subspan(0, header_len)) != 0)
      return std::nullopt;
    ip.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(header_len),
                      data.begin() + total_len);
    return ip;
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> serialize_tcp(util::Ipv4Addr src, util::Ipv4Addr dst,
                                        const TcpSegment& tcp) {
  ByteWriter w(20 + tcp.payload.size());
  w.u16(tcp.src_port);
  w.u16(tcp.dst_port);
  w.u32(tcp.seq);
  w.u32(tcp.ack);
  w.u8(0x50);  // Data offset 5 words, no options.
  w.u8(tcp.flags);
  w.u16(tcp.window);
  w.u16(0);  // Checksum placeholder.
  w.u16(0);  // Urgent pointer.
  w.bytes(tcp.payload);
  const std::uint16_t csum = l4_checksum(src, dst, kProtoTcp, w.view());
  w.patch_u16(16, csum);
  return w.take();
}

std::optional<TcpSegment> parse_tcp(util::Ipv4Addr src, util::Ipv4Addr dst,
                                    std::span<const std::uint8_t> data,
                                    bool verify_checksum) {
  try {
    if (verify_checksum && l4_checksum(src, dst, kProtoTcp, data) != 0)
      return std::nullopt;
    ByteReader r(data);
    TcpSegment tcp;
    tcp.src_port = r.u16();
    tcp.dst_port = r.u16();
    tcp.seq = r.u32();
    tcp.ack = r.u32();
    const std::uint8_t offset_words = r.u8() >> 4;
    const std::size_t header_len = offset_words * 4u;
    if (header_len < 20 || header_len > data.size()) return std::nullopt;
    tcp.flags = r.u8();
    tcp.window = r.u16();
    r.skip(4);  // Checksum + urgent pointer.
    auto payload = data.subspan(header_len);
    tcp.payload.assign(payload.begin(), payload.end());
    return tcp;
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> serialize_udp(util::Ipv4Addr src, util::Ipv4Addr dst,
                                        const UdpDatagram& udp) {
  ByteWriter w(8 + udp.payload.size());
  w.u16(udp.src_port);
  w.u16(udp.dst_port);
  w.u16(static_cast<std::uint16_t>(8 + udp.payload.size()));
  w.u16(0);  // Checksum placeholder.
  w.bytes(udp.payload);
  std::uint16_t csum = l4_checksum(src, dst, kProtoUdp, w.view());
  if (csum == 0) csum = 0xFFFF;  // RFC 768: zero is "no checksum".
  w.patch_u16(6, csum);
  return w.take();
}

std::optional<UdpDatagram> parse_udp(util::Ipv4Addr src, util::Ipv4Addr dst,
                                     std::span<const std::uint8_t> data,
                                     bool verify_checksum) {
  try {
    ByteReader r(data);
    UdpDatagram udp;
    udp.src_port = r.u16();
    udp.dst_port = r.u16();
    const std::uint16_t len = r.u16();
    if (len < 8 || len > data.size()) return std::nullopt;
    const std::uint16_t wire_csum = r.u16();
    if (verify_checksum && wire_csum != 0 &&
        l4_checksum(src, dst, kProtoUdp, data.subspan(0, len)) != 0)
      return std::nullopt;
    auto payload = data.subspan(8, len - 8);
    udp.payload.assign(payload.begin(), payload.end());
    return udp;
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> serialize_icmp(const IcmpMessage& icmp) {
  ByteWriter w(8 + icmp.payload.size());
  w.u8(icmp.type);
  w.u8(icmp.code);
  w.u16(0);  // Checksum placeholder.
  w.u16(icmp.ident);
  w.u16(icmp.sequence);
  w.bytes(icmp.payload);
  w.patch_u16(2, checksum(w.view()));
  return w.take();
}

std::optional<IcmpMessage> parse_icmp(std::span<const std::uint8_t> data) {
  try {
    if (checksum(data) != 0) return std::nullopt;
    ByteReader r(data);
    IcmpMessage icmp;
    icmp.type = r.u8();
    icmp.code = r.u8();
    r.skip(2);
    icmp.ident = r.u16();
    icmp.sequence = r.u16();
    auto payload = r.rest();
    icmp.payload.assign(payload.begin(), payload.end());
    return icmp;
  } catch (const util::BufferUnderflow&) {
    return std::nullopt;
  }
}

}  // namespace gq::pkt
