// Zero-copy view over one raw IPv4/TCP|UDP Ethernet frame: locates the
// L2/L3/L4 header offsets over the wire bytes without copying anything,
// exposes read accessors for the fields the gateway's flow tables key
// on, and provides in-place setters for the NAT-rewrite fields (src/dst
// address, ports, TCP seq/ack) that maintain the IPv4 header checksum
// and the L4 pseudo-header checksum incrementally per RFC 1624 instead
// of recomputing over the payload.
//
// The view only accepts *canonical* frames — the exact shape
// DecodedFrame::encode() produces (IHL 5, DSCP/ECN 0, unfragmented,
// TCP data offset 5 with zero reserved bits and urgent pointer, UDP
// length consistent and checksum nonzero, no trailing padding). For a
// canonical frame, rewriting through the view is byte-identical to the
// decode → mutate → encode slow path; anything else fails to parse and
// must take the slow path.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "packet/frame.h"
#include "packet/headers.h"
#include "util/addr.h"

namespace gq::pkt {

/// How much of the frame FrameView::parse verifies. The gateway's fast
/// path uses kIpHeader — like a hardware router it checks the 20-byte IP
/// header checksum but does not scan the payload; kFull additionally
/// verifies the L4 checksum (tests, defensive callers).
enum class ViewVerify { kNone, kIpHeader, kFull };

class FrameView {
 public:
  /// Locate header offsets over `bytes` (untagged or single 802.1Q tag).
  /// Returns nullopt for non-IPv4, non-TCP/UDP, or non-canonical frames.
  /// The view aliases `bytes` and is invalidated by any resize of the
  /// underlying buffer.
  static std::optional<FrameView> parse(
      std::span<std::uint8_t> bytes,
      ViewVerify verify = ViewVerify::kIpHeader);

  // --- Read accessors ---------------------------------------------------
  [[nodiscard]] std::optional<std::uint16_t> vlan() const { return vlan_; }
  [[nodiscard]] bool is_tcp() const { return proto_ == kProtoTcp; }
  [[nodiscard]] bool is_udp() const { return proto_ == kProtoUdp; }
  [[nodiscard]] FlowProto proto() const {
    return proto_ == kProtoTcp ? FlowProto::kTcp : FlowProto::kUdp;
  }
  [[nodiscard]] util::Ipv4Addr ip_src() const {
    return util::Ipv4Addr(rd32(l3_ + 12));
  }
  [[nodiscard]] util::Ipv4Addr ip_dst() const {
    return util::Ipv4Addr(rd32(l3_ + 16));
  }
  [[nodiscard]] std::uint16_t src_port() const { return rd16(l4_); }
  [[nodiscard]] std::uint16_t dst_port() const { return rd16(l4_ + 2); }
  [[nodiscard]] std::uint32_t tcp_seq() const { return rd32(l4_ + 4); }
  [[nodiscard]] std::uint32_t tcp_ack() const { return rd32(l4_ + 8); }
  [[nodiscard]] std::uint8_t tcp_flags() const { return base_[l4_ + 13]; }
  [[nodiscard]] bool tcp_syn() const { return tcp_flags() & kTcpSyn; }
  [[nodiscard]] bool tcp_fin() const { return tcp_flags() & kTcpFin; }
  [[nodiscard]] bool tcp_rst() const { return tcp_flags() & kTcpRst; }
  [[nodiscard]] bool tcp_has_ack() const { return tcp_flags() & kTcpAck; }
  /// L4 payload length (TCP payload bytes / UDP datagram payload bytes).
  [[nodiscard]] std::uint32_t payload_len() const { return payload_len_; }

  /// The directional flow key of this frame, extracted in place.
  [[nodiscard]] FlowKey flow_key() const {
    return FlowKey{proto(), {ip_src(), src_port()}, {ip_dst(), dst_port()}};
  }

  // --- In-place rewrite (checksums maintained incrementally) -----------
  void set_eth_src(const util::MacAddr& mac) { wr_mac(6, mac); }
  void set_eth_dst(const util::MacAddr& mac) { wr_mac(0, mac); }
  void set_ip_src(util::Ipv4Addr addr) { set_ip_addr(l3_ + 12, addr); }
  void set_ip_dst(util::Ipv4Addr addr) { set_ip_addr(l3_ + 16, addr); }
  void set_src_port(std::uint16_t port) { set_l4_u16(l4_, port); }
  void set_dst_port(std::uint16_t port) { set_l4_u16(l4_ + 2, port); }
  void set_tcp_seq(std::uint32_t seq) { set_l4_u32(l4_ + 4, seq); }
  void set_tcp_ack(std::uint32_t ack) { set_l4_u32(l4_ + 8, ack); }

 private:
  [[nodiscard]] std::uint16_t rd16(std::size_t at) const {
    return static_cast<std::uint16_t>((base_[at] << 8) | base_[at + 1]);
  }
  [[nodiscard]] std::uint32_t rd32(std::size_t at) const {
    return (static_cast<std::uint32_t>(base_[at]) << 24) |
           (static_cast<std::uint32_t>(base_[at + 1]) << 16) |
           (static_cast<std::uint32_t>(base_[at + 2]) << 8) |
           static_cast<std::uint32_t>(base_[at + 3]);
  }
  void wr16(std::size_t at, std::uint16_t v) {
    base_[at] = static_cast<std::uint8_t>(v >> 8);
    base_[at + 1] = static_cast<std::uint8_t>(v);
  }
  void wr32(std::size_t at, std::uint32_t v) {
    wr16(at, static_cast<std::uint16_t>(v >> 16));
    wr16(at + 2, static_cast<std::uint16_t>(v));
  }
  void wr_mac(std::size_t at, const util::MacAddr& mac);

  void set_ip_addr(std::size_t at, util::Ipv4Addr addr);
  void set_l4_u16(std::size_t at, std::uint16_t v);
  void set_l4_u32(std::size_t at, std::uint32_t v);
  /// Apply an incremental delta to the L4 checksum (UDP zero-checksum
  /// convention preserved).
  void l4_csum_update32(std::uint32_t old_word, std::uint32_t new_word);

  std::uint8_t* base_ = nullptr;
  std::uint16_t l3_ = 0;        ///< Offset of the IPv4 header.
  std::uint16_t l4_ = 0;        ///< Offset of the TCP/UDP header.
  std::uint16_t l4_csum_ = 0;   ///< Offset of the L4 checksum field.
  std::uint32_t payload_len_ = 0;
  std::uint8_t proto_ = 0;
  std::optional<std::uint16_t> vlan_;
};

/// Peek the 802.1Q VID of a raw frame without building a view (nullopt
/// when untagged or truncated).
std::optional<std::uint16_t> vlan_vid_of(
    std::span<const std::uint8_t> bytes);

/// Peek the IPv4 destination of a raw untagged frame (nullopt when not
/// IPv4 or truncated). Used by ingress dispatch before any decode.
std::optional<util::Ipv4Addr> ipv4_dst_of(
    std::span<const std::uint8_t> bytes);

/// Strip the 802.1Q tag in place (no-op when untagged). The buffer
/// shrinks by four bytes; capacity is retained, so a later re-tag via
/// `insert_vlan_tag` cannot reallocate.
void strip_vlan_tag(std::vector<std::uint8_t>& bytes);

/// Insert an 802.1Q tag in place (PCP/DEI zero).
void insert_vlan_tag(std::vector<std::uint8_t>& bytes, std::uint16_t vlan);

}  // namespace gq::pkt
