// RFC 1071 Internet checksum, plus the TCP/UDP pseudo-header variant.
#pragma once

#include <cstdint>
#include <span>

#include "util/addr.h"

namespace gq::pkt {

/// One's-complement sum of 16-bit words over `data` (odd trailing byte
/// padded with zero), folded and complemented.
std::uint16_t checksum(std::span<const std::uint8_t> data);

/// Checksum of a TCP or UDP segment including the IPv4 pseudo-header
/// (src, dst, zero, protocol, length).
std::uint16_t l4_checksum(util::Ipv4Addr src, util::Ipv4Addr dst,
                          std::uint8_t protocol,
                          std::span<const std::uint8_t> segment);

}  // namespace gq::pkt
