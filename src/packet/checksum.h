// RFC 1071 Internet checksum, plus the TCP/UDP pseudo-header variant and
// the RFC 1624 incremental-update primitive used by the zero-copy NAT
// rewrite path (see packet/frame_view.h).
#pragma once

#include <cstdint>
#include <span>

#include "util/addr.h"

namespace gq::pkt {

/// One's-complement sum of 16-bit words over `data` (odd trailing byte
/// padded with zero), folded and complemented. Accumulates a machine
/// word at a time; `checksum_reference` is the byte-pair scalar version.
std::uint16_t checksum(std::span<const std::uint8_t> data);

/// Scalar byte-pair reference implementation of `checksum`. Kept as the
/// oracle the word-at-a-time version is tested against.
std::uint16_t checksum_reference(std::span<const std::uint8_t> data);

/// Checksum of a TCP or UDP segment including the IPv4 pseudo-header
/// (src, dst, zero, protocol, length).
std::uint16_t l4_checksum(util::Ipv4Addr src, util::Ipv4Addr dst,
                          std::uint8_t protocol,
                          std::span<const std::uint8_t> segment);

/// RFC 1624 (eqn. 3) incremental update: the stored checksum `csum` of a
/// buffer in which a 16-bit word changed from `old_word` to `new_word`.
/// Matches a full recompute bit-for-bit for any reachable input (the
/// 0x0000/0xFFFF representations only diverge for all-zero data, which
/// no IPv4/TCP/UDP header can be).
constexpr std::uint16_t checksum_update(std::uint16_t csum,
                                        std::uint16_t old_word,
                                        std::uint16_t new_word) {
  std::uint32_t acc = static_cast<std::uint16_t>(~csum);
  acc += static_cast<std::uint16_t>(~old_word);
  acc += new_word;
  while (acc >> 16) acc = (acc & 0xFFFF) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc);
}

/// Incremental update for a changed 32-bit field (two word updates).
constexpr std::uint16_t checksum_update32(std::uint16_t csum,
                                          std::uint32_t old_word,
                                          std::uint32_t new_word) {
  csum = checksum_update(csum, static_cast<std::uint16_t>(old_word >> 16),
                         static_cast<std::uint16_t>(new_word >> 16));
  return checksum_update(csum, static_cast<std::uint16_t>(old_word),
                         static_cast<std::uint16_t>(new_word));
}

}  // namespace gq::pkt
