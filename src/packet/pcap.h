// In-memory pcap trace recorder (§5.6): GQ records one trace per subfarm
// at the packet router (inmate-network perspective, RFC 1918 addresses)
// and a global trace at the upstream interface. Traces accumulate in
// memory (simulation scale) and can be saved as standard libpcap files.
// Bounded-memory rotation on top of this writer lives in src/trace/.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/time.h"

namespace gq::pkt {

/// The snap length declared in every pcap global header we write.
/// Frames longer than this are truncated on capture (incl_len is
/// clamped; orig_len keeps the wire size), matching libpcap semantics.
inline constexpr std::uint32_t kPcapSnapLen = 65535;

/// Size in bytes of the pcap global header and of each record header.
inline constexpr std::size_t kPcapFileHeaderSize = 24;
inline constexpr std::size_t kPcapRecordHeaderSize = 16;

/// Writes LINKTYPE_ETHERNET pcap records with microsecond timestamps.
class PcapWriter {
 public:
  PcapWriter();

  /// Append one frame captured at simulated time `at`. Frames longer
  /// than kPcapSnapLen are truncated: incl_len (caplen) is clamped to
  /// the snap length while orig_len records the full wire size.
  void record(util::TimePoint at, std::span<const std::uint8_t> frame);

  [[nodiscard]] std::size_t packet_count() const { return packet_count_; }

  /// The complete pcap file contents (header + records).
  [[nodiscard]] std::span<const std::uint8_t> contents() const {
    return buf_;
  }

  /// Bytes appended so far (header + records); the next record starts
  /// at this offset. Used by the trace archiver's flow index.
  [[nodiscard]] std::size_t size_bytes() const { return buf_.size(); }

  /// Write the trace to a file; returns false on I/O error.
  bool save(const std::string& path) const;

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t packet_count_ = 0;
};

/// One record read back from a pcap buffer.
struct PcapRecord {
  util::TimePoint time;
  /// Captured bytes (length == incl_len, possibly truncated to snaplen).
  std::vector<std::uint8_t> frame;
  /// Original wire length; equals frame.size() unless the capture was
  /// truncated at the snap length.
  std::uint32_t orig_len = 0;
};

/// Parse a pcap buffer (as produced by PcapWriter) back into records.
///
/// Tolerates truncation: a buffer cut mid-record yields every complete
/// record before the cut (the valid prefix) rather than an empty
/// vector, so partially-written or rotated captures stay readable.
/// Parsing stops at the first structurally invalid record header — a
/// caplen above kPcapSnapLen or a caplen exceeding orig_len — since
/// everything after it is unframed. A missing or wrong global header
/// yields an empty vector.
std::vector<PcapRecord> parse_pcap(std::span<const std::uint8_t> data);

}  // namespace gq::pkt
