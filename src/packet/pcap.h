// In-memory pcap trace recorder (§5.6): GQ records one trace per subfarm
// at the packet router (inmate-network perspective, RFC 1918 addresses)
// and a global trace at the upstream interface. Traces accumulate in
// memory (simulation scale) and can be saved as standard libpcap files.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/time.h"

namespace gq::pkt {

/// Writes LINKTYPE_ETHERNET pcap records with microsecond timestamps.
class PcapWriter {
 public:
  PcapWriter();

  /// Append one frame captured at simulated time `at`.
  void record(util::TimePoint at, std::span<const std::uint8_t> frame);

  [[nodiscard]] std::size_t packet_count() const { return packet_count_; }

  /// The complete pcap file contents (header + records).
  [[nodiscard]] std::span<const std::uint8_t> contents() const {
    return buf_;
  }

  /// Write the trace to a file; returns false on I/O error.
  bool save(const std::string& path) const;

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t packet_count_ = 0;
};

/// One record read back from a pcap buffer.
struct PcapRecord {
  util::TimePoint time;
  std::vector<std::uint8_t> frame;
};

/// Parse a pcap buffer (as produced by PcapWriter) back into records.
/// Returns an empty vector on malformed input.
std::vector<PcapRecord> parse_pcap(std::span<const std::uint8_t> data);

}  // namespace gq::pkt
