// Whole-frame decode/encode and the flow-key abstraction the gateway's
// flow table is keyed on. A DecodedFrame is a fully owned, mutable
// representation of one Ethernet frame; the gateway decodes, rewrites
// fields, and re-encodes (checksums recomputed), which keeps all header
// surgery type-safe instead of offset-based.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "packet/headers.h"
#include "util/addr.h"

namespace gq::pkt {

/// A fully decoded Ethernet frame. Exactly one of `arp`, or (`ip` plus at
/// most one of `tcp`/`udp`/`icmp`), is populated depending on ethertype
/// and protocol. Unrecognized payloads are preserved verbatim in
/// `ip->payload` so the gateway can forward protocols it does not parse.
struct DecodedFrame {
  EthHeader eth;
  std::optional<ArpMessage> arp;
  std::optional<Ipv4Packet> ip;
  std::optional<TcpSegment> tcp;
  std::optional<UdpDatagram> udp;
  std::optional<IcmpMessage> icmp;

  [[nodiscard]] bool is_arp() const { return arp.has_value(); }
  [[nodiscard]] bool is_tcp() const { return tcp.has_value(); }
  [[nodiscard]] bool is_udp() const { return udp.has_value(); }

  /// L4 source/destination ports (0 for non-TCP/UDP).
  [[nodiscard]] std::uint16_t src_port() const;
  [[nodiscard]] std::uint16_t dst_port() const;

  /// Re-encode to wire bytes. L4 payload containers are authoritative:
  /// when `tcp`/`udp`/`icmp` is set, `ip->payload` is regenerated from it.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// One-line human summary for logs ("10.0.0.23:1234 > 1.2.3.4:80 TCP S").
  [[nodiscard]] std::string summary() const;
};

/// Decode raw frame bytes. Returns nullopt if the Ethernet header is
/// malformed; higher layers that fail to parse simply stay unset (the
/// raw bytes remain available through `ip->payload` when IPv4 parsed).
std::optional<DecodedFrame> decode_frame(std::span<const std::uint8_t> bytes);

/// Transport protocol of a flow, for flow-table keying.
enum class FlowProto : std::uint8_t { kTcp = 6, kUdp = 17 };

/// Directional 5-tuple identifying a flow as seen on the inmate network.
/// The gateway keys flow state on the *initiator-oriented* tuple.
struct FlowKey {
  FlowProto proto = FlowProto::kTcp;
  util::Endpoint src;
  util::Endpoint dst;

  friend constexpr auto operator<=>(const FlowKey&, const FlowKey&) = default;

  /// The same flow seen from the opposite direction.
  [[nodiscard]] FlowKey reversed() const { return {proto, dst, src}; }

  [[nodiscard]] std::string str() const;
};

/// Hash functor for FlowKey, for the gateway's unordered flow tables.
/// Packs the 104-bit tuple into two words and finalizes with splitmix64
/// so per-flow sequential ports / addresses spread across buckets.
struct FlowKeyHash {
  static constexpr std::uint64_t mix(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }
  std::size_t operator()(const FlowKey& key) const noexcept {
    const std::uint64_t addrs =
        (std::uint64_t{key.src.addr.value()} << 32) | key.dst.addr.value();
    const std::uint64_t rest = (std::uint64_t{key.src.port} << 24) |
                               (std::uint64_t{key.dst.port} << 8) |
                               static_cast<std::uint64_t>(key.proto);
    return static_cast<std::size_t>(mix(addrs ^ mix(rest)));
  }
};

/// Extract a FlowKey from a decoded TCP/UDP frame (nullopt otherwise).
std::optional<FlowKey> flow_key_of(const DecodedFrame& frame);

}  // namespace gq::pkt
