#include "packet/checksum.h"

namespace gq::pkt {

namespace {

std::uint32_t sum_words(std::span<const std::uint8_t> data,
                        std::uint32_t acc) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    acc += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  if (i < data.size()) acc += static_cast<std::uint32_t>(data[i]) << 8;
  return acc;
}

std::uint16_t fold(std::uint32_t acc) {
  while (acc >> 16) acc = (acc & 0xFFFF) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc);
}

}  // namespace

std::uint16_t checksum(std::span<const std::uint8_t> data) {
  return fold(sum_words(data, 0));
}

std::uint16_t l4_checksum(util::Ipv4Addr src, util::Ipv4Addr dst,
                          std::uint8_t protocol,
                          std::span<const std::uint8_t> segment) {
  std::uint32_t acc = 0;
  acc += src.value() >> 16;
  acc += src.value() & 0xFFFF;
  acc += dst.value() >> 16;
  acc += dst.value() & 0xFFFF;
  acc += protocol;
  acc += static_cast<std::uint32_t>(segment.size());
  return fold(sum_words(segment, acc));
}

}  // namespace gq::pkt
