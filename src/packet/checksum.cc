#include "packet/checksum.h"

#include <bit>
#include <cstring>

namespace gq::pkt {

namespace {

std::uint16_t byteswap16(std::uint16_t v) {
  return static_cast<std::uint16_t>((v >> 8) | (v << 8));
}

std::uint16_t fold(std::uint32_t acc) {
  while (acc >> 16) acc = (acc & 0xFFFF) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc);
}

std::uint32_t sum_words_scalar(std::span<const std::uint8_t> data,
                               std::uint32_t acc) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    acc += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  if (i < data.size()) acc += static_cast<std::uint32_t>(data[i]) << 8;
  return acc;
}

// One's-complement sum accumulated a machine word at a time. The
// internet checksum is byte-order independent (RFC 1071 §2(B)): summing
// native-endian loads with end-around carry yields the byte-swapped
// one's-complement sum, so a single final byteswap recovers the
// network-order value. Word-width loads are valid because
// 2^16 ≡ 2^32 ≡ 2^64 ≡ 1 (mod 2^16 - 1).
std::uint32_t sum_words(std::span<const std::uint8_t> data,
                        std::uint32_t acc) {
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  std::uint64_t sum = 0;
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    sum += v;
    if (sum < v) ++sum;  // End-around carry.
    p += 8;
    n -= 8;
  }
  if (n >= 4) {
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    sum += v;
    if (sum < v) ++sum;
    p += 4;
    n -= 4;
  }
  if (n >= 2) {
    std::uint16_t v;
    std::memcpy(&v, p, 2);
    sum += v;
    if (sum < v) ++sum;
    p += 2;
    n -= 2;
  }
  if (n) {
    // The RFC pads the odd final byte with a zero low byte (network
    // order); in the native little-endian word domain that same byte
    // occupies the low position.
    const std::uint64_t v = (std::endian::native == std::endian::little)
                                ? std::uint64_t{*p}
                                : std::uint64_t{*p} << 8;
    sum += v;
    if (sum < v) ++sum;
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  std::uint16_t word = static_cast<std::uint16_t>(sum);
  if (std::endian::native == std::endian::little) word = byteswap16(word);
  return acc + word;
}

}  // namespace

std::uint16_t checksum(std::span<const std::uint8_t> data) {
  return fold(sum_words(data, 0));
}

std::uint16_t checksum_reference(std::span<const std::uint8_t> data) {
  return fold(sum_words_scalar(data, 0));
}

std::uint16_t l4_checksum(util::Ipv4Addr src, util::Ipv4Addr dst,
                          std::uint8_t protocol,
                          std::span<const std::uint8_t> segment) {
  std::uint32_t acc = 0;
  acc += src.value() >> 16;
  acc += src.value() & 0xFFFF;
  acc += dst.value() >> 16;
  acc += dst.value() & 0xFFFF;
  acc += protocol;
  acc += static_cast<std::uint32_t>(segment.size());
  return fold(sum_words(segment, acc));
}

}  // namespace gq::pkt
