#include "extnet/extnet.h"

#include "util/log.h"
#include "util/strings.h"

namespace gq::ext {

namespace {
constexpr const char* kLog = "extnet";
}

void Cbl::list(util::Ipv4Addr addr, std::string reason) {
  if (entries_.count(addr)) return;
  GQ_INFO(kLog, "CBL: listing %s (%s)", addr.str().c_str(), reason.c_str());
  entries_[addr] = std::move(reason);
}

bool Cbl::is_listed(util::Ipv4Addr addr) const {
  return entries_.count(addr) > 0;
}

PolicedSmtpServer::PolicedSmtpServer(net::HostStack& stack,
                                     std::uint16_t port, Cbl* cbl,
                                     std::string banner)
    : stack_(stack), cbl_(cbl), banner_(std::move(banner)) {
  stack_.listen(port, [this](std::shared_ptr<net::TcpConnection> conn) {
    ++sessions_;
    auto buffer = std::make_shared<std::string>();
    auto in_data = std::make_shared<bool>(false);
    conn->send(banner_ + "\r\n");
    conn->on_data = [this, conn, buffer,
                     in_data](std::span<const std::uint8_t> d) {
      buffer->append(reinterpret_cast<const char*>(d.data()), d.size());
      std::size_t pos;
      while ((pos = buffer->find("\r\n")) != std::string::npos) {
        const std::string line = buffer->substr(0, pos);
        buffer->erase(0, pos + 2);
        if (*in_data) {
          if (line == ".") {
            *in_data = false;
            ++messages_;
            conn->send("250 OK\r\n");
          }
          continue;
        }
        auto parts = util::split_ws(line);
        if (parts.empty()) continue;
        const std::string verb = util::to_lower(parts[0]);
        if (verb == "helo" || verb == "ehlo") {
          if (parts.size() > 1 && bot_helos_.count(parts[1])) {
            ++detections_;
            // Mail operators quietly report bot-signature HELOs to the
            // blacklist providers (§7.1, "mysterious blacklisting").
            if (cbl_)
              cbl_->list(conn->remote().addr,
                         "bot HELO '" + parts[1] + "'");
          }
          conn->send("250 mx.google.example at your service\r\n");
        } else if (verb == "mail" || verb == "rcpt" || verb == "rset" ||
                   verb == "noop") {
          conn->send("250 OK\r\n");
        } else if (verb == "data") {
          *in_data = true;
          conn->send("354 go ahead\r\n");
        } else if (verb == "quit") {
          conn->send("221 bye\r\n");
          conn->close();
        } else {
          conn->send("502 unimplemented\r\n");
        }
      }
    };
    conn->on_remote_close = [conn] { conn->close(); };
  });
}

void PolicedSmtpServer::add_bot_helo(std::string helo) {
  bot_helos_.insert(std::move(helo));
}

CcServer::CcServer(net::HostStack& stack, std::uint16_t port) {
  server_ = std::make_unique<svc::HttpServer>(
      stack, port,
      [this](const svc::HttpRequest& request, util::Endpoint) {
        ++requests_;
        request_log_.push_back(request.method + " " + request.path);
        if (auto it = documents_.find(request.path);
            it != documents_.end()) {
          return svc::HttpResponse::make(200, "OK", it->second);
        }
        return svc::HttpResponse::make(404, "NOT FOUND", "");
      });
}

void CcServer::set_document(const std::string& path, std::string body) {
  documents_[path] = std::move(body);
}

AdServer::AdServer(net::HostStack& stack, std::uint16_t port) {
  server_ = std::make_unique<svc::HttpServer>(
      stack, port,
      [this](const svc::HttpRequest& request, util::Endpoint) {
        ++clicks_;
        ++by_referer_[request.header("Referer").value_or("(none)")];
        return svc::HttpResponse::make(
            200, "OK", "<html>ad landing page</html>", "text/html");
      });
}

void StormMaster::send_ftp_inject(util::Endpoint bot,
                                  util::Endpoint ftp_server,
                                  const std::string& user,
                                  const std::string& pass,
                                  const std::string& path,
                                  const std::string& iframe) {
  auto conn = stack_.connect(bot);
  ++jobs_sent_;
  const std::string job = "FTPINJECT " + ftp_server.str() + " " + user +
                          " " + pass + " " + path + " " + iframe + "\n";
  conn->on_connected = [conn, job] { conn->send(job); };
  conn->on_data = [this, conn](std::span<const std::uint8_t> d) {
    const std::string text(reinterpret_cast<const char*>(d.data()),
                           d.size());
    if (text.find("OK") != std::string::npos) ++acks_;
    conn->close();
  };
}

}  // namespace gq::ext
