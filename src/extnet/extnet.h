// The simulated external Internet. The paper's evaluation depends on
// how the real world reacts to the farm — blacklist operators listing
// careless inmates, Google's SMTP servers detecting Waledac's "wergvan"
// HELO (§7.1, "mysterious blacklisting"), C&C servers feeding spam
// tasks, ad servers, FTP victims, and the upstream Storm botmaster who
// pushed iframe-injection jobs through the proxy tier (§7.1,
// "unexpected visitors"). These hosts are the substitution for the live
// Internet: they exercise exactly the feedback loops the paper reports.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "net/stack.h"
#include "services/http.h"
#include "util/addr.h"

namespace gq::ext {

/// Composite Blocking List model: blacklist providers list IPs reported
/// by cooperating mail operators.
class Cbl {
 public:
  void list(util::Ipv4Addr addr, std::string reason);
  [[nodiscard]] bool is_listed(util::Ipv4Addr addr) const;
  [[nodiscard]] const std::map<util::Ipv4Addr, std::string>& entries()
      const {
    return entries_;
  }

 private:
  std::map<util::Ipv4Addr, std::string> entries_;
};

/// A "GMail-like" SMTP server: full greeting fidelity ("220 mx.google...
/// ESMTP"), accepts mail — and polices HELO identities: clients greeting
/// with a known-bot string get silently reported to the blacklist.
class PolicedSmtpServer {
 public:
  PolicedSmtpServer(net::HostStack& stack, std::uint16_t port, Cbl* cbl,
                    std::string banner =
                        "220 mx.google.example ESMTP ready");

  /// HELO strings that trigger a blacklist report (e.g. "wergvan").
  void add_bot_helo(std::string helo);

  [[nodiscard]] std::uint64_t sessions() const { return sessions_; }
  [[nodiscard]] std::uint64_t messages_accepted() const {
    return messages_;
  }
  [[nodiscard]] std::uint64_t bot_helos_detected() const {
    return detections_;
  }

 private:
  net::HostStack& stack_;
  Cbl* cbl_;
  std::string banner_;
  std::set<std::string> bot_helos_;
  std::uint64_t sessions_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t detections_ = 0;
};

/// Botnet C&C server: serves task documents over HTTP paths. The farm's
/// FORWARD/REWRITE C&C verdicts let inmates reach this host.
class CcServer {
 public:
  CcServer(net::HostStack& stack, std::uint16_t port);

  /// Install the document served for `path` (e.g. "/c2/tasks").
  void set_document(const std::string& path, std::string body);

  [[nodiscard]] std::uint64_t requests() const { return requests_; }
  [[nodiscard]] const std::vector<std::string>& request_log() const {
    return request_log_;
  }

 private:
  std::unique_ptr<svc::HttpServer> server_;
  std::map<std::string, std::string> documents_;
  std::uint64_t requests_ = 0;
  std::vector<std::string> request_log_;
};

/// Ad server counting clicks (click-fraud victim).
class AdServer {
 public:
  AdServer(net::HostStack& stack, std::uint16_t port);

  [[nodiscard]] std::uint64_t clicks() const { return clicks_; }
  [[nodiscard]] const std::map<std::string, std::uint64_t>&
  clicks_by_referer() const {
    return by_referer_;
  }

 private:
  std::unique_ptr<svc::HttpServer> server_;
  std::uint64_t clicks_ = 0;
  std::map<std::string, std::uint64_t> by_referer_;
};

/// The upstream Storm botmaster: dials a proxy bot's (global) address
/// and pushes jobs through the line protocol.
class StormMaster {
 public:
  explicit StormMaster(net::HostStack& stack) : stack_(stack) {}

  /// Send one FTPINJECT job to the proxy at `bot`.
  void send_ftp_inject(util::Endpoint bot, util::Endpoint ftp_server,
                       const std::string& user, const std::string& pass,
                       const std::string& path, const std::string& iframe);

  [[nodiscard]] std::uint64_t jobs_sent() const { return jobs_sent_; }
  [[nodiscard]] std::uint64_t acks_received() const { return acks_; }

 private:
  net::HostStack& stack_;
  std::uint64_t jobs_sent_ = 0;
  std::uint64_t acks_ = 0;
};

}  // namespace gq::ext
