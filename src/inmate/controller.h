// The inmate controller (paper §5.5, §6.3): a simple message receiver,
// hosted on the gateway/management side, that interprets life-cycle
// control instructions from the containment servers. The containment
// server needs only a VLAN ID to identify the target of an action; the
// controller understands the inmate hosting infrastructure and abstracts
// the physical details (which VMM, virtualized or raw iron).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "inmate/inmate.h"
#include "net/stack.h"

namespace gq::obs {
class Counter;
class MetricsRegistry;
}  // namespace gq::obs

namespace gq::inm {

class InmateController {
 public:
  struct Action {
    std::string verb;
    std::uint16_t vlan = 0;
    bool applied = false;
  };
  using ActionHandler = std::function<void(const Action&)>;

  /// Listens for "revert <vlan>\n" / "reboot <vlan>\n" /
  /// "terminate <vlan>\n" text messages on `port` (UDP).
  InmateController(net::HostStack& stack, std::uint16_t port);

  /// Register an inmate in the inventory ("at startup, the controller
  /// scans the VMMs ... to assemble an inventory", §6.3).
  void register_inmate(Inmate& inmate);
  void unregister_inmate(std::uint16_t vlan);

  [[nodiscard]] Inmate* by_vlan(std::uint16_t vlan);
  [[nodiscard]] std::size_t inventory_size() const { return inmates_.size(); }
  [[nodiscard]] std::uint64_t actions_received() const { return actions_; }
  [[nodiscard]] util::Endpoint endpoint() const {
    return {stack_.addr(), port_};
  }

  void set_action_handler(ActionHandler handler) {
    on_action_ = std::move(handler);
  }

  /// Apply an action directly (also used by the message handler).
  bool apply(const std::string& verb, std::uint16_t vlan);

 private:
  void handle_message(const std::string& text);

  net::HostStack& stack_;
  std::uint16_t port_;
  std::shared_ptr<net::UdpSocket> sock_;
  std::map<std::uint16_t, Inmate*> inmates_;
  std::uint64_t actions_ = 0;
  ActionHandler on_action_;
};

/// Raw Iron Controller (paper §6.4): drives the network-controlled power
/// sequencer and PXE reimaging of the identically configured physical
/// systems. In this reproduction the timing model lives in the raw-iron
/// HostingProfile; this controller adds the fleet-level operations (the
/// "slightly slower but simultaneous" local-partition restore) and
/// bookkeeping.
class RawIronController {
 public:
  /// Surface fleet bookkeeping through obs::: `inmate.pool.reimages`
  /// and `inmate.pool.power_cycles` counters track every reimage /
  /// power-cycle issued after the bind (resolve-once, same contract as
  /// VlanPool::bind_metrics).
  void bind_metrics(obs::MetricsRegistry& metrics);

  void register_system(Inmate& inmate);

  /// Power-cycle one system.
  void power_cycle(std::uint16_t vlan);

  /// Reimage one system over the network (~6 min, modelled by the
  /// inmate's revert).
  void reimage(std::uint16_t vlan);

  /// Restore every system from the hidden local partition — slower
  /// (~10 min) but proceeds on all systems simultaneously (§6.4).
  void reimage_all();

  [[nodiscard]] std::size_t fleet_size() const { return systems_.size(); }
  [[nodiscard]] std::uint64_t power_cycles() const { return power_cycles_; }
  [[nodiscard]] std::uint64_t reimages() const { return reimages_; }

 private:
  std::map<std::uint16_t, Inmate*> systems_;
  std::uint64_t power_cycles_ = 0;
  std::uint64_t reimages_ = 0;
  obs::Counter* reimages_counter_ = nullptr;
  obs::Counter* power_cycles_counter_ = nullptr;
};

}  // namespace gq::inm
