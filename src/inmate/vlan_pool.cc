#include "inmate/vlan_pool.h"

#include "obs/metrics.h"

namespace gq::inm {

void VlanPool::bind_metrics(obs::MetricsRegistry& metrics) {
  if (available_gauge_) return;
  available_gauge_ = &metrics.gauge("inmate.pool.available");
  available_gauge_->add(
      static_cast<std::int64_t>(capacity() - in_use()));
}

std::optional<std::uint16_t> VlanPool::allocate() {
  for (std::uint32_t vlan = first_; vlan <= last_; ++vlan) {
    if (!in_use_.count(static_cast<std::uint16_t>(vlan))) {
      in_use_.insert(static_cast<std::uint16_t>(vlan));
      if (available_gauge_) available_gauge_->sub(1);
      return static_cast<std::uint16_t>(vlan);
    }
  }
  return std::nullopt;
}

bool VlanPool::reserve(std::uint16_t vlan) {
  if (vlan < first_ || vlan > last_ || in_use_.count(vlan)) return false;
  in_use_.insert(vlan);
  if (available_gauge_) available_gauge_->sub(1);
  return true;
}

void VlanPool::release(std::uint16_t vlan) {
  if (in_use_.erase(vlan) > 0 && available_gauge_) {
    available_gauge_->add(1);
  }
}

}  // namespace gq::inm
