#include "inmate/vlan_pool.h"

namespace gq::inm {

std::optional<std::uint16_t> VlanPool::allocate() {
  for (std::uint32_t vlan = first_; vlan <= last_; ++vlan) {
    if (!in_use_.count(static_cast<std::uint16_t>(vlan))) {
      in_use_.insert(static_cast<std::uint16_t>(vlan));
      return static_cast<std::uint16_t>(vlan);
    }
  }
  return std::nullopt;
}

bool VlanPool::reserve(std::uint16_t vlan) {
  if (vlan < first_ || vlan > last_ || in_use_.count(vlan)) return false;
  in_use_.insert(vlan);
  return true;
}

}  // namespace gq::inm
