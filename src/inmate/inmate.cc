#include "inmate/inmate.h"

#include "util/log.h"
#include "util/strings.h"

namespace gq::inm {

namespace {
constexpr const char* kLog = "inmate";
}

const char* hosting_kind_name(HostingKind kind) {
  switch (kind) {
    case HostingKind::kVm: return "vm";
    case HostingKind::kEmulated: return "emulated";
    case HostingKind::kRawIron: return "raw-iron";
  }
  return "?";
}

const char* inmate_state_name(InmateState state) {
  switch (state) {
    case InmateState::kStopped: return "STOPPED";
    case InmateState::kBooting: return "BOOTING";
    case InmateState::kInfecting: return "INFECTING";
    case InmateState::kRunning: return "RUNNING";
    case InmateState::kReverting: return "REVERTING";
  }
  return "?";
}

HostingProfile HostingProfile::for_kind(HostingKind kind) {
  switch (kind) {
    case HostingKind::kVm:
      // Snapshot revert is fast on ESX.
      return {util::seconds(25), util::seconds(15)};
    case HostingKind::kEmulated:
      // Full-system emulation boots slowly.
      return {util::seconds(70), util::seconds(20)};
    case HostingKind::kRawIron:
      // §6.4: the PXE reimaging cycle takes around 6 minutes.
      return {util::seconds(45), util::minutes(6)};
  }
  return {util::seconds(30), util::seconds(30)};
}

Inmate::Inmate(sim::EventLoop& loop, InmateConfig config,
               BehaviorFactory behavior_factory)
    : loop_(loop),
      config_(config),
      profile_(HostingProfile::for_kind(config.hosting)),
      behavior_factory_(std::move(behavior_factory)),
      rng_(config.seed) {
  host_ = std::make_unique<net::HostStack>(
      loop, util::format("inmate-v%u", config_.vlan),
      util::MacAddr::local(0x10000u + config_.vlan), config_.seed);
}

void Inmate::enter(InmateState state) {
  if (state == state_) return;
  const InmateState old_state = state_;
  state_ = state;
  GQ_DEBUG(kLog, "vlan %u: %s -> %s", config_.vlan,
           inmate_state_name(old_state), inmate_state_name(state));
  if (on_state_) on_state_(*this, old_state, state);
  for (const auto& listener : state_listeners_) {
    listener(*this, old_state, state);
  }
}

void Inmate::power_on() {
  if (state_ != InmateState::kStopped) return;
  boot(/*reinfect=*/infect_on_boot_);
}

void Inmate::boot(bool reinfect) {
  infect_on_boot_ = reinfect;
  enter(InmateState::kBooting);
  const std::uint64_t generation = ++generation_;
  loop_.schedule_in(profile_.boot_delay, [this, generation] {
    if (generation != generation_ || state_ != InmateState::kBooting)
      return;
    dhcp_ = std::make_unique<svc::DhcpClient>(
        *host_, [this, generation](const net::Ipv4Config&) {
          if (generation == generation_) on_configured();
        });
    dhcp_->start();
  });
}

void Inmate::on_configured() {
  if (state_ != InmateState::kBooting) return;
  if (infect_on_boot_ && config_.autoinfect) {
    enter(InmateState::kInfecting);
    run_infection_script();
    return;
  }
  // Reboot path: the persistent infection resumes without contacting
  // the auto-infection server again (§6.6).
  if (!infect_on_boot_ && !current_sample_.empty()) {
    start_behavior(current_sample_);
    return;
  }
  enter(InmateState::kRunning);  // Idle, awaiting network-borne infection.
}

void Inmate::run_infection_script() {
  const std::uint64_t generation = generation_;
  svc::HttpRequest request;
  request.path = "/sample";
  request.set_header("Host", config_.autoinfect->addr.str());
  svc::HttpClient::fetch(
      *host_, *config_.autoinfect, request,
      [this, generation](std::optional<svc::HttpResponse> response) {
        if (generation != generation_ ||
            state_ != InmateState::kInfecting)
          return;
        if (!response || response->status != 200) {
          // Retry: infection servers can be briefly unavailable.
          loop_.schedule_in(util::seconds(30), [this, generation] {
            if (generation == generation_ &&
                state_ == InmateState::kInfecting)
              run_infection_script();
          });
          return;
        }
        // The sample's first line is its name (§6.6 batch serving).
        const std::string& body = response->body;
        const auto newline = body.find('\n');
        std::string name =
            newline == std::string::npos ? body : body.substr(0, newline);
        ++infections_;
        start_behavior(name);
      });
}

void Inmate::start_behavior(const std::string& sample_name) {
  current_sample_ = sample_name;
  behavior_.reset();
  if (behavior_factory_) behavior_ = behavior_factory_(sample_name, rng_);
  enter(InmateState::kRunning);
  if (behavior_) {
    GQ_INFO(kLog, "vlan %u running %s (%s)", config_.vlan,
            sample_name.c_str(), behavior_->name().c_str());
    behavior_->start(*host_);
  }
}

void Inmate::infect_with(std::unique_ptr<Behavior> behavior,
                         const std::string& sample_name) {
  if (state_ == InmateState::kStopped) return;
  if (behavior_) behavior_->stop();
  current_sample_ = sample_name;
  behavior_ = std::move(behavior);
  ++infections_;
  enter(InmateState::kRunning);
  if (behavior_) behavior_->start(*host_);
}

void Inmate::power_off() {
  ++generation_;
  if (behavior_) behavior_->stop();
  behavior_.reset();
  dhcp_.reset();
  host_->deconfigure();
  enter(InmateState::kStopped);
}

void Inmate::reboot() {
  if (state_ == InmateState::kStopped) return;
  ++generation_;
  if (behavior_) behavior_->stop();
  behavior_.reset();
  dhcp_.reset();
  host_->deconfigure();
  boot(/*reinfect=*/false);
}

void Inmate::revert() {
  if (state_ == InmateState::kStopped) return;
  ++generation_;
  if (behavior_) behavior_->stop();
  behavior_.reset();
  dhcp_.reset();
  host_->deconfigure();
  current_sample_.clear();
  enter(InmateState::kReverting);
  const std::uint64_t generation = generation_;
  loop_.schedule_in(profile_.revert_delay, [this, generation] {
    if (generation != generation_ || state_ != InmateState::kReverting)
      return;
    enter(InmateState::kStopped);
    boot(/*reinfect=*/true);
  });
}

}  // namespace gq::inm
