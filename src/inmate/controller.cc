#include "inmate/controller.h"

#include "obs/metrics.h"
#include "util/bytes.h"
#include "util/log.h"
#include "util/strings.h"

namespace gq::inm {

namespace {
constexpr const char* kLog = "controller";
}

InmateController::InmateController(net::HostStack& stack, std::uint16_t port)
    : stack_(stack), port_(port) {
  sock_ = stack_.udp_open(port_);
  sock_->on_datagram = [this](util::Endpoint,
                              std::vector<std::uint8_t> data) {
    handle_message(util::to_string(data));
  };
}

void InmateController::register_inmate(Inmate& inmate) {
  inmates_[inmate.vlan()] = &inmate;
}

void InmateController::unregister_inmate(std::uint16_t vlan) {
  inmates_.erase(vlan);
}

Inmate* InmateController::by_vlan(std::uint16_t vlan) {
  auto it = inmates_.find(vlan);
  return it == inmates_.end() ? nullptr : it->second;
}

void InmateController::handle_message(const std::string& text) {
  for (const auto& line : util::split(text, '\n')) {
    auto parts = util::split_ws(line);
    if (parts.size() != 2) continue;
    auto vlan = util::parse_int(parts[1]);
    if (!vlan || *vlan < 0 || *vlan > 4095) continue;
    ++actions_;
    const bool applied =
        apply(parts[0], static_cast<std::uint16_t>(*vlan));
    if (on_action_)
      on_action_(Action{parts[0], static_cast<std::uint16_t>(*vlan),
                        applied});
  }
}

bool InmateController::apply(const std::string& verb, std::uint16_t vlan) {
  Inmate* inmate = by_vlan(vlan);
  if (!inmate) {
    GQ_WARN(kLog, "action '%s' for unknown vlan %u", verb.c_str(), vlan);
    return false;
  }
  GQ_INFO(kLog, "applying %s to vlan %u (%s)", verb.c_str(), vlan,
          hosting_kind_name(inmate->config().hosting));
  if (verb == "revert") {
    inmate->revert();
  } else if (verb == "reboot") {
    inmate->reboot();
  } else if (verb == "terminate") {
    inmate->power_off();
  } else if (verb == "start") {
    inmate->power_on();
  } else {
    GQ_WARN(kLog, "unknown action '%s'", verb.c_str());
    return false;
  }
  return true;
}

void RawIronController::bind_metrics(obs::MetricsRegistry& metrics) {
  if (reimages_counter_) return;
  reimages_counter_ = &metrics.counter("inmate.pool.reimages");
  power_cycles_counter_ = &metrics.counter("inmate.pool.power_cycles");
}

void RawIronController::register_system(Inmate& inmate) {
  systems_[inmate.vlan()] = &inmate;
}

void RawIronController::power_cycle(std::uint16_t vlan) {
  auto it = systems_.find(vlan);
  if (it == systems_.end()) return;
  ++power_cycles_;
  if (power_cycles_counter_) power_cycles_counter_->inc();
  it->second->reboot();
}

void RawIronController::reimage(std::uint16_t vlan) {
  auto it = systems_.find(vlan);
  if (it == systems_.end()) return;
  ++reimages_;
  if (reimages_counter_) reimages_counter_->inc();
  it->second->revert();
}

void RawIronController::reimage_all() {
  // The local-partition restore runs on every box at once (§6.4); each
  // system's revert proceeds in parallel on the event loop.
  for (auto& [vlan, inmate] : systems_) {
    ++reimages_;
    if (reimages_counter_) reimages_counter_->inc();
    inmate->revert();
  }
}

}  // namespace gq::inm
