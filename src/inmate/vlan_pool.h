// VLAN ID pool (paper §5.2): inmate creation/deletion automatically
// picks and releases IDs from the available pool. IEEE 802.1Q caps the
// space at 4,096 IDs — the first scalability constraint §7.2 discusses.
#pragma once

#include <cstdint>
#include <optional>
#include <set>

namespace gq::obs {
class Gauge;
class MetricsRegistry;
}  // namespace gq::obs

namespace gq::inm {

class VlanPool {
 public:
  /// Pool over [first, last] inclusive.
  VlanPool(std::uint16_t first, std::uint16_t last)
      : first_(first), last_(last) {}

  /// Surface pool occupancy as the farm-wide `inmate.pool.available`
  /// gauge: this pool's current free count is added on bind, and every
  /// allocate/reserve/release afterwards keeps it current. Multiple
  /// pools (one per subfarm) share the one gauge, so the farm value is
  /// total free VLANs across subfarms. Resolve-once at bind: the
  /// registry is never mutated from the data path (see obs/metrics.h
  /// thread-safety contract).
  void bind_metrics(obs::MetricsRegistry& metrics);

  /// Allocate the lowest free ID; nullopt when exhausted.
  std::optional<std::uint16_t> allocate();

  /// Reserve a specific ID; false if taken or out of range.
  bool reserve(std::uint16_t vlan);

  /// Return an ID to the pool (unknown IDs are ignored).
  void release(std::uint16_t vlan);

  [[nodiscard]] std::size_t in_use() const { return in_use_.size(); }
  [[nodiscard]] std::size_t capacity() const {
    return static_cast<std::size_t>(last_ - first_) + 1;
  }
  [[nodiscard]] bool exhausted() const { return in_use() == capacity(); }

 private:
  std::uint16_t first_, last_;
  std::set<std::uint16_t> in_use_;
  obs::Gauge* available_gauge_ = nullptr;
};

}  // namespace gq::inm
