// Inmates and their life-cycle (paper §5.5, §6.3, §6.4). An Inmate is
// one simulated infected machine: a HostStack on its own VLAN plus a
// life-cycle state machine (boot via DHCP, auto-infection on first boot,
// revert-to-clean-snapshot, reboot, terminate). Hosting technology —
// full virtualization, emulation, or raw iron — is expressed as a
// backend that only changes timing (snapshot revert vs ~6-minute PXE
// reimage) and stays transparent to the gateway, exactly as in the
// paper.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/stack.h"
#include "services/dhcp.h"
#include "services/http.h"
#include "util/rng.h"
#include "util/time.h"

namespace gq::inm {

/// Hosting technologies (§6: VMware ESX, QEMU emulation, raw iron).
enum class HostingKind { kVm, kEmulated, kRawIron };

const char* hosting_kind_name(HostingKind kind);

/// Life-cycle states.
enum class InmateState {
  kStopped,
  kBooting,
  kInfecting,   ///< Running the first-boot auto-infection script.
  kRunning,
  kReverting,   ///< Restoring the clean snapshot / reimaging.
};

const char* inmate_state_name(InmateState state);

/// Timing profile of a hosting backend.
struct HostingProfile {
  util::Duration boot_delay;
  util::Duration revert_delay;

  static HostingProfile for_kind(HostingKind kind);
};

/// The malware behaviour running on an infected inmate. Implementations
/// live in src/malware; the inmate only knows how to start/stop one.
class Behavior {
 public:
  virtual ~Behavior() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Begin operating on the inmate's stack. Must be idempotent-safe to
  /// stop(): all timers must check running state.
  virtual void start(net::HostStack& host) = 0;
  virtual void stop() = 0;

 protected:
  /// Wrap an asynchronous callback (timer, socket handler) so it becomes
  /// a no-op once this behaviour object has been destroyed — timers and
  /// connections routinely outlive an infection (revert, reinfection).
  template <typename F>
  auto guarded(F fn) {
    return [weak = std::weak_ptr<bool>(alive_),
            fn = std::move(fn)](auto&&... args) {
      if (weak.expired()) return;
      fn(std::forward<decltype(args)>(args)...);
    };
  }

 private:
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/// Maps a served sample payload (whose first line is the sample name,
/// §6.6) to a behaviour instance. Returning nullptr leaves the inmate
/// idle (sample with no modelled behaviour).
using BehaviorFactory = std::function<std::unique_ptr<Behavior>(
    const std::string& sample_name, util::Rng& rng)>;

struct InmateConfig {
  std::uint16_t vlan = 0;
  HostingKind hosting = HostingKind::kVm;
  /// Auto-infection service to contact on first boot (nullopt: wait for
  /// a traditional network-borne infection instead).
  std::optional<util::Endpoint> autoinfect;
  std::uint64_t seed = 1;
};

class Inmate {
 public:
  using StateHandler =
      std::function<void(Inmate&, InmateState old_state, InmateState)>;

  Inmate(sim::EventLoop& loop, InmateConfig config,
         BehaviorFactory behavior_factory);

  /// The inmate's NIC — wire to an access port of the inmate switch.
  [[nodiscard]] net::HostStack& host() { return *host_; }
  [[nodiscard]] const InmateConfig& config() const { return config_; }
  [[nodiscard]] std::uint16_t vlan() const { return config_.vlan; }
  [[nodiscard]] InmateState state() const { return state_; }
  [[nodiscard]] Behavior* behavior() { return behavior_.get(); }
  [[nodiscard]] const std::string& current_sample() const {
    return current_sample_;
  }
  [[nodiscard]] int infections() const { return infections_; }

  /// Life-cycle actions (§5.5). All are asynchronous: state transitions
  /// complete after the hosting profile's delays.
  void power_on();
  void power_off();
  void reboot();   ///< Restart without reinfection (malware persists).
  void revert();   ///< Clean snapshot + reinfection on next boot.

  /// Directly infect with a behaviour (network-borne infections — worms
  /// — bypass the auto-infection path).
  void infect_with(std::unique_ptr<Behavior> behavior,
                   const std::string& sample_name);

  void set_state_handler(StateHandler handler) {
    on_state_ = std::move(handler);
  }

  /// Additive observers, invoked after the primary handler. The Subfarm
  /// owns set_state_handler (it notifies the containment server), so
  /// layers above — the orchestrator's inmate pool — subscribe here
  /// without clobbering that wiring.
  void add_state_listener(StateHandler listener) {
    state_listeners_.push_back(std::move(listener));
  }

 private:
  void enter(InmateState state);
  void boot(bool reinfect);
  void on_configured();
  void run_infection_script();
  void start_behavior(const std::string& sample_name);

  sim::EventLoop& loop_;
  InmateConfig config_;
  HostingProfile profile_;
  BehaviorFactory behavior_factory_;
  std::unique_ptr<net::HostStack> host_;
  std::unique_ptr<svc::DhcpClient> dhcp_;
  std::unique_ptr<Behavior> behavior_;
  util::Rng rng_;
  InmateState state_ = InmateState::kStopped;
  StateHandler on_state_;
  std::vector<StateHandler> state_listeners_;
  std::string current_sample_;
  bool infect_on_boot_ = true;
  int infections_ = 0;
  std::uint64_t generation_ = 0;  ///< Invalidates in-flight boot timers.
};

}  // namespace gq::inm
