// FlowDB: a versioned, self-describing, columnar flow-record store
// (DESIGN.md §14). Where a saved TraceTap keeps its flow index as a
// `flows.txt` text sidecar that must be re-parsed linearly on every
// question, a `.fdb` store lays the same records out as fixed-width
// columns so an mmap-backed reader can answer predicates and
// aggregations over hundreds of thousands of flows at memory bandwidth
// — the paper's §5.6 trace audits ("which flow was that, and what did
// the CS decide about it?") kept interactive at soak/detonation-service
// volume.
//
// File layout (all integers little-endian host order, every data region
// 8-byte aligned so the reader can hand out typed spans straight over
// the mapping):
//
//   FileHeader            magic, version, row/column counts, offsets
//   ColumnDesc[ncols]     name, element type/size, data offset
//   DictEntry[ndict]      (offset, len) into the string blob
//   LocEntry[nloc]        (segment, offset) archive locations, shared
//   column data           one contiguous fixed-width array per column
//   string blob           dictionary bytes (tenant/policy/tap names)
//   ZoneMap + ChunkZone[] skip-scan metadata (format v2, see below)
//   Footer                FNV-1a 64 over everything above + end magic
//
// Format v2 adds the zone block: a per-file ZoneMap (min/max over
// timestamps, VLANs, ports, packet/byte counters, plus a 1 KiB k=4
// FNV-mixed bloom filter over tenant names and both flow endpoints)
// and one ChunkZone (min/max time) per kScanChunk-row chunk. The query
// planner reads the zone block from a sealed segment's tail — without
// mapping the column data — and skips files/chunks that cannot match a
// Filter. The zone block is pure derived data: the reader recomputes
// it from the columns at validation time and rejects the file on any
// mismatch, so a footer-resealed zone map that lies about its bounds
// is a load-time rejection, never a silently wrong (pruned) answer.
//
// The footer hash makes corruption (truncation, bit rot, a writer that
// died mid-file) a load-time rejection instead of a silent wrong
// answer; the fuzz suite (tests/fuzz_parse_test.cc) sweeps mutated
// stores against the reader with the same reject-or-parse contract as
// the wire codecs.
//
// Writers are append-then-seal: add rows (or whole TraceTap indexes),
// then encode()/save(). Readers are immutable views; the query engine
// lives in flowdb/query.h.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "packet/frame.h"
#include "shim/shim.h"
#include "trace/flow_index.h"
#include "trace/tap.h"

namespace gq::flowdb {

inline constexpr std::uint64_t kMagic = 0x0000314244465147ull;    // "GQFDB1"
inline constexpr std::uint64_t kEndMagic = 0x444E454244465147ull; // "GQFDBEND"
inline constexpr std::uint32_t kVersion = 2;

/// Fixed scan-chunk size (rows). Part of the determinism contract: the
/// chunk grid never depends on the thread count — and since v2 also
/// part of the file format (one ChunkZone per kScanChunk rows).
inline constexpr std::uint64_t kScanChunk = 16384;

/// Bloom filter geometry (ZoneMap::bloom): 1 KiB, k=4, FNV-mixed keys.
inline constexpr std::size_t kBloomBytes = 1024;
inline constexpr std::size_t kBloomBits = kBloomBytes * 8;
inline constexpr unsigned kBloomHashes = 4;

/// Element types a column can carry. The descriptor records both the
/// type and the element size so a reader can skip columns it does not
/// know (forward compatibility) while still validating bounds.
enum class ColumnType : std::uint32_t {
  kU8 = 1,
  kU16 = 2,
  kU32 = 3,
  kU64 = 4,
  kI64 = 5,
};

struct FileHeader {
  std::uint64_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t column_count = 0;
  std::uint64_t row_count = 0;
  std::uint64_t columns_offset = 0;  ///< ColumnDesc array.
  std::uint64_t dict_offset = 0;     ///< DictEntry array.
  std::uint64_t dict_count = 0;
  std::uint64_t blob_offset = 0;     ///< Dictionary string bytes.
  std::uint64_t blob_bytes = 0;
  std::uint64_t loc_offset = 0;      ///< LocEntry array.
  std::uint64_t loc_count = 0;
  std::uint64_t footer_offset = 0;   ///< == file size - 16.
  // v2: the zone block (ZoneMap + one ChunkZone per kScanChunk rows).
  // Appended after the v1 fields so the v1 offsets stay put.
  std::uint64_t zone_offset = 0;
  std::uint64_t zone_bytes = 0;
};
static_assert(sizeof(FileHeader) == 104);

struct ColumnDesc {
  char name[16] = {};        ///< NUL-padded column name.
  std::uint32_t type = 0;    ///< ColumnType.
  std::uint32_t elem_size = 0;
  std::uint64_t offset = 0;  ///< Absolute file offset of the data array.
};
static_assert(sizeof(ColumnDesc) == 32);

struct DictEntry {
  std::uint64_t offset = 0;  ///< Into the blob region.
  std::uint64_t len = 0;
};
static_assert(sizeof(DictEntry) == 16);

/// One archive location (trace::Location, flattened for the store).
struct LocEntry {
  std::uint64_t segment = 0;
  std::uint64_t offset = 0;
};
static_assert(sizeof(LocEntry) == 16);

/// Per-file skip-scan metadata (format v2). min/max fields use empty-
/// range sentinels when row_count == 0 (min = type max, max = type
/// min); the planner checks row_count first, so the sentinels are
/// never consulted. The bloom filter carries one key per row tenant
/// name (including the empty string) and one per flow endpoint
/// address, source AND destination side — a strict superset of the
/// dst-endpoint set, so either-side endpoint filters prune safely.
struct ZoneMap {
  std::uint64_t row_count = 0;
  std::int64_t min_first_usec = 0;
  std::int64_t max_last_usec = 0;
  std::uint16_t min_vlan = 0;
  std::uint16_t max_vlan = 0;
  std::uint16_t min_port = 0;  ///< Over both src and dst ports.
  std::uint16_t max_port = 0;
  std::uint64_t min_packets = 0;
  std::uint64_t max_packets = 0;
  std::uint64_t min_bytes = 0;
  std::uint64_t max_bytes = 0;
  std::uint8_t bloom[kBloomBytes] = {};

  friend bool operator==(const ZoneMap&, const ZoneMap&) = default;
};
static_assert(sizeof(ZoneMap) == 64 + kBloomBytes);  // No padding.

/// Per-chunk time bounds: chunk c covers rows [c*kScanChunk, ...).
struct ChunkZone {
  std::int64_t min_first_usec = 0;
  std::int64_t max_last_usec = 0;

  friend bool operator==(const ChunkZone&, const ChunkZone&) = default;
};
static_assert(sizeof(ChunkZone) == 16);

/// Bloom keys are FNV-1a 64 over a domain tag byte plus the value, so
/// tenant names and addresses never collide structurally.
std::uint64_t bloom_key_tenant(std::string_view name);
std::uint64_t bloom_key_endpoint(std::uint32_t addr_value);
/// Set / test the k probe bits derived from `key` by double hashing.
void bloom_add(std::uint8_t* bloom, std::uint64_t key);
[[nodiscard]] bool bloom_may_contain(const std::uint8_t* bloom,
                                     std::uint64_t key);

/// FNV-1a 64 over a byte range (the integrity footer, and handy for
/// callers hashing query results).
std::uint64_t fnv1a(std::span<const std::uint8_t> bytes);

/// One flow record as the store models it: canonical 5-tuple + VLAN,
/// tenant/job identity, verdict + source + policy, counters,
/// timestamps, originating tap, and the archive locations of its
/// packets. `verdict == 0` means "no verdict was ever attached".
struct Row {
  pkt::FlowProto proto = pkt::FlowProto::kTcp;
  util::Endpoint src;
  util::Endpoint dst;
  std::uint16_t vlan = 0;
  std::string tenant;          ///< Empty = no tenant attribution.
  std::uint64_t job = 0;       ///< 0 = no job attribution.
  std::uint8_t verdict = 0;    ///< 0 = none, else shim::Verdict.
  std::uint8_t source = 0;     ///< shim::VerdictSource (when verdict != 0).
  std::string policy;
  std::string tap;             ///< Capture point the flow came from.
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::int64_t first_usec = 0;
  std::int64_t last_usec = 0;
  std::vector<trace::Location> locations;

  friend bool operator==(const Row&, const Row&) = default;
};

/// Convert one indexed flow record (its tenant/job fields carried from
/// the archive, see trace/flow_index.h) into a store row.
Row row_from(const trace::FlowRecord& record, std::string_view tap_name);

/// Columnar writer: accumulate rows, then seal. When `metrics` is
/// non-null the writer publishes
///   flowdb.rows_written      counter  rows sealed into stores
///   flowdb.files_written     counter  save() successes
///   flowdb.bytes_written     counter  encoded store bytes
class Writer {
 public:
  explicit Writer(obs::MetricsRegistry* metrics = nullptr);

  void add(Row row);
  /// Append every indexed flow of `index` under capture point
  /// `tap_name`.
  void add_index(const trace::FlowIndex& index, std::string_view tap_name);
  /// Append a whole tap's index under the tap's own name.
  void add_tap(const trace::TraceTap& tap);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Seal into the on-disk byte layout (header..footer).
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Seal and write to `path`. False on I/O error.
  bool save(const std::string& path) const;

 private:
  std::vector<Row> rows_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

/// Zero-copy reader over a sealed store. Columns are handed out as
/// typed spans directly over the underlying bytes (an mmap'd file via
/// open(), or an owned buffer via parse()); nothing is deserialized
/// row-by-row. A Reader is immutable and safe to scan from many
/// threads concurrently.
class Reader {
 public:
  Reader(Reader&& other) noexcept;
  Reader& operator=(Reader&& other) noexcept;
  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;
  ~Reader();

  /// mmap `path` read-only and validate. nullopt on I/O error, bad
  /// magic/version, out-of-bounds offsets, or a footer hash mismatch.
  static std::optional<Reader> open(const std::string& path);

  /// Validate an in-memory store (tests, fuzzing, network transfer).
  /// The reader takes ownership of the buffer.
  static std::optional<Reader> parse(std::vector<std::uint8_t> bytes);

  [[nodiscard]] std::uint64_t rows() const { return rows_; }
  [[nodiscard]] std::uint64_t file_bytes() const { return size_; }

  // Typed column spans, each `rows()` long.
  [[nodiscard]] std::span<const std::uint8_t> proto() const;
  [[nodiscard]] std::span<const std::uint32_t> src_addr() const;
  [[nodiscard]] std::span<const std::uint16_t> src_port() const;
  [[nodiscard]] std::span<const std::uint32_t> dst_addr() const;
  [[nodiscard]] std::span<const std::uint16_t> dst_port() const;
  [[nodiscard]] std::span<const std::uint16_t> vlan() const;
  [[nodiscard]] std::span<const std::uint32_t> tenant() const;
  [[nodiscard]] std::span<const std::uint64_t> job() const;
  [[nodiscard]] std::span<const std::uint8_t> verdict() const;
  [[nodiscard]] std::span<const std::uint8_t> verdict_source() const;
  [[nodiscard]] std::span<const std::uint32_t> policy() const;
  [[nodiscard]] std::span<const std::uint32_t> tap() const;
  [[nodiscard]] std::span<const std::uint64_t> packets() const;
  [[nodiscard]] std::span<const std::uint64_t> bytes() const;
  [[nodiscard]] std::span<const std::int64_t> first_usec() const;
  [[nodiscard]] std::span<const std::int64_t> last_usec() const;
  [[nodiscard]] std::span<const std::uint64_t> loc_start() const;
  [[nodiscard]] std::span<const std::uint32_t> loc_count() const;

  /// String dictionary (tenant/policy/tap names). Id 0 is always the
  /// empty string; out-of-range ids read as empty.
  [[nodiscard]] std::size_t dict_size() const { return dict_count_; }
  [[nodiscard]] std::string_view dict(std::uint32_t id) const;
  /// Reverse lookup, for compiling name predicates once per scan.
  [[nodiscard]] std::optional<std::uint32_t> dict_id(
      std::string_view name) const;

  /// Archive locations of one row's packets (clamped to the shared
  /// location array, so a lying loc_start/loc_count can never over-read).
  [[nodiscard]] std::span<const LocEntry> locations_of(
      std::uint64_t row) const;

  /// Reconstruct one row (operator listings; scans should use the
  /// column spans directly).
  [[nodiscard]] Row row(std::uint64_t index) const;

  /// The validated (recompute-verified) zone block.
  [[nodiscard]] const ZoneMap& zone() const { return *zone_; }
  [[nodiscard]] std::span<const ChunkZone> chunk_zones() const {
    return {chunk_zones_, static_cast<std::size_t>(chunk_count_)};
  }

 private:
  Reader() = default;

  bool validate_and_index();
  void reset() noexcept;

  const std::uint8_t* base_ = nullptr;
  std::uint64_t size_ = 0;
  std::vector<std::uint8_t> owned_;  ///< parse() storage.
  void* map_ = nullptr;              ///< open() storage.
  std::uint64_t map_len_ = 0;

  std::uint64_t rows_ = 0;
  std::uint64_t dict_count_ = 0;
  const DictEntry* dict_entries_ = nullptr;
  const char* blob_ = nullptr;
  std::uint64_t blob_bytes_ = 0;
  const LocEntry* locs_ = nullptr;
  std::uint64_t loc_count_total_ = 0;
  const ZoneMap* zone_ = nullptr;
  const ChunkZone* chunk_zones_ = nullptr;
  std::uint64_t chunk_count_ = 0;
  // Resolved column pointers (validated, aligned).
  const void* cols_[18] = {};
};

}  // namespace gq::flowdb
