// Internal scan machinery shared by the single-file scan (query.cc)
// and the segmented-store planner (store.cc). Not part of the public
// FlowDB API — include query.h instead.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "flowdb/flowdb.h"
#include "flowdb/query.h"

namespace gq::flowdb::detail {

/// A Filter with its string predicates resolved against one store's
/// dictionary. `impossible` short-circuits the scan when a requested
/// name does not exist in the store at all. Dictionary ids are
/// per-segment — a segmented scan compiles once per surviving segment.
struct CompiledFilter {
  const Filter* filter = nullptr;
  bool impossible = false;
  std::optional<std::uint32_t> tenant_id;
  std::optional<std::uint32_t> policy_id;
  std::optional<std::uint32_t> tap_id;
};

inline CompiledFilter compile(const Reader& reader, const Filter& filter) {
  CompiledFilter cf;
  cf.filter = &filter;
  const auto resolve = [&](const std::optional<std::string>& name,
                           std::optional<std::uint32_t>& id) {
    if (!name) return;
    id = reader.dict_id(*name);
    if (!id) cf.impossible = true;
  };
  resolve(filter.tenant, cf.tenant_id);
  resolve(filter.policy, cf.policy_id);
  resolve(filter.tap, cf.tap_id);
  return cf;
}

/// Evaluate the conjunction for one row. Columns are captured once per
/// scan; this runs over typed spans straight from the mapping. Plain
/// value type (spans + compiled ids) so segmented scans can keep one
/// per surviving segment in a vector.
struct RowPredicate {
  CompiledFilter cf;
  std::span<const std::uint8_t> proto;
  std::span<const std::uint32_t> src_addr;
  std::span<const std::uint16_t> src_port;
  std::span<const std::uint32_t> dst_addr;
  std::span<const std::uint16_t> dst_port;
  std::span<const std::uint16_t> vlan;
  std::span<const std::uint32_t> tenant;
  std::span<const std::uint64_t> job;
  std::span<const std::uint8_t> verdict;
  std::span<const std::uint8_t> source;
  std::span<const std::uint32_t> policy;
  std::span<const std::uint32_t> tap;
  std::span<const std::int64_t> first;
  std::span<const std::int64_t> last;

  RowPredicate(const Reader& reader, CompiledFilter compiled)
      : cf(compiled),
        proto(reader.proto()),
        src_addr(reader.src_addr()),
        src_port(reader.src_port()),
        dst_addr(reader.dst_addr()),
        dst_port(reader.dst_port()),
        vlan(reader.vlan()),
        tenant(reader.tenant()),
        job(reader.job()),
        verdict(reader.verdict()),
        source(reader.verdict_source()),
        policy(reader.policy()),
        tap(reader.tap()),
        first(reader.first_usec()),
        last(reader.last_usec()) {}

  [[nodiscard]] bool operator()(std::uint64_t i) const {
    const Filter& f = *cf.filter;
    if (f.verdict && verdict[i] != *f.verdict) return false;
    if (f.source && (verdict[i] == 0 || source[i] != *f.source))
      return false;
    if (cf.tenant_id && tenant[i] != *cf.tenant_id) return false;
    if (cf.policy_id && policy[i] != *cf.policy_id) return false;
    if (cf.tap_id && tap[i] != *cf.tap_id) return false;
    if (f.job && job[i] != *f.job) return false;
    if (f.vlan && vlan[i] != *f.vlan) return false;
    if (f.proto && proto[i] != static_cast<std::uint8_t>(*f.proto))
      return false;
    if (f.endpoint) {
      const std::uint32_t want = f.endpoint->value();
      if (src_addr[i] != want && dst_addr[i] != want) return false;
    }
    if (f.prefix && !f.prefix->contains(util::Ipv4Addr(src_addr[i])) &&
        !f.prefix->contains(util::Ipv4Addr(dst_addr[i])))
      return false;
    if (f.port && src_port[i] != *f.port && dst_port[i] != *f.port)
      return false;
    if (f.since_usec && last[i] < *f.since_usec) return false;
    if (f.until_usec && first[i] > *f.until_usec) return false;
    return true;
  }
};

/// One surviving chunk of work: rows [begin, end) of the segment whose
/// predicate is preds[pred], emitted as global ids base + row.
struct ScanTask {
  std::size_t pred = 0;
  std::uint64_t base = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// Run the task grid — serially or with task t on worker (t % threads)
/// — returning per-task match lists in task order. Concatenating them
/// reproduces the serial scan bit-for-bit at any thread count.
std::vector<std::vector<std::uint64_t>> run_tasks(
    std::span<const RowPredicate> preds, std::span<const ScanTask> tasks,
    unsigned thread_opt);

}  // namespace gq::flowdb::detail
