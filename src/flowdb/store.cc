#include "flowdb/store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <set>

#include "flowdb/scan_impl.h"
#include "util/strings.h"

namespace gq::flowdb {

namespace {

constexpr std::uint64_t kMaxManifestSegments = 100000;
constexpr std::size_t kMaxSegmentName = 200;

/// Segment file names are store-relative and must stay that way: one
/// path component, conservative character set, no dotfiles.
bool valid_segment_name(std::string_view name) {
  if (name.empty() || name.size() > kMaxSegmentName) return false;
  if (name.front() == '.' || name.front() == '-') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return name.find("..") == std::string_view::npos;
}

std::optional<std::uint64_t> parse_hex16(std::string_view text) {
  if (text.size() != 16) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    else
      return std::nullopt;
    value = (value << 4) | digit;
  }
  return value;
}

/// Parse the sequence number out of `segment-<seq>.fdb`; nullopt for
/// names that do not follow the generated pattern.
std::optional<std::uint64_t> segment_seq(std::string_view name) {
  constexpr std::string_view kPrefix = "segment-";
  constexpr std::string_view kSuffix = ".fdb";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return std::nullopt;
  if (name.substr(0, kPrefix.size()) != kPrefix) return std::nullopt;
  if (name.substr(name.size() - kSuffix.size()) != kSuffix)
    return std::nullopt;
  const auto value = util::parse_int(name.substr(
      kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size()));
  if (!value || *value < 0) return std::nullopt;
  return static_cast<std::uint64_t>(*value);
}

/// Read a whole file; on failure `err_out` (when non-null) carries the
/// errno so callers can tell "does not exist" from "could not read".
std::optional<std::string> read_text_file(const std::string& path,
                                          int* err_out = nullptr) {
  if (err_out) *err_out = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    if (err_out) *err_out = errno;
    return std::nullopt;
  }
  std::string out;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, got);
  const bool ok = std::ferror(f) == 0;
  if (!ok && err_out) *err_out = errno ? errno : EIO;
  std::fclose(f);
  if (!ok) return std::nullopt;
  return out;
}

/// Crash-safe write: `path`.tmp + fsync, then rename over `path` and
/// fsync the parent directory. A crash mid-write leaves either the old
/// file or the new one under the final name, never a truncated hybrid
/// — the manifest (and every sealed segment) stays openable.
bool write_file(const std::string& path, const void* data,
                std::size_t size) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  std::size_t done = 0;
  bool ok = true;
  while (ok && done < size) {
    const ssize_t wrote = ::write(fd, p + done, size - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      ok = false;
    } else {
      done += static_cast<std::size_t>(wrote);
    }
  }
  if (ok) ok = ::fsync(fd) == 0;
  if (::close(fd) != 0) ok = false;
  if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  // Make the rename itself durable (best-effort: some filesystems do
  // not support fsync on a directory fd).
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

/// Read a sealed segment's zone block from its tail: the 104-byte
/// header plus the zone region at zone_offset plus the 16-byte footer
/// — no mmap, no column data. The manifest entry pins exact size, the
/// sealed footer hash, AND the zone block's own FNV-1a hash recorded
/// at append time; recomputing the latter over the bytes actually read
/// means an in-place zone edit under the original footer fails here
/// just like a footer-resealed one — the planner can never prune on a
/// lying zone map.
bool read_segment_zone(const std::string& path, const SegmentInfo& info,
                       ZoneMap* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  bool ok = false;
  struct stat st = {};
  FileHeader h;
  do {
    if (::fstat(fd, &st) != 0) break;
    if (static_cast<std::uint64_t>(st.st_size) != info.bytes) break;
    if (info.bytes < sizeof(FileHeader) + sizeof(ZoneMap) + 16) break;
    if (::pread(fd, &h, sizeof h, 0) != static_cast<ssize_t>(sizeof h))
      break;
    if (h.magic != kMagic || h.version != kVersion) break;
    if (h.row_count != info.rows) break;
    if (h.footer_offset != info.bytes - 16) break;
    const std::uint64_t chunks = (info.rows + kScanChunk - 1) / kScanChunk;
    if (h.zone_offset < sizeof(FileHeader) ||
        h.zone_offset > h.footer_offset ||
        h.zone_bytes != sizeof(ZoneMap) + chunks * sizeof(ChunkZone) ||
        h.zone_bytes > h.footer_offset - h.zone_offset)
      break;
    std::uint8_t footer[16];
    if (::pread(fd, footer, 16, static_cast<off_t>(h.footer_offset)) != 16)
      break;
    std::uint64_t stored_hash = 0, end_magic = 0;
    std::memcpy(&stored_hash, footer, 8);
    std::memcpy(&end_magic, footer + 8, 8);
    if (end_magic != kEndMagic || stored_hash != info.footer_hash) break;
    std::vector<std::uint8_t> zone(static_cast<std::size_t>(h.zone_bytes));
    if (::pread(fd, zone.data(), zone.size(),
                static_cast<off_t>(h.zone_offset)) !=
        static_cast<ssize_t>(zone.size()))
      break;
    if (fnv1a(zone) != info.zone_hash) break;
    std::memcpy(out, zone.data(), sizeof(ZoneMap));
    if (out->row_count != info.rows) break;
    ok = true;
  } while (false);
  ::close(fd);
  return ok;
}

/// Manifest record for freshly sealed segment bytes: sizes plus both
/// pins (footer hash from the sealed tail, zone hash recomputed over
/// the zone region the header declares).
SegmentInfo seal_info(std::string file, std::uint64_t rows,
                      const std::vector<std::uint8_t>& bytes) {
  SegmentInfo info;
  info.file = std::move(file);
  info.rows = rows;
  info.bytes = bytes.size();
  std::memcpy(&info.footer_hash, bytes.data() + bytes.size() - 16, 8);
  FileHeader h;
  std::memcpy(&h, bytes.data(), sizeof h);
  info.zone_hash = fnv1a({bytes.data() + h.zone_offset,
                          static_cast<std::size_t>(h.zone_bytes)});
  return info;
}

}  // namespace

// --- StoreManifest --------------------------------------------------------

std::string StoreManifest::serialize() const {
  std::string out = "gq-flowdb-store 2\n";
  for (const SegmentInfo& s : segments) {
    out += util::format("segment %s %llu %llu %016llx %016llx\n",
                        s.file.c_str(),
                        static_cast<unsigned long long>(s.rows),
                        static_cast<unsigned long long>(s.bytes),
                        static_cast<unsigned long long>(s.footer_hash),
                        static_cast<unsigned long long>(s.zone_hash));
  }
  return out;
}

std::optional<StoreManifest> StoreManifest::parse(std::string_view text) {
  const auto lines = util::split(text, '\n');
  if (lines.empty() || util::trim(lines[0]) != "gq-flowdb-store 2")
    return std::nullopt;
  StoreManifest manifest;
  std::set<std::string> seen;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (util::trim(lines[i]).empty()) continue;  // Trailing newline etc.
    const auto fields = util::split_ws(lines[i]);
    if (fields.size() != 6 || fields[0] != "segment") return std::nullopt;
    if (manifest.segments.size() >= kMaxManifestSegments)
      return std::nullopt;
    SegmentInfo info;
    info.file = fields[1];
    if (!valid_segment_name(info.file)) return std::nullopt;
    if (!seen.insert(info.file).second) return std::nullopt;
    const auto rows = util::parse_int(fields[2]);
    const auto bytes = util::parse_int(fields[3]);
    const auto hash = parse_hex16(fields[4]);
    const auto zone_hash = parse_hex16(fields[5]);
    if (!rows || *rows < 0 || !bytes || *bytes < 0 || !hash || !zone_hash)
      return std::nullopt;
    info.rows = static_cast<std::uint64_t>(*rows);
    info.bytes = static_cast<std::uint64_t>(*bytes);
    info.footer_hash = *hash;
    info.zone_hash = *zone_hash;
    manifest.segments.push_back(std::move(info));
  }
  return manifest;
}

std::uint64_t StoreManifest::total_rows() const {
  std::uint64_t total = 0;
  for (const SegmentInfo& s : segments) total += s.rows;
  return total;
}

std::uint64_t StoreManifest::total_bytes() const {
  std::uint64_t total = 0;
  for (const SegmentInfo& s : segments) total += s.bytes;
  return total;
}

// --- SegmentedStore -------------------------------------------------------

std::optional<SegmentedStore> SegmentedStore::open(
    const std::string& dir, obs::MetricsRegistry* metrics) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
    return std::nullopt;
  SegmentedStore store;
  store.dir_ = dir;
  store.metrics_ = metrics;
  const std::string manifest_path = dir + "/" + kManifestName;
  int read_err = 0;
  if (const auto text = read_text_file(manifest_path, &read_err)) {
    auto manifest = StoreManifest::parse(*text);
    if (!manifest) return std::nullopt;
    store.manifest_ = std::move(*manifest);
  } else if (read_err != ENOENT) {
    // EACCES/EMFILE/EIO/...: the store may well exist — initialising a
    // fresh manifest here would orphan every sealed segment.
    return std::nullopt;
  } else if (!store.write_manifest()) {
    return std::nullopt;
  }
  for (const SegmentInfo& s : store.manifest_.segments) {
    if (const auto seq = segment_seq(s.file))
      store.next_seq_ = std::max(store.next_seq_, *seq + 1);
  }
  return store;
}

bool SegmentedStore::write_manifest() const {
  const std::string text = manifest_.serialize();
  return write_file(dir_ + "/" + kManifestName, text.data(), text.size());
}

bool SegmentedStore::append_segment(const Writer& writer) {
  if (writer.row_count() == 0) return true;
  const std::vector<std::uint8_t> bytes = writer.encode();
  SegmentInfo info = seal_info(
      util::format("segment-%06llu.fdb",
                   static_cast<unsigned long long>(next_seq_)),
      writer.row_count(), bytes);
  if (!write_file(dir_ + "/" + info.file, bytes.data(), bytes.size()))
    return false;
  manifest_.segments.push_back(std::move(info));
  if (!write_manifest()) return false;
  ++next_seq_;
  if (metrics_) metrics_->counter("flowdb.segments_written").inc();
  return true;
}

bool SegmentedStore::compact_segments(std::size_t max_segments) {
  if (max_segments == 0) max_segments = 1;
  while (manifest_.segments.size() > max_segments) {
    // Size-tiered pick: the adjacent pair with the fewest combined
    // rows; ties go to the earliest position. Only adjacent pairs ever
    // merge, so global row order is preserved.
    std::size_t best = 0;
    std::uint64_t best_rows = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i + 1 < manifest_.segments.size(); ++i) {
      const std::uint64_t combined =
          manifest_.segments[i].rows + manifest_.segments[i + 1].rows;
      if (combined < best_rows) {
        best_rows = combined;
        best = i;
      }
    }
    const SegmentInfo left = manifest_.segments[best];
    const SegmentInfo right = manifest_.segments[best + 1];
    auto reader_a = Reader::open(dir_ + "/" + left.file);
    auto reader_b = Reader::open(dir_ + "/" + right.file);
    if (!reader_a || !reader_b) return false;
    // Re-encode left's rows then right's: the merged segment is a pure
    // function of the row sequence (dictionary ids are first-seen), so
    // the same inputs always produce byte-identical output.
    Writer writer;
    for (std::uint64_t i = 0; i < reader_a->rows(); ++i)
      writer.add(reader_a->row(i));
    for (std::uint64_t i = 0; i < reader_b->rows(); ++i)
      writer.add(reader_b->row(i));
    const std::vector<std::uint8_t> bytes = writer.encode();
    SegmentInfo merged = seal_info(
        util::format("segment-%06llu.fdb",
                     static_cast<unsigned long long>(next_seq_)),
        writer.row_count(), bytes);
    if (!write_file(dir_ + "/" + merged.file, bytes.data(), bytes.size()))
      return false;
    manifest_.segments[best] = std::move(merged);
    manifest_.segments.erase(manifest_.segments.begin() +
                             static_cast<std::ptrdiff_t>(best) + 1);
    if (!write_manifest()) return false;
    ++next_seq_;
    std::remove((dir_ + "/" + left.file).c_str());
    std::remove((dir_ + "/" + right.file).c_str());
    if (metrics_) metrics_->counter("flowdb.segments_compacted").inc();
  }
  return true;
}

// --- SegmentedReader ------------------------------------------------------

std::optional<SegmentedReader> SegmentedReader::open(const std::string& dir) {
  const auto text = read_text_file(dir + "/" + kManifestName);
  if (!text) return std::nullopt;
  auto manifest = StoreManifest::parse(*text);
  if (!manifest) return std::nullopt;
  SegmentedReader reader;
  reader.dir_ = dir;
  reader.manifest_ = std::move(*manifest);
  const std::size_t n = reader.manifest_.segments.size();
  reader.zones_.resize(n);
  reader.bases_.resize(n);
  reader.readers_.resize(n);
  std::uint64_t base = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const SegmentInfo& info = reader.manifest_.segments[i];
    if (!read_segment_zone(dir + "/" + info.file, info, &reader.zones_[i]))
      return std::nullopt;
    reader.bases_[i] = base;
    base += info.rows;
  }
  return reader;
}

std::uint64_t SegmentedReader::rows() const {
  return manifest_.total_rows();
}

const Reader* SegmentedReader::segment_reader(std::size_t i) {
  if (i >= readers_.size()) return nullptr;
  if (!readers_[i]) {
    auto opened = Reader::open(dir_ + "/" + manifest_.segments[i].file);
    if (!opened || opened->rows() != manifest_.segments[i].rows)
      return nullptr;
    readers_[i] = std::move(*opened);
  }
  return &*readers_[i];
}

std::optional<std::vector<std::uint64_t>> SegmentedReader::scan(
    const Filter& filter, const ScanOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  ScanStats local;
  ScanStats& stats = options.stats ? *options.stats : local;
  stats = {};

  std::vector<detail::RowPredicate> preds;
  std::vector<detail::ScanTask> tasks;
  for (std::size_t s = 0; s < manifest_.segments.size(); ++s) {
    ++stats.segments_considered;
    if (options.prune && !zone_may_match(zones_[s], filter)) {
      ++stats.segments_pruned;
      continue;
    }
    if (manifest_.segments[s].rows == 0) continue;
    const Reader* reader = segment_reader(s);
    if (!reader) return std::nullopt;
    ++stats.segments_scanned;
    const detail::CompiledFilter cf = detail::compile(*reader, filter);
    if (cf.impossible) continue;  // Dictionary short-circuit, both modes.
    const std::size_t pred_index = preds.size();
    preds.emplace_back(*reader, cf);
    const auto chunk_zones = reader->chunk_zones();
    const std::uint64_t nrows = reader->rows();
    for (std::uint64_t c = 0; c < chunk_zones.size(); ++c) {
      if (options.prune && !chunk_may_match(chunk_zones[c], filter)) {
        ++stats.chunks_pruned;
        continue;
      }
      const std::uint64_t begin = c * kScanChunk;
      const std::uint64_t end = std::min(nrows, begin + kScanChunk);
      tasks.push_back({pred_index, bases_[s], begin, end});
      ++stats.chunks_scanned;
      stats.rows_scanned += end - begin;
    }
  }

  // Tasks are in (segment, chunk) order, so concatenation yields
  // ascending global ids — identical to a serial full scan.
  const auto per_task = detail::run_tasks(preds, tasks, options.threads);
  std::vector<std::uint64_t> matches;
  for (const auto& task_matches : per_task)
    matches.insert(matches.end(), task_matches.begin(), task_matches.end());

  stats.rows_matched = matches.size();
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  if (options.metrics) {
    options.metrics->counter("flowdb.scans").inc();
    options.metrics->counter("flowdb.rows_scanned").inc(stats.rows_scanned);
    options.metrics->counter("flowdb.rows_matched").inc(matches.size());
    stats.add_to(*options.metrics);
  }
  return matches;
}

std::optional<std::vector<Agg>> SegmentedReader::aggregate(
    std::span<const std::uint64_t> rows, GroupBy group) {
  // Split global ids per segment, aggregate each, merge label buckets.
  std::vector<std::vector<std::uint64_t>> per_segment(
      manifest_.segments.size());
  const std::uint64_t total = this->rows();
  for (const std::uint64_t global : rows) {
    if (global >= total) continue;
    const auto it =
        std::upper_bound(bases_.begin(), bases_.end(), global);
    const std::size_t s =
        static_cast<std::size_t>(it - bases_.begin()) - 1;
    per_segment[s].push_back(global - bases_[s]);
  }
  std::map<std::string, Agg> buckets;
  for (std::size_t s = 0; s < per_segment.size(); ++s) {
    if (per_segment[s].empty()) continue;
    const Reader* reader = segment_reader(s);
    if (!reader) return std::nullopt;
    for (const Agg& agg :
         flowdb::aggregate(*reader, per_segment[s], group)) {
      Agg& bucket = buckets[agg.label];
      bucket.flows += agg.flows;
      bucket.packets += agg.packets;
      bucket.bytes += agg.bytes;
    }
  }
  std::vector<Agg> out;
  out.reserve(buckets.size());
  for (auto& [label, bucket] : buckets) {
    bucket.label = label;
    out.push_back(std::move(bucket));
  }
  return out;
}

std::optional<std::vector<Agg>> SegmentedReader::aggregate_all(
    GroupBy group) {
  std::map<std::string, Agg> buckets;
  for (std::size_t s = 0; s < manifest_.segments.size(); ++s) {
    if (manifest_.segments[s].rows == 0) continue;
    const Reader* reader = segment_reader(s);
    if (!reader) return std::nullopt;
    for (const Agg& agg : flowdb::aggregate_all(*reader, group)) {
      Agg& bucket = buckets[agg.label];
      bucket.flows += agg.flows;
      bucket.packets += agg.packets;
      bucket.bytes += agg.bytes;
    }
  }
  std::vector<Agg> out;
  out.reserve(buckets.size());
  for (auto& [label, bucket] : buckets) {
    bucket.label = label;
    out.push_back(std::move(bucket));
  }
  return out;
}

std::optional<Row> SegmentedReader::row(std::uint64_t global) {
  if (global >= rows()) return std::nullopt;
  const auto it = std::upper_bound(bases_.begin(), bases_.end(), global);
  const std::size_t s = static_cast<std::size_t>(it - bases_.begin()) - 1;
  const Reader* reader = segment_reader(s);
  if (!reader) return std::nullopt;
  return reader->row(global - bases_[s]);
}

}  // namespace gq::flowdb
